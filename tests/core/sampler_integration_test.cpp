// End-to-end state-sampler contract tests:
//   * shape — a sampled run records the full probe set on the configured
//     cadence, baseline row included, as a pure function of config;
//   * artifacts — WriteRunArtifacts emits timeseries.bin beside the manifest,
//     the manifest carries telemetry.sample + per-series watermarks, and a
//     sampler-off manifest contains neither key (byte-compat rule);
//   * sweep merge — MergeSweepTimeSeries is invariant under the sweep's
//     thread count, like MergeSweepMetrics;
//   * fault alignment — a partitioned run records its executed partition
//     window in the manifest extras and the sampled series show the outage
//     (net.partition.active rises inside the window, stays zero outside).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/provenance.hpp"
#include "core/sweep.hpp"
#include "net/geo.hpp"

namespace ethsim::core {
namespace {

ExperimentConfig SampledConfig() {
  ExperimentConfig cfg = presets::SmallStudy(30);
  cfg.duration = Duration::Minutes(8);
  cfg.workload.rate_per_sec = 1.0;
  cfg.telemetry.sample = true;
  return cfg;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class SamplerArtifactFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ethsim_sampler_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Recorded shape.

TEST(StateSamplerIntegration, RecordsConfiguredCadenceWithBaselineRow) {
  ExperimentConfig cfg = SampledConfig();
  cfg.telemetry.sample_interval_us = 500'000;
  Experiment exp{cfg};
  exp.Run();
  ASSERT_NE(exp.telemetry(), nullptr);
  const obs::StateSampler* sampler = exp.telemetry()->sampler();
  ASSERT_NE(sampler, nullptr);

  // 8 minutes at 500 ms -> 960 ticks + the t=0 baseline row.
  const obs::TimeSeriesLog& log = sampler->log();
  EXPECT_EQ(log.sample_count(), 961u);
  EXPECT_EQ(log.t_us.front(), 0);
  EXPECT_EQ(log.t_us.back(), cfg.duration.micros());
  for (std::size_t i = 1; i < log.sample_count(); ++i)
    ASSERT_EQ(log.t_us[i] - log.t_us[i - 1], 500'000) << "sample " << i;

  // The fleet-level probe set: present, and actually measuring something.
  for (const char* name :
       {"sim.queue.pending", "sim.arena.slots", "net.inflight.msgs",
        "net.inflight.bytes", "txpool.pending.sum", "txpool.heads.sum",
        "chain.blocks.max", "chain.interner.load_permille.max",
        "eth.peers.sum", "eth.known.sum", "miner.blocks_found",
        "miner.gateways.online"})
    EXPECT_NE(log.Find(name), obs::TimeSeriesLog::npos) << name;
  // No fault controller configured -> no fault series (series table is a
  // function of config, so the artifact shape stays seed-independent).
  EXPECT_EQ(log.Find("net.partition.active"), obs::TimeSeriesLog::npos);

  const auto blocks = log.Find("miner.blocks_found");
  ASSERT_NE(blocks, obs::TimeSeriesLog::npos);
  EXPECT_GT(log.values[blocks].back(), 0);
  EXPECT_EQ(static_cast<std::size_t>(log.values[blocks].back()),
            exp.minted().size());
}

TEST(StateSamplerIntegration, SamplerOffMeansNoSamplerObject) {
  ExperimentConfig cfg = SampledConfig();
  cfg.telemetry.sample = false;
  cfg.telemetry.metrics = true;  // telemetry exists, sampler must not
  Experiment exp{cfg};
  exp.Run();
  ASSERT_NE(exp.telemetry(), nullptr);
  EXPECT_EQ(exp.telemetry()->sampler(), nullptr);
}

// ---------------------------------------------------------------------------
// Artifacts + manifest folding.

TEST_F(SamplerArtifactFixture, WritesTimeseriesAndWatermarkedManifest) {
  ExperimentConfig cfg = SampledConfig();
  Experiment exp{cfg};
  exp.Run();
  std::string error;
  ASSERT_TRUE(WriteRunArtifacts(exp, dir_.string(), "sampler_test", &error))
      << error;

  obs::TimeSeriesLog loaded;
  ASSERT_TRUE(obs::TimeSeriesLog::ReadBinary(
      (dir_ / "timeseries.bin").string(), &loaded, &error))
      << error;
  EXPECT_EQ(loaded.names, exp.telemetry()->sampler()->log().names);
  EXPECT_EQ(loaded.values, exp.telemetry()->sampler()->log().values);

  const std::string manifest = ReadFile(dir_ / "manifest.json");
  EXPECT_NE(manifest.find("\"sample\": true"), std::string::npos);
  EXPECT_NE(manifest.find("\"watermarks\": {"), std::string::npos);
  EXPECT_NE(manifest.find("\"sim.queue.pending\": {\"peak\": "),
            std::string::npos);
  EXPECT_NE(manifest.find("\"sample_interval_us\": \"250000\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"samples\": \"1921\""), std::string::npos);
}

TEST_F(SamplerArtifactFixture, SamplerOffManifestHasNoSampleKeys) {
  ExperimentConfig cfg = SampledConfig();
  cfg.telemetry.sample = false;
  cfg.telemetry.metrics = true;
  Experiment exp{cfg};
  exp.Run();
  std::string error;
  ASSERT_TRUE(WriteRunArtifacts(exp, dir_.string(), "sampler_test", &error))
      << error;
  const std::string manifest = ReadFile(dir_ / "manifest.json");
  EXPECT_EQ(manifest.find("\"sample\""), std::string::npos);
  EXPECT_EQ(manifest.find("watermarks"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(dir_ / "timeseries.bin"));
}

// ---------------------------------------------------------------------------
// Sweep merge invariance.

TEST(MergeSweepTimeSeries, InvariantUnderThreadCount) {
  const ExperimentConfig cfg = SampledConfig();
  const auto seeds = ConsecutiveSeeds(cfg.seed, 4);

  SeedSweepRunner serial{{1}};
  SeedSweepRunner parallel{{4}};
  const auto runs_serial = serial.RunExperiments(cfg, seeds);
  const auto runs_parallel = parallel.RunExperiments(cfg, seeds);

  const obs::TimeSeriesLog a = MergeSweepTimeSeries(runs_serial);
  const obs::TimeSeriesLog b = MergeSweepTimeSeries(runs_parallel);
  ASSERT_GT(a.sample_count(), 0u);
  EXPECT_EQ(a.interval_us, b.interval_us);
  EXPECT_EQ(a.names, b.names);
  EXPECT_EQ(a.t_us, b.t_us);
  EXPECT_EQ(a.values, b.values);

  // The merge really pooled seeds: a merged extensive series (sum over
  // nodes, summed again over seeds) dominates any single member's.
  const auto known = a.Find("eth.known.sum");
  ASSERT_NE(known, obs::TimeSeriesLog::npos);
  const obs::TimeSeriesLog& first =
      runs_serial[0]->telemetry()->sampler()->log();
  EXPECT_GT(a.values[known].back(), first.values[known].back());
}

TEST(MergeSweepTimeSeries, PoolsRaggedMemberLengthsWithoutOverruns) {
  // Members that sampled for different spans (here: a duration sweep) must
  // still pool in strict vector order — sum over the shared time prefix,
  // keep the longest tail, never read past a shorter member's columns.
  std::vector<std::unique_ptr<Experiment>> runs;
  for (const int minutes : {2, 4, 3}) {  // longest member is in the middle
    ExperimentConfig cfg = presets::SmallStudy(12);
    cfg.duration = Duration::Minutes(minutes);
    cfg.workload.rate_per_sec = 1.0;
    cfg.telemetry.sample = true;
    runs.push_back(std::make_unique<Experiment>(cfg));
    runs.back()->Run();
  }
  const obs::TimeSeriesLog merged = MergeSweepTimeSeries(runs);
  const obs::TimeSeriesLog& m0 = runs[0]->telemetry()->sampler()->log();
  const obs::TimeSeriesLog& m1 = runs[1]->telemetry()->sampler()->log();
  const obs::TimeSeriesLog& m2 = runs[2]->telemetry()->sampler()->log();
  ASSERT_GT(m1.sample_count(), m2.sample_count());
  ASSERT_GT(m2.sample_count(), m0.sample_count());

  // The longest member defines the pooled time column and the table shape.
  EXPECT_EQ(merged.t_us, m1.t_us);
  EXPECT_EQ(merged.names, m0.names);
  for (std::size_t s = 0; s < merged.series_count(); ++s)
    for (std::size_t i = 0; i < merged.sample_count(); ++i) {
      std::int64_t want = 0;
      for (const obs::TimeSeriesLog* m : {&m0, &m1, &m2})
        if (i < m->sample_count()) want += m->values[s][i];
      ASSERT_EQ(merged.values[s][i], want)
          << merged.names[s] << " sample " << i;
    }
}

TEST(MergeSweepTimeSeries, EmptyWhenNoMemberSampled) {
  ExperimentConfig cfg = SampledConfig();
  cfg.telemetry.sample = false;
  cfg.duration = Duration::Minutes(2);
  SeedSweepRunner runner{{2}};
  const auto runs = runner.RunExperiments(cfg, ConsecutiveSeeds(cfg.seed, 2));
  const obs::TimeSeriesLog merged = MergeSweepTimeSeries(runs);
  EXPECT_EQ(merged.series_count(), 0u);
  EXPECT_EQ(merged.sample_count(), 0u);
}

// ---------------------------------------------------------------------------
// Fault-window alignment.

TEST_F(SamplerArtifactFixture, PartitionWindowShowsUpInSeriesAndManifest) {
  ExperimentConfig cfg = SampledConfig();
  const TimePoint start = TimePoint::FromMicros(cfg.duration.micros() / 3);
  const Duration window = Duration::Micros(cfg.duration.micros() / 3);
  const std::uint32_t apac_mask =
      (1u << static_cast<unsigned>(net::Region::EasternAsia)) |
      (1u << static_cast<unsigned>(net::Region::SoutheastAsia)) |
      (1u << static_cast<unsigned>(net::Region::Oceania));
  cfg.fault_plan.RegionalPartition(start, window, apac_mask);

  Experiment exp{cfg};
  exp.Run();
  const obs::TimeSeriesLog& log = exp.telemetry()->sampler()->log();
  const auto active = log.Find("net.partition.active");
  ASSERT_NE(active, obs::TimeSeriesLog::npos);
  // 0/1 gauge: zero before the window, one strictly inside, zero after.
  const std::int64_t end_us = start.micros() + window.micros();
  for (std::size_t i = 0; i < log.sample_count(); ++i) {
    const std::int64_t t = log.t_us[i];
    const bool inside = t > start.micros() && t < end_us;
    const bool outside = t < start.micros() || t > end_us;
    if (inside)
      EXPECT_EQ(log.values[active][i], 1) << "t_us " << t;
    else if (outside)
      EXPECT_EQ(log.values[active][i], 0) << "t_us " << t;
  }

  std::string error;
  ASSERT_TRUE(WriteRunArtifacts(exp, dir_.string(), "sampler_test", &error))
      << error;
  const std::string manifest = ReadFile(dir_ / "manifest.json");
  const std::string expected = "\"partition_window.0\": \"" +
                               std::to_string(start.micros()) + ".." +
                               std::to_string(end_us) + "\"";
  EXPECT_NE(manifest.find(expected), std::string::npos) << manifest;
}

}  // namespace
}  // namespace ethsim::core
