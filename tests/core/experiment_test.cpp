#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace ethsim::core {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig cfg = presets::SmallStudy(30);
  cfg.duration = Duration::Minutes(10);
  cfg.workload.rate_per_sec = 1.0;
  return cfg;
}

TEST(ExperimentTest, RunsAndProducesBlocks) {
  Experiment exp{TinyConfig()};
  exp.Run();
  // ~45 blocks expected in 10 min at 13.3s.
  EXPECT_GT(exp.minted().size(), 20u);
  EXPECT_GT(exp.reference_tree().head_number(), 7'479'573u + 15);
}

TEST(ExperimentTest, ObserversSeeBlocksAndTxs) {
  Experiment exp{TinyConfig()};
  exp.Run();
  ASSERT_EQ(exp.observers().size(), 4u);
  for (const auto& obs : exp.observers()) {
    EXPECT_GT(obs->first_block_arrival().size(), 15u) << obs->name();
    EXPECT_GT(obs->first_tx_arrival().size(), 100u) << obs->name();
    EXPECT_GT(obs->imports().size(), 15u) << obs->name();
  }
  EXPECT_GT(exp.workload().total_submitted(), 300u);
}

TEST(ExperimentTest, ObserversConnectManyPeers) {
  ExperimentConfig cfg = TinyConfig();
  Experiment exp{cfg};
  exp.Run();
  for (const auto& obs : exp.observers())
    EXPECT_GE(obs->node()->peer_count(), cfg.vantages[0].connect_peers)
        << obs->name();
}

TEST(ExperimentTest, DeterministicForSameSeed) {
  Experiment a{TinyConfig()};
  Experiment b{TinyConfig()};
  a.Run();
  b.Run();
  ASSERT_EQ(a.minted().size(), b.minted().size());
  for (std::size_t i = 0; i < a.minted().size(); ++i) {
    EXPECT_EQ(a.minted()[i].block->hash, b.minted()[i].block->hash);
    EXPECT_EQ(a.minted()[i].pool_index, b.minted()[i].pool_index);
  }
  EXPECT_EQ(a.reference_tree().head_hash(), b.reference_tree().head_hash());
  // Observer logs identical too.
  ASSERT_EQ(a.observers().size(), b.observers().size());
  EXPECT_EQ(a.observers()[0]->block_arrivals().size(),
            b.observers()[0]->block_arrivals().size());
}

TEST(ExperimentTest, DifferentSeedsDiverge) {
  ExperimentConfig cfg_a = TinyConfig();
  ExperimentConfig cfg_b = TinyConfig();
  cfg_b.seed = 43;
  Experiment a{cfg_a};
  Experiment b{cfg_b};
  a.Run();
  b.Run();
  // Head hashes virtually certainly differ.
  EXPECT_NE(a.reference_tree().head_hash(), b.reference_tree().head_hash());
}

TEST(ExperimentTest, NodesConvergeOnOneChain) {
  Experiment exp{TinyConfig()};
  exp.Run();
  // After the run, let in-flight traffic settle: count distinct heads among
  // all nodes; the overwhelming majority must agree (a tiny tail can be
  // mid-import at cutoff).
  std::unordered_map<Hash32, int> heads;
  for (const auto& node : exp.nodes()) ++heads[node->tree().head_hash()];
  int best = 0;
  for (const auto& [hash, count] : heads) best = std::max(best, count);
  EXPECT_GT(best, static_cast<int>(exp.nodes().size() * 9 / 10));
}

TEST(ExperimentTest, MintedPoolsFollowShares) {
  ExperimentConfig cfg = TinyConfig();
  cfg.duration = Duration::Minutes(45);
  Experiment exp{cfg};
  exp.Run();
  std::vector<std::size_t> counts(cfg.pools.size(), 0);
  for (const auto& record : exp.minted()) ++counts[record.pool_index];
  // Ethermine + Sparkpool together are ~48% of hashrate: expect them to
  // dominate (loose check at this sample size).
  const double big_two = static_cast<double>(counts[0] + counts[1]);
  EXPECT_GT(big_two / static_cast<double>(exp.minted().size()), 0.30);
}

TEST(ExperimentTest, DefaultPeersPresetUsesOneVantageAt25Peers) {
  ExperimentConfig cfg = presets::DefaultPeersStudy();
  cfg.peer_nodes = 40;
  cfg.duration = Duration::Minutes(5);
  Experiment exp{cfg};
  exp.Run();
  ASSERT_EQ(exp.observers().size(), 1u);
  EXPECT_EQ(exp.observers()[0]->node()->peer_count(), 25u);
}

TEST(ExperimentTest, RunIsIdempotent) {
  Experiment exp{TinyConfig()};
  exp.Run();
  const auto minted = exp.minted().size();
  exp.Run();  // no-op
  EXPECT_EQ(exp.minted().size(), minted);
}

}  // namespace
}  // namespace ethsim::core
