// End-to-end telemetry contract tests:
//   * golden determinism — enabling metrics/trace/profile must not change a
//     single observable output (head hash, event count, observer digests);
//   * merge invariance — the merged sweep registry is identical whether the
//     sweep ran on 1 thread or 4;
//   * provenance — config digests ignore seed + telemetry gates, determinism
//     digests pin run outputs, WriteRunArtifacts emits a well-formed
//     manifest beside the enabled streams.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/provenance.hpp"
#include "core/sweep.hpp"
#include "obs/metrics.hpp"
#include "../obs/json_check.hpp"

namespace ethsim::core {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig cfg = presets::SmallStudy(30);
  cfg.duration = Duration::Minutes(8);
  cfg.workload.rate_per_sec = 1.0;
  return cfg;
}

obs::TelemetryConfig FullTelemetry() {
  obs::TelemetryConfig t;
  t.metrics = true;
  t.trace = true;
  t.profile = true;
  t.trace_capacity = 1u << 14;  // small ring: forces overwrites too
  return t;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ArtifactDirFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ethsim_telemetry_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Golden determinism: telemetry on vs off.

TEST(TelemetryDeterminism, EnablingTelemetryDoesNotPerturbTheRun) {
  Experiment plain{TinyConfig()};
  plain.Run();

  ExperimentConfig traced_cfg = TinyConfig();
  traced_cfg.telemetry = FullTelemetry();
  Experiment traced{traced_cfg};
  traced.Run();

  // The whole contract in three lines: identical head, identical event
  // count, identical observer logs (the determinism digest covers all of
  // them plus block numbers).
  EXPECT_EQ(plain.reference_tree().head_hash(),
            traced.reference_tree().head_hash());
  EXPECT_EQ(plain.simulator().events_executed(),
            traced.simulator().events_executed());
  EXPECT_EQ(DeterminismDigest(plain), DeterminismDigest(traced));

  // And the traced run actually recorded something — this is not a
  // vacuously-passing test against a disabled tracer.
  ASSERT_NE(traced.telemetry(), nullptr);
  ASSERT_NE(traced.telemetry()->tracer(), nullptr);
  EXPECT_GT(traced.telemetry()->tracer()->emitted(), 1000u);
  ASSERT_NE(traced.telemetry()->metrics(), nullptr);
  EXPECT_FALSE(traced.telemetry()->metrics()->empty());
  EXPECT_EQ(plain.telemetry(), nullptr);
}

TEST(TelemetryDeterminism, MetricsAreReproducibleAcrossRuns) {
  ExperimentConfig cfg = TinyConfig();
  cfg.telemetry.metrics = true;
  Experiment a{cfg};
  Experiment b{cfg};
  a.Run();
  b.Run();
  ASSERT_NE(a.telemetry(), nullptr);
  ASSERT_NE(b.telemetry(), nullptr);
  EXPECT_EQ(a.telemetry()->metrics()->ToJsonl(),
            b.telemetry()->metrics()->ToJsonl());
}

TEST(TelemetryDeterminism, TraceJsonIsReproducibleAcrossRuns) {
  ExperimentConfig cfg = TinyConfig();
  cfg.telemetry.trace = true;
  cfg.telemetry.trace_categories = obs::ParseTraceCategories("block,mine");
  Experiment a{cfg};
  Experiment b{cfg};
  a.Run();
  b.Run();
  EXPECT_EQ(a.telemetry()->tracer()->ToChromeTraceJson(),
            b.telemetry()->tracer()->ToChromeTraceJson());
}

// ---------------------------------------------------------------------------
// Sweep merge invariance.

TEST(MergeSweepMetrics, InvariantUnderThreadCount) {
  ExperimentConfig cfg = TinyConfig();
  cfg.duration = Duration::Minutes(5);
  cfg.telemetry.metrics = true;
  const auto seeds = ConsecutiveSeeds(7, 3);

  SeedSweepRunner sequential{{1}};
  SeedSweepRunner parallel{{4}};
  const auto runs1 = sequential.RunExperiments(cfg, seeds);
  const auto runs4 = parallel.RunExperiments(cfg, seeds);

  const std::string merged1 = MergeSweepMetrics(runs1).ToJsonl();
  const std::string merged4 = MergeSweepMetrics(runs4).ToJsonl();
  EXPECT_FALSE(merged1.empty());
  EXPECT_EQ(merged1, merged4);
}

TEST(MergeSweepMetrics, RaggedDurationsPoolInStrictVectorOrder) {
  // Members with different run lengths (a duration sweep) carry different
  // counter magnitudes; the merge must still be a plain strict-order sum —
  // checked against hand-summed member values for a counter that fires on
  // every run.
  std::vector<std::unique_ptr<Experiment>> runs;
  for (const int minutes : {2, 6, 4}) {
    ExperimentConfig cfg = TinyConfig();
    cfg.duration = Duration::Minutes(minutes);
    cfg.telemetry.metrics = true;
    runs.push_back(std::make_unique<Experiment>(cfg));
    runs.back()->Run();
  }
  const obs::MetricsRegistry merged = MergeSweepMetrics(runs);
  const std::string name = obs::LabeledName(
      "net.msg.sent", {{"kind", obs::MsgKindName(obs::MsgKind::kNewBlock)}});
  std::uint64_t want = 0;
  for (const auto& run : runs) {
    const obs::Counter* member =
        run->telemetry()->metrics()->FindCounter(name);
    ASSERT_NE(member, nullptr);
    EXPECT_GT(member->value(), 0u);
    want += member->value();
  }
  const obs::Counter* pooled = merged.FindCounter(name);
  ASSERT_NE(pooled, nullptr);
  EXPECT_EQ(pooled->value(), want);
}

TEST(MergeSweepMetrics, MembersWithoutMetricsContributeNothing) {
  ExperimentConfig cfg = TinyConfig();
  cfg.duration = Duration::Minutes(2);
  // metrics disabled entirely
  SeedSweepRunner runner{{2}};
  const auto runs = runner.RunExperiments(cfg, ConsecutiveSeeds(1, 2));
  EXPECT_TRUE(MergeSweepMetrics(runs).empty());
}

// ---------------------------------------------------------------------------
// Provenance digests.

TEST(ConfigDigestTest, IgnoresSeedAndTelemetryGates) {
  ExperimentConfig a = TinyConfig();
  ExperimentConfig b = TinyConfig();
  b.seed = a.seed + 1234;
  b.telemetry = FullTelemetry();
  EXPECT_EQ(ConfigDigest(a), ConfigDigest(b));
}

TEST(ConfigDigestTest, SeesResultAffectingFields) {
  const ExperimentConfig base = TinyConfig();
  ExperimentConfig longer = TinyConfig();
  longer.duration = Duration::Minutes(9);
  EXPECT_NE(ConfigDigest(base), ConfigDigest(longer));

  ExperimentConfig bigger = TinyConfig();
  bigger.peer_nodes += 1;
  EXPECT_NE(ConfigDigest(base), ConfigDigest(bigger));
}

TEST(DeterminismDigestTest, EqualForEqualRunsDistinctForSeeds) {
  ExperimentConfig cfg = TinyConfig();
  cfg.duration = Duration::Minutes(4);
  Experiment a{cfg};
  Experiment b{cfg};
  a.Run();
  b.Run();
  EXPECT_EQ(DeterminismDigest(a), DeterminismDigest(b));

  cfg.seed += 1;
  Experiment c{cfg};
  c.Run();
  EXPECT_NE(DeterminismDigest(a), DeterminismDigest(c));
}

// ---------------------------------------------------------------------------
// Artifact writing.

TEST_F(ArtifactDirFixture, WriteRunArtifactsEmitsManifestAndStreams) {
  ExperimentConfig cfg = TinyConfig();
  cfg.duration = Duration::Minutes(3);
  cfg.telemetry = FullTelemetry();
  Experiment exp{cfg};
  exp.Run();

  std::string error;
  ASSERT_TRUE(WriteRunArtifacts(exp, dir_.string(), "telemetry_test", &error))
      << error;

  for (const char* name :
       {"manifest.json", "metrics.jsonl", "trace.json", "profile.jsonl"})
    EXPECT_TRUE(std::filesystem::exists(dir_ / name)) << name;

  const std::string manifest = ReadFile(dir_ / "manifest.json");
  EXPECT_TRUE(ethsim::testing::IsWellFormedJson(manifest)) << manifest;
  EXPECT_NE(manifest.find("\"schema\": \"ethsim-run-manifest-v1\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"tool\": \"telemetry_test\""), std::string::npos);
  EXPECT_NE(manifest.find(ToHex(ConfigDigest(cfg))), std::string::npos);
  EXPECT_NE(manifest.find(ToHex(DeterminismDigest(exp))), std::string::npos);

  const std::string trace = ReadFile(dir_ / "trace.json");
  EXPECT_TRUE(ethsim::testing::IsWellFormedJson(trace));

  std::istringstream metrics(ReadFile(dir_ / "metrics.jsonl"));
  std::string line;
  std::size_t lines = 0;
  while (std::getline(metrics, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(ethsim::testing::IsWellFormedJson(line)) << line;
    ++lines;
  }
  EXPECT_GT(lines, 10u);
}

TEST_F(ArtifactDirFixture, WriteRunArtifactsWithTelemetryOffStillWritesManifest) {
  ExperimentConfig cfg = TinyConfig();
  cfg.duration = Duration::Minutes(2);
  Experiment exp{cfg};
  exp.Run();

  std::string error;
  ASSERT_TRUE(WriteRunArtifacts(exp, dir_.string(), "telemetry_test", &error))
      << error;
  EXPECT_TRUE(std::filesystem::exists(dir_ / "manifest.json"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "metrics.jsonl"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "trace.json"));
}

TEST_F(ArtifactDirFixture, WriteRunArtifactsReportsFailingPath) {
  ExperimentConfig cfg = TinyConfig();
  cfg.duration = Duration::Minutes(2);
  Experiment exp{cfg};
  exp.Run();

  // A path under an existing *file* cannot be created as a directory.
  const std::filesystem::path blocker = dir_;
  std::filesystem::create_directories(blocker.parent_path());
  { std::ofstream out(blocker); out << "not a directory"; }
  const std::string target = (blocker / "sub").string();

  std::string error;
  EXPECT_FALSE(WriteRunArtifacts(exp, target, "telemetry_test", &error));
  EXPECT_NE(error.find(target), std::string::npos) << error;
}

}  // namespace
}  // namespace ethsim::core
