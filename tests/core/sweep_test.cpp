// SeedSweepRunner + end-to-end determinism regression.
//
// The golden values below were captured from a reference build and pin the
// bit-for-bit reproducibility contract: the same (config, seed) must produce
// the identical event count, head hash, fork census, and observer logs in
// every build of the engine, whether the run executes alone, repeated, or as
// a member of a parallel sweep. If an intentional engine change alters the
// event schedule, recapture the constants with a sequential run and say so
// loudly in the PR description.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/forks.hpp"
#include "analysis/inputs.hpp"
#include "core/experiment.hpp"
#include "measure/observer.hpp"

namespace ethsim::core {
namespace {

// ---------------------------------------------------------------------------
// ForEachIndex / ConsecutiveSeeds basics.

TEST(ConsecutiveSeeds, GeneratesExpectedSequence) {
  const auto seeds = ConsecutiveSeeds(40, 4);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{40, 41, 42, 43}));
  EXPECT_TRUE(ConsecutiveSeeds(1, 0).empty());
}

TEST(SeedSweepRunner, ForEachIndexRunsEveryJobExactlyOnce) {
  SeedSweepRunner runner{{4}};
  constexpr std::size_t kJobs = 100;
  std::vector<std::atomic<int>> hits(kJobs);
  runner.ForEachIndex(kJobs, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(SeedSweepRunner, ForEachIndexPropagatesWorkerException) {
  SeedSweepRunner runner{{3}};
  EXPECT_THROW(
      runner.ForEachIndex(16,
                          [&](std::size_t i) {
                            if (i == 7) throw std::runtime_error{"boom"};
                          }),
      std::runtime_error);
}

TEST(SeedSweepRunner, SingleThreadOptionRunsSerially) {
  SeedSweepRunner runner{{1}};
  EXPECT_EQ(runner.threads(), 1u);
  std::vector<std::size_t> order;
  runner.ForEachIndex(8, [&](std::size_t i) { order.push_back(i); });
  // Serial path keeps index order (no data race on `order` either).
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

// ---------------------------------------------------------------------------
// Determinism goldens.

struct Golden {
  std::uint64_t seed;
  std::uint64_t events;
  std::string head_hash;
  std::uint64_t head_number;
  std::size_t minted;
  std::size_t census_total;
  std::size_t census_main;
  std::size_t census_fork_events;
  // FNV-1a digests over each observer's full arrival/import logs, NA/EA/WE/CE.
  std::array<std::uint64_t, 4> digests;
};

// Captured from the reference build (sequential run, config below).
const Golden kGolden42{
    42,
    1'285'481,
    "69412253d182a55e8dbf1a98dd10ba247849b2c23fd4de4bcbcdecf96b1afded",
    7'479'614,
    45,
    45,
    41,
    4,
    {15487372741438699470ULL, 5686311288796148083ULL, 1649895950171149594ULL,
     1499058538742686342ULL}};

const Golden kGolden43{
    43,
    1'351'707,
    "ea0265c37b27c679d680d3b069067f7476391889ccd524fa99331542cacc38ab",
    7'479'623,
    55,
    55,
    50,
    5,
    {4239035990105717353ULL, 3167667417942849482ULL, 15330041366694900658ULL,
     17240301593157410737ULL}};

ExperimentConfig GoldenConfig(std::uint64_t seed) {
  ExperimentConfig cfg = presets::SmallStudy(24);
  cfg.duration = Duration::Minutes(10);
  cfg.workload.rate_per_sec = 1.0;
  cfg.seed = seed;
  return cfg;
}

std::uint64_t MixBytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t MixU64(std::uint64_t h, std::uint64_t v) {
  return MixBytes(h, &v, sizeof(v));
}

std::uint64_t ObserverDigest(const measure::Observer& obs) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& a : obs.block_arrivals()) {
    h = MixBytes(h, a.hash.bytes.data(), a.hash.bytes.size());
    h = MixU64(h, a.number);
    h = MixU64(h, static_cast<std::uint64_t>(a.kind));
    h = MixU64(h, static_cast<std::uint64_t>(a.local_time.micros()));
  }
  for (const auto& t : obs.tx_arrivals()) {
    h = MixBytes(h, t.hash.bytes.data(), t.hash.bytes.size());
    h = MixBytes(h, t.sender.bytes.data(), t.sender.bytes.size());
    h = MixU64(h, t.nonce);
    h = MixU64(h, static_cast<std::uint64_t>(t.local_time.micros()));
  }
  for (const auto& e : obs.imports()) {
    h = MixBytes(h, e.hash.bytes.data(), e.hash.bytes.size());
    h = MixU64(h, e.number);
    h = MixU64(h, e.new_head ? 1u : 0u);
    h = MixU64(h, static_cast<std::uint64_t>(e.local_time.micros()));
  }
  return h;
}

void ExpectMatchesGolden(Experiment& exp, const Golden& golden) {
  EXPECT_EQ(exp.simulator().events_executed(), golden.events);
  EXPECT_EQ(ToHex(exp.reference_tree().head_hash()), golden.head_hash);
  EXPECT_EQ(exp.reference_tree().head_number(), golden.head_number);
  EXPECT_EQ(exp.minted().size(), golden.minted);

  analysis::StudyInputs inputs;
  for (const auto& obs : exp.observers()) inputs.observers.push_back(obs.get());
  inputs.minted = &exp.minted();
  inputs.pools = &exp.config().pools;
  inputs.reference = &exp.reference_tree();
  const auto census = analysis::ComputeForkCensus(inputs);
  EXPECT_EQ(census.total_blocks, golden.census_total);
  EXPECT_EQ(census.main_blocks, golden.census_main);
  EXPECT_EQ(census.fork_events, golden.census_fork_events);

  ASSERT_EQ(exp.observers().size(), golden.digests.size());
  for (std::size_t i = 0; i < golden.digests.size(); ++i)
    EXPECT_EQ(ObserverDigest(*exp.observers()[i]), golden.digests[i])
        << "observer " << exp.observers()[i]->name();
}

TEST(Determinism, RepeatedRunsMatchGoldenBitForBit) {
  Experiment first{GoldenConfig(42)};
  first.Run();
  ExpectMatchesGolden(first, kGolden42);

  // A second, fresh experiment with the same (config, seed) must replay the
  // exact same world.
  Experiment second{GoldenConfig(42)};
  second.Run();
  ExpectMatchesGolden(second, kGolden42);
  EXPECT_EQ(first.reference_tree().head_hash(),
            second.reference_tree().head_hash());
}

TEST(Determinism, ParallelSweepMatchesSequentialRuns) {
  // Two seeds through the thread pool: each member must be bit-for-bit the
  // run a sequential Experiment would have produced. TSan runs this test in
  // CI to prove the sweep shares no mutable state.
  SeedSweepRunner runner{{2}};
  const auto runs = runner.RunExperiments(GoldenConfig(42), {42, 43});
  ASSERT_EQ(runs.size(), 2u);
  ExpectMatchesGolden(*runs[0], kGolden42);
  ExpectMatchesGolden(*runs[1], kGolden43);
}

}  // namespace
}  // namespace ethsim::core
