#include "p2p/node_id.hpp"

#include <gtest/gtest.h>

namespace ethsim::p2p {
namespace {

NodeId IdWithByte(std::size_t index, std::uint8_t value) {
  NodeId id;
  id.bytes[index] = value;
  return id;
}

TEST(NodeId, RandomIdsAreDistinct) {
  Rng rng{1};
  const NodeId a = RandomNodeId(rng);
  const NodeId b = RandomNodeId(rng);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.is_zero());
}

TEST(NodeId, XorDistanceIsSymmetricAndSelfZero) {
  Rng rng{2};
  const NodeId a = RandomNodeId(rng);
  const NodeId b = RandomNodeId(rng);
  EXPECT_EQ(XorDistance(a, b), XorDistance(b, a));
  EXPECT_TRUE(XorDistance(a, a).is_zero());
}

TEST(NodeId, LogDistanceOfSelfIsNegative) {
  const NodeId a = IdWithByte(0, 0x80);
  EXPECT_EQ(LogDistance(a, a), -1);
}

TEST(NodeId, LogDistanceHighBit) {
  const NodeId zero{};
  // Top bit of byte 0 = bit 255.
  EXPECT_EQ(LogDistance(zero, IdWithByte(0, 0x80)), 255);
  EXPECT_EQ(LogDistance(zero, IdWithByte(0, 0x01)), 248);
  // Lowest byte.
  EXPECT_EQ(LogDistance(zero, IdWithByte(31, 0x01)), 0);
  EXPECT_EQ(LogDistance(zero, IdWithByte(31, 0x80)), 7);
}

TEST(NodeId, LogDistanceUsesFirstDifferingByte) {
  NodeId a = IdWithByte(3, 0x10);
  NodeId b = IdWithByte(3, 0x10);
  b.bytes[10] = 0x40;
  EXPECT_EQ(LogDistance(a, b), (31 - 10) * 8 + 6);
}

TEST(NodeId, CloserToOrdersByXor) {
  const NodeId target{};
  const NodeId near = IdWithByte(31, 0x01);
  const NodeId far = IdWithByte(0, 0x01);
  EXPECT_TRUE(CloserTo(target, near, far));
  EXPECT_FALSE(CloserTo(target, far, near));
  EXPECT_FALSE(CloserTo(target, near, near));
}

TEST(NodeId, LogDistanceIsSymmetric) {
  Rng rng{3};
  for (int i = 0; i < 50; ++i) {
    const NodeId a = RandomNodeId(rng);
    const NodeId b = RandomNodeId(rng);
    EXPECT_EQ(LogDistance(a, b), LogDistance(b, a));
  }
}

TEST(NodeId, RandomPairsLandInHighBuckets) {
  // Two uniform ids differ in the top byte with prob 255/256, so log
  // distances concentrate in [248, 255].
  Rng rng{4};
  int high = 0;
  for (int i = 0; i < 1000; ++i) {
    const NodeId a = RandomNodeId(rng);
    const NodeId b = RandomNodeId(rng);
    if (LogDistance(a, b) >= 248) ++high;
  }
  EXPECT_GT(high, 990);
}

}  // namespace
}  // namespace ethsim::p2p
