#include "p2p/kademlia.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace ethsim::p2p {
namespace {

TEST(RoutingTable, AddAndContains) {
  Rng rng{1};
  RoutingTable table{RandomNodeId(rng)};
  const NodeId peer = RandomNodeId(rng);
  EXPECT_TRUE(table.Add(peer));
  EXPECT_TRUE(table.Contains(peer));
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, RejectsSelfAndDuplicates) {
  Rng rng{2};
  const NodeId self = RandomNodeId(rng);
  RoutingTable table{self};
  EXPECT_FALSE(table.Add(self));
  const NodeId peer = RandomNodeId(rng);
  EXPECT_TRUE(table.Add(peer));
  EXPECT_FALSE(table.Add(peer));
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, BucketCapacityIsSixteen) {
  // Fill one specific bucket: ids differing from self only in low bytes all
  // share the same log distance when we pin the same leading bit pattern.
  NodeId self{};
  RoutingTable table{self};
  // All ids with only byte 31 set have log distance 0..7; ids with byte 31 =
  // 0x80|x land in bucket 7. Generate > 16 of them.
  int added = 0;
  for (int x = 0; x < 0x80; ++x) {
    NodeId id{};
    id.bytes[31] = static_cast<std::uint8_t>(0x80 | x);
    added += table.Add(id) ? 1 : 0;
  }
  EXPECT_EQ(added, static_cast<int>(kBucketSize));
}

TEST(RoutingTable, ClosestReturnsSortedByXorDistance) {
  NodeId self{};
  RoutingTable table{self};
  Rng rng{3};
  std::vector<NodeId> peers;
  for (int i = 0; i < 100; ++i) {
    const NodeId id = RandomNodeId(rng);
    if (table.Add(id)) peers.push_back(id);
  }
  const NodeId target = RandomNodeId(rng);
  const auto closest = table.Closest(target, 10);
  ASSERT_EQ(closest.size(), 10u);
  for (std::size_t i = 1; i < closest.size(); ++i)
    EXPECT_FALSE(CloserTo(target, closest[i], closest[i - 1]));
  // The first result must be the global argmin over table entries.
  NodeId best = peers.front();
  for (const auto& p : peers)
    if (CloserTo(target, p, best)) best = p;
  EXPECT_EQ(closest.front(), best);
}

TEST(RoutingTable, ClosestWithFewEntriesReturnsAll) {
  Rng rng{4};
  RoutingTable table{RandomNodeId(rng)};
  table.Add(RandomNodeId(rng));
  table.Add(RandomNodeId(rng));
  EXPECT_EQ(table.Closest(RandomNodeId(rng), 10).size(), 2u);
}

// A small in-memory universe where every node has a fully-populated table,
// driving IterativeFindNode like a discv4 crawl.
struct Universe {
  explicit Universe(std::size_t n, std::uint64_t seed) {
    Rng rng{seed};
    for (std::size_t i = 0; i < n; ++i) ids.push_back(RandomNodeId(rng));
    for (const auto& id : ids) {
      RoutingTable t{id};
      for (const auto& other : ids) t.Add(other);
      tables.emplace(id, std::move(t));
    }
  }
  std::vector<NodeId> ids;
  std::unordered_map<NodeId, RoutingTable> tables;

  std::vector<NodeId> Query(const NodeId& node, const NodeId& target) const {
    return tables.at(node).Closest(target, kBucketSize);
  }
};

TEST(IterativeFindNode, ConvergesToGlobalClosest) {
  Universe universe{200, 42};
  // A sparsely-seeded local table: three bootstrap nodes.
  Rng rng{7};
  RoutingTable local{RandomNodeId(rng)};
  for (int i = 0; i < 3; ++i) local.Add(universe.ids[static_cast<std::size_t>(i)]);

  const NodeId target = RandomNodeId(rng);
  const auto found = IterativeFindNode(
      local, target, 16,
      [&](const NodeId& n, const NodeId& t) { return universe.Query(n, t); });

  // Global ground truth.
  std::vector<NodeId> all = universe.ids;
  std::sort(all.begin(), all.end(), [&](const NodeId& a, const NodeId& b) {
    return CloserTo(target, a, b);
  });
  ASSERT_GE(found.size(), 16u);
  // The lookup must find the true closest node.
  EXPECT_EQ(found.front(), all.front());
  // And most of the true top-16 (iterative lookups can miss a straggler).
  int hits = 0;
  for (std::size_t i = 0; i < 16; ++i)
    if (std::find(found.begin(), found.end(), all[i]) != found.end()) ++hits;
  EXPECT_GE(hits, 14);
}

TEST(IterativeFindNode, EmptyLocalTableReturnsEmpty) {
  Rng rng{8};
  RoutingTable local{RandomNodeId(rng)};
  const auto found = IterativeFindNode(
      local, RandomNodeId(rng), 16,
      [](const NodeId&, const NodeId&) { return std::vector<NodeId>{}; });
  EXPECT_TRUE(found.empty());
}

TEST(IterativeFindNode, NeverReturnsSelf) {
  Universe universe{50, 9};
  Rng rng{10};
  const NodeId self = universe.ids[0];
  RoutingTable local{self};
  for (int i = 1; i < 4; ++i) local.Add(universe.ids[static_cast<std::size_t>(i)]);
  const auto found = IterativeFindNode(
      local, self, 16,
      [&](const NodeId& n, const NodeId& t) { return universe.Query(n, t); });
  EXPECT_EQ(std::find(found.begin(), found.end(), self), found.end());
}

}  // namespace
}  // namespace ethsim::p2p
