#include "miner/mining.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "chain/block_arena.hpp"
#include "net/network.hpp"

namespace ethsim::miner {
namespace {

using namespace ethsim::literals;

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every fixture in the suite
  return arena;
}

chain::BlockPtr MakeGenesis(std::uint64_t difficulty) {
  chain::Block b;
  b.header.number = 0;
  b.header.difficulty = difficulty;
  b.Seal();
  return Arena().Adopt(std::move(b));
}

// Two pools with very different shares, one gateway each, fully meshed with
// a few relay nodes.
struct MiningFixture : ::testing::Test {
  // Must be high enough that difficulty = hashrate * 13.3 clears Ethereum's
  // minimum-difficulty clamp (131,072).
  static constexpr double kHashrate = 1e6;  // units/s

  MiningFixture() {
    params.target_interval = Duration::Seconds(13.3);
    params.total_hashrate = kHashrate;
    genesis = MakeGenesis(
        static_cast<std::uint64_t>(kHashrate * params.target_interval.seconds()));
    net = std::make_unique<net::Network>(simulator, Rng{5}, net::NetworkParams{});
  }

  eth::EthNode* AddNode(net::Region region) {
    const net::HostId host = net->AddHost({region, 1e9});
    Rng ids{static_cast<std::uint64_t>(nodes.size()) + 1000};
    nodes.push_back(std::make_unique<eth::EthNode>(simulator, *net, host,
                                                   p2p::RandomNodeId(ids),
                                                   genesis, eth::NodeConfig{},
                                                   Rng{nodes.size() + 77}));
    return nodes.back().get();
  }

  void MeshAll() {
    for (std::size_t i = 0; i < nodes.size(); ++i)
      for (std::size_t j = i + 1; j < nodes.size(); ++j)
        eth::EthNode::Connect(*nodes[i], *nodes[j]);
  }

  std::vector<PoolSpec> TwoPools(double share_a = 0.8, PoolPolicy policy_a = {},
                                 PoolPolicy policy_b = {}) {
    PoolSpec a;
    a.name = "A";
    a.hashrate_share = share_a;
    a.coinbase = PoolCoinbase("A");
    a.gateways = {{net::Region::EasternAsia, 1.0}};
    a.policy = policy_a;
    PoolSpec b;
    b.name = "B";
    b.hashrate_share = 1.0 - share_a;
    b.coinbase = PoolCoinbase("B");
    b.gateways = {{net::Region::WesternEurope, 1.0}};
    b.policy = policy_b;
    return {a, b};
  }

  void RunFor(Duration d) { simulator.RunUntil(simulator.Now() + d); }

  sim::Simulator simulator;
  std::unique_ptr<net::Network> net;
  chain::BlockPtr genesis;
  std::vector<std::unique_ptr<eth::EthNode>> nodes;
  MiningParams params;
};

TEST_F(MiningFixture, ProducesBlocksAtRoughlyTargetInterval) {
  auto pools = TwoPools();
  MiningCoordinator coordinator{simulator, Arena(), Rng{1}, params, pools};
  coordinator.AddGateway(0, AddNode(net::Region::EasternAsia));
  coordinator.AddGateway(1, AddNode(net::Region::WesternEurope));
  MeshAll();
  coordinator.Start();
  RunFor(Duration::Hours(2));

  const double hours = 2.0;
  const double expected = hours * 3600.0 / 13.3;
  EXPECT_NEAR(static_cast<double>(coordinator.blocks_found()), expected,
              expected * 0.25);
  // The chain actually grew (blocks were released and imported).
  EXPECT_GT(coordinator.reference_tree().head_number(), expected * 0.5);
}

TEST_F(MiningFixture, WinnerDistributionFollowsShares) {
  auto pools = TwoPools(0.8);
  MiningCoordinator coordinator{simulator, Arena(), Rng{2}, params, pools};
  coordinator.AddGateway(0, AddNode(net::Region::EasternAsia));
  coordinator.AddGateway(1, AddNode(net::Region::WesternEurope));
  MeshAll();
  coordinator.Start();
  RunFor(Duration::Hours(8));

  std::size_t a = 0, b = 0;
  for (const auto& record : coordinator.minted())
    (record.pool_index == 0 ? a : b) += 1;
  ASSERT_GT(a + b, 1000u);
  EXPECT_NEAR(static_cast<double>(a) / static_cast<double>(a + b), 0.8, 0.04);
}

TEST_F(MiningFixture, MinersBuildOnEachOthersBlocks) {
  auto pools = TwoPools(0.5);
  MiningCoordinator coordinator{simulator, Arena(), Rng{3}, params, pools};
  coordinator.AddGateway(0, AddNode(net::Region::EasternAsia));
  coordinator.AddGateway(1, AddNode(net::Region::WesternEurope));
  for (int i = 0; i < 4; ++i) AddNode(net::Region::CentralEurope);
  MeshAll();
  coordinator.Start();
  RunFor(Duration::Hours(1));

  // Both coinbases must appear in the canonical chain.
  const auto chain_blocks = coordinator.reference_tree().CanonicalChain();
  ASSERT_GT(chain_blocks.size(), 50u);
  std::unordered_map<Address, int> by_miner;
  for (const auto& blk : chain_blocks) ++by_miner[blk->header.miner];
  EXPECT_GE(by_miner.size(), 2u);
}

TEST_F(MiningFixture, EmptyBlockPolicyProducesEmptyBlocks) {
  PoolPolicy always_empty;
  always_empty.empty_block_rate = 1.0;
  auto pools = TwoPools(0.5, always_empty, PoolPolicy{});
  MiningCoordinator coordinator{simulator, Arena(), Rng{4}, params, pools};
  eth::EthNode* gw_a = AddNode(net::Region::EasternAsia);
  eth::EthNode* gw_b = AddNode(net::Region::WesternEurope);
  coordinator.AddGateway(0, gw_a);
  coordinator.AddGateway(1, gw_b);
  MeshAll();

  // Keep the pools non-trivially supplied with txs.
  for (int i = 0; i < 50; ++i) {
    Address sender;
    sender.bytes[0] = static_cast<std::uint8_t>(i + 1);
    gw_b->SubmitTransaction(chain::MakeTransaction(sender, 0, sender, 1, 2));
  }
  coordinator.Start();
  RunFor(Duration::Hours(1));

  int empty_a = 0, nonempty_a = 0, nonempty_b = 0;
  for (const auto& record : coordinator.minted()) {
    if (record.pool_index == 0) {
      (record.block->IsEmpty() ? empty_a : nonempty_a) += 1;
      EXPECT_TRUE(record.deliberate_empty);
    } else if (!record.block->IsEmpty()) {
      ++nonempty_b;
    }
  }
  EXPECT_GT(empty_a, 10);
  EXPECT_EQ(nonempty_a, 0);
  EXPECT_GT(nonempty_b, 0) << "pool B should have packed the submitted txs";
}

TEST_F(MiningFixture, OneMinerForkPolicyEmitsSiblings) {
  PoolPolicy forky;
  forky.one_miner_fork_same_txset_rate = 0.5;
  forky.one_miner_fork_distinct_txset_rate = 0.0;
  auto pools = TwoPools(0.9, forky, PoolPolicy{});
  MiningCoordinator coordinator{simulator, Arena(), Rng{6}, params, pools};
  coordinator.AddGateway(0, AddNode(net::Region::EasternAsia));
  coordinator.AddGateway(0, AddNode(net::Region::NorthAmerica));  // 2nd gateway
  coordinator.AddGateway(1, AddNode(net::Region::WesternEurope));
  MeshAll();
  coordinator.Start();
  RunFor(Duration::Hours(1));

  int primaries = 0, siblings = 0, same_txset = 0;
  std::unordered_map<Hash32, const MintRecord*> by_hash;
  for (const auto& record : coordinator.minted()) by_hash[record.block->hash] = &record;
  for (const auto& record : coordinator.minted()) {
    if (!record.is_fork_sibling) {
      ++primaries;
      continue;
    }
    ++siblings;
    same_txset += record.same_txset_as_primary;
    // The sibling must pair with a primary at the same height.
    const auto it = by_hash.find(record.primary_sibling);
    ASSERT_NE(it, by_hash.end());
    EXPECT_EQ(it->second->block->header.number, record.block->header.number);
    EXPECT_NE(it->second->block->hash, record.block->hash);
  }
  ASSERT_GT(siblings, 20);
  EXPECT_EQ(same_txset, siblings);  // same-txset-only policy
  EXPECT_NEAR(static_cast<double>(siblings) / primaries, 0.5 * 0.9, 0.15);
}

TEST_F(MiningFixture, DifficultyAdjustmentKeepsPace) {
  // Start with difficulty 4x too low: adjustment must pull the interval back
  // up toward the target.
  auto pools = TwoPools();
  genesis = MakeGenesis(static_cast<std::uint64_t>(kHashrate * 13.3 / 4.0));
  MiningCoordinator coordinator{simulator, Arena(), Rng{8}, params, pools};
  coordinator.AddGateway(0, AddNode(net::Region::EasternAsia));
  coordinator.AddGateway(1, AddNode(net::Region::WesternEurope));
  MeshAll();
  coordinator.Start();
  // EIP-100 moves difficulty by ~1/2048 per block; closing a 4x gap needs
  // ~2,800 blocks, so run long enough to converge and then some.
  RunFor(Duration::Hours(16));

  const auto chain_blocks = coordinator.reference_tree().CanonicalChain();
  ASSERT_GT(chain_blocks.size(), 3000u);
  // Interval over the last 200 blocks ~ target (within noise).
  const auto& tail = chain_blocks;
  const std::size_t n = tail.size();
  const double span =
      static_cast<double>(tail[n - 1]->header.timestamp -
                          tail[n - 201]->header.timestamp);
  EXPECT_NEAR(span / 200.0, 13.3, 3.0);
}

TEST_F(MiningFixture, MintRecordsCoverEveryReferenceTreeBlock) {
  auto pools = TwoPools(0.6);
  MiningCoordinator coordinator{simulator, Arena(), Rng{9}, params, pools};
  coordinator.AddGateway(0, AddNode(net::Region::EasternAsia));
  coordinator.AddGateway(1, AddNode(net::Region::WesternEurope));
  MeshAll();
  coordinator.Start();
  RunFor(Duration::Hours(1));

  std::unordered_map<Hash32, bool> minted;
  for (const auto& record : coordinator.minted())
    minted[record.block->hash] = true;
  for (const auto& blk : coordinator.reference_tree().AllBlocks()) {
    if (blk->hash == coordinator.reference_tree().genesis_hash()) continue;
    EXPECT_TRUE(minted.contains(blk->hash));
  }
}

}  // namespace
}  // namespace ethsim::miner
