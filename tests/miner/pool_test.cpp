#include "miner/pool.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ethsim::miner {
namespace {

TEST(PaperPools, RosterMatchesFig3) {
  const auto pools = PaperPools();
  // 15 named pools + remaining bucket + the always-empty solo miner.
  ASSERT_EQ(pools.size(), 17u);
  EXPECT_EQ(pools[0].name, "Ethermine");
  EXPECT_NEAR(pools[0].hashrate_share, 0.2532, 1e-9);
  EXPECT_EQ(pools[1].name, "Sparkpool");
  EXPECT_NEAR(pools[1].hashrate_share, 0.2288, 1e-9);
  EXPECT_EQ(pools[2].name, "F2pool2");
  EXPECT_EQ(pools[14].name, "Hiveon");
  EXPECT_EQ(pools[15].name, "Remaining miners");
  EXPECT_NEAR(pools[15].hashrate_share, 0.0839, 1e-9);
}

TEST(PaperPools, SharesSumToApproximatelyOne) {
  double total = 0;
  for (const auto& p : PaperPools()) total += p.hashrate_share;
  EXPECT_NEAR(total, 1.0, 0.001);
}

TEST(PaperPools, EveryPoolHasGatewaysAndValidWeights) {
  for (const auto& p : PaperPools()) {
    EXPECT_FALSE(p.gateways.empty()) << p.name;
    double w = 0;
    for (const auto& g : p.gateways) {
      EXPECT_GT(g.weight, 0.0) << p.name;
      w += g.weight;
    }
    EXPECT_NEAR(w, 1.0, 1e-6) << p.name;
  }
}

TEST(PaperPools, CoinbasesAreUniqueAndDeterministic) {
  const auto pools = PaperPools();
  std::unordered_set<Address> seen;
  for (const auto& p : pools) {
    EXPECT_FALSE(p.coinbase.is_zero()) << p.name;
    EXPECT_TRUE(seen.insert(p.coinbase).second) << "dup coinbase " << p.name;
    EXPECT_EQ(p.coinbase, PoolCoinbase(p.name));
  }
}

TEST(PaperPools, PolicyShapesMatchPaperObservations) {
  const auto pools = PaperPools();
  auto find = [&](const std::string& name) -> const PoolSpec& {
    for (const auto& p : pools)
      if (p.name == name) return p;
    ADD_FAILURE() << name << " missing";
    return pools[0];
  };

  // §III-C3: Nanopool and Miningpoolhub1 mined no empty blocks.
  EXPECT_EQ(find("Nanopool").policy.empty_block_rate, 0.0);
  EXPECT_EQ(find("Miningpoolhub1").policy.empty_block_rate, 0.0);
  // Zhizhu: more than 25% empty.
  EXPECT_GT(find("Zhizhu").policy.empty_block_rate, 0.25);
  // The Etherscan solo account only mines empty blocks.
  EXPECT_EQ(find("EmptyOnlySolo").policy.empty_block_rate, 1.0);

  // Overall deliberate-empty expectation ≈ 1.45% of blocks.
  double expected_empty = 0;
  double total_share = 0;
  for (const auto& p : pools) {
    expected_empty += p.hashrate_share * p.policy.empty_block_rate;
    total_share += p.hashrate_share;
  }
  EXPECT_NEAR(expected_empty / total_share, 0.0145, 0.002);

  // Overall one-miner-fork expectation ≈ 0.88% of blocks, split 56/44.
  double omf = 0, omf_same = 0;
  for (const auto& p : pools) {
    omf += p.hashrate_share * (p.policy.one_miner_fork_same_txset_rate +
                               p.policy.one_miner_fork_distinct_txset_rate);
    omf_same += p.hashrate_share * p.policy.one_miner_fork_same_txset_rate;
  }
  EXPECT_NEAR(omf / total_share, 0.0088, 0.003);
  EXPECT_NEAR(omf_same / omf, 0.56, 0.01);
}

TEST(PaperPools, AsianPoolsAreEaHeavy) {
  // The Fig 2/3 mechanism: the majority of hashrate releases blocks in EA.
  double ea_weighted = 0, total = 0;
  for (const auto& p : PaperPools()) {
    for (const auto& g : p.gateways) {
      if (g.region == net::Region::EasternAsia ||
          g.region == net::Region::SoutheastAsia)
        ea_weighted += p.hashrate_share * g.weight;
      total += p.hashrate_share * g.weight;
    }
  }
  EXPECT_GT(ea_weighted / total, 0.35);
  EXPECT_LT(ea_weighted / total, 0.60);
}

TEST(PoolCoinbase, DistinctNamesDistinctAddresses) {
  EXPECT_NE(PoolCoinbase("a"), PoolCoinbase("b"));
  EXPECT_EQ(PoolCoinbase("Ethermine"), PoolCoinbase("Ethermine"));
}

}  // namespace
}  // namespace ethsim::miner
