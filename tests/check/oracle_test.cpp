// Oracle suite: a generated scenario's run must come back clean, and the
// test-only injection hook must surface as exactly one synthetic failure so
// the catch -> shrink -> repro pipeline can be exercised end to end.
#include "check/oracles.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/scenario.hpp"
#include "core/experiment.hpp"

namespace ethsim::check {
namespace {

ScenarioOptions Tiny() {
  ScenarioOptions options;
  options.min_nodes = 8;
  options.max_nodes = 8;
  options.min_minutes = 4;
  options.max_minutes = 4;
  return options;
}

TEST(OracleNamesContract, NonEmptyAndDistinct) {
  const std::vector<std::string> names = OracleNames();
  EXPECT_EQ(names.size(), 6u);
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size());
}

TEST(OracleSuite, CleanRunPassesAndInjectionIsCaught) {
  const Scenario scenario = GenerateScenario(1, 0, Tiny());
  core::Experiment exp{scenario.config};
  exp.Run();

  const std::vector<OracleFailure> clean = RunOracles(exp);
  EXPECT_TRUE(clean.empty())
      << (clean.empty() ? std::string{}
                        : clean.front().oracle + ": " + clean.front().detail);

  // The study-input bundle the oracles reconcile over covers every vantage.
  const analysis::StudyInputs inputs = MakeStudyInputs(exp);
  EXPECT_EQ(inputs.observers.size(), exp.observers().size());
  EXPECT_EQ(inputs.pools, &exp.config().pools);
  EXPECT_EQ(inputs.reference, &exp.reference_tree());

  // Rerunning with the hook armed adds exactly the synthetic failure — the
  // real oracles must not flip on a second evaluation of the same run.
  OracleOptions inject;
  inject.inject_failure = "tx-conservation";
  const std::vector<OracleFailure> injected = RunOracles(exp, inject);
  ASSERT_EQ(injected.size(), 1u);
  EXPECT_EQ(injected.front().oracle, "tx-conservation");
  EXPECT_NE(injected.front().detail.find("injected"), std::string::npos);
}

}  // namespace
}  // namespace ethsim::check
