// Scenario-generation contract: the draw is a pure function of
// (fuzz_seed, index), every emitted config validates, the stream covers the
// adversarial shapes (fault plans, workload plans, legacy knobs), and the
// named mutations shrink configs without ever invalidating them.
#include "check/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "common/types.hpp"
#include "core/provenance.hpp"

namespace ethsim::check {
namespace {

std::string Digest(const core::ExperimentConfig& cfg) {
  return ToHex(core::ConfigDigest(cfg));
}

bool Contains(const std::vector<std::string>& names, const char* name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

TEST(ScenarioGenerator, SameKeyDrawsIdenticalConfig) {
  const Scenario a = GenerateScenario(7, 3);
  const Scenario b = GenerateScenario(7, 3);
  EXPECT_EQ(a.config.seed, b.config.seed);
  EXPECT_EQ(Digest(a.config), Digest(b.config));
  EXPECT_EQ(a.config.fault_plan.events.size(),
            b.config.fault_plan.events.size());
  EXPECT_EQ(a.config.workload_plan.sources.size(),
            b.config.workload_plan.sources.size());
}

TEST(ScenarioGenerator, DistinctIndicesDrawDistinctConfigs) {
  std::set<std::string> digests;
  for (std::uint64_t i = 0; i < 8; ++i)
    digests.insert(Digest(GenerateScenario(1, i).config));
  EXPECT_EQ(digests.size(), 8u);
}

TEST(ScenarioGenerator, RespectsBoundsAndArmsTelemetry) {
  ScenarioOptions options;
  options.min_nodes = 6;
  options.max_nodes = 9;
  options.min_minutes = 2;
  options.max_minutes = 3;
  for (std::uint64_t i = 0; i < 12; ++i) {
    const Scenario s = GenerateScenario(42, i, options);
    EXPECT_GE(s.config.peer_nodes, 6u) << i;
    EXPECT_LE(s.config.peer_nodes, 9u) << i;
    EXPECT_GE(s.config.duration.micros(), Duration::Minutes(2).micros()) << i;
    EXPECT_LE(s.config.duration.micros(), Duration::Minutes(3).micros()) << i;
    EXPECT_TRUE(s.config.telemetry.provenance) << i;
    EXPECT_TRUE(s.config.telemetry.txprov) << i;
    EXPECT_EQ(s.config.Validate(), "") << i;
    EXPECT_EQ(s.fuzz_seed, 42u);
    EXPECT_EQ(s.index, i);
  }
}

TEST(ScenarioGenerator, StreamCoversFaultAndWorkloadShapes) {
  std::size_t with_faults = 0, with_sources = 0, legacy = 0;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const Scenario s = GenerateScenario(1, i);
    if (!s.config.fault_plan.empty()) ++with_faults;
    if (s.config.workload_plan.empty())
      ++legacy;
    else
      ++with_sources;
  }
  EXPECT_GT(with_faults, 0u);
  EXPECT_GT(with_sources, 0u);
  EXPECT_GT(legacy, 0u);
}

TEST(ScenarioMutations, EveryApplicableMutationKeepsConfigValid) {
  const Scenario s = GenerateScenario(5, 0);
  const std::vector<std::string> names = ApplicableMutations(s.config);
  // A fresh draw always sits above the structural floors.
  EXPECT_TRUE(Contains(names, "halve-nodes"));
  EXPECT_TRUE(Contains(names, "halve-duration"));
  EXPECT_TRUE(Contains(names, "drop-vantage"));
  EXPECT_TRUE(Contains(names, "halve-dials"));
  for (const std::string& name : names) {
    core::ExperimentConfig copy = s.config;
    EXPECT_TRUE(ApplyMutation(copy, name)) << name;
    EXPECT_EQ(copy.Validate(), "") << name;
    EXPECT_NE(Digest(copy), Digest(s.config)) << name;
  }
}

TEST(ScenarioMutations, InapplicableAndUnknownMutationsAreRejected) {
  Scenario s = GenerateScenario(5, 0);
  s.config.fault_plan.events.clear();
  EXPECT_FALSE(ApplyMutation(s.config, "drop-fault-event"));
  EXPECT_FALSE(ApplyMutation(s.config, "no-such-mutation"));
  EXPECT_FALSE(Contains(ApplicableMutations(s.config), "drop-fault-event"));
}

TEST(ScenarioMutations, DropPoolErasesOutOfRangeGatewayOutages) {
  Scenario s = GenerateScenario(5, 1);
  s.config.fault_plan.events.clear();
  ASSERT_GT(s.config.pools.size(), 1u);
  const auto last_pool =
      static_cast<std::uint32_t>(s.config.pools.size() - 1);
  s.config.fault_plan.GatewayOutage(
      TimePoint::FromMicros(Duration::Minutes(1).micros()),
      Duration::Seconds(30), last_pool);
  ASSERT_TRUE(ApplyMutation(s.config, "drop-pool"));
  // The outage referenced the dropped pool, so it must shrink away with it.
  EXPECT_TRUE(s.config.fault_plan.empty());
  EXPECT_EQ(s.config.Validate(), "");
}

}  // namespace
}  // namespace ethsim::check
