// Delta-debugging shrinker contract. No experiment ever runs here — the
// probes are synthetic predicates over the config — so these tests pin the
// search behavior (minimality, trace replay, budget, failure preservation)
// without paying for simulation.
#include "check/shrink.hpp"

#include <gtest/gtest.h>

#include <string>

#include "check/scenario.hpp"
#include "common/types.hpp"
#include "core/provenance.hpp"

namespace ethsim::check {
namespace {

std::string Digest(const core::ExperimentConfig& cfg) {
  return ToHex(core::ConfigDigest(cfg));
}

Scenario BigScenario() {
  ScenarioOptions options;
  options.min_nodes = 20;
  options.max_nodes = 24;
  return GenerateScenario(9, 0, options);
}

TEST(Shrinker, ConstantFailureShrinksToTheStructuralFloor) {
  const Scenario scenario = BigScenario();
  const ShrinkResult result = Shrink(
      scenario.config, [](const core::ExperimentConfig&) { return "boom"; });
  // The acceptance bar for a repro config: a handful of nodes, a short run,
  // no optional plan entries left to distract from the bug.
  EXPECT_LE(result.config.peer_nodes, 8u);
  EXPECT_LE(result.config.duration.micros(), Duration::Minutes(2).micros());
  EXPECT_TRUE(result.config.fault_plan.empty());
  EXPECT_TRUE(result.config.workload_plan.empty());
  EXPECT_EQ(result.failure, "boom");
  EXPECT_FALSE(result.mutations.empty());
  EXPECT_EQ(result.config.Validate(), "");
}

TEST(Shrinker, MutationTraceReplaysToTheShrunkConfig) {
  const Scenario scenario = BigScenario();
  const ShrinkResult result = Shrink(
      scenario.config, [](const core::ExperimentConfig&) { return "boom"; });
  core::ExperimentConfig replayed = scenario.config;
  for (const std::string& mutation : result.mutations)
    EXPECT_TRUE(ApplyMutation(replayed, mutation)) << mutation;
  EXPECT_EQ(Digest(replayed), Digest(result.config));
}

TEST(Shrinker, PassingStartReturnsUnshrunk) {
  const Scenario scenario = BigScenario();
  const ShrinkResult result = Shrink(
      scenario.config, [](const core::ExperimentConfig&) { return ""; });
  EXPECT_TRUE(result.mutations.empty());
  EXPECT_TRUE(result.failure.empty());
  EXPECT_EQ(result.evaluations, 1u);
  EXPECT_EQ(Digest(result.config), Digest(scenario.config));
}

TEST(Shrinker, NeverAcceptsAMutationThatMakesTheProbePass) {
  ScenarioOptions options;
  options.min_nodes = 16;
  options.max_nodes = 16;
  const Scenario scenario = GenerateScenario(3, 0, options);
  const ShrinkResult result =
      Shrink(scenario.config, [](const core::ExperimentConfig& cfg) {
        return cfg.peer_nodes > 6 ? std::string("too many nodes")
                                  : std::string{};
      });
  // 16 -> 8 still fails; 8 -> 4 would pass and must be rejected.
  EXPECT_EQ(result.config.peer_nodes, 8u);
  EXPECT_EQ(result.failure, "too many nodes");
}

TEST(Shrinker, RespectsTheEvaluationBudget) {
  const Scenario scenario = BigScenario();
  const ShrinkResult result =
      Shrink(scenario.config,
             [](const core::ExperimentConfig&) { return "boom"; }, 3);
  EXPECT_LE(result.evaluations, 3u);
  EXPECT_EQ(result.failure, "boom");
}

}  // namespace
}  // namespace ethsim::check
