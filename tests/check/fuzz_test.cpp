// End-to-end fuzz pipeline under the test-only injection hook: a synthetic
// invariant break must be caught by the named oracle, land in the JSONL
// report, get shrunk to a small repro config, and the written repro file
// must replay — still failing with the hook armed, recovered without it.
#include "check/fuzz.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "check/scenario.hpp"

namespace ethsim::check {
namespace {

TEST(FuzzPipeline, InjectedFailureIsCaughtShrunkAndReplayable) {
  FuzzOptions options;
  options.seed = 1;
  options.runs = 1;
  options.out_dir = testing::TempDir() + "ethsim_fuzz_pipeline";
  options.scenario.min_nodes = 8;
  options.scenario.max_nodes = 8;
  options.scenario.min_minutes = 4;
  options.scenario.max_minutes = 4;
  options.metamorphic = false;
  options.shrink_evaluations = 4;
  options.oracles.inject_failure = "chain-invariants";

  const FuzzOutcome outcome = RunFuzz(options);
  EXPECT_EQ(outcome.scenarios, 1u);
  EXPECT_EQ(outcome.failures, 1u);
  ASSERT_EQ(outcome.repro_paths.size(), 1u);

  std::ifstream report(outcome.report_path);
  ASSERT_TRUE(report.good()) << outcome.report_path;
  std::stringstream buffer;
  buffer << report.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"status\": \"fail\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"name\": \"chain-invariants\""), std::string::npos);
  EXPECT_NE(text.find("\"config_digest\""), std::string::npos);
  EXPECT_NE(text.find("\"status\": \"shrunk\""), std::string::npos);

  ReproSpec spec;
  std::string error;
  ASSERT_TRUE(ReadRepro(outcome.repro_paths.front(), &spec, &error)) << error;
  EXPECT_EQ(spec.kind, "oracle");
  EXPECT_EQ(spec.name, "chain-invariants");
  EXPECT_EQ(spec.fuzz_seed, 1u);
  EXPECT_EQ(spec.index, 0u);

  const core::ExperimentConfig shrunk = ReproConfig(spec);
  EXPECT_LE(shrunk.peer_nodes, 8u);
  EXPECT_EQ(shrunk.Validate(), "");

  // The repro still fires while the synthetic bug is armed, and reports
  // recovery once it is gone.
  EXPECT_EQ(RunRepro(spec, options.oracles), 1);
  EXPECT_EQ(RunRepro(spec), 0);
}

TEST(ReproRoundTrip, WriteThenReadPreservesEveryField) {
  ReproSpec spec;
  spec.fuzz_seed = 11;
  spec.index = 4;
  spec.kind = "relation";
  spec.name = "telemetry-parity";
  spec.config_digest = "deadbeef";
  spec.scenario.min_nodes = 5;
  spec.scenario.max_nodes = 9;
  spec.scenario.min_minutes = 3;
  spec.scenario.max_minutes = 7;
  spec.mutations = {"halve-nodes", "drop-vantage"};

  const std::string path = testing::TempDir() + "ethsim_fuzz_repro.json";
  std::string error;
  ASSERT_TRUE(WriteRepro(path, spec, &error)) << error;
  ReproSpec loaded;
  ASSERT_TRUE(ReadRepro(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.fuzz_seed, 11u);
  EXPECT_EQ(loaded.index, 4u);
  EXPECT_EQ(loaded.kind, "relation");
  EXPECT_EQ(loaded.name, "telemetry-parity");
  EXPECT_EQ(loaded.config_digest, "deadbeef");
  EXPECT_EQ(loaded.scenario.min_nodes, 5u);
  EXPECT_EQ(loaded.scenario.max_nodes, 9u);
  EXPECT_EQ(loaded.scenario.min_minutes, 3);
  EXPECT_EQ(loaded.scenario.max_minutes, 7);
  EXPECT_EQ(loaded.mutations, spec.mutations);
}

TEST(ReproRoundTrip, MissingFileFailsWithError) {
  ReproSpec spec;
  std::string error;
  EXPECT_FALSE(
      ReadRepro(testing::TempDir() + "no-such-dir/nope.json", &spec, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace ethsim::check
