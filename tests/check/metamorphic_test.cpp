// Metamorphic relations on a generated scenario. The suite generalizes the
// repo's golden guarantees — empty-plan bit-inertness, telemetry-off parity,
// replay determinism — into relations checked on arbitrary valid configs, so
// this test proves they hold for a fuzzer draw, not just the hand-built
// configs of the golden tests.
#include "check/metamorphic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "check/scenario.hpp"

namespace ethsim::check {
namespace {

TEST(RelationNamesContract, DistinctAndIncludesGeneralizedGoldens) {
  const std::vector<std::string> names = RelationNames();
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size());
  for (const char* required :
       {"replay-determinism", "telemetry-parity", "empty-fault-plan-inertness",
        "latency-scale-monotone", "region-permutation-equivariance"})
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
}

TEST(MetamorphicSuite, AllRelationsHoldOnGeneratedScenario) {
  ScenarioOptions options;
  options.min_nodes = 8;
  options.max_nodes = 8;
  options.min_minutes = 4;
  options.max_minutes = 4;
  const Scenario scenario = GenerateScenario(1, 0, options);
  const std::vector<RelationResult> results =
      RunMetamorphic(scenario.config);
  EXPECT_EQ(results.size(), RelationNames().size());
  for (const RelationResult& result : results)
    EXPECT_TRUE(result.passed) << result.relation << ": " << result.detail;
}

TEST(MetamorphicSuite, UnknownRelationFailsWithoutRunning) {
  const RelationResult result =
      RunRelation(core::ExperimentConfig{}, "no-such-relation");
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.detail, "unknown relation");
}

}  // namespace
}  // namespace ethsim::check
