// ETHSIM_LOG parsing and diagnostic-line formatting. ParseLogLevel and
// FormatDiagMessage are pure, so the tests never touch the environment (the
// cached DiagLevel/ProgressEnabled getters are process-wide and not
// re-testable per-case).
#include "obs/diag.hpp"

#include <gtest/gtest.h>

namespace {

using ethsim::obs::FormatDiagMessage;
using ethsim::obs::LogLevel;
using ethsim::obs::ParseLogLevel;

TEST(ParseLogLevel, RecognizedNames) {
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("2"), LogLevel::kInfo);
}

TEST(ParseLogLevel, UnsetDefaultsToWarn) {
  EXPECT_EQ(ParseLogLevel(nullptr), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel(""), LogLevel::kWarn);
}

TEST(ParseLogLevel, MalformedDefaultsToWarn) {
  EXPECT_EQ(ParseLogLevel("verbose"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("ERROR"), LogLevel::kWarn);  // case-sensitive
  EXPECT_EQ(ParseLogLevel("3"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("-1"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("1"), LogLevel::kWarn);  // "1" == default tier
  EXPECT_EQ(ParseLogLevel(" info"), LogLevel::kWarn);
}

TEST(FormatDiagMessage, TagAndComponentShape) {
  EXPECT_EQ(FormatDiagMessage(LogLevel::kError, "dataset", "cannot open %s",
                              "logs.bin"),
            "[ethsim:dataset] error: cannot open logs.bin");
  EXPECT_EQ(FormatDiagMessage(LogLevel::kWarn, "sweep", "seed %d skipped", 7),
            "[ethsim:sweep] warn: seed 7 skipped");
  EXPECT_EQ(FormatDiagMessage(LogLevel::kInfo, "telemetry", "flushed"),
            "[ethsim:telemetry] info: flushed");
}

TEST(FormatDiagMessage, FormatsNumericArguments) {
  EXPECT_EQ(FormatDiagMessage(LogLevel::kWarn, "net", "%u drops (%.1f%%)",
                              42u, 3.25),
            "[ethsim:net] warn: 42 drops (3.2%)");
}

TEST(FormatDiagMessage, NoTrailingNewline) {
  const std::string line =
      FormatDiagMessage(LogLevel::kError, "x", "message");
  ASSERT_FALSE(line.empty());
  EXPECT_NE(line.back(), '\n');
}

}  // namespace
