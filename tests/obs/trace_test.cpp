#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "json_check.hpp"

namespace ethsim::obs {
namespace {

TraceEvent Instant(const char* name, std::int64_t ts,
                   TraceCategory cat = TraceCategory::kBlock) {
  TraceEvent event;
  event.name = name;
  event.ts_us = ts;
  event.cat = cat;
  event.phase = 'i';
  return event;
}

// ---------------------------------------------------------------------------
// Category parsing + filtering.

TEST(ParseTraceCategories, EmptyAndAllEnableEverything) {
  EXPECT_EQ(ParseTraceCategories(""), kAllTraceCategories);
  EXPECT_EQ(ParseTraceCategories("all"), kAllTraceCategories);
  EXPECT_EQ(ParseTraceCategories("1"), kAllTraceCategories);
}

TEST(ParseTraceCategories, SelectsNamedCategories) {
  const std::uint32_t mask = ParseTraceCategories("block,net");
  Tracer tracer{mask, 16};
  EXPECT_TRUE(tracer.enabled(TraceCategory::kBlock));
  EXPECT_TRUE(tracer.enabled(TraceCategory::kNet));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kTx));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kMine));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kSim));
}

TEST(ParseTraceCategories, IgnoresUnknownNames) {
  EXPECT_EQ(ParseTraceCategories("block,bogus"),
            ParseTraceCategories("block"));
}

TEST(Tracer, DisabledCategoryIsNotRecorded) {
  Tracer tracer{ParseTraceCategories("block"), 16};
  tracer.Emit(Instant("keep", 1, TraceCategory::kBlock));
  tracer.Emit(Instant("skip", 2, TraceCategory::kNet));
  EXPECT_EQ(tracer.emitted(), 1u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "keep");
}

// ---------------------------------------------------------------------------
// Ring behavior.

TEST(Tracer, RingKeepsTailAndCountsDropped) {
  Tracer tracer{kAllTraceCategories, 4};
  for (std::int64_t i = 0; i < 10; ++i) tracer.Emit(Instant("e", i));
  EXPECT_EQ(tracer.emitted(), 10u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first tail: timestamps 6..9.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].ts_us, static_cast<std::int64_t>(6 + i));
}

TEST(Tracer, NoDropsBelowCapacity) {
  Tracer tracer{kAllTraceCategories, 128};
  for (std::int64_t i = 0; i < 100; ++i) tracer.Emit(Instant("e", i));
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.Events().size(), 100u);
}

TEST(Tracer, CapacityClampedToAtLeastOne) {
  Tracer tracer{kAllTraceCategories, 0};
  EXPECT_GE(tracer.capacity(), 1u);
  tracer.Emit(Instant("e", 1));
  EXPECT_EQ(tracer.size(), 1u);
}

// ---------------------------------------------------------------------------
// Chrome trace JSON.

TEST(Tracer, ChromeTraceJsonIsWellFormed) {
  Tracer tracer{kAllTraceCategories, 64};
  TraceEvent span;
  span.name = "block.validate";
  span.arg_kind = "new_block";
  span.ts_us = 1'000;
  span.dur_us = 50;
  span.arg_hash = 0xdeadbeefcafef00dull;
  span.arg_num = 7'479'574;
  span.pid = 3;
  span.tid = 9;
  span.cat = TraceCategory::kBlock;
  span.phase = 'X';
  tracer.Emit(span);
  tracer.Emit(Instant("mine.mint", 2'000, TraceCategory::kMine));

  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_TRUE(ethsim::testing::IsWellFormedJson(json)) << json;
  // Chrome trace-event envelope + both events present.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("block.validate"), std::string::npos);
  EXPECT_NE(json.find("mine.mint"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
}

TEST(Tracer, EmptyTraceIsStillValidJson) {
  Tracer tracer{kAllTraceCategories, 8};
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_TRUE(ethsim::testing::IsWellFormedJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Tracer, SerializationIsDeterministic) {
  const auto build = [] {
    Tracer tracer{kAllTraceCategories, 32};
    for (std::int64_t i = 0; i < 40; ++i)
      tracer.Emit(Instant("e", i, static_cast<TraceCategory>(i % 5)));
    return tracer.ToChromeTraceJson();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace ethsim::obs
