// Minimal recursive-descent JSON validator for telemetry tests. Not a
// parser — it only answers "is this byte sequence well-formed JSON?", which
// is what the trace/manifest well-formedness tests need without dragging a
// JSON library into the build. Accepts exactly RFC 8259 grammar (objects,
// arrays, strings with escapes, numbers, true/false/null).
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace ethsim::testing {

class JsonChecker {
 public:
  // True when `text` is one complete, well-formed JSON value (surrounded by
  // optional whitespace). On failure `failed_at()` reports the byte offset.
  bool Check(std::string_view text) {
    text_ = text;
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size() || Fail();
  }

  std::size_t failed_at() const { return failed_at_; }

 private:
  bool Fail() {
    failed_at_ = pos_;
    return false;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r'))
      ++pos_;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return Fail();
    pos_ += word.size();
    return true;
  }

  bool Value() {
    if (AtEnd()) return Fail();
    switch (Peek()) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (!AtEnd() && Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (AtEnd() || Peek() != '"' || !String()) return Fail();
      SkipWs();
      if (AtEnd() || Peek() != ':') return Fail();
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (AtEnd()) return Fail();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return Fail();
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (!AtEnd() && Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (AtEnd()) return Fail();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return Fail();
    }
  }

  bool String() {
    ++pos_;  // opening quote
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return Fail();
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return Fail();
        const char esc = Peek();
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(Peek())))
              return Fail();
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Fail();
        }
      }
      ++pos_;
    }
    return Fail();  // unterminated
  }

  bool Digits() {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek())))
      return Fail();
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    return true;
  }

  bool Number() {
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd()) return Fail();
    if (Peek() == '0') {
      ++pos_;
    } else if (!Digits()) {
      return false;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (!Digits()) return false;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (!Digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t failed_at_ = 0;
};

inline bool IsWellFormedJson(std::string_view text) {
  return JsonChecker{}.Check(text);
}

}  // namespace ethsim::testing
