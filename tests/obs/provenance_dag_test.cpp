// Unit tests for the provenance recorder: the 3-step stage/finalize/resolve
// protocol, per-(from,to) FIFO resolution, hop-depth inheritance, ring spill
// + global send-order restoration, late offline re-attribution, the binary
// artifact round-trip, and every invariant check (driven through set_handler
// so no test aborts the process).
#include "obs/provenance_dag.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ethsim::obs {
namespace {

Hash32 H(std::uint8_t tag) {
  Hash32 h;
  h.bytes[0] = tag;  // prefix_u64 == tag << 56
  return h;
}

std::uint64_t Prefix(std::uint8_t tag) { return H(tag).prefix_u64(); }

// A recorder with hosts 0..n-1 registered and a non-aborting checker whose
// violations are collected into `violations`.
struct Harness {
  explicit Harness(std::size_t hosts, std::size_t ring = 4096) {
    ProvenanceConfig cfg;
    cfg.ring_capacity = ring;
    recorder = std::make_unique<ProvenanceRecorder>(cfg);
    recorder->checker().set_handler(
        [this](InvariantCheck check, const std::string& detail) {
          violations.emplace_back(check, detail);
        });
    for (std::size_t i = 0; i < hosts; ++i)
      recorder->RegisterHost(static_cast<std::uint32_t>(i),
                             static_cast<std::uint8_t>(i % 7));
  }

  // Stage + schedule + resolve one block-message edge in one call.
  void Relay(std::uint32_t from, std::uint32_t to, EdgeKind kind,
             std::uint8_t tag, std::int64_t send_us, std::int64_t arrival_us,
             std::uint64_t number = 1) {
    recorder->StageBlockEdge(from, to, kind, H(tag), number, nullptr, 600,
                             send_us);
    recorder->FinalizeScheduled(from, to, arrival_us);
    recorder->ResolveDelivery(from, to, /*online=*/true, arrival_us);
  }

  std::unique_ptr<ProvenanceRecorder> recorder;
  std::vector<std::pair<InvariantCheck, std::string>> violations;
};

TEST(ProvenanceRecorder, OriginThenRelayInheritsHopDepths) {
  Harness h{3};
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 1000);
  std::uint16_t depth = 99;
  ASSERT_TRUE(h.recorder->FirstSeenDepth(0, Prefix(1), &depth));
  EXPECT_EQ(depth, 0);

  // 0 -> 1 push: edge hop 1, receiver first-seen depth 1 (at schedule time).
  h.Relay(0, 1, EdgeKind::kNewBlock, 1, 1100, 2000);
  ASSERT_TRUE(h.recorder->FirstSeenDepth(1, Prefix(1), &depth));
  EXPECT_EQ(depth, 1);

  // 1 -> 2 relay after its copy arrived: hop 2.
  h.Relay(1, 2, EdgeKind::kNewBlock, 1, 2100, 3000);
  ASSERT_TRUE(h.recorder->FirstSeenDepth(2, Prefix(1), &depth));
  EXPECT_EQ(depth, 2);

  const ProvenanceLog& log = h.recorder->Finish();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.hop[0], 0);  // origin
  EXPECT_EQ(log.hop[1], 1);
  EXPECT_EQ(log.hop[2], 2);
  EXPECT_TRUE(h.violations.empty());
}

TEST(ProvenanceRecorder, FirstSeenKeepsEarliestArrival) {
  Harness h{3};
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 0);
  // Same block minted at a second host (a one-miner fork replay): a distinct
  // (host, block) pair, so no duplicate-first-seen violation.
  h.recorder->RecordOrigin(2, H(1), H(9), 100, 0);

  // Two copies race to host 1; the slower-scheduled one arrives first.
  h.Relay(0, 1, EdgeKind::kNewBlock, 1, 10, 5000);
  std::uint16_t depth = 0;
  ASSERT_TRUE(h.recorder->FirstSeenDepth(1, Prefix(1), &depth));
  EXPECT_EQ(depth, 1);
  // An announcement from host 2 arriving earlier takes over the record.
  h.Relay(2, 1, EdgeKind::kAnnouncement, 1, 20, 3000);
  ASSERT_TRUE(h.recorder->FirstSeenDepth(1, Prefix(1), &depth));
  EXPECT_EQ(depth, 1);  // still depth 1, but from the earlier edge
  // A *tie* must not displace the admitted record (strictly-less update).
  h.Relay(0, 1, EdgeKind::kAnnouncement, 1, 30, 3000);
  ASSERT_TRUE(h.recorder->FirstSeenDepth(1, Prefix(1), &depth));
  EXPECT_EQ(depth, 1);
}

TEST(ProvenanceRecorder, PerPairFifoResolvesInOrderAcrossKinds) {
  Harness h{2};
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 0);
  // Interleave a tx batch between two block messages on the same pair; the
  // resolution pops must track schedule order, not kind.
  h.recorder->StageBlockEdge(0, 1, EdgeKind::kAnnouncement, H(1), 100, nullptr,
                             40, 10);
  h.recorder->FinalizeScheduled(0, 1, 100);
  h.recorder->StageTxEdge(0, 1, 3, 300, 20);
  h.recorder->FinalizeScheduled(0, 1, 110);
  h.recorder->StageBlockEdge(0, 1, EdgeKind::kNewBlock, H(1), 100, nullptr,
                             600, 30);
  h.recorder->FinalizeScheduled(0, 1, 120);
  h.recorder->ResolveDelivery(0, 1, true, 100);
  h.recorder->ResolveDelivery(0, 1, true, 110);
  h.recorder->ResolveDelivery(0, 1, true, 120);
  EXPECT_TRUE(h.violations.empty());
  const ProvenanceLog& log = h.recorder->Finish();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(static_cast<EdgeKind>(log.kind[1]), EdgeKind::kAnnouncement);
  EXPECT_EQ(static_cast<EdgeKind>(log.kind[2]), EdgeKind::kTransactions);
  EXPECT_EQ(log.number[2], 3u);  // tx count rides in `number`
  EXPECT_EQ(static_cast<EdgeKind>(log.kind[3]), EdgeKind::kNewBlock);
}

TEST(ProvenanceRecorder, DroppedEdgeNeverEntersFifoOrFirstSeen) {
  Harness h{2};
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 0);
  h.recorder->StageBlockEdge(0, 1, EdgeKind::kNewBlock, H(1), 100, nullptr,
                             600, 10);
  h.recorder->FinalizeDropped(0, 1, EdgeDrop::kRandomLoss);
  std::uint16_t depth = 0;
  EXPECT_FALSE(h.recorder->FirstSeenDepth(1, Prefix(1), &depth));
  const ProvenanceLog& log = h.recorder->Finish();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(static_cast<EdgeDrop>(log.drop[1]), EdgeDrop::kRandomLoss);
  EXPECT_EQ(log.arrival_us[1], -1);
  EXPECT_FALSE(log.delivered(1));
}

TEST(ProvenanceRecorder, OfflineIngressIsReattributedAtFinish) {
  Harness h{2};
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 0);
  h.recorder->StageBlockEdge(0, 1, EdgeKind::kNewBlock, H(1), 100, nullptr,
                             600, 10);
  h.recorder->FinalizeScheduled(0, 1, 100);
  // Receiver crashed while the copy was in flight.
  h.recorder->ResolveDelivery(0, 1, /*online=*/false, 100);
  const ProvenanceLog& log = h.recorder->Finish();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(static_cast<EdgeDrop>(log.drop[1]), EdgeDrop::kOffline);
  EXPECT_FALSE(log.delivered(1));
  EXPECT_TRUE(h.violations.empty());  // crashed receiver: correct drop
}

TEST(ProvenanceRecorder, TinyRingStillRestoresGlobalSendOrder) {
  Harness h{4, /*ring=*/1};  // spill after every record
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 0);
  // Senders interleave so per-sender rings alone cannot give send order.
  h.Relay(0, 1, EdgeKind::kNewBlock, 1, 10, 1000);
  h.Relay(0, 2, EdgeKind::kAnnouncement, 1, 20, 1500);
  h.Relay(1, 3, EdgeKind::kNewBlock, 1, 1100, 2100);
  h.Relay(2, 3, EdgeKind::kAnnouncement, 1, 1600, 2600);
  h.Relay(1, 2, EdgeKind::kNewBlock, 1, 1700, 2700);
  const ProvenanceLog& log = h.recorder->Finish();
  ASSERT_EQ(log.size(), 6u);
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_LE(log.send_us[i - 1], log.send_us[i]) << i;
  EXPECT_EQ(h.recorder->edges_recorded(), 6u);
}

TEST(ProvenanceRecorder, EndTimeExcludesInFlightEdges) {
  Harness h{2};
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 0);
  h.Relay(0, 1, EdgeKind::kNewBlock, 1, 10, 1000);
  h.recorder->StageBlockEdge(0, 1, EdgeKind::kAnnouncement, H(1), 100, nullptr,
                             40, 20);
  h.recorder->FinalizeScheduled(0, 1, 9000);  // past cutoff, never resolved
  h.recorder->SetEndTime(5000);
  const ProvenanceLog& log = h.recorder->Finish();
  EXPECT_EQ(log.end_us, 5000);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_TRUE(log.delivered(1));
  EXPECT_FALSE(log.delivered(2));  // in flight at cutoff
}

TEST(ProvenanceRecorder, BinaryArtifactRoundTripsBitExact) {
  Harness h{3};
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 0);
  h.Relay(0, 1, EdgeKind::kNewBlock, 1, 10, 1000);
  h.Relay(0, 2, EdgeKind::kAnnouncement, 1, 20, 1100);
  h.recorder->StageBlockEdge(2, 0, EdgeKind::kGetBlock, H(1), 100, nullptr, 48,
                             1200);
  h.recorder->FinalizeDropped(2, 0, EdgeDrop::kPartitioned);
  h.recorder->SetEndTime(60'000'000);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "ethsim_prov_rt").string();
  std::string error;
  ASSERT_TRUE(h.recorder->WriteArtifact(dir, &error)) << error;

  ProvenanceLog loaded;
  ASSERT_TRUE(ProvenanceLog::ReadBinary(dir + "/provenance.bin", &loaded,
                                        &error))
      << error;
  const ProvenanceLog& log = h.recorder->Finish();
  ASSERT_EQ(loaded.size(), log.size());
  EXPECT_EQ(loaded.end_us, log.end_us);
  EXPECT_EQ(loaded.host_region, log.host_region);
  EXPECT_EQ(loaded.send_us, log.send_us);
  EXPECT_EQ(loaded.arrival_us, log.arrival_us);
  EXPECT_EQ(loaded.from, log.from);
  EXPECT_EQ(loaded.to, log.to);
  EXPECT_EQ(loaded.object, log.object);
  EXPECT_EQ(loaded.parent, log.parent);
  EXPECT_EQ(loaded.number, log.number);
  EXPECT_EQ(loaded.bytes, log.bytes);
  EXPECT_EQ(loaded.hop, log.hop);
  EXPECT_EQ(loaded.kind, log.kind);
  EXPECT_EQ(loaded.drop, log.drop);
  std::filesystem::remove_all(dir);
}

TEST(ProvenanceLog, ReadBinaryRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ethsim_prov_bad.bin").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTPROV0", f);
  std::fclose(f);
  ProvenanceLog log;
  std::string error;
  EXPECT_FALSE(ProvenanceLog::ReadBinary(path, &log, &error));
  EXPECT_FALSE(error.empty());
  std::filesystem::remove(path);
}

// ----- invariant checks ------------------------------------------------------

TEST(ProvenanceInvariants, DuplicateOriginFlagged) {
  Harness h{2};
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 0);
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 10);  // same (host, block)
  ASSERT_EQ(h.violations.size(), 1u);
  EXPECT_EQ(h.violations[0].first, InvariantCheck::kDuplicateFirstSeen);
  EXPECT_EQ(h.recorder->violations(), 1u);
}

TEST(ProvenanceInvariants, RelayWithoutReceiveFlagged) {
  Harness h{2};
  // Host 0 pushes a block it never minted nor received.
  h.Relay(0, 1, EdgeKind::kNewBlock, 7, 10, 1000);
  ASSERT_EQ(h.violations.size(), 1u);
  EXPECT_EQ(h.violations[0].first, InvariantCheck::kRelayWithoutReceive);
}

TEST(ProvenanceInvariants, FetchWithoutAnnounceFlagged) {
  Harness h{2};
  h.recorder->StageBlockEdge(0, 1, EdgeKind::kGetBlock, H(7), 100, nullptr, 48,
                             10);
  h.recorder->FinalizeScheduled(0, 1, 100);
  h.recorder->ResolveDelivery(0, 1, true, 100);
  ASSERT_EQ(h.violations.size(), 1u);
  EXPECT_EQ(h.violations[0].first, InvariantCheck::kFetchWithoutAnnounce);
}

TEST(ProvenanceInvariants, OrphanParentFetchIsLegitimate) {
  Harness h{3};
  h.recorder->RecordOrigin(0, H(2), H(1), 101, 0);  // block 2's parent is 1
  // Host 1 receives block 2's full body -> learns parent prefix H(1).
  Hash32 parent = H(1);
  h.recorder->StageBlockEdge(0, 1, EdgeKind::kNewBlock, H(2), 101, &parent,
                             600, 10);
  h.recorder->FinalizeScheduled(0, 1, 100);
  h.recorder->ResolveDelivery(0, 1, true, 100);
  // Host 1 fetches the never-announced parent: orphan path, no violation.
  h.recorder->StageBlockEdge(1, 0, EdgeKind::kGetBlock, H(1), 100, nullptr, 48,
                             200);
  h.recorder->FinalizeScheduled(1, 0, 300);
  h.recorder->ResolveDelivery(1, 0, true, 300);
  EXPECT_TRUE(h.violations.empty());
}

TEST(ProvenanceInvariants, NonMonotoneHopFlagged) {
  Harness h{3};
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 0);
  // Copy scheduled to arrive at host 1 at t=5000 ...
  h.Relay(0, 1, EdgeKind::kNewBlock, 1, 10, 5000);
  // ... but host 1 "relays" at t=1000, before its copy arrived.
  h.Relay(1, 2, EdgeKind::kNewBlock, 1, 1000, 6000);
  ASSERT_EQ(h.violations.size(), 1u);
  EXPECT_EQ(h.violations[0].first, InvariantCheck::kNonMonotoneHop);
}

TEST(ProvenanceInvariants, DeliveryWhileMarkedDownFlagged) {
  Harness h{2};
  h.recorder->RecordOrigin(0, H(1), H(9), 100, 0);
  h.recorder->NoteHostOnline(1, false);  // fault layer downed host 1
  h.recorder->StageBlockEdge(0, 1, EdgeKind::kNewBlock, H(1), 100, nullptr,
                             600, 10);
  h.recorder->FinalizeScheduled(0, 1, 100);
  // The node nonetheless processes the delivery (online=true): inconsistency
  // between the fault layer's view and the node's.
  h.recorder->ResolveDelivery(0, 1, /*online=*/true, 100);
  ASSERT_EQ(h.violations.size(), 1u);
  EXPECT_EQ(h.violations[0].first, InvariantCheck::kDeliveryWhileOffline);
  // After rejoin, deliveries are clean again.
  h.recorder->NoteHostOnline(1, true);
  h.Relay(0, 1, EdgeKind::kAnnouncement, 1, 200, 300);
  EXPECT_EQ(h.violations.size(), 1u);
}

TEST(ProvenanceInvariants, CountersFeedMetricsRegistry) {
  MetricsRegistry metrics;
  ProvenanceRecorder recorder{ProvenanceConfig{}};
  recorder.AttachMetrics(&metrics);
  recorder.checker().set_handler([](InvariantCheck, const std::string&) {});
  recorder.RegisterHost(0, 0);
  recorder.RegisterHost(1, 0);
  recorder.RecordOrigin(0, H(1), H(9), 100, 0);
  recorder.RecordOrigin(0, H(1), H(9), 100, 10);  // duplicate
  Counter* violation = metrics.GetCounter(
      LabeledName("provenance.violation", {{"check", "duplicate_first_seen"}}));
  ASSERT_NE(violation, nullptr);
  EXPECT_EQ(violation->value(), 1u);
  Counter* edges = metrics.GetCounter(
      LabeledName("provenance.edge", {{"kind", "origin"}}));
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->value(), 2u);
}

}  // namespace
}  // namespace ethsim::obs
