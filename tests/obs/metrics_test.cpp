#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "json_check.hpp"

namespace ethsim::obs {
namespace {

// ---------------------------------------------------------------------------
// Instruments.

TEST(Counter, AddsAndDefaultsToOne) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksHighWater) {
  Gauge g;
  g.Set(5);
  g.Set(12);
  g.Set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.high_water(), 12);
  g.Add(-10);
  EXPECT_EQ(g.value(), -7);
  EXPECT_EQ(g.high_water(), 12);
}

TEST(Histogram, BucketsObservationsByInclusiveUpperBound) {
  Histogram h{{10, 100, 1000}};
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 bounds + overflow
  h.Observe(10);    // inclusive: lands in bucket 0
  h.Observe(11);    // bucket 1
  h.Observe(1000);  // bucket 2
  h.Observe(5000);  // overflow
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 10 + 11 + 1000 + 5000);
  EXPECT_EQ(h.bound(0), 10);
  EXPECT_EQ(h.bound(3), INT64_MAX);
}

TEST(Histogram, QuantileInterpolatesAndHandlesEmpty) {
  Histogram empty{{10, 100}};
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  Histogram h{{10, 100, 1000}};
  for (int i = 0; i < 100; ++i) h.Observe(5);  // all in bucket 0
  // Median of a bucket-only distribution must land inside that bucket.
  const double q50 = h.Quantile(0.5);
  EXPECT_GE(q50, 0.0);
  EXPECT_LE(q50, 10.0);
  for (int i = 0; i < 100; ++i) h.Observe(500);  // bucket 2
  const double q99 = h.Quantile(0.99);
  EXPECT_GT(q99, 100.0);
  EXPECT_LE(q99, 1000.0);
}

TEST(CanonicalBuckets, AreSortedStrictlyIncreasing) {
  for (const auto& bounds : {LatencyBucketsUs(), SizeBucketsBytes()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i)
      EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ---------------------------------------------------------------------------
// Names.

TEST(LabeledName, RendersLabelsInCallerOrder) {
  EXPECT_EQ(LabeledName("net.msg.sent", {{"kind", "new_block"}}),
            "net.msg.sent{kind=new_block}");
  EXPECT_EQ(LabeledName("net.msg.dropped",
                        {{"kind", "announcement"}, {"region", "WE"}}),
            "net.msg.dropped{kind=announcement,region=WE}");
  EXPECT_EQ(LabeledName("plain", {}), "plain");
}

TEST(MsgKindName, CoversEveryKind) {
  for (std::size_t i = 0; i < kMsgKindCount; ++i)
    EXPECT_FALSE(MsgKindName(static_cast<MsgKind>(i)).empty());
}

// ---------------------------------------------------------------------------
// Registry.

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("y");
  Gauge* g2 = registry.GetGauge("y");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = registry.GetHistogram("z", {1, 2, 3});
  Histogram* h2 = registry.GetHistogram("z", {1, 2, 3});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, PointersSurviveLaterRegistrations) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("m");
  // std::map nodes are stable: a burst of registrations must not move `first`.
  for (int i = 0; i < 1000; ++i)
    registry.GetCounter("filler." + std::to_string(i));
  first->Add(7);
  EXPECT_EQ(registry.FindCounter("m")->value(), 7u);
  EXPECT_EQ(registry.FindCounter("m"), first);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("absent"), nullptr);
  EXPECT_EQ(registry.FindGauge("absent"), nullptr);
  EXPECT_EQ(registry.FindHistogram("absent"), nullptr);
  EXPECT_TRUE(registry.empty());
}

TEST(MetricsRegistry, MergeFromAccumulates) {
  MetricsRegistry a, b;
  a.GetCounter("c")->Add(2);
  b.GetCounter("c")->Add(3);
  b.GetCounter("only_b")->Add(1);
  a.GetGauge("g")->Set(5);
  b.GetGauge("g")->Set(9);
  b.GetGauge("g")->Set(1);  // b: value 1, high-water 9
  a.GetHistogram("h", {10, 100})->Observe(7);
  b.GetHistogram("h", {10, 100})->Observe(70);

  a.MergeFrom(b);
  EXPECT_EQ(a.FindCounter("c")->value(), 5u);
  EXPECT_EQ(a.FindCounter("only_b")->value(), 1u);
  EXPECT_EQ(a.FindGauge("g")->high_water(), 9);
  const Histogram* h = a.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->sum(), 77);
}

TEST(MetricsRegistry, JsonlIsSortedDeterministicAndWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetGauge("mid")->Set(3);
  registry.GetHistogram("hist", LatencyBucketsUs())->Observe(12345);

  const std::string jsonl = registry.ToJsonl();
  // Same registry, same bytes.
  EXPECT_EQ(jsonl, registry.ToJsonl());
  // alpha precedes zeta in the stream (sorted by name within each section).
  EXPECT_LT(jsonl.find("alpha"), jsonl.find("zeta"));

  // Every line is a standalone well-formed JSON object.
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t objects = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(ethsim::testing::IsWellFormedJson(line)) << line;
    EXPECT_EQ(line.front(), '{');
    ++objects;
  }
  EXPECT_EQ(objects, registry.size());
}

}  // namespace
}  // namespace ethsim::obs
