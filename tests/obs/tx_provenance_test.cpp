// Unit tests for the transaction-lifecycle flight recorder: stage record
// plumbing, pool-outcome mapping, vantage/anchor role filtering, the
// depth-sweep commit queue (sticky committed mask across reorgs), every
// invariant check (driven through set_handler so no test aborts the
// process), and the txprov.bin artifact round-trip with its corruption
// diagnostics.
#include "obs/tx_provenance.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ethsim::obs {
namespace {

Hash32 H(std::uint8_t tag) {
  Hash32 h;
  h.bytes[0] = tag;  // prefix_u64 == tag << 56
  return h;
}

std::uint64_t Prefix(std::uint8_t tag) { return H(tag).prefix_u64(); }

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("ethsim_txprov_test_") + name))
      .string();
}

// A recorder with hosts 0..n-1 registered (region = host % 7), host 1 marked
// vantage, host 0 marked anchor, and a non-aborting checker whose violations
// are collected into `violations`.
struct Harness {
  explicit Harness(std::size_t hosts,
                   std::vector<std::uint64_t> depths = {0, 2}) {
    TxProvConfig cfg;
    cfg.confirmation_depths = std::move(depths);
    recorder = std::make_unique<TxProvRecorder>(cfg);
    recorder->checker().set_handler(
        [this](TxInvariant check, const std::string& detail) {
          violations.emplace_back(check, detail);
        });
    for (std::size_t i = 0; i < hosts; ++i)
      recorder->RegisterHost(static_cast<std::uint32_t>(i),
                             static_cast<std::uint8_t>(i % 7));
    if (hosts > 1) recorder->MarkVantage(1);
    recorder->MarkAnchor(0);
  }

  // Submit + admit + select + include one tx in one call; the commit sweep
  // stays with the caller.
  void Lifecycle(std::uint8_t tag, std::int64_t base_us, std::uint8_t block,
                 std::uint64_t height) {
    recorder->RecordSubmitted(H(tag), base_us, /*frontend_host=*/2,
                              /*source=*/0, /*gas_price=*/50, 0);
    recorder->RecordPoolOutcome(2, H(tag), base_us + 10,
                                TxPoolOutcome::kPending, 50);
    recorder->RecordSelected(0, H(tag), base_us + 100, /*pool=*/3, H(block),
                             height);
    recorder->RecordIncluded(0, H(tag), base_us + 200, H(block), height);
  }

  std::unique_ptr<TxProvRecorder> recorder;
  std::vector<std::pair<TxInvariant, std::string>> violations;
};

// Counts records in `log` with the given stage for the given tx prefix.
std::size_t CountStage(const TxProvLog& log, TxStage stage,
                       std::uint64_t tx) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < log.size(); ++i)
    if (log.stage[i] == static_cast<std::uint8_t>(stage) && log.tx[i] == tx)
      ++n;
  return n;
}

TEST(TxProvRecorder, FullLifecycleCommitsEveryDepthOnce) {
  Harness h{3};
  h.Lifecycle(1, 1000, /*block=*/9, /*height=*/5);
  h.recorder->AdvanceHead(0, 5, 2000);  // depth 0 matures
  h.recorder->AdvanceHead(0, 6, 3000);  // depth 2 not yet
  h.recorder->AdvanceHead(0, 7, 4000);  // depth 2 matures
  h.recorder->AdvanceHead(0, 50, 5000);  // must not re-commit any depth

  const TxProvLog& log = h.recorder->Finish();
  EXPECT_TRUE(h.violations.empty());
  EXPECT_EQ(CountStage(log, TxStage::kSubmitted, Prefix(1)), 1u);
  EXPECT_EQ(CountStage(log, TxStage::kPoolAdmitted, Prefix(1)), 1u);
  EXPECT_EQ(CountStage(log, TxStage::kSelected, Prefix(1)), 1u);
  EXPECT_EQ(CountStage(log, TxStage::kIncluded, Prefix(1)), 1u);
  EXPECT_EQ(CountStage(log, TxStage::kCommitted, Prefix(1)), 2u);

  // Commit records carry depth in info, the including block prefix in aux,
  // and the include height in number.
  std::vector<std::uint16_t> depths;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log.stage[i] != static_cast<std::uint8_t>(TxStage::kCommitted))
      continue;
    depths.push_back(log.info[i]);
    EXPECT_EQ(log.aux[i], Prefix(9));
    EXPECT_EQ(log.number[i], 5u);
  }
  EXPECT_EQ(depths, (std::vector<std::uint16_t>{0, 2}));
}

TEST(TxProvRecorder, PoolOutcomeMappingAndAdmittedFlag) {
  Harness h{3};
  const std::int64_t t = 100;
  h.recorder->RecordPoolOutcome(2, H(1), t, TxPoolOutcome::kPending, 10);
  h.recorder->RecordPoolOutcome(2, H(2), t, TxPoolOutcome::kQueued, 10);
  h.recorder->RecordPoolOutcome(2, H(3), t, TxPoolOutcome::kReplaced, 10);
  h.recorder->RecordPoolOutcome(2, H(4), t, TxPoolOutcome::kKnown, 10);
  h.recorder->RecordPoolOutcome(2, H(5), t, TxPoolOutcome::kStale, 10);
  h.recorder->RecordPoolOutcome(2, H(6), t, TxPoolOutcome::kRejected, 10);

  // Replacement admission counts as admitted: including H(3) is clean, while
  // including the rejected H(6) trips include_without_admit.
  h.recorder->RecordIncluded(0, H(3), 200, H(9), 1);
  EXPECT_TRUE(h.violations.empty());
  h.recorder->RecordIncluded(0, H(6), 300, H(9), 1);
  ASSERT_EQ(h.violations.size(), 1u);
  EXPECT_EQ(h.violations[0].first, TxInvariant::kIncludeWithoutAdmit);

  const TxProvLog& log = h.recorder->Finish();
  EXPECT_EQ(CountStage(log, TxStage::kPoolAdmitted, Prefix(1)), 1u);
  EXPECT_EQ(CountStage(log, TxStage::kPoolAdmitted, Prefix(2)), 1u);
  EXPECT_EQ(CountStage(log, TxStage::kPoolReplaced, Prefix(3)), 1u);
  EXPECT_EQ(CountStage(log, TxStage::kPoolRejected, Prefix(4)), 1u);
  EXPECT_EQ(CountStage(log, TxStage::kPoolRejected, Prefix(5)), 1u);
  EXPECT_EQ(CountStage(log, TxStage::kPoolRejected, Prefix(6)), 1u);
  // The outcome itself rides in info even when stages coincide.
  const std::uint16_t expected_info[] = {
      static_cast<std::uint16_t>(TxPoolOutcome::kPending),
      static_cast<std::uint16_t>(TxPoolOutcome::kQueued),
      static_cast<std::uint16_t>(TxPoolOutcome::kReplaced),
      static_cast<std::uint16_t>(TxPoolOutcome::kKnown),
      static_cast<std::uint16_t>(TxPoolOutcome::kStale),
      static_cast<std::uint16_t>(TxPoolOutcome::kRejected)};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(log.tx[i], Prefix(static_cast<std::uint8_t>(i + 1)));
    EXPECT_EQ(log.info[i], expected_info[i]);
  }
}

TEST(TxProvRecorder, ReorgStickyCommitMaskAndFreshSchedule) {
  MetricsRegistry metrics;
  Harness h{3};
  h.recorder->AttachMetrics(&metrics);
  Counter* committed = metrics.GetCounter(
      LabeledName("txprov.record", {{"stage", "committed"}}));
  h.Lifecycle(1, 1000, /*block=*/9, /*height=*/5);
  h.recorder->AdvanceHead(0, 5, 2000);  // commit depth 0 at height 5
  EXPECT_EQ(committed->value(), 1);

  // Reorg: block 9 retired, tx re-included via block 8 at height 6.
  h.recorder->RecordOrphanReturned(0, H(1), 2500, H(9), 5);
  h.recorder->RecordIncluded(0, H(1), 2600, H(8), 6);
  // The old depth-2 entry (key 7, include height 5) is now stale; the fresh
  // schedule is depth 2 at key 8. Depth 0 (key 6) must NOT re-commit.
  h.recorder->AdvanceHead(0, 7, 3000);
  EXPECT_EQ(committed->value(), 1);
  h.recorder->AdvanceHead(0, 8, 4000);
  EXPECT_EQ(committed->value(), 2);
  EXPECT_TRUE(h.violations.empty());

  const TxProvLog& log = h.recorder->Finish();
  EXPECT_EQ(CountStage(log, TxStage::kCommitted, Prefix(1)), 2u);
  // The depth-2 commit is anchored to the re-inclusion.
  const std::size_t last = log.size() - 1;
  EXPECT_EQ(log.stage[last], static_cast<std::uint8_t>(TxStage::kCommitted));
  EXPECT_EQ(log.info[last], 2u);
  EXPECT_EQ(log.aux[last], Prefix(8));
  EXPECT_EQ(log.number[last], 6u);
}

TEST(TxProvRecorder, MultipleLiveInclusionsBalanceOrphanReturns) {
  // The sim can include one tx in several canonical blocks (independent
  // pools select it around a partition heal). Liveness is a count: retiring
  // both blocks — oldest first, as BlockTree reports — must not trip
  // orphan_return_without_include, and the depth sweep anchors to the
  // latest inclusion.
  Harness h{3};
  h.recorder->RecordPoolOutcome(2, H(1), 100, TxPoolOutcome::kPending, 10);
  h.recorder->RecordIncluded(0, H(1), 200, H(8), 5);
  h.recorder->RecordIncluded(0, H(1), 300, H(9), 6);  // second live inclusion
  h.recorder->RecordOrphanReturned(0, H(1), 400, H(8), 5);
  h.recorder->RecordOrphanReturned(0, H(1), 500, H(9), 6);
  EXPECT_TRUE(h.violations.empty());
  // A third return with nothing live is a real violation again.
  h.recorder->RecordOrphanReturned(0, H(1), 600, H(9), 6);
  ASSERT_EQ(h.violations.size(), 1u);
  EXPECT_EQ(h.violations[0].first, TxInvariant::kOrphanReturnWithoutInclude);

  // Nothing is live, so nothing commits — the height-5 schedule was
  // invalidated by the height-6 re-anchor, the height-6 one by its return.
  h.recorder->AdvanceHead(0, 40, 700);
  const TxProvLog& log = h.recorder->Finish();
  EXPECT_EQ(CountStage(log, TxStage::kCommitted, Prefix(1)), 0u);
}

TEST(TxProvRecorder, VantageAndAnchorFiltering) {
  Harness h{4};
  // Host 1 is the only vantage; host 0 the only anchor.
  h.recorder->RecordFirstSeen(1, H(1), 100);
  h.recorder->RecordFirstSeen(2, H(1), 100);  // dropped
  h.recorder->RecordFirstSeen(3, H(1), 100);  // dropped
  h.recorder->RecordPoolOutcome(1, H(1), 150, TxPoolOutcome::kPending, 10);
  h.recorder->RecordIncluded(2, H(1), 200, H(9), 1);       // dropped
  h.recorder->RecordOrphanReturned(2, H(1), 250, H(9), 1); // dropped
  h.recorder->AdvanceHead(2, 10, 300);                     // dropped

  const TxProvLog& log = h.recorder->Finish();
  EXPECT_EQ(CountStage(log, TxStage::kFirstSeen, Prefix(1)), 1u);
  EXPECT_EQ(log.host[0], 1u);
  EXPECT_EQ(CountStage(log, TxStage::kIncluded, Prefix(1)), 0u);
  EXPECT_EQ(CountStage(log, TxStage::kOrphanReturned, Prefix(1)), 0u);
  EXPECT_EQ(CountStage(log, TxStage::kCommitted, Prefix(1)), 0u);
  // Non-anchor drops are silent: no orphan-return-without-include violation.
  EXPECT_TRUE(h.violations.empty());
  EXPECT_TRUE(h.recorder->IsAnchor(0));
  EXPECT_FALSE(h.recorder->IsAnchor(2));
}

TEST(TxProvRecorder, InvariantViolationsAreCountedAndLabeled) {
  Harness h{3};
  // Non-monotone: second record earlier than the first.
  h.recorder->RecordSubmitted(H(1), 1000, 2, 0, 10, 0);
  h.recorder->RecordPoolOutcome(2, H(1), 900, TxPoolOutcome::kPending, 10);
  // Orphan-return with no live inclusion.
  h.recorder->RecordOrphanReturned(0, H(2), 1100, H(9), 1);
  // Include without admission.
  h.recorder->RecordIncluded(0, H(3), 1200, H(9), 1);

  ASSERT_EQ(h.violations.size(), 3u);
  EXPECT_EQ(h.violations[0].first, TxInvariant::kNonMonotoneStage);
  EXPECT_EQ(h.violations[1].first, TxInvariant::kOrphanReturnWithoutInclude);
  EXPECT_EQ(h.violations[2].first, TxInvariant::kIncludeWithoutAdmit);
  EXPECT_EQ(h.recorder->violations(), 3u);
  const auto& by_check = h.recorder->checker().by_check();
  EXPECT_EQ(by_check[static_cast<std::size_t>(TxInvariant::kNonMonotoneStage)],
            1u);
  EXPECT_EQ(by_check[static_cast<std::size_t>(
                TxInvariant::kOrphanReturnWithoutInclude)],
            1u);
  EXPECT_EQ(
      by_check[static_cast<std::size_t>(TxInvariant::kIncludeWithoutAdmit)],
      1u);
  // Violating records are still appended: the stream stays complete for
  // offline debugging even when the checker fires.
  EXPECT_EQ(h.recorder->records_recorded(), 4u);
}

TEST(TxInvariantChecker, DirectFactCallsAndMetrics) {
  MetricsRegistry metrics;
  TxInvariantChecker checker{/*fatal=*/false};
  checker.AttachMetrics(&metrics);
  std::vector<TxInvariant> seen;
  checker.set_handler(
      [&seen](TxInvariant check, const std::string&) { seen.push_back(check); });

  checker.OnStage(TxStage::kIncluded, 7, /*t_us=*/50, /*last_t_us=*/100);
  checker.OnStage(TxStage::kIncluded, 7, /*t_us=*/100, /*last_t_us=*/100);  // ok
  checker.OnInclude(7, /*ever_admitted=*/false);
  checker.OnInclude(7, /*ever_admitted=*/true);  // ok
  checker.OnOrphanReturn(7, /*currently_included=*/false);
  checker.OnCommit(7, /*currently_included=*/false);

  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], TxInvariant::kNonMonotoneStage);
  EXPECT_EQ(seen[1], TxInvariant::kIncludeWithoutAdmit);
  EXPECT_EQ(seen[2], TxInvariant::kOrphanReturnWithoutInclude);
  EXPECT_EQ(seen[3], TxInvariant::kCommitBeforeInclude);
  EXPECT_EQ(checker.total(), 4u);
  EXPECT_EQ(metrics
                .GetCounter(LabeledName("txprov.violation",
                                        {{"check", "commit_before_include"}}))
                ->value(),
            1);
}

TEST(TxProvRecorder, StageCountersTrackAppendedRecords) {
  MetricsRegistry metrics;
  Harness h{3};
  h.recorder->AttachMetrics(&metrics);
  h.Lifecycle(1, 1000, 9, 5);
  h.recorder->AdvanceHead(0, 7, 2000);
  EXPECT_EQ(
      metrics.GetCounter(LabeledName("txprov.record", {{"stage", "submitted"}}))
          ->value(),
      1);
  EXPECT_EQ(
      metrics.GetCounter(LabeledName("txprov.record", {{"stage", "committed"}}))
          ->value(),
      2);
}

TEST(TxProvRecorder, DepthConfigNormalization) {
  TxProvConfig cfg;
  cfg.confirmation_depths = {};
  TxProvRecorder recorder{cfg};
  EXPECT_EQ(recorder.confirmation_depths(),
            (std::vector<std::uint64_t>{0}));
}

TEST(TxProvLog, BinaryRoundTrip) {
  Harness h{3};
  h.recorder->RecordFirstSeen(1, H(1), 500);
  h.Lifecycle(1, 1000, 9, 5);
  h.recorder->AdvanceHead(0, 7, 2000);
  h.recorder->SetEndTime(123456789);
  const TxProvLog& log = h.recorder->Finish();

  const std::string path = TempPath("roundtrip.bin");
  std::string error;
  ASSERT_TRUE(log.WriteBinary(path, &error)) << error;

  TxProvLog loaded;
  ASSERT_TRUE(TxProvLog::ReadBinary(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), log.size());
  EXPECT_EQ(loaded.t_us, log.t_us);
  EXPECT_EQ(loaded.tx, log.tx);
  EXPECT_EQ(loaded.host, log.host);
  EXPECT_EQ(loaded.stage, log.stage);
  EXPECT_EQ(loaded.info, log.info);
  EXPECT_EQ(loaded.aux, log.aux);
  EXPECT_EQ(loaded.number, log.number);
  EXPECT_EQ(loaded.host_region, log.host_region);
  EXPECT_EQ(loaded.depths, (std::vector<std::uint64_t>{0, 2}));
  EXPECT_EQ(loaded.end_us, 123456789);
  std::remove(path.c_str());
}

TEST(TxProvLog, ReadRejectsCorruptArtifacts) {
  Harness h{2};
  h.Lifecycle(1, 1000, 9, 5);
  const std::string path = TempPath("corrupt.bin");
  ASSERT_TRUE(h.recorder->Finish().WriteBinary(path));

  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();

  const auto write_bytes = [&path](const std::vector<char>& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };

  TxProvLog out;
  std::string error;

  // Bad magic.
  std::vector<char> bad = bytes;
  bad[0] = 'X';
  write_bytes(bad);
  EXPECT_FALSE(TxProvLog::ReadBinary(path, &out, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

  // Unsupported version.
  bad = bytes;
  bad[8] = 99;
  write_bytes(bad);
  EXPECT_FALSE(TxProvLog::ReadBinary(path, &out, &error));
  EXPECT_NE(error.find("unsupported format version"), std::string::npos)
      << error;

  // Truncated header (cut inside the fixed 36-byte prefix).
  bad.assign(bytes.begin(), bytes.begin() + 20);
  write_bytes(bad);
  EXPECT_FALSE(TxProvLog::ReadBinary(path, &out, &error));
  EXPECT_NE(error.find("truncated header"), std::string::npos) << error;

  // Truncated columns (cut the final column short).
  bad.assign(bytes.begin(), bytes.end() - 4);
  write_bytes(bad);
  EXPECT_FALSE(TxProvLog::ReadBinary(path, &out, &error));
  EXPECT_NE(error.find("truncated column data"), std::string::npos) << error;

  // Trailing bytes after the last column.
  bad = bytes;
  bad.push_back('\0');
  write_bytes(bad);
  EXPECT_FALSE(TxProvLog::ReadBinary(path, &out, &error));
  EXPECT_NE(error.find("trailing bytes"), std::string::npos) << error;

  // Missing file.
  std::remove(path.c_str());
  EXPECT_FALSE(TxProvLog::ReadBinary(path, &out, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(TxProvRecorder, WriteArtifactCreatesDirectoryAndFile) {
  Harness h{2};
  h.Lifecycle(1, 1000, 9, 5);
  const std::string dir = TempPath("artifact_dir");
  std::filesystem::remove_all(dir);
  std::string error;
  ASSERT_TRUE(h.recorder->WriteArtifact(dir, &error)) << error;
  TxProvLog loaded;
  ASSERT_TRUE(TxProvLog::ReadBinary(dir + "/txprov.bin", &loaded, &error))
      << error;
  EXPECT_EQ(loaded.size(), h.recorder->records_recorded());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ethsim::obs
