// StateSampler unit coverage: probe sampling, watermark derivation, the
// ETHTS1 binary round trip (including failure on truncation), and the
// element-wise Accumulate used by the cross-seed sweep merge.
#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

using ethsim::obs::ComputeWatermarks;
using ethsim::obs::SeriesWatermark;
using ethsim::obs::StateSampler;
using ethsim::obs::TimeSeriesLog;

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("ethsim_sampler_test_") + name))
      .string();
}

StateSampler MakeSampled() {
  StateSampler sampler{250'000};
  std::int64_t depth = 0;
  sampler.AddProbe("queue.depth", [depth]() mutable { return depth += 3; });
  sampler.AddProbe("constant", [] { return std::int64_t{7}; });
  // Delta probe: mutable capture keeps the previous reading, the recorded
  // value is the per-interval increment.
  std::int64_t total = 0, last = 0;
  sampler.AddProbe("drops.delta", [total, last]() mutable {
    total += 5;
    const std::int64_t delta = total - last;
    last = total;
    return delta;
  });
  for (std::int64_t t = 0; t <= 1'000'000; t += 250'000) sampler.SampleNow(t);
  return sampler;
}

TEST(StateSampler, RecordsOneRowPerSampleInProbeOrder) {
  const StateSampler sampler = MakeSampled();
  EXPECT_EQ(sampler.series_count(), 3u);
  EXPECT_EQ(sampler.sample_count(), 5u);
  const TimeSeriesLog& log = sampler.log();
  EXPECT_EQ(log.interval_us, 250'000);
  EXPECT_EQ(log.t_us, (std::vector<std::int64_t>{0, 250'000, 500'000,
                                                 750'000, 1'000'000}));
  ASSERT_EQ(log.Find("queue.depth"), 0u);
  EXPECT_EQ(log.values[0], (std::vector<std::int64_t>{3, 6, 9, 12, 15}));
  ASSERT_EQ(log.Find("constant"), 1u);
  EXPECT_EQ(log.values[1], (std::vector<std::int64_t>{7, 7, 7, 7, 7}));
  ASSERT_EQ(log.Find("drops.delta"), 2u);
  EXPECT_EQ(log.values[2], (std::vector<std::int64_t>{5, 5, 5, 5, 5}));
  EXPECT_EQ(log.Find("missing"), TimeSeriesLog::npos);
}

TEST(StateSampler, WatermarksPickPeakAndFirstPeakTime) {
  StateSampler sampler{1000};
  std::size_t i = 0;
  const std::int64_t spiky[] = {1, 9, 4, 9, 2};
  sampler.AddProbe("spiky", [&] { return spiky[i]; });
  sampler.AddProbe("flat", [] { return std::int64_t{0}; });
  for (; i < 5; ++i) sampler.SampleNow(static_cast<std::int64_t>(i) * 1000);
  const auto marks = sampler.Watermarks();
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_EQ(marks[0].series, "spiky");
  EXPECT_EQ(marks[0].peak, 9);
  EXPECT_EQ(marks[0].at_us, 1000);  // first time the peak was reached
  EXPECT_EQ(marks[1].series, "flat");
  EXPECT_EQ(marks[1].peak, 0);
  EXPECT_EQ(marks[1].at_us, 0);
}

TEST(TimeSeriesLog, BinaryRoundTrip) {
  const StateSampler sampler = MakeSampled();
  const std::string path = TempPath("roundtrip.bin");
  std::string error;
  ASSERT_TRUE(sampler.log().WriteBinary(path, &error)) << error;
  TimeSeriesLog loaded;
  ASSERT_TRUE(TimeSeriesLog::ReadBinary(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.interval_us, sampler.log().interval_us);
  EXPECT_EQ(loaded.names, sampler.log().names);
  EXPECT_EQ(loaded.t_us, sampler.log().t_us);
  EXPECT_EQ(loaded.values, sampler.log().values);
  // Round-tripped watermarks match the producer's (manifest cross-check).
  const auto produced = sampler.Watermarks();
  const auto recomputed = ComputeWatermarks(loaded);
  ASSERT_EQ(recomputed.size(), produced.size());
  for (std::size_t s = 0; s < produced.size(); ++s) {
    EXPECT_EQ(recomputed[s].series, produced[s].series);
    EXPECT_EQ(recomputed[s].peak, produced[s].peak);
    EXPECT_EQ(recomputed[s].at_us, produced[s].at_us);
  }
  std::remove(path.c_str());
}

TEST(TimeSeriesLog, ReadFailsOnMissingBadMagicAndTruncation) {
  TimeSeriesLog out;
  std::string error;
  EXPECT_FALSE(
      TimeSeriesLog::ReadBinary(TempPath("does_not_exist.bin"), &out, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

  const std::string bad = TempPath("bad_magic.bin");
  { std::ofstream(bad, std::ios::binary) << "NOTETHTS-GARBAGE"; }
  EXPECT_FALSE(TimeSeriesLog::ReadBinary(bad, &out, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
  std::remove(bad.c_str());

  // Truncate a valid artifact at every interesting boundary: header, name
  // table, time column, value columns. Every cut must fail cleanly.
  const StateSampler sampler = MakeSampled();
  const std::string full = TempPath("full.bin");
  ASSERT_TRUE(sampler.log().WriteBinary(full, &error)) << error;
  std::ifstream in(full, std::ios::binary);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  for (const std::size_t keep :
       {std::size_t{12}, std::size_t{30}, std::size_t{70}, blob.size() - 1}) {
    ASSERT_LT(keep, blob.size());
    const std::string cut = TempPath("truncated.bin");
    { std::ofstream(cut, std::ios::binary) << blob.substr(0, keep); }
    EXPECT_FALSE(TimeSeriesLog::ReadBinary(cut, &out, &error))
        << "kept " << keep << " bytes";
    EXPECT_NE(error.find("truncated"), std::string::npos)
        << "kept " << keep << " bytes: " << error;
    std::remove(cut.c_str());
  }
  std::remove(full.c_str());
}

TEST(TimeSeriesLog, AccumulateSumsElementWise) {
  const StateSampler a = MakeSampled();
  const StateSampler b = MakeSampled();
  TimeSeriesLog merged = a.log();
  ASSERT_TRUE(merged.Accumulate(b.log()));
  for (std::size_t s = 0; s < merged.series_count(); ++s)
    for (std::size_t i = 0; i < merged.sample_count(); ++i)
      EXPECT_EQ(merged.values[s][i], 2 * a.log().values[s][i]);
  // Time column and names are shared shape, not data: unchanged.
  EXPECT_EQ(merged.t_us, a.log().t_us);
  EXPECT_EQ(merged.names, a.log().names);
}

// Hand-built log with `samples` rows on the standard cadence; values are a
// function of `scale` so member contributions stay distinguishable.
TimeSeriesLog RaggedLog(std::size_t samples, std::int64_t scale) {
  TimeSeriesLog log;
  log.interval_us = 250'000;
  log.names = {"ramp", "level"};
  log.values.resize(2);
  for (std::size_t i = 0; i < samples; ++i) {
    log.t_us.push_back(static_cast<std::int64_t>(i) * 250'000);
    log.values[0].push_back(scale * static_cast<std::int64_t>(i));
    log.values[1].push_back(scale);
  }
  return log;
}

TEST(TimeSeriesLog, AccumulatePoolsRaggedLengthsOverTheSharedPrefix) {
  // Shorter into longer: the common prefix sums, the longer tail survives.
  TimeSeriesLog merged = RaggedLog(5, 100);
  ASSERT_TRUE(merged.Accumulate(RaggedLog(3, 1)));
  EXPECT_EQ(merged.sample_count(), 5u);
  EXPECT_EQ(merged.t_us, RaggedLog(5, 100).t_us);
  EXPECT_EQ(merged.values[0],
            (std::vector<std::int64_t>{0, 101, 202, 300, 400}));
  EXPECT_EQ(merged.values[1],
            (std::vector<std::int64_t>{101, 101, 101, 100, 100}));

  // Longer into shorter: the target grows the tail; same pooled result, so
  // the merge is order-independent even when lengths are ragged.
  TimeSeriesLog reversed = RaggedLog(3, 1);
  ASSERT_TRUE(reversed.Accumulate(RaggedLog(5, 100)));
  EXPECT_EQ(reversed.t_us, merged.t_us);
  EXPECT_EQ(reversed.values, merged.values);
}

TEST(TimeSeriesLog, AccumulateRejectsANonPrefixTimeColumn) {
  // Same length is covered by the shape-mismatch test; here the *shorter*
  // column diverges inside the overlap, so prefix pooling must refuse too.
  TimeSeriesLog merged = RaggedLog(5, 100);
  const TimeSeriesLog snapshot = merged;
  TimeSeriesLog skewed = RaggedLog(3, 1);
  skewed.t_us[1] += 1;
  EXPECT_FALSE(merged.Accumulate(skewed));
  EXPECT_EQ(merged.t_us, snapshot.t_us);
  EXPECT_EQ(merged.values, snapshot.values);
}

TEST(TimeSeriesLog, AccumulateRejectsShapeMismatch) {
  const StateSampler a = MakeSampled();
  TimeSeriesLog merged = a.log();
  const TimeSeriesLog snapshot = merged;

  TimeSeriesLog other = a.log();
  other.names[0] = "renamed";
  EXPECT_FALSE(merged.Accumulate(other));

  other = a.log();
  other.interval_us += 1;
  EXPECT_FALSE(merged.Accumulate(other));

  other = a.log();
  other.t_us.back() += 1;
  EXPECT_FALSE(merged.Accumulate(other));

  // A failed Accumulate must leave the target untouched.
  EXPECT_EQ(merged.values, snapshot.values);
  EXPECT_EQ(merged.t_us, snapshot.t_us);
}

}  // namespace
