#include "analysis/report.hpp"

#include <gtest/gtest.h>

namespace ethsim::analysis {
namespace {

TEST(Report, Fig1IncludesPaperReferenceValues) {
  PropagationResult blocks;
  for (int i = 0; i < 100; ++i) blocks.delays_ms.Add(70.0 + i * 0.1);
  blocks.median_ms = blocks.delays_ms.Median();
  blocks.mean_ms = blocks.delays_ms.mean();
  blocks.p95_ms = blocks.delays_ms.Quantile(0.95);
  blocks.p99_ms = blocks.delays_ms.Quantile(0.99);
  PropagationResult txs;
  txs.delays_ms.Add(100.0);
  const std::string out =
      RenderFig1(blocks, txs, {{"EA", 12.0, 50}, {"NA", 80.0, 50}});
  EXPECT_NE(out.find("74 ms"), std::string::npos);   // paper median
  EXPECT_NE(out.find("317 ms"), std::string::npos);  // paper p99
  EXPECT_NE(out.find("EA"), std::string::npos);
  EXPECT_NE(out.find("Figure 1"), std::string::npos);
}

TEST(Report, Fig2RendersSharesAsBars) {
  GeoResult geo;
  geo.total_blocks = 100;
  geo.shares = {{"EA", 40, 0.40, 0.05}, {"NA", 10, 0.10, 0.02}};
  const std::string out = RenderFig2(geo);
  EXPECT_NE(out.find("EA"), std::string::npos);
  EXPECT_NE(out.find("40.0%"), std::string::npos);
  EXPECT_NE(out.find("paper: EA ~40%"), std::string::npos);
}

TEST(Report, Table2ComparesAgainstPaperAverages) {
  RedundancyResult result;
  result.blocks = 500;
  result.announcements = {2.5, 2, 5, 7};
  result.whole_blocks = {7.0, 7, 10, 12};
  result.combined = {9.5, 9, 12, 15};
  const std::string out = RenderTable2(result, 15'000);
  EXPECT_NE(out.find("2.585"), std::string::npos);
  EXPECT_NE(out.find("7.043"), std::string::npos);
  EXPECT_NE(out.find("9.62"), std::string::npos);  // ln(15000)
}

TEST(Report, Table3ScalesCountsToPaperFrame) {
  ForkCensus census;
  census.total_blocks = 1000;
  census.main_blocks = 928;
  census.recognized_uncles = 70;
  census.unrecognized_blocks = 2;
  census.main_share = 0.928;
  census.recognized_share = 0.07;
  census.unrecognized_share = 0.002;
  census.by_length = {{1, 68, 67, 1}, {2, 2, 0, 2}};
  census.fork_events = 70;
  OneMinerForkCensus omf;
  omf.tuples[2] = 8;
  omf.events = 8;
  omf.extra_blocks = 8;
  omf.recognized_extra_share = 1.0;
  omf.same_txset_share = 0.5;
  omf.share_of_all_forks = 8.0 / 70.0;
  const std::string out = RenderTable3(census, omf, 216'671);
  EXPECT_NE(out.find("92.81%"), std::string::npos);  // paper main share
  EXPECT_NE(out.find("15,171"), std::string::npos);  // paper length-1 count
  // Scaled length-1 count: 68 * 216671/1000 = 14734.
  EXPECT_NE(out.find("14734"), std::string::npos);
  EXPECT_NE(out.find("1,750"), std::string::npos);   // paper pair count
}

TEST(Report, Table1IsStatic) {
  const std::string out = RenderTable1();
  EXPECT_NE(out.find("North America"), std::string::npos);
  EXPECT_NE(out.find("40x Xeon 2.2 GHz"), std::string::npos);
  EXPECT_NE(out.find("8 Gbps"), std::string::npos);
}

TEST(Report, SecurityRendersHistoryComparison) {
  miner::PoolSpec a;
  a.name = "Ethermine";
  a.hashrate_share = 0.259;
  a.coinbase = miner::PoolCoinbase("Ethermine");
  std::vector<miner::PoolSpec> pools{a};
  std::vector<std::size_t> winners(1000, 0);
  const auto month = SequencesFromWinners(winners, pools);
  const auto history = SequencesFromWinners(winners, pools);
  const std::string out = RenderSecurity(month, history, 13.3);
  EXPECT_NE(out.find("102"), std::string::npos);  // paper's 10-run count
  EXPECT_NE(out.find("censor"), std::string::npos);
  EXPECT_NE(out.find("12-block rule"), std::string::npos);
}

TEST(Report, Fig6HighlightsPaperFindings) {
  EmptyBlockResult result;
  result.total_main_blocks = 1000;
  result.total_empty_blocks = 15;
  result.overall_empty_rate = 0.015;
  result.rows = {{"Zhizhu", 30, 9, 0.30, 1809.0}};
  const std::string out = RenderFig6(result);
  EXPECT_NE(out.find("Zhizhu"), std::string::npos);
  EXPECT_NE(out.find("1.45%"), std::string::npos);  // paper overall
  EXPECT_NE(out.find("1.50%"), std::string::npos);  // measured overall
}

}  // namespace
}  // namespace ethsim::analysis
