#include "analysis/geo.hpp"

#include "chain/block_arena.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace ethsim::analysis {
namespace {

using namespace ethsim::literals;

struct GeoFixture : ::testing::Test {
  sim::Simulator simulator;
  std::vector<std::unique_ptr<measure::Observer>> owned;

  measure::Observer* AddObserver(const std::string& name) {
    owned.push_back(std::make_unique<measure::Observer>(
        name, net::Region::WesternEurope, simulator, 0_ms));
    return owned.back().get();
  }

  void BlockAt(measure::Observer* obs, Duration when, const Hash32& hash) {
    simulator.Schedule(when, [obs, hash] {
      obs->OnBlockMessage(eth::MessageSink::BlockMsgKind::kFullBlock, hash, 1,
                          nullptr);
    });
  }

  ObserverSet Set() {
    ObserverSet set;
    for (const auto& o : owned) set.push_back(o.get());
    return set;
  }

  static Hash32 H(std::uint16_t tag) {
    Hash32 h;
    h.bytes[0] = static_cast<std::uint8_t>(tag);
    h.bytes[1] = static_cast<std::uint8_t>(tag >> 8);
    return h;
  }
};

TEST_F(GeoFixture, CountsWinsPerVantage) {
  auto* ea = AddObserver("EA");
  auto* na = AddObserver("NA");
  // EA first for 3 blocks, NA first for 1.
  for (int i = 0; i < 3; ++i) {
    BlockAt(ea, Duration::Seconds(i + 1), H(static_cast<std::uint16_t>(i)));
    BlockAt(na, Duration::Seconds(i + 1) + 100_ms,
            H(static_cast<std::uint16_t>(i)));
  }
  BlockAt(na, Duration::Seconds(10), H(99));
  BlockAt(ea, Duration::Seconds(10) + 100_ms, H(99));
  simulator.RunAll();

  const auto result = FirstObservationShares(Set());
  EXPECT_EQ(result.total_blocks, 4u);
  EXPECT_EQ(result.shares[0].vantage, "EA");
  EXPECT_EQ(result.shares[0].wins, 3u);
  EXPECT_DOUBLE_EQ(result.shares[0].share, 0.75);
  EXPECT_DOUBLE_EQ(result.shares[1].share, 0.25);
}

TEST_F(GeoFixture, BlocksSeenByOnlyOneVantageStillCount) {
  auto* a = AddObserver("A");
  AddObserver("B");
  BlockAt(a, 1_s, H(1));
  simulator.RunAll();

  const auto result = FirstObservationShares(Set());
  EXPECT_EQ(result.total_blocks, 1u);
  EXPECT_EQ(result.shares[0].wins, 1u);
  // Unique observations are certain wins, not uncertain ones.
  EXPECT_DOUBLE_EQ(result.shares[0].uncertain_share, 0.0);
}

TEST_F(GeoFixture, NarrowMarginsAreFlaggedUncertain) {
  auto* a = AddObserver("A");
  auto* b = AddObserver("B");
  // 5ms margin: within 2x the 10ms NTP envelope.
  BlockAt(a, 1_s, H(1));
  BlockAt(b, 1_s + 5_ms, H(1));
  // 200ms margin: clearly decided.
  BlockAt(a, 2_s, H(2));
  BlockAt(b, 2_s + 200_ms, H(2));
  simulator.RunAll();

  const auto result = FirstObservationShares(Set());
  EXPECT_EQ(result.shares[0].wins, 2u);
  EXPECT_DOUBLE_EQ(result.shares[0].uncertain_share, 0.5);
}

TEST_F(GeoFixture, SharesSumToOne) {
  auto* a = AddObserver("A");
  auto* b = AddObserver("B");
  auto* c = AddObserver("C");
  for (std::uint16_t i = 0; i < 30; ++i) {
    measure::Observer* winner = (i % 3 == 0) ? a : (i % 3 == 1) ? b : c;
    BlockAt(winner, Duration::Seconds(i + 1), H(i));
    BlockAt(a, Duration::Seconds(i + 1) + 50_ms, H(i));
    BlockAt(b, Duration::Seconds(i + 1) + 60_ms, H(i));
    BlockAt(c, Duration::Seconds(i + 1) + 70_ms, H(i));
  }
  simulator.RunAll();

  const auto result = FirstObservationShares(Set());
  double total = 0;
  for (const auto& share : result.shares) total += share.share;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

// --- Fig 3: pool-conditioned splits ---------------------------------------

struct PoolGeoFixture : GeoFixture {
  std::vector<miner::PoolSpec> pools;
  chain::BlockArena arena;
  std::vector<miner::MintRecord> minted;

  void AddPool(const std::string& name, double share) {
    miner::PoolSpec spec;
    spec.name = name;
    spec.hashrate_share = share;
    spec.coinbase = miner::PoolCoinbase(name);
    pools.push_back(spec);
  }

  void Mint(std::size_t pool, const Hash32& hash) {
    chain::Block body;
    body.header.miner = pools[pool].coinbase;
    body.Seal();
    body.hash = hash;  // synthetic identity for joining with arrivals
    minted.push_back(miner::MintRecord{arena.Adopt(std::move(body)), pool,
                                       TimePoint{}, false, false, Hash32{},
                                       false});
  }
};

TEST_F(PoolGeoFixture, SplitsFirstObservationByPool) {
  auto* ea = AddObserver("EA");
  auto* we = AddObserver("WE");
  AddPool("AsiaPool", 0.6);
  AddPool("EuroPool", 0.4);

  // AsiaPool blocks always seen first in EA; EuroPool in WE.
  for (std::uint16_t i = 0; i < 10; ++i) {
    const Hash32 h = H(i);
    Mint(0, h);
    BlockAt(ea, Duration::Seconds(i + 1), h);
    BlockAt(we, Duration::Seconds(i + 1) + 90_ms, h);
  }
  for (std::uint16_t i = 100; i < 105; ++i) {
    const Hash32 h = H(i);
    Mint(1, h);
    BlockAt(we, Duration::Seconds(i + 1), h);
    BlockAt(ea, Duration::Seconds(i + 1) + 90_ms, h);
  }
  simulator.RunAll();

  StudyInputs inputs;
  inputs.observers = Set();
  inputs.minted = &minted;
  inputs.pools = &pools;
  const auto result = PoolFirstObservation(inputs);

  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].pool, "AsiaPool");
  EXPECT_EQ(result.rows[0].blocks, 10u);
  EXPECT_DOUBLE_EQ(result.rows[0].vantage_shares[0], 1.0);  // EA
  EXPECT_DOUBLE_EQ(result.rows[0].vantage_shares[1], 0.0);
  EXPECT_EQ(result.rows[1].blocks, 5u);
  EXPECT_DOUBLE_EQ(result.rows[1].vantage_shares[1], 1.0);  // WE
}

TEST_F(PoolGeoFixture, UnobservedPoolsReportZeroBlocks) {
  AddObserver("EA");
  AddPool("Ghost", 0.1);
  StudyInputs inputs;
  inputs.observers = Set();
  inputs.minted = &minted;
  inputs.pools = &pools;
  const auto result = PoolFirstObservation(inputs);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].blocks, 0u);
}

}  // namespace
}  // namespace ethsim::analysis
