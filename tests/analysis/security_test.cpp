#include "analysis/security.hpp"

#include <gtest/gtest.h>

namespace ethsim::analysis {
namespace {

std::vector<miner::PoolSpec> Pools() {
  miner::PoolSpec a, b;
  a.name = "Ethermine";
  a.hashrate_share = 0.259;
  a.coinbase = miner::PoolCoinbase("Ethermine");
  b.name = "Sparkpool";
  b.hashrate_share = 0.2269;
  b.coinbase = miner::PoolCoinbase("Sparkpool");
  return {a, b};
}

TEST(Security, RunProbability) {
  EXPECT_NEAR(RunProbability(0.259, 8), 2e-5, 0.4e-5);  // paper's 2x10^-5
  EXPECT_DOUBLE_EQ(RunProbability(1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(RunProbability(0.0, 1), 0.0);
}

TEST(Security, EthermineEightRunExpectedFourPerMonth) {
  const auto pools = Pools();
  // Synthetic observation: four 8-runs in a month of blocks.
  std::vector<std::size_t> winners;
  // Fill a month of blocks with a pattern containing exactly four 8-runs of
  // pool 0 separated by pool 1 blocks; remainder pool 1.
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 8; ++i) winners.push_back(0);
    winners.push_back(1);
  }
  while (winners.size() < 201'086) winners.push_back(1);
  const auto sequences = SequencesFromWinners(winners, pools);

  const auto rows = RunRarityTable(sequences, 8);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].observed, 4u);
  // p^k model over the same window: ≈ 4 expected -> observation is ordinary.
  EXPECT_NEAR(rows[0].expected, 4.0, 0.5);
}

TEST(Security, SparkpoolNineRunIsRare) {
  const auto pools = Pools();
  std::vector<std::size_t> winners(201'086, 0);
  const auto sequences = SequencesFromWinners(winners, pools);
  const auto rows = RunRarityTable(sequences, 9);
  // Expected 9-runs for Sparkpool ≈ 0.3/month -> one every ~3.3 months.
  EXPECT_NEAR(rows[1].months_per_event, 3.3, 0.5);
}

TEST(Security, FourteenRunIsGenerationallyRare) {
  // §III-D claims the Ethermine 14-run would occur "around once in 1,000
  // years". The strict p^k arithmetic (0.259^14 * 2.4M blocks/year) gives
  // ~68 years — still generations beyond Ethereum's entire history, which is
  // the substantive claim. We assert the exact math and record the paper's
  // looser figure in EXPERIMENTS.md.
  const double years = YearsPerOccurrence(0.259, 14);
  EXPECT_GT(years, 30.0);
  EXPECT_LT(years, 200.0);
  // Ethereum was ~4 years old at measurement time: the event was far outside
  // plausible organic occurrence either way.
  EXPECT_GT(years, 4.0 * 10);
}

TEST(Security, CensorshipWindowsScaleWithRuns) {
  const auto pools = Pools();
  std::vector<std::size_t> winners;
  for (int i = 0; i < 9; ++i) winners.push_back(0);  // 9-run for pool 0
  winners.push_back(1);
  const auto sequences = SequencesFromWinners(winners, pools);
  const auto windows = CensorshipWindows(sequences, 13.3);
  ASSERT_GE(windows.size(), 1u);
  EXPECT_EQ(windows[0].pool, "Ethermine");
  EXPECT_EQ(windows[0].longest_run, 9u);
  // 9 * 13.3 ≈ 120s: the "more than two minutes" the paper warns about.
  EXPECT_NEAR(windows[0].seconds, 119.7, 0.1);
}

TEST(Security, RequiredConfirmationsGrowsWithShare) {
  // At 25.9% share, 12 confirmations give ~0.0002*201086 ≈ 19 expected
  // 12-runs... the function finds the depth where expectation < target.
  const std::size_t k_small = RequiredConfirmations(0.10, 0.01);
  const std::size_t k_big = RequiredConfirmations(0.259, 0.01);
  EXPECT_GT(k_big, k_small);
  // The paper's implication: 12 is NOT enough against a 25.9% pool for
  // monthly-once-in-a-hundred guarantees.
  EXPECT_GT(k_big, 12u);
}

TEST(Security, RequiredConfirmationsMonotoneInTarget) {
  const std::size_t strict = RequiredConfirmations(0.259, 0.0001);
  const std::size_t loose = RequiredConfirmations(0.259, 1.0);
  EXPECT_GT(strict, loose);
}

}  // namespace
}  // namespace ethsim::analysis
