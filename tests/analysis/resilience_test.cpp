#include "analysis/resilience.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "chain/block_arena.hpp"
#include "chain/blocktree.hpp"
#include "miner/mining.hpp"

namespace ethsim::analysis {
namespace {

using namespace ethsim::literals;

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every fixture in the suite
  return arena;
}

chain::BlockPtr MakeBlock(const Hash32& parent, std::uint64_t number,
                          std::uint64_t mix) {
  chain::Block b;
  b.header.parent_hash = parent;
  b.header.number = number;
  b.header.difficulty = 1000;
  b.header.mix_seed = mix;
  b.Seal();
  return Arena().Adopt(std::move(b));
}

// A tiny ground-truth world: a canonical chain g-a-b plus a fork block f off
// g, minted at known instants, observed at two vantages.
struct ResilienceFixture : ::testing::Test {
  sim::Simulator simulator;
  chain::BlockPtr genesis = MakeBlock(Hash32{}, 100, 0);
  chain::BlockPtr a = MakeBlock(genesis->hash, 101, 1);
  chain::BlockPtr b = MakeBlock(a->hash, 102, 2);
  chain::BlockPtr fork = MakeBlock(genesis->hash, 101, 3);

  chain::BlockTree tree{genesis};
  std::vector<miner::MintRecord> minted;
  std::vector<std::unique_ptr<measure::Observer>> owned;

  void SetUp() override {
    tree.Add(a, TimePoint::FromMicros(0));
    tree.Add(b, TimePoint::FromMicros(0));
    tree.Add(fork, TimePoint::FromMicros(0));
    ASSERT_TRUE(tree.IsCanonical(b->hash));
    ASSERT_FALSE(tree.IsCanonical(fork->hash));
    Mint(a, 10_s);
    Mint(b, 30_s);
    Mint(fork, 40_s);
  }

  void Mint(const chain::BlockPtr& block, Duration at) {
    miner::MintRecord record;
    record.block = block;
    record.mined_at = TimePoint::FromMicros(at.micros());
    minted.push_back(record);
  }

  measure::Observer* AddObserver(const std::string& name) {
    owned.push_back(std::make_unique<measure::Observer>(
        name, net::Region::WesternEurope, simulator, 0_ms));
    return owned.back().get();
  }

  void BlockAt(measure::Observer* obs, Duration when, const Hash32& hash,
               std::uint64_t number) {
    simulator.Schedule(when, [obs, hash, number] {
      obs->OnBlockMessage(eth::MessageSink::BlockMsgKind::kFullBlock, hash,
                          number, nullptr);
    });
  }

  StudyInputs Inputs() {
    StudyInputs inputs;
    for (const auto& o : owned) inputs.observers.push_back(o.get());
    inputs.minted = &minted;
    inputs.reference = &tree;
    return inputs;
  }
};

TEST_F(ResilienceFixture, SliceClassifiesMintsAgainstTheWindow) {
  auto* v1 = AddObserver("V1");
  auto* v2 = AddObserver("V2");
  BlockAt(v1, 10_s, a->hash, 101);
  BlockAt(v2, 10_s + 74_ms, a->hash, 101);
  BlockAt(v1, 30_s, b->hash, 102);
  BlockAt(v2, 30_s + 200_ms, b->hash, 102);
  BlockAt(v1, 40_s, fork->hash, 101);  // fork seen at only one vantage
  simulator.RunAll();

  // Window [0 s, 35 s): catches a and b, both canonical.
  const WindowSlice early =
      SliceWindow(Inputs(), TimePoint::FromMicros(0),
                  TimePoint::FromMicros(Duration::Seconds(35).micros()));
  EXPECT_EQ(early.blocks_minted, 2u);
  EXPECT_EQ(early.canonical_blocks, 2u);
  EXPECT_EQ(early.fork_blocks, 0u);
  EXPECT_DOUBLE_EQ(early.fork_rate, 0.0);
  // Two blocks, two vantages -> one cross-vantage delta each.
  EXPECT_EQ(early.delay_samples, 2u);
  EXPECT_DOUBLE_EQ(early.delay_median_ms, (74.0 + 200.0) / 2.0);

  // Window [35 s, 60 s): only the fork block, seen at one vantage (no delta).
  const WindowSlice late =
      SliceWindow(Inputs(), TimePoint::FromMicros(Duration::Seconds(35).micros()),
                  TimePoint::FromMicros(Duration::Seconds(60).micros()));
  EXPECT_EQ(late.blocks_minted, 1u);
  EXPECT_EQ(late.canonical_blocks, 0u);
  EXPECT_EQ(late.fork_blocks, 1u);
  EXPECT_DOUBLE_EQ(late.fork_rate, 1.0);
  EXPECT_EQ(late.delay_samples, 0u);
}

TEST_F(ResilienceFixture, WindowBoundsAreHalfOpen) {
  // mined_at exactly at `end` is excluded, exactly at `start` included.
  const WindowSlice slice =
      SliceWindow(Inputs(), TimePoint::FromMicros(Duration::Seconds(10).micros()),
                  TimePoint::FromMicros(Duration::Seconds(30).micros()));
  EXPECT_EQ(slice.blocks_minted, 1u);  // a at 10 s in, b at 30 s out
}

TEST_F(ResilienceFixture, CompareComputesInflationAndGuardsZeroDenominators) {
  auto* v1 = AddObserver("V1");
  auto* v2 = AddObserver("V2");
  BlockAt(v1, 10_s, a->hash, 101);
  BlockAt(v2, 10_s + 100_ms, a->hash, 101);
  BlockAt(v1, 40_s, fork->hash, 101);
  simulator.RunAll();

  const TimePoint start = TimePoint::FromMicros(0);
  const TimePoint end = TimePoint::FromMicros(Duration::Seconds(60).micros());
  const ResilienceReport report =
      CompareResilience(Inputs(), Inputs(), start, end);
  // Identical inputs: inflation exactly 1 where defined.
  EXPECT_DOUBLE_EQ(report.fork_rate_inflation, 1.0);
  EXPECT_DOUBLE_EQ(report.delay_p95_inflation, 1.0);

  // Against an empty control, the ratios stay at their 0 sentinel instead of
  // dividing by zero.
  StudyInputs empty;
  const ResilienceReport guarded =
      CompareResilience(Inputs(), empty, start, end);
  EXPECT_DOUBLE_EQ(guarded.fork_rate_inflation, 0.0);
  EXPECT_DOUBLE_EQ(guarded.delay_p95_inflation, 0.0);
}

TEST_F(ResilienceFixture, RenderMentionsBothSlicesAndTheWindow) {
  const ResilienceReport report = CompareResilience(
      Inputs(), Inputs(), TimePoint::FromMicros(0),
      TimePoint::FromMicros(Duration::Seconds(60).micros()));
  const std::string text = RenderResilience(report);
  EXPECT_NE(text.find("faulted"), std::string::npos) << text;
  EXPECT_NE(text.find("control"), std::string::npos) << text;
  EXPECT_NE(text.find("60 s"), std::string::npos) << text;
  EXPECT_NE(text.find("inflation"), std::string::npos) << text;
}

TEST(ResilienceEmptyInputs, SliceOfNothingIsAllZeros) {
  StudyInputs inputs;
  const WindowSlice slice =
      SliceWindow(inputs, TimePoint::FromMicros(0),
                  TimePoint::FromMicros(Duration::Seconds(10).micros()));
  EXPECT_EQ(slice.blocks_minted, 0u);
  EXPECT_EQ(slice.fork_blocks, 0u);
  EXPECT_EQ(slice.delay_samples, 0u);
  EXPECT_DOUBLE_EQ(slice.fork_rate, 0.0);
}

}  // namespace
}  // namespace ethsim::analysis
