#include "analysis/redundancy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace ethsim::analysis {
namespace {

using namespace ethsim::literals;
using Kind = eth::MessageSink::BlockMsgKind;

struct RedundancyFixture : ::testing::Test {
  RedundancyFixture()
      : observer("V", net::Region::WesternEurope, simulator, 0_ms) {}

  void Arrive(Duration when, std::uint8_t block_tag, Kind kind) {
    Hash32 h;
    h.bytes[0] = block_tag;
    simulator.Schedule(when,
                       [this, h, kind] { observer.OnBlockMessage(kind, h, 1, nullptr); });
  }

  sim::Simulator simulator;
  measure::Observer observer;
};

TEST_F(RedundancyFixture, CountsKindsSeparately) {
  // Block 1: 2 announcements + 3 whole copies. A later block keeps block 1
  // outside the settle window.
  Arrive(1_s, 1, Kind::kAnnouncement);
  Arrive(2_s, 1, Kind::kAnnouncement);
  Arrive(1_s, 1, Kind::kFullBlock);
  Arrive(3_s, 1, Kind::kFullBlock);
  Arrive(4_s, 1, Kind::kFetched);
  Arrive(Duration::Seconds(200), 2, Kind::kFullBlock);
  simulator.RunAll();

  const auto result = BlockReceptionRedundancy(observer, 60_s);
  EXPECT_EQ(result.blocks, 1u);  // block 2 excluded by the settle window
  EXPECT_DOUBLE_EQ(result.announcements.mean, 2.0);
  EXPECT_DOUBLE_EQ(result.whole_blocks.mean, 3.0);
  EXPECT_DOUBLE_EQ(result.combined.mean, 5.0);
}

TEST_F(RedundancyFixture, MedianAndTopPercentiles) {
  // 100 blocks: block i receives i%5+1 whole copies.
  for (int i = 0; i < 100; ++i) {
    for (int c = 0; c <= i % 5; ++c)
      Arrive(Duration::Seconds(i + 1), static_cast<std::uint8_t>(i),
             Kind::kFullBlock);
  }
  Arrive(Duration::Seconds(500), 200, Kind::kFullBlock);  // settle anchor
  simulator.RunAll();

  const auto result = BlockReceptionRedundancy(observer, 60_s);
  EXPECT_EQ(result.blocks, 100u);
  EXPECT_DOUBLE_EQ(result.whole_blocks.median, 3.0);
  EXPECT_NEAR(result.whole_blocks.mean, 3.0, 0.01);
  EXPECT_DOUBLE_EQ(result.whole_blocks.top10, 5.0);
}

TEST_F(RedundancyFixture, SettleWindowExcludesTailBlocks) {
  Arrive(1_s, 1, Kind::kFullBlock);
  Arrive(70_s, 2, Kind::kFullBlock);  // within 60s of the last event
  simulator.RunAll();
  const auto result = BlockReceptionRedundancy(observer, 60_s);
  EXPECT_EQ(result.blocks, 1u);
}

TEST_F(RedundancyFixture, EmptyLogYieldsZeros) {
  const auto result = BlockReceptionRedundancy(observer);
  EXPECT_EQ(result.blocks, 0u);
  EXPECT_DOUBLE_EQ(result.combined.mean, 0.0);
}

TEST(OptimalGossip, MatchesPaperFigure) {
  // ln(15,000) ≈ 9.62, the number the paper compares Table II against.
  EXPECT_NEAR(OptimalGossipReceptions(15'000), 9.62, 0.01);
}

}  // namespace
}  // namespace ethsim::analysis
