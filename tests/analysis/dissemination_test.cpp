// Dissemination-analysis units over hand-built provenance logs with known
// answers: tree reconstruction (parents, hops, redundancy, drops), hop-depth
// CDFs, push-vs-announce shares, per-host waste attribution, and Ethna-style
// degree inference.
#include "analysis/dissemination.hpp"

#include <gtest/gtest.h>

namespace ethsim::analysis {
namespace {

using obs::EdgeDrop;
using obs::EdgeKind;
using obs::EdgeRecord;
using obs::ProvenanceLog;

EdgeRecord Edge(std::uint32_t from, std::uint32_t to, EdgeKind kind,
                std::uint64_t object, std::int64_t send_us,
                std::int64_t arrival_us, std::uint16_t hop,
                std::uint32_t bytes = 100,
                EdgeDrop drop = EdgeDrop::kNone) {
  EdgeRecord e;
  e.from = from;
  e.to = to;
  e.kind = kind;
  e.object = object;
  e.number = object;  // block number mirrors the object tag in these tests
  e.send_us = send_us;
  e.arrival_us = arrival_us;
  e.hop = hop;
  e.bytes = bytes;
  e.drop = drop;
  return e;
}

EdgeRecord Origin(std::uint32_t host, std::uint64_t object,
                  std::int64_t at_us) {
  EdgeRecord e = Edge(host, host, EdgeKind::kOrigin, object, at_us, at_us, 0,
                      /*bytes=*/0);
  return e;
}

// A small two-block log:
//   block 7: minted at 0 (t=0); push 0->1 (arr 100, 600 B); announce 0->2
//   (arr 150, 40 B); redundant announce 1->2 (arr 250, 40 B); push 1->3
//   dropped by loss; fetch path 2->0 GetBlock + 0->2 BlockResponse (arr 400,
//   600 B, redundant — host 2 already counted first at 150).
//   block 9: minted at 3 (t=1000); push 3->0 (arr 1100).
ProvenanceLog TwoBlockLog() {
  ProvenanceLog log;
  log.host_region = {0, 1, 2, 3};
  log.Append(Origin(0, 7, 0));
  log.Append(Edge(0, 1, EdgeKind::kNewBlock, 7, 10, 100, 1, 600));
  log.Append(Edge(0, 2, EdgeKind::kAnnouncement, 7, 10, 150, 1, 40));
  log.Append(Edge(1, 2, EdgeKind::kAnnouncement, 7, 120, 250, 2, 40));
  log.Append(Edge(1, 3, EdgeKind::kNewBlock, 7, 120, -1, 2, 600,
                  EdgeDrop::kRandomLoss));
  log.Append(Edge(2, 0, EdgeKind::kGetBlock, 7, 160, 300, 2, 48));
  log.Append(Edge(0, 2, EdgeKind::kBlockResponse, 7, 310, 400, 1, 600));
  log.Append(Origin(3, 9, 1000));
  log.Append(Edge(3, 0, EdgeKind::kNewBlock, 9, 1010, 1100, 1, 600));
  log.end_us = 2000;
  return log;
}

TEST(BlockObjectsTest, OrderedByFirstAppearance) {
  const ProvenanceLog log = TwoBlockLog();
  const auto objects = BlockObjects(log);
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(objects[0], 7u);
  EXPECT_EQ(objects[1], 9u);
}

TEST(DisseminationTreeTest, ReconstructsParentsHopsAndWaste) {
  const ProvenanceLog log = TwoBlockLog();
  const DisseminationTree tree = BuildDisseminationTree(log, 7);
  EXPECT_EQ(tree.object, 7u);
  EXPECT_EQ(tree.number, 7u);

  // Reached hosts: 0 (origin), 1 (push), 2 (announce). Host 3's copy was
  // dropped and never re-sent.
  ASSERT_EQ(tree.nodes.size(), 3u);
  EXPECT_EQ(tree.nodes[0].host, 0u);
  EXPECT_EQ(tree.nodes[0].hop, 0);
  EXPECT_EQ(tree.nodes[0].via, EdgeKind::kOrigin);
  EXPECT_EQ(tree.nodes[1].host, 1u);
  EXPECT_EQ(tree.nodes[1].parent_host, 0u);
  EXPECT_EQ(tree.nodes[1].hop, 1);
  EXPECT_EQ(tree.nodes[1].via, EdgeKind::kNewBlock);
  EXPECT_EQ(tree.nodes[2].host, 2u);
  EXPECT_EQ(tree.nodes[2].parent_host, 0u);
  EXPECT_EQ(tree.nodes[2].first_arrival_us, 150);
  EXPECT_EQ(tree.nodes[2].via, EdgeKind::kAnnouncement);

  // Delivered block messages: push(600) + ann(40) + ann(40) + body(600).
  // (GetBlock is a request, not a block message.) Redundant: the second
  // announce and the fetched body.
  EXPECT_EQ(tree.total_bytes, 1280u);
  EXPECT_EQ(tree.redundant_edges, 2u);
  EXPECT_EQ(tree.wasted_bytes, 640u);
  EXPECT_EQ(tree.dropped_edges, 1u);
}

TEST(DisseminationTreeTest, TieOnArrivalClaimsExactlyOneFirst) {
  ProvenanceLog log;
  log.host_region = {0, 1, 2};
  log.Append(Origin(0, 5, 0));
  // Two copies arrive at host 2 at the same instant; the earlier row wins.
  log.Append(Edge(0, 2, EdgeKind::kNewBlock, 5, 10, 100, 1, 600));
  log.Append(Edge(1, 2, EdgeKind::kNewBlock, 5, 10, 100, 1, 600));
  const DisseminationTree tree = BuildDisseminationTree(log, 5);
  ASSERT_EQ(tree.nodes.size(), 2u);
  EXPECT_EQ(tree.nodes[1].host, 2u);
  EXPECT_EQ(tree.nodes[1].parent_host, 0u);  // first row in log order
  EXPECT_EQ(tree.redundant_edges, 1u);
  EXPECT_EQ(tree.wasted_bytes, 600u);
}

TEST(DisseminationTreeTest, InFlightAtCutoffIsNeitherFirstNorRedundant) {
  ProvenanceLog log;
  log.host_region = {0, 1};
  log.Append(Origin(0, 5, 0));
  log.Append(Edge(0, 1, EdgeKind::kNewBlock, 5, 10, 5000, 1, 600));
  log.end_us = 1000;  // the copy was still in flight
  const DisseminationTree tree = BuildDisseminationTree(log, 5);
  ASSERT_EQ(tree.nodes.size(), 1u);  // only the origin
  EXPECT_EQ(tree.total_bytes, 0u);
  EXPECT_EQ(tree.redundant_edges, 0u);
  EXPECT_EQ(tree.dropped_edges, 0u);  // in flight, not censored
}

TEST(HopDepthsTest, CdfOverAllBlockHostPairs) {
  const ProvenanceLog log = TwoBlockLog();
  const HopDepthDistribution dist = HopDepths(log);
  // (7,0)=0 (7,1)=1 (7,2)=1 (9,3)=0 (9,0)=1 -> depths {0,0,1,1,1}.
  ASSERT_EQ(dist.depths.size(), 5u);
  EXPECT_EQ(dist.depths.front(), 0);
  EXPECT_EQ(dist.depths.back(), 1);
  EXPECT_DOUBLE_EQ(dist.mean, 0.6);
  EXPECT_EQ(dist.max, 1);
  EXPECT_EQ(dist.Quantile(0.5), 1);
  EXPECT_EQ(dist.Quantile(1.0), 1);
  EXPECT_EQ(dist.Quantile(0.0), 0);
}

TEST(FirstDeliveryBreakdownTest, SplitsPushAnnounceFetched) {
  const ProvenanceLog log = TwoBlockLog();
  const FirstDeliveryShares shares = FirstDeliveryBreakdown(log);
  // Non-origin firsts: (7,1) push, (7,2) announce, (9,0) push.
  EXPECT_EQ(shares.push, 2u);
  EXPECT_EQ(shares.announce, 1u);
  EXPECT_EQ(shares.fetched, 0u);
  EXPECT_EQ(shares.total(), 3u);
}

TEST(FirstDeliveryBreakdownTest, FetchedBodyCanBeFirst) {
  ProvenanceLog log;
  log.host_region = {0, 1};
  log.Append(Origin(0, 5, 0));
  // Announce dropped; the body response is the only delivered copy.
  log.Append(Edge(0, 1, EdgeKind::kAnnouncement, 5, 10, -1, 1, 40,
                  EdgeDrop::kPartitioned));
  log.Append(Edge(1, 0, EdgeKind::kGetBlock, 5, 60, 100, 2, 48));
  log.Append(Edge(0, 1, EdgeKind::kBlockResponse, 5, 110, 200, 1, 600));
  const FirstDeliveryShares shares = FirstDeliveryBreakdown(log);
  EXPECT_EQ(shares.fetched, 1u);
  EXPECT_EQ(shares.total(), 1u);
}

TEST(WasteByHostTest, AttributesRedundantBytesPerHost) {
  const ProvenanceLog log = TwoBlockLog();
  const auto waste = WasteByHost(log);
  // Host 2 wasted 640 B (dup announce + fetched body); everyone else 0.
  ASSERT_FALSE(waste.empty());
  EXPECT_EQ(waste[0].host, 2u);
  EXPECT_EQ(waste[0].receptions, 3u);
  EXPECT_EQ(waste[0].redundant_receptions, 2u);
  EXPECT_EQ(waste[0].wasted_bytes, 640u);
  std::uint64_t total_wasted = 0;
  std::uint64_t total_receptions = 0;
  for (const auto& w : waste) {
    total_wasted += w.wasted_bytes;
    total_receptions += w.receptions;
  }
  EXPECT_EQ(total_wasted, 640u);
  EXPECT_EQ(total_receptions, 5u);  // all delivered block messages
}

TEST(RedundancyFromProvenanceTest, CountsAndSettleWindowExclusion) {
  const ProvenanceLog log = TwoBlockLog();
  // Host 2 hears block 7 at 150/250/400 (2 announces + 1 body); its last
  // arrival is 400, so with a 100 us settle window the block counts
  // (150 + 100 <= 400).
  const RedundancyResult at2 =
      RedundancyFromProvenance(log, 2, Duration::Micros(100));
  ASSERT_EQ(at2.blocks, 1u);
  EXPECT_DOUBLE_EQ(at2.announcements.mean, 2.0);
  EXPECT_DOUBLE_EQ(at2.whole_blocks.mean, 1.0);
  EXPECT_DOUBLE_EQ(at2.combined.mean, 3.0);

  // Host 0's only reception IS its last arrival: still settling, excluded —
  // the same guard BlockReceptionRedundancy applies at the run cutoff.
  const RedundancyResult at0 =
      RedundancyFromProvenance(log, 0, Duration::Micros(100));
  EXPECT_EQ(at0.blocks, 0u);
}

TEST(RenderRedundancyJsonTest, TotalsCoverAllHostsWorstOffenderFirst) {
  const ProvenanceLog log = TwoBlockLog();
  const std::string json = RenderRedundancyJson(log, 20);
  // Totals over every host: 5 delivered block messages, 640 wasted bytes.
  EXPECT_NE(json.find("\"hosts\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"receptions\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wasted_bytes\": 640"), std::string::npos) << json;
  // Host 2 (640 wasted) leads the per_host rows.
  const auto per_host = json.find("\"per_host\": [{\"host\": 2");
  EXPECT_NE(per_host, std::string::npos) << json;
  EXPECT_NE(json.find("\"redundant\": 2"), std::string::npos) << json;
  EXPECT_EQ(json.back(), '\n');
}

TEST(RenderRedundancyJsonTest, TopBoundsRowsButNotTotals) {
  const ProvenanceLog log = TwoBlockLog();
  const std::string json = RenderRedundancyJson(log, 1);
  // One row rendered, but the header still counts all three hosts.
  EXPECT_NE(json.find("\"hosts\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"receptions\": 5"), std::string::npos) << json;
  std::size_t rows = 0;
  for (std::size_t pos = 0;
       (pos = json.find("{\"host\":", pos)) != std::string::npos; ++pos)
    ++rows;
  EXPECT_EQ(rows, 1u);
}

TEST(RenderHopsJsonTest, QuantilesAndSharesMatchTheAnalyses) {
  const ProvenanceLog log = TwoBlockLog();
  const std::string json = RenderHopsJson(log);
  // depths {0,0,1,1,1}: mean 0.6, p50 1, max 1; shares push 2 / announce 1.
  EXPECT_NE(json.find("\"pairs\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean\": 0.6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"first_delivery\": {\"push\": 2, \"announce\": 1, "
                      "\"fetched\": 0}"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.back(), '\n');
}

TEST(InferDegreesTest, ReceptionsPerSettledBlockEstimateDegree) {
  ProvenanceLog log;
  log.host_region = {0, 1, 2, 3};
  // Block 5 settled: host 1 hears 3 copies, host 2 hears 1.
  log.Append(Origin(0, 5, 0));
  log.Append(Edge(0, 1, EdgeKind::kNewBlock, 5, 10, 100, 1, 600));
  log.Append(Edge(2, 1, EdgeKind::kAnnouncement, 5, 150, 200, 2, 40));
  log.Append(Edge(3, 1, EdgeKind::kAnnouncement, 5, 150, 210, 2, 40));
  log.Append(Edge(0, 2, EdgeKind::kNewBlock, 5, 10, 120, 1, 600));
  // Block 6 first appears within the settle window of the end: excluded.
  log.Append(Origin(0, 6, 9000));
  log.Append(Edge(0, 1, EdgeKind::kNewBlock, 6, 9010, 9100, 1, 600));
  log.end_us = 10000;
  const auto degrees = InferDegrees(log, Duration::Micros(500));
  ASSERT_EQ(degrees.size(), 2u);
  EXPECT_EQ(degrees[0].host, 1u);
  EXPECT_EQ(degrees[0].blocks, 1u);  // block 6 excluded
  EXPECT_DOUBLE_EQ(degrees[0].estimated_degree, 3.0);
  EXPECT_EQ(degrees[1].host, 2u);
  EXPECT_DOUBLE_EQ(degrees[1].estimated_degree, 1.0);
}

}  // namespace
}  // namespace ethsim::analysis
