#include "analysis/commit.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "analysis/ordering.hpp"
#include "chain/block_arena.hpp"

namespace ethsim::analysis {
namespace {

using namespace ethsim::literals;

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every fixture in the suite
  return arena;
}

Address Sender(std::uint8_t tag) {
  Address a;
  a.bytes[0] = tag;
  return a;
}

// Builds a canonical chain with chosen txs per block and synthetic observer
// logs with exact arrival times.
struct CommitFixture : ::testing::Test {
  CommitFixture() {
    chain::Block g;
    g.header.difficulty = 1;
    g.Seal();
    genesis = Arena().Adopt(std::move(g));
    tree = std::make_unique<chain::BlockTree>(genesis);
    tip = genesis;
    observer = std::make_unique<measure::Observer>(
        "V", net::Region::WesternEurope, simulator, 0_ms);
  }

  // Appends a canonical block at `when` containing txs; logs its arrival.
  chain::BlockPtr Block(Duration when, std::vector<chain::Transaction> txs) {
    chain::Block body;
    body.header.parent_hash = tip->hash;
    body.header.number = tip->header.number + 1;
    body.header.difficulty = 1;
    body.transactions = std::move(txs);
    body.Seal();
    const chain::BlockPtr b = Arena().Adopt(std::move(body));
    tree->Add(b, TimePoint::FromMicros(when.micros()));
    tip = b;
    simulator.Schedule(when, [this, b] {
      observer->OnBlockMessage(eth::MessageSink::BlockMsgKind::kFullBlock,
                               b->hash, b->header.number, b);
    });
    return b;
  }

  void TxSeenAt(const chain::Transaction& tx, Duration when) {
    simulator.Schedule(when, [this, tx] { observer->OnTransactionMessage(tx); });
  }

  StudyInputs Inputs() {
    StudyInputs inputs;
    inputs.observers = {observer.get()};
    inputs.reference = tree.get();
    return inputs;
  }

  sim::Simulator simulator;
  chain::BlockPtr genesis;
  std::unique_ptr<chain::BlockTree> tree;
  chain::BlockPtr tip;
  std::unique_ptr<measure::Observer> observer;
};

TEST_F(CommitFixture, InclusionAndConfirmationDelays) {
  const auto tx = chain::MakeTransaction(Sender(1), 0, Sender(2), 1, 1);
  TxSeenAt(tx, 10_s);
  Block(23_s, {tx});            // inclusion 13s after first seen
  for (int i = 0; i < 3; ++i)   // 3 confirmations, 13s apart
    Block(Duration::Seconds(23 + 13 * (i + 1)), {});
  simulator.RunAll();

  const auto result = TransactionCommitTimes(Inputs(), {0, 3});
  ASSERT_EQ(result.delays_s.size(), 2u);
  EXPECT_EQ(result.committed_txs, 1u);
  ASSERT_EQ(result.delays_s[0].count(), 1u);
  EXPECT_NEAR(result.delays_s[0].Quantile(0.5), 13.0, 1e-6);
  EXPECT_NEAR(result.delays_s[1].Quantile(0.5), 13.0 + 39.0, 1e-6);
}

TEST_F(CommitFixture, TxsWithoutFullConfirmationCoverageExcluded) {
  const auto tx = chain::MakeTransaction(Sender(1), 0, Sender(2), 1, 1);
  TxSeenAt(tx, 1_s);
  Block(10_s, {tx});
  Block(20_s, {});  // only 1 confirmation; need 3
  simulator.RunAll();

  const auto result = TransactionCommitTimes(Inputs(), {0, 3});
  EXPECT_EQ(result.committed_txs, 0u);
  EXPECT_EQ(result.delays_s[0].count(), 0u);
}

TEST_F(CommitFixture, NeverObservedTxsAreSkipped) {
  const auto tx = chain::MakeTransaction(Sender(1), 0, Sender(2), 1, 1);
  // Not announced to the observer at all.
  Block(10_s, {tx});
  Block(20_s, {});
  simulator.RunAll();
  const auto result = TransactionCommitTimes(Inputs(), {0, 1});
  EXPECT_EQ(result.committed_txs, 0u);
}

TEST_F(CommitFixture, MultipleDepthsShareTheSameTxSet) {
  const auto tx1 = chain::MakeTransaction(Sender(1), 0, Sender(2), 1, 1);
  const auto tx2 = chain::MakeTransaction(Sender(3), 0, Sender(2), 1, 1);
  TxSeenAt(tx1, 1_s);
  TxSeenAt(tx2, 2_s);
  Block(10_s, {tx1, tx2});
  for (int i = 1; i <= 12; ++i) Block(Duration::Seconds(10 + 13 * i), {});
  simulator.RunAll();

  const auto result = TransactionCommitTimes(Inputs(), {0, 3, 12});
  EXPECT_EQ(result.committed_txs, 2u);
  EXPECT_EQ(result.delays_s[0].count(), 2u);
  EXPECT_EQ(result.delays_s[2].count(), 2u);
  // Min 12-conf delay belongs to tx2 (seen at 2s): 166 - 2 = 164 s; tx1's is
  // one second longer.
  EXPECT_NEAR(result.delays_s[2].Quantile(0.0), 164.0, 1e-6);
  EXPECT_NEAR(result.delays_s[2].Quantile(1.0), 165.0, 1e-6);
}

TEST_F(CommitFixture, CanonicalBlockFirstSeenUsesEarliestVantage) {
  auto obs2 = std::make_unique<measure::Observer>(
      "V2", net::Region::EasternAsia, simulator, 0_ms);
  const auto b1 = Block(10_s, {});
  // Second observer sees it earlier (e.g. closer to the miner).
  simulator.Schedule(9_s, [&obs2, b1] {
    obs2->OnBlockMessage(eth::MessageSink::BlockMsgKind::kFullBlock, b1->hash,
                         b1->header.number, b1);
  });
  simulator.RunAll();

  StudyInputs inputs = Inputs();
  inputs.observers.push_back(obs2.get());
  const auto seen = CanonicalBlockFirstSeen(inputs);
  ASSERT_TRUE(seen.contains(1));
  EXPECT_NEAR(seen.at(1).seconds(), 9.0, 1e-9);
}

// --- ordering (Fig 5) -------------------------------------------------------

TEST_F(CommitFixture, OutOfOrderDetection) {
  // Sender 1 sends nonces 0 and 1; the observer sees nonce 1 FIRST.
  const auto tx0 = chain::MakeTransaction(Sender(1), 0, Sender(2), 1, 1);
  const auto tx1 = chain::MakeTransaction(Sender(1), 1, Sender(2), 1, 1);
  TxSeenAt(tx1, 1_s);
  TxSeenAt(tx0, 2_s);
  // A second sender arrives in order.
  const auto tx2 = chain::MakeTransaction(Sender(3), 0, Sender(2), 1, 1);
  const auto tx3 = chain::MakeTransaction(Sender(3), 1, Sender(2), 1, 1);
  TxSeenAt(tx2, 1_s);
  TxSeenAt(tx3, 2_s);

  Block(10_s, {tx0, tx1, tx2, tx3});
  for (int i = 1; i <= 12; ++i) Block(Duration::Seconds(10 + 13 * i), {});
  simulator.RunAll();

  const auto result = TransactionOrdering(Inputs(), 12);
  EXPECT_EQ(result.committed_txs, 4u);
  EXPECT_EQ(result.out_of_order, 1u);  // only sender 1's nonce-1 tx
  EXPECT_DOUBLE_EQ(result.out_of_order_share, 0.25);
  EXPECT_EQ(result.in_order_delay_s.count(), 3u);
  EXPECT_EQ(result.out_of_order_delay_s.count(), 1u);
  // The OoO tx arrived earlier yet commits at the same block: its measured
  // commit delay is LONGER (it waited for its predecessor).
  EXPECT_GT(result.out_of_order_delay_s.mean(), result.in_order_delay_s.mean());
}

TEST_F(CommitFixture, SingleTxSendersAreInOrder) {
  const auto tx = chain::MakeTransaction(Sender(1), 0, Sender(2), 1, 1);
  TxSeenAt(tx, 1_s);
  Block(10_s, {tx});
  for (int i = 1; i <= 12; ++i) Block(Duration::Seconds(10 + 13 * i), {});
  simulator.RunAll();

  const auto result = TransactionOrdering(Inputs(), 12);
  EXPECT_EQ(result.committed_txs, 1u);
  EXPECT_EQ(result.out_of_order, 0u);
}

TEST_F(CommitFixture, NonAdjacentNonceInversionCounts) {
  // Nonces 0,1,2: observer sees 2 first, then 0, then 1.
  const auto tx0 = chain::MakeTransaction(Sender(1), 0, Sender(2), 1, 1);
  const auto tx1 = chain::MakeTransaction(Sender(1), 1, Sender(2), 1, 1);
  const auto tx2 = chain::MakeTransaction(Sender(1), 2, Sender(2), 1, 1);
  TxSeenAt(tx2, 1_s);
  TxSeenAt(tx0, 2_s);
  TxSeenAt(tx1, 3_s);
  Block(10_s, {tx0, tx1, tx2});
  for (int i = 1; i <= 12; ++i) Block(Duration::Seconds(10 + 13 * i), {});
  simulator.RunAll();

  const auto result = TransactionOrdering(Inputs(), 12);
  // tx2 is OoO (0 and 1 arrived later); tx1 is OoO (0 arrived... no — 0
  // arrived at 2s, tx1 at 3s: in order). Only tx2 counts.
  EXPECT_EQ(result.out_of_order, 1u);
}

}  // namespace
}  // namespace ethsim::analysis
