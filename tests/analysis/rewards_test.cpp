#include "analysis/rewards.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "chain/block_arena.hpp"

namespace ethsim::analysis {
namespace {

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every fixture in the suite
  return arena;
}


struct RewardsFixture : ::testing::Test {
  RewardsFixture() {
    miner::PoolSpec a, b;
    a.name = "Alpha";
    a.hashrate_share = 0.6;
    a.coinbase = miner::PoolCoinbase("Alpha");
    b.name = "Beta";
    b.hashrate_share = 0.4;
    b.coinbase = miner::PoolCoinbase("Beta");
    pools = {a, b};

    chain::Block g;
    g.header.difficulty = 1;
    g.Seal();
    tip = Arena().Adopt(std::move(g));
    tree = std::make_unique<chain::BlockTree>(tip);
  }

  chain::BlockPtr Append(std::size_t pool,
                         std::vector<chain::Transaction> txs = {},
                         std::vector<chain::BlockHeader> uncles = {}) {
    chain::Block body;
    body.header.parent_hash = tip->hash;
    body.header.number = tip->header.number + 1;
    body.header.difficulty = 1;
    body.header.miner = pools[pool].coinbase;
    body.transactions = std::move(txs);
    body.uncles = std::move(uncles);
    body.Seal();
    const chain::BlockPtr b = Arena().Adopt(std::move(body));
    tree->Add(b, TimePoint::FromMicros(static_cast<std::int64_t>(++tick)));
    tip = b;
    return b;
  }

  chain::BlockPtr Fork(const chain::BlockPtr& parent, std::size_t pool,
                       std::uint64_t mix) {
    chain::Block body;
    body.header.parent_hash = parent->hash;
    body.header.number = parent->header.number + 1;
    body.header.difficulty = 1;
    body.header.miner = pools[pool].coinbase;
    body.header.mix_seed = mix;
    body.Seal();
    const chain::BlockPtr b = Arena().Adopt(std::move(body));
    tree->Add(b, TimePoint::FromMicros(static_cast<std::int64_t>(++tick)));
    return b;
  }

  StudyInputs Inputs() {
    StudyInputs inputs;
    inputs.reference = tree.get();
    inputs.pools = &pools;
    return inputs;
  }

  std::vector<miner::PoolSpec> pools;
  std::unique_ptr<chain::BlockTree> tree;
  chain::BlockPtr tip;
  std::uint64_t tick = 0;
};

TEST_F(RewardsFixture, BaseBlockRewards) {
  Append(0);
  Append(0);
  Append(1);
  const auto result = ComputeRevenue(Inputs());
  EXPECT_DOUBLE_EQ(result.rows[0].block_rewards_eth, 4.0);
  EXPECT_DOUBLE_EQ(result.rows[1].block_rewards_eth, 2.0);
  EXPECT_DOUBLE_EQ(result.total_eth, 6.0);
  EXPECT_NEAR(result.rows[0].revenue_share, 2.0 / 3.0, 1e-12);
}

TEST_F(RewardsFixture, FeesScaleWithGasTimesPrice) {
  Address sender;
  sender.bytes[0] = 9;
  // 21000 gas at 100 gwei = 0.0021 ETH.
  const auto tx = chain::MakeTransaction(sender, 0, sender, 1, 100);
  Append(0, {tx});
  const auto result = ComputeRevenue(Inputs());
  EXPECT_NEAR(result.rows[0].fee_rewards_eth, 21'000.0 * 100 * 1e-9, 1e-12);
  // Fees are a rounding error next to the base reward — the paper's
  // explanation of why empty blocks barely cost the miner anything.
  EXPECT_LT(result.fees_share_of_total, 0.01);
}

TEST_F(RewardsFixture, UncleAndNephewRewards) {
  Append(0);
  const chain::BlockPtr uncle = Fork(tree->Get(tree->genesis_hash()), 1, 7);
  // Distance 1 uncle: referenced by the block at height 2.
  Append(0, {}, {uncle->header});

  const auto result = ComputeRevenue(Inputs());
  // Beta's uncle at distance 1: 2 * 7/8 = 1.75 ETH.
  EXPECT_DOUBLE_EQ(result.rows[1].uncle_rewards_eth, 1.75);
  EXPECT_EQ(result.rows[1].uncles_rewarded, 1u);
  // Alpha referenced one uncle: nephew bonus 2/32.
  EXPECT_DOUBLE_EQ(result.rows[0].nephew_rewards_eth, 2.0 / 32.0);
  // Different miners at that height: no §V leakage.
  EXPECT_DOUBLE_EQ(result.one_miner_uncle_eth, 0.0);
}

TEST_F(RewardsFixture, UncleRewardDecaysWithDistance) {
  const chain::BlockPtr uncle = Fork(tree->Get(tree->genesis_hash()), 1, 7);
  Append(0);  // height 1 (reorged over the fork once height 2 lands)
  Append(0);  // height 2
  Append(0);  // height 3
  Append(0, {}, {uncle->header});  // height 4: distance 3 from the uncle
  const auto result = ComputeRevenue(Inputs());
  // 2 * (8-3)/8 = 1.25.
  EXPECT_DOUBLE_EQ(result.rows[1].uncle_rewards_eth, 1.25);
}

TEST_F(RewardsFixture, OneMinerForkLeakageDetected) {
  // Alpha holds height 1 AND its fork; the fork gets uncle-rewarded.
  const chain::BlockPtr main1 = Append(0);
  const chain::BlockPtr self_fork = Fork(tree->Get(main1->header.parent_hash), 0, 9);
  Append(0, {}, {self_fork->header});

  const auto result = ComputeRevenue(Inputs());
  EXPECT_DOUBLE_EQ(result.rows[0].one_miner_uncle_eth, 1.75);
  EXPECT_DOUBLE_EQ(result.one_miner_uncle_eth, 1.75);
  // It still counts inside the pool's total uncle revenue.
  EXPECT_DOUBLE_EQ(result.rows[0].uncle_rewards_eth, 1.75);
}

TEST_F(RewardsFixture, EmptyChainProducesZeroes) {
  const auto result = ComputeRevenue(Inputs());
  EXPECT_DOUBLE_EQ(result.total_eth, 0.0);
  EXPECT_DOUBLE_EQ(result.fees_share_of_total, 0.0);
}

}  // namespace
}  // namespace ethsim::analysis
