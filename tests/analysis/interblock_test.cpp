#include "analysis/interblock.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "chain/block_arena.hpp"

namespace ethsim::analysis {
namespace {

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every fixture in the suite
  return arena;
}


struct InterBlockFixture : ::testing::Test {
  InterBlockFixture() {
    chain::Block g;
    g.header.difficulty = 1000;
    g.Seal();
    tip = Arena().Adopt(std::move(g));
    tree = std::make_unique<chain::BlockTree>(tip);
  }

  void Append(std::uint64_t interval_s, std::uint64_t difficulty = 1000) {
    chain::Block body;
    body.header.parent_hash = tip->hash;
    body.header.number = tip->header.number + 1;
    body.header.timestamp = tip->header.timestamp + interval_s;
    body.header.difficulty = difficulty;
    body.Seal();
    const chain::BlockPtr b = Arena().Adopt(std::move(body));
    tree->Add(b, TimePoint::FromMicros(static_cast<std::int64_t>(++tick)));
    tip = b;
  }

  StudyInputs Inputs() {
    StudyInputs inputs;
    inputs.reference = tree.get();
    return inputs;
  }

  std::unique_ptr<chain::BlockTree> tree;
  chain::BlockPtr tip;
  std::uint64_t tick = 0;
};

TEST_F(InterBlockFixture, MeanAndMedianOfConstantIntervals) {
  for (int i = 0; i < 120; ++i) Append(13);
  const auto result = InterBlockTimes(Inputs(), 10);
  // Chain = genesis + 120 appended; skip 10 leaves 111 blocks -> 110 deltas.
  EXPECT_EQ(result.blocks, 110u);
  EXPECT_DOUBLE_EQ(result.mean_s, 13.0);
  EXPECT_DOUBLE_EQ(result.median_s, 13.0);
}

TEST_F(InterBlockFixture, SkipDropsWarmup) {
  // Warm-up blocks at 60 s, steady state at 13 s: skipping removes the bias.
  for (int i = 0; i < 20; ++i) Append(60);
  for (int i = 0; i < 100; ++i) Append(13);
  const auto with_warmup = InterBlockTimes(Inputs(), 0);
  const auto skipped = InterBlockTimes(Inputs(), 20);
  EXPECT_GT(with_warmup.mean_s, 19.0);
  EXPECT_DOUBLE_EQ(skipped.mean_s, 13.0);
}

TEST_F(InterBlockFixture, DifficultyTrendDetectsBombPressure) {
  for (int i = 0; i < 200; ++i)
    Append(13, 1000 + static_cast<std::uint64_t>(i) * 10);  // rising difficulty
  const auto result = InterBlockTimes(Inputs(), 0);
  EXPECT_GT(result.difficulty_last_decile, result.difficulty_first_decile * 1.5);
}

TEST_F(InterBlockFixture, TooShortChainIsSafe) {
  Append(13);
  const auto result = InterBlockTimes(Inputs(), 50);
  EXPECT_EQ(result.blocks, 0u);
  EXPECT_DOUBLE_EQ(result.mean_s, 0.0);
}

TEST_F(InterBlockFixture, ExpectedCommitBridgesToFig4) {
  for (int i = 0; i < 120; ++i) Append(13);
  const auto result = InterBlockTimes(Inputs(), 10);
  // 12 confirmations at 13 s: 12.5 * 13 = 162.5 s — the ballpark the Fig 4
  // bench measures (174 s incl. queueing).
  EXPECT_NEAR(ExpectedCommitSeconds(result, 12), 162.5, 1e-9);
  EXPECT_GT(ExpectedCommitSeconds(result, 36), ExpectedCommitSeconds(result, 12));
}

}  // namespace
}  // namespace ethsim::analysis
