#include "analysis/sequences.hpp"

#include "chain/block_arena.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ethsim::analysis {
namespace {

std::vector<miner::PoolSpec> TwoPools(double a = 0.7, double b = 0.3) {
  miner::PoolSpec p0, p1;
  p0.name = "Big";
  p0.hashrate_share = a;
  p0.coinbase = miner::PoolCoinbase("Big");
  p1.name = "Small";
  p1.hashrate_share = b;
  p1.coinbase = miner::PoolCoinbase("Small");
  return {p0, p1};
}

TEST(Sequences, RunsFromWinnerList) {
  const auto pools = TwoPools();
  // Runs: Big x3, Small x1, Big x1, Small x2.
  const std::vector<std::size_t> winners{0, 0, 0, 1, 0, 1, 1};
  const auto result = SequencesFromWinners(winners, pools);
  ASSERT_EQ(result.pools.size(), 2u);
  EXPECT_EQ(result.total_main_blocks, 7u);
  EXPECT_EQ(result.pools[0].runs.at(3), 1u);
  EXPECT_EQ(result.pools[0].runs.at(1), 1u);
  EXPECT_EQ(result.pools[0].max_run, 3u);
  EXPECT_EQ(result.pools[0].blocks, 4u);
  EXPECT_EQ(result.pools[1].runs.at(1), 1u);
  EXPECT_EQ(result.pools[1].runs.at(2), 1u);
  EXPECT_EQ(result.pools[1].max_run, 2u);
}

TEST(Sequences, RunAtEndOfListCounted) {
  const auto pools = TwoPools();
  const std::vector<std::size_t> winners{1, 0, 0, 0, 0};
  const auto result = SequencesFromWinners(winners, pools);
  EXPECT_EQ(result.pools[0].runs.at(4), 1u);
  EXPECT_EQ(result.pools[0].max_run, 4u);
}

TEST(Sequences, CdfAndRunsAtLeast) {
  const auto pools = TwoPools();
  const std::vector<std::size_t> winners{0, 1, 0, 0, 1, 0, 0, 0, 1};
  const auto result = SequencesFromWinners(winners, pools);
  const auto& big = result.pools[0];
  // Big runs: 1, 2, 3.
  EXPECT_EQ(big.RunsAtLeast(1), 3u);
  EXPECT_EQ(big.RunsAtLeast(2), 2u);
  EXPECT_EQ(big.RunsAtLeast(3), 1u);
  EXPECT_EQ(big.RunsAtLeast(4), 0u);
  EXPECT_NEAR(big.CdfAt(1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(big.CdfAt(2), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(big.CdfAt(3), 1.0);
}

TEST(Sequences, ExpectedRunsMatchesPaperExample) {
  // §III-D: Ethermine at 25.9% share, 8-run, 201,086 blocks -> ~4 per month.
  EXPECT_NEAR(ExpectedRuns(0.259, 8, 201'086), 4.0, 0.2);
  // Sparkpool at 22.69%, 9-run -> ~0.3 per month (once per ~3 months).
  EXPECT_NEAR(ExpectedRuns(0.2269, 9, 201'086), 0.3, 0.05);
}

TEST(Sequences, SampleWinnersFollowsShares) {
  const auto pools = TwoPools(0.7, 0.3);
  const auto winners = SampleWinners(pools, 100'000, Rng{42});
  std::size_t big = 0;
  for (const auto w : winners) big += (w == 0);
  EXPECT_NEAR(static_cast<double>(big) / 100'000.0, 0.7, 0.01);
}

TEST(Sequences, SampledRunsMatchTheory) {
  // Property check: in N sampled winners, #runs >= k approximates
  // N * p^k * (1-p) (start-of-run correction) — within noise the paper's
  // simpler N*p^k bound holds as an upper estimate.
  const auto pools = TwoPools(0.25, 0.75);
  const std::size_t n = 500'000;
  const auto winners = SampleWinners(pools, n, Rng{7});
  const auto result = SequencesFromWinners(winners, pools);
  const double observed = static_cast<double>(result.pools[0].RunsAtLeast(6));
  const double refined = static_cast<double>(n) * std::pow(0.25, 6) * 0.75;
  EXPECT_NEAR(observed, refined, refined * 0.5 + 5.0);
  EXPECT_LE(observed, ExpectedRuns(0.25, 6, n) * 1.5 + 5.0);
}

TEST(Sequences, WholeHistoryScaleSamplerIsFastEnough) {
  // The §III-D whole-blockchain surrogate: 7.6M blocks with the full paper
  // roster. Smoke check on shape: max Ethermine run should reach >= 10 as
  // the paper's historical scan found (102 runs of 10, one of 14).
  const auto pools = miner::PaperPools();
  const auto winners = SampleWinners(pools, 7'600'000, Rng{2020});
  const auto result = SequencesFromWinners(winners, pools);
  EXPECT_GE(result.pools[0].max_run, 10u);  // Ethermine
  EXPECT_EQ(result.total_main_blocks, 7'600'000u);
}

TEST(Sequences, FromReferenceTreeUsesCoinbases) {
  const auto pools = TwoPools();
  chain::BlockArena arena;
  chain::Block g;
  g.header.difficulty = 1;
  g.Seal();
  const chain::BlockPtr genesis = arena.Adopt(std::move(g));
  chain::BlockTree tree{genesis};
  chain::BlockPtr tip = genesis;
  const std::vector<std::size_t> pattern{0, 0, 1, 0};
  std::uint64_t tick = 0;
  for (const std::size_t p : pattern) {
    chain::Block body;
    body.header.parent_hash = tip->hash;
    body.header.number = tip->header.number + 1;
    body.header.difficulty = 1;
    body.header.miner = pools[p].coinbase;
    body.Seal();
    const chain::BlockPtr b = arena.Adopt(std::move(body));
    tree.Add(b, TimePoint::FromMicros(static_cast<std::int64_t>(++tick)));
    tip = b;
  }

  StudyInputs inputs;
  inputs.reference = &tree;
  inputs.pools = &pools;
  const auto result = ConsecutiveMinerSequences(inputs);
  EXPECT_EQ(result.total_main_blocks, 4u);
  EXPECT_EQ(result.pools[0].runs.at(2), 1u);
  EXPECT_EQ(result.pools[0].runs.at(1), 1u);
  EXPECT_EQ(result.pools[1].runs.at(1), 1u);
}

}  // namespace
}  // namespace ethsim::analysis
