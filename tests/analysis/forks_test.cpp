#include "analysis/forks.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "chain/block_arena.hpp"

namespace ethsim::analysis {
namespace {

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every fixture in the suite
  return arena;
}


Address Miner(std::uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

struct ForkFixture : ::testing::Test {
  ForkFixture() {
    chain::Block g;
    g.header.difficulty = 1000;
    g.Seal();
    genesis = Arena().Adopt(std::move(g));
    tree = std::make_unique<chain::BlockTree>(genesis);
  }

  chain::BlockPtr Add(const chain::BlockPtr& parent, Address miner,
                      std::uint64_t mix = 0,
                      std::vector<chain::BlockHeader> uncles = {},
                      std::vector<chain::Transaction> txs = {}) {
    chain::Block body;
    body.header.parent_hash = parent->hash;
    body.header.number = parent->header.number + 1;
    body.header.difficulty = 1000;
    body.header.miner = miner;
    body.header.mix_seed = mix;
    body.uncles = std::move(uncles);
    body.transactions = std::move(txs);
    body.Seal();
    const chain::BlockPtr b = Arena().Adopt(std::move(body));
    tree->Add(b, TimePoint::FromMicros(static_cast<std::int64_t>(++ticks)));
    return b;
  }

  StudyInputs Inputs() {
    StudyInputs inputs;
    inputs.reference = tree.get();
    return inputs;
  }

  chain::BlockPtr genesis;
  std::unique_ptr<chain::BlockTree> tree;
  std::uint64_t ticks = 0;
};

TEST_F(ForkFixture, LinearChainHasNoForks) {
  chain::BlockPtr tip = genesis;
  for (int i = 0; i < 5; ++i) tip = Add(tip, Miner(1));
  const auto census = ComputeForkCensus(Inputs());
  EXPECT_EQ(census.total_blocks, 5u);
  EXPECT_EQ(census.main_blocks, 5u);
  EXPECT_DOUBLE_EQ(census.main_share, 1.0);
  EXPECT_EQ(census.fork_events, 0u);
  EXPECT_TRUE(census.by_length.empty());
}

TEST_F(ForkFixture, LengthOneForkRecognizedViaUncleReference) {
  const chain::BlockPtr a1 = Add(genesis, Miner(1), 1);
  const chain::BlockPtr b1 = Add(genesis, Miner(2), 2);  // fork
  // a2 references b1 as uncle.
  Add(a1, Miner(1), 0, {b1->header});
  const auto census = ComputeForkCensus(Inputs());

  EXPECT_EQ(census.total_blocks, 3u);
  EXPECT_EQ(census.main_blocks, 2u);
  EXPECT_EQ(census.recognized_uncles, 1u);
  EXPECT_EQ(census.unrecognized_blocks, 0u);
  ASSERT_EQ(census.by_length.size(), 1u);
  EXPECT_EQ(census.by_length[0].length, 1u);
  EXPECT_EQ(census.by_length[0].total, 1u);
  EXPECT_EQ(census.by_length[0].recognized, 1u);
}

TEST_F(ForkFixture, LengthOneForkUnrecognizedWithoutReference) {
  const chain::BlockPtr a1 = Add(genesis, Miner(1), 1);
  Add(genesis, Miner(2), 2);  // fork, never referenced
  Add(a1, Miner(1));          // extends main without uncles
  const auto census = ComputeForkCensus(Inputs());
  EXPECT_EQ(census.unrecognized_blocks, 1u);
  ASSERT_EQ(census.by_length.size(), 1u);
  EXPECT_EQ(census.by_length[0].recognized, 0u);
  EXPECT_EQ(census.by_length[0].unrecognized, 1u);
}

TEST_F(ForkFixture, LengthTwoForkCountedOnceAndNeverRecognized) {
  const chain::BlockPtr a1 = Add(genesis, Miner(1), 1);
  const chain::BlockPtr a2 = Add(a1, Miner(1), 1);
  const chain::BlockPtr b1 = Add(genesis, Miner(2), 2);
  const chain::BlockPtr b2 = Add(b1, Miner(2), 2);  // fork extends to len 2
  Add(a2, Miner(1), 0, {b1->header});  // b1 referenced; b2 cannot be

  const auto census = ComputeForkCensus(Inputs());
  EXPECT_EQ(census.fork_events, 1u);
  ASSERT_EQ(census.by_length.size(), 1u);
  EXPECT_EQ(census.by_length[0].length, 2u);
  EXPECT_EQ(census.by_length[0].total, 1u);
  // Per the paper, no fork longer than 1 ever became recognized.
  EXPECT_EQ(census.by_length[0].recognized, 0u);
}

TEST_F(ForkFixture, MixedForkLengthsBucketedCorrectly) {
  chain::BlockPtr tip = genesis;
  // Three length-1 forks at different heights and one length-3 fork.
  for (int i = 0; i < 3; ++i) {
    const chain::BlockPtr parent = tip;
    tip = Add(parent, Miner(1), 1);
    Add(parent, Miner(2), static_cast<std::uint64_t>(10 + i));  // fork
    tip = Add(tip, Miner(1), 1);
  }
  chain::BlockPtr fork = Add(tip, Miner(3), 99);
  fork = Add(fork, Miner(3), 99);
  fork = Add(fork, Miner(3), 99);
  tip = Add(tip, Miner(1), 1);
  tip = Add(tip, Miner(1), 1);
  tip = Add(tip, Miner(1), 1);
  tip = Add(tip, Miner(1), 1);  // main outgrows the length-3 fork

  const auto census = ComputeForkCensus(Inputs());
  ASSERT_EQ(census.by_length.size(), 2u);
  EXPECT_EQ(census.by_length[0].length, 1u);
  EXPECT_EQ(census.by_length[0].total, 3u);
  EXPECT_EQ(census.by_length[1].length, 3u);
  EXPECT_EQ(census.by_length[1].total, 1u);
  EXPECT_EQ(census.fork_events, 4u);
}

TEST_F(ForkFixture, OneMinerForkPairDetected) {
  const chain::BlockPtr a = Add(genesis, Miner(1), 1);
  const chain::BlockPtr b = Add(genesis, Miner(1), 2);  // same miner, same height
  Add(a, Miner(3), 0, {b->header});

  const auto census = ComputeForkCensus(Inputs());
  const auto omf = ComputeOneMinerForks(Inputs(), census);
  EXPECT_EQ(omf.events, 1u);
  EXPECT_EQ(omf.tuples.at(2), 1u);
  EXPECT_EQ(omf.extra_blocks, 1u);
  EXPECT_DOUBLE_EQ(omf.recognized_extra_share, 1.0);
  // Identical (empty) tx sets -> same-txset case.
  EXPECT_DOUBLE_EQ(omf.same_txset_share, 1.0);
  EXPECT_DOUBLE_EQ(omf.share_of_all_forks, 1.0);
}

TEST_F(ForkFixture, DistinctTxSetOneMinerForkClassified) {
  Address sender;
  sender.bytes[0] = 7;
  const auto tx = chain::MakeTransaction(sender, 0, sender, 1, 1);
  const chain::BlockPtr a = Add(genesis, Miner(1), 1, {}, {tx});
  Add(genesis, Miner(1), 2);  // same miner, no txs
  Add(a, Miner(3));

  const auto census = ComputeForkCensus(Inputs());
  const auto omf = ComputeOneMinerForks(Inputs(), census);
  EXPECT_EQ(omf.events, 1u);
  EXPECT_DOUBLE_EQ(omf.same_txset_share, 0.0);
}

TEST_F(ForkFixture, TripleCountedSeparately) {
  Add(genesis, Miner(1), 1);
  Add(genesis, Miner(1), 2);
  Add(genesis, Miner(1), 3);
  const auto census = ComputeForkCensus(Inputs());
  const auto omf = ComputeOneMinerForks(Inputs(), census);
  EXPECT_EQ(omf.events, 1u);
  EXPECT_EQ(omf.tuples.at(3), 1u);
  EXPECT_EQ(omf.extra_blocks, 2u);
}

TEST_F(ForkFixture, DifferentMinersAtSameHeightAreNotOneMinerForks) {
  Add(genesis, Miner(1), 1);
  Add(genesis, Miner(2), 2);
  const auto census = ComputeForkCensus(Inputs());
  const auto omf = ComputeOneMinerForks(Inputs(), census);
  EXPECT_EQ(omf.events, 0u);
  EXPECT_EQ(census.fork_events, 1u);
}

}  // namespace
}  // namespace ethsim::analysis
