#include "analysis/empty_blocks.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "chain/block_arena.hpp"

namespace ethsim::analysis {
namespace {

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every fixture in the suite
  return arena;
}


struct EmptyBlockFixture : ::testing::Test {
  EmptyBlockFixture() {
    miner::PoolSpec a, b;
    a.name = "Packer";
    a.hashrate_share = 0.6;
    a.coinbase = miner::PoolCoinbase("Packer");
    b.name = "Skipper";
    b.hashrate_share = 0.4;
    b.coinbase = miner::PoolCoinbase("Skipper");
    pools = {a, b};

    chain::Block g;
    g.header.difficulty = 1;
    g.Seal();
    tip = Arena().Adopt(std::move(g));
    tree = std::make_unique<chain::BlockTree>(tip);
  }

  void Append(std::size_t pool, bool empty) {
    chain::Block body;
    body.header.parent_hash = tip->hash;
    body.header.number = tip->header.number + 1;
    body.header.difficulty = 1;
    body.header.miner = pools[pool].coinbase;
    if (!empty) {
      Address sender;
      sender.bytes[0] = static_cast<std::uint8_t>(tick + 1);
      body.transactions.push_back(
          chain::MakeTransaction(sender, 0, sender, 1, 1));
    }
    body.Seal();
    const chain::BlockPtr b = Arena().Adopt(std::move(body));
    tree->Add(b, TimePoint::FromMicros(static_cast<std::int64_t>(++tick)));
    tip = b;
  }

  StudyInputs Inputs() {
    StudyInputs inputs;
    inputs.reference = tree.get();
    inputs.pools = &pools;
    return inputs;
  }

  std::vector<miner::PoolSpec> pools;
  std::unique_ptr<chain::BlockTree> tree;
  chain::BlockPtr tip;
  std::uint64_t tick = 0;
};

TEST_F(EmptyBlockFixture, CountsPerPool) {
  Append(0, false);
  Append(0, false);
  Append(0, true);
  Append(1, true);
  Append(1, true);

  const auto result = EmptyBlockCensus(Inputs());
  EXPECT_EQ(result.total_main_blocks, 5u);
  EXPECT_EQ(result.total_empty_blocks, 3u);
  EXPECT_DOUBLE_EQ(result.overall_empty_rate, 0.6);

  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].pool, "Packer");
  EXPECT_EQ(result.rows[0].main_blocks, 3u);
  EXPECT_EQ(result.rows[0].empty_blocks, 1u);
  EXPECT_NEAR(result.rows[0].empty_rate, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(result.rows[1].empty_blocks, 2u);
  EXPECT_DOUBLE_EQ(result.rows[1].empty_rate, 1.0);
}

TEST_F(EmptyBlockFixture, ScalingToPaperFrame) {
  Append(0, true);
  Append(0, false);  // 2 main blocks, 1 empty
  const auto result = EmptyBlockCensus(Inputs(), 201'086);
  // 1 empty out of 2 blocks -> scaled to 100,543.
  EXPECT_NEAR(result.rows[0].scaled_to_paper, 100'543.0, 1.0);
}

TEST_F(EmptyBlockFixture, OnlyCanonicalBlocksCounted) {
  Append(0, true);
  // A forked empty block by pool 1 at the same height must not count.
  chain::Block fork_body;
  fork_body.header.parent_hash = tree->genesis_hash();
  fork_body.header.number = 1;
  fork_body.header.difficulty = 1;
  fork_body.header.miner = pools[1].coinbase;
  fork_body.header.mix_seed = 99;
  fork_body.Seal();
  const chain::BlockPtr fork = Arena().Adopt(std::move(fork_body));
  tree->Add(fork, TimePoint::FromMicros(1000));

  const auto result = EmptyBlockCensus(Inputs());
  EXPECT_EQ(result.total_main_blocks, 1u);
  EXPECT_EQ(result.rows[1].main_blocks, 0u);
}

TEST_F(EmptyBlockFixture, EmptyChainIsSafe) {
  const auto result = EmptyBlockCensus(Inputs());
  EXPECT_EQ(result.total_main_blocks, 0u);
  EXPECT_DOUBLE_EQ(result.overall_empty_rate, 0.0);
}

}  // namespace
}  // namespace ethsim::analysis
