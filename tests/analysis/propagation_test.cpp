#include "analysis/propagation.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace ethsim::analysis {
namespace {

using namespace ethsim::literals;

Hash32 H(std::uint8_t tag) {
  Hash32 h;
  h.bytes[0] = tag;
  return h;
}

// Drives observers with synthetic message timings through the simulator so
// that LocalNow() stamps are exact.
struct PropagationFixture : ::testing::Test {
  sim::Simulator simulator;
  std::vector<std::unique_ptr<measure::Observer>> owned;

  measure::Observer* AddObserver(const std::string& name, Duration offset) {
    owned.push_back(std::make_unique<measure::Observer>(
        name, net::Region::WesternEurope, simulator, offset));
    return owned.back().get();
  }

  void BlockAt(measure::Observer* obs, Duration when, const Hash32& hash) {
    simulator.Schedule(when, [obs, hash] {
      obs->OnBlockMessage(eth::MessageSink::BlockMsgKind::kFullBlock, hash, 1,
                          nullptr);
    });
  }

  void TxAt(measure::Observer* obs, Duration when, const Hash32& hash) {
    simulator.Schedule(when, [obs, hash] {
      Address sender;
      chain::Transaction tx;
      tx.hash = hash;
      tx.sender = sender;
      obs->OnTransactionMessage(tx);
    });
  }

  ObserverSet Set() {
    ObserverSet set;
    for (const auto& o : owned) set.push_back(o.get());
    return set;
  }
};

TEST_F(PropagationFixture, SingleBlockTwoVantages) {
  auto* a = AddObserver("A", 0_ms);
  auto* b = AddObserver("B", 0_ms);
  BlockAt(a, 100_ms, H(1));
  BlockAt(b, 174_ms, H(1));
  simulator.RunAll();

  const auto result = BlockPropagationDelays(Set());
  EXPECT_EQ(result.items, 1u);
  ASSERT_EQ(result.delays_ms.count(), 1u);
  EXPECT_DOUBLE_EQ(result.median_ms, 74.0);
  EXPECT_DOUBLE_EQ(result.mean_ms, 74.0);
}

TEST_F(PropagationFixture, FourVantagesYieldThreeDeltasPerBlock) {
  auto* a = AddObserver("A", 0_ms);
  auto* b = AddObserver("B", 0_ms);
  auto* c = AddObserver("C", 0_ms);
  auto* d = AddObserver("D", 0_ms);
  BlockAt(a, 100_ms, H(1));
  BlockAt(b, 150_ms, H(1));
  BlockAt(c, 200_ms, H(1));
  BlockAt(d, 400_ms, H(1));
  simulator.RunAll();

  const auto result = BlockPropagationDelays(Set());
  EXPECT_EQ(result.items, 1u);
  ASSERT_EQ(result.delays_ms.count(), 3u);
  EXPECT_DOUBLE_EQ(result.delays_ms.Quantile(0.0), 50.0);
  EXPECT_DOUBLE_EQ(result.delays_ms.Quantile(1.0), 300.0);
  EXPECT_DOUBLE_EQ(result.median_ms, 100.0);
}

TEST_F(PropagationFixture, BlocksSeenByOneVantageAreExcluded) {
  auto* a = AddObserver("A", 0_ms);
  auto* b = AddObserver("B", 0_ms);
  BlockAt(a, 100_ms, H(1));  // only A sees block 1
  BlockAt(a, 200_ms, H(2));
  BlockAt(b, 230_ms, H(2));
  simulator.RunAll();

  const auto result = BlockPropagationDelays(Set());
  EXPECT_EQ(result.items, 1u);
  EXPECT_DOUBLE_EQ(result.median_ms, 30.0);
}

TEST_F(PropagationFixture, ClockOffsetsContaminateMeasurement) {
  // B's clock runs 20ms ahead: the measured delta includes that skew, as in
  // the real study (§II's accuracy caveat).
  auto* a = AddObserver("A", 0_ms);
  auto* b = AddObserver("B", 20_ms);
  BlockAt(a, 100_ms, H(1));
  BlockAt(b, 150_ms, H(1));  // true delta 50ms
  simulator.RunAll();

  const auto result = BlockPropagationDelays(Set());
  EXPECT_DOUBLE_EQ(result.median_ms, 70.0);  // 50 true + 20 skew
}

TEST_F(PropagationFixture, SkewCanInvertTheWinner) {
  auto* a = AddObserver("A", 0_ms);
  auto* b = AddObserver("B", Duration::Millis(-30));
  BlockAt(a, 100_ms, H(1));  // true first
  BlockAt(b, 110_ms, H(1));  // local clock says 80ms -> apparent first
  simulator.RunAll();

  const auto result = BlockPropagationDelays(Set());
  ASSERT_EQ(result.delays_ms.count(), 1u);
  // Delta measured from B's (earlier-looking) stamp.
  EXPECT_DOUBLE_EQ(result.delays_ms.Quantile(0.5), 20.0);
}

TEST_F(PropagationFixture, PercentilesOverManyBlocks) {
  auto* a = AddObserver("A", 0_ms);
  auto* b = AddObserver("B", 0_ms);
  // 100 blocks with deltas 1..100 ms.
  for (int i = 1; i <= 100; ++i) {
    Hash32 h;
    h.bytes[0] = static_cast<std::uint8_t>(i);
    h.bytes[1] = static_cast<std::uint8_t>(i >> 8);
    BlockAt(a, Duration::Seconds(i), h);
    BlockAt(b, Duration::Seconds(i) + Duration::Millis(i), h);
  }
  simulator.RunAll();

  const auto result = BlockPropagationDelays(Set());
  EXPECT_EQ(result.items, 100u);
  EXPECT_NEAR(result.median_ms, 50.5, 0.6);
  EXPECT_NEAR(result.p95_ms, 95.0, 1.0);
  EXPECT_NEAR(result.p99_ms, 99.0, 1.0);
}

TEST_F(PropagationFixture, TxDelaysComputedSeparatelyFromBlocks) {
  auto* a = AddObserver("A", 0_ms);
  auto* b = AddObserver("B", 0_ms);
  TxAt(a, 10_ms, H(9));
  TxAt(b, 15_ms, H(9));
  BlockAt(a, 100_ms, H(1));
  BlockAt(b, 300_ms, H(1));
  simulator.RunAll();

  EXPECT_DOUBLE_EQ(TxPropagationDelays(Set()).median_ms, 5.0);
  EXPECT_DOUBLE_EQ(BlockPropagationDelays(Set()).median_ms, 200.0);
}

TEST_F(PropagationFixture, PerVantageMediansIdentifyLaggards) {
  auto* a = AddObserver("EA", 0_ms);
  auto* b = AddObserver("NA", 0_ms);
  for (int i = 1; i <= 20; ++i) {
    Hash32 h = H(static_cast<std::uint8_t>(i));
    BlockAt(a, Duration::Seconds(i), h);                        // always first
    BlockAt(b, Duration::Seconds(i) + Duration::Millis(80), h); // +80ms
  }
  simulator.RunAll();

  const auto rows = PerVantageBlockDelay(Set());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "EA");
  EXPECT_EQ(rows[0].samples, 0u);  // never trails
  EXPECT_EQ(rows[1].name, "NA");
  EXPECT_EQ(rows[1].samples, 20u);
  EXPECT_DOUBLE_EQ(rows[1].median_ms, 80.0);
}

TEST_F(PropagationFixture, EmptyObserversProduceEmptyResult) {
  const auto result = BlockPropagationDelays({});
  EXPECT_EQ(result.items, 0u);
  EXPECT_EQ(result.delays_ms.count(), 0u);
}

}  // namespace
}  // namespace ethsim::analysis
