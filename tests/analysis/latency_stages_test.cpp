// Commit-latency decomposition tests: the reconciling form must agree
// exactly with TransactionCommitTimes and AnalyzeDemand on the committed
// set, every committed tx must carry a complete stage timeline (the
// recorder's coverage claim), and the log-only form used by
// `ethsim_inspect --stages` must be deterministic over the same artifact.
#include "analysis/latency_stages.hpp"

#include <gtest/gtest.h>

#include "analysis/commit.hpp"
#include "analysis/demand.hpp"
#include "core/experiment.hpp"

namespace ethsim {
namespace {

const std::vector<std::uint64_t> kDepths{0, 3, 12, 15, 36};

core::ExperimentConfig SmokeConfig() {
  core::ExperimentConfig cfg = core::presets::SmallStudy(24);
  cfg.duration = Duration::Minutes(12);
  cfg.workload.rate_per_sec = 0.5;
  cfg.telemetry.txprov = true;
  return cfg;
}

analysis::StudyInputs InputsFor(const core::Experiment& exp) {
  analysis::StudyInputs inputs;
  for (const auto& obs : exp.observers()) inputs.observers.push_back(obs.get());
  inputs.minted = &exp.minted();
  inputs.pools = &exp.config().pools;
  inputs.reference = &exp.reference_tree();
  return inputs;
}

TEST(LatencyStages, ReconcilesWithCommitAndDemand) {
  core::Experiment exp{SmokeConfig()};
  exp.Run();
  ASSERT_NE(exp.telemetry(), nullptr);
  ASSERT_NE(exp.telemetry()->txprov(), nullptr);
  obs::TxProvRecorder* txprov = exp.telemetry()->txprov();
  EXPECT_EQ(txprov->violations(), 0u);
  ASSERT_EQ(txprov->confirmation_depths(), kDepths);
  const obs::TxProvLog& log = txprov->Finish();
  ASSERT_GT(log.size(), 0u);

  const auto inputs = InputsFor(exp);
  const auto commit = analysis::TransactionCommitTimes(inputs, kDepths);
  const auto demand = analysis::AnalyzeDemand(
      inputs, exp.workload().submitted(), exp.workload().plan(), kDepths);
  const auto stages = analysis::DecomposeLatencyStages(
      inputs, exp.workload().submitted(), log, kDepths);

  // The headline reconciliation: all three committed counts are the same
  // rule over the same run, so they must agree exactly.
  ASSERT_GT(commit.committed_txs, 0u);
  EXPECT_EQ(stages.committed_total, commit.committed_txs);
  EXPECT_EQ(stages.committed_total, demand.committed_total);
  EXPECT_EQ(stages.depths, kDepths);

  // Coverage: every committed tx has all four stage anchors in the log
  // (submission funnel + frontend admit + anchor include + depth sweep).
  EXPECT_EQ(stages.missing_stage_records, 0u);
  EXPECT_EQ(stages.overall.committed, stages.committed_total);
  EXPECT_EQ(stages.overall.submit_to_admit_s.count(), stages.committed_total);
  EXPECT_EQ(stages.overall.admit_to_include_s.count(), stages.committed_total);
  EXPECT_EQ(stages.overall.include_to_commit_s.count(),
            stages.committed_total);

  // Attribution is total: every committed tx lands in exactly one region
  // bucket (the submitting frontend's) and one pool bucket (the including
  // block's coinbase; the roster covers every miner).
  std::uint64_t region_sum = 0;
  for (const auto& bucket : stages.per_region) region_sum += bucket.committed;
  EXPECT_EQ(region_sum, stages.committed_total);
  ASSERT_EQ(stages.per_pool.size(), exp.config().pools.size());
  std::uint64_t pool_sum = 0;
  for (const auto& bucket : stages.per_pool) pool_sum += bucket.committed;
  EXPECT_EQ(pool_sum, stages.committed_total);

  // Stage splits are sane: nonnegative medians, and the confirmation leg
  // (36 blocks deep) dominates the admission leg.
  EXPECT_GE(stages.overall.submit_to_admit_s.Quantile(0.5), 0.0);
  EXPECT_GE(stages.overall.admit_to_include_s.Quantile(0.5), 0.0);
  EXPECT_GT(stages.overall.include_to_commit_s.Quantile(0.5),
            stages.overall.submit_to_admit_s.Quantile(0.5));

  // Renderers: overall row always present; CSV carries the header.
  const std::string table = analysis::RenderLatencyStages(stages);
  EXPECT_NE(table.find("overall"), std::string::npos);
  EXPECT_NE(table.find("committed: "), std::string::npos);
  const std::string csv = analysis::RenderLatencyStagesCsv(stages);
  EXPECT_NE(csv.find("kind,bucket,committed,n,submit_admit_p50_s"),
            std::string::npos);
  EXPECT_NE(csv.find("overall,overall,"), std::string::npos);
}

TEST(LatencyStages, LogOnlyFormIsDeterministicAndConsistent) {
  core::Experiment exp{SmokeConfig()};
  exp.Run();
  const obs::TxProvLog& log = exp.telemetry()->txprov()->Finish();

  const auto a = analysis::DecomposeLatencyStages(log);
  const auto b = analysis::DecomposeLatencyStages(log);
  EXPECT_EQ(a.committed_total, b.committed_total);
  EXPECT_EQ(a.depths, kDepths);
  EXPECT_GT(a.committed_total, 0u);
  EXPECT_EQ(analysis::RenderLatencyStages(a), analysis::RenderLatencyStages(b));
  EXPECT_EQ(analysis::RenderLatencyStagesCsv(a),
            analysis::RenderLatencyStagesCsv(b));

  // Log-only committed set: exactly the txs with a max-depth commit record.
  std::uint64_t max_depth_commits = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log.stage[i] == static_cast<std::uint8_t>(obs::TxStage::kCommitted) &&
        log.info[i] == kDepths.back())
      ++max_depth_commits;
  }
  EXPECT_EQ(a.committed_total, max_depth_commits);

  // The offline pool attribution synthesizes names from the selection
  // records; with every block minted by a rostered pool the bucket count
  // can't exceed the roster.
  EXPECT_LE(a.per_pool.size(), exp.config().pools.size());
}

}  // namespace
}  // namespace ethsim
