#include "common/time.hpp"

#include <gtest/gtest.h>

namespace ethsim {
namespace {

using namespace ethsim::literals;

TEST(Duration, Conversions) {
  EXPECT_EQ(Duration::Millis(74).micros(), 74'000);
  EXPECT_DOUBLE_EQ(Duration::Seconds(13.3).seconds(), 13.3);
  EXPECT_DOUBLE_EQ(Duration::Minutes(2).seconds(), 120.0);
  EXPECT_DOUBLE_EQ(Duration::Hours(1).seconds(), 3600.0);
  EXPECT_DOUBLE_EQ((189_s).millis(), 189'000.0);
}

TEST(Duration, Arithmetic) {
  const Duration d = 100_ms + 50_ms;
  EXPECT_EQ(d.micros(), 150'000);
  EXPECT_EQ((d - 25_ms).micros(), 125'000);
  EXPECT_EQ((d * 2.0).micros(), 300'000);
  Duration e = 1_s;
  e += 500_ms;
  EXPECT_DOUBLE_EQ(e.seconds(), 1.5);
}

TEST(Duration, Ordering) {
  EXPECT_LT(74_ms, 109_ms);
  EXPECT_EQ(1_s, 1000_ms);
  EXPECT_GT(1_min, 59_s);
}

TEST(TimePoint, ArithmeticWithDuration) {
  const TimePoint t0 = TimePoint::FromMicros(1'000'000);
  const TimePoint t1 = t0 + 500_ms;
  EXPECT_EQ(t1.micros(), 1'500'000);
  EXPECT_EQ((t1 - t0).millis(), 500.0);
  EXPECT_EQ((t1 - 250_ms).micros(), 1'250'000);
}

TEST(FormatDuration, PicksSensibleUnits) {
  EXPECT_EQ(FormatDuration(500_us), "500us");
  EXPECT_EQ(FormatDuration(Duration::Millis(74)), "74.0ms");
  EXPECT_EQ(FormatDuration(Duration::Seconds(13.3)), "13.3s");
  EXPECT_EQ(FormatDuration(Duration::Hours(2) + 3_min + 4_s), "2h03m04s");
  EXPECT_EQ(FormatDuration(Duration::Millis(-74)), "-74.0ms");
}

}  // namespace
}  // namespace ethsim
