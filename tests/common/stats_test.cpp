#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ethsim {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10 + i;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSet, QuantilesExactOnSmallSet) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.125), 15.0);  // interpolated
}

TEST(SampleSet, MedianOfTwo) {
  SampleSet s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Median(), 2.0);
}

TEST(SampleSet, CdfAt) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(50.0), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(100.0), 1.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(1000.0), 1.0);
}

TEST(SampleSet, AddAfterQuantileInvalidatesCache) {
  SampleSet s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 2.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 10.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 100.0, 10};
  h.Add(5.0);    // bin 0
  h.Add(15.0);   // bin 1
  h.Add(99.9);   // bin 9
  h.Add(-3.0);   // clamps to bin 0
  h.Add(250.0);  // clamps to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.BinLow(1), 10.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(1), 20.0);
}

TEST(MakeCdf, MonotonicAndSpansRange) {
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.Add(static_cast<double>(i % 37));
  const auto cdf = MakeCdf(s, 50);
  ASSERT_EQ(cdf.size(), 50u);
  EXPECT_DOUBLE_EQ(cdf.front().x, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().x, 36.0);
  EXPECT_DOUBLE_EQ(cdf.back().p, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].p, cdf[i - 1].p);
    EXPECT_GT(cdf[i].x, cdf[i - 1].x);
  }
}

TEST(MakeCdf, EmptyInputEmptyOutput) {
  SampleSet s;
  EXPECT_TRUE(MakeCdf(s, 10).empty());
}

}  // namespace
}  // namespace ethsim
