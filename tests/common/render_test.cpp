#include "common/render.hpp"

#include <gtest/gtest.h>

namespace ethsim::render {
namespace {

TEST(Table, AlignsColumns) {
  Table t{{"Pool", "Share"}};
  t.AddRow({"Ethermine", "25.32%"});
  t.AddRow({"Zhizhu", "0.85%"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| Pool      | Share  |"), std::string::npos);
  EXPECT_NE(s.find("| Ethermine | 25.32% |"), std::string::npos);
  EXPECT_NE(s.find("| Zhizhu    | 0.85%  |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t{{"A", "B", "C"}};
  t.AddRow({"x"});
  const std::string s = t.ToString();
  // Row renders with empty cells rather than crashing.
  EXPECT_NE(s.find("| x |"), std::string::npos);
}

TEST(BarChart, ScalesToMax) {
  std::vector<Bar> bars{{"EA", 40.0, "40%"}, {"NA", 10.0, "10%"}};
  const std::string s = BarChart(bars, 40);
  // EA bar should be 40 chars, NA 10 chars.
  EXPECT_NE(s.find(std::string(40, '#')), std::string::npos);
  const auto na_line_start = s.find("NA");
  ASSERT_NE(na_line_start, std::string::npos);
  const std::string na_line = s.substr(na_line_start, s.find('\n', na_line_start) -
                                                          na_line_start);
  EXPECT_NE(na_line.find(std::string(10, '#')), std::string::npos);
  EXPECT_EQ(na_line.find(std::string(11, '#')), std::string::npos);
}

TEST(BarChart, AllZeroDoesNotDivideByZero) {
  std::vector<Bar> bars{{"a", 0.0, ""}, {"b", 0.0, ""}};
  EXPECT_NO_THROW({ BarChart(bars); });
}

TEST(StackedBarChart, RowsFillFullWidth) {
  std::vector<StackedBar> bars{{"Ethermine", {0.25, 0.25, 0.25, 0.25}},
                               {"Sparkpool", {0.05, 0.05, 0.05, 0.85}}};
  const std::string s = StackedBarChart(bars, {"WE", "CE", "NA", "EA"}, 40);
  EXPECT_NE(s.find("legend: 1=WE 2=CE 3=NA 4=EA"), std::string::npos);
  // Each row's bar is exactly 40 glyphs between the pipes.
  std::size_t pos = s.find("Ethermine");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t open = s.find('|', pos);
  const std::size_t close = s.find('|', open + 1);
  EXPECT_EQ(close - open - 1, 40u);
}

TEST(HistogramChart, RendersAxisAndBars) {
  Histogram h{0, 500, 50};
  for (int i = 0; i < 100; ++i) h.Add(74.0);
  for (int i = 0; i < 30; ++i) h.Add(200.0);
  const std::string s = HistogramChart(h, "ms");
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("(ms)"), std::string::npos);
}

TEST(CdfChart, RendersSeriesGlyphsAndLegend) {
  std::vector<Series> series(2);
  series[0].name = "in-order";
  series[1].name = "out-of-order";
  for (int i = 0; i <= 10; ++i) {
    series[0].points.push_back({i * 100.0, i / 10.0});
    series[1].points.push_back({i * 120.0, i / 10.0});
  }
  const std::string s = CdfChart(series, "seconds");
  EXPECT_NE(s.find("legend: 1=in-order 2=out-of-order"), std::string::npos);
  EXPECT_NE(s.find('1'), std::string::npos);
  EXPECT_NE(s.find('2'), std::string::npos);
}

TEST(CdfChart, EmptyInputHandled) {
  EXPECT_EQ(CdfChart({}, "x"), "(empty cdf)\n");
}

TEST(Formatting, FmtAndPercent) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(10.0, 0), "10");
  EXPECT_EQ(Percent(0.2532, 2), "25.32%");
  EXPECT_EQ(Percent(0.4, 0), "40%");
}

}  // namespace
}  // namespace ethsim::render
