#include "common/rlp.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/types.hpp"

namespace ethsim::rlp {
namespace {

std::string Hex(const Bytes& b) {
  return ToHex(std::span<const std::uint8_t>(b.data(), b.size()));
}

// Canonical vectors from the Ethereum wiki RLP page.
TEST(RlpEncode, Dog) { EXPECT_EQ(Hex(EncodeString("dog")), "83646f67"); }

TEST(RlpEncode, CatDogList) {
  Encoder e;
  e.BeginList();
  e.WriteString("cat");
  e.WriteString("dog");
  e.EndList();
  EXPECT_EQ(Hex(e.Take()), "c88363617483646f67");
}

TEST(RlpEncode, EmptyString) { EXPECT_EQ(Hex(EncodeString("")), "80"); }

TEST(RlpEncode, EmptyList) {
  Encoder e;
  e.BeginList();
  e.EndList();
  EXPECT_EQ(Hex(e.Take()), "c0");
}

TEST(RlpEncode, IntegerZeroIsEmptyString) {
  EXPECT_EQ(Hex(EncodeUint(0)), "80");
}

TEST(RlpEncode, SmallIntegerIsItself) {
  EXPECT_EQ(Hex(EncodeUint(15)), "0f");
  EXPECT_EQ(Hex(EncodeUint(0x7f)), "7f");
}

TEST(RlpEncode, TwoByteInteger) { EXPECT_EQ(Hex(EncodeUint(1024)), "820400"); }

TEST(RlpEncode, SetTheoreticalRepresentationOfThree) {
  // [ [], [[]], [ [], [[]] ] ] -> c7c0c1c0c3c0c1c0
  Encoder e;
  e.BeginList();
  e.BeginList();
  e.EndList();
  e.BeginList();
  e.BeginList();
  e.EndList();
  e.EndList();
  e.BeginList();
  e.BeginList();
  e.EndList();
  e.BeginList();
  e.BeginList();
  e.EndList();
  e.EndList();
  e.EndList();
  e.EndList();
  EXPECT_EQ(Hex(e.Take()), "c7c0c1c0c3c0c1c0");
}

TEST(RlpEncode, LoremIpsumLongString) {
  const std::string s = "Lorem ipsum dolor sit amet, consectetur adipisicing elit";
  const Bytes out = EncodeString(s);
  EXPECT_EQ(out[0], 0xb8);
  EXPECT_EQ(out[1], 0x38);
  EXPECT_EQ(out.size(), s.size() + 2);
}

TEST(RlpEncode, LongListGetsLongHeader) {
  Encoder e;
  e.BeginList();
  for (int i = 0; i < 20; ++i) e.WriteString("abcd");  // payload 100 bytes
  e.EndList();
  const Bytes out = e.Take();
  EXPECT_EQ(out[0], 0xf8);
  EXPECT_EQ(out[1], 100);
}

TEST(RlpDecode, RoundTripScalars) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 255ULL, 256ULL, 1024ULL,
                          0xffffffffULL, 0xdeadbeefcafeULL}) {
    Item item;
    ASSERT_TRUE(Decode(EncodeUint(v), item)) << v;
    EXPECT_FALSE(item.is_list);
    EXPECT_EQ(item.AsUint(), v);
  }
}

TEST(RlpDecode, RoundTripNestedList) {
  Encoder e;
  e.BeginList();
  e.WriteUint(42);
  e.BeginList();
  e.WriteString("inner");
  e.EndList();
  e.WriteString("tail");
  e.EndList();

  Item item;
  ASSERT_TRUE(Decode(e.Take(), item));
  ASSERT_TRUE(item.is_list);
  ASSERT_EQ(item.items.size(), 3u);
  EXPECT_EQ(item.items[0].AsUint(), 42u);
  ASSERT_TRUE(item.items[1].is_list);
  ASSERT_EQ(item.items[1].items.size(), 1u);
  EXPECT_EQ(std::string(item.items[1].items[0].data.begin(),
                        item.items[1].items[0].data.end()),
            "inner");
  EXPECT_EQ(std::string(item.items[2].data.begin(), item.items[2].data.end()),
            "tail");
}

TEST(RlpDecode, RejectsTruncatedInput) {
  Bytes good = EncodeString("dog");
  good.pop_back();
  Item item;
  EXPECT_FALSE(Decode(good, item));
}

TEST(RlpDecode, RejectsTrailingGarbage) {
  Bytes b = EncodeString("dog");
  b.push_back(0x00);
  Item item;
  EXPECT_FALSE(Decode(b, item));
}

TEST(RlpDecode, RejectsListLengthOverrun) {
  // Claims list payload of 5 bytes but only 1 follows.
  Bytes b{0xc5, 0x01};
  Item item;
  EXPECT_FALSE(Decode(b, item));
}

TEST(RlpDecode, FixedBytesRoundTrip) {
  Hash32 h;
  for (std::size_t i = 0; i < 32; ++i) h.bytes[i] = static_cast<std::uint8_t>(i);
  Encoder e;
  e.WriteFixed(h);
  Item item;
  ASSERT_TRUE(Decode(e.Take(), item));
  EXPECT_EQ(item.AsFixed<32>(), h);
}

}  // namespace
}  // namespace ethsim::rlp
