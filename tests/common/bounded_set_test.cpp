#include "common/bounded_set.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ethsim {
namespace {

TEST(BoundedSet, InsertAndContains) {
  BoundedSet<int> set{4};
  EXPECT_TRUE(set.Insert(1));
  EXPECT_FALSE(set.Insert(1));
  EXPECT_TRUE(set.Contains(1));
  EXPECT_FALSE(set.Contains(2));
  EXPECT_EQ(set.size(), 1u);
}

TEST(BoundedSet, EvictsOldestBeyondCapacity) {
  BoundedSet<int> set{3};
  set.Insert(1);
  set.Insert(2);
  set.Insert(3);
  set.Insert(4);  // evicts 1
  EXPECT_FALSE(set.Contains(1));
  EXPECT_TRUE(set.Contains(2));
  EXPECT_TRUE(set.Contains(4));
  EXPECT_EQ(set.size(), 3u);
}

TEST(BoundedSet, ReinsertAfterEvictionSucceeds) {
  BoundedSet<int> set{2};
  set.Insert(1);
  set.Insert(2);
  set.Insert(3);  // evicts 1
  EXPECT_TRUE(set.Insert(1));
  EXPECT_FALSE(set.Contains(2));  // 2 evicted by the reinsertion
}

TEST(BoundedSet, WorksWithStrings) {
  BoundedSet<std::string> set{2};
  EXPECT_TRUE(set.Insert("block-a"));
  EXPECT_TRUE(set.Insert("block-b"));
  EXPECT_FALSE(set.Insert("block-a"));
  EXPECT_EQ(set.capacity(), 2u);
}

TEST(BoundedSet, CapacityOneDegeneratesGracefully) {
  BoundedSet<int> set{1};
  set.Insert(1);
  set.Insert(2);
  EXPECT_FALSE(set.Contains(1));
  EXPECT_TRUE(set.Contains(2));
  EXPECT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace ethsim
