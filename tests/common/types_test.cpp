#include "common/types.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ethsim {
namespace {

TEST(FixedBytes, DefaultIsZero) {
  Hash32 h;
  EXPECT_TRUE(h.is_zero());
  EXPECT_EQ(h.prefix_u64(), 0u);
}

TEST(FixedBytes, ComparisonIsLexicographic) {
  Hash32 a, b;
  a.bytes[0] = 1;
  b.bytes[0] = 2;
  EXPECT_LT(a, b);
  b.bytes[0] = 1;
  EXPECT_EQ(a, b);
  b.bytes[31] = 1;
  EXPECT_LT(a, b);
}

TEST(FixedBytes, PrefixU64BigEndian) {
  Hash32 h;
  h.bytes[0] = 0x12;
  h.bytes[7] = 0x34;
  EXPECT_EQ(h.prefix_u64(), 0x1200000000000034ULL);
}

TEST(Hex, RoundTrip) {
  Hash32 h;
  for (std::size_t i = 0; i < 32; ++i) h.bytes[i] = static_cast<std::uint8_t>(i * 7);
  const std::string hex = ToHex(h);
  EXPECT_EQ(hex.size(), 64u);
  const Hash32 back = FixedBytesFromHex<32>(hex);
  EXPECT_EQ(h, back);
}

TEST(Hex, ParsesWith0xPrefix) {
  Address a = FixedBytesFromHex<20>("0x00000000000000000000000000000000000000ff");
  EXPECT_EQ(a.bytes[19], 0xff);
  EXPECT_EQ(a.bytes[18], 0x00);
}

TEST(Hex, RejectsBadInput) {
  std::array<std::uint8_t, 2> buf{};
  EXPECT_FALSE(FromHex("zzzz", buf));
  EXPECT_FALSE(FromHex("abc", buf));    // wrong length
  EXPECT_FALSE(FromHex("abcdef", buf)); // wrong length
  EXPECT_TRUE(FromHex("a1B2", buf));    // mixed case ok
  EXPECT_EQ(buf[0], 0xa1);
  EXPECT_EQ(buf[1], 0xb2);
}

TEST(Hex, ShortHexUsesFourBytes) {
  Hash32 h = FixedBytesFromHex<32>(
      "a1b2c3d4000000000000000000000000000000000000000000000000000000ee");
  EXPECT_EQ(ShortHex(h), "a1b2c3d4");
}

TEST(FixedBytes, StdHashUsableInUnorderedSet) {
  std::unordered_set<Hash32> set;
  Hash32 a, b;
  a.bytes[5] = 1;
  b.bytes[5] = 2;
  set.insert(a);
  set.insert(b);
  set.insert(a);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(a));
}

}  // namespace
}  // namespace ethsim
