#include "common/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ethsim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  Rng parent1{7};
  Rng parent2{7};
  (void)parent2.Next();  // advance one parent
  Rng f1 = parent1.Fork("stream");
  Rng f2 = parent2.Fork("stream");
  for (int i = 0; i < 16; ++i) EXPECT_EQ(f1.Next(), f2.Next());
}

TEST(Rng, NamedForksDiffer) {
  Rng parent{7};
  Rng a = parent.Fork("alpha");
  Rng b = parent.Fork("beta");
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoundedInRangeAndRoughlyUniform) {
  Rng rng{11};
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng.NextBounded(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{5};
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(13.3);
  EXPECT_NEAR(sum / n, 13.3, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng{5};
  double sum = 0, sq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextNormal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{9};
  int heads = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.25);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.01);
}

TEST(AliasSampler, MatchesWeights) {
  // Shares shaped like the paper's top pools.
  const std::vector<double> w{25.32, 22.88, 12.75, 12.10, 5.61, 21.34};
  AliasSampler sampler{w};
  Rng rng{123};
  std::vector<int> counts(w.size(), 0);
  const int n = 500'000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  double total = 0;
  for (double x : w) total += x;
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, w[i] / total, 0.005) << i;
  }
}

TEST(AliasSampler, SingleBucketAlwaysZero) {
  AliasSampler sampler{{3.0}};
  Rng rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(AliasSampler, ZeroWeightNeverSampled) {
  AliasSampler sampler{{1.0, 0.0, 1.0}};
  Rng rng{17};
  for (int i = 0; i < 10'000; ++i) EXPECT_NE(sampler.Sample(rng), 1u);
}

}  // namespace
}  // namespace ethsim
