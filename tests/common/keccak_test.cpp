#include "common/keccak.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ethsim {
namespace {

// Known-answer vectors for the *legacy* Keccak-256 (Ethereum flavor, 0x01
// padding), not NIST SHA3-256.
TEST(Keccak256, EmptyString) {
  EXPECT_EQ(ToHex(Keccak256Of("")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak256, Abc) {
  EXPECT_EQ(ToHex(Keccak256Of("abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak256, HelloWorld) {
  // Canonical Ethereum example (solidity docs).
  EXPECT_EQ(ToHex(Keccak256Of("hello world")),
            "47173285a8d7341e5e972fc677286384f802f8ef42a5ec5f03bbfa254cb01fad");
}

TEST(Keccak256, TestVectorLongerThanRate) {
  // 200 'a' bytes spans more than one 136-byte rate block.
  const std::string input(200, 'a');
  const Hash32 digest = Keccak256Of(input);
  // Self-consistency: one-shot equals chunked incremental updates.
  Keccak256 h;
  h.Update(std::string_view(input).substr(0, 7));
  h.Update(std::string_view(input).substr(7, 129));
  h.Update(std::string_view(input).substr(136));
  EXPECT_EQ(digest, h.Final());
}

TEST(Keccak256, IncrementalMatchesOneShotAtAllSplitPoints) {
  const std::string input =
      "The quick brown fox jumps over the lazy dog. The quick brown fox "
      "jumps over the lazy dog. The quick brown fox jumps over the lazy "
      "dog. The quick brown fox jumps over the lazy dog.";
  const Hash32 expected = Keccak256Of(input);
  for (std::size_t split = 0; split <= input.size(); ++split) {
    Keccak256 h;
    h.Update(std::string_view(input).substr(0, split));
    h.Update(std::string_view(input).substr(split));
    EXPECT_EQ(h.Final(), expected) << "split=" << split;
  }
}

TEST(Keccak256, ResetAllowsReuse) {
  Keccak256 h;
  h.Update("first");
  (void)h.Final();
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(ToHex(h.Final()),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Keccak256Of("block-1"), Keccak256Of("block-2"));
  EXPECT_NE(Keccak256Of(""), Keccak256Of(std::string(1, '\0')));
}

TEST(Keccak256, ExactlyOneRateBlock) {
  // 136 bytes: padding must add a whole extra block.
  const std::string input(136, 'x');
  Keccak256 h;
  h.Update(input);
  const Hash32 a = h.Final();
  EXPECT_EQ(a, Keccak256Of(input));
  EXPECT_NE(a, Keccak256Of(std::string(135, 'x')));
}

}  // namespace
}  // namespace ethsim
