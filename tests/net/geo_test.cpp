#include "net/geo.hpp"

#include <gtest/gtest.h>

namespace ethsim::net {
namespace {

TEST(Geo, RegionNames) {
  EXPECT_EQ(RegionName(Region::NorthAmerica), "North America");
  EXPECT_EQ(RegionShortName(Region::NorthAmerica), "NA");
  EXPECT_EQ(RegionShortName(Region::EasternAsia), "EA");
  EXPECT_EQ(RegionShortName(Region::WesternEurope), "WE");
  EXPECT_EQ(RegionShortName(Region::CentralEurope), "CE");
}

TEST(Geo, LatencyMatrixIsSymmetric) {
  for (Region a : AllRegions())
    for (Region b : AllRegions())
      EXPECT_EQ(BaseOneWayLatency(a, b).micros(), BaseOneWayLatency(b, a).micros())
          << RegionShortName(a) << "<->" << RegionShortName(b);
}

TEST(Geo, IntraRegionFasterThanInterRegion) {
  for (Region a : AllRegions())
    for (Region b : AllRegions()) {
      if (a == b) continue;
      EXPECT_LT(BaseOneWayLatency(a, a), BaseOneWayLatency(a, b))
          << RegionShortName(a) << " vs " << RegionShortName(b);
    }
}

TEST(Geo, EuropeCloserToEuropeThanToAsia) {
  EXPECT_LT(BaseOneWayLatency(Region::WesternEurope, Region::CentralEurope),
            BaseOneWayLatency(Region::WesternEurope, Region::EasternAsia));
}

TEST(Geo, TriangleSanityTransatlanticVsTranspacific) {
  // NA is closer to WE than to EA (reflects real backbone distances and the
  // paper's observation that NA trails EA in block observation).
  EXPECT_LT(BaseOneWayLatency(Region::NorthAmerica, Region::WesternEurope),
            BaseOneWayLatency(Region::NorthAmerica, Region::EasternAsia));
}

TEST(Geo, AllRegionsAreDistinct) {
  const auto regions = AllRegions();
  for (std::size_t i = 0; i < regions.size(); ++i)
    for (std::size_t j = i + 1; j < regions.size(); ++j)
      EXPECT_NE(regions[i], regions[j]);
}

TEST(Geo, LatenciesArePositiveAndBounded) {
  for (Region a : AllRegions())
    for (Region b : AllRegions()) {
      const Duration d = BaseOneWayLatency(a, b);
      EXPECT_GT(d.micros(), 0);
      EXPECT_LT(d.millis(), 300.0);
    }
}

}  // namespace
}  // namespace ethsim::net
