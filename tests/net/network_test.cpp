#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"

namespace ethsim::net {
namespace {

using namespace ethsim::literals;

// Pin neutral parameters: these tests check the delay mechanics, not the
// Fig 1-calibrated defaults.
inline NetworkParams NeutralParams() {
  NetworkParams params;
  params.latency_scale = 1.0;
  params.jitter_sigma = 0.25;
  params.slow_path_prob = 0.0;
  return params;
}

struct NetworkFixture : ::testing::Test {
  sim::Simulator simulator;
  Network net{simulator, Rng{42}, NeutralParams()};
};

TEST_F(NetworkFixture, AddHostAssignsSequentialIds) {
  const HostId a = net.AddHost({Region::NorthAmerica, 1e9});
  const HostId b = net.AddHost({Region::EasternAsia, 1e9});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(net.host_count(), 2u);
  EXPECT_EQ(net.host(a).region, Region::NorthAmerica);
}

TEST_F(NetworkFixture, DelayAtLeastBaseLatency) {
  const HostId a = net.AddHost({Region::NorthAmerica, 1e9});
  const HostId b = net.AddHost({Region::EasternAsia, 1e9});
  // Lognormal jitter median is 1.0; over many samples the minimum should not
  // fall far below ~60% of base, and mean should be near base.
  RunningStats stats;
  for (int i = 0; i < 2000; ++i)
    stats.Add(net.SampleDelay(a, b, 0).millis());
  const double base_ms = BaseOneWayLatency(Region::NorthAmerica,
                                           Region::EasternAsia).millis();
  EXPECT_GT(stats.min(), base_ms * 0.3);
  EXPECT_NEAR(stats.mean(), base_ms * 1.03, base_ms * 0.12);  // E[lognormal]≈1.03
}

TEST_F(NetworkFixture, LargerMessagesTakeLonger) {
  const HostId a = net.AddHost({Region::WesternEurope, 8e6});  // 1 MB/s
  const HostId b = net.AddHost({Region::WesternEurope, 8e6});
  RunningStats small, large;
  for (int i = 0; i < 500; ++i) {
    small.Add(net.SampleDelay(a, b, 100).millis());
    large.Add(net.SampleDelay(a, b, 100'000).millis());
  }
  // 100 KB at 1 MB/s adds 100 ms of transfer time.
  EXPECT_GT(large.mean() - small.mean(), 80.0);
}

TEST_F(NetworkFixture, BottleneckIsMinBandwidth) {
  const HostId fast = net.AddHost({Region::WesternEurope, 1e12});
  const HostId slow = net.AddHost({Region::WesternEurope, 8e6});
  RunningStats up;
  for (int i = 0; i < 200; ++i) up.Add(net.SampleDelay(fast, slow, 100'000).millis());
  EXPECT_GT(up.mean(), 80.0);  // limited by the 1 MB/s receiver
}

TEST_F(NetworkFixture, SendDeliversAfterDelay) {
  const HostId a = net.AddHost({Region::WesternEurope, 1e9});
  const HostId b = net.AddHost({Region::EasternAsia, 1e9});
  bool delivered = false;
  TimePoint at;
  net.Send(a, b, 1000, [&] {
    delivered = true;
    at = simulator.Now();
  });
  simulator.RunAll();
  EXPECT_TRUE(delivered);
  EXPECT_GT(at.millis(), 30.0);  // at least some fraction of base latency
}

TEST_F(NetworkFixture, FifoOrderPerDirectedPair) {
  const HostId a = net.AddHost({Region::WesternEurope, 1e9});
  const HostId b = net.AddHost({Region::EasternAsia, 1e9});
  std::vector<int> order;
  // Even if jitter would reorder, the TCP model must deliver in send order.
  for (int i = 0; i < 50; ++i) net.Send(a, b, 100, [&, i] { order.push_back(i); });
  simulator.RunAll();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_F(NetworkFixture, IndependentPairsMayInterleave) {
  // FIFO applies per-pair only; a message on a fast pair sent after a slow
  // pair's message can still arrive first.
  const HostId we1 = net.AddHost({Region::WesternEurope, 1e9});
  const HostId we2 = net.AddHost({Region::WesternEurope, 1e9});
  const HostId oc = net.AddHost({Region::Oceania, 1e9});
  std::vector<char> order;
  net.Send(we1, oc, 100, [&] { order.push_back('s'); });   // slow pair first
  net.Send(we1, we2, 100, [&] { order.push_back('f'); });  // fast pair second
  simulator.RunAll();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'f');
  EXPECT_EQ(order[1], 's');
}

TEST_F(NetworkFixture, LatencyScaleStretchesDelays) {
  NetworkParams scaled = NeutralParams();
  scaled.latency_scale = 3.0;
  Network slow_net{simulator, Rng{42}, scaled};
  const HostId a = slow_net.AddHost({Region::NorthAmerica, 1e9});
  const HostId b = slow_net.AddHost({Region::EasternAsia, 1e9});
  const HostId a2 = net.AddHost({Region::NorthAmerica, 1e9});
  const HostId b2 = net.AddHost({Region::EasternAsia, 1e9});
  RunningStats s1, s3;
  for (int i = 0; i < 1000; ++i) {
    s1.Add(net.SampleDelay(a2, b2, 0).millis());
    s3.Add(slow_net.SampleDelay(a, b, 0).millis());
  }
  EXPECT_NEAR(s3.mean() / s1.mean(), 3.0, 0.35);
}

TEST(NetworkSlowPath, FattensTheTail) {
  sim::Simulator simulator;
  NetworkParams plain = NeutralParams();
  NetworkParams spiky = NeutralParams();
  spiky.slow_path_prob = 0.05;
  spiky.slow_path_factor_max = 6.0;
  Network a{simulator, Rng{42}, plain};
  Network b{simulator, Rng{42}, spiky};
  const HostId a1 = a.AddHost({Region::WesternEurope, 1e9});
  const HostId a2 = a.AddHost({Region::EasternAsia, 1e9});
  const HostId b1 = b.AddHost({Region::WesternEurope, 1e9});
  const HostId b2 = b.AddHost({Region::EasternAsia, 1e9});

  SampleSet sp, ss;
  for (int i = 0; i < 20'000; ++i) {
    sp.Add(a.SampleDelay(a1, a2, 0).millis());
    ss.Add(b.SampleDelay(b1, b2, 0).millis());
  }
  // Medians barely move; the p99 tail stretches noticeably.
  EXPECT_NEAR(ss.Median(), sp.Median(), sp.Median() * 0.1);
  EXPECT_GT(ss.Quantile(0.99), sp.Quantile(0.99) * 1.5);
}


TEST(NetworkDrops, DropProbabilityLosesMessages) {
  sim::Simulator simulator;
  NetworkParams lossy = NeutralParams();
  lossy.drop_prob = 0.5;
  Network net{simulator, Rng{21}, lossy};
  const HostId a = net.AddHost({Region::WesternEurope, 1e9});
  const HostId b = net.AddHost({Region::WesternEurope, 1e9});
  int delivered = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) net.Send(a, b, 100, [&] { ++delivered; });
  simulator.RunAll();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.5, 0.02);
  EXPECT_EQ(net.messages_dropped() + static_cast<std::uint64_t>(delivered),
            static_cast<std::uint64_t>(n));
}

TEST(NetworkDrops, ZeroDropDeliversEverything) {
  sim::Simulator simulator;
  Network net{simulator, Rng{22}, NeutralParams()};
  const HostId a = net.AddHost({Region::WesternEurope, 1e9});
  const HostId b = net.AddHost({Region::WesternEurope, 1e9});
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) net.Send(a, b, 100, [&] { ++delivered; });
  simulator.RunAll();
  EXPECT_EQ(delivered, 1000);
  EXPECT_EQ(net.messages_dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Fault substrate: partitions, degradation windows, reasoned drop census.

TEST_F(NetworkFixture, PartitionDropsCrossSideTrafficOnly) {
  const HostId we = net.AddHost({Region::WesternEurope, 1e9});
  const HostId ea = net.AddHost({Region::EasternAsia, 1e9});
  const HostId we2 = net.AddHost({Region::WesternEurope, 1e9});
  net.SetPartition(1u << static_cast<unsigned>(Region::EasternAsia));
  ASSERT_TRUE(net.partition_active());

  int delivered = 0;
  net.Send(we, ea, 100, obs::MsgKind::kNewBlock, [&] { ++delivered; });
  net.Send(ea, we, 100, obs::MsgKind::kAnnouncement, [&] { ++delivered; });
  net.Send(we, we2, 100, obs::MsgKind::kNewBlock, [&] { ++delivered; });
  simulator.RunAll();
  EXPECT_EQ(delivered, 1);  // only the intra-side message survived
  EXPECT_EQ(net.messages_dropped(), 2u);
  EXPECT_EQ(net.dropped_by(DropReason::kPartitioned), 2u);
  // Source-region attribution: one WE-sourced, one EA-sourced.
  EXPECT_EQ(net.dropped_by(obs::MsgKind::kNewBlock, Region::WesternEurope), 1u);
  EXPECT_EQ(net.dropped_by(obs::MsgKind::kAnnouncement, Region::EasternAsia),
            1u);

  net.ClearPartition();
  EXPECT_FALSE(net.partition_active());
  net.Send(we, ea, 100, obs::MsgKind::kNewBlock, [&] { ++delivered; });
  simulator.RunAll();
  EXPECT_EQ(delivered, 2);  // healed
  EXPECT_EQ(net.messages_dropped(), 2u);
}

TEST(NetworkPartition, DropsConsumeNoRng) {
  // The partition gate fires before any RNG draw: a network that dropped a
  // thousand cross-side messages continues its jitter stream exactly where a
  // partition-free twin is.
  sim::Simulator simulator;
  Network with{simulator, Rng{42}, NeutralParams()};
  Network without{simulator, Rng{42}, NeutralParams()};
  for (Network* n : {&with, &without}) {
    n->AddHost({Region::WesternEurope, 1e9});
    n->AddHost({Region::EasternAsia, 1e9});
  }
  with.SetPartition(1u << static_cast<unsigned>(Region::EasternAsia));
  for (int i = 0; i < 1000; ++i)
    with.Send(0, 1, 100, obs::MsgKind::kNewBlock, [] {});
  EXPECT_EQ(with.dropped_by(DropReason::kPartitioned), 1000u);
  with.ClearPartition();

  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(with.SampleDelay(0, 1, 100).micros(),
              without.SampleDelay(0, 1, 100).micros())
        << "stream diverged at draw " << i;
}

TEST(NetworkDegradation, StretchesScopedLatencyExactly) {
  // Same seed, one degraded: every scoped sample scales by exactly the
  // latency factor (the factor applies after the jitter draw), and unscoped
  // links replay the plain network bit-for-bit.
  sim::Simulator simulator;
  NetworkParams params = NeutralParams();
  Network plain{simulator, Rng{42}, params};
  Network degraded{simulator, Rng{42}, params};
  for (Network* n : {&plain, &degraded}) {
    n->AddHost({Region::WesternEurope, 1e9});  // 0
    n->AddHost({Region::EasternAsia, 1e9});    // 1
    n->AddHost({Region::WesternEurope, 1e9});  // 2
  }
  LinkDegradation window;
  window.region_mask = 1u << static_cast<unsigned>(Region::EasternAsia);
  window.latency_factor = 3.0;
  degraded.SetDegradation(window);
  ASSERT_TRUE(degraded.degradation_active());

  const double overhead_us =
      static_cast<double>(params.per_message_overhead.micros());
  for (int i = 0; i < 200; ++i) {
    const double p =
        static_cast<double>(plain.SampleDelay(0, 1, 0).micros()) - overhead_us;
    const double d =
        static_cast<double>(degraded.SampleDelay(0, 1, 0).micros()) -
        overhead_us;
    EXPECT_NEAR(d, 3.0 * p, 4.0) << "sample " << i;  // int-us truncation
  }
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(plain.SampleDelay(0, 2, 0).micros(),
              degraded.SampleDelay(0, 2, 0).micros())
        << "unscoped link perturbed at draw " << i;

  degraded.ClearDegradation();
  EXPECT_FALSE(degraded.degradation_active());
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(plain.SampleDelay(0, 1, 0).micros(),
              degraded.SampleDelay(0, 1, 0).micros());
}

TEST(NetworkDegradation, ShrinksBandwidthOnScopedLinks) {
  sim::Simulator simulator;
  Network net{simulator, Rng{7}, NeutralParams()};
  const HostId a = net.AddHost({Region::WesternEurope, 8e6});  // 1 MB/s
  const HostId b = net.AddHost({Region::WesternEurope, 8e6});
  RunningStats before, after;
  for (int i = 0; i < 300; ++i)
    before.Add(net.SampleDelay(a, b, 100'000).millis());
  LinkDegradation window;
  window.region_mask = 1u << static_cast<unsigned>(Region::WesternEurope);
  window.bandwidth_factor = 4.0;
  net.SetDegradation(window);
  for (int i = 0; i < 300; ++i)
    after.Add(net.SampleDelay(a, b, 100'000).millis());
  // 100 KB at 1 MB/s is ~100 ms of transfer; at a quarter of the bandwidth
  // it is ~400 ms.
  EXPECT_GT(after.mean() - before.mean(), 250.0);
}

TEST(NetworkDegradation, ExtraLossIsCensusedAndScoped) {
  sim::Simulator simulator;
  Network net{simulator, Rng{5}, NeutralParams()};
  const HostId we = net.AddHost({Region::WesternEurope, 1e9});
  const HostId ea = net.AddHost({Region::EasternAsia, 1e9});
  const HostId we2 = net.AddHost({Region::WesternEurope, 1e9});
  LinkDegradation window;
  window.region_mask = 1u << static_cast<unsigned>(Region::EasternAsia);
  window.extra_drop_prob = 0.5;
  net.SetDegradation(window);

  int delivered = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i)
    net.Send(we, ea, 100, obs::MsgKind::kNewBlock, [&] { ++delivered; });
  for (int i = 0; i < 500; ++i)  // unscoped link: lossless
    net.Send(we, we2, 100, obs::MsgKind::kNewBlock, [&] { ++delivered; });
  simulator.RunAll();
  EXPECT_NEAR(static_cast<double>(net.dropped_by(DropReason::kDegraded)) / n,
              0.5, 0.04);
  EXPECT_EQ(net.messages_dropped(), net.dropped_by(DropReason::kDegraded));
  EXPECT_EQ(delivered + static_cast<int>(net.messages_dropped()), n + 500);

  net.ClearDegradation();
  const std::uint64_t frozen = net.messages_dropped();
  for (int i = 0; i < 500; ++i)
    net.Send(we, ea, 100, obs::MsgKind::kNewBlock, [&] { ++delivered; });
  simulator.RunAll();
  EXPECT_EQ(net.messages_dropped(), frozen);
}

TEST(NetworkDropCensus, ReportsEveryReasonDimension) {
  sim::Simulator simulator;
  NetworkParams lossy = NeutralParams();
  lossy.drop_prob = 1.0;  // every normal send is a random loss
  Network net{simulator, Rng{3}, lossy};
  const HostId we = net.AddHost({Region::WesternEurope, 1e9});
  const HostId ea = net.AddHost({Region::EasternAsia, 1e9});

  net.Send(we, ea, 100, obs::MsgKind::kTransactions, [] {});  // random loss
  net.SetPartition(1u << static_cast<unsigned>(Region::EasternAsia));
  net.Send(we, ea, 100, obs::MsgKind::kNewBlock, [] {});      // partitioned
  net.ClearPartition();
  net.NoteOfflineDrop(obs::MsgKind::kAnnouncement, Region::EasternAsia);

  EXPECT_EQ(net.messages_dropped(), 3u);
  EXPECT_EQ(net.dropped_by(DropReason::kRandomLoss), 1u);
  EXPECT_EQ(net.dropped_by(DropReason::kPartitioned), 1u);
  EXPECT_EQ(net.dropped_by(DropReason::kOffline), 1u);
  EXPECT_EQ(net.dropped_by(DropReason::kDegraded), 0u);

  const std::vector<DropRecord> report = net.DropReport();
  ASSERT_EQ(report.size(), 3u);
  // Ordered by (reason, kind, region).
  EXPECT_EQ(report[0].reason, DropReason::kRandomLoss);
  EXPECT_EQ(report[0].kind, obs::MsgKind::kTransactions);
  EXPECT_EQ(report[1].reason, DropReason::kPartitioned);
  EXPECT_EQ(report[1].kind, obs::MsgKind::kNewBlock);
  EXPECT_EQ(report[2].reason, DropReason::kOffline);
  EXPECT_EQ(report[2].source_region, Region::EasternAsia);

  const std::string text = net.RenderDropReport();
  for (const char* needle : {"random_loss", "partitioned", "offline"})
    EXPECT_NE(text.find(needle), std::string::npos) << text;
}

TEST(NetworkDropCensus, EmptyCensusRendersEmpty) {
  sim::Simulator simulator;
  Network net{simulator, Rng{4}, NeutralParams()};
  EXPECT_TRUE(net.DropReport().empty());
  EXPECT_TRUE(net.RenderDropReport().empty());
}

TEST(ClockModel, OffsetsMatchPaperEnvelope) {
  ClockModel clocks{Rng{7}};
  int under_10 = 0, under_100 = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double ms = std::abs(clocks.SampleOffset().millis());
    under_10 += ms < 10.0;
    under_100 += ms < 100.0;
    ASSERT_LE(ms, 250.0);
  }
  // §II: NTP offsets < 10 ms in 90% of cases, < 100 ms in 99%.
  EXPECT_NEAR(static_cast<double>(under_10) / n, 0.90, 0.01);
  EXPECT_NEAR(static_cast<double>(under_100) / n, 0.99, 0.005);
}

TEST(ClockModel, OffsetsAreSignSymmetric) {
  ClockModel clocks{Rng{9}};
  int positive = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) positive += clocks.SampleOffset().micros() > 0;
  EXPECT_NEAR(static_cast<double>(positive) / n, 0.5, 0.02);
}

}  // namespace
}  // namespace ethsim::net
