#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"

namespace ethsim::net {
namespace {

using namespace ethsim::literals;

// Pin neutral parameters: these tests check the delay mechanics, not the
// Fig 1-calibrated defaults.
inline NetworkParams NeutralParams() {
  NetworkParams params;
  params.latency_scale = 1.0;
  params.jitter_sigma = 0.25;
  params.slow_path_prob = 0.0;
  return params;
}

struct NetworkFixture : ::testing::Test {
  sim::Simulator simulator;
  Network net{simulator, Rng{42}, NeutralParams()};
};

TEST_F(NetworkFixture, AddHostAssignsSequentialIds) {
  const HostId a = net.AddHost({Region::NorthAmerica, 1e9});
  const HostId b = net.AddHost({Region::EasternAsia, 1e9});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(net.host_count(), 2u);
  EXPECT_EQ(net.host(a).region, Region::NorthAmerica);
}

TEST_F(NetworkFixture, DelayAtLeastBaseLatency) {
  const HostId a = net.AddHost({Region::NorthAmerica, 1e9});
  const HostId b = net.AddHost({Region::EasternAsia, 1e9});
  // Lognormal jitter median is 1.0; over many samples the minimum should not
  // fall far below ~60% of base, and mean should be near base.
  RunningStats stats;
  for (int i = 0; i < 2000; ++i)
    stats.Add(net.SampleDelay(a, b, 0).millis());
  const double base_ms = BaseOneWayLatency(Region::NorthAmerica,
                                           Region::EasternAsia).millis();
  EXPECT_GT(stats.min(), base_ms * 0.3);
  EXPECT_NEAR(stats.mean(), base_ms * 1.03, base_ms * 0.12);  // E[lognormal]≈1.03
}

TEST_F(NetworkFixture, LargerMessagesTakeLonger) {
  const HostId a = net.AddHost({Region::WesternEurope, 8e6});  // 1 MB/s
  const HostId b = net.AddHost({Region::WesternEurope, 8e6});
  RunningStats small, large;
  for (int i = 0; i < 500; ++i) {
    small.Add(net.SampleDelay(a, b, 100).millis());
    large.Add(net.SampleDelay(a, b, 100'000).millis());
  }
  // 100 KB at 1 MB/s adds 100 ms of transfer time.
  EXPECT_GT(large.mean() - small.mean(), 80.0);
}

TEST_F(NetworkFixture, BottleneckIsMinBandwidth) {
  const HostId fast = net.AddHost({Region::WesternEurope, 1e12});
  const HostId slow = net.AddHost({Region::WesternEurope, 8e6});
  RunningStats up;
  for (int i = 0; i < 200; ++i) up.Add(net.SampleDelay(fast, slow, 100'000).millis());
  EXPECT_GT(up.mean(), 80.0);  // limited by the 1 MB/s receiver
}

TEST_F(NetworkFixture, SendDeliversAfterDelay) {
  const HostId a = net.AddHost({Region::WesternEurope, 1e9});
  const HostId b = net.AddHost({Region::EasternAsia, 1e9});
  bool delivered = false;
  TimePoint at;
  net.Send(a, b, 1000, [&] {
    delivered = true;
    at = simulator.Now();
  });
  simulator.RunAll();
  EXPECT_TRUE(delivered);
  EXPECT_GT(at.millis(), 30.0);  // at least some fraction of base latency
}

TEST_F(NetworkFixture, FifoOrderPerDirectedPair) {
  const HostId a = net.AddHost({Region::WesternEurope, 1e9});
  const HostId b = net.AddHost({Region::EasternAsia, 1e9});
  std::vector<int> order;
  // Even if jitter would reorder, the TCP model must deliver in send order.
  for (int i = 0; i < 50; ++i) net.Send(a, b, 100, [&, i] { order.push_back(i); });
  simulator.RunAll();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_F(NetworkFixture, IndependentPairsMayInterleave) {
  // FIFO applies per-pair only; a message on a fast pair sent after a slow
  // pair's message can still arrive first.
  const HostId we1 = net.AddHost({Region::WesternEurope, 1e9});
  const HostId we2 = net.AddHost({Region::WesternEurope, 1e9});
  const HostId oc = net.AddHost({Region::Oceania, 1e9});
  std::vector<char> order;
  net.Send(we1, oc, 100, [&] { order.push_back('s'); });   // slow pair first
  net.Send(we1, we2, 100, [&] { order.push_back('f'); });  // fast pair second
  simulator.RunAll();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'f');
  EXPECT_EQ(order[1], 's');
}

TEST_F(NetworkFixture, LatencyScaleStretchesDelays) {
  NetworkParams scaled = NeutralParams();
  scaled.latency_scale = 3.0;
  Network slow_net{simulator, Rng{42}, scaled};
  const HostId a = slow_net.AddHost({Region::NorthAmerica, 1e9});
  const HostId b = slow_net.AddHost({Region::EasternAsia, 1e9});
  const HostId a2 = net.AddHost({Region::NorthAmerica, 1e9});
  const HostId b2 = net.AddHost({Region::EasternAsia, 1e9});
  RunningStats s1, s3;
  for (int i = 0; i < 1000; ++i) {
    s1.Add(net.SampleDelay(a2, b2, 0).millis());
    s3.Add(slow_net.SampleDelay(a, b, 0).millis());
  }
  EXPECT_NEAR(s3.mean() / s1.mean(), 3.0, 0.35);
}

TEST(NetworkSlowPath, FattensTheTail) {
  sim::Simulator simulator;
  NetworkParams plain = NeutralParams();
  NetworkParams spiky = NeutralParams();
  spiky.slow_path_prob = 0.05;
  spiky.slow_path_factor_max = 6.0;
  Network a{simulator, Rng{42}, plain};
  Network b{simulator, Rng{42}, spiky};
  const HostId a1 = a.AddHost({Region::WesternEurope, 1e9});
  const HostId a2 = a.AddHost({Region::EasternAsia, 1e9});
  const HostId b1 = b.AddHost({Region::WesternEurope, 1e9});
  const HostId b2 = b.AddHost({Region::EasternAsia, 1e9});

  SampleSet sp, ss;
  for (int i = 0; i < 20'000; ++i) {
    sp.Add(a.SampleDelay(a1, a2, 0).millis());
    ss.Add(b.SampleDelay(b1, b2, 0).millis());
  }
  // Medians barely move; the p99 tail stretches noticeably.
  EXPECT_NEAR(ss.Median(), sp.Median(), sp.Median() * 0.1);
  EXPECT_GT(ss.Quantile(0.99), sp.Quantile(0.99) * 1.5);
}


TEST(NetworkDrops, DropProbabilityLosesMessages) {
  sim::Simulator simulator;
  NetworkParams lossy = NeutralParams();
  lossy.drop_prob = 0.5;
  Network net{simulator, Rng{21}, lossy};
  const HostId a = net.AddHost({Region::WesternEurope, 1e9});
  const HostId b = net.AddHost({Region::WesternEurope, 1e9});
  int delivered = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) net.Send(a, b, 100, [&] { ++delivered; });
  simulator.RunAll();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.5, 0.02);
  EXPECT_EQ(net.messages_dropped() + static_cast<std::uint64_t>(delivered),
            static_cast<std::uint64_t>(n));
}

TEST(NetworkDrops, ZeroDropDeliversEverything) {
  sim::Simulator simulator;
  Network net{simulator, Rng{22}, NeutralParams()};
  const HostId a = net.AddHost({Region::WesternEurope, 1e9});
  const HostId b = net.AddHost({Region::WesternEurope, 1e9});
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) net.Send(a, b, 100, [&] { ++delivered; });
  simulator.RunAll();
  EXPECT_EQ(delivered, 1000);
  EXPECT_EQ(net.messages_dropped(), 0u);
}

TEST(ClockModel, OffsetsMatchPaperEnvelope) {
  ClockModel clocks{Rng{7}};
  int under_10 = 0, under_100 = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double ms = std::abs(clocks.SampleOffset().millis());
    under_10 += ms < 10.0;
    under_100 += ms < 100.0;
    ASSERT_LE(ms, 250.0);
  }
  // §II: NTP offsets < 10 ms in 90% of cases, < 100 ms in 99%.
  EXPECT_NEAR(static_cast<double>(under_10) / n, 0.90, 0.01);
  EXPECT_NEAR(static_cast<double>(under_100) / n, 0.99, 0.005);
}

TEST(ClockModel, OffsetsAreSignSymmetric) {
  ClockModel clocks{Rng{9}};
  int positive = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) positive += clocks.SampleOffset().micros() > 0;
  EXPECT_NEAR(static_cast<double>(positive) / n, 0.5, 0.02);
}

}  // namespace
}  // namespace ethsim::net
