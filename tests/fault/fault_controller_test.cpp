// FaultController scenarios against full (small) experiments: crash/restart
// with re-sync, partition drop attribution + heal, gateway outage stalls,
// clock jumps, and the empty-plan fast path.
#include "fault/controller.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "core/experiment.hpp"
#include "core/provenance.hpp"

namespace ethsim::fault {
namespace {

using core::Experiment;
using core::ExperimentConfig;

constexpr std::uint32_t Mask(net::Region r) {
  return 1u << static_cast<unsigned>(r);
}

ExperimentConfig TinyConfig() {
  ExperimentConfig cfg = core::presets::SmallStudy(30);
  cfg.duration = Duration::Minutes(10);
  cfg.workload.rate_per_sec = 1.0;
  return cfg;
}

TimePoint AtMinutes(double m) {
  return TimePoint::FromMicros(Duration::Minutes(m).micros());
}

TEST(FaultWiring, EmptyPlanBuildsNoController) {
  Experiment exp{TinyConfig()};
  exp.Run();
  EXPECT_EQ(exp.fault(), nullptr);
  EXPECT_EQ(exp.network().dropped_by(net::DropReason::kPartitioned), 0u);
  EXPECT_EQ(exp.network().dropped_by(net::DropReason::kOffline), 0u);
}

TEST(FaultWiring, ConfigDigestSeesThePlanButNotTelemetry) {
  const ExperimentConfig base = TinyConfig();
  ExperimentConfig faulted = TinyConfig();
  faulted.fault_plan.RegionalPartition(AtMinutes(3), Duration::Minutes(2),
                                       Mask(net::Region::EasternAsia));
  EXPECT_NE(core::ConfigDigest(base), core::ConfigDigest(faulted));

  // Same plan, telemetry on: still the same experiment identity.
  ExperimentConfig traced = faulted;
  traced.telemetry.metrics = true;
  traced.telemetry.trace = true;
  EXPECT_EQ(core::ConfigDigest(faulted), core::ConfigDigest(traced));

  // The gateway-outage *policy* is result-affecting config too.
  ExperimentConfig stall = TinyConfig();
  stall.pools[0].policy.gateway_outage = miner::GatewayOutagePolicy::kStall;
  EXPECT_NE(core::ConfigDigest(base), core::ConfigDigest(stall));
}

TEST(FaultNodeCrash, CrashedNodesRestartAndResync) {
  ExperimentConfig cfg = TinyConfig();
  cfg.fault_plan.NodeCrash(AtMinutes(3), Duration::Minutes(2), 5);
  Experiment exp{cfg};
  exp.Run();

  ASSERT_NE(exp.fault(), nullptr);
  const FaultStats& stats = exp.fault()->stats();
  EXPECT_EQ(stats.total_injected(), 1u);
  EXPECT_EQ(stats.injected[static_cast<std::size_t>(FaultKind::kNodeCrash)],
            1u);
  EXPECT_EQ(stats.crashes, 5u);
  EXPECT_EQ(stats.restarts, 5u);
  EXPECT_GT(stats.rejoin_links, 0u);

  // Everyone is back online and wired into the overlay...
  for (const auto& node : exp.nodes()) {
    EXPECT_TRUE(node->online());
    EXPECT_GE(node->peer_count(), 1u);
  }
  // ...and the restarted nodes back-filled what they missed: the overwhelming
  // majority of nodes sit at (or within a block or two of) the reference head.
  const std::uint64_t ref_head = exp.reference_tree().head_number();
  std::size_t caught_up = 0;
  for (const auto& node : exp.nodes())
    caught_up += node->tree().head_number() + 3 >= ref_head;
  EXPECT_GE(caught_up, exp.nodes().size() * 9 / 10);
}

TEST(FaultPartition, DropsAreAttributedAndWindowHeals) {
  ExperimentConfig cfg = TinyConfig();
  const std::uint32_t mask = Mask(net::Region::EasternAsia) |
                             Mask(net::Region::SoutheastAsia) |
                             Mask(net::Region::Oceania);
  cfg.fault_plan.RegionalPartition(AtMinutes(3), Duration::Minutes(3), mask);
  Experiment exp{cfg};
  exp.Run();

  ASSERT_NE(exp.fault(), nullptr);
  const FaultStats& stats = exp.fault()->stats();
  EXPECT_EQ(stats.partitions_healed, 1u);

  // The executed window matches the plan and was closed by the heal.
  ASSERT_EQ(exp.fault()->partition_windows().size(), 1u);
  const PartitionWindow& window = exp.fault()->partition_windows()[0];
  EXPECT_EQ(window.start.micros(), AtMinutes(3).micros());
  EXPECT_EQ(window.end.micros(), AtMinutes(6).micros());
  EXPECT_EQ(window.side_a_mask, mask);
  EXPECT_FALSE(exp.network().partition_active());

  // Cross-side traffic during the split is censused under `partitioned`.
  EXPECT_GT(exp.network().dropped_by(net::DropReason::kPartitioned), 0u);
  const std::string report = exp.network().RenderDropReport();
  EXPECT_NE(report.find("partitioned"), std::string::npos) << report;

  // After the heal the chain still converges network-wide.
  std::unordered_map<Hash32, int> heads;
  for (const auto& node : exp.nodes()) ++heads[node->tree().head_hash()];
  int best = 0;
  for (const auto& [hash, count] : heads) best = std::max(best, count);
  EXPECT_GT(best, static_cast<int>(exp.nodes().size() * 3 / 4));
}

TEST(FaultDegradation, WindowClearsAndExtraLossIsCensused) {
  ExperimentConfig cfg = TinyConfig();
  cfg.fault_plan.DegradeLinks(AtMinutes(3), Duration::Minutes(3),
                              Mask(net::Region::WesternEurope) |
                                  Mask(net::Region::CentralEurope),
                              /*latency_factor=*/4.0,
                              /*bandwidth_factor=*/4.0,
                              /*extra_drop_prob=*/0.10);
  Experiment exp{cfg};
  exp.Run();

  ASSERT_NE(exp.fault(), nullptr);
  EXPECT_EQ(exp.fault()->stats().degradations_cleared, 1u);
  EXPECT_FALSE(exp.network().degradation_active());
  EXPECT_GT(exp.network().dropped_by(net::DropReason::kDegraded), 0u);
}

TEST(FaultGatewayOutage, PoolStallsAndReleasesOnRestore) {
  ExperimentConfig cfg = TinyConfig();
  // Take out every Ethermine gateway for 4 minutes mid-run: at ~25% of
  // hashrate and a 13 s cadence the pool finds several blocks in the window.
  cfg.fault_plan.GatewayOutage(AtMinutes(3), Duration::Minutes(4), 0);
  Experiment exp{cfg};
  exp.Run();

  ASSERT_NE(exp.fault(), nullptr);
  const FaultStats& stats = exp.fault()->stats();
  EXPECT_EQ(
      stats.injected[static_cast<std::size_t>(FaultKind::kGatewayOutage)], 1u);
  EXPECT_GT(stats.crashes, 0u);           // the gateways went down...
  EXPECT_EQ(stats.crashes, stats.restarts);  // ...and all came back.

  // With the whole gateway roster down, releases park until the restore.
  EXPECT_GT(exp.coordinator().releases_stalled(), 0u);

  // NotifyGatewayRestored flushed the parked blocks: every pool-0 block
  // minted during the outage still reached the converged reference tree.
  for (const auto& record : exp.minted()) {
    if (record.pool_index != 0) continue;
    EXPECT_TRUE(exp.reference_tree().Contains(record.block->hash))
        << "pool-0 block lost at height " << record.block->header.number;
  }
  for (const auto& node : exp.nodes()) EXPECT_TRUE(node->online());
}

TEST(FaultClockJump, SkewsExactlyOneVantage) {
  ExperimentConfig cfg = TinyConfig();
  const Duration delta = Duration::Seconds(30);
  cfg.fault_plan.ClockJump(AtMinutes(5), /*observer_index=*/1, delta);
  Experiment exp{cfg};
  exp.Run();

  ASSERT_NE(exp.fault(), nullptr);
  EXPECT_EQ(exp.fault()->stats().clock_jumps, 1u);
  ASSERT_GE(exp.observers().size(), 2u);

  // Blocks whose propagation wave completed before the jump show sub-second
  // cross-vantage skew; blocks after it show the EA vantage ~30 s "late".
  const auto& jumped = exp.observers()[1]->first_block_arrival();
  std::size_t before = 0, after = 0;
  for (const auto& [hash, at_jumped] : jumped) {
    TimePoint min_other = TimePoint::FromMicros(INT64_MAX);
    bool seen_elsewhere = false;
    for (std::size_t i = 0; i < exp.observers().size(); ++i) {
      if (i == 1) continue;
      const auto& log = exp.observers()[i]->first_block_arrival();
      const auto it = log.find(hash);
      if (it == log.end()) continue;
      seen_elsewhere = true;
      min_other = std::min(min_other, it->second);
    }
    if (!seen_elsewhere) continue;
    const double skew_s = (at_jumped - min_other).seconds();
    // Ignore blocks in flight around the jump instant.
    if (min_other < AtMinutes(4.5)) {
      EXPECT_LT(skew_s, 15.0);
      ++before;
    } else if (min_other >= TimePoint::FromMicros(AtMinutes(5).micros())) {
      EXPECT_GT(skew_s, 20.0);
      EXPECT_LT(skew_s, 45.0);
      ++after;
    }
  }
  EXPECT_GT(before, 5u);
  EXPECT_GT(after, 5u);
}

}  // namespace
}  // namespace ethsim::fault
