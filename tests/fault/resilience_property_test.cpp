// Property suite over seeds x churn rates x partition schedules:
//   * liveness  — after every fault heals, the overlay re-converges and no
//                 canonical progress is lost forever;
//   * determinism — a fixed (config, plan, seed) reproduces byte-identical
//                 outputs and byte-identical fault schedules;
//   * telemetry — observing a faulted run cannot change it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>

#include "core/experiment.hpp"
#include "core/provenance.hpp"
#include "fault/controller.hpp"

namespace ethsim::fault {
namespace {

using core::Experiment;
using core::ExperimentConfig;

constexpr std::uint32_t Mask(net::Region r) {
  return 1u << static_cast<unsigned>(r);
}

TimePoint AtMinutes(double m) {
  return TimePoint::FromMicros(Duration::Minutes(m).micros());
}

struct Scenario {
  const char* name;
  std::uint64_t seed;
  double churn_per_min;        // 0 = no churn window
  int partition_schedule;      // 0 = none, 1 = single mid-run, 2 = two splits
  bool kitchen_sink;           // add degradation + gateway outage on top
};

// Every schedule heals by minute 7 of a 10-minute run, leaving the overlay
// three minutes (~14 block intervals) to re-converge.
ExperimentConfig BuildConfig(const Scenario& s) {
  ExperimentConfig cfg = core::presets::SmallStudy(30);
  cfg.duration = Duration::Minutes(10);
  cfg.workload.rate_per_sec = 1.0;
  cfg.seed = s.seed;
  if (s.churn_per_min > 0.0)
    cfg.fault_plan.PoissonChurn(AtMinutes(2), Duration::Minutes(5),
                                s.churn_per_min,
                                /*downtime_mean=*/Duration::Seconds(20));
  const std::uint32_t apac = Mask(net::Region::EasternAsia) |
                             Mask(net::Region::SoutheastAsia) |
                             Mask(net::Region::Oceania);
  if (s.partition_schedule == 1) {
    cfg.fault_plan.RegionalPartition(AtMinutes(3), Duration::Minutes(3), apac);
  } else if (s.partition_schedule == 2) {
    cfg.fault_plan
        .RegionalPartition(AtMinutes(2), Duration::Minutes(1.5), apac)
        .RegionalPartition(AtMinutes(5), Duration::Minutes(1.5),
                           Mask(net::Region::NorthAmerica) |
                               Mask(net::Region::SouthAmerica));
  }
  if (s.kitchen_sink) {
    cfg.fault_plan
        .DegradeLinks(AtMinutes(4), Duration::Minutes(2),
                      Mask(net::Region::WesternEurope), 3.0, 2.0, 0.05)
        .GatewayOutage(AtMinutes(4), Duration::Minutes(2), /*pool_index=*/1)
        .NodeCrash(AtMinutes(3), Duration::Minutes(2), 3);
  }
  EXPECT_EQ(cfg.fault_plan.Validate(), "");
  return cfg;
}

const Scenario kScenarios[] = {
    {"churn_only", 11, 4.0, 0, false},
    {"partition_only", 7, 0.0, 1, false},
    {"churn_plus_partition", 21, 2.0, 1, false},
    {"double_partition_heavy_churn", 33, 6.0, 2, false},
    {"kitchen_sink", 5, 3.0, 1, true},
};

class ResilienceProperty : public ::testing::TestWithParam<Scenario> {};

INSTANTIATE_TEST_SUITE_P(Schedules, ResilienceProperty,
                         ::testing::ValuesIn(kScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST_P(ResilienceProperty, OverlayReconvergesAfterHeal) {
  Experiment exp{BuildConfig(GetParam())};
  exp.Run();
  ASSERT_NE(exp.fault(), nullptr);
  const FaultStats& stats = exp.fault()->stats();
  EXPECT_GT(stats.total_injected(), 0u);
  // Every down transition was matched by an up transition, modulo churn
  // rejoins whose exponential downtime outlived the run tail.
  EXPECT_LE(stats.restarts, stats.crashes);
  EXPECT_GE(stats.restarts + 2, stats.crashes);

  // Canonical progress was never lost: the chain kept growing through the
  // fault windows (10 min at ~13 s/block ~= 45 blocks; accept half).
  const std::uint64_t genesis = exp.config().genesis_number;
  const std::uint64_t ref_head = exp.reference_tree().head_number();
  EXPECT_GT(ref_head, genesis + 22);

  // No lost-forever blocks: among online nodes, the overwhelming majority
  // caught back up to the reference head (stragglers that rejoined in the
  // final seconds may still be back-filling).
  std::size_t online = 0, caught_up = 0;
  for (const auto& node : exp.nodes()) {
    if (!node->online()) continue;
    ++online;
    caught_up += node->tree().head_number() + 5 >= ref_head;
  }
  EXPECT_GE(online, exp.nodes().size() * 9 / 10);
  EXPECT_GE(caught_up, online * 8 / 10)
      << "only " << caught_up << " of " << online
      << " online nodes near head " << ref_head;

  // And they agree on WHICH head (not just how high it is). A block minted
  // seconds before cutoff legitimately splits the overlay between head N and
  // N-1 mid-propagation, so require a two-thirds plurality, not unanimity.
  std::unordered_map<Hash32, int> heads;
  for (const auto& node : exp.nodes())
    if (node->online()) ++heads[node->tree().head_hash()];
  int best = 0;
  for (const auto& [hash, count] : heads) best = std::max(best, count);
  EXPECT_GE(best, static_cast<int>(online * 2 / 3));
}

TEST_P(ResilienceProperty, ByteIdenticalForFixedSeedAndPlan) {
  const ExperimentConfig cfg = BuildConfig(GetParam());
  Experiment a{cfg};
  Experiment b{cfg};
  a.Run();
  b.Run();

  EXPECT_EQ(core::DeterminismDigest(a), core::DeterminismDigest(b));
  ASSERT_EQ(a.minted().size(), b.minted().size());
  for (std::size_t i = 0; i < a.minted().size(); ++i)
    EXPECT_EQ(a.minted()[i].block->hash, b.minted()[i].block->hash);

  // The fault schedule itself replayed identically, down to each injected
  // process and each re-established link.
  ASSERT_NE(a.fault(), nullptr);
  ASSERT_NE(b.fault(), nullptr);
  const FaultStats& sa = a.fault()->stats();
  const FaultStats& sb = b.fault()->stats();
  EXPECT_EQ(sa.injected, sb.injected);
  EXPECT_EQ(sa.crashes, sb.crashes);
  EXPECT_EQ(sa.restarts, sb.restarts);
  EXPECT_EQ(sa.churn_leaves, sb.churn_leaves);
  EXPECT_EQ(sa.rejoin_links, sb.rejoin_links);
  EXPECT_EQ(sa.partitions_healed, sb.partitions_healed);

  // Drop censuses match reason-for-reason.
  for (std::size_t r = 0; r < net::kDropReasonCount; ++r)
    EXPECT_EQ(
        a.network().dropped_by(static_cast<net::DropReason>(r)),
        b.network().dropped_by(static_cast<net::DropReason>(r)))
        << net::DropReasonName(static_cast<net::DropReason>(r));
}

TEST(ResilienceTelemetry, ObservingAFaultedRunDoesNotChangeIt) {
  const Scenario scenario{"telemetry", 13, 3.0, 1, false};
  Experiment plain{BuildConfig(scenario)};
  plain.Run();

  ExperimentConfig traced_cfg = BuildConfig(scenario);
  traced_cfg.telemetry.metrics = true;
  traced_cfg.telemetry.trace = true;
  Experiment traced{traced_cfg};
  traced.Run();

  EXPECT_EQ(core::DeterminismDigest(plain), core::DeterminismDigest(traced));
  EXPECT_EQ(plain.simulator().events_executed(),
            traced.simulator().events_executed());
  EXPECT_EQ(plain.fault()->stats().crashes, traced.fault()->stats().crashes);
  EXPECT_EQ(plain.fault()->stats().rejoin_links,
            traced.fault()->stats().rejoin_links);

  // The traced run really recorded fault telemetry — not vacuous.
  ASSERT_NE(traced.telemetry(), nullptr);
  ASSERT_NE(traced.telemetry()->metrics(), nullptr);
  const std::string jsonl = traced.telemetry()->metrics()->ToJsonl();
  EXPECT_NE(jsonl.find("fault.injected"), std::string::npos);
}

TEST(ResilienceManifest, FaultStatsEnterTheRunManifest) {
  const Scenario scenario{"manifest", 3, 0.0, 1, false};
  Experiment exp{BuildConfig(scenario)};
  exp.Run();
  const obs::RunManifest manifest = core::BuildRunManifest(exp, "test");
  bool saw_events = false;
  for (const auto& [key, value] : manifest.extra)
    if (key == "fault_events") saw_events = true;
  EXPECT_TRUE(saw_events);
}

}  // namespace
}  // namespace ethsim::fault
