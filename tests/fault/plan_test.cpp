// FaultPlan builder + validation contract.
#include "fault/plan.hpp"

#include <gtest/gtest.h>

#include "net/geo.hpp"

namespace ethsim::fault {
namespace {

constexpr std::uint32_t Mask(net::Region r) {
  return 1u << static_cast<unsigned>(r);
}

TEST(FaultPlanBuilder, EmptyPlanIsEmptyAndValid) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.Validate(), "");
}

TEST(FaultPlanBuilder, ChainedBuildersAppendInOrder) {
  FaultPlan plan;
  plan.NodeCrash(TimePoint::FromMicros(Duration::Seconds(10).micros()),
                 Duration::Seconds(30), 3)
      .RegionalPartition(TimePoint::FromMicros(Duration::Seconds(60).micros()),
                         Duration::Seconds(60),
                         Mask(net::Region::EasternAsia))
      .ClockJump(TimePoint::FromMicros(Duration::Seconds(5).micros()), 1,
                 Duration::Seconds(2));
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(plan.events[0].count, 3u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kRegionalPartition);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kClockJump);
  EXPECT_EQ(plan.Validate(), "");
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanValidate, RejectsZeroCountCrash) {
  FaultPlan plan;
  plan.NodeCrash(TimePoint::FromMicros(0), Duration::Seconds(1), 0);
  EXPECT_NE(plan.Validate(), "");
}

TEST(FaultPlanValidate, RejectsChurnWithoutRateOrWindow) {
  FaultPlan no_rate;
  no_rate.PoissonChurn(TimePoint::FromMicros(0), Duration::Minutes(5), 0.0);
  EXPECT_NE(no_rate.Validate(), "");

  FaultPlan no_window;
  no_window.PoissonChurn(TimePoint::FromMicros(0), Duration::Micros(0), 4.0);
  EXPECT_NE(no_window.Validate(), "");

  FaultPlan ok;
  ok.PoissonChurn(TimePoint::FromMicros(0), Duration::Minutes(5), 4.0);
  EXPECT_EQ(ok.Validate(), "");
}

TEST(FaultPlanValidate, RejectsEmptyRegionMask) {
  FaultPlan partition;
  partition.RegionalPartition(TimePoint::FromMicros(0), Duration::Minutes(1),
                              0);
  EXPECT_NE(partition.Validate(), "");

  FaultPlan degrade;
  degrade.DegradeLinks(TimePoint::FromMicros(0), Duration::Minutes(1), 0, 2.0,
                       2.0);
  EXPECT_NE(degrade.Validate(), "");
}

TEST(FaultPlanValidate, RejectsOverlappingPartitionWindows) {
  const std::uint32_t mask = Mask(net::Region::EasternAsia);
  FaultPlan overlap;
  overlap
      .RegionalPartition(TimePoint::FromMicros(Duration::Seconds(10).micros()),
                         Duration::Seconds(60), mask)
      .RegionalPartition(TimePoint::FromMicros(Duration::Seconds(40).micros()),
                         Duration::Seconds(60), mask);
  EXPECT_NE(overlap.Validate(), "");

  FaultPlan disjoint;
  disjoint
      .RegionalPartition(TimePoint::FromMicros(Duration::Seconds(10).micros()),
                         Duration::Seconds(20), mask)
      .RegionalPartition(TimePoint::FromMicros(Duration::Seconds(40).micros()),
                         Duration::Seconds(20), mask);
  EXPECT_EQ(disjoint.Validate(), "");
}

TEST(FaultPlanValidate, RejectsZeroLengthPartitionWindow) {
  // start == end used to silently mean "never heals"; Validate now rejects
  // it outright so a degenerate window can't slip through a config draw.
  FaultPlan plan;
  plan.RegionalPartition(TimePoint::FromMicros(0), Duration::Micros(0),
                         Mask(net::Region::Oceania));
  const std::string error = plan.Validate();
  EXPECT_NE(error, "");
  EXPECT_NE(error.find("positive duration"), std::string::npos) << error;
}

TEST(FaultPlanValidate, RejectsZeroLengthDegradeWindow) {
  FaultPlan plan;
  plan.DegradeLinks(TimePoint::FromMicros(0), Duration::Micros(0),
                    Mask(net::Region::WesternEurope), 2.0, 2.0, 0.01);
  const std::string error = plan.Validate();
  EXPECT_NE(error, "");
  EXPECT_NE(error.find("positive duration"), std::string::npos) << error;
}

TEST(FaultPlanValidate, ZeroDowntimeStaysLegalForCrashAndOutage) {
  // Crashes and gateway outages keep the "zero = never restarts" meaning.
  FaultPlan plan;
  plan.NodeCrash(TimePoint::FromMicros(0), Duration::Micros(0), 2)
      .GatewayOutage(TimePoint::FromMicros(Duration::Seconds(5).micros()),
                     Duration::Micros(0), 0);
  EXPECT_EQ(plan.Validate(), "");
}

TEST(FaultPlanValidate, RejectsBadDegradationKnobs) {
  const std::uint32_t mask = Mask(net::Region::WesternEurope);
  FaultPlan shrink;  // factors < 1 would *improve* links
  shrink.DegradeLinks(TimePoint::FromMicros(0), Duration::Minutes(1), mask,
                      0.5, 1.0);
  EXPECT_NE(shrink.Validate(), "");

  FaultPlan certain_loss;  // extra drop prob must stay < 1
  certain_loss.DegradeLinks(TimePoint::FromMicros(0), Duration::Minutes(1),
                            mask, 1.0, 1.0, 1.0);
  EXPECT_NE(certain_loss.Validate(), "");

  FaultPlan ok;
  ok.DegradeLinks(TimePoint::FromMicros(0), Duration::Minutes(1), mask, 3.0,
                  2.0, 0.05);
  EXPECT_EQ(ok.Validate(), "");
}

TEST(FaultPlanValidate, RejectsZeroClockDelta) {
  FaultPlan plan;
  plan.ClockJump(TimePoint::FromMicros(0), 0, Duration::Micros(0));
  EXPECT_NE(plan.Validate(), "");

  FaultPlan negative_ok;  // signed deltas are fine, zero is the no-op
  negative_ok.ClockJump(TimePoint::FromMicros(0), 0, Duration::Seconds(-2));
  EXPECT_EQ(negative_ok.Validate(), "");
}

TEST(FaultKindNames, AllDistinctAndNonEmpty) {
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    const std::string_view name = FaultKindName(static_cast<FaultKind>(i));
    EXPECT_FALSE(name.empty()) << i;
    for (std::size_t j = i + 1; j < kFaultKindCount; ++j)
      EXPECT_NE(name, FaultKindName(static_cast<FaultKind>(j)));
  }
}

}  // namespace
}  // namespace ethsim::fault
