#include "eth/node.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/dissemination.hpp"
#include "chain/block_arena.hpp"
#include "obs/telemetry.hpp"

namespace ethsim::eth {
namespace {

using namespace ethsim::literals;

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every cluster in the suite
  return arena;
}

chain::BlockPtr MakeGenesis() {
  chain::Block b;
  b.header.number = 0;
  b.header.difficulty = 1000;
  b.Seal();
  return Arena().Adopt(std::move(b));
}

Address Addr(std::uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

chain::BlockPtr Child(const chain::BlockPtr& parent, std::uint64_t mix = 0,
                      std::vector<chain::Transaction> txs = {}) {
  chain::Block b;
  b.header.parent_hash = parent->hash;
  b.header.number = parent->header.number + 1;
  b.header.timestamp = parent->header.timestamp + 13;
  b.header.difficulty = 1000;
  b.header.miner = Addr(1);
  b.header.mix_seed = mix;
  b.transactions = std::move(txs);
  b.Seal();
  return Arena().Adopt(std::move(b));
}

// A small fully-wired test cluster.
struct Cluster {
  explicit Cluster(std::size_t n, NodeConfig cfg = {},
                   net::Region region = net::Region::WesternEurope) {
    net = std::make_unique<net::Network>(simulator, Rng{99}, net::NetworkParams{});
    genesis = MakeGenesis();
    Rng ids{7};
    for (std::size_t i = 0; i < n; ++i) {
      const net::HostId host = net->AddHost({region, 1e9});
      nodes.push_back(std::make_unique<EthNode>(simulator, *net, host,
                                                p2p::RandomNodeId(ids), genesis,
                                                cfg, ids.Fork(i)));
    }
  }

  void ConnectAll() {
    for (std::size_t i = 0; i < nodes.size(); ++i)
      for (std::size_t j = i + 1; j < nodes.size(); ++j)
        EthNode::Connect(*nodes[i], *nodes[j]);
  }

  void ConnectRing() {
    for (std::size_t i = 0; i < nodes.size(); ++i)
      EthNode::Connect(*nodes[i], *nodes[(i + 1) % nodes.size()]);
  }

  sim::Simulator simulator;
  std::unique_ptr<net::Network> net;
  chain::BlockPtr genesis;
  std::vector<std::unique_ptr<EthNode>> nodes;
};

TEST(EthNodeConnect, MutualAndIdempotent) {
  Cluster c{2};
  EXPECT_TRUE(EthNode::Connect(*c.nodes[0], *c.nodes[1]));
  EXPECT_TRUE(c.nodes[0]->ConnectedTo(*c.nodes[1]));
  EXPECT_TRUE(c.nodes[1]->ConnectedTo(*c.nodes[0]));
  EXPECT_FALSE(EthNode::Connect(*c.nodes[0], *c.nodes[1]));  // duplicate
  EXPECT_FALSE(EthNode::Connect(*c.nodes[0], *c.nodes[0]));  // self
  EXPECT_EQ(c.nodes[0]->peer_count(), 1u);
}

TEST(EthNodeConnect, MaxPeersEnforced) {
  NodeConfig cfg;
  cfg.max_peers = 2;
  Cluster c{4, cfg};
  EXPECT_TRUE(EthNode::Connect(*c.nodes[0], *c.nodes[1]));
  EXPECT_TRUE(EthNode::Connect(*c.nodes[0], *c.nodes[2]));
  EXPECT_FALSE(EthNode::Connect(*c.nodes[0], *c.nodes[3]));
  EXPECT_EQ(c.nodes[0]->peer_count(), 2u);
  EXPECT_EQ(c.nodes[3]->peer_count(), 0u);
}

TEST(EthNodeBlocks, MinedBlockReachesAllNodes) {
  Cluster c{8};
  c.ConnectAll();
  const chain::BlockPtr b1 = Child(c.genesis);
  c.nodes[0]->InjectMinedBlock(b1);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(10).micros()));
  for (const auto& node : c.nodes) {
    EXPECT_TRUE(node->tree().Contains(b1->hash));
    EXPECT_EQ(node->tree().head_hash(), b1->hash);
  }
}

TEST(EthNodeBlocks, PropagatesAcrossRingTopology) {
  // Multi-hop relay: a ring forces the block through every node in turn.
  Cluster c{10};
  c.ConnectRing();
  const chain::BlockPtr b1 = Child(c.genesis);
  c.nodes[0]->InjectMinedBlock(b1);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(30).micros()));
  for (const auto& node : c.nodes) EXPECT_TRUE(node->tree().Contains(b1->hash));
}

TEST(EthNodeBlocks, ChainOfBlocksPropagates) {
  Cluster c{5};
  c.ConnectAll();
  chain::BlockPtr tip = c.genesis;
  for (int i = 0; i < 5; ++i) {
    tip = Child(tip, static_cast<std::uint64_t>(i));
    c.nodes[static_cast<std::size_t>(i) % c.nodes.size()]->InjectMinedBlock(tip);
    c.simulator.RunUntil(c.simulator.Now() + 5_s);
  }
  for (const auto& node : c.nodes) {
    EXPECT_EQ(node->tree().head_number(), 5u);
    EXPECT_EQ(node->tree().head_hash(), tip->hash);
  }
}

TEST(EthNodeBlocks, HeadCallbackFiresOnNewHead) {
  Cluster c{3};
  c.ConnectAll();
  int fires = 0;
  chain::BlockPtr last;
  c.nodes[2]->set_head_callback([&](chain::BlockPtr b) {
    ++fires;
    last = std::move(b);
  });
  const chain::BlockPtr b1 = Child(c.genesis);
  c.nodes[0]->InjectMinedBlock(b1);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(5).micros()));
  EXPECT_EQ(fires, 1);
  ASSERT_TRUE(last);
  EXPECT_EQ(last->hash, b1->hash);
}

TEST(EthNodeBlocks, CompetingForksConvergeOnHeavierChain) {
  Cluster c{6};
  c.ConnectAll();
  // Two same-height blocks injected at different nodes at the same instant.
  const chain::BlockPtr a = Child(c.genesis, 1);
  const chain::BlockPtr b = Child(c.genesis, 2);
  c.nodes[0]->InjectMinedBlock(a);
  c.nodes[5]->InjectMinedBlock(b);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(5).micros()));

  // Extend fork b: everyone must reorg onto it.
  const chain::BlockPtr b2 = Child(b, 3);
  c.nodes[5]->InjectMinedBlock(b2);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(15).micros()));
  for (const auto& node : c.nodes) {
    EXPECT_EQ(node->tree().head_hash(), b2->hash);
    EXPECT_TRUE(node->tree().Contains(a->hash));  // fork retained in the tree
  }
}

TEST(EthNodeTxs, SubmittedTransactionGossipsToAllPools) {
  Cluster c{6};
  c.ConnectAll();
  const chain::Transaction tx = chain::MakeTransaction(Addr(5), 0, Addr(6), 10, 1);
  c.nodes[0]->SubmitTransaction(tx);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(10).micros()));
  for (const auto& node : c.nodes) {
    EXPECT_TRUE(node->pool().Contains(tx.hash))
        << "node missing tx";
    EXPECT_EQ(node->pool().pending_count(), 1u);
  }
}

TEST(EthNodeTxs, DuplicateSubmissionIsIgnored) {
  Cluster c{2};
  c.ConnectAll();
  const chain::Transaction tx = chain::MakeTransaction(Addr(5), 0, Addr(6), 10, 1);
  c.nodes[0]->SubmitTransaction(tx);
  c.nodes[0]->SubmitTransaction(tx);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(5).micros()));
  EXPECT_EQ(c.nodes[1]->pool().size(), 1u);
}

TEST(EthNodeTxs, IncludedTransactionsLeavePoolsEverywhere) {
  Cluster c{4};
  c.ConnectAll();
  const chain::Transaction tx = chain::MakeTransaction(Addr(5), 0, Addr(6), 10, 1);
  c.nodes[0]->SubmitTransaction(tx);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(5).micros()));

  const chain::BlockPtr b1 = Child(c.genesis, 0, {tx});
  c.nodes[1]->InjectMinedBlock(b1);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(15).micros()));
  for (const auto& node : c.nodes) {
    EXPECT_FALSE(node->pool().Contains(tx.hash));
    EXPECT_EQ(node->pool().AccountNonce(Addr(5)), 1u);
  }
}

TEST(EthNodeTxs, ReorgReturnsRetiredTransactionsToPool) {
  Cluster c{2};
  c.ConnectAll();
  const chain::Transaction tx = chain::MakeTransaction(Addr(5), 0, Addr(6), 10, 1);

  // Chain A includes the tx.
  const chain::BlockPtr a1 = Child(c.genesis, 1, {tx});
  c.nodes[0]->InjectMinedBlock(a1);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(5).micros()));
  EXPECT_FALSE(c.nodes[1]->pool().Contains(tx.hash));

  // Chain B (empty blocks) outgrows chain A: the tx must come back.
  const chain::BlockPtr b1 = Child(c.genesis, 2);
  const chain::BlockPtr b2 = Child(b1, 2);
  c.nodes[1]->InjectMinedBlock(b1);
  c.nodes[1]->InjectMinedBlock(b2);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(15).micros()));

  for (const auto& node : c.nodes) {
    EXPECT_EQ(node->tree().head_hash(), b2->hash);
    EXPECT_TRUE(node->pool().Contains(tx.hash)) << "tx lost in reorg";
  }
}

// Counting sink used to verify relay economics.
struct CountingSink : MessageSink {
  int full_blocks = 0;
  int announcements = 0;
  int fetched = 0;
  int imported = 0;
  int txs = 0;

  void OnBlockMessage(BlockMsgKind kind, const Hash32&, std::uint64_t,
                      const chain::Block*) override {
    switch (kind) {
      case BlockMsgKind::kFullBlock: ++full_blocks; break;
      case BlockMsgKind::kAnnouncement: ++announcements; break;
      case BlockMsgKind::kFetched: ++fetched; break;
    }
  }
  void OnTransactionMessage(const chain::Transaction&) override { ++txs; }
  void OnBlockImported(const chain::BlockPtr&, bool) override { ++imported; }
};

TEST(EthNodeRelay, SinkSeesBlockTraffic) {
  Cluster c{8};
  c.ConnectAll();
  CountingSink sink;
  c.nodes[7]->set_sink(&sink);
  c.nodes[0]->InjectMinedBlock(Child(c.genesis));
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(10).micros()));
  EXPECT_EQ(sink.imported, 1);
  // With 7 peers each pushing to ~sqrt(7)≈3 and announcing to the rest, the
  // observer receives the block multiple times but far fewer than 7 pushes.
  EXPECT_GE(sink.full_blocks + sink.fetched, 1);
  EXPECT_GE(sink.announcements + sink.full_blocks, 1);
}

TEST(EthNodeRelay, EachNodeImportsEachBlockExactlyOnce) {
  Cluster c{8};
  c.ConnectAll();
  std::vector<CountingSink> sinks(8);
  for (std::size_t i = 0; i < 8; ++i) c.nodes[i]->set_sink(&sinks[i]);
  chain::BlockPtr tip = c.genesis;
  for (int i = 0; i < 3; ++i) {
    tip = Child(tip, static_cast<std::uint64_t>(i));
    c.nodes[0]->InjectMinedBlock(tip);
    c.simulator.RunUntil(c.simulator.Now() + 5_s);
  }
  for (const auto& sink : sinks) EXPECT_EQ(sink.imported, 3);
}

TEST(EthNodeRelay, AnnouncementTriggersFetchWhenUnknown) {
  // Topology: miner -- hub -- leaf, with the hub's push targeting limited so
  // the leaf node sometimes learns via announcement + fetch. With 1 peer
  // sqrt(1)=1 so push always happens; use a sink to check the fetched path
  // is at least exercised across a wider cluster instead.
  Cluster c{12};
  c.ConnectAll();
  std::vector<CountingSink> sinks(12);
  for (std::size_t i = 0; i < 12; ++i) c.nodes[i]->set_sink(&sinks[i]);
  chain::BlockPtr tip = c.genesis;
  for (int i = 0; i < 10; ++i) {
    tip = Child(tip, static_cast<std::uint64_t>(i));
    c.nodes[static_cast<std::size_t>(i) % 12]->InjectMinedBlock(tip);
    c.simulator.RunUntil(c.simulator.Now() + 3_s);
  }
  int total_fetched = 0;
  for (const auto& sink : sinks) total_fetched += sink.fetched;
  EXPECT_GT(total_fetched, 0) << "announcement+fetch path never used";
}


TEST(EthNodeRelayModes, PushAllFloodsEveryPeerDirectly) {
  NodeConfig cfg;
  cfg.relay_mode = RelayMode::kPushAll;
  Cluster c{10, cfg};
  c.ConnectAll();
  CountingSink sink;
  c.nodes[9]->set_sink(&sink);
  c.nodes[0]->InjectMinedBlock(Child(c.genesis));
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(20).micros()));
  EXPECT_EQ(sink.imported, 1);
  // With push-to-all, the observer receives many more full copies than the
  // sqrt policy would send, and never needs to fetch.
  EXPECT_GE(sink.full_blocks, 3);
  EXPECT_EQ(sink.fetched, 0);
}

TEST(EthNodeRelayModes, AnnounceOnlyStillDisseminates) {
  NodeConfig cfg;
  cfg.relay_mode = RelayMode::kAnnounceOnly;
  Cluster c{10, cfg};
  c.ConnectAll();
  std::vector<CountingSink> sinks(10);
  for (std::size_t i = 0; i < 10; ++i) c.nodes[i]->set_sink(&sinks[i]);
  c.nodes[0]->InjectMinedBlock(Child(c.genesis));
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(30).micros()));
  int fetched_total = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sinks[i].imported, 1) << "node " << i;
    fetched_total += sinks[i].fetched;
  }
  // Everyone except the miner must have fetched the body.
  EXPECT_GE(fetched_total, 9);
}

TEST(EthNodeFaults, GossipSurvivesMessageLoss) {
  // 15% of messages vanish; redundancy (multiple pushes + announcements)
  // still delivers the block everywhere — the fault-tolerance role of the
  // redundancy the paper quantifies in Table II.
  sim::Simulator simulator;
  net::NetworkParams lossy;
  lossy.drop_prob = 0.15;
  net::Network network{simulator, Rng{99}, lossy};
  chain::BlockPtr genesis = MakeGenesis();
  Rng ids{7};
  std::vector<std::unique_ptr<EthNode>> nodes;
  for (int i = 0; i < 16; ++i) {
    const net::HostId host = network.AddHost({net::Region::WesternEurope, 1e9});
    nodes.push_back(std::make_unique<EthNode>(simulator, network, host,
                                              p2p::RandomNodeId(ids), genesis,
                                              NodeConfig{}, ids.Fork(i)));
  }
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      EthNode::Connect(*nodes[i], *nodes[j]);

  chain::BlockPtr tip = genesis;
  for (int i = 0; i < 10; ++i) {
    tip = Child(tip, static_cast<std::uint64_t>(i));
    nodes[0]->InjectMinedBlock(tip);
    simulator.RunUntil(simulator.Now() + Duration::Seconds(13));
  }
  simulator.RunUntil(simulator.Now() + Duration::Seconds(60));

  EXPECT_GT(network.messages_dropped(), 0u);
  int fully_synced = 0;
  for (const auto& node : nodes)
    fully_synced += node->tree().head_hash() == tip->hash;
  // A dense mesh shrugs off 15% loss almost entirely.
  EXPECT_GE(fully_synced, 15);
}


TEST(EthNodeValidation, CorruptBlockIsRejectedNotImported) {
  Cluster c{3};
  c.ConnectAll();
  // A block whose gas_used header field lies about the body.
  chain::Block bad_body;
  bad_body.header.parent_hash = c.genesis->hash;
  bad_body.header.number = c.genesis->header.number + 1;
  bad_body.header.difficulty = 1000;
  bad_body.header.timestamp = c.genesis->header.timestamp + 13;
  bad_body.Seal();
  chain::Block tampered_body{bad_body};
  tampered_body.header.gas_used = 999;  // inconsistent with empty body
  tampered_body.hash =
      tampered_body.header.Hash();  // re-sealed, still structurally bad
  const chain::BlockPtr bad = Arena().Adopt(std::move(bad_body));
  const chain::BlockPtr tampered = Arena().Adopt(std::move(tampered_body));

  c.nodes[1]->DeliverNewBlock(c.nodes[0].get(), tampered);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(10).micros()));

  EXPECT_EQ(c.nodes[1]->invalid_blocks(), 1u);
  EXPECT_FALSE(c.nodes[1]->tree().Contains(tampered->hash));
  // The honest version still works.
  c.nodes[1]->DeliverNewBlock(c.nodes[0].get(), bad);
  c.simulator.RunUntil(c.simulator.Now() + 10_s);
  EXPECT_TRUE(c.nodes[1]->tree().Contains(bad->hash));
}

TEST(EthNodeChurn, DisconnectIsMutualAndIdempotent) {
  Cluster c{3};
  c.ConnectAll();
  EXPECT_TRUE(EthNode::Disconnect(*c.nodes[0], *c.nodes[1]));
  EXPECT_FALSE(c.nodes[0]->ConnectedTo(*c.nodes[1]));
  EXPECT_FALSE(c.nodes[1]->ConnectedTo(*c.nodes[0]));
  EXPECT_FALSE(EthNode::Disconnect(*c.nodes[0], *c.nodes[1]));  // already gone
  // The surviving link still relays.
  EXPECT_TRUE(c.nodes[0]->ConnectedTo(*c.nodes[2]));
  EXPECT_EQ(c.nodes[0]->peer_count(), 1u);
  EXPECT_EQ(c.nodes[2]->peer_count(), 2u);
}

TEST(EthNodeChurn, DisconnectFreesCapacityForReconnect) {
  NodeConfig cfg;
  cfg.max_peers = 1;
  Cluster c{3, cfg};
  EXPECT_TRUE(EthNode::Connect(*c.nodes[0], *c.nodes[1]));
  EXPECT_FALSE(EthNode::Connect(*c.nodes[0], *c.nodes[2]));  // full
  EXPECT_TRUE(EthNode::Disconnect(*c.nodes[0], *c.nodes[1]));
  EXPECT_TRUE(EthNode::Connect(*c.nodes[0], *c.nodes[2]));   // slot freed
}

TEST(EthNodeChurn, DisconnectAllSeversBothSides) {
  Cluster c{4};
  c.ConnectAll();
  EXPECT_EQ(c.nodes[0]->DisconnectAll(), 3u);
  EXPECT_EQ(c.nodes[0]->peer_count(), 0u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(c.nodes[i]->ConnectedTo(*c.nodes[0])) << i;
    EXPECT_EQ(c.nodes[i]->peer_count(), 2u) << i;
  }
  EXPECT_EQ(c.nodes[0]->DisconnectAll(), 0u);
  // Gossip among the survivors is unaffected.
  const chain::BlockPtr b1 = Child(c.genesis);
  c.nodes[1]->InjectMinedBlock(b1);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(10).micros()));
  EXPECT_TRUE(c.nodes[3]->tree().Contains(b1->hash));
  EXPECT_FALSE(c.nodes[0]->tree().Contains(b1->hash));
}

TEST(EthNodeFaults, OfflineNodeDropsIngressAndCensusesIt) {
  Cluster c{2};
  c.ConnectAll();
  c.nodes[1]->GoOffline();
  EXPECT_FALSE(c.nodes[1]->online());
  EXPECT_EQ(c.nodes[1]->peer_count(), 0u);  // crash severed the link

  const chain::BlockPtr b1 = Child(c.genesis);
  c.nodes[1]->DeliverNewBlock(c.nodes[0].get(), b1);  // in-flight straggler
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(5).micros()));
  EXPECT_FALSE(c.nodes[1]->tree().Contains(b1->hash));
  EXPECT_EQ(c.nodes[1]->offline_drops(), 1u);
  EXPECT_EQ(c.net->dropped_by(net::DropReason::kOffline), 1u);

  // Offline local actions are no-ops too.
  c.nodes[1]->InjectMinedBlock(Child(c.genesis, 9));
  c.nodes[1]->SubmitTransaction(
      chain::MakeTransaction(Addr(5), 0, Addr(6), 10, 1));
  c.simulator.RunUntil(c.simulator.Now() + 5_s);
  EXPECT_EQ(c.nodes[1]->tree().head_hash(), c.genesis->hash);
  EXPECT_EQ(c.nodes[1]->pool().size(), 0u);
}

TEST(EthNodeFaults, CrashMidValidationNeverImportsIntoTheNewSession) {
  // The epoch guard: a block is heard, validation is scheduled, and the node
  // crashes before it completes. After the restart the stale callback must
  // not fire — the tree stays at genesis until fresh traffic arrives.
  Cluster c{2};
  c.ConnectAll();
  const chain::BlockPtr b1 = Child(c.genesis);
  c.nodes[1]->DeliverNewBlock(c.nodes[0].get(), b1);
  // Past the header check (3 ms), inside full validation (~150 ms).
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Millis(50).micros()));
  c.nodes[1]->GoOffline();
  c.nodes[1]->GoOnline();
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(10).micros()));
  EXPECT_FALSE(c.nodes[1]->tree().Contains(b1->hash));
  EXPECT_EQ(c.nodes[1]->tree().head_hash(), c.genesis->hash);
}

TEST(EthNodeFaults, RestartedNodeBackfillsMissedBlocksViaOrphanFetch) {
  Cluster c{3};
  c.ConnectAll();
  c.nodes[2]->GoOffline();

  // Two blocks propagate among the survivors while node 2 is down.
  const chain::BlockPtr b1 = Child(c.genesis, 1);
  const chain::BlockPtr b2 = Child(b1, 1);
  c.nodes[0]->InjectMinedBlock(b1);
  c.simulator.RunUntil(c.simulator.Now() + 5_s);
  c.nodes[0]->InjectMinedBlock(b2);
  c.simulator.RunUntil(c.simulator.Now() + 5_s);
  EXPECT_EQ(c.nodes[2]->tree().head_hash(), c.genesis->hash);

  // Restart, rewire, and deliver the NEXT block: the orphan parent-fetch
  // path pulls b2 then b1 from the peer and the whole chain heals.
  c.nodes[2]->GoOnline();
  EXPECT_TRUE(EthNode::Connect(*c.nodes[2], *c.nodes[0]));
  const chain::BlockPtr b3 = Child(b2, 1);
  c.nodes[0]->InjectMinedBlock(b3);
  c.simulator.RunUntil(c.simulator.Now() + 30_s);
  EXPECT_EQ(c.nodes[2]->tree().head_hash(), b3->hash);
  EXPECT_EQ(c.nodes[2]->tree().orphan_count(), 0u);
}

TEST(EthNodeFaults, ConnectToOfflineNodeIsRefused) {
  Cluster c{2};
  c.nodes[1]->GoOffline();
  EXPECT_FALSE(EthNode::Connect(*c.nodes[0], *c.nodes[1]));
  c.nodes[1]->GoOnline();
  EXPECT_TRUE(EthNode::Connect(*c.nodes[0], *c.nodes[1]));
}

// Cluster with the provenance recorder attached: every gossip edge the nodes
// exchange lands in the edge log, and invariant violations are collected
// instead of warned.
struct ProvCluster : Cluster {
  explicit ProvCluster(std::size_t n, NodeConfig cfg = {}) : Cluster(n, cfg) {
    obs::TelemetryConfig tc;
    tc.provenance = true;
    telemetry = std::make_unique<obs::Telemetry>(tc);
    net->AttachTelemetry(telemetry.get());
    for (std::size_t i = 0; i < nodes.size(); ++i)
      nodes[i]->AttachTelemetry(telemetry.get(),
                                static_cast<std::uint32_t>(i));
    telemetry->provenance()->checker().set_handler(
        [this](obs::InvariantCheck check, const std::string& detail) {
          violations.push_back(std::string(obs::InvariantCheckName(check)) +
                               ": " + detail);
        });
  }

  const obs::ProvenanceLog& FinishLog() {
    telemetry->provenance()->SetEndTime(simulator.Now().micros());
    return telemetry->provenance()->Finish();
  }

  std::unique_ptr<obs::Telemetry> telemetry;
  std::vector<std::string> violations;
};

TEST(EthNodeProvenance, HopDepthsInheritAlongTheRelayChain) {
  // A ring forces genuinely multi-hop dissemination; every host's recorded
  // hop must be exactly its tree parent's hop + 1 (depth inheritance), and
  // depth must exceed 1 somewhere (the block really was re-relayed).
  ProvCluster c{8};
  c.ConnectRing();
  const chain::BlockPtr b1 = Child(c.genesis);
  c.nodes[0]->InjectMinedBlock(b1);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(30).micros()));

  const obs::ProvenanceLog& log = c.FinishLog();
  const auto tree =
      analysis::BuildDisseminationTree(log, b1->hash.prefix_u64());
  ASSERT_EQ(tree.nodes.size(), c.nodes.size()) << "block did not reach all";
  std::unordered_map<std::uint32_t, std::uint16_t> depth_of;
  for (const auto& node : tree.nodes) depth_of[node.host] = node.hop;
  std::uint16_t max_hop = 0;
  for (const auto& node : tree.nodes) {
    if (node.via == obs::EdgeKind::kOrigin) {
      EXPECT_EQ(node.hop, 0);
      continue;
    }
    ASSERT_TRUE(depth_of.contains(node.parent_host)) << node.host;
    EXPECT_EQ(node.hop, depth_of[node.parent_host] + 1)
        << "host " << node.host << " via host " << node.parent_host;
    max_hop = std::max(max_hop, node.hop);
  }
  EXPECT_GE(max_hop, 2) << "ring never produced a multi-hop relay";
  EXPECT_TRUE(c.violations.empty()) << c.violations.front();
}

TEST(EthNodeProvenance, EveryFetchFollowsADeliveredAnnouncement) {
  // Announce-only relay: each body must be fetched, and the log must show
  // the causal order announce(arrival) <= GetBlock(send) for every fetch —
  // plus a served body for each delivered request.
  NodeConfig cfg;
  cfg.relay_mode = RelayMode::kAnnounceOnly;
  ProvCluster c{8, cfg};
  c.ConnectAll();
  chain::BlockPtr tip = c.genesis;
  for (int i = 0; i < 3; ++i) {
    tip = Child(tip, static_cast<std::uint64_t>(i));
    c.nodes[static_cast<std::size_t>(i)]->InjectMinedBlock(tip);
    c.simulator.RunUntil(c.simulator.Now() + 5_s);
  }
  c.simulator.RunUntil(c.simulator.Now() + 10_s);

  const obs::ProvenanceLog& log = c.FinishLog();
  std::size_t fetches = 0;
  std::size_t bodies = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto kind = static_cast<obs::EdgeKind>(log.kind[i]);
    if (kind == obs::EdgeKind::kBlockResponse && log.delivered(i)) ++bodies;
    if (kind != obs::EdgeKind::kGetBlock) continue;
    ++fetches;
    // Find a delivered announcement of the same object to the fetching host
    // that arrived no later than the fetch was sent.
    bool announced = false;
    for (std::size_t j = 0; j < log.size() && !announced; ++j) {
      if (static_cast<obs::EdgeKind>(log.kind[j]) !=
          obs::EdgeKind::kAnnouncement)
        continue;
      announced = log.object[j] == log.object[i] &&
                  log.to[j] == log.from[i] && log.delivered(j) &&
                  log.arrival_us[j] <= log.send_us[i];
    }
    EXPECT_TRUE(announced) << "fetch at row " << i << " had no prior announce";
  }
  // 7 non-miner nodes x 3 blocks all fetched their bodies.
  EXPECT_GE(fetches, 21u);
  EXPECT_GE(bodies, 21u);
  // The analysis layer agrees: announcements win every first delivery.
  const auto shares = analysis::FirstDeliveryBreakdown(log);
  EXPECT_EQ(shares.push, 0u);
  EXPECT_EQ(shares.announce, shares.total());
  EXPECT_TRUE(c.violations.empty()) << c.violations.front();
}

TEST(EthNodeProvenance, PushAnnounceRaceDeduplicatesFirstDelivery) {
  // Dense mesh: most hosts hear each block several times (a push and many
  // announcements race). Exactly one edge per (block, host) may claim the
  // first delivery; every other delivered copy is attributed as redundant.
  ProvCluster c{10};
  c.ConnectAll();
  std::vector<CountingSink> sinks(10);
  for (std::size_t i = 0; i < 10; ++i) c.nodes[i]->set_sink(&sinks[i]);
  const chain::BlockPtr b1 = Child(c.genesis);
  c.nodes[0]->InjectMinedBlock(b1);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(20).micros()));

  const obs::ProvenanceLog& log = c.FinishLog();
  const std::uint64_t object = b1->hash.prefix_u64();
  const auto tree = analysis::BuildDisseminationTree(log, object);
  ASSERT_EQ(tree.nodes.size(), 10u);
  std::unordered_map<std::uint32_t, int> seen_hosts;
  for (const auto& node : tree.nodes) ++seen_hosts[node.host];
  for (const auto& [host, count] : seen_hosts)
    EXPECT_EQ(count, 1) << "host " << host << " claimed twice";

  // Accounting identity: delivered block-message edges = 9 firsts + the
  // redundant rest (the origin self-edge is excluded from both sides).
  std::uint64_t delivered_block_edges = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto kind = static_cast<obs::EdgeKind>(log.kind[i]);
    if (kind == obs::EdgeKind::kOrigin || kind == obs::EdgeKind::kGetBlock ||
        kind == obs::EdgeKind::kTransactions)
      continue;
    if (log.object[i] == object && log.delivered(i)) ++delivered_block_edges;
  }
  EXPECT_EQ(delivered_block_edges, 9u + tree.redundant_edges);
  EXPECT_GT(tree.redundant_edges, 0u) << "no race ever happened";

  // And despite the redundant copies, each node imported exactly once.
  for (const auto& sink : sinks) EXPECT_EQ(sink.imported, 1);
  EXPECT_TRUE(c.violations.empty()) << c.violations.front();
}

TEST(EthNodeBlocks, OrphanParentIsFetchedAndChainHeals) {
  // Deliver a block whose parent the receiver never saw: node 1 must fetch
  // the parent and still converge.
  Cluster c{2};
  c.ConnectAll();
  const chain::BlockPtr b1 = Child(c.genesis, 1);
  const chain::BlockPtr b2 = Child(b1, 1);
  // Inject only into node 0's tree by hand-crafting: use a private cluster
  // where node 0 knows b1 but the wire only carries b2 first.
  c.nodes[0]->InjectMinedBlock(b1);
  c.simulator.RunUntil(TimePoint::FromMicros(1000));  // b1 still in flight
  c.nodes[0]->InjectMinedBlock(b2);
  c.simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(20).micros()));
  EXPECT_EQ(c.nodes[1]->tree().head_hash(), b2->hash);
  EXPECT_EQ(c.nodes[1]->tree().orphan_count(), 0u);
}

}  // namespace
}  // namespace ethsim::eth
