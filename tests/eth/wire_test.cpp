#include "eth/wire.hpp"

#include <gtest/gtest.h>

namespace ethsim::eth::wire {
namespace {

Address Addr(std::uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

chain::Block SampleBlock() {
  chain::Block b;
  b.header.number = 7'500'123;
  b.header.difficulty = 2'000'000'000'000ULL;
  b.header.timestamp = 1'554'076'800;
  b.header.miner = Addr(5);
  b.header.mix_seed = 0xdeadbeef;
  b.transactions.push_back(chain::MakeTransaction(Addr(1), 0, Addr(2), 100, 5));
  b.transactions.push_back(
      chain::MakeTransaction(Addr(1), 1, Addr(3), 999, 7, 64));
  chain::BlockHeader uncle;
  uncle.number = 7'500'122;
  uncle.miner = Addr(9);
  b.uncles.push_back(uncle);
  b.Seal();
  return b;
}

TEST(Wire, StatusRoundTrip) {
  Status status;
  status.total_difficulty = 123'456'789;
  status.head.bytes[0] = 0xaa;
  status.genesis.bytes[0] = 0xbb;
  Status decoded;
  ASSERT_TRUE(DecodeStatus(EncodeStatus(status), decoded));
  EXPECT_EQ(decoded.protocol_version, 63u);
  EXPECT_EQ(decoded.network_id, 1u);
  EXPECT_EQ(decoded.total_difficulty, 123'456'789u);
  EXPECT_EQ(decoded.head, status.head);
  EXPECT_EQ(decoded.genesis, status.genesis);
}

TEST(Wire, AnnouncementsRoundTrip) {
  std::vector<Announcement> anns;
  for (std::uint64_t i = 0; i < 5; ++i) {
    Announcement ann;
    ann.hash.bytes[0] = static_cast<std::uint8_t>(i + 1);
    ann.number = 7'000'000 + i;
    anns.push_back(ann);
  }
  std::vector<Announcement> decoded;
  ASSERT_TRUE(DecodeAnnouncements(EncodeAnnouncements(anns), decoded));
  ASSERT_EQ(decoded.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(decoded[i].hash, anns[i].hash);
    EXPECT_EQ(decoded[i].number, anns[i].number);
  }
}

TEST(Wire, EmptyAnnouncementListRoundTrips) {
  std::vector<Announcement> decoded{{}};
  ASSERT_TRUE(DecodeAnnouncements(EncodeAnnouncements({}), decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(Wire, TransactionsRoundTripPreservesHashes) {
  std::vector<chain::Transaction> txs;
  txs.push_back(chain::MakeTransaction(Addr(1), 0, Addr(2), 100, 5));
  txs.push_back(chain::MakeTransaction(Addr(4), 42, Addr(2), 7, 1, 512));
  std::vector<chain::Transaction> decoded;
  ASSERT_TRUE(DecodeTransactions(EncodeTransactions(txs), decoded));
  ASSERT_EQ(decoded.size(), 2u);
  // The decoder re-seals; identity must survive the wire.
  EXPECT_EQ(decoded[0].hash, txs[0].hash);
  EXPECT_EQ(decoded[1].hash, txs[1].hash);
  EXPECT_EQ(decoded[1].payload_bytes, 512u);
}

TEST(Wire, GetBlockRoundTrip) {
  Hash32 h;
  h.bytes[31] = 0x42;
  Hash32 decoded;
  ASSERT_TRUE(DecodeGetBlock(EncodeGetBlock(h), decoded));
  EXPECT_EQ(decoded, h);
}

TEST(Wire, NewBlockRoundTripPreservesIdentity) {
  const chain::Block block = SampleBlock();
  chain::Block decoded;
  std::uint64_t td = 0;
  ASSERT_TRUE(DecodeNewBlock(EncodeNewBlock(block, 999), decoded, td));
  EXPECT_EQ(td, 999u);
  EXPECT_EQ(decoded.hash, block.hash);  // keccak(rlp(header)) survives
  ASSERT_EQ(decoded.transactions.size(), 2u);
  EXPECT_EQ(decoded.transactions[0].hash, block.transactions[0].hash);
  ASSERT_EQ(decoded.uncles.size(), 1u);
  EXPECT_EQ(decoded.uncles[0].Hash(), block.uncles[0].Hash());
}

TEST(Wire, DecodersRejectGarbage) {
  const rlp::Bytes junk{0xde, 0xad, 0xbe, 0xef};
  Status status;
  EXPECT_FALSE(DecodeStatus(junk, status));
  std::vector<Announcement> anns;
  EXPECT_FALSE(DecodeAnnouncements(junk, anns));
  chain::Block block;
  std::uint64_t td;
  EXPECT_FALSE(DecodeNewBlock(junk, block, td));
  // Wrong arity: a status used as GetBlock.
  Hash32 h;
  EXPECT_FALSE(DecodeGetBlock(EncodeStatus(Status{}), h));
}

TEST(Wire, WireSizesMatchEncodings) {
  const chain::Block block = SampleBlock();
  EXPECT_EQ(NewBlockWireSize(block), EncodeNewBlock(block, 1).size() + 1);
  EXPECT_EQ(GetBlockWireSize(), EncodeGetBlock(Hash32{}).size() + 1);
  EXPECT_EQ(AnnouncementsWireSize(3),
            EncodeAnnouncements(std::vector<Announcement>(3)).size() + 1);

  // The coarse EncodedSize() heuristic the relay uses stays within ~25% of
  // the exact RLP size for realistic blocks.
  const double exact = static_cast<double>(NewBlockWireSize(block));
  const double heuristic = static_cast<double>(block.EncodedSize());
  EXPECT_NEAR(heuristic / exact, 1.0, 0.45);
}

TEST(Wire, BigBlockEncodesProportionally) {
  chain::Block small = SampleBlock();
  chain::Block big = small;
  for (std::uint64_t n = 2; n < 102; ++n)
    big.transactions.push_back(chain::MakeTransaction(Addr(1), n, Addr(2), 1, 1));
  big.Seal();
  const std::size_t small_size = NewBlockWireSize(small);
  const std::size_t big_size = NewBlockWireSize(big);
  EXPECT_GT(big_size, small_size + 100 * 60);  // ~100 extra txs of >=60B each
}

}  // namespace
}  // namespace ethsim::eth::wire
