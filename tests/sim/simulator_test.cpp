#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ethsim::sim {
namespace {

using namespace ethsim::literals;

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.Now().micros(), 0);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.Schedule(30_ms, [&] { order.push_back(3); });
  s.Schedule(10_ms, [&] { order.push_back(1); });
  s.Schedule(20_ms, [&] { order.push_back(2); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now().millis(), 30.0);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.Schedule(5_ms, [&, i] { order.push_back(i); });
  s.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesDuringEvent) {
  Simulator s;
  TimePoint seen;
  s.Schedule(42_ms, [&] { seen = s.Now(); });
  s.RunAll();
  EXPECT_EQ(seen.millis(), 42.0);
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  Simulator s;
  std::vector<double> fire_times;
  s.Schedule(10_ms, [&] {
    fire_times.push_back(s.Now().millis());
    s.Schedule(5_ms, [&] { fire_times.push_back(s.Now().millis()); });
  });
  s.RunAll();
  EXPECT_EQ(fire_times, (std::vector<double>{10.0, 15.0}));
}

TEST(Simulator, ZeroDelayRunsAtCurrentTimeAfterCurrentEvent) {
  Simulator s;
  std::vector<int> order;
  s.Schedule(1_ms, [&] {
    order.push_back(1);
    s.Schedule(Duration::Micros(0), [&] { order.push_back(2); });
    order.push_back(3);  // runs before the zero-delay event
  });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, RunUntilStopsAndSetsClock) {
  Simulator s;
  int ran = 0;
  s.Schedule(10_ms, [&] { ++ran; });
  s.Schedule(100_ms, [&] { ++ran; });
  const std::uint64_t n = s.RunUntil(TimePoint::FromMicros(50'000));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.Now().millis(), 50.0);
  EXPECT_EQ(s.pending(), 1u);
  s.RunAll();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, RunUntilInclusiveOfBoundary) {
  Simulator s;
  int ran = 0;
  s.Schedule(50_ms, [&] { ++ran; });
  s.RunUntil(TimePoint::FromMicros(50'000));
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int ran = 0;
  EventHandle h = s.Schedule(10_ms, [&] { ++ran; });
  s.Schedule(20_ms, [&] { ++ran; });
  s.Cancel(h);
  s.RunAll();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, CancelAfterRunIsNoop) {
  Simulator s;
  int ran = 0;
  EventHandle h = s.Schedule(10_ms, [&] { ++ran; });
  s.RunAll();
  s.Cancel(h);  // must not affect later events with recycled state
  s.Schedule(5_ms, [&] { ++ran; });
  s.RunAll();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, DefaultHandleIsInvalidAndCancelIsSafe) {
  Simulator s;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  s.Cancel(h);
  int ran = 0;
  s.Schedule(1_ms, [&] { ++ran; });
  s.RunAll();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 25; ++i) s.Schedule(Duration::Millis(i), [] {});
  s.RunAll();
  EXPECT_EQ(s.events_executed(), 25u);
}

// Regression for the seed engine's tombstone leak: cancelling a handle whose
// event already fired must not be able to cancel an unrelated later event
// that happens to recycle the same slot.
TEST(Simulator, StaleHandleCannotCancelRecycledSlot) {
  Simulator s;
  int ran = 0;
  EventHandle stale = s.Schedule(1_ms, [&] { ++ran; });
  s.RunAll();
  EXPECT_EQ(ran, 1);
  // The freed slot is recycled by the next Schedule; the stale handle's
  // generation no longer matches, so Cancel must be a true no-op.
  s.Schedule(1_ms, [&] { ++ran; });
  s.Cancel(stale);
  s.RunAll();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator s;
  int ran = 0;
  EventHandle h = s.Schedule(10_ms, [&] { ++ran; });
  s.Cancel(h);
  s.Cancel(h);  // second cancel must not touch the recycled slot
  s.Schedule(5_ms, [&] { ++ran; });  // likely reuses the freed slot
  s.Cancel(h);  // still stale
  s.RunAll();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, CancelUpdatesPendingAndSkipsDeadHeapEntries) {
  Simulator s;
  std::vector<EventHandle> handles;
  int ran = 0;
  for (int i = 0; i < 100; ++i)
    handles.push_back(s.Schedule(Duration::Millis(i + 1), [&] { ++ran; }));
  EXPECT_EQ(s.pending(), 100u);
  for (std::size_t i = 0; i < handles.size(); i += 2) s.Cancel(handles[i]);
  EXPECT_EQ(s.pending(), 50u);
  s.RunAll();
  EXPECT_EQ(ran, 50);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.events_executed(), 50u);  // dead heap entries don't count
}

TEST(Simulator, CancelEverythingRunsNothing) {
  Simulator s;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1'000; ++i)
    handles.push_back(s.Schedule(Duration::Millis(i), [] { FAIL(); }));
  for (const EventHandle h : handles) s.Cancel(h);
  EXPECT_EQ(s.pending(), 0u);
  s.RunAll();
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Simulator, HandlerCanCancelLaterEvent) {
  Simulator s;
  int ran = 0;
  EventHandle victim = s.Schedule(20_ms, [&] { ++ran; });
  s.Schedule(10_ms, [&] { s.Cancel(victim); });
  s.RunAll();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(s.events_executed(), 1u);
}

TEST(Simulator, SlotsRecycleAcrossPhases) {
  // Steady-state churn (the mining-retarget pattern: schedule, cancel,
  // reschedule) must not grow per-event state without bound. We can't inspect
  // arena internals, but pending() returning to zero every phase plus the
  // stale-handle no-op semantics pin the recycling contract.
  Simulator s;
  int ran = 0;
  std::vector<EventHandle> old;
  for (int phase = 0; phase < 50; ++phase) {
    std::vector<EventHandle> handles;
    for (int i = 0; i < 40; ++i)
      handles.push_back(s.Schedule(Duration::Micros(i), [&] { ++ran; }));
    for (int i = 0; i < 40; i += 2) s.Cancel(handles[static_cast<std::size_t>(i)]);
    for (const EventHandle h : old) s.Cancel(h);  // all stale: no-ops
    old = std::move(handles);
    s.RunAll();
    EXPECT_EQ(s.pending(), 0u);
  }
  EXPECT_EQ(ran, 50 * 20);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator s;
  // Deterministic pseudo-random delays; verify monotone execution times.
  std::uint64_t x = 12345;
  double last = -1;
  int executed = 0;
  for (int i = 0; i < 10'000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto delay_us = static_cast<std::int64_t>(x % 1'000'000);
    s.Schedule(Duration::Micros(delay_us), [&] {
      const double now = s.Now().seconds();
      EXPECT_GE(now, last);
      last = now;
      ++executed;
    });
  }
  s.RunAll();
  EXPECT_EQ(executed, 10'000);
}

TEST(Simulator, MillionEventStressWithCancellations) {
  Simulator s;
  std::uint64_t x = 2024;
  std::vector<EventHandle> handles;
  handles.reserve(1'000'000);
  for (int i = 0; i < 1'000'000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    handles.push_back(
        s.Schedule(Duration::Micros(static_cast<std::int64_t>(x % 10'000'000)),
                   [] {}));
  }
  for (std::size_t i = 0; i < handles.size(); i += 3) s.Cancel(handles[i]);
  const std::size_t cancelled = (handles.size() + 2) / 3;
  EXPECT_EQ(s.pending(), handles.size() - cancelled);
  s.RunAll();
  EXPECT_EQ(s.events_executed(), handles.size() - cancelled);
  EXPECT_EQ(s.pending(), 0u);
  // Post-run stale cancels (the leak pattern the seed engine accumulated
  // tombstones for) must be harmless.
  for (std::size_t i = 1; i < handles.size(); i += 3) s.Cancel(handles[i]);
  int ran = 0;
  s.Schedule(1_ms, [&] { ++ran; });
  s.RunAll();
  EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace ethsim::sim
