#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ethsim::sim {
namespace {

using namespace ethsim::literals;

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.Now().micros(), 0);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.Schedule(30_ms, [&] { order.push_back(3); });
  s.Schedule(10_ms, [&] { order.push_back(1); });
  s.Schedule(20_ms, [&] { order.push_back(2); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now().millis(), 30.0);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.Schedule(5_ms, [&, i] { order.push_back(i); });
  s.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesDuringEvent) {
  Simulator s;
  TimePoint seen;
  s.Schedule(42_ms, [&] { seen = s.Now(); });
  s.RunAll();
  EXPECT_EQ(seen.millis(), 42.0);
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  Simulator s;
  std::vector<double> fire_times;
  s.Schedule(10_ms, [&] {
    fire_times.push_back(s.Now().millis());
    s.Schedule(5_ms, [&] { fire_times.push_back(s.Now().millis()); });
  });
  s.RunAll();
  EXPECT_EQ(fire_times, (std::vector<double>{10.0, 15.0}));
}

TEST(Simulator, ZeroDelayRunsAtCurrentTimeAfterCurrentEvent) {
  Simulator s;
  std::vector<int> order;
  s.Schedule(1_ms, [&] {
    order.push_back(1);
    s.Schedule(Duration::Micros(0), [&] { order.push_back(2); });
    order.push_back(3);  // runs before the zero-delay event
  });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, RunUntilStopsAndSetsClock) {
  Simulator s;
  int ran = 0;
  s.Schedule(10_ms, [&] { ++ran; });
  s.Schedule(100_ms, [&] { ++ran; });
  const std::uint64_t n = s.RunUntil(TimePoint::FromMicros(50'000));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.Now().millis(), 50.0);
  EXPECT_EQ(s.pending(), 1u);
  s.RunAll();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, RunUntilInclusiveOfBoundary) {
  Simulator s;
  int ran = 0;
  s.Schedule(50_ms, [&] { ++ran; });
  s.RunUntil(TimePoint::FromMicros(50'000));
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int ran = 0;
  EventHandle h = s.Schedule(10_ms, [&] { ++ran; });
  s.Schedule(20_ms, [&] { ++ran; });
  s.Cancel(h);
  s.RunAll();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, CancelAfterRunIsNoop) {
  Simulator s;
  int ran = 0;
  EventHandle h = s.Schedule(10_ms, [&] { ++ran; });
  s.RunAll();
  s.Cancel(h);  // must not affect later events with recycled state
  s.Schedule(5_ms, [&] { ++ran; });
  s.RunAll();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, DefaultHandleIsInvalidAndCancelIsSafe) {
  Simulator s;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  s.Cancel(h);
  int ran = 0;
  s.Schedule(1_ms, [&] { ++ran; });
  s.RunAll();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator s;
  for (int i = 0; i < 25; ++i) s.Schedule(Duration::Millis(i), [] {});
  s.RunAll();
  EXPECT_EQ(s.events_executed(), 25u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator s;
  // Deterministic pseudo-random delays; verify monotone execution times.
  std::uint64_t x = 12345;
  double last = -1;
  int executed = 0;
  for (int i = 0; i < 10'000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto delay_us = static_cast<std::int64_t>(x % 1'000'000);
    s.Schedule(Duration::Micros(delay_us), [&] {
      const double now = s.Now().seconds();
      EXPECT_GE(now, last);
      last = now;
      ++executed;
    });
  }
  s.RunAll();
  EXPECT_EQ(executed, 10'000);
}

}  // namespace
}  // namespace ethsim::sim
