#include "sim/callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace ethsim::sim {
namespace {

TEST(Callback, DefaultConstructedIsEmpty) {
  Callback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.stored_inline());
}

TEST(Callback, InvokesSmallLambda) {
  int ran = 0;
  Callback cb{[&] { ++ran; }};
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(ran, 2);
}

TEST(Callback, SmallCapturesStoredInline) {
  // The hot relay captures are two pointers + a hash + a counter; all of them
  // must stay inside the 64-byte buffer or the allocator creeps back into the
  // gossip profile.
  int a = 0;
  std::array<std::byte, 32> hash{};
  Callback cb{[&a, hash, seq = std::uint64_t{7}] {
    a += static_cast<int>(seq) + static_cast<int>(hash.size());
  }};
  EXPECT_TRUE(cb.stored_inline());
  cb();
  EXPECT_EQ(a, 39);
}

TEST(Callback, OversizedCaptureFallsBackToHeapAndStillRuns) {
  std::array<std::byte, Callback::kInlineSize + 8> big{};
  big[0] = std::byte{42};
  int seen = 0;
  Callback cb{[big, &seen] { seen = std::to_integer<int>(big[0]); }};
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.stored_inline());
  cb();
  EXPECT_EQ(seen, 42);
}

TEST(Callback, MoveTransfersInlinePayload) {
  int ran = 0;
  Callback a{[&] { ++ran; }};
  Callback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(ran, 1);
}

TEST(Callback, MoveTransfersHeapPayload) {
  std::array<int, 64> big{};
  big[63] = 9;
  int seen = 0;
  Callback a{[big, &seen] { seen = big[63]; }};
  ASSERT_FALSE(a.stored_inline());
  Callback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(seen, 9);
}

TEST(Callback, SupportsMoveOnlyCaptures) {
  auto value = std::make_unique<int>(31);
  Callback cb{[v = std::move(value)]() { *v += 1; }};
  EXPECT_TRUE(cb.stored_inline());  // unique_ptr fits easily
  cb();
  Callback moved{std::move(cb)};
  moved();
}

struct DtorCounter {
  explicit DtorCounter(int* counter) : counter_(counter) {}
  DtorCounter(DtorCounter&& other) noexcept
      : counter_(std::exchange(other.counter_, nullptr)) {}
  DtorCounter(const DtorCounter&) = delete;
  ~DtorCounter() {
    if (counter_ != nullptr) ++*counter_;
  }
  void operator()() const {}
  int* counter_;
};

TEST(Callback, ResetDestroysPayloadExactlyOnce) {
  int destroyed = 0;
  {
    Callback cb{DtorCounter{&destroyed}};
    EXPECT_EQ(destroyed, 0);
    cb.reset();
    EXPECT_EQ(destroyed, 1);
    cb.reset();  // idempotent
    EXPECT_EQ(destroyed, 1);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(Callback, MoveAssignmentDestroysPreviousPayload) {
  int first = 0;
  int second = 0;
  Callback a{DtorCounter{&first}};
  Callback b{DtorCounter{&second}};
  a = std::move(b);
  EXPECT_EQ(first, 1);   // a's original payload destroyed by the assignment
  EXPECT_EQ(second, 0);  // b's payload now lives in a
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  a.reset();
  EXPECT_EQ(second, 1);
}

TEST(Callback, DestructorReleasesHeapPayload) {
  // Run under ASan in CI: a leak here fails the job.
  int destroyed = 0;
  struct BigCounter {
    explicit BigCounter(int* c) : counter(c) {}
    void operator()() const {}
    ~BigCounter() {
      if (counter != nullptr) ++*counter;
    }
    BigCounter(BigCounter&& other) noexcept
        : counter(std::exchange(other.counter, nullptr)) {}
    int* counter;
    std::array<std::byte, Callback::kInlineSize + 1> pad{};
  };
  {
    Callback cb{BigCounter{&destroyed}};
    EXPECT_FALSE(cb.stored_inline());
  }
  EXPECT_EQ(destroyed, 1);
}

}  // namespace
}  // namespace ethsim::sim
