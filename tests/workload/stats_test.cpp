// Statistical contracts of the plan-mode traffic generator, checked on
// fixed seeds with deliberately loose bounds: Zipf hot-account skew
// (chi-squared against uniform), the log-normal fee model's location and
// spread, and the closed-loop position when the run ends before any client
// can reach its commit depth.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "chain/block_arena.hpp"
#include "eth/node.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace ethsim::workload {
namespace {

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every harness in the suite
  return arena;
}

chain::BlockPtr MakeGenesis() {
  chain::Block b;
  b.header.number = 0;
  b.header.difficulty = 1000;
  b.Seal();
  return Arena().Adopt(std::move(b));
}

// Minerless frontend fleet (same shape as generator_test's harness): nothing
// is ever included, so the submission log is a pure function of the
// workload RNG streams.
struct Harness {
  explicit Harness(std::size_t frontends) {
    net = std::make_unique<net::Network>(simulator, Rng{99},
                                         net::NetworkParams{});
    genesis = MakeGenesis();
    Rng ids{7};
    for (std::size_t i = 0; i < frontends; ++i) {
      const net::HostId host =
          net->AddHost({net::Region::WesternEurope, 1e9});
      nodes.push_back(std::make_unique<eth::EthNode>(
          simulator, *net, host, p2p::RandomNodeId(ids), genesis,
          eth::NodeConfig{}, ids.Fork(i)));
    }
  }

  WorkloadGenerator& Run(WorkloadPlan plan, Duration until,
                         std::uint64_t seed = 1234) {
    std::vector<eth::EthNode*> frontends;
    for (auto& n : nodes) frontends.push_back(n.get());
    generator = std::make_unique<WorkloadGenerator>(
        simulator, Rng{seed}, TxWorkloadParams{}, std::move(plan), frontends);
    generator->Start();
    simulator.RunUntil(TimePoint::FromMicros(until.micros()));
    return *generator;
  }

  sim::Simulator simulator;
  std::unique_ptr<net::Network> net;
  chain::BlockPtr genesis;
  std::vector<std::unique_ptr<eth::EthNode>> nodes;
  std::unique_ptr<WorkloadGenerator> generator;
};

// Pearson's X^2 of the per-sender counts against the uniform expectation.
double ChiSquaredVsUniform(const WorkloadGenerator& gen,
                           std::size_t accounts) {
  std::map<Address, std::uint64_t> counts;
  for (const SubmittedTx& rec : gen.submitted()) ++counts[rec.sender];
  EXPECT_LE(counts.size(), accounts);
  const double expected = static_cast<double>(gen.total_submitted()) /
                          static_cast<double>(accounts);
  double chi2 = 0.0;
  std::uint64_t seen = 0;
  for (const auto& [sender, count] : counts) {
    const double d = static_cast<double>(count) - expected;
    chi2 += d * d / expected;
    seen += count;
  }
  // Accounts that never fired still contribute their full expectation.
  chi2 += static_cast<double>(accounts - counts.size()) * expected;
  EXPECT_EQ(seen, gen.total_submitted());
  return chi2;
}

std::uint64_t TopSenderCount(const WorkloadGenerator& gen) {
  std::map<Address, std::uint64_t> counts;
  for (const SubmittedTx& rec : gen.submitted()) ++counts[rec.sender];
  std::uint64_t top = 0;
  for (const auto& [sender, count] : counts) top = std::max(top, count);
  return top;
}

TEST(WorkloadStats, ZipfSkewsTheAccountDistribution) {
  constexpr std::size_t kAccounts = 20;
  Harness zipf_h{3};
  WorkloadPlan zipf_plan;
  zipf_plan.Poisson("hot", 8.0, kAccounts);
  zipf_plan.last().zipf_exponent = 1.2;
  const auto& zipf_gen = zipf_h.Run(std::move(zipf_plan), Duration::Minutes(10));
  ASSERT_GT(zipf_gen.total_submitted(), 1000u);

  Harness flat_h{3};
  WorkloadPlan flat_plan;
  flat_plan.Poisson("flat", 8.0, kAccounts);  // zipf_exponent 0 = uniform
  const auto& flat_gen = flat_h.Run(std::move(flat_plan), Duration::Minutes(10));
  ASSERT_GT(flat_gen.total_submitted(), 1000u);

  // Under uniform draws X^2 ~ chi2(19) (mean 19); under Zipf 1.2 the hot
  // accounts blow it up by orders of magnitude. The thresholds are loose on
  // purpose — the seeds are fixed, the bounds just document the contract.
  const double zipf_chi2 = ChiSquaredVsUniform(zipf_gen, kAccounts);
  const double flat_chi2 = ChiSquaredVsUniform(flat_gen, kAccounts);
  EXPECT_GT(zipf_chi2, 5.0 * kAccounts);
  EXPECT_LT(flat_chi2, 3.0 * kAccounts);
  EXPECT_GT(zipf_chi2, 10.0 * flat_chi2);

  // The hottest account takes a multiple of the uniform share.
  const double uniform_share = 1.0 / kAccounts;
  const double top_share =
      static_cast<double>(TopSenderCount(zipf_gen)) /
      static_cast<double>(zipf_gen.total_submitted());
  EXPECT_GT(top_share, 3.0 * uniform_share);
}

TEST(WorkloadStats, LogNormalFeeModelHasTheConfiguredShape) {
  Harness h{3};
  WorkloadPlan plan;
  plan.Poisson("fees", 8.0, 40);
  plan.last().fee.gas_price_mu = 3.2;
  plan.last().fee.gas_price_sigma = 0.9;
  const auto& gen = h.Run(std::move(plan), Duration::Minutes(10));
  ASSERT_GT(gen.total_submitted(), 1000u);

  std::vector<double> prices;
  for (const SubmittedTx& rec : gen.submitted()) {
    ASSERT_GE(rec.gas_price, 1u);  // clamped to the positive fee floor
    prices.push_back(static_cast<double>(rec.gas_price));
  }
  std::sort(prices.begin(), prices.end());
  const double median = prices[prices.size() / 2];
  // Log-normal median = exp(mu) ~ 24.5; integer quantization and the fixed
  // seed keep it near but not exactly there.
  EXPECT_GT(median, 15.0);
  EXPECT_LT(median, 40.0);

  double log_sum = 0.0;
  for (const double p : prices) log_sum += std::log(p);
  const double log_mean = log_sum / static_cast<double>(prices.size());
  double log_var = 0.0;
  for (const double p : prices) {
    const double d = std::log(p) - log_mean;
    log_var += d * d;
  }
  log_var /= static_cast<double>(prices.size());
  // Loose windows around mu = 3.2, sigma = 0.9 (quantizing to integer gwei
  // biases the small-value tail).
  EXPECT_GT(log_mean, 2.8);
  EXPECT_LT(log_mean, 3.6);
  EXPECT_GT(std::sqrt(log_var), 0.6);
  EXPECT_LT(std::sqrt(log_var), 1.2);
}

TEST(WorkloadStats, ClosedLoopStallsWhenCommitDepthIsNeverReached) {
  constexpr std::size_t kClients = 6;
  Harness h{3};
  WorkloadPlan plan;
  plan.ClosedLoop("users", kClients, Duration::Seconds(1),
                  /*commit_depth=*/12);
  const auto& gen = h.Run(std::move(plan), Duration::Minutes(5));

  // No miners -> no inclusion -> no client ever reaches depth 12 before the
  // run ends: every client is stuck in flight on its first transaction.
  EXPECT_EQ(gen.total_submitted(), kClients);
  EXPECT_EQ(gen.closed_loop_completed(), 0u);
  EXPECT_EQ(gen.closed_loop_in_flight(), kClients);
  EXPECT_EQ(gen.replacements_issued(), 0u);
  for (const SubmittedTx& rec : gen.submitted()) {
    EXPECT_TRUE(rec.closed_loop);
    EXPECT_EQ(rec.nonce, 0u);  // everyone is still on their first tx
  }
}

}  // namespace
}  // namespace ethsim::workload
