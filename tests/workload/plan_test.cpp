#include "workload/plan.hpp"

#include <gtest/gtest.h>

#include "core/provenance.hpp"

namespace ethsim::workload {
namespace {

TEST(WorkloadPlan, EmptyByDefault) {
  WorkloadPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.Validate(), "");
}

TEST(WorkloadPlan, BuildersAppendInOrder) {
  WorkloadPlan plan;
  plan.Poisson("base", 2.0, 100)
      .Diurnal("na", 1.0, 50, net::Region::NorthAmerica)
      .FlashCrowd("surge", 0.5, 40, TimePoint::FromMicros(60'000'000),
                  Duration::Minutes(5), 6.0)
      .ClosedLoop("users", 20, Duration::Seconds(30), 3);
  ASSERT_EQ(plan.sources.size(), 4u);
  EXPECT_EQ(plan.sources[0].kind, SourceKind::kPoisson);
  EXPECT_EQ(plan.sources[1].kind, SourceKind::kDiurnal);
  EXPECT_EQ(plan.sources[2].kind, SourceKind::kFlashCrowd);
  EXPECT_EQ(plan.sources[3].kind, SourceKind::kClosedLoop);
  EXPECT_EQ(plan.sources[3].clients, 20u);
  EXPECT_EQ(plan.sources[3].commit_depth, 3u);
  EXPECT_EQ(plan.Validate(), "");
}

TEST(WorkloadPlan, LastExposesTheNewestSourceForTweaks) {
  WorkloadPlan plan;
  plan.Poisson("whales", 0.2, 10);
  plan.last().zipf_exponent = 1.2;
  plan.last().fee.replacement_deadline = Duration::Seconds(60);
  EXPECT_EQ(plan.sources[0].zipf_exponent, 1.2);
  EXPECT_EQ(plan.Validate(), "");
}

TEST(WorkloadPlanValidate, RejectsStructuralProblems) {
  {
    WorkloadPlan plan;
    plan.Poisson("", 1.0, 10);
    EXPECT_NE(plan.Validate().find("name"), std::string::npos);
  }
  {
    WorkloadPlan plan;
    plan.Poisson("a", 1.0, 10).Poisson("a", 2.0, 10);
    EXPECT_NE(plan.Validate().find("duplicate"), std::string::npos);
  }
  {
    WorkloadPlan plan;
    plan.Poisson("a", -1.0, 10);
    EXPECT_NE(plan.Validate().find("rate_per_sec"), std::string::npos);
  }
  {
    WorkloadPlan plan;
    plan.Poisson("a", 1.0, 0);
    EXPECT_NE(plan.Validate().find("accounts"), std::string::npos);
  }
  {
    WorkloadPlan plan;
    plan.Diurnal("d", 1.0, 10, net::Region::EasternAsia, /*amplitude=*/1.5);
    EXPECT_NE(plan.Validate().find("amplitude"), std::string::npos);
  }
  {
    WorkloadPlan plan;
    plan.FlashCrowd("f", 1.0, 10, TimePoint{}, Duration::Micros(0));
    EXPECT_NE(plan.Validate().find("surge_window"), std::string::npos);
  }
  {
    WorkloadPlan plan;
    plan.ClosedLoop("c", 0, Duration::Seconds(10));
    EXPECT_NE(plan.Validate().find("clients"), std::string::npos);
  }
  {
    WorkloadPlan plan;
    plan.Poisson("a", 1.0, 10);
    plan.last().fee.replacement_deadline = Duration::Seconds(30);
    plan.last().fee.escalation_factor = 1.0;  // cannot out-bid itself
    EXPECT_NE(plan.Validate().find("escalation_factor"), std::string::npos);
  }
}

TEST(WorkloadPlan, SourceKindNamesAreStable) {
  EXPECT_EQ(SourceKindName(SourceKind::kPoisson), "poisson");
  EXPECT_EQ(SourceKindName(SourceKind::kDiurnal), "diurnal");
  EXPECT_EQ(SourceKindName(SourceKind::kFlashCrowd), "flash_crowd");
  EXPECT_EQ(SourceKindName(SourceKind::kClosedLoop), "closed_loop");
}

TEST(WorkloadPlan, AccountAddressesAreDeterministicAndDistinct) {
  EXPECT_EQ(AccountAddress(7), AccountAddress(7));
  EXPECT_NE(AccountAddress(7), AccountAddress(8));
}

// --- Digest participation (the provenance contract) ------------------------

core::ExperimentConfig DigestConfig() {
  core::ExperimentConfig cfg = core::presets::SmallStudy(16);
  return cfg;
}

TEST(WorkloadPlanDigest, EmptyPlanKeepsTheLegacyDigest) {
  core::ExperimentConfig with_default = DigestConfig();
  core::ExperimentConfig explicit_empty = DigestConfig();
  explicit_empty.workload_plan = WorkloadPlan{};
  EXPECT_EQ(core::ConfigDigest(with_default),
            core::ConfigDigest(explicit_empty));
}

TEST(WorkloadPlanDigest, NonemptyPlanEntersTheDigest) {
  core::ExperimentConfig base = DigestConfig();
  core::ExperimentConfig planned = DigestConfig();
  planned.workload_plan.Poisson("base", 1.0, 50);
  EXPECT_NE(core::ConfigDigest(base), core::ConfigDigest(planned));
}

TEST(WorkloadPlanDigest, EverySourceFieldParticipates) {
  core::ExperimentConfig a = DigestConfig();
  a.workload_plan.Poisson("base", 1.0, 50);
  core::ExperimentConfig b = a;
  b.workload_plan.last().zipf_exponent = 0.9;
  EXPECT_NE(core::ConfigDigest(a), core::ConfigDigest(b));
  core::ExperimentConfig c = a;
  c.workload_plan.last().fee.replacement_deadline = Duration::Seconds(45);
  EXPECT_NE(core::ConfigDigest(a), core::ConfigDigest(c));
  core::ExperimentConfig d = a;
  d.workload_plan.last().account_offset = 1000;
  EXPECT_NE(core::ConfigDigest(a), core::ConfigDigest(d));
}

}  // namespace
}  // namespace ethsim::workload
