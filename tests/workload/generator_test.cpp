#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/block_arena.hpp"
#include "eth/node.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace ethsim::workload {
namespace {

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every harness in the suite
  return arena;
}

chain::BlockPtr MakeGenesis() {
  chain::Block b;
  b.header.number = 0;
  b.header.difficulty = 1000;
  b.Seal();
  return Arena().Adopt(std::move(b));
}

// A minimal frontend fleet with no miners: the generator submits into real
// EthNode txpools, but nothing is ever included, so the submission log is a
// pure function of the workload RNG streams.
struct Harness {
  explicit Harness(std::vector<net::Region> regions) {
    net = std::make_unique<net::Network>(simulator, Rng{99},
                                         net::NetworkParams{});
    genesis = MakeGenesis();
    Rng ids{7};
    for (std::size_t i = 0; i < regions.size(); ++i) {
      const net::HostId host = net->AddHost({regions[i], 1e9});
      nodes.push_back(std::make_unique<eth::EthNode>(
          simulator, *net, host, p2p::RandomNodeId(ids), genesis,
          eth::NodeConfig{}, ids.Fork(i)));
    }
  }

  std::vector<eth::EthNode*> Frontends() {
    std::vector<eth::EthNode*> out;
    for (auto& n : nodes) out.push_back(n.get());
    return out;
  }

  // Builds a generator, runs until `until`, returns it for inspection.
  WorkloadGenerator& Run(TxWorkloadParams params, WorkloadPlan plan,
                         Duration until, std::uint64_t seed = 1234) {
    generator = std::make_unique<WorkloadGenerator>(
        simulator, Rng{seed}, params, std::move(plan), Frontends());
    generator->Start();
    simulator.RunUntil(TimePoint::FromMicros(until.micros()));
    return *generator;
  }

  sim::Simulator simulator;
  std::unique_ptr<net::Network> net;
  chain::BlockPtr genesis;
  std::vector<std::unique_ptr<eth::EthNode>> nodes;
  std::unique_ptr<WorkloadGenerator> generator;
};

std::vector<net::Region> Uniform(std::size_t n,
                                 net::Region r = net::Region::WesternEurope) {
  return std::vector<net::Region>(n, r);
}

// --- Legacy mode ------------------------------------------------------------

TEST(WorkloadLegacy, PerSenderNoncesAreMonotonic) {
  Harness h{Uniform(3)};
  TxWorkloadParams params;
  params.rate_per_sec = 5.0;
  params.accounts = 20;
  const auto& gen = h.Run(params, WorkloadPlan{}, Duration::Minutes(10));
  ASSERT_GT(gen.total_submitted(), 100u);

  // Submission records are appended in nonce-assignment order, so each
  // sender's nonces must read 0, 1, 2, ... in log order.
  std::unordered_map<Address, std::uint64_t> expect;
  for (const SubmittedTx& rec : gen.submitted())
    EXPECT_EQ(rec.nonce, expect[rec.sender]++) << "sender nonce out of order";
}

TEST(WorkloadLegacy, InversionDelaysTheLowerNonce) {
  Harness h{Uniform(3)};
  TxWorkloadParams params;
  params.rate_per_sec = 4.0;
  params.accounts = 50;
  params.burst_prob = 1.0;
  params.inversion_prob = 1.0;
  const auto& gen = h.Run(params, WorkloadPlan{}, Duration::Minutes(5));

  // Every submission is half of a burst pair: consecutive records share a
  // sender with nonces n, n+1. Under inversion_prob=1 the lower nonce is the
  // delayed one — its (scheduled) submission time is never earlier than the
  // follow-up's.
  const auto& log = gen.submitted();
  ASSERT_GE(log.size(), 40u);
  std::size_t pairs = 0;
  for (std::size_t i = 0; i + 1 < log.size(); i += 2) {
    ASSERT_TRUE(log[i].part_of_burst);
    ASSERT_EQ(log[i].sender, log[i + 1].sender);
    ASSERT_EQ(log[i].nonce + 1, log[i + 1].nonce);
    EXPECT_GE(log[i].submitted_at.micros(), log[i + 1].submitted_at.micros());
    ++pairs;
  }
  EXPECT_GT(pairs, 20u);
}

TEST(WorkloadLegacy, WithoutInversionTheFollowUpTrailsByMilliseconds) {
  Harness h{Uniform(3)};
  TxWorkloadParams params;
  params.rate_per_sec = 4.0;
  params.accounts = 50;
  params.burst_prob = 1.0;
  params.inversion_prob = 0.0;
  const auto& gen = h.Run(params, WorkloadPlan{}, Duration::Minutes(5));

  const auto& log = gen.submitted();
  ASSERT_GE(log.size(), 40u);
  for (std::size_t i = 0; i + 1 < log.size(); i += 2) {
    const auto gap = log[i + 1].submitted_at - log[i].submitted_at;
    EXPECT_GE(gap.micros(), Duration::Millis(1).micros());
    EXPECT_LE(gap.micros(), Duration::Millis(40).micros());
  }
}

TEST(WorkloadLegacy, ZeroRateSubmitsNothing) {
  Harness h{Uniform(2)};
  TxWorkloadParams params;
  params.rate_per_sec = 0.0;
  const auto& gen = h.Run(params, WorkloadPlan{}, Duration::Minutes(5));
  EXPECT_EQ(gen.total_submitted(), 0u);
}

// --- Plan mode --------------------------------------------------------------

TEST(WorkloadPlanMode, PerSenderNoncesAreMonotonicAcrossSources) {
  Harness h{Uniform(3)};
  WorkloadPlan plan;
  // Two sources sharing an account range: the global nonce map must keep
  // each sender's stream gapless even under contention.
  plan.Poisson("a", 3.0, 10);
  plan.Poisson("b", 3.0, 10);  // same [0, 10) account range
  const auto& gen = h.Run(TxWorkloadParams{}, plan, Duration::Minutes(10));
  ASSERT_GT(gen.total_submitted(), 200u);

  std::unordered_map<Address, std::uint64_t> expect;
  for (const SubmittedTx& rec : gen.submitted())
    EXPECT_EQ(rec.nonce, expect[rec.sender]++);
  EXPECT_GT(gen.source_submitted(0), 0u);
  EXPECT_GT(gen.source_submitted(1), 0u);
}

TEST(WorkloadPlanMode, DisabledSourceDrawsNothingAndPerturbsNothing) {
  // RNG-stream isolation: adding a rate-0 source must not change a single
  // draw of the active source, because a disabled source never touches its
  // Fork(i) stream.
  WorkloadPlan solo;
  solo.Poisson("a", 2.0, 20);
  WorkloadPlan with_dead;
  with_dead.Poisson("a", 2.0, 20).Poisson("dead", 0.0, 20);

  Harness h1{Uniform(3)};
  const auto& g1 = h1.Run(TxWorkloadParams{}, solo, Duration::Minutes(10));
  Harness h2{Uniform(3)};
  const auto& g2 = h2.Run(TxWorkloadParams{}, with_dead, Duration::Minutes(10));

  ASSERT_GT(g1.total_submitted(), 100u);
  ASSERT_EQ(g1.total_submitted(), g2.total_submitted());
  EXPECT_EQ(g2.source_submitted(1), 0u);
  for (std::size_t i = 0; i < g1.submitted().size(); ++i) {
    EXPECT_EQ(g1.submitted()[i].hash, g2.submitted()[i].hash);
    EXPECT_EQ(g1.submitted()[i].submitted_at.micros(),
              g2.submitted()[i].submitted_at.micros());
  }
}

TEST(WorkloadPlanMode, ActiveSourcesAreStreamIsolatedFromEachOther) {
  // A second *active* source with a disjoint account range must leave the
  // first source's submissions bit-identical (its own Fork stream, its own
  // nonce space).
  WorkloadPlan solo;
  solo.Poisson("a", 2.0, 20);
  WorkloadPlan both;
  both.Poisson("a", 2.0, 20).Poisson("b", 5.0, 20);
  both.last().account_offset = 1000;

  Harness h1{Uniform(3)};
  const auto& g1 = h1.Run(TxWorkloadParams{}, solo, Duration::Minutes(10));
  Harness h2{Uniform(3)};
  const auto& g2 = h2.Run(TxWorkloadParams{}, both, Duration::Minutes(10));

  std::vector<const SubmittedTx*> a_only;
  for (const SubmittedTx& rec : g2.submitted())
    if (rec.source == 0) a_only.push_back(&rec);
  ASSERT_EQ(a_only.size(), g1.total_submitted());
  for (std::size_t i = 0; i < a_only.size(); ++i) {
    EXPECT_EQ(a_only[i]->hash, g1.submitted()[i].hash);
    EXPECT_EQ(a_only[i]->submitted_at.micros(),
              g1.submitted()[i].submitted_at.micros());
  }
}

TEST(WorkloadPlanMode, IdenticalSeedsReproduceTheLogExactly) {
  WorkloadPlan plan;
  plan.Poisson("a", 2.0, 30);
  plan.last().zipf_exponent = 1.1;
  plan.FlashCrowd("f", 0.5, 10, TimePoint::FromMicros(120'000'000),
                  Duration::Minutes(2), 6.0);
  plan.last().account_offset = 100;

  Harness h1{Uniform(3)};
  const auto& g1 = h1.Run(TxWorkloadParams{}, plan, Duration::Minutes(8));
  Harness h2{Uniform(3)};
  const auto& g2 = h2.Run(TxWorkloadParams{}, plan, Duration::Minutes(8));

  ASSERT_GT(g1.total_submitted(), 50u);
  ASSERT_EQ(g1.total_submitted(), g2.total_submitted());
  for (std::size_t i = 0; i < g1.submitted().size(); ++i)
    EXPECT_EQ(g1.submitted()[i].hash, g2.submitted()[i].hash);
}

TEST(WorkloadPlanMode, RegionAffinityPicksOnlyMatchingFrontends) {
  Harness h{{net::Region::NorthAmerica, net::Region::NorthAmerica,
             net::Region::EasternAsia, net::Region::WesternEurope}};
  WorkloadPlan plan;
  plan.Poisson("na-only", 3.0, 20);
  plan.last().region = static_cast<std::int32_t>(net::Region::NorthAmerica);
  const auto& gen = h.Run(TxWorkloadParams{}, plan, Duration::Minutes(10));
  ASSERT_GT(gen.total_submitted(), 100u);
  for (const SubmittedTx& rec : gen.submitted())
    EXPECT_EQ(rec.region,
              static_cast<std::uint8_t>(net::Region::NorthAmerica));
}

TEST(WorkloadPlanMode, ZipfConcentratesTrafficOnHotAccounts) {
  Harness h{Uniform(3)};
  WorkloadPlan plan;
  plan.Poisson("zipf", 5.0, 50);
  plan.last().zipf_exponent = 1.5;
  const auto& gen = h.Run(TxWorkloadParams{}, plan, Duration::Minutes(20));
  ASSERT_GT(gen.total_submitted(), 1000u);

  std::unordered_map<Address, std::uint64_t> per_sender;
  for (const SubmittedTx& rec : gen.submitted()) ++per_sender[rec.sender];
  const std::uint64_t hottest = per_sender[AccountAddress(0)];
  // s=1.5 over 50 accounts gives the hot account ~38% of the mass; a uniform
  // spread would give 2%. Assert well above uniform, well below everything.
  EXPECT_GT(hottest, gen.total_submitted() / 5);
  EXPECT_LT(hottest, gen.total_submitted());
}

TEST(WorkloadPlanMode, FlashCrowdMultipliesTheRateInsideTheWindow) {
  Harness h{Uniform(3)};
  WorkloadPlan plan;
  plan.FlashCrowd("surge", 0.5, 20, TimePoint::FromMicros(300'000'000),
                  Duration::Seconds(120), 10.0);
  const auto& gen = h.Run(TxWorkloadParams{}, plan, Duration::Minutes(10));

  std::uint64_t before = 0, inside = 0;
  for (const SubmittedTx& rec : gen.submitted()) {
    const std::int64_t t = rec.submitted_at.micros();
    if (t < 120'000'000) ++before;  // same-length window, baseline rate
    if (t >= 300'000'000 && t < 420'000'000) ++inside;
  }
  // Baseline expectation 60 txs vs 600 in the surge: demand a clear factor.
  EXPECT_GT(inside, before * 3);
}

TEST(WorkloadPlanMode, ReplacementEscalatesPricesUpToTheCap) {
  Harness h{Uniform(3)};
  WorkloadPlan plan;
  plan.Poisson("stuck", 1.0, 20);
  plan.last().fee.replacement_deadline = Duration::Seconds(20);
  plan.last().fee.escalation_factor = 1.5;
  plan.last().fee.max_replacements = 3;
  const auto& gen = h.Run(TxWorkloadParams{}, plan, Duration::Minutes(10));

  // No miner runs, so nothing is ever included: every tx escalates through
  // all its replacements.
  EXPECT_GT(gen.replacements_issued(), 0u);
  EXPECT_GT(gen.tracked_in_flight(), 0u);

  std::map<std::pair<Address, std::uint64_t>, std::vector<const SubmittedTx*>>
      groups;
  for (const SubmittedTx& rec : gen.submitted())
    groups[{rec.sender, rec.nonce}].push_back(&rec);

  std::size_t escalated_groups = 0;
  for (const auto& [key, recs] : groups) {
    if (recs.size() == 1) continue;
    ++escalated_groups;
    ASSERT_LE(recs.size(), 1u + 3u);  // original + max_replacements
    for (std::size_t i = 0; i + 1 < recs.size(); ++i) {
      EXPECT_EQ(recs[i]->replacement, i);
      EXPECT_LT(recs[i]->gas_price, recs[i + 1]->gas_price)
          << "replacement must out-bid its predecessor";
      EXPECT_NE(recs[i]->hash, recs[i + 1]->hash);
    }
  }
  EXPECT_GT(escalated_groups, 10u);
}

TEST(WorkloadPlanMode, ClosedLoopClientsStopAfterOneTxWithoutInclusions) {
  Harness h{Uniform(3)};
  WorkloadPlan plan;
  plan.ClosedLoop("users", 8, Duration::Seconds(10), 0);
  const auto& gen = h.Run(TxWorkloadParams{}, plan, Duration::Minutes(10));

  // With no miner nothing commits, so each client submits exactly once and
  // then waits forever.
  EXPECT_EQ(gen.total_submitted(), 8u);
  EXPECT_EQ(gen.closed_loop_in_flight(), 8u);
  EXPECT_EQ(gen.closed_loop_completed(), 0u);
  for (const SubmittedTx& rec : gen.submitted()) {
    EXPECT_TRUE(rec.closed_loop);
    EXPECT_EQ(rec.nonce, 0u);
  }
}

}  // namespace
}  // namespace ethsim::workload
