// Full-pipeline workload tests: plan-mode runs through the real experiment
// (miners included), closed-loop completion, demand reconciliation against
// analysis/commit, and the config-validation gate.
#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_map>

#include "analysis/commit.hpp"
#include "analysis/demand.hpp"
#include "core/experiment.hpp"

namespace ethsim {
namespace {

core::ExperimentConfig PlanConfig() {
  core::ExperimentConfig cfg = core::presets::SmallStudy(30);
  cfg.duration = Duration::Minutes(20);
  cfg.workload_plan.Poisson("base", 0.8, 100);
  cfg.workload_plan.Diurnal("na", 0.3, 40, net::Region::NorthAmerica);
  cfg.workload_plan.last().account_offset = 100;
  cfg.workload_plan.ClosedLoop("users", 10, Duration::Seconds(20), 1);
  cfg.workload_plan.last().account_offset = 200;
  return cfg;
}

analysis::StudyInputs InputsFor(const core::Experiment& exp) {
  analysis::StudyInputs inputs;
  for (const auto& obs : exp.observers()) inputs.observers.push_back(obs.get());
  inputs.minted = &exp.minted();
  inputs.pools = &exp.config().pools;
  inputs.reference = &exp.reference_tree();
  return inputs;
}

TEST(WorkloadExperiment, ClosedLoopClientsCompleteAndResubmit) {
  core::Experiment exp{PlanConfig()};
  exp.Run();
  const auto& gen = exp.workload();

  // With real mining the clients' txs commit, so the loop turns over: every
  // client finishes at least one cycle, and at most `clients` are in flight.
  EXPECT_GT(gen.closed_loop_completed(), 10u);
  EXPECT_LE(gen.closed_loop_in_flight(), 10u);
  EXPECT_GT(gen.source_submitted(2), 10u);
  EXPECT_GT(gen.source_included(2), 0u);

  // Per-sender nonce streams stay gapless across the whole mixed plan.
  std::unordered_map<Address, std::uint64_t> expect;
  for (const workload::SubmittedTx& rec : gen.submitted()) {
    if (rec.replacement != 0) continue;  // re-issues reuse their nonce
    EXPECT_EQ(rec.nonce, expect[rec.sender]++);
  }
}

TEST(WorkloadExperiment, DemandReconcilesWithCommitAnalysis) {
  core::ExperimentConfig cfg = PlanConfig();
  cfg.workload_plan.sources[0].fee.replacement_deadline =
      Duration::Seconds(90);
  core::Experiment exp{cfg};
  exp.Run();
  const auto inputs = InputsFor(exp);

  const std::vector<std::uint64_t> depths{0, 3};
  const auto commit = analysis::TransactionCommitTimes(inputs, depths);
  const auto demand = analysis::AnalyzeDemand(
      inputs, exp.workload().submitted(), exp.workload().plan(), depths);

  // The demand table's committed column uses the commit analysis' exact
  // eligibility rule, so the totals must agree and every committed tx must
  // trace back to a submission record.
  EXPECT_EQ(demand.committed_total, commit.committed_txs);
  EXPECT_EQ(demand.unattributed_committed, 0u);
  EXPECT_EQ(demand.offered_total, exp.workload().total_submitted());
  ASSERT_EQ(demand.per_source.size(), 3u);
  std::uint64_t source_sum = 0;
  for (const auto& row : demand.per_source) source_sum += row.committed;
  EXPECT_EQ(source_sum, demand.committed_total);
  EXPECT_GT(demand.included_total, 0u);

  // The rendered report carries every source row.
  const std::string report = analysis::RenderDemand(demand);
  EXPECT_NE(report.find("base"), std::string::npos);
  EXPECT_NE(report.find("users"), std::string::npos);
}

TEST(WorkloadExperiment, LegacyRunGetsOneSyntheticDemandRow) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(30);
  cfg.duration = Duration::Minutes(10);
  cfg.workload.rate_per_sec = 1.0;
  core::Experiment exp{cfg};
  exp.Run();
  const auto inputs = InputsFor(exp);
  const auto demand = analysis::AnalyzeDemand(
      inputs, exp.workload().submitted(), exp.workload().plan(), {0, 3});
  ASSERT_EQ(demand.per_source.size(), 1u);
  EXPECT_EQ(demand.per_source[0].name, "legacy");
  EXPECT_EQ(demand.offered_total, exp.workload().total_submitted());
  EXPECT_EQ(demand.committed_total,
            analysis::TransactionCommitTimes(inputs, {0, 3}).committed_txs);
}

TEST(WorkloadExperiment, PlanRunsAreDeterministic) {
  core::Experiment a{PlanConfig()};
  core::Experiment b{PlanConfig()};
  a.Run();
  b.Run();
  ASSERT_EQ(a.workload().total_submitted(), b.workload().total_submitted());
  for (std::size_t i = 0; i < a.workload().submitted().size(); ++i)
    EXPECT_EQ(a.workload().submitted()[i].hash,
              b.workload().submitted()[i].hash);
  EXPECT_EQ(a.reference_tree().head_hash(), b.reference_tree().head_hash());
}

// --- ExperimentConfig::Validate --------------------------------------------

TEST(ConfigValidate, AcceptsEveryPreset) {
  EXPECT_EQ(core::presets::SmallStudy(30).Validate(), "");
  EXPECT_EQ(PlanConfig().Validate(), "");
}

TEST(ConfigValidate, RejectsNegativeBurstAndInversionProbabilities) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(30);
  cfg.workload.burst_prob = -0.1;
  EXPECT_NE(cfg.Validate().find("burst_prob"), std::string::npos);
  cfg.workload.burst_prob = 0.3;
  cfg.workload.inversion_prob = 1.5;
  EXPECT_NE(cfg.Validate().find("inversion_prob"), std::string::npos);
}

TEST(ConfigValidate, RejectsMalformedPlans) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(30);
  cfg.workload_plan.Poisson("bad", -1.0, 10);
  EXPECT_NE(cfg.Validate().find("workload_plan"), std::string::npos);
}

TEST(ConfigValidate, RunRefusesAnInvalidConfig) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(30);
  cfg.duration = Duration::Minutes(1);
  cfg.workload.burst_prob = -0.5;
  core::Experiment exp{cfg};
  EXPECT_THROW(exp.Run(), std::invalid_argument);
}

}  // namespace
}  // namespace ethsim
