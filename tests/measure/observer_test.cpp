#include "measure/observer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "chain/block_arena.hpp"

namespace ethsim::measure {
namespace {

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every fixture in the suite
  return arena;
}


using namespace ethsim::literals;

chain::BlockPtr MakeGenesis() {
  chain::Block b;
  b.Seal();
  return Arena().Adopt(std::move(b));
}

chain::BlockPtr Child(const chain::BlockPtr& parent, std::uint64_t mix = 0) {
  chain::Block b;
  b.header.parent_hash = parent->hash;
  b.header.number = parent->header.number + 1;
  b.header.timestamp = parent->header.timestamp + 13;
  b.header.difficulty = 100;
  b.header.mix_seed = mix;
  b.Seal();
  return Arena().Adopt(std::move(b));
}

struct ObserverFixture : ::testing::Test {
  ObserverFixture() {
    net = std::make_unique<net::Network>(simulator, Rng{1}, net::NetworkParams{});
    genesis = MakeGenesis();
    for (int i = 0; i < 3; ++i) {
      const net::HostId host = net->AddHost({net::Region::WesternEurope, 1e9});
      Rng ids{static_cast<std::uint64_t>(i) + 10};
      nodes.push_back(std::make_unique<eth::EthNode>(
          simulator, *net, host, p2p::RandomNodeId(ids), genesis,
          eth::NodeConfig{}, Rng{static_cast<std::uint64_t>(i) + 50}));
    }
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = i + 1; j < 3; ++j)
        eth::EthNode::Connect(*nodes[i], *nodes[j]);
  }

  sim::Simulator simulator;
  std::unique_ptr<net::Network> net;
  chain::BlockPtr genesis;
  std::vector<std::unique_ptr<eth::EthNode>> nodes;
};

TEST_F(ObserverFixture, RecordsBlockArrivalsWithSkewedClock) {
  Observer obs{"WE", net::Region::WesternEurope, simulator, 50_ms};
  obs.Attach(*nodes[2]);

  const chain::BlockPtr b1 = Child(genesis);
  nodes[0]->InjectMinedBlock(b1);
  simulator.RunUntil(TimePoint::FromMicros((5_s).micros()));

  ASSERT_FALSE(obs.block_arrivals().empty());
  const auto it = obs.first_block_arrival().find(b1->hash);
  ASSERT_NE(it, obs.first_block_arrival().end());
  // Local time = true arrival + 50ms offset, so it must exceed the offset
  // plus some propagation.
  EXPECT_GT(it->second.millis(), 50.0);
  EXPECT_EQ(obs.name(), "WE");
  EXPECT_EQ(obs.clock_offset(), 50_ms);
}

TEST_F(ObserverFixture, NegativeOffsetShiftsTimestampsBack) {
  Observer fast{"A", net::Region::WesternEurope, simulator, 0_ms};
  Observer slow{"B", net::Region::WesternEurope, simulator,
                Duration::Millis(-20)};
  fast.Attach(*nodes[1]);
  slow.Attach(*nodes[2]);

  const chain::BlockPtr b1 = Child(genesis);
  nodes[0]->InjectMinedBlock(b1);
  simulator.RunUntil(TimePoint::FromMicros((5_s).micros()));

  const auto ta = fast.first_block_arrival().at(b1->hash);
  const auto tb = slow.first_block_arrival().at(b1->hash);
  // Both attached to symmetric nodes; B's clock reads ~20ms earlier than the
  // truth, so tb should be less than ta + jitter tolerance.
  EXPECT_LT(tb.millis(), ta.millis() + 15.0);
}

TEST_F(ObserverFixture, FirstArrivalKeepsEarliestAcrossRedundantCopies) {
  Observer obs{"WE", net::Region::WesternEurope, simulator, 0_ms};
  obs.Attach(*nodes[2]);

  const chain::BlockPtr b1 = Child(genesis);
  nodes[0]->InjectMinedBlock(b1);
  nodes[1]->InjectMinedBlock(b1);  // a second copy arrives from elsewhere
  simulator.RunUntil(TimePoint::FromMicros((5_s).micros()));

  // Redundant receptions recorded individually...
  std::size_t receptions = 0;
  for (const auto& arrival : obs.block_arrivals())
    if (arrival.hash == b1->hash) ++receptions;
  EXPECT_GE(receptions, 2u);
  // ...but the first-arrival index keeps the minimum.
  const TimePoint first = obs.first_block_arrival().at(b1->hash);
  for (const auto& arrival : obs.block_arrivals())
    if (arrival.hash == b1->hash) EXPECT_GE(arrival.local_time, first);
}

TEST_F(ObserverFixture, RecordsTransactionsAndImports) {
  Observer obs{"WE", net::Region::WesternEurope, simulator, 0_ms};
  obs.Attach(*nodes[2]);

  Address sender;
  sender.bytes[0] = 9;
  const auto tx = chain::MakeTransaction(sender, 0, sender, 1, 2);
  nodes[0]->SubmitTransaction(tx);
  simulator.RunUntil(TimePoint::FromMicros((2_s).micros()));

  ASSERT_TRUE(obs.first_tx_arrival().contains(tx.hash));
  ASSERT_FALSE(obs.tx_arrivals().empty());
  EXPECT_EQ(obs.tx_arrivals().front().sender, sender);
  EXPECT_EQ(obs.tx_arrivals().front().nonce, 0u);

  const chain::BlockPtr b1 = Child(genesis);
  nodes[0]->InjectMinedBlock(b1);
  simulator.RunUntil(TimePoint::FromMicros((10_s).micros()));
  ASSERT_FALSE(obs.imports().empty());
  EXPECT_EQ(obs.imports().back().hash, b1->hash);
  EXPECT_TRUE(obs.imports().back().new_head);
}

TEST_F(ObserverFixture, DistinguishesMessageKinds) {
  // Needs a cluster large enough that sqrt-push does not cover every peer,
  // so hash announcements actually occur.
  for (int i = 0; i < 9; ++i) {
    const net::HostId host = net->AddHost({net::Region::WesternEurope, 1e9});
    Rng ids{static_cast<std::uint64_t>(i) + 400};
    nodes.push_back(std::make_unique<eth::EthNode>(
        simulator, *net, host, p2p::RandomNodeId(ids), genesis,
        eth::NodeConfig{}, Rng{static_cast<std::uint64_t>(i) + 900}));
  }
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      eth::EthNode::Connect(*nodes[i], *nodes[j]);

  Observer obs{"WE", net::Region::WesternEurope, simulator, 0_ms};
  obs.Attach(*nodes[2]);
  chain::BlockPtr tip = genesis;
  for (int i = 0; i < 6; ++i) {
    tip = Child(tip, static_cast<std::uint64_t>(i));
    nodes[0]->InjectMinedBlock(tip);
    simulator.RunUntil(simulator.Now() + 3_s);
  }
  bool saw_full = false, saw_announcement = false;
  for (const auto& arrival : obs.block_arrivals()) {
    if (arrival.kind == eth::MessageSink::BlockMsgKind::kFullBlock)
      saw_full = true;
    if (arrival.kind == eth::MessageSink::BlockMsgKind::kAnnouncement)
      saw_announcement = true;
  }
  EXPECT_TRUE(saw_full);
  EXPECT_TRUE(saw_announcement);
}

}  // namespace
}  // namespace ethsim::measure
