#include "measure/dataset.hpp"

#include "chain/block_arena.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/propagation.hpp"
#include "core/experiment.hpp"

namespace ethsim::measure {
namespace {

using namespace ethsim::literals;

class DatasetFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ethsim_dataset_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

Dataset SyntheticDataset() {
  Dataset dataset;
  VantageLog vantage;
  vantage.name = "EA";
  vantage.region = net::Region::EasternAsia;
  vantage.clock_offset = Duration::Millis(-7);

  Hash32 h1 = FixedBytesFromHex<32>(
      "00000000000000000000000000000000000000000000000000000000000000aa");
  Hash32 h2 = FixedBytesFromHex<32>(
      "00000000000000000000000000000000000000000000000000000000000000bb");
  vantage.block_arrivals.push_back(
      {h1, 42, eth::MessageSink::BlockMsgKind::kFullBlock,
       TimePoint::FromMicros(1'000'000)});
  vantage.block_arrivals.push_back(
      {h1, 42, eth::MessageSink::BlockMsgKind::kAnnouncement,
       TimePoint::FromMicros(1'100'000)});
  Address sender;
  sender.bytes[0] = 3;
  vantage.tx_arrivals.push_back({h2, sender, 7, TimePoint::FromMicros(2'000'000)});
  vantage.imports.push_back({h1, 42, true, TimePoint::FromMicros(1'200'000)});
  dataset.vantages.push_back(vantage);

  CatalogBlock row;
  row.hash = h1;
  row.number = 42;
  row.parent = h2;
  row.pool = "Ethermine";
  row.empty = true;
  row.fork_sibling = false;
  row.mined_at = TimePoint::FromMicros(900'000);
  dataset.catalog.push_back(row);
  return dataset;
}

TEST_F(DatasetFixture, RoundTripPreservesEverything) {
  const Dataset original = SyntheticDataset();
  ASSERT_TRUE(WriteDataset(dir_.string(), original));

  Dataset loaded;
  ASSERT_TRUE(ReadDataset(dir_.string(), loaded));

  ASSERT_EQ(loaded.vantages.size(), 1u);
  const VantageLog& vantage = loaded.vantages[0];
  EXPECT_EQ(vantage.name, "EA");
  EXPECT_EQ(vantage.region, net::Region::EasternAsia);
  EXPECT_EQ(vantage.clock_offset.micros(), -7000);
  ASSERT_EQ(vantage.block_arrivals.size(), 2u);
  EXPECT_EQ(vantage.block_arrivals[0].hash,
            original.vantages[0].block_arrivals[0].hash);
  EXPECT_EQ(vantage.block_arrivals[0].number, 42u);
  EXPECT_EQ(vantage.block_arrivals[0].kind,
            eth::MessageSink::BlockMsgKind::kFullBlock);
  EXPECT_EQ(vantage.block_arrivals[1].kind,
            eth::MessageSink::BlockMsgKind::kAnnouncement);
  ASSERT_EQ(vantage.tx_arrivals.size(), 1u);
  EXPECT_EQ(vantage.tx_arrivals[0].nonce, 7u);
  EXPECT_EQ(vantage.tx_arrivals[0].sender.bytes[0], 3);
  ASSERT_EQ(vantage.imports.size(), 1u);
  EXPECT_TRUE(vantage.imports[0].new_head);

  ASSERT_EQ(loaded.catalog.size(), 1u);
  EXPECT_EQ(loaded.catalog[0].pool, "Ethermine");
  EXPECT_TRUE(loaded.catalog[0].empty);
  EXPECT_EQ(loaded.catalog[0].mined_at.micros(), 900'000);
}

TEST_F(DatasetFixture, ReadMissingDirectoryFails) {
  Dataset loaded;
  EXPECT_FALSE(ReadDataset((dir_ / "nope").string(), loaded));
}

TEST_F(DatasetFixture, ReadErrorNamesTheFailingFile) {
  Dataset loaded;
  std::string error;
  EXPECT_FALSE(ReadDataset((dir_ / "nope").string(), loaded, &error));
  // The diagnostic must carry the failing path and a reason, not just "no".
  EXPECT_NE(error.find("MANIFEST.tsv"), std::string::npos) << error;
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST_F(DatasetFixture, MalformedRecordReportsFileAndLine) {
  ASSERT_TRUE(WriteDataset(dir_.string(), SyntheticDataset()));
  {
    // Append a truncated record to the block log: line 1 is the header
    // comment, lines 2-3 are real records, so the damage lands on line 4.
    std::ofstream out(dir_ / "EA.blocks.tsv", std::ios::app);
    out << "1234\tnot-enough-fields\n";
  }
  Dataset loaded;
  std::string error;
  EXPECT_FALSE(ReadDataset(dir_.string(), loaded, &error));
  EXPECT_NE(error.find("EA.blocks.tsv"), std::string::npos) << error;
  EXPECT_NE(error.find("malformed record at line 4"), std::string::npos)
      << error;
}

TEST_F(DatasetFixture, NonNumericFieldIsAMalformedRecord) {
  ASSERT_TRUE(WriteDataset(dir_.string(), SyntheticDataset()));
  {
    std::ofstream out(dir_ / "EA.txs.tsv", std::ios::app);
    // Right field count, but the nonce is not a number — must be rejected
    // with a line diagnostic, not parsed as 0 or thrown through.
    out << "5000\t"
        << "00000000000000000000000000000000000000000000000000000000000000cc"
        << "\t0000000000000000000000000000000000000003\tNaN\n";
  }
  Dataset loaded;
  std::string error;
  EXPECT_FALSE(ReadDataset(dir_.string(), loaded, &error));
  EXPECT_NE(error.find("EA.txs.tsv"), std::string::npos) << error;
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST_F(DatasetFixture, WriteIntoUnwritableTargetReportsPath) {
  // A regular file where the dataset directory should be: create_directories
  // fails and the error names the offending path.
  std::filesystem::create_directories(dir_.parent_path());
  { std::ofstream out(dir_); out << "occupied"; }
  std::string error;
  EXPECT_FALSE(WriteDataset((dir_ / "sub").string(), SyntheticDataset(),
                            &error));
  EXPECT_NE(error.find((dir_ / "sub").string()), std::string::npos) << error;
}

TEST_F(DatasetFixture, ReplayObserverServesAnalysisIdentically) {
  // Run a small live study, snapshot + replay, and check the analysis
  // pipeline produces identical propagation numbers from the replay.
  core::ExperimentConfig cfg = core::presets::SmallStudy(25);
  cfg.duration = Duration::Minutes(8);
  cfg.workload.rate_per_sec = 0.5;
  core::Experiment exp{cfg};
  exp.Run();

  analysis::ObserverSet live;
  Dataset dataset;
  for (const auto& obs : exp.observers()) {
    live.push_back(obs.get());
    dataset.vantages.push_back(SnapshotObserver(*obs));
  }
  ASSERT_TRUE(WriteDataset(dir_.string(), dataset));
  Dataset loaded;
  ASSERT_TRUE(ReadDataset(dir_.string(), loaded));

  sim::Simulator dummy;
  std::vector<std::unique_ptr<Observer>> replayed;
  analysis::ObserverSet replay_set;
  for (const auto& vantage : loaded.vantages) {
    replayed.push_back(ReplayObserver(vantage, dummy));
    replay_set.push_back(replayed.back().get());
  }

  const auto live_result = analysis::BlockPropagationDelays(live);
  const auto replay_result = analysis::BlockPropagationDelays(replay_set);
  EXPECT_EQ(live_result.items, replay_result.items);
  EXPECT_EQ(live_result.delays_ms.count(), replay_result.delays_ms.count());
  EXPECT_DOUBLE_EQ(live_result.median_ms, replay_result.median_ms);
  EXPECT_DOUBLE_EQ(live_result.p99_ms, replay_result.p99_ms);
}

TEST_F(DatasetFixture, CatalogBuildAndReconstruction) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(20);
  cfg.duration = Duration::Minutes(10);
  cfg.workload.rate_per_sec = 0;
  core::Experiment exp{cfg};
  exp.Run();

  const auto catalog = BuildCatalog(exp.minted(), cfg.pools);
  ASSERT_EQ(catalog.size(), exp.minted().size());

  chain::BlockArena arena;
  const auto minted = ReconstructMintRecords(arena, catalog, cfg.pools);
  ASSERT_EQ(minted.size(), exp.minted().size());
  for (std::size_t i = 0; i < minted.size(); ++i) {
    EXPECT_EQ(minted[i].block->hash, exp.minted()[i].block->hash);
    EXPECT_EQ(minted[i].pool_index, exp.minted()[i].pool_index);
    EXPECT_EQ(minted[i].is_fork_sibling, exp.minted()[i].is_fork_sibling);
  }
}

}  // namespace
}  // namespace ethsim::measure
