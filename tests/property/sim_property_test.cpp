// Property tests: the event queue is a total order, stable under ties, and
// cancellation-safe for arbitrary random schedules.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "sim/simulator.hpp"

namespace ethsim::sim {
namespace {

class SimulatorOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorOrdering, ExecutionIsTimeMonotoneWithStableTies) {
  Rng rng{GetParam()};
  Simulator simulator;

  struct Record {
    std::int64_t when_us;
    int seq;
  };
  std::vector<Record> executed;
  int seq = 0;
  for (int i = 0; i < 2000; ++i) {
    // Coarse buckets force plenty of exact ties.
    const auto when = static_cast<std::int64_t>(rng.NextBounded(50) * 1000);
    const int my_seq = seq++;
    simulator.Schedule(Duration::Micros(when), [&executed, when, my_seq] {
      executed.push_back({when, my_seq});
    });
  }
  simulator.RunAll();

  ASSERT_EQ(executed.size(), 2000u);
  for (std::size_t i = 1; i < executed.size(); ++i) {
    EXPECT_GE(executed[i].when_us, executed[i - 1].when_us);
    if (executed[i].when_us == executed[i - 1].when_us)
      EXPECT_GT(executed[i].seq, executed[i - 1].seq) << "tie not stable";
  }
}

TEST_P(SimulatorOrdering, RandomCancellationNeverFiresCancelled) {
  Rng rng{GetParam() ^ 0x5a5a};
  Simulator simulator;
  std::vector<EventHandle> handles;
  std::vector<bool> fired(500, false);
  for (int i = 0; i < 500; ++i) {
    handles.push_back(simulator.Schedule(
        Duration::Micros(static_cast<std::int64_t>(rng.NextBounded(100'000))),
        [&fired, i] { fired[static_cast<std::size_t>(i)] = true; }));
  }
  std::vector<bool> cancelled(500, false);
  for (int i = 0; i < 500; ++i) {
    if (rng.NextBool(0.4)) {
      simulator.Cancel(handles[static_cast<std::size_t>(i)]);
      cancelled[static_cast<std::size_t>(i)] = true;
    }
  }
  simulator.RunAll();
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(fired[static_cast<std::size_t>(i)],
              !cancelled[static_cast<std::size_t>(i)])
        << "event " << i;
}

TEST_P(SimulatorOrdering, RunUntilPartitionsExecutionExactly) {
  Rng rng{GetParam() ^ 0xc3c3};
  Simulator simulator;
  std::vector<std::int64_t> times;
  for (int i = 0; i < 800; ++i) {
    const auto when =
        static_cast<std::int64_t>(rng.NextBounded(1'000'000));
    times.push_back(when);
    simulator.Schedule(Duration::Micros(when), [] {});
  }
  const std::int64_t cut = 500'000;
  const std::uint64_t before = simulator.RunUntil(TimePoint::FromMicros(cut));
  std::uint64_t expected_before = 0;
  for (const auto t : times) expected_before += (t <= cut);
  EXPECT_EQ(before, expected_before);
  const std::uint64_t after = simulator.RunAll();
  EXPECT_EQ(before + after, times.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOrdering,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace ethsim::sim
