// Property test for the tx-lifecycle recorder's reorg path: under a regional
// partition that forces forks and heal-time reorgs, every transaction's
// stage timeline must stay monotone, orphan-returns must pair with a live
// inclusion (and re-inclusion is recorded at most once per return), commits
// must only happen while included, and each (tx, depth) commits at most
// once — across seeds, with zero runtime invariant violations.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "core/experiment.hpp"
#include "fault/plan.hpp"
#include "net/geo.hpp"
#include "obs/tx_provenance.hpp"

namespace ethsim {
namespace {

// resilience_partition shape: middle-third APAC split, sized to smoke scale.
core::ExperimentConfig PartitionConfig(std::uint64_t seed) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(24);
  cfg.duration = Duration::Minutes(12);
  cfg.workload.rate_per_sec = 0.5;
  cfg.seed = seed;
  cfg.telemetry.txprov = true;
  const TimePoint start = TimePoint::FromMicros(cfg.duration.micros() / 3);
  const Duration window = Duration::Micros(cfg.duration.micros() / 3);
  const std::uint32_t apac_mask =
      (1u << static_cast<unsigned>(net::Region::EasternAsia)) |
      (1u << static_cast<unsigned>(net::Region::SoutheastAsia)) |
      (1u << static_cast<unsigned>(net::Region::Oceania));
  cfg.fault_plan.RegionalPartition(start, window, apac_mask);
  return cfg;
}

struct TxTrack {
  std::int64_t last_t_us = INT64_MIN;
  std::uint64_t includes = 0;
  std::uint64_t orphans = 0;
  // Live-inclusion balance. The sim can include one tx in several canonical
  // blocks around a partition heal (independent pools each selected it), so
  // this is a count, mirroring the recorder's model.
  std::uint64_t live = 0;
};

TEST(TxProvReorgProperty, TimelinesSurvivePartitionReorgsAcrossSeeds) {
  std::uint64_t orphan_total = 0;
  for (const std::uint64_t seed : {42ull, 7ull, 1234ull}) {
    core::Experiment exp{PartitionConfig(seed)};
    exp.Run();
    ASSERT_NE(exp.telemetry(), nullptr);
    obs::TxProvRecorder* txprov = exp.telemetry()->txprov();
    ASSERT_NE(txprov, nullptr);
    // The runtime checker saw nothing wrong end to end.
    EXPECT_EQ(txprov->violations(), 0u) << "seed " << seed;

    const obs::TxProvLog& log = txprov->Finish();
    ASSERT_GT(log.size(), 0u) << "seed " << seed;

    std::unordered_map<std::uint64_t, TxTrack> txs;
    std::unordered_set<std::uint64_t> committed_keys;  // tx ^ hashed depth
    for (std::size_t i = 0; i < log.size(); ++i) {
      TxTrack& track = txs[log.tx[i]];
      // Per-tx stage times never go backwards (the global column may: legacy
      // bursts record their future submit timestamps at scheduling time).
      EXPECT_GE(log.t_us[i], track.last_t_us)
          << "seed " << seed << " record " << i;
      if (log.t_us[i] > track.last_t_us) track.last_t_us = log.t_us[i];

      switch (static_cast<obs::TxStage>(log.stage[i])) {
        case obs::TxStage::kIncluded:
          ++track.includes;
          ++track.live;
          break;
        case obs::TxStage::kOrphanReturned:
          // Every orphan-return pairs with an earlier recorded inclusion —
          // the return balance never outruns the include balance, so a
          // reorged tx is re-included (and re-recorded) at most once per
          // return.
          ++track.orphans;
          EXPECT_GT(track.live, 0u) << "seed " << seed << " record " << i;
          if (track.live > 0) --track.live;
          break;
        case obs::TxStage::kCommitted: {
          EXPECT_GT(track.live, 0u) << "seed " << seed << " record " << i;
          // Each (tx, depth) commits at most once, even across reorgs.
          const std::uint64_t key =
              log.tx[i] ^ (0x9e3779b97f4a7c15ull * (log.info[i] + 1));
          EXPECT_TRUE(committed_keys.insert(key).second)
              << "seed " << seed << " record " << i;
          break;
        }
        default:
          break;
      }
    }
    for (const auto& [tx, track] : txs) {
      (void)tx;
      orphan_total += track.orphans;
    }
  }
  // The partition actually exercised the orphan-return path somewhere in the
  // seed sweep; a sweep that never reorgs would test nothing.
  EXPECT_GT(orphan_total, 0u);
}

}  // namespace
}  // namespace ethsim
