// Property tests: TxPool consistency under random interleavings of
// submissions, inclusions, nonce jumps and rollbacks.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chain/txpool.hpp"
#include "common/random.hpp"

namespace ethsim::chain {
namespace {

Address Account(std::uint64_t index) {
  Address a;
  a.bytes[0] = static_cast<std::uint8_t>(index + 1);
  return a;
}

class TxPoolInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxPoolInvariants, CountsAndSelectionStayConsistent) {
  Rng rng{GetParam()};
  TxPool pool;
  constexpr std::size_t kAccounts = 6;

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t account = rng.NextBounded(kAccounts);
    const Address addr = Account(account);
    const std::uint64_t op = rng.NextBounded(10);

    if (op < 7) {
      // Submit a tx with a nonce near the account's current nonce (some
      // stale, some future).
      const std::uint64_t base = pool.AccountNonce(addr);
      const std::uint64_t nonce =
          base + rng.NextBounded(6) - std::min<std::uint64_t>(1, base);
      pool.Add(MakeTransaction(addr, nonce, addr, 1,
                               1 + rng.NextBounded(50),
                               static_cast<std::uint32_t>(rng.NextBounded(64))));
    } else if (op < 9) {
      // Include the account's executable prefix (as a mined block would).
      const auto selected = pool.SelectForBlock(8'000'000, 4);
      pool.RemoveIncluded(selected);
    } else {
      // Occasionally a reorg rolls an account back.
      const std::uint64_t current = pool.AccountNonce(addr);
      if (current > 0) pool.RollbackAccountNonce(addr, current - 1);
    }

    // Invariant 1: pending + queued == size.
    EXPECT_EQ(pool.pending_count() + pool.queued_count(), pool.size());

    // Structural invariants: sorted nonce runs, incremental executable
    // counts matching a from-scratch recount, price-index membership.
    ASSERT_TRUE(pool.CheckInvariants()) << "step " << step;

    // Invariant 2: selection respects per-sender nonce sequencing starting
    // exactly at the account nonce.
    const auto selected = pool.SelectForBlock(8'000'000, 100);
    std::map<Address, std::uint64_t> expected_next;
    for (const auto& tx : selected) {
      auto [it, inserted] =
          expected_next.try_emplace(tx.sender, pool.AccountNonce(tx.sender));
      EXPECT_EQ(tx.nonce, it->second) << "step " << step;
      ++it->second;
    }

    // Invariant 3: nothing stale is ever selected.
    for (const auto& tx : selected)
      EXPECT_GE(tx.nonce, pool.AccountNonce(tx.sender));
  }
}

TEST_P(TxPoolInvariants, SelectionIsPriceMonotoneAcrossIndependentHeads) {
  // Among the FIRST selected tx of each distinct sender, prices must be
  // non-increasing (heads are popped from a max-price heap).
  Rng rng{GetParam() ^ 0xbeef};
  TxPool pool;
  for (int i = 0; i < 60; ++i) {
    const Address addr = Account(rng.NextBounded(8));
    pool.Add(MakeTransaction(addr, pool.AccountNonce(addr) +
                                       rng.NextBounded(2),
                             addr, 1, 1 + rng.NextBounded(100)));
  }
  ASSERT_TRUE(pool.CheckInvariants());
  const auto selected = pool.SelectForBlock(8'000'000, 100);
  std::set<Address> seen;
  std::uint64_t last_head_price = UINT64_MAX;
  for (const auto& tx : selected) {
    if (seen.insert(tx.sender).second) {
      EXPECT_LE(tx.gas_price, last_head_price);
      last_head_price = tx.gas_price;
    }
  }
}

TEST_P(TxPoolInvariants, InclusionThenRollbackRestoresExecutability) {
  Rng rng{GetParam() ^ 0xfeed};
  TxPool pool;
  const Address addr = Account(0);
  std::vector<Transaction> txs;
  for (std::uint64_t n = 0; n < 10; ++n)
    txs.push_back(MakeTransaction(addr, n, addr, 1, 5));
  for (const auto& tx : txs) pool.Add(tx);
  EXPECT_EQ(pool.pending_count(), 10u);

  // Include a random prefix...
  const std::uint64_t k = 1 + rng.NextBounded(9);
  std::vector<Transaction> included(txs.begin(),
                                    txs.begin() + static_cast<std::ptrdiff_t>(k));
  pool.RemoveIncluded(included);
  EXPECT_EQ(pool.pending_count(), 10u - k);

  // ...then the block is reorged away: roll back and re-add.
  for (const auto& tx : included) {
    pool.RollbackAccountNonce(tx.sender, tx.nonce);
    pool.Add(tx);
  }
  EXPECT_EQ(pool.pending_count(), 10u);
  ASSERT_TRUE(pool.CheckInvariants());
  const auto selected = pool.SelectForBlock(8'000'000, 20);
  ASSERT_EQ(selected.size(), 10u);
  for (std::uint64_t n = 0; n < 10; ++n) EXPECT_EQ(selected[n].nonce, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxPoolInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47));

}  // namespace
}  // namespace ethsim::chain
