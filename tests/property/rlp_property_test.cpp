// Property tests: RLP encode/decode round-trips arbitrary nested structures
// bit-exactly, across many PRNG-driven shapes.
#include <gtest/gtest.h>

#include <memory>

#include "common/random.hpp"
#include "common/rlp.hpp"

namespace ethsim::rlp {
namespace {

// A randomly generated RLP document model.
struct Doc {
  bool is_list = false;
  Bytes data;
  std::vector<Doc> children;
};

Doc RandomDoc(Rng& rng, int depth) {
  Doc doc;
  doc.is_list = depth < 4 && rng.NextBool(0.4);
  if (doc.is_list) {
    const std::size_t n = rng.NextBounded(5);
    for (std::size_t i = 0; i < n; ++i)
      doc.children.push_back(RandomDoc(rng, depth + 1));
  } else {
    // Length classes chosen to cross every RLP header boundary:
    // empty / single byte / short string / 55-edge / long string.
    const std::uint64_t cls = rng.NextBounded(5);
    std::size_t len = 0;
    switch (cls) {
      case 0: len = 0; break;
      case 1: len = 1; break;
      case 2: len = 2 + rng.NextBounded(50); break;
      case 3: len = 54 + rng.NextBounded(3); break;  // 54,55,56
      default: len = 57 + rng.NextBounded(300); break;
    }
    doc.data.resize(len);
    for (auto& b : doc.data) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  }
  return doc;
}

void EncodeDoc(const Doc& doc, Encoder& e) {
  if (doc.is_list) {
    e.BeginList();
    for (const auto& child : doc.children) EncodeDoc(child, e);
    e.EndList();
  } else {
    e.WriteBytes(doc.data);
  }
}

void ExpectSame(const Doc& doc, const Item& item) {
  ASSERT_EQ(doc.is_list, item.is_list);
  if (doc.is_list) {
    ASSERT_EQ(doc.children.size(), item.items.size());
    for (std::size_t i = 0; i < doc.children.size(); ++i)
      ExpectSame(doc.children[i], item.items[i]);
  } else {
    EXPECT_EQ(doc.data, item.data);
  }
}

class RlpRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RlpRoundTrip, ArbitraryNestedStructures) {
  Rng rng{GetParam()};
  for (int iteration = 0; iteration < 50; ++iteration) {
    const Doc doc = RandomDoc(rng, 0);
    Encoder e;
    EncodeDoc(doc, e);
    const Bytes encoded = e.Take();

    Item item;
    ASSERT_TRUE(Decode(encoded, item)) << "iteration " << iteration;
    ExpectSame(doc, item);

    // Encoding is canonical: re-encoding the decoded form is identical.
    Encoder e2;
    std::function<void(const Item&)> reencode = [&](const Item& it) {
      if (it.is_list) {
        e2.BeginList();
        for (const auto& child : it.items) reencode(child);
        e2.EndList();
      } else {
        e2.WriteBytes(it.data);
      }
    };
    reencode(item);
    EXPECT_EQ(e2.Take(), encoded);
  }
}

TEST_P(RlpRoundTrip, UintsOfEveryMagnitude) {
  Rng rng{GetParam() ^ 0xabcdef};
  for (int bits = 0; bits < 64; ++bits) {
    const std::uint64_t v = (1ULL << bits) | (rng.Next() & ((1ULL << bits) - 1));
    Item item;
    ASSERT_TRUE(Decode(EncodeUint(v), item));
    EXPECT_EQ(item.AsUint(), v) << "bits=" << bits;
  }
}

TEST_P(RlpRoundTrip, TruncationAlwaysRejected) {
  Rng rng{GetParam() ^ 0x5eed};
  for (int iteration = 0; iteration < 20; ++iteration) {
    Encoder e;
    EncodeDoc(RandomDoc(rng, 0), e);
    Bytes encoded = e.Take();
    if (encoded.size() < 2) continue;
    encoded.resize(encoded.size() - 1 - rng.NextBounded(encoded.size() - 1));
    Item item;
    // Either rejected outright, or (if the prefix happens to be a valid
    // shorter item) it must NOT equal a silent success with trailing junk —
    // Decode enforces full consumption, so rejection is the only outcome.
    EXPECT_FALSE(Decode(encoded, item));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RlpRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ethsim::rlp
