// Property tests: BlockTree invariants hold for arbitrary block DAGs
// delivered in arbitrary orders (the situation real gossip produces).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "chain/block_arena.hpp"
#include "chain/blocktree.hpp"
#include "common/random.hpp"

namespace ethsim::chain {
namespace {

BlockArena& Arena() {
  static BlockArena arena;  // outlives every tree in the suite
  return arena;
}

struct GeneratedDag {
  BlockPtr genesis;
  std::vector<BlockPtr> blocks;  // excludes genesis
};

// Random tree of blocks: each new block picks a random existing parent,
// biased toward recent ones (like real mining on near-head forks).
GeneratedDag RandomDag(Rng& rng, std::size_t count) {
  GeneratedDag dag;
  Block g;
  g.header.difficulty = 1'000'000;
  g.Seal();
  dag.genesis = Arena().Adopt(std::move(g));

  std::vector<BlockPtr> all{dag.genesis};
  for (std::size_t i = 0; i < count; ++i) {
    // Bias: parent from the last 8 blocks 80% of the time.
    const std::size_t window = std::min<std::size_t>(all.size(), 8);
    const std::size_t parent_index =
        rng.NextBool(0.8) ? all.size() - 1 - rng.NextBounded(window)
                          : rng.NextBounded(all.size());
    const BlockPtr& parent = all[parent_index];

    Block b;
    b.header.parent_hash = parent->hash;
    b.header.number = parent->header.number + 1;
    b.header.difficulty = 900'000 + rng.NextBounded(200'000);
    b.header.timestamp = parent->header.timestamp + 1 + rng.NextBounded(30);
    b.header.miner.bytes[0] = static_cast<std::uint8_t>(rng.NextBounded(5));
    b.header.mix_seed = rng.Next();
    b.Seal();
    const BlockPtr ptr = Arena().Adopt(std::move(b));
    all.push_back(ptr);
    dag.blocks.push_back(ptr);
  }
  return dag;
}

class BlockTreeInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockTreeInvariants, HoldUnderArbitraryDeliveryOrder) {
  Rng rng{GetParam()};
  GeneratedDag dag = RandomDag(rng, 120);

  // Shuffle delivery order — orphaning and recursive attachment get a
  // thorough workout.
  std::vector<BlockPtr> order = dag.blocks;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.NextBounded(i)]);

  BlockTree tree{dag.genesis};
  std::int64_t tick = 0;
  for (const auto& block : order) {
    tree.Add(block, TimePoint::FromMicros(++tick));
    // Structural invariants after every insert: arena links acyclic, height
    // buckets consistent, canonical slots parent-linked, orphans pending.
    ASSERT_TRUE(tree.CheckInvariants()) << "after insert " << tick;
  }

  // 1. Every block was eventually attached (parents all exist in the DAG).
  EXPECT_EQ(tree.block_count(), dag.blocks.size() + 1);
  EXPECT_EQ(tree.orphan_count(), 0u);

  // 2. Head has the maximum total difficulty in the tree.
  const std::uint64_t head_td = tree.TotalDifficulty(tree.head_hash());
  for (const auto& block : tree.AllBlocks())
    EXPECT_LE(tree.TotalDifficulty(block->hash), head_td);

  // 3. The canonical chain is a connected parent->child path from genesis
  //    to head, and IsCanonical agrees with membership.
  const auto canonical = tree.CanonicalChain();
  ASSERT_FALSE(canonical.empty());
  EXPECT_EQ(canonical.front()->hash, tree.genesis_hash());
  EXPECT_EQ(canonical.back()->hash, tree.head_hash());
  for (std::size_t i = 1; i < canonical.size(); ++i) {
    EXPECT_EQ(canonical[i]->header.parent_hash, canonical[i - 1]->hash);
    EXPECT_EQ(canonical[i]->header.number, canonical[i - 1]->header.number + 1);
  }
  std::unordered_map<Hash32, bool> canonical_set;
  for (const auto& block : canonical) canonical_set.emplace(block->hash, true);
  for (const auto& block : tree.AllBlocks())
    EXPECT_EQ(tree.IsCanonical(block->hash), canonical_set.contains(block->hash));

  // 4. CanonicalAt matches the chain.
  for (const auto& block : canonical)
    EXPECT_EQ(tree.CanonicalAt(block->header.number), block->hash);

  // 5. Total difficulty telescopes along the canonical chain.
  std::uint64_t td = 0;
  for (const auto& block : canonical) {
    td += block->header.difficulty;
    EXPECT_EQ(tree.TotalDifficulty(block->hash), td);
  }
}

TEST_P(BlockTreeInvariants, DeliveryOrderDoesNotChangeFinalHeadTd) {
  Rng rng{GetParam() ^ 0x77};
  GeneratedDag dag = RandomDag(rng, 80);

  // Two different delivery orders; total difficulty of the winning head is
  // order-independent (head identity can differ only among exact TD ties).
  std::vector<BlockPtr> order1 = dag.blocks;
  std::vector<BlockPtr> order2 = dag.blocks;
  for (std::size_t i = order2.size(); i > 1; --i)
    std::swap(order2[i - 1], order2[rng.NextBounded(i)]);

  BlockTree tree1{dag.genesis};
  BlockTree tree2{dag.genesis};
  std::int64_t tick = 0;
  for (const auto& b : order1) tree1.Add(b, TimePoint::FromMicros(++tick));
  for (const auto& b : order2) tree2.Add(b, TimePoint::FromMicros(++tick));
  ASSERT_TRUE(tree1.CheckInvariants());
  ASSERT_TRUE(tree2.CheckInvariants());

  EXPECT_EQ(tree1.TotalDifficulty(tree1.head_hash()),
            tree2.TotalDifficulty(tree2.head_hash()));
  EXPECT_EQ(tree1.head_number(), tree2.head_number());
}

TEST_P(BlockTreeInvariants, UncleCandidatesAlwaysValid) {
  Rng rng{GetParam() ^ 0x1111};
  GeneratedDag dag = RandomDag(rng, 100);
  BlockTree tree{dag.genesis};
  std::int64_t tick = 0;
  for (const auto& b : dag.blocks) tree.Add(b, TimePoint::FromMicros(++tick));
  ASSERT_TRUE(tree.CheckInvariants());

  const auto uncles = tree.UncleCandidates(tree.head_hash());
  EXPECT_LE(uncles.size(), 2u);
  const std::uint64_t child = tree.head_number() + 1;
  for (const auto& uncle : uncles) {
    const Hash32 h = uncle.Hash();
    EXPECT_TRUE(tree.Contains(h));
    EXPECT_FALSE(tree.IsCanonical(h));
    EXPECT_GE(uncle.number + 6, child);
    EXPECT_LT(uncle.number, child);
    // Uncle's parent lies on the canonical ancestor path.
    EXPECT_TRUE(tree.IsCanonical(uncle.parent_hash));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockTreeInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 42,
                                           1337));

}  // namespace
}  // namespace ethsim::chain
