// Property tests: block dissemination reaches every node across topology
// families, degrees, relay modes, and loss rates.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "chain/block_arena.hpp"
#include "eth/node.hpp"

namespace ethsim::eth {
namespace {

chain::BlockArena& Arena() {
  static chain::BlockArena arena;  // outlives every cluster in the suite
  return arena;
}

chain::BlockPtr MakeGenesis() {
  chain::Block b;
  b.header.difficulty = 1000;
  b.Seal();
  return Arena().Adopt(std::move(b));
}

chain::BlockPtr Child(const chain::BlockPtr& parent, std::uint64_t mix) {
  chain::Block b;
  b.header.parent_hash = parent->hash;
  b.header.number = parent->header.number + 1;
  b.header.timestamp = parent->header.timestamp + 13;
  b.header.difficulty = 1000;
  b.header.mix_seed = mix;
  b.Seal();
  return Arena().Adopt(std::move(b));
}

struct World {
  World(std::size_t n, std::size_t degree, double drop, RelayMode mode,
        std::uint64_t seed) {
    net::NetworkParams params;
    params.drop_prob = drop;
    network = std::make_unique<net::Network>(simulator, Rng{seed}, params);
    genesis = MakeGenesis();
    Rng ids{seed ^ 0x1234};
    NodeConfig cfg;
    cfg.max_peers = degree * 3;
    cfg.relay_mode = mode;
    for (std::size_t i = 0; i < n; ++i) {
      const net::HostId host =
          network->AddHost({net::Region::WesternEurope, 1e9});
      nodes.push_back(std::make_unique<EthNode>(simulator, *network, host,
                                                p2p::RandomNodeId(ids), genesis,
                                                cfg, ids.Fork(i)));
    }
    // Connected topology: ring backbone + random chords up to `degree`.
    for (std::size_t i = 0; i < n; ++i)
      EthNode::Connect(*nodes[i], *nodes[(i + 1) % n]);
    Rng topo{seed ^ 0x9999};
    for (std::size_t i = 0; i < n; ++i)
      while (nodes[i]->peer_count() < degree) {
        const std::size_t j = topo.NextBounded(n);
        if (j == i) continue;
        if (!EthNode::Connect(*nodes[i], *nodes[j])) break;
      }
  }

  sim::Simulator simulator;
  std::unique_ptr<net::Network> network;
  chain::BlockPtr genesis;
  std::vector<std::unique_ptr<EthNode>> nodes;
};

using Params = std::tuple<std::size_t /*degree*/, double /*drop*/,
                          RelayMode, std::uint64_t /*seed*/>;

class GossipReachability : public ::testing::TestWithParam<Params> {};

TEST_P(GossipReachability, EveryNodeConvergesToTheTip) {
  const auto [degree, drop, mode, seed] = GetParam();
  World world{24, degree, drop, mode, seed};

  chain::BlockPtr tip = world.genesis;
  for (int i = 0; i < 6; ++i) {
    tip = Child(tip, static_cast<std::uint64_t>(i));
    world.nodes[static_cast<std::size_t>(i) % world.nodes.size()]
        ->InjectMinedBlock(tip);
    world.simulator.RunUntil(world.simulator.Now() + Duration::Seconds(13));
  }
  world.simulator.RunUntil(world.simulator.Now() + Duration::Seconds(120));

  std::size_t synced = 0;
  for (const auto& node : world.nodes)
    synced += node->tree().head_hash() == tip->hash;

  if (drop == 0.0) {
    EXPECT_EQ(synced, world.nodes.size());
  } else if (drop <= 0.15) {
    // With moderate loss, gossip redundancy reaches essentially everyone.
    EXPECT_GE(synced, world.nodes.size() - 2);
  } else {
    // Extreme loss: gossip alone recovers most nodes (fetch retries heal
    // chains as later blocks arrive); full recovery would need the periodic
    // header sync real clients run, which the relay layer doesn't model.
    EXPECT_GE(synced, world.nodes.size() * 85 / 100);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegreesDropsModes, GossipReachability,
    ::testing::Values(
        // Degree sweep, lossless, default relay.
        Params{2, 0.0, RelayMode::kSqrtPush, 1},
        Params{4, 0.0, RelayMode::kSqrtPush, 2},
        Params{8, 0.0, RelayMode::kSqrtPush, 3},
        Params{12, 0.0, RelayMode::kSqrtPush, 4},
        // Relay-mode sweep.
        Params{8, 0.0, RelayMode::kPushAll, 5},
        Params{8, 0.0, RelayMode::kAnnounceOnly, 6},
        // Loss sweep (redundancy as fault tolerance, SIII-A2).
        Params{8, 0.05, RelayMode::kSqrtPush, 7},
        Params{8, 0.15, RelayMode::kSqrtPush, 8},
        Params{12, 0.25, RelayMode::kSqrtPush, 9}));

}  // namespace
}  // namespace ethsim::eth
