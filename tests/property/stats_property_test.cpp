// Property tests: statistics utilities agree with brute-force references on
// arbitrary sample sets, and hashing primitives behave like functions.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/keccak.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"

namespace ethsim {
namespace {

class StatsAgainstReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsAgainstReference, RunningStatsMatchesBruteForce) {
  Rng rng{GetParam()};
  RunningStats stats;
  std::vector<double> values;
  const int n = 500 + static_cast<int>(rng.NextBounded(1000));
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextNormal(50, 20) + rng.NextExponential(5);
    stats.Add(x);
    values.push_back(x);
  }
  double sum = 0;
  for (double v : values) sum += v;
  const double mean = sum / n;
  double m2 = 0;
  for (double v : values) m2 += (v - mean) * (v - mean);

  EXPECT_EQ(stats.count(), static_cast<std::size_t>(n));
  EXPECT_NEAR(stats.mean(), mean, 1e-9 * std::abs(mean));
  EXPECT_NEAR(stats.variance(), m2 / n, 1e-6);
  EXPECT_DOUBLE_EQ(stats.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(stats.max(), *std::max_element(values.begin(), values.end()));
}

TEST_P(StatsAgainstReference, QuantileBracketsSortedNeighbors) {
  Rng rng{GetParam() ^ 0xaa};
  SampleSet set;
  std::vector<double> values;
  const int n = 100 + static_cast<int>(rng.NextBounded(400));
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextRange(-1000, 1000);
    set.Add(x);
    values.push_back(x);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double result = set.Quantile(q);
    const double rank = q * (n - 1);
    const double lo = values[static_cast<std::size_t>(rank)];
    const double hi =
        values[std::min<std::size_t>(static_cast<std::size_t>(rank) + 1,
                                     values.size() - 1)];
    EXPECT_GE(result, lo - 1e-9) << "q=" << q;
    EXPECT_LE(result, hi + 1e-9) << "q=" << q;
  }
}

TEST_P(StatsAgainstReference, CdfIsAProperDistributionFunction) {
  Rng rng{GetParam() ^ 0xbb};
  SampleSet set;
  for (int i = 0; i < 300; ++i) set.Add(rng.NextExponential(100));
  // Monotone, 0 at -inf side, 1 at +inf side; CdfAt(Quantile(q)) >= q.
  double last = 0;
  for (double x = 0; x < 1000; x += 25) {
    const double p = set.CdfAt(x);
    EXPECT_GE(p, last);
    last = p;
  }
  EXPECT_DOUBLE_EQ(set.CdfAt(-1), 0.0);
  EXPECT_DOUBLE_EQ(set.CdfAt(1e12), 1.0);
  for (double q : {0.1, 0.5, 0.9})
    EXPECT_GE(set.CdfAt(set.Quantile(q)), q - 1e-9);
}

TEST_P(StatsAgainstReference, HistogramConservesMass) {
  Rng rng{GetParam() ^ 0xcc};
  Histogram hist{0, 500, 25};
  const int n = 1000;
  for (int i = 0; i < n; ++i) hist.Add(rng.NextRange(-100, 700));
  std::uint64_t total = 0;
  double fraction = 0;
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    total += hist.count(b);
    fraction += hist.Fraction(b);
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(n));
  EXPECT_NEAR(fraction, 1.0, 1e-9);
}

TEST_P(StatsAgainstReference, KeccakChunkingInvariance) {
  Rng rng{GetParam() ^ 0xdd};
  std::string input;
  input.resize(300 + rng.NextBounded(500));
  for (auto& c : input) c = static_cast<char>(rng.NextBounded(256));
  const Hash32 expected = Keccak256Of(input);

  // Random chunk decomposition must hash identically.
  Keccak256 h;
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::size_t take =
        std::min<std::size_t>(1 + rng.NextBounded(150), input.size() - pos);
    h.Update(std::string_view(input).substr(pos, take));
    pos += take;
  }
  EXPECT_EQ(h.Final(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsAgainstReference,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ethsim
