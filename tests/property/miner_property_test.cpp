// Property tests: every block the mining layer emits is consensus-valid and
// consistent with its ground-truth mint record, across seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "chain/validation.hpp"
#include "core/experiment.hpp"

namespace ethsim::miner {
namespace {

class MinerInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinerInvariants, AllMintedBlocksAreConsensusValid) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(25);
  cfg.duration = Duration::Minutes(25);
  cfg.workload.rate_per_sec = 0.5;
  cfg.seed = GetParam();
  core::Experiment exp{cfg};
  exp.Run();

  const auto& tree = exp.reference_tree();
  std::size_t checked = 0;
  for (const auto& record : exp.minted()) {
    const chain::BlockPtr parent = tree.Get(record.block->header.parent_hash);
    if (!parent) continue;  // parent view lived on another node's tree
    EXPECT_EQ(chain::ValidateBlock(*record.block, parent->header),
              chain::ValidationError::kNone)
        << "block #" << record.block->header.number;
    ++checked;
  }
  EXPECT_GT(checked, exp.minted().size() / 2);
}

TEST_P(MinerInvariants, MintRecordsAreInternallyConsistent) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(25);
  cfg.duration = Duration::Minutes(25);
  cfg.workload.rate_per_sec = 0.5;
  cfg.seed = GetParam() ^ 0xf00d;
  core::Experiment exp{cfg};
  exp.Run();

  std::unordered_map<Hash32, const MintRecord*> by_hash;
  for (const auto& record : exp.minted()) by_hash[record.block->hash] = &record;

  for (const auto& record : exp.minted()) {
    // Coinbase matches the winning pool.
    EXPECT_EQ(record.block->header.miner,
              exp.config().pools[record.pool_index].coinbase);
    // Deliberate-empty records really are empty.
    if (record.deliberate_empty) EXPECT_TRUE(record.block->IsEmpty());
    // Fork siblings pair with a same-pool, same-height primary, and the
    // same-txset flag agrees with the tx-root comparison.
    if (record.is_fork_sibling) {
      const auto it = by_hash.find(record.primary_sibling);
      ASSERT_NE(it, by_hash.end());
      const MintRecord& primary = *it->second;
      EXPECT_EQ(primary.pool_index, record.pool_index);
      EXPECT_EQ(primary.block->header.number, record.block->header.number);
      EXPECT_NE(primary.block->hash, record.block->hash);
      EXPECT_EQ(record.same_txset_as_primary,
                primary.block->header.tx_root == record.block->header.tx_root);
    }
  }
}

TEST_P(MinerInvariants, WinnerCountsTrackShares) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(20);
  cfg.duration = Duration::Hours(2);
  cfg.workload.rate_per_sec = 0;
  cfg.seed = GetParam() ^ 0xcafe;
  core::Experiment exp{cfg};
  exp.Run();

  std::vector<std::size_t> counts(cfg.pools.size(), 0);
  std::size_t primaries = 0;
  for (const auto& record : exp.minted()) {
    if (record.is_fork_sibling) continue;
    ++counts[record.pool_index];
    ++primaries;
  }
  ASSERT_GT(primaries, 300u);
  // Chi-square-ish sanity: the two biggest pools land within 3 sigma of
  // their binomial expectation.
  for (std::size_t p = 0; p < 2; ++p) {
    const double share = cfg.pools[p].hashrate_share;
    const double expected = share * static_cast<double>(primaries);
    const double sigma = std::sqrt(expected * (1 - share));
    EXPECT_NEAR(static_cast<double>(counts[p]), expected, 3.5 * sigma)
        << cfg.pools[p].name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinerInvariants, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace ethsim::miner
