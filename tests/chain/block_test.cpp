#include "chain/block.hpp"

#include <gtest/gtest.h>

namespace ethsim::chain {
namespace {

Address Addr(std::uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

Block MakeBlock(std::uint64_t number, std::uint64_t mix_seed = 0) {
  Block b;
  b.header.number = number;
  b.header.difficulty = 1000;
  b.header.timestamp = number * 13;
  b.header.miner = Addr(1);
  b.header.mix_seed = mix_seed;
  b.Seal();
  return b;
}

TEST(Block, SealComputesHash) {
  const Block b = MakeBlock(7);
  EXPECT_FALSE(b.hash.is_zero());
  EXPECT_EQ(b.hash, b.header.Hash());
}

TEST(Block, HashDependsOnParent) {
  Block a = MakeBlock(7);
  Block b = MakeBlock(7);
  b.header.parent_hash.bytes[0] = 0xff;
  b.Seal();
  EXPECT_NE(a.hash, b.hash);
}

TEST(Block, MixSeedDistinguishesIdenticalContent) {
  // The one-miner-fork phenomenon (§III-C5): same miner, same height, same
  // transaction set — still two distinct blocks on the wire.
  const Block a = MakeBlock(7, /*mix_seed=*/1);
  const Block b = MakeBlock(7, /*mix_seed=*/2);
  EXPECT_EQ(a.header.tx_root, b.header.tx_root);
  EXPECT_NE(a.hash, b.hash);
}

TEST(Block, TxRootCommitsToTransactionsAndOrder) {
  Block a = MakeBlock(1);
  a.transactions.push_back(MakeTransaction(Addr(2), 0, Addr(3), 10, 1));
  a.transactions.push_back(MakeTransaction(Addr(2), 1, Addr(3), 10, 1));
  a.Seal();

  Block b = a;
  std::swap(b.transactions[0], b.transactions[1]);
  b.Seal();

  EXPECT_NE(a.header.tx_root, b.header.tx_root);
  EXPECT_NE(a.hash, b.hash);
}

TEST(Block, EmptyBlockHasDistinctTxRootFromNonEmpty) {
  Block empty = MakeBlock(1);
  Block full = MakeBlock(1);
  full.transactions.push_back(MakeTransaction(Addr(2), 0, Addr(3), 10, 1));
  full.Seal();
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(full.IsEmpty());
  EXPECT_NE(empty.header.tx_root, full.header.tx_root);
}

TEST(Block, GasUsedSumsTransactionGas) {
  Block b = MakeBlock(1);
  b.transactions.push_back(MakeTransaction(Addr(2), 0, Addr(3), 10, 1));       // 21k
  b.transactions.push_back(MakeTransaction(Addr(2), 1, Addr(3), 10, 1, 100));  // 22.6k
  b.Seal();
  EXPECT_EQ(b.header.gas_used, 21'000u + 22'600u);
}

TEST(Block, UncleRootCommitsToUncles) {
  Block plain = MakeBlock(5);
  Block with_uncle = MakeBlock(5);
  with_uncle.uncles.push_back(MakeBlock(4).header);
  with_uncle.Seal();
  EXPECT_NE(plain.header.uncle_root, with_uncle.header.uncle_root);
  EXPECT_NE(plain.hash, with_uncle.hash);
}

TEST(Block, EncodedSizeAccountsForBodyAndUncles) {
  Block b = MakeBlock(1);
  EXPECT_EQ(b.EncodedSize(), kHeaderWireSize);
  b.transactions.push_back(MakeTransaction(Addr(2), 0, Addr(3), 10, 1));
  b.uncles.push_back(MakeBlock(0).header);
  b.Seal();
  EXPECT_EQ(b.EncodedSize(), kHeaderWireSize + 110 + kHeaderWireSize);
}

TEST(Block, HeaderEncodingIsValidRlp) {
  const Block b = MakeBlock(123456);
  rlp::Item item;
  ASSERT_TRUE(rlp::Decode(EncodeHeader(b.header), item));
  ASSERT_TRUE(item.is_list);
  ASSERT_EQ(item.items.size(), 10u);
  EXPECT_EQ(item.items[1].AsUint(), 123456u);
}

}  // namespace
}  // namespace ethsim::chain
