#include "chain/txpool.hpp"

#include <gtest/gtest.h>

namespace ethsim::chain {
namespace {

Address Addr(std::uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

Transaction Tx(std::uint8_t sender, std::uint64_t nonce, std::uint64_t price = 1,
               std::uint32_t payload = 0) {
  return MakeTransaction(Addr(sender), nonce, Addr(200), 100, price, payload);
}

TEST(TxPool, InOrderArrivalsArePending) {
  TxPool pool;
  EXPECT_EQ(pool.Add(Tx(1, 0)), TxPool::AddOutcome::kPending);
  EXPECT_EQ(pool.Add(Tx(1, 1)), TxPool::AddOutcome::kPending);
  EXPECT_EQ(pool.pending_count(), 2u);
  EXPECT_EQ(pool.queued_count(), 0u);
}

TEST(TxPool, OutOfOrderArrivalIsQueuedThenPromoted) {
  TxPool pool;
  // Nonce 1 arrives before nonce 0 — the §III-C2 phenomenon.
  EXPECT_EQ(pool.Add(Tx(1, 1)), TxPool::AddOutcome::kQueued);
  EXPECT_EQ(pool.pending_count(), 0u);
  EXPECT_EQ(pool.queued_count(), 1u);

  EXPECT_EQ(pool.Add(Tx(1, 0)), TxPool::AddOutcome::kPending);
  // The gap closed; both are executable now.
  EXPECT_EQ(pool.pending_count(), 2u);
  EXPECT_EQ(pool.queued_count(), 0u);
}

TEST(TxPool, DuplicateHashIsKnown) {
  TxPool pool;
  const Transaction tx = Tx(1, 0);
  pool.Add(tx);
  EXPECT_EQ(pool.Add(tx), TxPool::AddOutcome::kKnown);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, StaleNonceRejected) {
  TxPool pool;
  pool.SetAccountNonce(Addr(1), 5);
  EXPECT_EQ(pool.Add(Tx(1, 4)), TxPool::AddOutcome::kStale);
  EXPECT_EQ(pool.Add(Tx(1, 5)), TxPool::AddOutcome::kPending);
}

TEST(TxPool, ReplacementRequiresHigherPrice) {
  TxPool pool;
  const Transaction cheap = Tx(1, 0, 10);
  const Transaction rich = Tx(1, 0, 20);
  const Transaction equal = Tx(1, 0, 10, 4);  // same price, different hash
  pool.Add(cheap);
  EXPECT_EQ(pool.Add(equal), TxPool::AddOutcome::kRejected);
  EXPECT_EQ(pool.Add(rich), TxPool::AddOutcome::kReplaced);
  EXPECT_TRUE(pool.Contains(rich.hash));
  EXPECT_FALSE(pool.Contains(cheap.hash));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, SelectRespectsPerSenderNonceOrder) {
  TxPool pool;
  pool.Add(Tx(1, 0, 5));
  pool.Add(Tx(1, 1, 50));  // higher price but must come after nonce 0
  const auto selected = pool.SelectForBlock(1'000'000, 10);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].nonce, 0u);
  EXPECT_EQ(selected[1].nonce, 1u);
}

TEST(TxPool, SelectPrefersHigherGasPriceAcrossSenders) {
  TxPool pool;
  pool.Add(Tx(1, 0, 1));
  pool.Add(Tx(2, 0, 100));
  pool.Add(Tx(3, 0, 10));
  const auto selected = pool.SelectForBlock(1'000'000, 10);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].gas_price, 100u);
  EXPECT_EQ(selected[1].gas_price, 10u);
  EXPECT_EQ(selected[2].gas_price, 1u);
}

TEST(TxPool, SelectStopsAtGasLimit) {
  TxPool pool;
  for (std::uint8_t s = 1; s <= 10; ++s) pool.Add(Tx(s, 0));
  // 3 plain transfers of 21k fit in 70k gas.
  const auto selected = pool.SelectForBlock(70'000, 100);
  EXPECT_EQ(selected.size(), 3u);
}

TEST(TxPool, SelectStopsAtMaxTxs) {
  TxPool pool;
  for (std::uint8_t s = 1; s <= 10; ++s) pool.Add(Tx(s, 0));
  EXPECT_EQ(pool.SelectForBlock(10'000'000, 4).size(), 4u);
}

TEST(TxPool, SelectExcludesQueuedTxs) {
  TxPool pool;
  pool.Add(Tx(1, 0));
  pool.Add(Tx(1, 2));  // gap at nonce 1
  const auto selected = pool.SelectForBlock(1'000'000, 10);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].nonce, 0u);
}

TEST(TxPool, RemoveIncludedAdvancesNonceAndPromotes) {
  TxPool pool;
  const Transaction t0 = Tx(1, 0);
  pool.Add(t0);
  pool.Add(Tx(1, 2));  // queued behind the gap
  pool.RemoveIncluded({t0});
  EXPECT_EQ(pool.AccountNonce(Addr(1)), 1u);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.queued_count(), 1u);

  pool.Add(Tx(1, 1));
  EXPECT_EQ(pool.pending_count(), 2u);
}

TEST(TxPool, RemoveIncludedOfUnknownTxStillAdvancesNonce) {
  // A block mined elsewhere can include transactions this node never pooled.
  TxPool pool;
  pool.Add(Tx(1, 1));  // queued (gap at 0)
  pool.RemoveIncluded({Tx(1, 0)});
  EXPECT_EQ(pool.AccountNonce(Addr(1)), 1u);
  EXPECT_EQ(pool.pending_count(), 1u);
}

TEST(TxPool, NonceJumpDropsStaleTxs) {
  TxPool pool;
  pool.Add(Tx(1, 0));
  pool.Add(Tx(1, 1));
  pool.Add(Tx(1, 5));
  pool.SetAccountNonce(Addr(1), 3);
  EXPECT_EQ(pool.size(), 1u);  // only nonce 5 survives
  EXPECT_EQ(pool.queued_count(), 1u);
}

TEST(TxPool, SelectIsDeterministicForEqualPrices) {
  TxPool pool1, pool2;
  // Insert in different orders; selection must be identical.
  pool1.Add(Tx(1, 0, 7));
  pool1.Add(Tx(2, 0, 7));
  pool1.Add(Tx(3, 0, 7));
  pool2.Add(Tx(3, 0, 7));
  pool2.Add(Tx(1, 0, 7));
  pool2.Add(Tx(2, 0, 7));
  const auto s1 = pool1.SelectForBlock(1'000'000, 10);
  const auto s2 = pool2.SelectForBlock(1'000'000, 10);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_EQ(s1[i].hash, s2[i].hash);
}

TEST(TxPool, LargeAccountStreamStaysConsistent) {
  TxPool pool;
  // 100 txs arriving in a scrambled but deterministic order.
  for (std::uint64_t i = 0; i < 100; ++i) pool.Add(Tx(1, (i * 37) % 100));
  EXPECT_EQ(pool.pending_count(), 100u);
  const auto selected = pool.SelectForBlock(21'000 * 100, 100);
  ASSERT_EQ(selected.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(selected[i].nonce, i);
}


// --- Incremental-index edge cases ------------------------------------------

TEST(TxPool, ReplacementSurvivesRollback) {
  TxPool pool;
  const Transaction cheap = Tx(1, 0, 10);
  const Transaction rich = Tx(1, 0, 20, 4);
  ASSERT_EQ(pool.Add(cheap), TxPool::AddOutcome::kPending);
  ASSERT_EQ(pool.Add(rich), TxPool::AddOutcome::kReplaced);

  // Mine the replacement, then reorg the block away.
  pool.RemoveIncluded({rich});
  EXPECT_EQ(pool.AccountNonce(Addr(1)), 1u);
  EXPECT_EQ(pool.size(), 0u);
  pool.RollbackAccountNonce(Addr(1), 0);
  EXPECT_EQ(pool.AccountNonce(Addr(1)), 0u);
  ASSERT_TRUE(pool.CheckInvariants());

  // The replacement's hash must be re-addable (it left the pool when it was
  // mined); the replaced tx's price bar is gone with it.
  EXPECT_EQ(pool.Add(rich), TxPool::AddOutcome::kPending);
  const auto selected = pool.SelectForBlock(8'000'000, 10);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].gas_price, 20u);
  ASSERT_TRUE(pool.CheckInvariants());
}

TEST(TxPool, GapFillPromotesWholeTail) {
  TxPool pool;
  // Queued tail at nonces 2..5, then 0, leaving exactly one gap at 1.
  for (std::uint64_t n = 2; n <= 5; ++n)
    ASSERT_EQ(pool.Add(Tx(1, n)), TxPool::AddOutcome::kQueued);
  ASSERT_EQ(pool.Add(Tx(1, 0)), TxPool::AddOutcome::kPending);
  EXPECT_EQ(pool.pending_count(), 1u);
  EXPECT_EQ(pool.queued_count(), 4u);

  // Filling the gap must cascade: 1 becomes pending AND drags 2..5 along.
  EXPECT_EQ(pool.Add(Tx(1, 1)), TxPool::AddOutcome::kPending);
  EXPECT_EQ(pool.pending_count(), 6u);
  EXPECT_EQ(pool.queued_count(), 0u);
  const auto selected = pool.SelectForBlock(8'000'000, 10);
  ASSERT_EQ(selected.size(), 6u);
  for (std::uint64_t n = 0; n < 6; ++n) EXPECT_EQ(selected[n].nonce, n);
  ASSERT_TRUE(pool.CheckInvariants());
}

TEST(TxPool, RemoveIncludedOfQueuedOnlyTx) {
  TxPool pool;
  // Nonce 3 is queued (gap at 0..2) — it was never pending here, but another
  // node mined the sender's 0..3 and the block includes this very tx.
  const Transaction queued = Tx(1, 3);
  ASSERT_EQ(pool.Add(queued), TxPool::AddOutcome::kQueued);
  EXPECT_EQ(pool.queued_count(), 1u);

  pool.RemoveIncluded({queued});
  // Inclusion advances the account past the queued nonce and evicts the tx.
  EXPECT_EQ(pool.AccountNonce(Addr(1)), 4u);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.pending_count(), 0u);
  EXPECT_EQ(pool.queued_count(), 0u);
  EXPECT_TRUE(pool.SelectForBlock(8'000'000, 10).empty());
  ASSERT_TRUE(pool.CheckInvariants());
}

}  // namespace
}  // namespace ethsim::chain
