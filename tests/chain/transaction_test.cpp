#include "chain/transaction.hpp"

#include <gtest/gtest.h>

#include "common/keccak.hpp"

namespace ethsim::chain {
namespace {

Address Addr(std::uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

TEST(Transaction, MakeSealsHash) {
  const Transaction tx = MakeTransaction(Addr(1), 0, Addr(2), 100, 5);
  EXPECT_FALSE(tx.hash.is_zero());
  const rlp::Bytes encoded = EncodeTransaction(tx);
  EXPECT_EQ(tx.hash, Keccak256Of(std::span<const std::uint8_t>(encoded.data(),
                                                               encoded.size())));
}

TEST(Transaction, HashCoversAllIdentityFields) {
  const Transaction base = MakeTransaction(Addr(1), 7, Addr(2), 100, 5, 32);

  Transaction t = base;
  t.nonce = 8;
  t.Seal();
  EXPECT_NE(t.hash, base.hash);

  t = base;
  t.value = 101;
  t.Seal();
  EXPECT_NE(t.hash, base.hash);

  t = base;
  t.gas_price = 6;
  t.Seal();
  EXPECT_NE(t.hash, base.hash);

  t = base;
  t.sender = Addr(3);
  t.Seal();
  EXPECT_NE(t.hash, base.hash);

  t = base;
  t.payload_bytes = 33;
  t.Seal();
  EXPECT_NE(t.hash, base.hash);
}

TEST(Transaction, IdenticalContentIdenticalHash) {
  const Transaction a = MakeTransaction(Addr(1), 3, Addr(2), 50, 2);
  const Transaction b = MakeTransaction(Addr(1), 3, Addr(2), 50, 2);
  EXPECT_EQ(a.hash, b.hash);
}

TEST(Transaction, EncodedSizeGrowsWithPayload) {
  const Transaction plain = MakeTransaction(Addr(1), 0, Addr(2), 1, 1, 0);
  const Transaction heavy = MakeTransaction(Addr(1), 0, Addr(2), 1, 1, 4096);
  EXPECT_EQ(plain.EncodedSize(), 110u);
  EXPECT_EQ(heavy.EncodedSize(), 110u + 4096u);
}

TEST(Transaction, GasLimitScalesWithCalldata) {
  const Transaction plain = MakeTransaction(Addr(1), 0, Addr(2), 1, 1, 0);
  const Transaction heavy = MakeTransaction(Addr(1), 0, Addr(2), 1, 1, 100);
  EXPECT_EQ(plain.gas_limit, 21'000u);
  EXPECT_EQ(heavy.gas_limit, 21'000u + 1600u);
}

TEST(Transaction, EncodingIsValidRlp) {
  const Transaction tx = MakeTransaction(Addr(9), 42, Addr(8), 1'000'000, 3, 16);
  rlp::Item item;
  ASSERT_TRUE(rlp::Decode(EncodeTransaction(tx), item));
  ASSERT_TRUE(item.is_list);
  ASSERT_EQ(item.items.size(), 7u);
  EXPECT_EQ(item.items[0].AsFixed<20>(), tx.sender);
  EXPECT_EQ(item.items[1].AsUint(), 42u);
  EXPECT_EQ(item.items[3].AsUint(), 1'000'000u);
}

}  // namespace
}  // namespace ethsim::chain
