#include "chain/validation.hpp"

#include <gtest/gtest.h>

namespace ethsim::chain {
namespace {

Address Addr(std::uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

struct ValidationFixture : ::testing::Test {
  ValidationFixture() {
    parent.number = 100;
    parent.difficulty = 1'000'000;
    parent.timestamp = 5000;
  }

  // A fully consistent child of `parent`.
  Block GoodChild() {
    Block b;
    b.header.parent_hash = parent.Hash();
    b.header.number = parent.number + 1;
    b.header.difficulty = 1'000'000;
    b.header.timestamp = parent.timestamp + 13;
    b.header.miner = Addr(1);
    b.Seal();
    return b;
  }

  BlockHeader parent;
};

TEST_F(ValidationFixture, WellFormedBlockPasses) {
  EXPECT_EQ(ValidateBlock(GoodChild(), parent), ValidationError::kNone);
}

TEST_F(ValidationFixture, TamperedHashRejected) {
  Block b = GoodChild();
  b.hash.bytes[0] ^= 1;
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kBadSeal);
}

TEST_F(ValidationFixture, WrongNumberRejected) {
  Block b = GoodChild();
  b.header.number = parent.number + 2;
  b.Seal();
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kBadNumber);
}

TEST_F(ValidationFixture, NonIncreasingTimestampRejected) {
  Block b = GoodChild();
  b.header.timestamp = parent.timestamp;
  b.Seal();
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kBadTimestamp);
}

TEST_F(ValidationFixture, TamperedTxRootRejected) {
  Block b = GoodChild();
  // Append a tx *after* sealing: commitment no longer matches.
  b.transactions.push_back(MakeTransaction(Addr(2), 0, Addr(3), 1, 1));
  b.header.gas_used = b.transactions[0].gas_limit;  // keep gas consistent
  b.hash = b.header.Hash();                         // re-cache, keep roots stale
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kBadTxRoot);
}

TEST_F(ValidationFixture, TamperedGasUsedRejected) {
  Block b = GoodChild();
  b.header.gas_used += 1;
  b.hash = b.header.Hash();
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kBadGasUsed);
}

TEST_F(ValidationFixture, GasOverLimitRejected) {
  Block b = GoodChild();
  b.header.gas_limit = 30'000;
  for (std::uint64_t n = 0; n < 2; ++n)
    b.transactions.push_back(MakeTransaction(Addr(2), n, Addr(3), 1, 1));
  b.Seal();  // 42k gas used > 30k limit, but roots consistent
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kGasOverLimit);
}

TEST_F(ValidationFixture, TooManyUnclesRejected) {
  Block b = GoodChild();
  for (std::uint64_t i = 0; i < 3; ++i) {
    BlockHeader uncle;
    uncle.number = parent.number;
    uncle.mix_seed = i;
    b.uncles.push_back(uncle);
  }
  b.Seal();
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kTooManyUncles);
}

TEST_F(ValidationFixture, DuplicateUncleRejected) {
  Block b = GoodChild();
  BlockHeader uncle;
  uncle.number = parent.number;
  b.uncles.push_back(uncle);
  b.uncles.push_back(uncle);
  b.Seal();
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kDuplicateUncle);
}

TEST_F(ValidationFixture, UncleOutsideWindowRejected) {
  Block b = GoodChild();
  BlockHeader uncle;
  uncle.number = parent.number - 7;  // child - 8: too deep
  b.uncles.push_back(uncle);
  b.Seal();
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kBadUncleRange);
}

TEST_F(ValidationFixture, ParentAsUncleRejected) {
  Block b = GoodChild();
  b.uncles.push_back(parent);
  b.Seal();
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kSelfUncle);
}

TEST_F(ValidationFixture, NonceRegressionInsideBlockRejected) {
  Block b = GoodChild();
  b.transactions.push_back(MakeTransaction(Addr(2), 5, Addr(3), 1, 1));
  b.transactions.push_back(MakeTransaction(Addr(2), 4, Addr(3), 1, 1));
  b.Seal();
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kNonceOrder);
}

TEST_F(ValidationFixture, InterleavedSendersAreFine) {
  Block b = GoodChild();
  b.transactions.push_back(MakeTransaction(Addr(2), 0, Addr(3), 1, 1));
  b.transactions.push_back(MakeTransaction(Addr(4), 7, Addr(3), 1, 1));
  b.transactions.push_back(MakeTransaction(Addr(2), 1, Addr(3), 1, 1));
  b.Seal();
  EXPECT_EQ(ValidateBlock(b, parent), ValidationError::kNone);
}

TEST_F(ValidationFixture, DifficultyFormulaEnforcedWhenRequested) {
  DifficultyParams params;
  Block b = GoodChild();
  b.header.difficulty = NextDifficulty(parent.difficulty, parent.timestamp,
                                       false, b.header.timestamp,
                                       b.header.number, params);
  b.Seal();
  EXPECT_EQ(ValidateBlock(b, parent, &params), ValidationError::kNone);

  b.header.difficulty += 12345;
  b.Seal();
  EXPECT_EQ(ValidateBlock(b, parent, &params), ValidationError::kBadDifficulty);
}

TEST_F(ValidationFixture, ErrorNamesAreStable) {
  EXPECT_EQ(ValidationErrorName(ValidationError::kNone), "none");
  EXPECT_EQ(ValidationErrorName(ValidationError::kBadSeal), "bad-seal");
  EXPECT_EQ(ValidationErrorName(ValidationError::kNonceOrder), "nonce-order");
}

}  // namespace
}  // namespace ethsim::chain
