#include "chain/difficulty.hpp"

#include <gtest/gtest.h>

namespace ethsim::chain {
namespace {

// 2019-era mainnet difficulty (~2000 TH) scaled into uint64 comfortably.
constexpr std::uint64_t kParentDiff = 2'000'000'000'000ULL;

TEST(Difficulty, FastBlockRaisesDifficulty) {
  const std::uint64_t d =
      NextDifficulty(kParentDiff, 1000, false, 1005, 7'500'000);  // 5 s child
  EXPECT_GT(d, kParentDiff);
}

TEST(Difficulty, SlowBlockLowersDifficulty) {
  const std::uint64_t d =
      NextDifficulty(kParentDiff, 1000, false, 1030, 7'500'000);  // 30 s child
  EXPECT_LT(d, kParentDiff);
}

TEST(Difficulty, NineSecondBoundaryIsNeutralWithoutUncles) {
  // elapsed in [9,17] => sensitivity 0 for uncle-free parents.
  const std::uint64_t d =
      NextDifficulty(kParentDiff, 1000, false, 1010, 7'500'000);
  // Only the (tiny at this height) bomb term moves it.
  EXPECT_NEAR(static_cast<double>(d), static_cast<double>(kParentDiff),
              static_cast<double>(kParentDiff) / 1000.0);
}

TEST(Difficulty, UnclesIncreaseTarget) {
  const std::uint64_t with_uncles =
      NextDifficulty(kParentDiff, 1000, true, 1010, 7'500'000);
  const std::uint64_t without =
      NextDifficulty(kParentDiff, 1000, false, 1010, 7'500'000);
  EXPECT_GT(with_uncles, without);
}

TEST(Difficulty, SensitivityClampsAtMinus99) {
  // An absurdly late block must not collapse difficulty to zero in one step.
  const std::uint64_t d =
      NextDifficulty(kParentDiff, 1000, false, 1000 + 100'000, 7'500'000);
  // Clamped adjustment plus the (Constantinople-delayed) bomb at this
  // height: fake = 2.5M, periods = 25, bomb = 2^23.
  const std::uint64_t floor =
      kParentDiff - (kParentDiff / 2048) * 99 + (1ULL << 23);
  EXPECT_EQ(d, floor);
}

TEST(Difficulty, MinimumIsEnforced) {
  DifficultyParams params;
  const std::uint64_t d =
      NextDifficulty(params.minimum_difficulty, 1000, false, 1000 + 10'000, 100);
  EXPECT_EQ(d, params.minimum_difficulty);
}

TEST(Difficulty, BombGrowsWithHeight) {
  // Byzantium delay (3M): at height 7.5M the bomb reads 4.5M -> 2^43.
  DifficultyParams byzantium;
  byzantium.bomb_delay_blocks = 3'000'000;
  const std::uint64_t early =
      NextDifficulty(kParentDiff, 1000, false, 1010, 7'200'000, byzantium);
  const std::uint64_t late =
      NextDifficulty(kParentDiff, 1000, false, 1010, 7'600'000, byzantium);
  EXPECT_GT(late, early);
}

TEST(Difficulty, ConstantinopleDelayShrinksBomb) {
  // The paper links the 14.3 s -> 13.3 s inter-block drop to EIP-1234: at the
  // same height, the Constantinople bomb term is far smaller than Byzantium's.
  DifficultyParams byzantium;
  byzantium.bomb_delay_blocks = 3'000'000;
  DifficultyParams constantinople;  // default 5M
  const std::uint64_t with_byz =
      NextDifficulty(kParentDiff, 1000, false, 1013, 7'500'000, byzantium);
  const std::uint64_t with_cons =
      NextDifficulty(kParentDiff, 1000, false, 1013, 7'500'000, constantinople);
  EXPECT_GT(with_byz, with_cons);
  // Byzantium bomb at fake height 4.5M: 2^(45-2) = 8.8e12 — comparable to the
  // base difficulty itself, i.e. clearly biting.
  EXPECT_GT(with_byz - with_cons, kParentDiff / 2);
}

TEST(Difficulty, BombBelowTriggerIsZero) {
  const std::uint64_t d1 =
      NextDifficulty(kParentDiff, 1000, false, 1010, 5'100'000);
  const std::uint64_t d2 =
      NextDifficulty(kParentDiff, 1000, false, 1010, 5'199'999);
  EXPECT_EQ(d1, d2);  // both below periods>=2 threshold under the 5M delay
}

}  // namespace
}  // namespace ethsim::chain
