#include "chain/blocktree.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "chain/block_arena.hpp"

namespace ethsim::chain {
namespace {

using namespace ethsim::literals;

BlockArena& Arena() {
  static BlockArena arena;  // outlives every tree in the suite
  return arena;
}

Address Addr(std::uint8_t tag) {
  Address a;
  a.bytes[19] = tag;
  return a;
}

BlockPtr MakeGenesis(std::uint64_t number = 0) {
  Block b;
  b.header.number = number;
  b.header.difficulty = 1000;
  b.Seal();
  return Arena().Adopt(std::move(b));
}

// Child with explicit difficulty and a mix_seed to force unique hashes.
BlockPtr Child(const BlockPtr& parent, std::uint64_t difficulty,
               std::uint64_t mix_seed = 0, Address miner = Addr(1)) {
  Block b;
  b.header.parent_hash = parent->hash;
  b.header.number = parent->header.number + 1;
  b.header.difficulty = difficulty;
  b.header.timestamp = parent->header.timestamp + 13;
  b.header.miner = miner;
  b.header.mix_seed = mix_seed;
  b.Seal();
  return Arena().Adopt(std::move(b));
}

TimePoint At(std::int64_t ms) { return TimePoint::FromMicros(ms * 1000); }

struct BlockTreeFixture : ::testing::Test {
  BlockPtr genesis = MakeGenesis();
  BlockTree tree{genesis};
};

TEST_F(BlockTreeFixture, GenesisIsHeadAndCanonical) {
  EXPECT_EQ(tree.head_hash(), genesis->hash);
  EXPECT_EQ(tree.head_number(), 0u);
  EXPECT_TRUE(tree.IsCanonical(genesis->hash));
  EXPECT_EQ(tree.block_count(), 1u);
  EXPECT_EQ(tree.TotalDifficulty(genesis->hash), 1000u);
}

TEST_F(BlockTreeFixture, LinearExtension) {
  const BlockPtr b1 = Child(genesis, 1000);
  const BlockPtr b2 = Child(b1, 1000);
  auto r1 = tree.Add(b1, At(1));
  EXPECT_EQ(r1.outcome, BlockTree::AddOutcome::kAddedNewHead);
  ASSERT_EQ(r1.adopted.size(), 1u);
  EXPECT_EQ(r1.adopted[0]->hash, b1->hash);
  EXPECT_TRUE(r1.retired.empty());

  tree.Add(b2, At(2));
  EXPECT_EQ(tree.head_hash(), b2->hash);
  EXPECT_EQ(tree.head_number(), 2u);
  EXPECT_EQ(tree.TotalDifficulty(b2->hash), 3000u);
  EXPECT_EQ(tree.CanonicalAt(1), b1->hash);
  EXPECT_EQ(tree.CanonicalChain().size(), 3u);
}

TEST_F(BlockTreeFixture, DuplicateIsReported) {
  const BlockPtr b1 = Child(genesis, 1000);
  tree.Add(b1, At(1));
  EXPECT_EQ(tree.Add(b1, At(2)).outcome, BlockTree::AddOutcome::kDuplicate);
  EXPECT_EQ(tree.block_count(), 2u);
  // First-seen time is preserved.
  EXPECT_EQ(tree.FirstSeen(b1->hash), At(1));
}

TEST_F(BlockTreeFixture, EqualDifficultyForkKeepsFirstSeenHead) {
  const BlockPtr a = Child(genesis, 1000, 1);
  const BlockPtr b = Child(genesis, 1000, 2);
  tree.Add(a, At(1));
  const auto r = tree.Add(b, At(2));
  EXPECT_EQ(r.outcome, BlockTree::AddOutcome::kAdded);
  EXPECT_EQ(tree.head_hash(), a->hash);
  EXPECT_TRUE(tree.IsCanonical(a->hash));
  EXPECT_FALSE(tree.IsCanonical(b->hash));
  EXPECT_EQ(tree.HashesAtHeight(1).size(), 2u);
}

TEST_F(BlockTreeFixture, HeavierForkTriggersReorg) {
  const BlockPtr a1 = Child(genesis, 1000, 1);
  const BlockPtr a2 = Child(a1, 1000, 1);
  tree.Add(a1, At(1));
  tree.Add(a2, At(2));

  const BlockPtr b1 = Child(genesis, 1500, 2);
  const BlockPtr b2 = Child(b1, 1500, 2);
  tree.Add(b1, At(3));  // td 2500 vs 3000: no reorg yet
  EXPECT_EQ(tree.head_hash(), a2->hash);

  const auto r = tree.Add(b2, At(4));  // td 4000 > 3000: reorg
  EXPECT_EQ(r.outcome, BlockTree::AddOutcome::kAddedNewHead);
  EXPECT_EQ(tree.head_hash(), b2->hash);
  ASSERT_EQ(r.retired.size(), 2u);
  EXPECT_EQ(r.retired[0]->hash, a1->hash);
  EXPECT_EQ(r.retired[1]->hash, a2->hash);
  ASSERT_EQ(r.adopted.size(), 2u);
  EXPECT_EQ(r.adopted[0]->hash, b1->hash);
  EXPECT_EQ(r.adopted[1]->hash, b2->hash);
  EXPECT_TRUE(tree.IsCanonical(b1->hash));
  EXPECT_FALSE(tree.IsCanonical(a1->hash));
}

TEST_F(BlockTreeFixture, OrphanBufferedUntilParentArrives) {
  const BlockPtr b1 = Child(genesis, 1000);
  const BlockPtr b2 = Child(b1, 1000);
  const auto r_orphan = tree.Add(b2, At(1));
  EXPECT_EQ(r_orphan.outcome, BlockTree::AddOutcome::kOrphaned);
  EXPECT_EQ(tree.orphan_count(), 1u);
  EXPECT_FALSE(tree.Contains(b2->hash));

  const auto r = tree.Add(b1, At(2));
  EXPECT_EQ(r.outcome, BlockTree::AddOutcome::kAddedNewHead);
  EXPECT_EQ(tree.orphan_count(), 0u);
  EXPECT_TRUE(tree.Contains(b2->hash));
  EXPECT_EQ(tree.head_hash(), b2->hash);
  // Both adopted in one go, parent first.
  ASSERT_EQ(r.adopted.size(), 2u);
  EXPECT_EQ(r.adopted[0]->hash, b1->hash);
}

TEST_F(BlockTreeFixture, OrphanChainsResolveRecursively) {
  const BlockPtr b1 = Child(genesis, 1000);
  const BlockPtr b2 = Child(b1, 1000);
  const BlockPtr b3 = Child(b2, 1000);
  tree.Add(b3, At(1));
  tree.Add(b2, At(2));
  EXPECT_EQ(tree.orphan_count(), 2u);
  tree.Add(b1, At(3));
  EXPECT_EQ(tree.orphan_count(), 0u);
  EXPECT_EQ(tree.head_hash(), b3->hash);
  EXPECT_EQ(tree.head_number(), 3u);
}

TEST_F(BlockTreeFixture, UncleCandidateBasic) {
  // Fork at height 1; build on `a`, the uncle candidate is `b`.
  const BlockPtr a = Child(genesis, 1000, 1);
  const BlockPtr b = Child(genesis, 1000, 2, Addr(9));
  tree.Add(a, At(1));
  tree.Add(b, At(2));
  const auto uncles = tree.UncleCandidates(a->hash);
  ASSERT_EQ(uncles.size(), 1u);
  EXPECT_EQ(uncles[0].Hash(), b->hash);
}

TEST_F(BlockTreeFixture, AncestorsAreNotUncleCandidates) {
  const BlockPtr b1 = Child(genesis, 1000);
  tree.Add(b1, At(1));
  EXPECT_TRUE(tree.UncleCandidates(b1->hash).empty());
}

TEST_F(BlockTreeFixture, AlreadyReferencedUnclesAreExcluded) {
  const BlockPtr a = Child(genesis, 1000, 1);
  const BlockPtr b = Child(genesis, 1000, 2);
  tree.Add(a, At(1));
  tree.Add(b, At(2));

  // a2 references b as an uncle.
  Block a2_body;
  a2_body.header.parent_hash = a->hash;
  a2_body.header.number = 2;
  a2_body.header.difficulty = 1000;
  a2_body.uncles.push_back(b->header);
  a2_body.Seal();
  const BlockPtr a2 = Arena().Adopt(std::move(a2_body));
  tree.Add(a2, At(3));

  EXPECT_TRUE(tree.UncleCandidates(a2->hash).empty());
}

TEST_F(BlockTreeFixture, UncleWindowIsSixGenerations) {
  const BlockPtr stale = Child(genesis, 1000, 99, Addr(7));  // height-1 fork
  tree.Add(stale, At(1));

  BlockPtr tip = Child(genesis, 1000, 1);
  tree.Add(tip, At(2));
  // Extend the canonical chain to height 6: stale (height 1) is exactly at
  // the edge of the window for a block at height 7.
  for (int i = 0; i < 5; ++i) {
    tip = Child(tip, 1000, 1);
    tree.Add(tip, At(3 + i));
  }
  EXPECT_EQ(tip->header.number, 6u);
  ASSERT_EQ(tree.UncleCandidates(tip->hash).size(), 1u);

  // One more block: stale falls out of the window.
  tip = Child(tip, 1000, 1);
  tree.Add(tip, At(20));
  EXPECT_TRUE(tree.UncleCandidates(tip->hash).empty());
}

TEST_F(BlockTreeFixture, UncleCandidatesCappedAtTwoAndOrderedByFirstSeen) {
  const BlockPtr main1 = Child(genesis, 1000, 1);
  tree.Add(main1, At(0));
  const BlockPtr u1 = Child(genesis, 1000, 11, Addr(2));
  const BlockPtr u2 = Child(genesis, 1000, 12, Addr(3));
  const BlockPtr u3 = Child(genesis, 1000, 13, Addr(4));
  tree.Add(u2, At(2));
  tree.Add(u1, At(1));
  tree.Add(u3, At(3));

  const auto uncles = tree.UncleCandidates(main1->hash, 2);
  ASSERT_EQ(uncles.size(), 2u);
  EXPECT_EQ(uncles[0].Hash(), u1->hash);
  EXPECT_EQ(uncles[1].Hash(), u2->hash);
}

TEST_F(BlockTreeFixture, NephewForkUncleRequiresAncestorParent) {
  // A fork of a fork whose parent is NOT on the ancestor path of the
  // including block must not be offered as an uncle.
  const BlockPtr a1 = Child(genesis, 1000, 1);
  const BlockPtr b1 = Child(genesis, 1000, 2);
  const BlockPtr b2 = Child(b1, 1000, 2);  // builds on the losing fork
  tree.Add(a1, At(1));
  tree.Add(b1, At(2));
  tree.Add(b2, At(3));

  const BlockPtr a2 = Child(a1, 1000, 1);
  tree.Add(a2, At(4));
  // Candidates for a block on a2: b1 qualifies (parent=genesis is an
  // ancestor); b2 does not (parent=b1 is not an ancestor of the new block).
  const auto uncles = tree.UncleCandidates(a2->hash);
  ASSERT_EQ(uncles.size(), 1u);
  EXPECT_EQ(uncles[0].Hash(), b1->hash);
}

TEST_F(BlockTreeFixture, GenesisAtPaperHeight) {
  BlockPtr paper_genesis = MakeGenesis(7'479'573);
  BlockTree paper_tree{paper_genesis};
  EXPECT_EQ(paper_tree.genesis_number(), 7'479'573u);
  const BlockPtr b1 = Child(paper_genesis, 1000);
  paper_tree.Add(b1, At(1));
  EXPECT_EQ(paper_tree.head_number(), 7'479'574u);
  EXPECT_EQ(paper_tree.CanonicalChain().size(), 2u);
}

TEST_F(BlockTreeFixture, AllBlocksIncludesForks) {
  tree.Add(Child(genesis, 1000, 1), At(1));
  tree.Add(Child(genesis, 1000, 2), At(2));
  EXPECT_EQ(tree.AllBlocks().size(), 3u);
}


TEST_F(BlockTreeFixture, SectionVRuleForbidsOneMinerUncles) {
  // Miner 1 produces both the canonical block and a fork at height 1.
  const BlockPtr main1 = Child(genesis, 1000, 1, Addr(1));
  const BlockPtr fork_same = Child(genesis, 1000, 2, Addr(1));
  const BlockPtr fork_other = Child(genesis, 1000, 3, Addr(2));
  tree.Add(main1, At(1));
  tree.Add(fork_same, At(2));
  tree.Add(fork_other, At(3));

  // Vanilla Ethereum rules accept both forks as uncles.
  const auto vanilla = tree.UncleCandidates(main1->hash, 2, false);
  EXPECT_EQ(vanilla.size(), 2u);

  // The paper's SV proposal rejects the same-miner fork, keeping the
  // honest small miner's block eligible.
  const auto strict = tree.UncleCandidates(main1->hash, 2, true);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_EQ(strict[0].Hash(), fork_other->hash);
}

TEST_F(BlockTreeFixture, SectionVRuleOnlyComparesSameHeight) {
  // Miner 1 has the main block at height 1; its fork at height 1 is banned,
  // but a miner-1 fork at height 2 (where miner 2 holds the main slot)
  // remains eligible.
  const BlockPtr main1 = Child(genesis, 1000, 1, Addr(1));
  tree.Add(main1, At(1));
  const BlockPtr main2 = Child(main1, 1000, 1, Addr(2));
  tree.Add(main2, At(2));
  const BlockPtr fork2_by1 = Child(main1, 1000, 9, Addr(1));
  tree.Add(fork2_by1, At(3));

  const auto strict = tree.UncleCandidates(main2->hash, 2, true);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_EQ(strict[0].Hash(), fork2_by1->hash);
}

}  // namespace
}  // namespace ethsim::chain
