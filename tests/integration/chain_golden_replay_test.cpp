// Golden-replay determinism audit for the chain-state memory-layout overhaul
// (interned block IDs, arena-backed BlockTree, incremental TxPool price
// index, shared BlockArena bodies — DESIGN.md §12).
//
// The expectations below were captured on the PRE-overhaul tree (the commit
// preceding the overhaul, hash-map BlockTree + rebuild-per-select TxPool) on
// the default build type. The overhaul is a memory-layout change only: every
// run must stay BYTE-IDENTICAL — head hash, head number, engine event count,
// and the determinism digest (which also covers every vantage observer's log
// digest) all unchanged, for fault-free runs, fault-plan runs, and
// provenance-on runs alike. If one of these values moves, the overhaul
// changed simulation behaviour, not just layout — that is a bug, never a
// "regenerate the golden" situation.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/types.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/provenance.hpp"
#include "fault/plan.hpp"
#include "net/geo.hpp"

namespace {

using namespace ethsim;

// table3_forks shape (SmallStudy + slow workload), scaled to smoke size.
core::ExperimentConfig Table3Smoke() {
  core::ExperimentConfig cfg = core::presets::SmallStudy(24);
  cfg.duration = Duration::Minutes(20);
  cfg.workload.rate_per_sec = 0.25;
  return cfg;
}

// resilience_partition shape: middle-third APAC split (EA|SEA|OC) vs the
// same config with an empty fault plan.
core::ExperimentConfig ResilienceSmoke(bool with_partition) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(24);
  cfg.duration = Duration::Minutes(12);
  cfg.workload.rate_per_sec = 0.5;
  if (with_partition) {
    const TimePoint start = TimePoint::FromMicros(cfg.duration.micros() / 3);
    const Duration window = Duration::Micros(cfg.duration.micros() / 3);
    const std::uint32_t apac_mask =
        (1u << static_cast<unsigned>(net::Region::EasternAsia)) |
        (1u << static_cast<unsigned>(net::Region::SoutheastAsia)) |
        (1u << static_cast<unsigned>(net::Region::Oceania));
    cfg.fault_plan.RegionalPartition(start, window, apac_mask);
  }
  return cfg;
}

struct Golden {
  const char* head_hash;  // hex, 64 chars
  std::uint64_t head_number;
  std::uint64_t events_executed;
  const char* determinism_digest;  // hex, 64 chars
};

void ExpectGolden(const core::ExperimentConfig& cfg, const Golden& golden,
                  const char* label) {
  core::Experiment exp{cfg};
  exp.Run();
  const std::string head = ToHex(exp.reference_tree().head_hash());
  const std::uint64_t number = exp.reference_tree().head_number();
  const std::uint64_t events = exp.simulator().events_executed();
  const std::string digest = ToHex(core::DeterminismDigest(exp));
  // One greppable line per config so refreshing a legitimately new golden
  // set (config change, never a layout change) is copy-paste.
  std::printf("golden[%s] = {\"%s\", %llu, %llu, \"%s\"}\n", label,
              head.c_str(), static_cast<unsigned long long>(number),
              static_cast<unsigned long long>(events), digest.c_str());
  EXPECT_EQ(head, golden.head_hash) << label;
  EXPECT_EQ(number, golden.head_number) << label;
  EXPECT_EQ(events, golden.events_executed) << label;
  EXPECT_EQ(digest, golden.determinism_digest) << label;
}

TEST(ChainGoldenReplay, Table3SmokeUnchanged) {
  const Golden golden = {
      "7d1a24c6e4e4248c7b283663cfd45e93b5b16357bda2be4624d96b1e0e84c16c",
      7479658, 816109,
      "719e032f18716168e85fba3ba04f57f7505efad748bbd020f57bfced7a226dd7"};
  ExpectGolden(Table3Smoke(), golden, "table3_smoke");
}

// Provenance recording must not shift the run (PR 4 contract) and the
// recorded run must still match the pre-overhaul golden.
TEST(ChainGoldenReplay, Table3SmokeProvenanceOnUnchanged) {
  // Identical to the provenance-off golden: recording may not shift a run.
  const Golden golden = {
      "7d1a24c6e4e4248c7b283663cfd45e93b5b16357bda2be4624d96b1e0e84c16c",
      7479658, 816109,
      "719e032f18716168e85fba3ba04f57f7505efad748bbd020f57bfced7a226dd7"};
  core::ExperimentConfig cfg = Table3Smoke();
  cfg.telemetry.provenance = true;
  ExpectGolden(cfg, golden, "table3_smoke_provenance");
}

// The tx-lifecycle recorder must not shift the run either: every hook is
// record-only (no Rng draws, no scheduled events), so the txprov-on run must
// match the txprov-off golden bit for bit — event count included.
TEST(ChainGoldenReplay, Table3SmokeTxProvOnUnchanged) {
  const Golden golden = {
      "7d1a24c6e4e4248c7b283663cfd45e93b5b16357bda2be4624d96b1e0e84c16c",
      7479658, 816109,
      "719e032f18716168e85fba3ba04f57f7505efad748bbd020f57bfced7a226dd7"};
  core::ExperimentConfig cfg = Table3Smoke();
  cfg.telemetry.txprov = true;
  ExpectGolden(cfg, golden, "table3_smoke_txprov");
}

// The state sampler must be read-only: its self-rescheduling tick adds
// events of its own (so events_executed grows), but the chain outcome and
// the determinism digest — which deliberately excludes the event count —
// must match the sampler-off golden bit for bit.
TEST(ChainGoldenReplay, Table3SmokeSamplerOnReadOnly) {
  const Golden golden = {
      "7d1a24c6e4e4248c7b283663cfd45e93b5b16357bda2be4624d96b1e0e84c16c",
      7479658, 816109,
      "719e032f18716168e85fba3ba04f57f7505efad748bbd020f57bfced7a226dd7"};
  core::ExperimentConfig cfg = Table3Smoke();
  cfg.telemetry.sample = true;
  core::Experiment exp{cfg};
  exp.Run();
  EXPECT_EQ(ToHex(exp.reference_tree().head_hash()), golden.head_hash);
  EXPECT_EQ(exp.reference_tree().head_number(), golden.head_number);
  EXPECT_GT(exp.simulator().events_executed(), golden.events_executed)
      << "sampler ticks should add events";
  EXPECT_EQ(ToHex(core::DeterminismDigest(exp)), golden.determinism_digest);
  ASSERT_NE(exp.telemetry(), nullptr);
  ASSERT_NE(exp.telemetry()->sampler(), nullptr);
  // 20 sim-minutes at the default 250 ms cadence: baseline row + 4800 ticks.
  EXPECT_EQ(exp.telemetry()->sampler()->sample_count(), 4801u);
}

TEST(ChainGoldenReplay, ResilienceControlUnchanged) {
  const Golden golden = {
      "506d213676bf82783902ed64bf4af15aff79bf765c898f34fbdf71c86076c2f3",
      7479626, 850563,
      "621ab8c8a5de1cff8b85cb2ce4cce70f553d8ae3db2ff71bc6eba8f3dacc65f0"};
  ExpectGolden(ResilienceSmoke(false), golden, "resilience_control");
}

TEST(ChainGoldenReplay, ResiliencePartitionUnchanged) {
  const Golden golden = {
      "f51932125bfbc625574f6804bd4c0f80eb7d5b48cdbebb81ddf921d889b21728",
      7479620, 667045,
      "4cfb18dee0ca835621498f9ff5dc1d99d14426e0ddbd31779710675ba7be4607"};
  ExpectGolden(ResilienceSmoke(true), golden, "resilience_partition");
}

}  // namespace
