// End-to-end regression guards: short full-pipeline runs must keep
// reproducing the paper's qualitative findings. Bounds are deliberately
// loose — these catch structural regressions (a relay bug, a broken policy),
// not calibration drift.
#include <gtest/gtest.h>

#include "analysis/commit.hpp"
#include "analysis/empty_blocks.hpp"
#include "analysis/forks.hpp"
#include "analysis/geo.hpp"
#include "analysis/ordering.hpp"
#include "analysis/propagation.hpp"
#include "analysis/rewards.hpp"
#include "core/experiment.hpp"

namespace ethsim {
namespace {

analysis::StudyInputs InputsFor(const core::Experiment& exp) {
  analysis::StudyInputs inputs;
  for (const auto& obs : exp.observers()) inputs.observers.push_back(obs.get());
  inputs.minted = &exp.minted();
  inputs.pools = &exp.config().pools;
  inputs.reference = &exp.reference_tree();
  return inputs;
}

TEST(PaperShapes, GeographyAndPropagation) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(120);
  cfg.duration = Duration::Hours(2);
  cfg.workload.rate_per_sec = 0;
  cfg.seed = 42;
  core::Experiment exp{cfg};
  exp.Run();
  const auto inputs = InputsFor(exp);

  // Fig 1 shape: median block propagation within the paper's order of
  // magnitude and a meaningful tail.
  const auto prop = analysis::BlockPropagationDelays(inputs.observers);
  EXPECT_GT(prop.median_ms, 20.0);
  EXPECT_LT(prop.median_ms, 200.0);
  EXPECT_GT(prop.p99_ms, prop.median_ms * 1.5);

  // Fig 2 shape: EA ahead of NA by a clear factor; everyone sees blocks.
  const auto geo = analysis::FirstObservationShares(inputs.observers);
  double ea = 0, na = 0;
  for (const auto& share : geo.shares) {
    if (share.vantage == "EA") ea = share.share;
    if (share.vantage == "NA") na = share.share;
  }
  EXPECT_GT(ea, 0.20);
  EXPECT_GT(ea, na * 1.3);
  EXPECT_GT(geo.total_blocks, 400u);
}

TEST(PaperShapes, ForksUnclesAndSelfishBehavior) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(60);
  cfg.duration = Duration::Hours(5);
  cfg.workload.rate_per_sec = 0.3;
  cfg.mining.max_block_txs = 3;  // supply > capacity: no organic empties
  cfg.seed = 7;
  core::Experiment exp{cfg};
  exp.Run();
  const auto inputs = InputsFor(exp);

  // Table III shape: ~7% of blocks fork; the overwhelming majority of
  // length-1 forks get recognized as uncles.
  const auto census = analysis::ComputeForkCensus(inputs);
  EXPECT_GT(census.main_share, 0.85);
  EXPECT_LT(census.main_share, 0.98);
  EXPECT_GT(census.recognized_share, 0.01);
  ASSERT_FALSE(census.by_length.empty());
  EXPECT_EQ(census.by_length[0].length, 1u);
  EXPECT_GT(census.by_length[0].recognized,
            census.by_length[0].unrecognized);

  // §III-C5 shape: one-miner forks exist and collect uncle rewards.
  const auto omf = analysis::ComputeOneMinerForks(inputs, census);
  EXPECT_GT(omf.events, 0u);
  EXPECT_GT(omf.recognized_extra_share, 0.5);

  // Fig 6 shape: empties rare overall; Nanopool (index 3) mines none.
  const auto empty = analysis::EmptyBlockCensus(inputs);
  EXPECT_GT(empty.overall_empty_rate, 0.002);
  EXPECT_LT(empty.overall_empty_rate, 0.06);
  EXPECT_EQ(empty.rows[3].empty_blocks, 0u);

  // Reward fairness: revenue shares track hashrate within a few points for
  // the two big pools (no systematic theft in the accounting).
  const auto revenue = analysis::ComputeRevenue(inputs);
  EXPECT_NEAR(revenue.rows[0].revenue_share, revenue.rows[0].hashrate_share,
              0.08);
  EXPECT_GT(revenue.one_miner_uncle_eth, 0.0);  // §V leakage is real
  EXPECT_LT(revenue.fees_share_of_total, 0.05);
}

TEST(PaperShapes, CommitTimesAndOrdering) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(30);
  cfg.duration = Duration::Hours(2);
  cfg.workload.rate_per_sec = 1.0;
  cfg.seed = 3;
  core::Experiment exp{cfg};
  exp.Run();
  const auto inputs = InputsFor(exp);

  // Fig 4 shape: 12-conf commit near 12-13 inter-block times.
  const auto commit = analysis::TransactionCommitTimes(inputs, {0, 12});
  ASSERT_GT(commit.committed_txs, 500u);
  const double median_12 = commit.delays_s[1].Median();
  EXPECT_GT(median_12, 120.0);
  EXPECT_LT(median_12, 280.0);
  // Inclusion strictly precedes commit.
  EXPECT_LT(commit.delays_s[0].Median(), median_12);

  // Fig 5 shape: a real out-of-order population with a commit penalty sign.
  const auto ordering = analysis::TransactionOrdering(inputs);
  EXPECT_GT(ordering.out_of_order_share, 0.03);
  EXPECT_LT(ordering.out_of_order_share, 0.30);
  EXPECT_GE(ordering.out_of_order_delay_s.Median(),
            ordering.in_order_delay_s.Median() - 5.0);
}

}  // namespace
}  // namespace ethsim
