// The reconciliation contract of the provenance layer, end-to-end: on a full
// experiment the redundancy statistics derived from the relay-edge log must
// equal the observer-log computation (analysis/redundancy, Table II)
// *bitwise* — same delivered messages, same settle-window exclusion, at every
// vantage — and the stream must be invariant-clean. Checked on a clean run
// and again under a fault plan that partitions a region and crashes nodes
// (clock-jump faults are deliberately absent: a mid-run offset change breaks
// the constant-shift argument that makes the two clocks comparable).
#include <cstring>

#include <gtest/gtest.h>

#include "analysis/dissemination.hpp"
#include "analysis/redundancy.hpp"
#include "core/experiment.hpp"

namespace ethsim {
namespace {

core::ExperimentConfig BaseConfig() {
  core::ExperimentConfig cfg = core::presets::SmallStudy(30);
  cfg.duration = Duration::Minutes(10);
  cfg.workload.rate_per_sec = 1.0;
  cfg.telemetry.provenance = true;
  return cfg;
}

void ExpectBitwiseEqual(const analysis::RedundancyStats& a,
                        const analysis::RedundancyStats& b,
                        const char* what) {
  EXPECT_EQ(std::memcmp(&a.mean, &b.mean, sizeof(double)), 0)
      << what << " mean " << a.mean << " vs " << b.mean;
  EXPECT_EQ(std::memcmp(&a.median, &b.median, sizeof(double)), 0)
      << what << " median " << a.median << " vs " << b.median;
  EXPECT_EQ(std::memcmp(&a.top10, &b.top10, sizeof(double)), 0)
      << what << " top10 " << a.top10 << " vs " << b.top10;
  EXPECT_EQ(std::memcmp(&a.top1, &b.top1, sizeof(double)), 0)
      << what << " top1 " << a.top1 << " vs " << b.top1;
}

void CheckAllVantages(core::Experiment& exp) {
  ASSERT_NE(exp.telemetry(), nullptr);
  ASSERT_NE(exp.telemetry()->provenance(), nullptr);
  const obs::ProvenanceLog& log = exp.telemetry()->provenance()->Finish();
  ASSERT_FALSE(log.empty());
  for (const auto& observer : exp.observers()) {
    SCOPED_TRACE(observer->name());
    const auto from_log = analysis::BlockReceptionRedundancy(*observer);
    const auto from_prov = analysis::RedundancyFromProvenance(
        log, observer->node()->host());
    ASSERT_GT(from_log.blocks, 0u);
    EXPECT_EQ(from_prov.blocks, from_log.blocks);
    ExpectBitwiseEqual(from_prov.announcements, from_log.announcements,
                       "announcements");
    ExpectBitwiseEqual(from_prov.whole_blocks, from_log.whole_blocks,
                       "whole_blocks");
    ExpectBitwiseEqual(from_prov.combined, from_log.combined, "combined");
  }
}

TEST(ProvenanceCrosscheck, MatchesObserverRedundancyBitwise) {
  core::Experiment exp{BaseConfig()};
  exp.Run();
  CheckAllVantages(exp);
  EXPECT_EQ(exp.telemetry()->provenance()->violations(), 0u);
}

TEST(ProvenanceCrosscheck, HoldsUnderPartitionAndCrashFaults) {
  core::ExperimentConfig cfg = BaseConfig();
  cfg.fault_plan
      .RegionalPartition(TimePoint::FromMicros(Duration::Minutes(3).micros()),
                         Duration::Minutes(2),
                         1u << static_cast<unsigned>(net::Region::EasternAsia))
      .NodeCrash(TimePoint::FromMicros(Duration::Minutes(2).micros()),
                 Duration::Minutes(1), /*count=*/3);
  core::Experiment exp{cfg};
  exp.Run();
  CheckAllVantages(exp);
  // The fault layer must not manufacture invariant violations: censored
  // edges carry their drop reason, crashed-node ingress is re-attributed as
  // offline, and hop depths stay causal throughout.
  EXPECT_EQ(exp.telemetry()->provenance()->violations(), 0u);
  // The partition actually censored traffic, and the log knows.
  const obs::ProvenanceLog& log = exp.telemetry()->provenance()->Finish();
  std::uint64_t partitioned = 0;
  for (std::size_t i = 0; i < log.size(); ++i)
    if (static_cast<obs::EdgeDrop>(log.drop[i]) ==
        obs::EdgeDrop::kPartitioned)
      ++partitioned;
  EXPECT_GT(partitioned, 0u);
  EXPECT_EQ(partitioned,
            exp.network().dropped_by(net::DropReason::kPartitioned));
}

TEST(ProvenanceCrosscheck, RecordingDoesNotPerturbTheRun) {
  core::ExperimentConfig off = BaseConfig();
  off.telemetry = obs::TelemetryConfig{};
  core::Experiment a{off};
  core::Experiment b{BaseConfig()};
  a.Run();
  b.Run();
  EXPECT_EQ(a.reference_tree().head_hash(), b.reference_tree().head_hash());
  EXPECT_EQ(a.minted().size(), b.minted().size());
  ASSERT_EQ(a.observers().size(), b.observers().size());
  for (std::size_t i = 0; i < a.observers().size(); ++i)
    EXPECT_EQ(a.observers()[i]->block_arrivals().size(),
              b.observers()[i]->block_arrivals().size());
}

}  // namespace
}  // namespace ethsim
