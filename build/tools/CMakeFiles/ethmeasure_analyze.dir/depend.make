# Empty dependencies file for ethmeasure_analyze.
# This may be replaced when dependencies are built.
