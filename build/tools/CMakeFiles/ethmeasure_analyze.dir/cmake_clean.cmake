file(REMOVE_RECURSE
  "CMakeFiles/ethmeasure_analyze.dir/ethmeasure_analyze.cpp.o"
  "CMakeFiles/ethmeasure_analyze.dir/ethmeasure_analyze.cpp.o.d"
  "ethmeasure_analyze"
  "ethmeasure_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethmeasure_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
