file(REMOVE_RECURSE
  "CMakeFiles/ethmeasure_collect.dir/ethmeasure_collect.cpp.o"
  "CMakeFiles/ethmeasure_collect.dir/ethmeasure_collect.cpp.o.d"
  "ethmeasure_collect"
  "ethmeasure_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethmeasure_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
