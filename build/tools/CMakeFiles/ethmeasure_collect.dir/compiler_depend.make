# Empty compiler generated dependencies file for ethmeasure_collect.
# This may be replaced when dependencies are built.
