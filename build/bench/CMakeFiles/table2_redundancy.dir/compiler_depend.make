# Empty compiler generated dependencies file for table2_redundancy.
# This may be replaced when dependencies are built.
