file(REMOVE_RECURSE
  "CMakeFiles/table2_redundancy.dir/table2_redundancy.cpp.o"
  "CMakeFiles/table2_redundancy.dir/table2_redundancy.cpp.o.d"
  "table2_redundancy"
  "table2_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
