# Empty dependencies file for table1_infrastructure.
# This may be replaced when dependencies are built.
