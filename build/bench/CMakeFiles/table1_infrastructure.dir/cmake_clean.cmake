file(REMOVE_RECURSE
  "CMakeFiles/table1_infrastructure.dir/table1_infrastructure.cpp.o"
  "CMakeFiles/table1_infrastructure.dir/table1_infrastructure.cpp.o.d"
  "table1_infrastructure"
  "table1_infrastructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_infrastructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
