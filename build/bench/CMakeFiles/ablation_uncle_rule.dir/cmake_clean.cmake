file(REMOVE_RECURSE
  "CMakeFiles/ablation_uncle_rule.dir/ablation_uncle_rule.cpp.o"
  "CMakeFiles/ablation_uncle_rule.dir/ablation_uncle_rule.cpp.o.d"
  "ablation_uncle_rule"
  "ablation_uncle_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uncle_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
