# Empty compiler generated dependencies file for ablation_uncle_rule.
# This may be replaced when dependencies are built.
