# Empty compiler generated dependencies file for fig6_empty_blocks.
# This may be replaced when dependencies are built.
