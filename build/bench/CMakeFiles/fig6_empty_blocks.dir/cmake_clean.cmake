file(REMOVE_RECURSE
  "CMakeFiles/fig6_empty_blocks.dir/fig6_empty_blocks.cpp.o"
  "CMakeFiles/fig6_empty_blocks.dir/fig6_empty_blocks.cpp.o.d"
  "fig6_empty_blocks"
  "fig6_empty_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_empty_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
