file(REMOVE_RECURSE
  "CMakeFiles/fig2_geo_first_observation.dir/fig2_geo_first_observation.cpp.o"
  "CMakeFiles/fig2_geo_first_observation.dir/fig2_geo_first_observation.cpp.o.d"
  "fig2_geo_first_observation"
  "fig2_geo_first_observation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_geo_first_observation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
