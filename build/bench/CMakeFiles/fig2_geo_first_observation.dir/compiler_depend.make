# Empty compiler generated dependencies file for fig2_geo_first_observation.
# This may be replaced when dependencies are built.
