file(REMOVE_RECURSE
  "CMakeFiles/table3_forks.dir/table3_forks.cpp.o"
  "CMakeFiles/table3_forks.dir/table3_forks.cpp.o.d"
  "table3_forks"
  "table3_forks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_forks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
