# Empty dependencies file for table3_forks.
# This may be replaced when dependencies are built.
