file(REMOVE_RECURSE
  "CMakeFiles/ablation_single_vantage.dir/ablation_single_vantage.cpp.o"
  "CMakeFiles/ablation_single_vantage.dir/ablation_single_vantage.cpp.o.d"
  "ablation_single_vantage"
  "ablation_single_vantage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_single_vantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
