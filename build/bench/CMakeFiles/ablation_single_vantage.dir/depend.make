# Empty dependencies file for ablation_single_vantage.
# This may be replaced when dependencies are built.
