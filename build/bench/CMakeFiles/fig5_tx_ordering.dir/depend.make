# Empty dependencies file for fig5_tx_ordering.
# This may be replaced when dependencies are built.
