# Empty compiler generated dependencies file for fig1_block_propagation.
# This may be replaced when dependencies are built.
