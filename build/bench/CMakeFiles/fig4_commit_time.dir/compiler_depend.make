# Empty compiler generated dependencies file for fig4_commit_time.
# This may be replaced when dependencies are built.
