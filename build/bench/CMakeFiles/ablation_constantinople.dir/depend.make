# Empty dependencies file for ablation_constantinople.
# This may be replaced when dependencies are built.
