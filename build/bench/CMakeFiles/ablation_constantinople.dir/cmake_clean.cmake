file(REMOVE_RECURSE
  "CMakeFiles/ablation_constantinople.dir/ablation_constantinople.cpp.o"
  "CMakeFiles/ablation_constantinople.dir/ablation_constantinople.cpp.o.d"
  "ablation_constantinople"
  "ablation_constantinople.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_constantinople.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
