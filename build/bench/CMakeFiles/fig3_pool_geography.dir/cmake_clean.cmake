file(REMOVE_RECURSE
  "CMakeFiles/fig3_pool_geography.dir/fig3_pool_geography.cpp.o"
  "CMakeFiles/fig3_pool_geography.dir/fig3_pool_geography.cpp.o.d"
  "fig3_pool_geography"
  "fig3_pool_geography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_pool_geography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
