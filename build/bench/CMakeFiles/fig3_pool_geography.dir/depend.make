# Empty dependencies file for fig3_pool_geography.
# This may be replaced when dependencies are built.
