file(REMOVE_RECURSE
  "CMakeFiles/fig7_consecutive_blocks.dir/fig7_consecutive_blocks.cpp.o"
  "CMakeFiles/fig7_consecutive_blocks.dir/fig7_consecutive_blocks.cpp.o.d"
  "fig7_consecutive_blocks"
  "fig7_consecutive_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_consecutive_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
