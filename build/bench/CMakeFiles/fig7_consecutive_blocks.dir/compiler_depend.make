# Empty compiler generated dependencies file for fig7_consecutive_blocks.
# This may be replaced when dependencies are built.
