file(REMOVE_RECURSE
  "CMakeFiles/security_finality.dir/security_finality.cpp.o"
  "CMakeFiles/security_finality.dir/security_finality.cpp.o.d"
  "security_finality"
  "security_finality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_finality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
