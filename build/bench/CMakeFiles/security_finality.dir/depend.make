# Empty dependencies file for security_finality.
# This may be replaced when dependencies are built.
