file(REMOVE_RECURSE
  "CMakeFiles/ethsim_measure.dir/dataset.cpp.o"
  "CMakeFiles/ethsim_measure.dir/dataset.cpp.o.d"
  "CMakeFiles/ethsim_measure.dir/observer.cpp.o"
  "CMakeFiles/ethsim_measure.dir/observer.cpp.o.d"
  "libethsim_measure.a"
  "libethsim_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethsim_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
