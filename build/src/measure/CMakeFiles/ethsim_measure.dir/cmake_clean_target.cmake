file(REMOVE_RECURSE
  "libethsim_measure.a"
)
