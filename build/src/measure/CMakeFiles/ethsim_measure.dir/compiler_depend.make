# Empty compiler generated dependencies file for ethsim_measure.
# This may be replaced when dependencies are built.
