# Empty compiler generated dependencies file for ethsim_net.
# This may be replaced when dependencies are built.
