file(REMOVE_RECURSE
  "libethsim_net.a"
)
