file(REMOVE_RECURSE
  "CMakeFiles/ethsim_net.dir/geo.cpp.o"
  "CMakeFiles/ethsim_net.dir/geo.cpp.o.d"
  "CMakeFiles/ethsim_net.dir/network.cpp.o"
  "CMakeFiles/ethsim_net.dir/network.cpp.o.d"
  "libethsim_net.a"
  "libethsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
