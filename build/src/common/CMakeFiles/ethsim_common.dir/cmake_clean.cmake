file(REMOVE_RECURSE
  "CMakeFiles/ethsim_common.dir/keccak.cpp.o"
  "CMakeFiles/ethsim_common.dir/keccak.cpp.o.d"
  "CMakeFiles/ethsim_common.dir/random.cpp.o"
  "CMakeFiles/ethsim_common.dir/random.cpp.o.d"
  "CMakeFiles/ethsim_common.dir/render.cpp.o"
  "CMakeFiles/ethsim_common.dir/render.cpp.o.d"
  "CMakeFiles/ethsim_common.dir/rlp.cpp.o"
  "CMakeFiles/ethsim_common.dir/rlp.cpp.o.d"
  "CMakeFiles/ethsim_common.dir/stats.cpp.o"
  "CMakeFiles/ethsim_common.dir/stats.cpp.o.d"
  "CMakeFiles/ethsim_common.dir/time.cpp.o"
  "CMakeFiles/ethsim_common.dir/time.cpp.o.d"
  "CMakeFiles/ethsim_common.dir/types.cpp.o"
  "CMakeFiles/ethsim_common.dir/types.cpp.o.d"
  "libethsim_common.a"
  "libethsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
