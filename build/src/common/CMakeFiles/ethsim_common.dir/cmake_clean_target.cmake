file(REMOVE_RECURSE
  "libethsim_common.a"
)
