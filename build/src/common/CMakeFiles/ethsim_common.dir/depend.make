# Empty dependencies file for ethsim_common.
# This may be replaced when dependencies are built.
