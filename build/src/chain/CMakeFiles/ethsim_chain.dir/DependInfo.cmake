
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/ethsim_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/ethsim_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/blocktree.cpp" "src/chain/CMakeFiles/ethsim_chain.dir/blocktree.cpp.o" "gcc" "src/chain/CMakeFiles/ethsim_chain.dir/blocktree.cpp.o.d"
  "/root/repo/src/chain/difficulty.cpp" "src/chain/CMakeFiles/ethsim_chain.dir/difficulty.cpp.o" "gcc" "src/chain/CMakeFiles/ethsim_chain.dir/difficulty.cpp.o.d"
  "/root/repo/src/chain/transaction.cpp" "src/chain/CMakeFiles/ethsim_chain.dir/transaction.cpp.o" "gcc" "src/chain/CMakeFiles/ethsim_chain.dir/transaction.cpp.o.d"
  "/root/repo/src/chain/txpool.cpp" "src/chain/CMakeFiles/ethsim_chain.dir/txpool.cpp.o" "gcc" "src/chain/CMakeFiles/ethsim_chain.dir/txpool.cpp.o.d"
  "/root/repo/src/chain/validation.cpp" "src/chain/CMakeFiles/ethsim_chain.dir/validation.cpp.o" "gcc" "src/chain/CMakeFiles/ethsim_chain.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ethsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
