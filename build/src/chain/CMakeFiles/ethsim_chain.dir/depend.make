# Empty dependencies file for ethsim_chain.
# This may be replaced when dependencies are built.
