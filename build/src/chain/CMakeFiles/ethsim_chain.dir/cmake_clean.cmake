file(REMOVE_RECURSE
  "CMakeFiles/ethsim_chain.dir/block.cpp.o"
  "CMakeFiles/ethsim_chain.dir/block.cpp.o.d"
  "CMakeFiles/ethsim_chain.dir/blocktree.cpp.o"
  "CMakeFiles/ethsim_chain.dir/blocktree.cpp.o.d"
  "CMakeFiles/ethsim_chain.dir/difficulty.cpp.o"
  "CMakeFiles/ethsim_chain.dir/difficulty.cpp.o.d"
  "CMakeFiles/ethsim_chain.dir/transaction.cpp.o"
  "CMakeFiles/ethsim_chain.dir/transaction.cpp.o.d"
  "CMakeFiles/ethsim_chain.dir/txpool.cpp.o"
  "CMakeFiles/ethsim_chain.dir/txpool.cpp.o.d"
  "CMakeFiles/ethsim_chain.dir/validation.cpp.o"
  "CMakeFiles/ethsim_chain.dir/validation.cpp.o.d"
  "libethsim_chain.a"
  "libethsim_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethsim_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
