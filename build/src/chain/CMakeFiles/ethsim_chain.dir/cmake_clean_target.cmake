file(REMOVE_RECURSE
  "libethsim_chain.a"
)
