# Empty compiler generated dependencies file for ethsim_sim.
# This may be replaced when dependencies are built.
