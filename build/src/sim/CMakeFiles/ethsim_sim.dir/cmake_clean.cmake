file(REMOVE_RECURSE
  "CMakeFiles/ethsim_sim.dir/simulator.cpp.o"
  "CMakeFiles/ethsim_sim.dir/simulator.cpp.o.d"
  "libethsim_sim.a"
  "libethsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
