file(REMOVE_RECURSE
  "libethsim_sim.a"
)
