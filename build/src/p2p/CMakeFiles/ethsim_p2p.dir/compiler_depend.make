# Empty compiler generated dependencies file for ethsim_p2p.
# This may be replaced when dependencies are built.
