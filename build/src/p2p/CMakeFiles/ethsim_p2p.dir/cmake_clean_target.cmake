file(REMOVE_RECURSE
  "libethsim_p2p.a"
)
