file(REMOVE_RECURSE
  "CMakeFiles/ethsim_p2p.dir/kademlia.cpp.o"
  "CMakeFiles/ethsim_p2p.dir/kademlia.cpp.o.d"
  "CMakeFiles/ethsim_p2p.dir/node_id.cpp.o"
  "CMakeFiles/ethsim_p2p.dir/node_id.cpp.o.d"
  "libethsim_p2p.a"
  "libethsim_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethsim_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
