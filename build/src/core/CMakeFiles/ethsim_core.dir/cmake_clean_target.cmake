file(REMOVE_RECURSE
  "libethsim_core.a"
)
