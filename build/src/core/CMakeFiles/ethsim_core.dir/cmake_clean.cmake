file(REMOVE_RECURSE
  "CMakeFiles/ethsim_core.dir/config.cpp.o"
  "CMakeFiles/ethsim_core.dir/config.cpp.o.d"
  "CMakeFiles/ethsim_core.dir/experiment.cpp.o"
  "CMakeFiles/ethsim_core.dir/experiment.cpp.o.d"
  "CMakeFiles/ethsim_core.dir/workload.cpp.o"
  "CMakeFiles/ethsim_core.dir/workload.cpp.o.d"
  "libethsim_core.a"
  "libethsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
