# Empty compiler generated dependencies file for ethsim_core.
# This may be replaced when dependencies are built.
