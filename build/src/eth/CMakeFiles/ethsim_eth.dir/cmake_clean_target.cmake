file(REMOVE_RECURSE
  "libethsim_eth.a"
)
