file(REMOVE_RECURSE
  "CMakeFiles/ethsim_eth.dir/node.cpp.o"
  "CMakeFiles/ethsim_eth.dir/node.cpp.o.d"
  "CMakeFiles/ethsim_eth.dir/wire.cpp.o"
  "CMakeFiles/ethsim_eth.dir/wire.cpp.o.d"
  "libethsim_eth.a"
  "libethsim_eth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethsim_eth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
