# Empty compiler generated dependencies file for ethsim_eth.
# This may be replaced when dependencies are built.
