file(REMOVE_RECURSE
  "libethsim_analysis.a"
)
