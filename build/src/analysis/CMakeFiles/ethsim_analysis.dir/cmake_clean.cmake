file(REMOVE_RECURSE
  "CMakeFiles/ethsim_analysis.dir/commit.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/commit.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/empty_blocks.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/empty_blocks.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/forks.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/forks.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/geo.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/geo.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/inputs.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/inputs.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/interblock.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/interblock.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/ordering.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/ordering.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/propagation.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/propagation.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/redundancy.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/redundancy.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/report.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/report.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/rewards.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/rewards.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/security.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/security.cpp.o.d"
  "CMakeFiles/ethsim_analysis.dir/sequences.cpp.o"
  "CMakeFiles/ethsim_analysis.dir/sequences.cpp.o.d"
  "libethsim_analysis.a"
  "libethsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
