
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/commit.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/commit.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/commit.cpp.o.d"
  "/root/repo/src/analysis/empty_blocks.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/empty_blocks.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/empty_blocks.cpp.o.d"
  "/root/repo/src/analysis/forks.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/forks.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/forks.cpp.o.d"
  "/root/repo/src/analysis/geo.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/geo.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/geo.cpp.o.d"
  "/root/repo/src/analysis/inputs.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/inputs.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/inputs.cpp.o.d"
  "/root/repo/src/analysis/interblock.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/interblock.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/interblock.cpp.o.d"
  "/root/repo/src/analysis/ordering.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/ordering.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/ordering.cpp.o.d"
  "/root/repo/src/analysis/propagation.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/propagation.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/propagation.cpp.o.d"
  "/root/repo/src/analysis/redundancy.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/redundancy.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/redundancy.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/rewards.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/rewards.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/rewards.cpp.o.d"
  "/root/repo/src/analysis/security.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/security.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/security.cpp.o.d"
  "/root/repo/src/analysis/sequences.cpp" "src/analysis/CMakeFiles/ethsim_analysis.dir/sequences.cpp.o" "gcc" "src/analysis/CMakeFiles/ethsim_analysis.dir/sequences.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ethsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/ethsim_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/ethsim_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/miner/CMakeFiles/ethsim_miner.dir/DependInfo.cmake"
  "/root/repo/build/src/eth/CMakeFiles/ethsim_eth.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ethsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ethsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/ethsim_p2p.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
