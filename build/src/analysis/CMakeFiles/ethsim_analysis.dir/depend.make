# Empty dependencies file for ethsim_analysis.
# This may be replaced when dependencies are built.
