# Empty compiler generated dependencies file for ethsim_miner.
# This may be replaced when dependencies are built.
