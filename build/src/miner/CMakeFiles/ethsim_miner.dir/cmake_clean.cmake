file(REMOVE_RECURSE
  "CMakeFiles/ethsim_miner.dir/mining.cpp.o"
  "CMakeFiles/ethsim_miner.dir/mining.cpp.o.d"
  "CMakeFiles/ethsim_miner.dir/pool.cpp.o"
  "CMakeFiles/ethsim_miner.dir/pool.cpp.o.d"
  "libethsim_miner.a"
  "libethsim_miner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethsim_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
