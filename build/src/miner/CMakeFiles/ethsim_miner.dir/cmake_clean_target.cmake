file(REMOVE_RECURSE
  "libethsim_miner.a"
)
