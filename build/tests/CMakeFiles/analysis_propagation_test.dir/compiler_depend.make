# Empty compiler generated dependencies file for analysis_propagation_test.
# This may be replaced when dependencies are built.
