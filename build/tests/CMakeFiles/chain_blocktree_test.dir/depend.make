# Empty dependencies file for chain_blocktree_test.
# This may be replaced when dependencies are built.
