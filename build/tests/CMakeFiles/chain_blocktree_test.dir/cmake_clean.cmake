file(REMOVE_RECURSE
  "CMakeFiles/chain_blocktree_test.dir/chain/blocktree_test.cpp.o"
  "CMakeFiles/chain_blocktree_test.dir/chain/blocktree_test.cpp.o.d"
  "chain_blocktree_test"
  "chain_blocktree_test.pdb"
  "chain_blocktree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_blocktree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
