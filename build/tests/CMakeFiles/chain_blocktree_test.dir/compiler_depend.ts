# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for chain_blocktree_test.
