file(REMOVE_RECURSE
  "CMakeFiles/property_gossip_test.dir/property/gossip_property_test.cpp.o"
  "CMakeFiles/property_gossip_test.dir/property/gossip_property_test.cpp.o.d"
  "property_gossip_test"
  "property_gossip_test.pdb"
  "property_gossip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_gossip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
