# Empty compiler generated dependencies file for property_gossip_test.
# This may be replaced when dependencies are built.
