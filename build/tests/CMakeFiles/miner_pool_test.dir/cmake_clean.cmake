file(REMOVE_RECURSE
  "CMakeFiles/miner_pool_test.dir/miner/pool_test.cpp.o"
  "CMakeFiles/miner_pool_test.dir/miner/pool_test.cpp.o.d"
  "miner_pool_test"
  "miner_pool_test.pdb"
  "miner_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
