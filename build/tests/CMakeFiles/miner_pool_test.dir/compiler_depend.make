# Empty compiler generated dependencies file for miner_pool_test.
# This may be replaced when dependencies are built.
