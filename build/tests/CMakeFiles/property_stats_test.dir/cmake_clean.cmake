file(REMOVE_RECURSE
  "CMakeFiles/property_stats_test.dir/property/stats_property_test.cpp.o"
  "CMakeFiles/property_stats_test.dir/property/stats_property_test.cpp.o.d"
  "property_stats_test"
  "property_stats_test.pdb"
  "property_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
