file(REMOVE_RECURSE
  "CMakeFiles/analysis_report_test.dir/analysis/report_test.cpp.o"
  "CMakeFiles/analysis_report_test.dir/analysis/report_test.cpp.o.d"
  "analysis_report_test"
  "analysis_report_test.pdb"
  "analysis_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
