# Empty dependencies file for analysis_interblock_test.
# This may be replaced when dependencies are built.
