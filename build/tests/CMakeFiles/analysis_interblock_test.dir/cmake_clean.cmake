file(REMOVE_RECURSE
  "CMakeFiles/analysis_interblock_test.dir/analysis/interblock_test.cpp.o"
  "CMakeFiles/analysis_interblock_test.dir/analysis/interblock_test.cpp.o.d"
  "analysis_interblock_test"
  "analysis_interblock_test.pdb"
  "analysis_interblock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_interblock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
