file(REMOVE_RECURSE
  "CMakeFiles/property_rlp_test.dir/property/rlp_property_test.cpp.o"
  "CMakeFiles/property_rlp_test.dir/property/rlp_property_test.cpp.o.d"
  "property_rlp_test"
  "property_rlp_test.pdb"
  "property_rlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_rlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
