file(REMOVE_RECURSE
  "CMakeFiles/analysis_redundancy_test.dir/analysis/redundancy_test.cpp.o"
  "CMakeFiles/analysis_redundancy_test.dir/analysis/redundancy_test.cpp.o.d"
  "analysis_redundancy_test"
  "analysis_redundancy_test.pdb"
  "analysis_redundancy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_redundancy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
