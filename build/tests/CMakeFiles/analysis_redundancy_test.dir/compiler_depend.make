# Empty compiler generated dependencies file for analysis_redundancy_test.
# This may be replaced when dependencies are built.
