# Empty dependencies file for common_bounded_set_test.
# This may be replaced when dependencies are built.
