file(REMOVE_RECURSE
  "CMakeFiles/common_bounded_set_test.dir/common/bounded_set_test.cpp.o"
  "CMakeFiles/common_bounded_set_test.dir/common/bounded_set_test.cpp.o.d"
  "common_bounded_set_test"
  "common_bounded_set_test.pdb"
  "common_bounded_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_bounded_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
