file(REMOVE_RECURSE
  "CMakeFiles/property_blocktree_test.dir/property/blocktree_property_test.cpp.o"
  "CMakeFiles/property_blocktree_test.dir/property/blocktree_property_test.cpp.o.d"
  "property_blocktree_test"
  "property_blocktree_test.pdb"
  "property_blocktree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_blocktree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
