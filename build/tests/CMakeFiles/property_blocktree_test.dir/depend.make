# Empty dependencies file for property_blocktree_test.
# This may be replaced when dependencies are built.
