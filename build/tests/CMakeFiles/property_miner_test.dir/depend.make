# Empty dependencies file for property_miner_test.
# This may be replaced when dependencies are built.
