file(REMOVE_RECURSE
  "CMakeFiles/property_miner_test.dir/property/miner_property_test.cpp.o"
  "CMakeFiles/property_miner_test.dir/property/miner_property_test.cpp.o.d"
  "property_miner_test"
  "property_miner_test.pdb"
  "property_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
