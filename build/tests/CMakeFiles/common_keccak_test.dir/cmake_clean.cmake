file(REMOVE_RECURSE
  "CMakeFiles/common_keccak_test.dir/common/keccak_test.cpp.o"
  "CMakeFiles/common_keccak_test.dir/common/keccak_test.cpp.o.d"
  "common_keccak_test"
  "common_keccak_test.pdb"
  "common_keccak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_keccak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
