# Empty dependencies file for miner_mining_test.
# This may be replaced when dependencies are built.
