file(REMOVE_RECURSE
  "CMakeFiles/miner_mining_test.dir/miner/mining_test.cpp.o"
  "CMakeFiles/miner_mining_test.dir/miner/mining_test.cpp.o.d"
  "miner_mining_test"
  "miner_mining_test.pdb"
  "miner_mining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
