# Empty compiler generated dependencies file for p2p_node_id_test.
# This may be replaced when dependencies are built.
