file(REMOVE_RECURSE
  "CMakeFiles/analysis_sequences_test.dir/analysis/sequences_test.cpp.o"
  "CMakeFiles/analysis_sequences_test.dir/analysis/sequences_test.cpp.o.d"
  "analysis_sequences_test"
  "analysis_sequences_test.pdb"
  "analysis_sequences_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_sequences_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
