# Empty dependencies file for analysis_sequences_test.
# This may be replaced when dependencies are built.
