# Empty compiler generated dependencies file for analysis_security_test.
# This may be replaced when dependencies are built.
