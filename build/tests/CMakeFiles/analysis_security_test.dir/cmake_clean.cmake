file(REMOVE_RECURSE
  "CMakeFiles/analysis_security_test.dir/analysis/security_test.cpp.o"
  "CMakeFiles/analysis_security_test.dir/analysis/security_test.cpp.o.d"
  "analysis_security_test"
  "analysis_security_test.pdb"
  "analysis_security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
