file(REMOVE_RECURSE
  "CMakeFiles/eth_node_test.dir/eth/node_test.cpp.o"
  "CMakeFiles/eth_node_test.dir/eth/node_test.cpp.o.d"
  "eth_node_test"
  "eth_node_test.pdb"
  "eth_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eth_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
