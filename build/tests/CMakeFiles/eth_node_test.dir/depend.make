# Empty dependencies file for eth_node_test.
# This may be replaced when dependencies are built.
