# Empty compiler generated dependencies file for common_render_test.
# This may be replaced when dependencies are built.
