file(REMOVE_RECURSE
  "CMakeFiles/common_render_test.dir/common/render_test.cpp.o"
  "CMakeFiles/common_render_test.dir/common/render_test.cpp.o.d"
  "common_render_test"
  "common_render_test.pdb"
  "common_render_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
