file(REMOVE_RECURSE
  "CMakeFiles/chain_validation_test.dir/chain/validation_test.cpp.o"
  "CMakeFiles/chain_validation_test.dir/chain/validation_test.cpp.o.d"
  "chain_validation_test"
  "chain_validation_test.pdb"
  "chain_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
