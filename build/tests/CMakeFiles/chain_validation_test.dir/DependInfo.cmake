
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chain/validation_test.cpp" "tests/CMakeFiles/chain_validation_test.dir/chain/validation_test.cpp.o" "gcc" "tests/CMakeFiles/chain_validation_test.dir/chain/validation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ethsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ethsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ethsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/ethsim_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/ethsim_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/eth/CMakeFiles/ethsim_eth.dir/DependInfo.cmake"
  "/root/repo/build/src/miner/CMakeFiles/ethsim_miner.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/ethsim_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ethsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ethsim_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
