# Empty compiler generated dependencies file for analysis_empty_blocks_test.
# This may be replaced when dependencies are built.
