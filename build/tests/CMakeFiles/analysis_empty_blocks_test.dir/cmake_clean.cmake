file(REMOVE_RECURSE
  "CMakeFiles/analysis_empty_blocks_test.dir/analysis/empty_blocks_test.cpp.o"
  "CMakeFiles/analysis_empty_blocks_test.dir/analysis/empty_blocks_test.cpp.o.d"
  "analysis_empty_blocks_test"
  "analysis_empty_blocks_test.pdb"
  "analysis_empty_blocks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_empty_blocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
