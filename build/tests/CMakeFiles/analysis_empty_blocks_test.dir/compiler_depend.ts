# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for analysis_empty_blocks_test.
