file(REMOVE_RECURSE
  "CMakeFiles/chain_block_test.dir/chain/block_test.cpp.o"
  "CMakeFiles/chain_block_test.dir/chain/block_test.cpp.o.d"
  "chain_block_test"
  "chain_block_test.pdb"
  "chain_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
