# Empty compiler generated dependencies file for chain_block_test.
# This may be replaced when dependencies are built.
