# Empty compiler generated dependencies file for analysis_commit_test.
# This may be replaced when dependencies are built.
