file(REMOVE_RECURSE
  "CMakeFiles/analysis_commit_test.dir/analysis/commit_test.cpp.o"
  "CMakeFiles/analysis_commit_test.dir/analysis/commit_test.cpp.o.d"
  "analysis_commit_test"
  "analysis_commit_test.pdb"
  "analysis_commit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_commit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
