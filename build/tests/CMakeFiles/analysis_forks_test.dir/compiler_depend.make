# Empty compiler generated dependencies file for analysis_forks_test.
# This may be replaced when dependencies are built.
