file(REMOVE_RECURSE
  "CMakeFiles/analysis_forks_test.dir/analysis/forks_test.cpp.o"
  "CMakeFiles/analysis_forks_test.dir/analysis/forks_test.cpp.o.d"
  "analysis_forks_test"
  "analysis_forks_test.pdb"
  "analysis_forks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_forks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
