file(REMOVE_RECURSE
  "CMakeFiles/chain_txpool_test.dir/chain/txpool_test.cpp.o"
  "CMakeFiles/chain_txpool_test.dir/chain/txpool_test.cpp.o.d"
  "chain_txpool_test"
  "chain_txpool_test.pdb"
  "chain_txpool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_txpool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
