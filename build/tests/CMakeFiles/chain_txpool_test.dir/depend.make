# Empty dependencies file for chain_txpool_test.
# This may be replaced when dependencies are built.
