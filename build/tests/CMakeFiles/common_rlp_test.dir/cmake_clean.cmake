file(REMOVE_RECURSE
  "CMakeFiles/common_rlp_test.dir/common/rlp_test.cpp.o"
  "CMakeFiles/common_rlp_test.dir/common/rlp_test.cpp.o.d"
  "common_rlp_test"
  "common_rlp_test.pdb"
  "common_rlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_rlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
