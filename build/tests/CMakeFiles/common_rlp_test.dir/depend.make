# Empty dependencies file for common_rlp_test.
# This may be replaced when dependencies are built.
