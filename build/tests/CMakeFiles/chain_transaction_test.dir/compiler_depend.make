# Empty compiler generated dependencies file for chain_transaction_test.
# This may be replaced when dependencies are built.
