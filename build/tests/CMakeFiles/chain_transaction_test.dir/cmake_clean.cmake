file(REMOVE_RECURSE
  "CMakeFiles/chain_transaction_test.dir/chain/transaction_test.cpp.o"
  "CMakeFiles/chain_transaction_test.dir/chain/transaction_test.cpp.o.d"
  "chain_transaction_test"
  "chain_transaction_test.pdb"
  "chain_transaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_transaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
