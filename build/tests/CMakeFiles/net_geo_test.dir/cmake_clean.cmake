file(REMOVE_RECURSE
  "CMakeFiles/net_geo_test.dir/net/geo_test.cpp.o"
  "CMakeFiles/net_geo_test.dir/net/geo_test.cpp.o.d"
  "net_geo_test"
  "net_geo_test.pdb"
  "net_geo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_geo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
