# Empty compiler generated dependencies file for net_geo_test.
# This may be replaced when dependencies are built.
