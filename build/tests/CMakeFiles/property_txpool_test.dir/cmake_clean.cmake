file(REMOVE_RECURSE
  "CMakeFiles/property_txpool_test.dir/property/txpool_property_test.cpp.o"
  "CMakeFiles/property_txpool_test.dir/property/txpool_property_test.cpp.o.d"
  "property_txpool_test"
  "property_txpool_test.pdb"
  "property_txpool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_txpool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
