# Empty dependencies file for property_txpool_test.
# This may be replaced when dependencies are built.
