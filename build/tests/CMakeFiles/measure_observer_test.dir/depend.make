# Empty dependencies file for measure_observer_test.
# This may be replaced when dependencies are built.
