file(REMOVE_RECURSE
  "CMakeFiles/measure_observer_test.dir/measure/observer_test.cpp.o"
  "CMakeFiles/measure_observer_test.dir/measure/observer_test.cpp.o.d"
  "measure_observer_test"
  "measure_observer_test.pdb"
  "measure_observer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_observer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
