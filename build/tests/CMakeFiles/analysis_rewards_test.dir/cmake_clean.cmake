file(REMOVE_RECURSE
  "CMakeFiles/analysis_rewards_test.dir/analysis/rewards_test.cpp.o"
  "CMakeFiles/analysis_rewards_test.dir/analysis/rewards_test.cpp.o.d"
  "analysis_rewards_test"
  "analysis_rewards_test.pdb"
  "analysis_rewards_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_rewards_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
