# Empty dependencies file for analysis_rewards_test.
# This may be replaced when dependencies are built.
