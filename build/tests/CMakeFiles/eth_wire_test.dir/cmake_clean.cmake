file(REMOVE_RECURSE
  "CMakeFiles/eth_wire_test.dir/eth/wire_test.cpp.o"
  "CMakeFiles/eth_wire_test.dir/eth/wire_test.cpp.o.d"
  "eth_wire_test"
  "eth_wire_test.pdb"
  "eth_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eth_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
