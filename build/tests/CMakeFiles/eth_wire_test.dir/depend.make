# Empty dependencies file for eth_wire_test.
# This may be replaced when dependencies are built.
