file(REMOVE_RECURSE
  "CMakeFiles/chain_difficulty_test.dir/chain/difficulty_test.cpp.o"
  "CMakeFiles/chain_difficulty_test.dir/chain/difficulty_test.cpp.o.d"
  "chain_difficulty_test"
  "chain_difficulty_test.pdb"
  "chain_difficulty_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_difficulty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
