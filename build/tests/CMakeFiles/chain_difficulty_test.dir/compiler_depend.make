# Empty compiler generated dependencies file for chain_difficulty_test.
# This may be replaced when dependencies are built.
