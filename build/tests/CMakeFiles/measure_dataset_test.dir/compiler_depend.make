# Empty compiler generated dependencies file for measure_dataset_test.
# This may be replaced when dependencies are built.
