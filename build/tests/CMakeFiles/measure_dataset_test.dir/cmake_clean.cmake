file(REMOVE_RECURSE
  "CMakeFiles/measure_dataset_test.dir/measure/dataset_test.cpp.o"
  "CMakeFiles/measure_dataset_test.dir/measure/dataset_test.cpp.o.d"
  "measure_dataset_test"
  "measure_dataset_test.pdb"
  "measure_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
