file(REMOVE_RECURSE
  "CMakeFiles/pool_censorship.dir/pool_censorship.cpp.o"
  "CMakeFiles/pool_censorship.dir/pool_censorship.cpp.o.d"
  "pool_censorship"
  "pool_censorship.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_censorship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
