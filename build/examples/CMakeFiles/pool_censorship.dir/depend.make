# Empty dependencies file for pool_censorship.
# This may be replaced when dependencies are built.
