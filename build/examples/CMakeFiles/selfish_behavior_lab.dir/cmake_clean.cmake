file(REMOVE_RECURSE
  "CMakeFiles/selfish_behavior_lab.dir/selfish_behavior_lab.cpp.o"
  "CMakeFiles/selfish_behavior_lab.dir/selfish_behavior_lab.cpp.o.d"
  "selfish_behavior_lab"
  "selfish_behavior_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfish_behavior_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
