# Empty compiler generated dependencies file for selfish_behavior_lab.
# This may be replaced when dependencies are built.
