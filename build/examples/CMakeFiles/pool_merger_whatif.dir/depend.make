# Empty dependencies file for pool_merger_whatif.
# This may be replaced when dependencies are built.
