file(REMOVE_RECURSE
  "CMakeFiles/pool_merger_whatif.dir/pool_merger_whatif.cpp.o"
  "CMakeFiles/pool_merger_whatif.dir/pool_merger_whatif.cpp.o.d"
  "pool_merger_whatif"
  "pool_merger_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_merger_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
