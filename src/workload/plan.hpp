// Declarative traffic-generation plan. A WorkloadPlan is part of the
// experiment config: an ordered list of independent TrafficSources — Poisson
// baselines, per-region diurnal curves, scheduled flash crowds, and
// closed-loop client populations — each drawing from its own fork of the
// workload RNG stream. A run is a pure function of (config, plan, seed); an
// *empty* plan is guaranteed bit-for-bit inert: the generator then runs the
// legacy Poisson+burst+inversion process on the root workload stream with the
// exact draw order the original core::TxWorkload used, so every pre-plan
// golden (datasets, head hash, determinism digest) still matches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "net/geo.hpp"

namespace ethsim::workload {

// Legacy single-process parameters (the pre-plan workload model, kept as the
// default). Field semantics documented where core::ExperimentConfig embeds
// this struct.
struct TxWorkloadParams {
  // Aggregate submission rate across the network. Mainnet ran ~8.2 tx/s in
  // the study window; benches scale this down with the node count.
  double rate_per_sec = 2.0;
  // Distinct sender accounts (nonce streams).
  std::size_t accounts = 400;
  // Probability that a submission is a burst: the same sender immediately
  // issues the next nonce too, through a *different* node (multi-frontend
  // wallets/exchanges). Bursts are what make out-of-order arrivals possible.
  double burst_prob = 0.30;
  // Within a burst, probability that the *lower* nonce is the delayed one —
  // a stuck/slow frontend releases it seconds after the follow-up already
  // propagated. These inversions create the out-of-order commit penalty the
  // paper measures (Fig 5: OoO p90 325 s vs in-order 292 s): the higher
  // nonce sits queued in every pool until its predecessor shows up.
  double inversion_prob = 0.20;
  double inversion_delay_mean_s = 12.0;
  // Mean calldata size (exponential); 0 disables payloads.
  double payload_mean_bytes = 120.0;
};

enum class SourceKind : std::uint8_t {
  kPoisson = 0,   // flat-rate open-loop baseline
  kDiurnal,       // open-loop, rate follows the region's local time of day
  kFlashCrowd,    // open-loop, rate multiplied inside a scheduled window
  kClosedLoop,    // each client waits for inclusion/commit before the next tx
};
inline constexpr std::size_t kSourceKindCount = 4;
std::string_view SourceKindName(SourceKind kind);

// Region affinity sentinel: the source submits through frontends anywhere.
inline constexpr std::int32_t kAnyRegion = -1;

// Fee-market behavior of one source: where its gas prices come from, and
// whether a client replaces (same sender+nonce, escalated price) a tx that
// has not been included by the deadline — Geth's replace-by-fee path.
struct FeeModel {
  // log-normal gas-price distribution exp(N(mu, sigma)), clamped to
  // [1, 10000]. The legacy uniform 1..100 spread roughly matches mu=3.2.
  double gas_price_mu = 3.2;
  double gas_price_sigma = 0.9;
  // Zero disables replacement. Otherwise a tx still tracked as un-included
  // this long after submission is re-issued at an escalated price.
  Duration replacement_deadline;
  // Price multiplier per escalation; Geth requires >= 1.10 to replace.
  double escalation_factor = 1.125;
  std::uint32_t max_replacements = 3;
};

// One traffic source. Flat (no variant) so the provenance dump, the builder
// helpers, and the generator all speak the same trivially-serializable
// struct; fields irrelevant to a kind keep their inert defaults and are
// ignored.
struct TrafficSource {
  SourceKind kind = SourceKind::kPoisson;
  std::string name;

  // Open-loop kinds: mean submission rate (peak rate is derived per kind).
  double rate_per_sec = 1.0;

  // Sender population: global account indices
  // [account_offset, account_offset + accounts). Sources whose ranges
  // overlap *share* sender nonce streams — that contention (consecutive
  // nonces racing through different frontends) is the hot-account analogue
  // of the legacy burst path.
  std::size_t accounts = 100;
  std::uint64_t account_offset = 0;
  // Zipf exponent over the account range (0 = uniform). With s > 0 account
  // `account_offset + k` has weight (k+1)^-s, concentrating traffic on a few
  // hot senders.
  double zipf_exponent = 0.0;

  // Frontend affinity: submit only through frontends in this region
  // (net::Region cast to int), or kAnyRegion for the whole fleet. Diurnal
  // sources also take their local clock from this region.
  std::int32_t region = kAnyRegion;

  // kDiurnal: rate(t) = rate_per_sec * (1 + amplitude * cos(local_hour
  // relative to peak_hour)); amplitude in [0, 1].
  double diurnal_amplitude = 0.6;
  double peak_hour = 14.0;

  // kFlashCrowd: baseline rate_per_sec outside the window; inside
  // [surge_at, surge_at + surge_window) the rate is multiplied.
  TimePoint surge_at;
  Duration surge_window;
  double surge_multiplier = 8.0;

  // kClosedLoop: `clients` independent users, each owning one account from
  // the range above; a client submits, polls a frontend's canonical chain
  // every poll_interval until its tx is `commit_depth` blocks deep, then
  // thinks (exponential think_time_mean) and submits the next.
  std::size_t clients = 0;
  Duration think_time_mean = Duration::Seconds(30);
  std::uint64_t commit_depth = 0;
  Duration poll_interval = Duration::Seconds(3);

  // Mean calldata size (exponential); 0 disables payloads.
  double payload_mean_bytes = 120.0;

  FeeModel fee;
};

// The plan: an ordered set of sources. Ordering is part of the identity —
// source i draws from Fork(workload_stream, i).
struct WorkloadPlan {
  std::vector<TrafficSource> sources;

  bool empty() const { return sources.empty(); }

  // Builder helpers (chainable). Each appends one source; `last()` exposes
  // it for follow-up tweaks (zipf_exponent, fee model, account_offset).
  WorkloadPlan& Poisson(std::string name, double rate_per_sec,
                        std::size_t accounts);
  WorkloadPlan& Diurnal(std::string name, double rate_per_sec,
                        std::size_t accounts, net::Region region,
                        double amplitude = 0.6, double peak_hour = 14.0);
  WorkloadPlan& FlashCrowd(std::string name, double rate_per_sec,
                           std::size_t accounts, TimePoint at, Duration window,
                           double multiplier = 8.0);
  WorkloadPlan& ClosedLoop(std::string name, std::size_t clients,
                           Duration think_time_mean,
                           std::uint64_t commit_depth = 0);
  TrafficSource& last();

  // Structural validation: unique non-empty names, non-negative rates and
  // probabilities, populated account ranges for open-loop kinds, sane
  // diurnal/flash-crowd/closed-loop/fee parameters. Returns an empty string
  // when the plan is well-formed, else a description of the first violation.
  std::string Validate() const;
};

// Local-time offset a diurnal source applies to the simulation clock (the
// simulation starts at UTC midnight by convention). Coarse per-region UTC
// offsets; only relative phase between regions matters.
double RegionUtcOffsetHours(net::Region region);

// Deterministic sender address for a global account index. Shared by the
// legacy path and every plan source, so overlapping account ranges really do
// collide on the same on-chain senders.
Address AccountAddress(std::uint64_t index);

}  // namespace ethsim::workload
