#include "workload/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/diag.hpp"
#include "obs/metrics.hpp"

namespace ethsim::workload {

namespace {
constexpr double kTwoPi = 6.283185307179586;
constexpr std::uint64_t kMaxGasPrice = 10'000;
}  // namespace

WorkloadGenerator::WorkloadGenerator(sim::Simulator& simulator, Rng rng,
                                     TxWorkloadParams legacy_params,
                                     WorkloadPlan plan,
                                     std::vector<eth::EthNode*> frontends)
    : sim_(simulator),
      rng_(rng),
      params_(legacy_params),
      plan_(std::move(plan)),
      frontends_(std::move(frontends)) {
  assert(!frontends_.empty());
  base_height_ = frontends_.front()->tree().head()->header.number;

  if (plan_.empty()) {
    // Legacy mode: the historical account table and per-account nonces.
    assert(params_.accounts > 0);
    next_nonce_.assign(params_.accounts, 0);
    account_addr_.reserve(params_.accounts);
    for (std::size_t i = 0; i < params_.accounts; ++i)
      account_addr_.push_back(AccountAddress(i));
    return;
  }

  source_submitted_.assign(plan_.sources.size(), 0);
  source_included_.assign(plan_.sources.size(), 0);
  sources_.reserve(plan_.sources.size());
  for (std::size_t i = 0; i < plan_.sources.size(); ++i) {
    const TrafficSource& src = plan_.sources[i];
    SourceState st{rng_.Fork(i)};
    st.last_scanned = base_height_;

    // Frontend affinity: the region's frontends, or (if the fleet has none
    // there, or no affinity is set) everyone.
    if (src.region != kAnyRegion) {
      for (std::uint32_t f = 0; f < frontends_.size(); ++f)
        if (static_cast<std::int32_t>(frontends_[f]->region()) == src.region)
          st.frontends.push_back(f);
    }
    if (st.frontends.empty()) {
      st.frontends.resize(frontends_.size());
      for (std::uint32_t f = 0; f < frontends_.size(); ++f) st.frontends[f] = f;
    }

    // Zipf CDF over the account range: account k has weight (k+1)^-s.
    if (src.zipf_exponent > 0 && src.accounts > 1) {
      st.zipf_cdf.reserve(src.accounts);
      double total = 0;
      for (std::size_t k = 0; k < src.accounts; ++k) {
        total += std::pow(static_cast<double>(k + 1), -src.zipf_exponent);
        st.zipf_cdf.push_back(total);
      }
      for (double& c : st.zipf_cdf) c /= total;
    }

    if (src.kind == SourceKind::kClosedLoop) {
      st.clients.resize(src.clients);
      for (std::size_t c = 0; c < src.clients; ++c)
        st.clients[c].account = src.account_offset + c;
    }

    // Pre-intern the sender addresses so inclusion scans resolve without
    // hashing, and overlapping ranges land on identical Address values.
    for (std::size_t k = 0; k < src.accounts; ++k) {
      const std::uint64_t global = src.account_offset + k;
      if (plan_addr_.contains(global)) continue;
      const Address addr = AccountAddress(global);
      plan_addr_.emplace(global, addr);
      addr_index_.emplace(addr, global);
    }

    sources_.push_back(std::move(st));
  }
}

void WorkloadGenerator::AttachTelemetry(obs::Telemetry* telemetry) {
  if (telemetry == nullptr) return;
  txprov_ = telemetry->txprov();
  obs::MetricsRegistry* metrics = telemetry->metrics();
  if (metrics == nullptr) return;
  submitted_counter_ = metrics->GetCounter("workload.submitted");
  if (plan_.empty()) return;
  replaced_counter_ = metrics->GetCounter("workload.replacements");
  source_counters_.reserve(plan_.sources.size());
  source_included_counters_.reserve(plan_.sources.size());
  for (const TrafficSource& src : plan_.sources) {
    source_counters_.push_back(metrics->GetCounter(
        obs::LabeledName("workload.submitted", {{"source", src.name}})));
    source_included_counters_.push_back(metrics->GetCounter(
        obs::LabeledName("workload.included", {{"source", src.name}})));
  }
}

void WorkloadGenerator::Start() {
  if (plan_.empty()) {
    if (params_.rate_per_sec <= 0) return;
    LegacyScheduleNext();
    return;
  }
  for (std::size_t i = 0; i < plan_.sources.size(); ++i) StartSource(i);
}

// ---------------------------------------------------------------------------
// Legacy mode — the historical core::TxWorkload, draw-for-draw. Any change
// to the RNG consumption order here moves every golden in
// tests/integration/chain_golden_replay_test.cpp.

void WorkloadGenerator::LegacyScheduleNext() {
  const Duration wait =
      Duration::Seconds(rng_.NextExponential(1.0 / params_.rate_per_sec));
  sim_.Schedule(wait, [this] { LegacySubmitOne(); });
}

chain::Transaction WorkloadGenerator::LegacyBuildTx(std::size_t account) {
  const std::uint64_t nonce = next_nonce_[account]++;
  std::uint32_t payload = 0;
  if (params_.payload_mean_bytes > 0)
    payload = static_cast<std::uint32_t>(
        rng_.NextExponential(params_.payload_mean_bytes));
  // Gas prices 1..100 gwei-ish; spread exercises the pool's price ordering.
  const std::uint64_t gas_price = 1 + rng_.NextBounded(100);
  const Address to = AccountAddress(rng_.NextBounded(params_.accounts));
  return chain::MakeTransaction(account_addr_[account], nonce, to,
                                /*value=*/1 + rng_.NextBounded(1'000'000),
                                gas_price, payload);
}

void WorkloadGenerator::LegacySubmitOne() {
  const std::size_t account = rng_.NextBounded(params_.accounts);
  const std::size_t frontend = rng_.NextBounded(frontends_.size());

  const chain::Transaction tx = LegacyBuildTx(account);
  const bool burst = rng_.NextBool(params_.burst_prob);

  if (!burst) {
    Record(tx, sim_.Now(), 0, 0, static_cast<std::uint32_t>(frontend), false,
           false);
    frontends_[frontend]->SubmitTransaction(tx);
    LegacyScheduleNext();
    return;
  }

  // A burst: the follow-up nonce leaves from a different frontend. Normally
  // it trails by a few ms (two gossip waves race; the higher nonce sometimes
  // wins at a vantage — §III-C2). In an *inversion*, the lower nonce is the
  // one stuck behind a slow frontend for seconds, so the higher nonce
  // provably propagates first and must wait in every txpool's queued bucket.
  //
  // With a single frontend there is no "different frontend": both legs leave
  // from the same node, the two gossip waves collapse into one, and the
  // out-of-order race cannot happen. Surface that once instead of silently
  // degrading the scenario (the `other` draw still happens, preserving the
  // historical stream).
  if (frontends_.size() == 1 && !warned_single_frontend_) {
    warned_single_frontend_ = true;
    obs::LogWarn("workload",
                 "burst follow-up reuses the only frontend: with a single "
                 "frontend the SIII-C2 out-of-order race cannot occur");
  }
  const chain::Transaction follow = LegacyBuildTx(account);
  std::size_t other = rng_.NextBounded(frontends_.size());
  if (frontends_.size() > 1 && other == frontend)
    other = (other + 1) % frontends_.size();

  Duration first_delay = Duration::Micros(0);
  Duration follow_delay = Duration::Millis(
      1 + static_cast<std::int64_t>(rng_.NextBounded(40)));
  if (rng_.NextBool(params_.inversion_prob)) {
    first_delay =
        Duration::Seconds(rng_.NextExponential(params_.inversion_delay_mean_s));
    follow_delay = Duration::Micros(0);
  }

  Record(tx, sim_.Now() + first_delay, 0, 0,
         static_cast<std::uint32_t>(frontend), false, true);
  Record(follow, sim_.Now() + follow_delay, 0, 0,
         static_cast<std::uint32_t>(other), false, true);
  sim_.Schedule(first_delay, [this, frontend, tx] {
    frontends_[frontend]->SubmitTransaction(tx);
  });
  sim_.Schedule(follow_delay, [this, other, follow] {
    frontends_[other]->SubmitTransaction(follow);
  });

  LegacyScheduleNext();
}

// ---------------------------------------------------------------------------
// Plan mode.

void WorkloadGenerator::StartSource(std::size_t source) {
  const TrafficSource& src = plan_.sources[source];
  const bool active = src.kind == SourceKind::kClosedLoop
                          ? src.clients > 0
                          : src.rate_per_sec > 0;
  // A disabled source consumes nothing: no RNG draw, no event — its Fork(i)
  // stream stays untouched, so every other source is bit-identical with or
  // without it (the isolation contract the unit tests pin).
  if (!active) return;

  if (NeedsTracking(src)) SchedulePoll(source);
  if (src.kind == SourceKind::kClosedLoop) {
    for (std::size_t c = 0; c < sources_[source].clients.size(); ++c)
      ScheduleClientSubmit(source, c, /*first=*/true);
  } else {
    ScheduleArrival(source);
  }
}

double WorkloadGenerator::PeakRate(const TrafficSource& src) const {
  switch (src.kind) {
    case SourceKind::kDiurnal:
      return src.rate_per_sec * (1.0 + src.diurnal_amplitude);
    case SourceKind::kFlashCrowd:
      return src.rate_per_sec * src.surge_multiplier;
    default:
      return src.rate_per_sec;
  }
}

double WorkloadGenerator::RateAt(const TrafficSource& src,
                                 TimePoint now) const {
  switch (src.kind) {
    case SourceKind::kDiurnal: {
      // The simulation clock starts at UTC midnight; the source's local hour
      // is offset by its region's coarse UTC offset.
      const double hour = std::fmod(
          now.micros() / 3.6e9 +
              RegionUtcOffsetHours(static_cast<net::Region>(src.region)) + 24.0,
          24.0);
      const double phase = kTwoPi * (hour - src.peak_hour) / 24.0;
      return src.rate_per_sec * (1.0 + src.diurnal_amplitude * std::cos(phase));
    }
    case SourceKind::kFlashCrowd: {
      const std::int64_t t = now.micros();
      const bool inside = t >= src.surge_at.micros() &&
                          t < src.surge_at.micros() + src.surge_window.micros();
      return inside ? src.rate_per_sec * src.surge_multiplier
                    : src.rate_per_sec;
    }
    default:
      return src.rate_per_sec;
  }
}

void WorkloadGenerator::ScheduleArrival(std::size_t source) {
  // Thinning (non-homogeneous Poisson): draw candidate arrivals at the peak
  // rate, accept each with probability rate(t)/peak. Flat Poisson sources
  // skip the acceptance draw entirely.
  const double peak = PeakRate(plan_.sources[source]);
  const Duration wait =
      Duration::Seconds(sources_[source].rng.NextExponential(1.0 / peak));
  sim_.Schedule(wait, [this, source] {
    const TrafficSource& src = plan_.sources[source];
    bool accept = true;
    if (src.kind != SourceKind::kPoisson) {
      const double ratio = RateAt(src, sim_.Now()) / PeakRate(src);
      accept = sources_[source].rng.NextBool(ratio);
    }
    if (accept) SubmitFromSource(source, -1);
    ScheduleArrival(source);
  });
}

std::uint64_t WorkloadGenerator::PickAccount(std::size_t source) {
  const TrafficSource& src = plan_.sources[source];
  SourceState& st = sources_[source];
  if (st.zipf_cdf.empty())
    return src.account_offset + st.rng.NextBounded(src.accounts);
  const double u = st.rng.NextDouble();
  const auto it = std::lower_bound(st.zipf_cdf.begin(), st.zipf_cdf.end(), u);
  const std::size_t k = std::min<std::size_t>(
      static_cast<std::size_t>(it - st.zipf_cdf.begin()), src.accounts - 1);
  return src.account_offset + k;
}

std::uint32_t WorkloadGenerator::PickFrontend(std::size_t source) {
  SourceState& st = sources_[source];
  return st.frontends[st.rng.NextBounded(st.frontends.size())];
}

std::uint64_t WorkloadGenerator::DrawGasPrice(std::size_t source) {
  const FeeModel& fee = plan_.sources[source].fee;
  const double raw = sources_[source].rng.NextLogNormal(fee.gas_price_mu,
                                                        fee.gas_price_sigma);
  const double clamped =
      std::clamp(raw, 1.0, static_cast<double>(kMaxGasPrice));
  return static_cast<std::uint64_t>(clamped);
}

chain::Transaction WorkloadGenerator::PlanBuildTx(std::size_t source,
                                                  std::uint64_t account,
                                                  std::uint64_t nonce,
                                                  std::uint64_t gas_price) {
  const TrafficSource& src = plan_.sources[source];
  SourceState& st = sources_[source];
  std::uint32_t payload = 0;
  if (src.payload_mean_bytes > 0)
    payload = static_cast<std::uint32_t>(
        st.rng.NextExponential(src.payload_mean_bytes));
  const std::uint64_t to_index =
      src.account_offset + st.rng.NextBounded(src.accounts);
  return chain::MakeTransaction(plan_addr_.at(account), nonce,
                                plan_addr_.at(to_index),
                                /*value=*/1 + st.rng.NextBounded(1'000'000),
                                gas_price, payload);
}

void WorkloadGenerator::SubmitFromSource(std::size_t source,
                                         std::int32_t client) {
  const TrafficSource& src = plan_.sources[source];
  SourceState& st = sources_[source];
  const std::uint64_t account = client >= 0
                                    ? st.clients[client].account
                                    : PickAccount(source);
  const std::uint32_t frontend = PickFrontend(source);
  // Nonces are global per account: sources sharing an account range contend
  // on the same stream, so their consecutive nonces race through different
  // frontends — the hot-account out-of-order shape.
  const std::uint64_t nonce = plan_next_nonce_[account]++;
  const std::uint64_t gas_price = DrawGasPrice(source);
  const chain::Transaction tx = PlanBuildTx(source, account, nonce, gas_price);
  frontends_[frontend]->SubmitTransaction(tx);
  Record(tx, sim_.Now(), source, 0, frontend, client >= 0, false);

  if (!NeedsTracking(src)) return;
  PendingTrack track;
  track.nonce = nonce;
  track.hash = tx.hash;
  track.gas_price = gas_price;
  track.submitted_at = sim_.Now();
  track.frontend = frontend;
  track.client = client;
  track.account = account;
  st.tracked[tx.sender].push_back(track);
  ++tracked_in_flight_;
  if (client >= 0) {
    st.clients[client].in_flight = true;
    ++closed_loop_in_flight_;
  }
  if (src.fee.replacement_deadline.micros() > 0)
    ScheduleReplacement(source, tx.sender, nonce);
}

void WorkloadGenerator::ScheduleReplacement(std::size_t source, Address sender,
                                            std::uint64_t nonce) {
  sim_.Schedule(plan_.sources[source].fee.replacement_deadline,
                [this, source, sender, nonce] {
    SourceState& st = sources_[source];
    const auto it = st.tracked.find(sender);
    if (it == st.tracked.end()) return;
    auto entry = std::find_if(
        it->second.begin(), it->second.end(),
        [nonce](const PendingTrack& t) { return t.nonce == nonce; });
    if (entry == it->second.end()) return;  // included before the deadline
    const TrafficSource& src = plan_.sources[source];
    if (entry->replacement >= src.fee.max_replacements) return;

    // Replace-by-fee: same (sender, nonce), escalated price. The pool treats
    // the higher-priced tx as the replacement; the original becomes dust.
    const std::uint64_t escalated = std::max<std::uint64_t>(
        entry->gas_price + 1,
        static_cast<std::uint64_t>(
            static_cast<double>(entry->gas_price) * src.fee.escalation_factor));
    entry->replacement += 1;
    entry->gas_price = std::min(escalated, kMaxGasPrice);
    const chain::Transaction tx =
        PlanBuildTx(source, entry->account, nonce, entry->gas_price);
    entry->hash = tx.hash;
    frontends_[entry->frontend]->SubmitTransaction(tx);
    Record(tx, sim_.Now(), source, entry->replacement, entry->frontend,
           entry->client >= 0, false);
    ++replacements_issued_;
    if (replaced_counter_ != nullptr) replaced_counter_->Add();
    ScheduleReplacement(source, sender, nonce);
  });
}

void WorkloadGenerator::SchedulePoll(std::size_t source) {
  sim_.Schedule(plan_.sources[source].poll_interval, [this, source] {
    PollInclusions(source);
    SchedulePoll(source);
  });
}

void WorkloadGenerator::PollInclusions(std::size_t source) {
  const TrafficSource& src = plan_.sources[source];
  SourceState& st = sources_[source];
  // The source's clients all watch one representative frontend's chain view
  // (deterministic: the first frontend of the affinity list). Closed-loop
  // clients wait for commit_depth confirmations; replacement tracking
  // resolves at inclusion (depth 0).
  const chain::BlockTree& tree = frontends_[st.frontends.front()]->tree();
  const std::uint64_t depth =
      src.kind == SourceKind::kClosedLoop ? src.commit_depth : 0;
  const std::uint64_t head = tree.head_number();
  if (head < depth) return;
  const std::uint64_t confirmed = head - depth;
  for (std::uint64_t h = st.last_scanned + 1; h <= confirmed; ++h) {
    const chain::BlockPtr block = tree.Get(tree.CanonicalAt(h));
    if (block == nullptr) break;
    for (const chain::Transaction& tx : block->transactions)
      ResolveInclusion(source, tx);
    st.last_scanned = h;
  }
}

void WorkloadGenerator::ResolveInclusion(std::size_t source,
                                         const chain::Transaction& tx) {
  SourceState& st = sources_[source];
  const auto it = st.tracked.find(tx.sender);
  if (it == st.tracked.end()) return;
  auto& entries = it->second;
  for (std::size_t i = 0; i < entries.size();) {
    // An included nonce resolves its own entry and any lower one (nonce
    // monotonicity: lower nonces were necessarily executed earlier).
    if (entries[i].nonce > tx.nonce) {
      ++i;
      continue;
    }
    const PendingTrack entry = entries[i];
    entries[i] = entries.back();
    entries.pop_back();
    --tracked_in_flight_;
    ++source_included_[source];
    if (!source_included_counters_.empty() &&
        source_included_counters_[source] != nullptr)
      source_included_counters_[source]->Add();
    if (entry.client >= 0) {
      st.clients[entry.client].in_flight = false;
      --closed_loop_in_flight_;
      ++closed_loop_completed_;
      ScheduleClientSubmit(source, static_cast<std::size_t>(entry.client),
                           /*first=*/false);
    }
  }
  if (entries.empty()) st.tracked.erase(it);
}

void WorkloadGenerator::ScheduleClientSubmit(std::size_t source,
                                             std::size_t client, bool first) {
  const TrafficSource& src = plan_.sources[source];
  SourceState& st = sources_[source];
  // First submissions stagger clients across one think interval; follow-ups
  // think after seeing the previous tx commit.
  const Duration think = Duration::Seconds(
      st.rng.NextExponential(src.think_time_mean.seconds()));
  (void)first;
  sim_.Schedule(think, [this, source, client] {
    if (sources_[source].clients[client].in_flight) return;
    SubmitFromSource(source, static_cast<std::int32_t>(client));
  });
}

void WorkloadGenerator::Record(const chain::Transaction& tx, TimePoint at,
                               std::size_t source, std::uint16_t replacement,
                               std::uint32_t frontend, bool closed_loop,
                               bool burst) {
  SubmittedTx rec;
  rec.hash = tx.hash;
  rec.sender = tx.sender;
  rec.nonce = tx.nonce;
  rec.submitted_at = at;
  rec.part_of_burst = burst;
  rec.source = static_cast<std::uint16_t>(source);
  rec.replacement = replacement;
  rec.region = static_cast<std::uint8_t>(frontends_[frontend]->region());
  rec.closed_loop = closed_loop;
  rec.gas_price = tx.gas_price;
  submitted_.push_back(rec);
  // Stamped with the submission time `at` (legacy bursts record at
  // scheduling time), so the stage timeline lines up with SubmittedTx rows.
  if (txprov_ != nullptr) [[unlikely]]
    txprov_->RecordSubmitted(tx.hash, at.micros(), frontends_[frontend]->host(),
                             static_cast<std::uint16_t>(source), tx.gas_price,
                             replacement);
  if (!source_submitted_.empty()) ++source_submitted_[source];
  if (submitted_counter_ != nullptr) submitted_counter_->Add();
  if (!source_counters_.empty() && source_counters_[source] != nullptr)
    source_counters_[source]->Add();
}

}  // namespace ethsim::workload
