#include "workload/plan.hpp"

#include <unordered_set>

#include "common/keccak.hpp"

namespace ethsim::workload {

std::string_view SourceKindName(SourceKind kind) {
  switch (kind) {
    case SourceKind::kPoisson: return "poisson";
    case SourceKind::kDiurnal: return "diurnal";
    case SourceKind::kFlashCrowd: return "flash_crowd";
    case SourceKind::kClosedLoop: return "closed_loop";
  }
  return "unknown";
}

double RegionUtcOffsetHours(net::Region region) {
  switch (region) {
    case net::Region::NorthAmerica: return -6.0;   // central US
    case net::Region::SouthAmerica: return -4.0;
    case net::Region::WesternEurope: return 0.0;
    case net::Region::CentralEurope: return 1.0;
    case net::Region::EasternEurope: return 2.0;
    case net::Region::EasternAsia: return 8.0;
    case net::Region::SoutheastAsia: return 7.0;
    case net::Region::Oceania: return 10.0;
  }
  return 0.0;
}

Address AccountAddress(std::uint64_t index) {
  const Hash32 digest = Keccak256Of("account-" + std::to_string(index));
  Address addr;
  for (std::size_t i = 0; i < 20; ++i) addr.bytes[i] = digest.bytes[i];
  return addr;
}

WorkloadPlan& WorkloadPlan::Poisson(std::string name, double rate_per_sec,
                                    std::size_t accounts) {
  TrafficSource src;
  src.kind = SourceKind::kPoisson;
  src.name = std::move(name);
  src.rate_per_sec = rate_per_sec;
  src.accounts = accounts;
  sources.push_back(std::move(src));
  return *this;
}

WorkloadPlan& WorkloadPlan::Diurnal(std::string name, double rate_per_sec,
                                    std::size_t accounts, net::Region region,
                                    double amplitude, double peak_hour) {
  TrafficSource src;
  src.kind = SourceKind::kDiurnal;
  src.name = std::move(name);
  src.rate_per_sec = rate_per_sec;
  src.accounts = accounts;
  src.region = static_cast<std::int32_t>(region);
  src.diurnal_amplitude = amplitude;
  src.peak_hour = peak_hour;
  sources.push_back(std::move(src));
  return *this;
}

WorkloadPlan& WorkloadPlan::FlashCrowd(std::string name, double rate_per_sec,
                                       std::size_t accounts, TimePoint at,
                                       Duration window, double multiplier) {
  TrafficSource src;
  src.kind = SourceKind::kFlashCrowd;
  src.name = std::move(name);
  src.rate_per_sec = rate_per_sec;
  src.accounts = accounts;
  src.surge_at = at;
  src.surge_window = window;
  src.surge_multiplier = multiplier;
  sources.push_back(std::move(src));
  return *this;
}

WorkloadPlan& WorkloadPlan::ClosedLoop(std::string name, std::size_t clients,
                                       Duration think_time_mean,
                                       std::uint64_t commit_depth) {
  TrafficSource src;
  src.kind = SourceKind::kClosedLoop;
  src.name = std::move(name);
  src.rate_per_sec = 0.0;  // rate emerges from the inclusion feedback loop
  src.clients = clients;
  src.accounts = clients;  // one account per client
  src.think_time_mean = think_time_mean;
  src.commit_depth = commit_depth;
  sources.push_back(std::move(src));
  return *this;
}

TrafficSource& WorkloadPlan::last() { return sources.back(); }

namespace {
std::string Err(std::size_t index, const TrafficSource& src,
                const std::string& what) {
  return "source " + std::to_string(index) + " (" +
         std::string(SourceKindName(src.kind)) +
         (src.name.empty() ? "" : " '" + src.name + "'") + "): " + what;
}
}  // namespace

std::string WorkloadPlan::Validate() const {
  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const TrafficSource& src = sources[i];
    if (src.name.empty()) return Err(i, src, "name must be non-empty");
    if (!names.insert(src.name).second)
      return Err(i, src, "duplicate source name");
    if (src.rate_per_sec < 0)
      return Err(i, src, "rate_per_sec must be >= 0");
    if (src.region != kAnyRegion &&
        (src.region < 0 ||
         src.region >= static_cast<std::int32_t>(net::kRegionCount)))
      return Err(i, src, "region out of range");
    if (src.zipf_exponent < 0)
      return Err(i, src, "zipf_exponent must be >= 0");
    if (src.payload_mean_bytes < 0)
      return Err(i, src, "payload_mean_bytes must be >= 0");

    if (src.kind == SourceKind::kClosedLoop) {
      if (src.clients == 0) return Err(i, src, "clients must be >= 1");
      if (src.accounts < src.clients)
        return Err(i, src, "accounts must cover one account per client");
      if (src.think_time_mean.micros() <= 0)
        return Err(i, src, "think_time_mean must be > 0");
      if (src.poll_interval.micros() <= 0)
        return Err(i, src, "poll_interval must be > 0");
    } else {
      if (src.accounts == 0) return Err(i, src, "accounts must be >= 1");
    }

    if (src.kind == SourceKind::kDiurnal) {
      if (src.diurnal_amplitude < 0 || src.diurnal_amplitude > 1)
        return Err(i, src, "diurnal_amplitude must be in [0, 1]");
      if (src.peak_hour < 0 || src.peak_hour >= 24)
        return Err(i, src, "peak_hour must be in [0, 24)");
      if (src.region == kAnyRegion)
        return Err(i, src, "diurnal sources need a region (local clock)");
    }

    if (src.kind == SourceKind::kFlashCrowd) {
      if (src.surge_window.micros() <= 0)
        return Err(i, src, "surge_window must be > 0");
      if (src.surge_multiplier < 1)
        return Err(i, src, "surge_multiplier must be >= 1");
    }

    const FeeModel& fee = src.fee;
    if (fee.gas_price_sigma < 0)
      return Err(i, src, "fee.gas_price_sigma must be >= 0");
    if (fee.replacement_deadline.micros() < 0)
      return Err(i, src, "fee.replacement_deadline must be >= 0");
    if (fee.replacement_deadline.micros() > 0) {
      if (fee.escalation_factor <= 1.0)
        return Err(i, src, "fee.escalation_factor must be > 1 to replace");
      if (src.poll_interval.micros() <= 0)
        return Err(i, src, "poll_interval must be > 0 to track replacements");
    }
  }
  return {};
}

}  // namespace ethsim::workload
