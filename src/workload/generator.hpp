// Transaction workload generator. Two modes, chosen by the plan:
//
//   * Legacy (empty WorkloadPlan, the default): the original Poisson
//     submission process with bursts and nonce inversions, executed with the
//     exact RNG draw order of the historical core::TxWorkload so every
//     pre-plan golden (datasets, head hash, determinism digest) stays
//     bit-for-bit identical.
//
//   * Plan mode (non-empty WorkloadPlan): each TrafficSource runs on its own
//     Fork(i) of the workload stream — open-loop Poisson/diurnal/flash-crowd
//     arrivals via thinning, Zipf sender selection, log-normal gas prices,
//     deadline-driven replace-by-fee escalation, and closed-loop clients that
//     poll a frontend's canonical chain and only submit after their previous
//     tx is commit_depth blocks deep.
//
// The generator only ever *reads* chain state (a frontend's BlockTree) and
// *submits* transactions; it never mutates nodes directly, so determinism
// reduces to the per-source RNG streams plus the simulator's (time, seq)
// event order.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chain/transaction.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "eth/node.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "workload/plan.hpp"

namespace ethsim::workload {

inline constexpr std::uint8_t kNoRegion = 0xff;

struct SubmittedTx {
  Hash32 hash;
  Address sender;
  std::uint64_t nonce = 0;
  TimePoint submitted_at;
  bool part_of_burst = false;
  // Plan-mode provenance (legacy mode: source 0, replacement 0).
  std::uint16_t source = 0;       // index into plan().sources
  std::uint16_t replacement = 0;  // k-th replace-by-fee escalation (0 = first)
  std::uint8_t region = kNoRegion;  // frontend region the tx entered through
  bool closed_loop = false;
  std::uint64_t gas_price = 0;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(sim::Simulator& simulator, Rng rng,
                    TxWorkloadParams legacy_params, WorkloadPlan plan,
                    std::vector<eth::EthNode*> frontends);

  // Registers per-source counters; call before Start. Null telemetry (or a
  // telemetry without metrics) is a no-op.
  void AttachTelemetry(obs::Telemetry* telemetry);

  void Start();

  const std::vector<SubmittedTx>& submitted() const { return submitted_; }
  std::uint64_t total_submitted() const { return submitted_.size(); }
  const WorkloadPlan& plan() const { return plan_; }

  // Read-only accessors for sampler probes and the run manifest.
  std::uint64_t closed_loop_in_flight() const { return closed_loop_in_flight_; }
  std::uint64_t closed_loop_completed() const { return closed_loop_completed_; }
  std::uint64_t replacements_issued() const { return replacements_issued_; }
  std::uint64_t tracked_in_flight() const { return tracked_in_flight_; }
  std::uint64_t source_submitted(std::size_t source) const {
    return source_submitted_.empty() ? 0 : source_submitted_[source];
  }
  std::uint64_t source_included(std::size_t source) const {
    return source_included_.empty() ? 0 : source_included_[source];
  }

 private:
  // --- Legacy mode (bit-for-bit the historical core::TxWorkload) ---------
  void LegacyScheduleNext();
  void LegacySubmitOne();
  chain::Transaction LegacyBuildTx(std::size_t account);

  // --- Plan mode ---------------------------------------------------------
  struct PendingTrack {  // one un-included tx a source still watches
    std::uint64_t nonce = 0;
    Hash32 hash;
    std::uint64_t gas_price = 0;
    TimePoint submitted_at;
    std::uint16_t replacement = 0;
    std::uint32_t frontend = 0;
    std::int32_t client = -1;  // closed-loop client index, -1 for open loop
    std::uint64_t account = 0;  // global account index (for rebuilds)
  };
  struct ClientState {
    std::uint64_t account = 0;  // global account index
    bool in_flight = false;
  };
  struct SourceState {
    explicit SourceState(Rng r) : rng(r) {}
    Rng rng;
    std::vector<std::uint32_t> frontends;  // indices into frontends_
    std::vector<double> zipf_cdf;          // empty = uniform
    std::vector<ClientState> clients;
    // Un-included txs this source tracks (closed-loop always; open-loop only
    // when the fee model has a replacement deadline), keyed by sender.
    std::unordered_map<Address, std::vector<PendingTrack>> tracked;
    std::uint64_t last_scanned = 0;  // canonical height already scanned
    bool polling = false;
  };

  void StartSource(std::size_t source);
  void ScheduleArrival(std::size_t source);
  // Peak rate the thinning loop draws against (>= rate at any instant).
  double PeakRate(const TrafficSource& src) const;
  double RateAt(const TrafficSource& src, TimePoint now) const;
  std::uint64_t PickAccount(std::size_t source);
  std::uint32_t PickFrontend(std::size_t source);
  std::uint64_t DrawGasPrice(std::size_t source);
  chain::Transaction PlanBuildTx(std::size_t source, std::uint64_t account,
                                 std::uint64_t nonce, std::uint64_t gas_price);
  // Submits one tx from `source` (client < 0: open loop). Returns the track
  // entry when the source watches inclusions, else null.
  void SubmitFromSource(std::size_t source, std::int32_t client);
  void ScheduleReplacement(std::size_t source, Address sender,
                           std::uint64_t nonce);
  void SchedulePoll(std::size_t source);
  void PollInclusions(std::size_t source);
  void ResolveInclusion(std::size_t source, const chain::Transaction& tx);
  void ScheduleClientSubmit(std::size_t source, std::size_t client,
                            bool first);

  bool NeedsTracking(const TrafficSource& src) const {
    return src.kind == SourceKind::kClosedLoop ||
           src.fee.replacement_deadline.micros() > 0;
  }

  void Record(const chain::Transaction& tx, TimePoint at, std::size_t source,
              std::uint16_t replacement, std::uint32_t frontend,
              bool closed_loop, bool burst);

  sim::Simulator& sim_;
  Rng rng_;
  TxWorkloadParams params_;
  WorkloadPlan plan_;
  std::vector<eth::EthNode*> frontends_;
  std::uint64_t base_height_ = 0;  // genesis number (no txs at or below)

  // Legacy mode state.
  std::vector<std::uint64_t> next_nonce_;
  std::vector<Address> account_addr_;
  bool warned_single_frontend_ = false;

  // Plan mode state.
  std::vector<SourceState> sources_;
  std::unordered_map<std::uint64_t, std::uint64_t> plan_next_nonce_;
  std::unordered_map<std::uint64_t, Address> plan_addr_;
  std::unordered_map<Address, std::uint64_t> addr_index_;

  std::vector<SubmittedTx> submitted_;
  std::vector<std::uint64_t> source_submitted_;
  std::vector<std::uint64_t> source_included_;
  std::uint64_t closed_loop_in_flight_ = 0;
  std::uint64_t closed_loop_completed_ = 0;
  std::uint64_t replacements_issued_ = 0;
  std::uint64_t tracked_in_flight_ = 0;

  // Telemetry instruments (null = disabled; one predicted branch).
  // Tx-lifecycle recorder: Record() stamps the kSubmitted stage (every
  // submission path funnels through it).
  obs::TxProvRecorder* txprov_ = nullptr;
  obs::Counter* submitted_counter_ = nullptr;
  obs::Counter* replaced_counter_ = nullptr;
  std::vector<obs::Counter*> source_counters_;
  std::vector<obs::Counter*> source_included_counters_;
};

}  // namespace ethsim::workload
