#include "analysis/dissemination.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "net/geo.hpp"

namespace ethsim::analysis {

namespace {

using obs::EdgeKind;

bool IsBlockMessage(std::uint8_t kind) {
  const auto k = static_cast<EdgeKind>(kind);
  return k == EdgeKind::kNewBlock || k == EdgeKind::kAnnouncement ||
         k == EdgeKind::kBlockResponse;
}

bool IsOrigin(std::uint8_t kind) {
  return static_cast<EdgeKind>(kind) == EdgeKind::kOrigin;
}

RedundancyStats StatsFrom(SampleSet& samples) {
  RedundancyStats stats;
  if (samples.empty()) return stats;
  stats.mean = samples.mean();
  stats.median = samples.Median();
  stats.top10 = samples.Quantile(0.90);
  stats.top1 = samples.Quantile(0.99);
  return stats;
}

// First-delivery record per host while scanning one object's edges.
struct FirstDelivery {
  std::int64_t arrival_us = 0;
  std::uint32_t from = 0;
  std::uint16_t hop = 0;
  EdgeKind via = EdgeKind::kOrigin;
  bool is_origin = false;
};

// Scans the log and returns the first delivered block-message edge (or mint
// record) per host for `object`. Rows are in send order; "first" means
// minimum arrival time, ties resolved by row order (deterministic).
std::unordered_map<std::uint32_t, FirstDelivery> FirstDeliveries(
    const obs::ProvenanceLog& log, std::uint64_t object) {
  std::unordered_map<std::uint32_t, FirstDelivery> first;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log.object[i] != object) continue;
    if (IsOrigin(log.kind[i])) {
      FirstDelivery fd;
      fd.arrival_us = log.arrival_us[i];
      fd.from = log.from[i];
      fd.hop = 0;
      fd.via = EdgeKind::kOrigin;
      fd.is_origin = true;
      auto [it, inserted] = first.try_emplace(log.from[i], fd);
      if (!inserted && fd.arrival_us < it->second.arrival_us) it->second = fd;
      continue;
    }
    if (!IsBlockMessage(log.kind[i]) || !log.delivered(i)) continue;
    FirstDelivery fd;
    fd.arrival_us = log.arrival_us[i];
    fd.from = log.from[i];
    fd.hop = log.hop[i];
    fd.via = static_cast<EdgeKind>(log.kind[i]);
    auto [it, inserted] = first.try_emplace(log.to[i], fd);
    if (!inserted && fd.arrival_us < it->second.arrival_us) it->second = fd;
  }
  return first;
}

}  // namespace

std::vector<std::uint64_t> BlockObjects(const obs::ProvenanceLog& log) {
  std::vector<std::uint64_t> objects;
  std::unordered_map<std::uint64_t, bool> seen;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const std::uint64_t object = log.object[i];
    if (object == 0) continue;  // tx batches / fetch-only rows
    if (seen.try_emplace(object, true).second) objects.push_back(object);
  }
  return objects;
}

DisseminationTree BuildDisseminationTree(const obs::ProvenanceLog& log,
                                         std::uint64_t object) {
  DisseminationTree tree;
  tree.object = object;

  const auto first = FirstDeliveries(log, object);

  // Second pass: redundancy/waste attribution + block number. The first
  // delivery per host is the earliest row in log order at the minimum
  // arrival — the same tie-break FirstDeliveries applies — so one claim
  // flag per host identifies exactly that edge.
  std::unordered_map<std::uint32_t, bool> claimed;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log.object[i] != object) continue;
    if (IsOrigin(log.kind[i])) {
      tree.number = log.number[i];
      continue;
    }
    if (!IsBlockMessage(log.kind[i])) continue;
    if (tree.number == 0 && log.number[i] != 0) tree.number = log.number[i];
    if (!log.delivered(i)) {
      if (log.drop[i] != 0) ++tree.dropped_edges;
      continue;
    }
    tree.total_bytes += log.bytes[i];
    auto it = first.find(log.to[i]);
    bool is_first = false;
    if (it != first.end() && !it->second.is_origin &&
        it->second.arrival_us == log.arrival_us[i] &&
        claimed.try_emplace(log.to[i], true).second) {
      is_first = true;
    }
    if (!is_first) {
      ++tree.redundant_edges;
      tree.wasted_bytes += log.bytes[i];
    }
  }

  tree.nodes.reserve(first.size());
  for (const auto& [host, fd] : first) {
    TreeNode node;
    node.host = host;
    node.parent_host = fd.from;
    node.first_arrival_us = fd.arrival_us;
    node.hop = fd.hop;
    node.via = fd.via;
    tree.nodes.push_back(node);
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(tree.nodes.begin(), tree.nodes.end(),
            [](const TreeNode& a, const TreeNode& b) {
              if (a.first_arrival_us != b.first_arrival_us)
                return a.first_arrival_us < b.first_arrival_us;
              return a.host < b.host;
            });
  return tree;
}

std::uint16_t HopDepthDistribution::Quantile(double q) const {
  if (depths.empty()) return 0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(depths.size())));
  return depths[rank == 0 ? 0 : rank - 1];
}

HopDepthDistribution HopDepths(const obs::ProvenanceLog& log) {
  HopDepthDistribution dist;
  // (object, host) -> first delivery (min arrival), origin hosts at depth 0.
  struct Entry {
    std::int64_t arrival_us;
    std::uint16_t hop;
  };
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint32_t, Entry>>
      firsts;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log.object[i] == 0) continue;
    std::uint32_t host;
    Entry entry;
    if (IsOrigin(log.kind[i])) {
      host = log.from[i];
      entry = Entry{log.arrival_us[i], 0};
    } else if (IsBlockMessage(log.kind[i]) && log.delivered(i)) {
      host = log.to[i];
      entry = Entry{log.arrival_us[i], log.hop[i]};
    } else {
      continue;
    }
    auto& per_host = firsts[log.object[i]];
    auto [it, inserted] = per_host.try_emplace(host, entry);
    if (!inserted && entry.arrival_us < it->second.arrival_us)
      it->second = entry;
  }
  double sum = 0;
  for (const auto& [object, per_host] : firsts) {
    for (const auto& [host, entry] : per_host) {
      dist.depths.push_back(entry.hop);
      sum += entry.hop;
      if (entry.hop > dist.max) dist.max = entry.hop;
    }
  }
  std::sort(dist.depths.begin(), dist.depths.end());
  if (!dist.depths.empty())
    dist.mean = sum / static_cast<double>(dist.depths.size());
  return dist;
}

FirstDeliveryShares FirstDeliveryBreakdown(const obs::ProvenanceLog& log) {
  FirstDeliveryShares shares;
  for (const std::uint64_t object : BlockObjects(log)) {
    for (const auto& [host, fd] : FirstDeliveries(log, object)) {
      if (fd.is_origin) continue;  // the miner did not "receive" its block
      switch (fd.via) {
        case EdgeKind::kNewBlock: ++shares.push; break;
        case EdgeKind::kAnnouncement: ++shares.announce; break;
        case EdgeKind::kBlockResponse: ++shares.fetched; break;
        default: break;
      }
    }
  }
  return shares;
}

RedundancyResult RedundancyFromProvenance(const obs::ProvenanceLog& log,
                                          std::uint32_t host,
                                          Duration settle) {
  RedundancyResult result;

  // Mirror of BlockReceptionRedundancy over the provenance stream: count
  // every delivered block message at `host`, track per-block first arrival
  // and the global last arrival, exclude blocks still settling at cutoff.
  // Sim-clock vs observer-local-clock: the vantage's constant offset shifts
  // first and last equally, so the exclusion predicate — and therefore every
  // count — matches the observer-log computation exactly.
  struct Counts {
    std::uint32_t announcements = 0;
    std::uint32_t whole = 0;
    std::int64_t first = 0;
  };
  std::unordered_map<std::uint64_t, Counts> per_block;
  std::int64_t last = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log.to[i] != host || IsOrigin(log.kind[i])) continue;
    if (!IsBlockMessage(log.kind[i]) || !log.delivered(i)) continue;
    const std::int64_t arrival = log.arrival_us[i];
    auto [it, inserted] = per_block.try_emplace(log.object[i]);
    if (inserted || arrival < it->second.first) it->second.first = arrival;
    if (static_cast<EdgeKind>(log.kind[i]) == EdgeKind::kAnnouncement) {
      ++it->second.announcements;
    } else {
      ++it->second.whole;
    }
    if (arrival > last) last = arrival;
  }

  SampleSet ann, whole, both;
  for (const auto& [object, counts] : per_block) {
    if (counts.first + settle.micros() > last) continue;  // still settling
    ++result.blocks;
    ann.Add(counts.announcements);
    whole.Add(counts.whole);
    both.Add(counts.announcements + counts.whole);
  }
  result.announcements = StatsFrom(ann);
  result.whole_blocks = StatsFrom(whole);
  result.combined = StatsFrom(both);
  return result;
}

std::vector<HostWaste> WasteByHost(const obs::ProvenanceLog& log) {
  struct State {
    HostWaste waste;
    std::unordered_map<std::uint64_t, std::int64_t> first_arrival;
  };
  std::unordered_map<std::uint32_t, State> hosts;

  // Pass 1: per-(host, object) earliest delivered arrival.
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (IsOrigin(log.kind[i])) continue;
    if (!IsBlockMessage(log.kind[i]) || !log.delivered(i)) continue;
    State& state = hosts[log.to[i]];
    auto [it, inserted] =
        state.first_arrival.try_emplace(log.object[i], log.arrival_us[i]);
    if (!inserted && log.arrival_us[i] < it->second)
      it->second = log.arrival_us[i];
  }
  // Pass 2: everything after (or tying past the claimed slot of) the first
  // arrival is redundant. Exactly one edge per (host, object) — the earliest
  // row in log order at the minimum arrival — counts as the first.
  std::unordered_map<std::uint32_t, std::unordered_map<std::uint64_t, bool>>
      claimed;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (IsOrigin(log.kind[i])) continue;
    if (!IsBlockMessage(log.kind[i]) || !log.delivered(i)) continue;
    State& state = hosts[log.to[i]];
    HostWaste& waste = state.waste;
    waste.host = log.to[i];
    ++waste.receptions;
    const std::int64_t first = state.first_arrival.at(log.object[i]);
    bool redundant = true;
    if (log.arrival_us[i] == first &&
        claimed[log.to[i]].try_emplace(log.object[i], true).second) {
      redundant = false;
    }
    if (redundant) {
      ++waste.redundant_receptions;
      waste.wasted_bytes += log.bytes[i];
    }
  }

  std::vector<HostWaste> result;
  result.reserve(hosts.size());
  for (const auto& [host, state] : hosts) result.push_back(state.waste);
  std::sort(result.begin(), result.end(),
            [](const HostWaste& a, const HostWaste& b) {
              if (a.wasted_bytes != b.wasted_bytes)
                return a.wasted_bytes > b.wasted_bytes;
              return a.host < b.host;
            });
  return result;
}

std::vector<DegreeEstimate> InferDegrees(const obs::ProvenanceLog& log,
                                         Duration settle) {
  // Ethna's observation: with one announce-or-push per neighbor per block,
  // a node's reception count per settled block estimates its degree.
  // Global first appearance per object (origin or earliest delivery).
  std::unordered_map<std::uint64_t, std::int64_t> block_first;
  std::int64_t last = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log.object[i] == 0) continue;
    std::int64_t t;
    if (IsOrigin(log.kind[i])) {
      t = log.arrival_us[i];
    } else if (IsBlockMessage(log.kind[i]) && log.delivered(i)) {
      t = log.arrival_us[i];
    } else {
      continue;
    }
    auto [it, inserted] = block_first.try_emplace(log.object[i], t);
    if (!inserted && t < it->second) it->second = t;
    if (t > last) last = t;
  }

  struct Tally {
    std::unordered_map<std::uint64_t, std::uint64_t> per_block;
  };
  std::unordered_map<std::uint32_t, Tally> hosts;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (IsOrigin(log.kind[i])) continue;
    if (!IsBlockMessage(log.kind[i]) || !log.delivered(i)) continue;
    const auto first = block_first.find(log.object[i]);
    if (first == block_first.end() ||
        first->second + settle.micros() > last)
      continue;  // still settling: copies may be in flight
    ++hosts[log.to[i]].per_block[log.object[i]];
  }

  std::vector<DegreeEstimate> estimates;
  estimates.reserve(hosts.size());
  for (const auto& [host, tally] : hosts) {
    DegreeEstimate estimate;
    estimate.host = host;
    estimate.blocks = tally.per_block.size();
    std::uint64_t receptions = 0;
    for (const auto& [object, count] : tally.per_block) receptions += count;
    if (estimate.blocks > 0)
      estimate.estimated_degree = static_cast<double>(receptions) /
                                  static_cast<double>(estimate.blocks);
    estimates.push_back(estimate);
  }
  std::sort(estimates.begin(), estimates.end(),
            [](const DegreeEstimate& a, const DegreeEstimate& b) {
              return a.host < b.host;
            });
  return estimates;
}

namespace {

// Region tag for JSON rows; "?" when the host has no recorded region.
std::string HostRegion(const obs::ProvenanceLog& log, std::uint32_t host) {
  if (host < log.host_region.size() && log.host_region[host] != 0xff)
    return std::string(net::RegionShortName(
        static_cast<net::Region>(log.host_region[host])));
  return "?";
}

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string RenderRedundancyJson(const obs::ProvenanceLog& log,
                                 std::size_t top) {
  const std::vector<HostWaste> waste = WasteByHost(log);
  std::uint64_t total_recv = 0, total_wasted = 0;
  for (const HostWaste& entry : waste) {
    total_recv += entry.receptions;
    total_wasted += entry.wasted_bytes;
  }
  std::string out;
  AppendF(out,
          "{\"hosts\": %zu, \"receptions\": %" PRIu64
          ", \"wasted_bytes\": %" PRIu64 ", \"per_host\": [",
          waste.size(), total_recv, total_wasted);
  std::size_t shown = 0;
  for (const HostWaste& entry : waste) {
    if (shown >= top) break;
    AppendF(out,
            "%s{\"host\": %u, \"region\": \"%s\", \"receptions\": %" PRIu64
            ", \"redundant\": %" PRIu64 ", \"wasted_bytes\": %" PRIu64 "}",
            shown == 0 ? "" : ", ", entry.host,
            HostRegion(log, entry.host).c_str(), entry.receptions,
            entry.redundant_receptions, entry.wasted_bytes);
    ++shown;
  }
  out += "]}\n";
  return out;
}

std::string RenderHopsJson(const obs::ProvenanceLog& log) {
  const HopDepthDistribution dist = HopDepths(log);
  const FirstDeliveryShares shares = FirstDeliveryBreakdown(log);
  std::string out;
  AppendF(out,
          "{\"pairs\": %zu, \"mean\": %.6g, \"p50\": %u, \"p90\": %u, "
          "\"p99\": %u, \"max\": %u, \"first_delivery\": {\"push\": %" PRIu64
          ", \"announce\": %" PRIu64 ", \"fetched\": %" PRIu64 "}}\n",
          dist.depths.size(), dist.mean, dist.Quantile(0.50),
          dist.Quantile(0.90), dist.Quantile(0.99), dist.max, shares.push,
          shares.announce, shares.fetched);
  return out;
}

}  // namespace ethsim::analysis
