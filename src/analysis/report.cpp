#include "analysis/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/render.hpp"

namespace ethsim::analysis {

namespace {

using render::Fmt;
using render::Percent;
using render::Table;

std::string Header(const std::string& title) {
  std::string rule(title.size(), '=');
  return title + "\n" + rule + "\n";
}

}  // namespace

std::string RenderFig1(const PropagationResult& blocks,
                       const PropagationResult& txs,
                       const std::vector<VantageDelay>& tx_per_vantage) {
  std::ostringstream os;
  os << Header("Figure 1 - Block propagation delay across vantages");

  Table t{{"metric", "measured", "paper"}};
  t.AddRow({"median", Fmt(blocks.median_ms, 1) + " ms", "74 ms"});
  t.AddRow({"mean", Fmt(blocks.mean_ms, 1) + " ms", "109 ms"});
  t.AddRow({"p95", Fmt(blocks.p95_ms, 1) + " ms", "211 ms"});
  t.AddRow({"p99", Fmt(blocks.p99_ms, 1) + " ms", "317 ms"});
  t.AddRow({"samples", std::to_string(blocks.delays_ms.count()), "~650k"});
  os << t.ToString() << '\n';

  Histogram hist{0.0, 500.0, 50};
  for (const double d : blocks.delays_ms.values()) hist.Add(d);
  os << render::HistogramChart(hist, "ms since first observation") << '\n';

  os << "SIII-A1 - transaction propagation (geography should not matter):\n";
  Table t2{{"vantage", "median trailing delta", "samples"}};
  for (const auto& row : tx_per_vantage)
    t2.AddRow({row.name, Fmt(row.median_ms, 1) + " ms",
               std::to_string(row.samples)});
  os << t2.ToString();
  os << "tx delay overall: median " << Fmt(txs.median_ms, 1) << " ms, mean "
     << Fmt(txs.mean_ms, 1)
     << " ms (paper: indistinguishable across regions; deltas within NTP "
        "error of the same order)\n";
  return os.str();
}

std::string RenderFig2(const GeoResult& geo) {
  std::ostringstream os;
  os << Header("Figure 2 - First new-block observations per vantage");
  std::vector<render::Bar> bars;
  for (const auto& share : geo.shares)
    bars.push_back(render::Bar{share.vantage, share.share,
                               Percent(share.share) + " (+-" +
                                   Percent(share.uncertain_share) +
                                   " within NTP error)"});
  os << render::BarChart(bars) << '\n';
  os << "total blocks: " << geo.total_blocks
     << "   paper: EA ~40%, NA ~4x less (~10%), WE/CE between\n";
  return os.str();
}

std::string RenderFig3(const PoolGeoResult& result) {
  std::ostringstream os;
  os << Header("Figure 3 - First observation per origin mining pool");
  std::vector<render::StackedBar> bars;
  for (const auto& row : result.rows) {
    if (row.blocks == 0) continue;
    bars.push_back(render::StackedBar{
        row.pool + " (" + Percent(row.hashrate_share, 2) + ", n=" +
            std::to_string(row.blocks) + ")",
        row.vantage_shares});
  }
  os << render::StackedBarChart(bars, result.vantages) << '\n';
  os << "paper: Chinese pools (Sparkpool, F2pool, HuoBi, Uupool, Zhizhu...)\n"
     << "observed first from EA; Ethermine/Nanopool/DwarfPool from WE/CE;\n"
     << "gateways of mining pools are not evenly distributed.\n";
  return os.str();
}

std::string RenderFig4(const CommitTimeResult& result) {
  std::ostringstream os;
  os << Header("Figure 4 - Transaction inclusion and commit times");

  Table t{{"depth", "median", "p90", "paper median"}};
  for (std::size_t d = 0; d < result.depths.size(); ++d) {
    const auto& set = result.delays_s[d];
    std::string label = result.depths[d] == 0
                            ? "inclusion"
                            : std::to_string(result.depths[d]) + " conf";
    std::string paper = result.depths[d] == 12 ? "189 s" : "-";
    t.AddRow({label, set.empty() ? "-" : Fmt(set.Median(), 0) + " s",
              set.empty() ? "-" : Fmt(set.Quantile(0.9), 0) + " s", paper});
  }
  os << t.ToString() << '\n';

  std::vector<render::Series> series;
  for (std::size_t d = 0; d < result.depths.size(); ++d) {
    if (result.delays_s[d].empty()) continue;
    render::Series s;
    s.name = result.depths[d] == 0 ? "inclusion"
                                   : std::to_string(result.depths[d]) + "-conf";
    s.points = MakeCdf(result.delays_s[d], 60);
    series.push_back(std::move(s));
  }
  os << render::CdfChart(series, "seconds") << '\n';
  os << "committed txs with coverage: " << result.committed_txs
     << "   paper: median 12-conf commit 189 s (200 s in 2017)\n";
  return os.str();
}

std::string RenderFig5(const OrderingResult& result) {
  std::ostringstream os;
  os << Header("Figure 5 - Commit delay by reception ordering");

  Table t{{"class", "share", "median", "p90", "paper"}};
  const auto& in = result.in_order_delay_s;
  const auto& ooo = result.out_of_order_delay_s;
  t.AddRow({"in-order", Percent(1.0 - result.out_of_order_share, 2),
            in.empty() ? "-" : Fmt(in.Median(), 0) + " s",
            in.empty() ? "-" : Fmt(in.Quantile(0.9), 0) + " s",
            "88.46% / <189 s / 292 s"});
  t.AddRow({"out-of-order", Percent(result.out_of_order_share, 2),
            ooo.empty() ? "-" : Fmt(ooo.Median(), 0) + " s",
            ooo.empty() ? "-" : Fmt(ooo.Quantile(0.9), 0) + " s",
            "11.54% / <192 s / 325 s"});
  os << t.ToString() << '\n';

  std::vector<render::Series> series;
  if (!in.empty())
    series.push_back(render::Series{"in-order", MakeCdf(in, 60)});
  if (!ooo.empty())
    series.push_back(render::Series{"out-of-order", MakeCdf(ooo, 60)});
  os << render::CdfChart(series, "seconds", 72, 20, /*log_x=*/true) << '\n';
  os << "classified committed tx observations: " << result.committed_txs
     << "   paper: 11.54% out-of-order (6.18% in 2017)\n";
  return os.str();
}

std::string RenderFig6(const EmptyBlockResult& result) {
  std::ostringstream os;
  os << Header("Figure 6 - Empty blocks per mining pool");

  Table t{{"pool", "main blocks", "empty", "rate", "scaled to paper month"}};
  for (const auto& row : result.rows) {
    if (row.main_blocks == 0) continue;
    t.AddRow({row.pool, std::to_string(row.main_blocks),
              std::to_string(row.empty_blocks), Percent(row.empty_rate, 2),
              Fmt(row.scaled_to_paper, 0)});
  }
  os << t.ToString() << '\n';

  std::vector<render::Bar> bars;
  for (const auto& row : result.rows) {
    if (row.empty_blocks == 0) continue;
    bars.push_back(render::Bar{row.pool, static_cast<double>(row.empty_blocks),
                               std::to_string(row.empty_blocks)});
  }
  std::sort(bars.begin(), bars.end(),
            [](const render::Bar& a, const render::Bar& b) {
              return a.value > b.value;
            });
  os << render::BarChart(bars) << '\n';
  os << "overall empty rate: " << Percent(result.overall_empty_rate, 2)
     << " (paper: 1.45% = 2,921 / 201,086; Zhizhu >25%; Nanopool and\n"
     << "Miningpoolhub1 zero; one solo miner 100% empty)\n";
  return os.str();
}

std::string RenderFig7(const SequenceResult& sequences) {
  std::ostringstream os;
  os << Header("Figure 7 - Consecutive main-chain blocks per pool");

  Table t{{"pool", "share", "blocks", "max run", "runs>=4", "runs>=6",
           "runs>=8"}};
  for (const auto& pool : sequences.pools) {
    if (pool.blocks == 0) continue;
    t.AddRow({pool.pool, Percent(pool.hashrate_share, 2),
              std::to_string(pool.blocks), std::to_string(pool.max_run),
              std::to_string(pool.RunsAtLeast(4)),
              std::to_string(pool.RunsAtLeast(6)),
              std::to_string(pool.RunsAtLeast(8))});
  }
  os << t.ToString() << '\n';

  // CDF of run length per top pool (log-style via explicit points).
  std::vector<render::Series> series;
  for (const auto& pool : sequences.pools) {
    if (pool.blocks < 50) continue;
    if (series.size() == 6) break;  // paper plots the top 6
    render::Series s;
    s.name = pool.pool;
    for (std::size_t k = 1; k <= std::max<std::size_t>(pool.max_run, 9); ++k)
      s.points.push_back({static_cast<double>(k), pool.CdfAt(k)});
    series.push_back(std::move(s));
  }
  os << render::CdfChart(series, "run length (blocks)", 60, 16) << '\n';
  os << "paper: Ethermine reached four 8-block runs, Sparkpool two 9-block "
        "runs in one month\n";
  return os.str();
}

std::string RenderTable1() {
  std::ostringstream os;
  os << Header("Table I - Measurement infrastructure (as modeled)");
  Table t{{"vantage", "region", "CPU (paper)", "RAM", "bandwidth", "peers",
           "clock"}};
  t.AddRow({"NA", "North America", "4x Xeon 2.3 GHz", "15 GB", "8 Gbps",
            "unlimited (>100)", "NTP (90% <10ms)"});
  t.AddRow({"EA", "Eastern Asia", "4x Xeon 2.3 GHz", "15 GB", "8 Gbps",
            "unlimited (>100)", "NTP (90% <10ms)"});
  t.AddRow({"CE", "Central Europe", "4x Xeon 2.4 GHz", "8 GB", "10 Gbps",
            "unlimited (>100)", "NTP (90% <10ms)"});
  t.AddRow({"WE", "Western Europe", "40x Xeon 2.2 GHz", "128 GB", "10 Gbps",
            "unlimited (>100)", "NTP (90% <10ms)"});
  os << t.ToString();
  os << "simulation: observer hosts get 8 Gbps links, uncapped max_peers,\n"
     << "per-host clock offsets sampled from the paper's NTP envelope.\n";
  return os.str();
}

std::string RenderTable2(const RedundancyResult& result,
                         std::size_t network_size) {
  std::ostringstream os;
  os << Header("Table II - Redundant block receptions (25-peer client)");
  Table t{{"message type", "avg", "med", "top 10%", "top 1%", "paper avg"}};
  auto row = [&](const std::string& name, const RedundancyStats& stats,
                 const std::string& paper) {
    t.AddRow({name, Fmt(stats.mean, 3), Fmt(stats.median, 0),
              Fmt(stats.top10, 0), Fmt(stats.top1, 0), paper});
  };
  row("Announcements", result.announcements, "2.585");
  row("Whole Blocks", result.whole_blocks, "7.043");
  row("Both combined", result.combined, "9.11");
  os << t.ToString() << '\n';
  os << "blocks sampled: " << result.blocks << "\n";
  os << "gossip-optimal receptions ln(" << network_size
     << ") = " << Fmt(OptimalGossipReceptions(network_size), 2)
     << "  (paper: ln(15,000) = 9.62 vs measured mean 9.11)\n";
  return os.str();
}

std::string RenderTable3(const ForkCensus& census, const OneMinerForkCensus& omf,
                         std::size_t paper_scale_blocks) {
  std::ostringstream os;
  os << Header("Table III - Fork lengths and recognition");

  Table shares{{"class", "measured", "paper"}};
  shares.AddRow({"main chain", Percent(census.main_share, 2), "92.81%"});
  shares.AddRow({"recognized uncles", Percent(census.recognized_share, 2),
                 "6.97%"});
  shares.AddRow({"unrecognized", Percent(census.unrecognized_share, 2),
                 "0.22%"});
  os << shares.ToString() << '\n';

  const double scale =
      census.total_blocks > 0
          ? static_cast<double>(paper_scale_blocks) /
                static_cast<double>(census.total_blocks)
          : 0.0;
  Table t{{"fork length", "total", "recognized", "unrecognized",
           "scaled total", "paper total (rec)"}};
  for (const auto& row : census.by_length) {
    std::string paper = row.length == 1   ? "15,171 (15,100)"
                        : row.length == 2 ? "404 (0)"
                        : row.length == 3 ? "10 (0)"
                                          : "-";
    t.AddRow({std::to_string(row.length), std::to_string(row.total),
              std::to_string(row.recognized), std::to_string(row.unrecognized),
              Fmt(static_cast<double>(row.total) * scale, 0), paper});
  }
  os << t.ToString() << '\n';

  os << "SIII-C5 - one-miner forks (same miner, same height):\n";
  Table t2{{"tuple size", "events", "scaled", "paper"}};
  for (const auto& [size, count] : omf.tuples) {
    std::string paper = size == 2   ? "1,750"
                        : size == 3 ? "25"
                        : size == 4 ? "1"
                        : size == 7 ? "1"
                                    : "-";
    t2.AddRow({std::to_string(size), std::to_string(count),
               Fmt(static_cast<double>(count) * scale, 0), paper});
  }
  os << t2.ToString();
  os << "extras recognized as uncles: " << Percent(omf.recognized_extra_share)
     << " (paper 98%)\n"
     << "same-txset events: " << Percent(omf.same_txset_share)
     << " (paper 56% same / 44% distinct)\n"
     << "one-miner share of all forks: " << Percent(omf.share_of_all_forks)
     << " (paper >11%)\n";
  return os.str();
}

std::string RenderSecurity(const SequenceResult& observed,
                           const SequenceResult& history,
                           double inter_block_seconds) {
  std::ostringstream os;
  os << Header("SIII-D - Block finality vs mining-pool concentration");

  os << "observed month-scale runs vs the p^k model:\n";
  Table t{{"pool", "share", "k", "observed >=k", "expected (p^k x N)",
           "months/event"}};
  for (std::size_t k : {8, 9}) {
    for (const auto& row : RunRarityTable(observed, k)) {
      if (row.share < 0.05) continue;
      t.AddRow({row.pool, Percent(row.share, 1), std::to_string(k),
                std::to_string(row.observed), Fmt(row.expected, 2),
                Fmt(row.months_per_event, 1)});
    }
  }
  os << t.ToString() << '\n';
  os << "paper: Ethermine mined four 8-runs (model: ~4/month -> ordinary);\n"
     << "Sparkpool mined two 9-runs (model: ~0.3/month -> suspicious, or the\n"
     << "finality model is optimistic)\n\n";

  os << "whole-history surrogate (" << history.total_main_blocks
     << " blocks; paper scanned 7.6M and found runs of 10/11/12/14 = "
        "102/41/4/1):\n";
  Table t2{{"run length", "occurrences (history)", "paper"}};
  for (std::size_t k : {10, 11, 12, 14}) {
    std::size_t total = 0;
    for (const auto& pool : history.pools) {
      for (const auto& [len, count] : pool.runs)
        if (len == k) total += count;
    }
    std::string paper = k == 10   ? "102"
                        : k == 11 ? "41"
                        : k == 12 ? "4"
                                  : "1";
    t2.AddRow({std::to_string(k), std::to_string(total), paper});
  }
  os << t2.ToString() << '\n';

  os << "temporary censorship windows (longest observed runs):\n";
  Table t3{{"pool", "longest run", "censorship window"}};
  auto windows = CensorshipWindows(observed, inter_block_seconds);
  std::sort(windows.begin(), windows.end(),
            [](const CensorshipWindow& a, const CensorshipWindow& b) {
              return a.longest_run > b.longest_run;
            });
  for (std::size_t i = 0; i < windows.size() && i < 6; ++i)
    t3.AddRow({windows[i].pool, std::to_string(windows[i].longest_run),
               Fmt(windows[i].seconds, 0) + " s"});
  os << t3.ToString();
  os << "paper: pools can regularly censor for >2 minutes; historically 3 "
        "minutes.\n";

  double strongest = 0;
  for (const auto& pool : observed.pools)
    strongest = std::max(strongest, pool.hashrate_share);
  os << "12-block rule check: a " << Percent(strongest, 1)
     << " pool breaks a 12-conf guarantee with expected monthly occurrences "
     << Fmt(ExpectedRuns(strongest, 12, 201'086), 3)
     << "; Ethermine's historic 14-run would take ~"
     << Fmt(YearsPerOccurrence(0.259, 14), 0)
     << " years under the p^k model (paper says ~1,000 years; both far "
        "beyond the chain's age).\n";
  return os.str();
}

}  // namespace ethsim::analysis
