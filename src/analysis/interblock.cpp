#include "analysis/interblock.hpp"

#include <cassert>

namespace ethsim::analysis {

InterBlockResult InterBlockTimes(const StudyInputs& inputs, std::size_t skip) {
  assert(inputs.reference != nullptr);
  InterBlockResult result;

  const auto chain_blocks = inputs.reference->CanonicalChain();
  if (chain_blocks.size() < skip + 2) return result;

  for (std::size_t i = skip + 1; i < chain_blocks.size(); ++i) {
    const double delta =
        static_cast<double>(chain_blocks[i]->header.timestamp -
                            chain_blocks[i - 1]->header.timestamp);
    result.intervals_s.Add(delta);
  }
  result.blocks = result.intervals_s.count();
  result.mean_s = result.intervals_s.mean();
  result.median_s = result.intervals_s.Median();

  const std::size_t usable = chain_blocks.size() - skip;
  const std::size_t decile = std::max<std::size_t>(usable / 10, 1);
  RunningStats first, last;
  for (std::size_t i = 0; i < decile; ++i) {
    first.Add(static_cast<double>(chain_blocks[skip + i]->header.difficulty));
    last.Add(static_cast<double>(
        chain_blocks[chain_blocks.size() - 1 - i]->header.difficulty));
  }
  result.difficulty_first_decile = first.mean();
  result.difficulty_last_decile = last.mean();
  return result;
}

double ExpectedCommitSeconds(const InterBlockResult& result,
                             std::uint64_t confirmations) {
  // Inclusion waits on average half an interval; each confirmation one more.
  return result.mean_s * (0.5 + static_cast<double>(confirmations));
}

}  // namespace ethsim::analysis
