// Fig 7 + §III-D: sequences of consecutive canonical blocks mined by the
// same pool, the temporary-censorship windows they enable, and the
// theoretical run probabilities under the paper's p^k model. Includes a
// network-free fast sampler for whole-history-scale analysis (7.6M blocks).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/inputs.hpp"
#include "common/random.hpp"

namespace ethsim::analysis {

struct PoolSequences {
  std::string pool;
  double hashrate_share = 0;
  // run length -> number of maximal runs of exactly that length.
  std::map<std::size_t, std::size_t> runs;
  std::size_t max_run = 0;
  std::size_t blocks = 0;  // canonical blocks mined

  // P(run length <= k) over this pool's runs — the Fig 7 CDF.
  double CdfAt(std::size_t k) const;
  std::size_t RunsAtLeast(std::size_t k) const;
};

struct SequenceResult {
  std::vector<PoolSequences> pools;  // roster order
  std::size_t total_main_blocks = 0;
};

// Computed over the reference tree's canonical chain.
SequenceResult ConsecutiveMinerSequences(const StudyInputs& inputs);

// The same computation over an arbitrary winner list (pool index per block),
// reused by the fast sampler and tests.
SequenceResult SequencesFromWinners(const std::vector<std::size_t>& winners,
                                    const std::vector<miner::PoolSpec>& pools);

// Paper §III-D theory: expected number of k-runs in N blocks under the
// simple p^k model the authors use (Ethermine example: 0.259^8 * 201086 ≈ 4).
double ExpectedRuns(double share, std::size_t k, std::size_t blocks);

// Network-free winner sampler: draws `blocks` winners by hashrate share.
// Stands in for the paper's whole-blockchain scan (7.6M blocks).
std::vector<std::size_t> SampleWinners(const std::vector<miner::PoolSpec>& pools,
                                       std::size_t blocks, Rng rng);

}  // namespace ethsim::analysis
