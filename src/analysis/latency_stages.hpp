// Commit-latency decomposition over the tx-lifecycle provenance stream
// (obs/tx_provenance): for every committed transaction, split the end-to-end
// commit time into
//   submit -> pool-admit   (gossip + admission: first admit at any host)
//   admit  -> inclusion    (queueing: how long the pool sat on it)
//   inclusion -> commit    (confirmation: depth sweep on the anchor chain)
// per region and per mining pool. The committed SET is decided by the exact
// TransactionCommitTimes / AnalyzeDemand rule (canonical chain + full
// vantage confirmation coverage), so `committed_total` reconciles with both;
// the txprov stage times are used only for the decomposition itself.
// Committed transactions missing a stage record (e.g. a tx that entered
// before the recorder's anchor saw it) stay in committed_total but are
// skipped from the sample sets and counted in `missing_stage_records`.
//
// A log-only overload powers `ethsim_inspect --stages` offline, where the
// run's StudyInputs are gone: there the committed set is "txs with a
// max-depth kCommitted record", region comes from the artifact's host table,
// and the pool from the kSelected record matching the including block.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/inputs.hpp"
#include "common/stats.hpp"
#include "net/geo.hpp"
#include "obs/tx_provenance.hpp"
#include "workload/generator.hpp"

namespace ethsim::analysis {

// One attribution bucket (overall, a region, or a pool).
struct StageLatency {
  std::uint64_t committed = 0;  // committed txs attributed to this bucket
  SampleSet submit_to_admit_s;
  SampleSet admit_to_include_s;
  SampleSet include_to_commit_s;
};

struct LatencyStageResult {
  std::vector<std::uint64_t> depths;  // the swept confirmation depths
  StageLatency overall;
  // Indexed by net::Region of the submitting frontend; buckets with
  // committed == 0 are skipped by the renderers.
  std::array<StageLatency, net::kRegionCount> per_region{};
  // Indexed by pool; names come from the roster (reconciling form) or are
  // synthesized as "pool<N>" (log-only form).
  std::vector<StageLatency> per_pool;
  std::vector<std::string> pool_names;
  std::uint64_t committed_total = 0;  // == TransactionCommitTimes committed_txs
  std::uint64_t missing_stage_records = 0;
};

// Reconciling form: committed set from the canonical chain + vantage
// coverage (identical to AnalyzeDemand), stage times from `log`, region from
// the submission record, pool from the including block's coinbase.
LatencyStageResult DecomposeLatencyStages(
    const StudyInputs& inputs,
    const std::vector<workload::SubmittedTx>& submitted,
    const obs::TxProvLog& log,
    std::vector<std::uint64_t> confirmation_depths = {0, 3, 12, 15, 36});

// Log-only form (ethsim_inspect --stages): everything, including the
// committed set, is derived from the artifact alone.
LatencyStageResult DecomposeLatencyStages(const obs::TxProvLog& log);

// Human-readable stage table(s); `by_region` / `by_pool` add the breakdown
// sections (the overall row always renders).
std::string RenderLatencyStages(const LatencyStageResult& result,
                                bool by_region = true, bool by_pool = true);
// Machine-readable CSV: one row per bucket.
std::string RenderLatencyStagesCsv(const LatencyStageResult& result);

}  // namespace ethsim::analysis
