#include "analysis/security.hpp"

#include <cmath>

namespace ethsim::analysis {

std::vector<RunRarity> RunRarityTable(const SequenceResult& sequences,
                                      std::size_t k,
                                      std::size_t blocks_per_month) {
  std::vector<RunRarity> rows;
  for (const auto& pool : sequences.pools) {
    RunRarity row;
    row.pool = pool.pool;
    row.share = pool.hashrate_share;
    row.run_length = k;
    row.observed = pool.RunsAtLeast(k);
    row.expected = ExpectedRuns(pool.hashrate_share, k, blocks_per_month) *
                   static_cast<double>(sequences.total_main_blocks) /
                   static_cast<double>(blocks_per_month);
    const double per_month =
        ExpectedRuns(pool.hashrate_share, k, blocks_per_month);
    row.months_per_event = per_month > 0 ? 1.0 / per_month : 0.0;
    rows.push_back(row);
  }
  return rows;
}

double YearsPerOccurrence(double share, std::size_t k, double blocks_per_year) {
  const double per_year = std::pow(share, static_cast<double>(k)) *
                          blocks_per_year;
  return per_year > 0 ? 1.0 / per_year : 0.0;
}

std::vector<CensorshipWindow> CensorshipWindows(const SequenceResult& sequences,
                                                double inter_block_seconds) {
  std::vector<CensorshipWindow> rows;
  for (const auto& pool : sequences.pools) {
    if (pool.blocks == 0) continue;
    rows.push_back(CensorshipWindow{
        pool.pool, pool.max_run,
        static_cast<double>(pool.max_run) * inter_block_seconds});
  }
  return rows;
}

double RunProbability(double share, std::size_t k) {
  return std::pow(share, static_cast<double>(k));
}

std::size_t RequiredConfirmations(double strongest_share,
                                  double target_probability,
                                  std::size_t blocks_per_month) {
  // Expected monthly occurrences of a k-run must fall below target.
  std::size_t k = 1;
  while (k < 1000) {
    const double monthly =
        std::pow(strongest_share, static_cast<double>(k)) *
        static_cast<double>(blocks_per_month);
    if (monthly < target_probability) return k;
    ++k;
  }
  return k;
}

}  // namespace ethsim::analysis
