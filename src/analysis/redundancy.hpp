// Table II: redundant block receptions at a default-configured (25-peer)
// client — how many times each block reaches the node as an announcement vs
// as a whole block, and whether the total sits near the gossip-theoretic
// optimum ln(network size).
#pragma once

#include <cstdint>

#include "analysis/inputs.hpp"
#include "common/stats.hpp"

namespace ethsim::analysis {

struct RedundancyStats {
  double mean = 0;
  double median = 0;
  double top10 = 0;  // 90th percentile (paper's "Top 10%")
  double top1 = 0;   // 99th percentile
};

struct RedundancyResult {
  RedundancyStats announcements;
  RedundancyStats whole_blocks;  // pushes + fetched bodies
  RedundancyStats combined;
  std::size_t blocks = 0;  // distinct block hashes received
};

// Computed from a single observer's raw message log (the Table II subsidiary
// node). Blocks first seen in the final `settle` window are excluded — their
// redundant copies may still be in flight at cutoff.
RedundancyResult BlockReceptionRedundancy(
    const measure::Observer& observer,
    Duration settle = Duration::Seconds(60));

// ln(estimated network size): Eugster et al.'s sufficient gossip fanout the
// paper compares against (ln 15000 ≈ 9.62).
double OptimalGossipReceptions(std::size_t network_size);

}  // namespace ethsim::analysis
