#include "analysis/forks.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <unordered_set>

namespace ethsim::analysis {

namespace {

// Hashes referenced as uncles by any canonical block.
std::unordered_set<Hash32> RecognizedUncles(const chain::BlockTree& tree) {
  std::unordered_set<Hash32> recognized;
  for (const auto& block : tree.CanonicalChain())
    for (const auto& uncle : block->uncles) recognized.insert(uncle.Hash());
  return recognized;
}

}  // namespace

ForkCensus ComputeForkCensus(const StudyInputs& inputs) {
  assert(inputs.reference != nullptr);
  const chain::BlockTree& tree = *inputs.reference;
  ForkCensus census;

  const auto recognized = RecognizedUncles(tree);

  // Children index over non-canonical blocks + classification counts.
  std::unordered_map<Hash32, std::vector<chain::BlockPtr>> children;
  std::vector<chain::BlockPtr> fork_roots;
  for (const auto& block : tree.AllBlocks()) {
    if (block->hash == tree.genesis_hash()) continue;
    ++census.total_blocks;
    if (tree.IsCanonical(block->hash)) {
      ++census.main_blocks;
      continue;
    }
    if (recognized.contains(block->hash)) {
      ++census.recognized_uncles;
    } else {
      ++census.unrecognized_blocks;
    }
    children[block->header.parent_hash].push_back(block);
    if (tree.IsCanonical(block->header.parent_hash)) fork_roots.push_back(block);
  }

  // A fork event is rooted at a non-canonical block with a canonical parent;
  // its length is the longest chain of non-canonical descendants (including
  // the root). The fork is recognized only if every block on that longest
  // path is referenced as an uncle — which the protocol only permits for
  // length-1 forks, since a depth-2 block's parent is not a main-chain
  // ancestor.
  std::map<std::size_t, ForkLengthRow> rows;
  for (const auto& root : fork_roots) {
    ++census.fork_events;
    std::size_t depth = 0;
    bool all_recognized = true;
    // Iterative longest-path with recognition along the deepest chain.
    struct Frame {
      chain::BlockPtr block;
      std::size_t depth;
    };
    std::vector<Frame> stack{{root, 1}};
    while (!stack.empty()) {
      const Frame frame = stack.back();
      stack.pop_back();
      if (frame.depth > depth) depth = frame.depth;
      const auto it = children.find(frame.block->hash);
      if (it == children.end()) continue;
      for (const auto& child : it->second)
        stack.push_back({child, frame.depth + 1});
    }
    // Recognition check: walk the root only for length 1; longer forks are
    // unrecognizable by rule, and empirically (paper) none were.
    if (depth == 1) {
      all_recognized = recognized.contains(root->hash);
    } else {
      all_recognized = false;
    }
    ForkLengthRow& row = rows[depth];
    row.length = depth;
    ++row.total;
    if (all_recognized) {
      ++row.recognized;
    } else {
      ++row.unrecognized;
    }
  }

  for (auto& [length, row] : rows) census.by_length.push_back(row);

  if (census.total_blocks > 0) {
    const auto total = static_cast<double>(census.total_blocks);
    census.main_share = static_cast<double>(census.main_blocks) / total;
    census.recognized_share =
        static_cast<double>(census.recognized_uncles) / total;
    census.unrecognized_share =
        static_cast<double>(census.unrecognized_blocks) / total;
  }
  return census;
}

OneMinerForkCensus ComputeOneMinerForks(const StudyInputs& inputs,
                                        const ForkCensus& census) {
  assert(inputs.reference != nullptr);
  const chain::BlockTree& tree = *inputs.reference;
  OneMinerForkCensus result;

  const auto recognized = RecognizedUncles(tree);

  // Group all observed blocks by (height, miner).
  std::map<std::pair<std::uint64_t, Address>, std::vector<chain::BlockPtr>>
      groups;
  for (const auto& block : tree.AllBlocks()) {
    if (block->hash == tree.genesis_hash()) continue;
    groups[{block->header.number, block->header.miner}].push_back(block);
  }

  std::size_t recognized_extras = 0;
  std::size_t same_txset_events = 0;
  for (auto& [key, blocks] : groups) {
    if (blocks.size() < 2) continue;
    ++result.events;
    ++result.tuples[blocks.size()];

    // Same-txset if every member commits to the same transaction list.
    const bool same = std::all_of(
        blocks.begin(), blocks.end(), [&](const chain::BlockPtr& b) {
          return b->header.tx_root == blocks.front()->header.tx_root;
        });
    if (same) ++same_txset_events;

    for (const auto& block : blocks) {
      if (tree.IsCanonical(block->hash)) continue;
      ++result.extra_blocks;
      if (recognized.contains(block->hash)) ++recognized_extras;
    }
  }

  if (result.extra_blocks > 0)
    result.recognized_extra_share = static_cast<double>(recognized_extras) /
                                    static_cast<double>(result.extra_blocks);
  if (result.events > 0)
    result.same_txset_share = static_cast<double>(same_txset_events) /
                              static_cast<double>(result.events);
  if (census.fork_events > 0)
    result.share_of_all_forks = static_cast<double>(result.events) /
                                static_cast<double>(census.fork_events);
  return result;
}

}  // namespace ethsim::analysis
