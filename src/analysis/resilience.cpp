#include "analysis/resilience.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"

namespace ethsim::analysis {

WindowSlice SliceWindow(const StudyInputs& inputs, TimePoint start,
                        TimePoint end) {
  WindowSlice slice;
  slice.start = start;
  slice.end = end;
  if (inputs.minted == nullptr || inputs.reference == nullptr) return slice;

  // In-window mint-catalog entries, classified against the converged tree.
  std::unordered_set<Hash32> in_window;
  for (const miner::MintRecord& record : *inputs.minted) {
    if (record.mined_at < start || record.mined_at >= end) continue;
    ++slice.blocks_minted;
    in_window.insert(record.block->hash);
    if (inputs.reference->IsCanonical(record.block->hash))
      ++slice.canonical_blocks;
  }
  slice.fork_blocks = slice.blocks_minted - slice.canonical_blocks;
  slice.fork_rate = slice.blocks_minted == 0
                        ? 0.0
                        : static_cast<double>(slice.fork_blocks) /
                              static_cast<double>(slice.blocks_minted);

  // Cross-vantage propagation, restricted to in-window blocks. Same delta
  // definition as BlockPropagationDelays: arrival minus earliest vantage
  // arrival, ties contribute nothing.
  SampleSet delays_ms;
  std::unordered_map<Hash32, std::vector<TimePoint>> by_hash;
  for (const measure::Observer* obs : inputs.observers)
    for (const auto& [hash, when] : obs->first_block_arrival())
      if (in_window.contains(hash)) by_hash[hash].push_back(when);
  for (const auto& [hash, times] : by_hash) {
    if (times.size() < 2) continue;
    const TimePoint first = *std::min_element(times.begin(), times.end());
    for (const TimePoint t : times)
      if (t != first) delays_ms.Add((t - first).millis());
  }
  slice.delay_samples = delays_ms.count();
  if (!delays_ms.empty()) {
    slice.delay_median_ms = delays_ms.Median();
    slice.delay_p95_ms = delays_ms.Quantile(0.95);
  }
  return slice;
}

ResilienceReport CompareResilience(const StudyInputs& faulted,
                                   const StudyInputs& control, TimePoint start,
                                   TimePoint end) {
  ResilienceReport report;
  report.faulted = SliceWindow(faulted, start, end);
  report.control = SliceWindow(control, start, end);
  if (report.control.fork_rate > 0)
    report.fork_rate_inflation =
        report.faulted.fork_rate / report.control.fork_rate;
  if (report.control.delay_p95_ms > 0)
    report.delay_p95_inflation =
        report.faulted.delay_p95_ms / report.control.delay_p95_ms;
  return report;
}

namespace {

void RenderSlice(std::ostringstream& out, const char* label,
                 const WindowSlice& slice) {
  out << "  " << label << ": minted " << slice.blocks_minted << ", canonical "
      << slice.canonical_blocks << ", forked " << slice.fork_blocks
      << " (fork rate " << std::fixed << std::setprecision(1)
      << slice.fork_rate * 100.0 << "%), delay median "
      << std::setprecision(0) << slice.delay_median_ms << " ms / p95 "
      << slice.delay_p95_ms << " ms (" << slice.delay_samples
      << " samples)\n";
}

}  // namespace

std::string RenderResilience(const ResilienceReport& report) {
  std::ostringstream out;
  out << "window [" << std::fixed << std::setprecision(0)
      << report.faulted.start.seconds() << " s, "
      << report.faulted.end.seconds() << " s)\n";
  RenderSlice(out, "faulted", report.faulted);
  RenderSlice(out, "control", report.control);
  out << "  inflation: fork rate x" << std::setprecision(2)
      << report.fork_rate_inflation << ", propagation p95 x"
      << report.delay_p95_inflation << "\n";
  return out.str();
}

}  // namespace ethsim::analysis
