// Table III + §III-C4/C5: the fork census. Classifies every block the
// network produced into main chain / recognized uncle (referenced by a
// canonical block) / unrecognized fork, counts fork events by length, and
// runs the one-miner-fork analysis (same miner, same height) including the
// same-vs-distinct transaction-set split and the uncle-reward success rate.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/inputs.hpp"

namespace ethsim::analysis {

struct ForkLengthRow {
  std::size_t length = 0;
  std::size_t total = 0;
  std::size_t recognized = 0;    // every block referenced as an uncle
  std::size_t unrecognized = 0;
};

struct ForkCensus {
  std::size_t total_blocks = 0;        // all non-genesis blocks seen
  std::size_t main_blocks = 0;         // canonical
  std::size_t recognized_uncles = 0;   // non-canonical, referenced
  std::size_t unrecognized_blocks = 0; // non-canonical, never referenced
  double main_share = 0;               // paper: 92.81%
  double recognized_share = 0;         // paper: 6.97%
  double unrecognized_share = 0;       // paper: 0.22%
  std::vector<ForkLengthRow> by_length;  // ascending length
  std::size_t fork_events = 0;           // number of fork roots
};

ForkCensus ComputeForkCensus(const StudyInputs& inputs);

struct OneMinerForkCensus {
  // tuple size (2 = pair, 3 = triple, ...) -> occurrences.
  std::map<std::size_t, std::size_t> tuples;
  std::size_t events = 0;            // total tuples
  std::size_t extra_blocks = 0;      // non-canonical members of tuples
  double recognized_extra_share = 0; // paper: rewarded in 98% of cases
  double same_txset_share = 0;       // paper: 56% same / 44% distinct
  double share_of_all_forks = 0;     // paper: > 11%
};

OneMinerForkCensus ComputeOneMinerForks(const StudyInputs& inputs,
                                        const ForkCensus& census);

}  // namespace ethsim::analysis
