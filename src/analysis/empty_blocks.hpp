// Fig 6 + §III-C3: the empty-block census — how many canonical blocks carry
// zero transactions, and which pools mined them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/inputs.hpp"

namespace ethsim::analysis {

struct EmptyBlockRow {
  std::string pool;
  std::size_t main_blocks = 0;   // canonical blocks mined by this pool
  std::size_t empty_blocks = 0;  // of which empty
  double empty_rate = 0;         // empty / main
  // The paper reports absolute counts over 201,086 main blocks; this scales
  // our run to that frame for side-by-side comparison.
  double scaled_to_paper = 0;
};

struct EmptyBlockResult {
  std::vector<EmptyBlockRow> rows;  // pool roster order
  std::size_t total_main_blocks = 0;
  std::size_t total_empty_blocks = 0;
  double overall_empty_rate = 0;  // paper: 1.45%
};

EmptyBlockResult EmptyBlockCensus(const StudyInputs& inputs,
                                  std::size_t paper_total_blocks = 201'086);

}  // namespace ethsim::analysis
