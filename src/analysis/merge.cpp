#include "analysis/merge.hpp"

#include <cassert>
#include <cmath>
#include <map>

namespace ethsim::analysis {

namespace {

// Recovers an integer numerator stored as numerator/denominator. The shares
// in the per-seed results are exact ratios of small integers, so the rounding
// is lossless.
std::size_t NumeratorOf(double share, std::size_t denominator) {
  return static_cast<std::size_t>(
      std::llround(share * static_cast<double>(denominator)));
}

}  // namespace

ForkCensus MergeForkCensus(const std::vector<ForkCensus>& parts) {
  ForkCensus merged;
  std::map<std::size_t, ForkLengthRow> by_length;
  for (const auto& part : parts) {
    merged.total_blocks += part.total_blocks;
    merged.main_blocks += part.main_blocks;
    merged.recognized_uncles += part.recognized_uncles;
    merged.unrecognized_blocks += part.unrecognized_blocks;
    merged.fork_events += part.fork_events;
    for (const auto& row : part.by_length) {
      ForkLengthRow& acc = by_length[row.length];
      acc.length = row.length;
      acc.total += row.total;
      acc.recognized += row.recognized;
      acc.unrecognized += row.unrecognized;
    }
  }
  for (const auto& [length, row] : by_length) merged.by_length.push_back(row);
  if (merged.total_blocks > 0) {
    const auto total = static_cast<double>(merged.total_blocks);
    merged.main_share = static_cast<double>(merged.main_blocks) / total;
    merged.recognized_share =
        static_cast<double>(merged.recognized_uncles) / total;
    merged.unrecognized_share =
        static_cast<double>(merged.unrecognized_blocks) / total;
  }
  return merged;
}

OneMinerForkCensus MergeOneMinerForks(
    const std::vector<OneMinerForkCensus>& parts,
    const ForkCensus& merged_census) {
  OneMinerForkCensus merged;
  std::size_t recognized_extras = 0;
  std::size_t same_txset_events = 0;
  for (const auto& part : parts) {
    merged.events += part.events;
    merged.extra_blocks += part.extra_blocks;
    for (const auto& [size, count] : part.tuples) merged.tuples[size] += count;
    recognized_extras +=
        NumeratorOf(part.recognized_extra_share, part.extra_blocks);
    same_txset_events += NumeratorOf(part.same_txset_share, part.events);
  }
  if (merged.extra_blocks > 0)
    merged.recognized_extra_share = static_cast<double>(recognized_extras) /
                                    static_cast<double>(merged.extra_blocks);
  if (merged.events > 0)
    merged.same_txset_share = static_cast<double>(same_txset_events) /
                              static_cast<double>(merged.events);
  if (merged_census.fork_events > 0)
    merged.share_of_all_forks =
        static_cast<double>(merged.events) /
        static_cast<double>(merged_census.fork_events);
  return merged;
}

GeoResult MergeGeoResults(const std::vector<GeoResult>& parts) {
  GeoResult merged;
  if (parts.empty()) return merged;
  merged.shares.resize(parts.front().shares.size());
  std::vector<std::size_t> uncertain(merged.shares.size(), 0);
  for (const auto& part : parts) {
    assert(part.shares.size() == merged.shares.size());
    merged.total_blocks += part.total_blocks;
    for (std::size_t i = 0; i < part.shares.size(); ++i) {
      merged.shares[i].vantage = part.shares[i].vantage;
      merged.shares[i].wins += part.shares[i].wins;
      uncertain[i] += NumeratorOf(part.shares[i].uncertain_share,
                                  part.total_blocks);
    }
  }
  if (merged.total_blocks > 0) {
    const auto total = static_cast<double>(merged.total_blocks);
    for (std::size_t i = 0; i < merged.shares.size(); ++i) {
      merged.shares[i].share =
          static_cast<double>(merged.shares[i].wins) / total;
      merged.shares[i].uncertain_share =
          static_cast<double>(uncertain[i]) / total;
    }
  }
  return merged;
}

PropagationResult MergePropagation(const std::vector<PropagationResult>& parts) {
  PropagationResult merged;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.delays_ms.count();
  merged.delays_ms.Reserve(total);
  for (const auto& part : parts) {
    merged.items += part.items;
    for (const double v : part.delays_ms.values()) merged.delays_ms.Add(v);
  }
  if (!merged.delays_ms.empty()) {
    merged.median_ms = merged.delays_ms.Median();
    merged.mean_ms = merged.delays_ms.mean();
    merged.p95_ms = merged.delays_ms.Quantile(0.95);
    merged.p99_ms = merged.delays_ms.Quantile(0.99);
  }
  return merged;
}

}  // namespace ethsim::analysis
