// Reward accounting (Constantinople rules): 2 ETH base per main block,
// uncle-miner reward base*(8-d)/8 at inclusion distance d, nephew bonus
// base/32 per referenced uncle, plus transaction fees. Quantifies the
// paper's economics: why empty blocks still pay (§III-C3: the base reward
// dwarfs fees) and what one-miner forks unethically collect (§III-C5/§V).
#pragma once

#include <string>
#include <vector>

#include "analysis/inputs.hpp"

namespace ethsim::analysis {

struct PoolRevenue {
  std::string pool;
  double hashrate_share = 0;
  std::size_t main_blocks = 0;
  std::size_t uncles_rewarded = 0;
  double block_rewards_eth = 0;
  double fee_rewards_eth = 0;
  double uncle_rewards_eth = 0;   // earned as uncle miner
  double nephew_rewards_eth = 0;  // earned for referencing uncles
  // Uncle rewards collected for forks of this pool's *own* canonical blocks
  // — the §V "unethical profit" (subset of uncle_rewards_eth).
  double one_miner_uncle_eth = 0;
  double total_eth = 0;
  double revenue_share = 0;  // of network total; compare to hashrate share
};

struct RevenueResult {
  std::vector<PoolRevenue> rows;  // roster order
  double total_eth = 0;
  double one_miner_uncle_eth = 0;      // network-wide §V leakage
  double fees_share_of_total = 0;      // why empty blocks barely cost anything
};

// Computes revenue over the reference tree's canonical chain. Fees convert
// as gas * gas_price(gwei) * 1e-9 ETH.
RevenueResult ComputeRevenue(const StudyInputs& inputs,
                             double block_reward_eth = 2.0);

}  // namespace ethsim::analysis
