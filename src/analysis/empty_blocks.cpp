#include "analysis/empty_blocks.hpp"

#include <cassert>

namespace ethsim::analysis {

EmptyBlockResult EmptyBlockCensus(const StudyInputs& inputs,
                                  std::size_t paper_total_blocks) {
  assert(inputs.reference != nullptr && inputs.pools != nullptr);
  EmptyBlockResult result;
  const auto coinbase_index = CoinbaseIndex(*inputs.pools);

  std::vector<std::size_t> main(inputs.pools->size(), 0);
  std::vector<std::size_t> empty(inputs.pools->size(), 0);

  for (const auto& block : inputs.reference->CanonicalChain()) {
    if (block->hash == inputs.reference->genesis_hash()) continue;
    const auto it = coinbase_index.find(block->header.miner);
    if (it == coinbase_index.end()) continue;  // genesis/unknown coinbase
    ++result.total_main_blocks;
    ++main[it->second];
    if (block->IsEmpty()) {
      ++result.total_empty_blocks;
      ++empty[it->second];
    }
  }

  for (std::size_t p = 0; p < inputs.pools->size(); ++p) {
    EmptyBlockRow row;
    row.pool = (*inputs.pools)[p].name;
    row.main_blocks = main[p];
    row.empty_blocks = empty[p];
    row.empty_rate = main[p] > 0 ? static_cast<double>(empty[p]) /
                                       static_cast<double>(main[p])
                                 : 0.0;
    if (result.total_main_blocks > 0)
      row.scaled_to_paper = static_cast<double>(empty[p]) *
                            static_cast<double>(paper_total_blocks) /
                            static_cast<double>(result.total_main_blocks);
    result.rows.push_back(std::move(row));
  }
  if (result.total_main_blocks > 0)
    result.overall_empty_rate =
        static_cast<double>(result.total_empty_blocks) /
        static_cast<double>(result.total_main_blocks);
  return result;
}

}  // namespace ethsim::analysis
