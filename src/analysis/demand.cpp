#include "analysis/demand.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analysis/commit.hpp"
#include "common/render.hpp"

namespace ethsim::analysis {

namespace {

using render::Fmt;
using render::Table;

struct ReplacementGroup {
  bool replaced = false;
  bool included_original = false;
  bool included_replacement = false;
};

}  // namespace

DemandResult AnalyzeDemand(const StudyInputs& inputs,
                           const std::vector<workload::SubmittedTx>& submitted,
                           const workload::WorkloadPlan& plan,
                           std::vector<std::uint64_t> confirmation_depths) {
  assert(inputs.reference != nullptr);
  DemandResult result;

  // Source table: the plan's sources, or one synthetic row for the legacy
  // default workload (every record then carries source 0).
  if (plan.empty()) {
    SourceDemand legacy;
    legacy.name = "legacy";
    legacy.kind = "poisson+burst";
    result.per_source.push_back(std::move(legacy));
  } else {
    for (const workload::TrafficSource& src : plan.sources) {
      SourceDemand row;
      row.name = src.name;
      row.kind = std::string(workload::SourceKindName(src.kind));
      result.per_source.push_back(std::move(row));
    }
  }

  // Offered side, straight off the submission log.
  std::unordered_map<Hash32, const workload::SubmittedTx*> by_hash;
  by_hash.reserve(submitted.size());
  std::unordered_map<Address, std::unordered_map<std::uint64_t,
                                                 ReplacementGroup>> groups;
  for (const workload::SubmittedTx& rec : submitted) {
    ++result.offered_total;
    if (rec.source < result.per_source.size()) {
      ++result.per_source[rec.source].offered;
      if (rec.replacement > 0) ++result.per_source[rec.source].replacements;
    }
    if (rec.region < net::kRegionCount) ++result.per_region[rec.region].offered;
    by_hash.emplace(rec.hash, &rec);
    if (rec.replacement > 0) {
      ++result.replacement.replacements_issued;
      groups[rec.sender][rec.nonce].replaced = true;
    } else {
      groups[rec.sender][rec.nonce];  // ensure the group exists
    }
  }

  // Included side: every canonical transaction of the reference chain,
  // attributed back to its submission record. Inclusion latency is measured
  // the way a client experiences it: first network observation of the
  // including block minus the submission instant.
  const auto block_seen = CanonicalBlockFirstSeen(inputs);
  const auto tx_seen = TxFirstSeen(inputs.observers);
  const std::uint64_t max_depth =
      confirmation_depths.empty()
          ? 0
          : *std::max_element(confirmation_depths.begin(),
                              confirmation_depths.end());

  std::vector<std::pair<std::uint64_t, double>> price_delay;  // (gwei, s)
  for (const auto& block : inputs.reference->CanonicalChain()) {
    const std::uint64_t height = block->header.number;
    bool covered = block_seen.contains(height + max_depth);
    for (const std::uint64_t depth : confirmation_depths)
      if (!block_seen.contains(height + depth)) covered = false;

    for (const auto& tx : block->transactions) {
      const auto rec_it = by_hash.find(tx.hash);
      const workload::SubmittedTx* rec =
          rec_it == by_hash.end() ? nullptr : rec_it->second;

      if (rec != nullptr) {
        ++result.included_total;
        if (rec->source < result.per_source.size())
          ++result.per_source[rec->source].included;
        if (rec->region < net::kRegionCount)
          ++result.per_region[rec->region].included;
        auto group_it = groups.find(rec->sender);
        if (group_it != groups.end()) {
          auto nonce_it = group_it->second.find(rec->nonce);
          if (nonce_it != group_it->second.end()) {
            if (rec->replacement > 0)
              nonce_it->second.included_replacement = true;
            else
              nonce_it->second.included_original = true;
          }
        }
        const auto seen_it = block_seen.find(height);
        if (seen_it != block_seen.end()) {
          const double delay_s =
              std::max(0.0, (seen_it->second - rec->submitted_at).seconds());
          if (rec->source < result.per_source.size())
            result.per_source[rec->source].inclusion_delay_s.Add(delay_s);
          price_delay.emplace_back(tx.gas_price, delay_s);
        }
      }

      // Commit eligibility: identical rule to TransactionCommitTimes, so the
      // per-source sum (plus unattributed) reconciles with committed_txs.
      if (covered && tx_seen.contains(tx.hash)) {
        ++result.committed_total;
        if (rec == nullptr) {
          ++result.unattributed_committed;
        } else {
          if (rec->source < result.per_source.size())
            ++result.per_source[rec->source].committed;
          if (rec->region < net::kRegionCount)
            ++result.per_region[rec->region].committed;
        }
      }
    }
  }

  // Gas-price deciles over the included population: equal-count buckets of
  // the price-sorted sample, each carrying its own latency distribution.
  std::sort(price_delay.begin(), price_delay.end());
  if (!price_delay.empty()) {
    const std::size_t buckets =
        std::min<std::size_t>(10, price_delay.size());
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::size_t lo = b * price_delay.size() / buckets;
      const std::size_t hi = (b + 1) * price_delay.size() / buckets;
      if (lo >= hi) continue;
      PriceDecileStat stat;
      stat.price_lo = price_delay[lo].first;
      stat.price_hi = price_delay[hi - 1].first;
      for (std::size_t i = lo; i < hi; ++i)
        stat.inclusion_delay_s.Add(price_delay[i].second);
      result.price_deciles.push_back(std::move(stat));
    }
  }

  // Replace-by-fee outcomes per (sender, nonce) group.
  for (const auto& [sender, per_nonce] : groups) {
    for (const auto& [nonce, group] : per_nonce) {
      if (!group.replaced) continue;
      ++result.replacement.groups_replaced;
      if (group.included_replacement)
        ++result.replacement.included_replacement;
      else if (group.included_original)
        ++result.replacement.included_original;
      else
        ++result.replacement.unresolved;
    }
  }
  return result;
}

std::string RenderDemand(const DemandResult& result) {
  std::ostringstream os;
  os << "Demand analysis - offered vs included vs committed load\n"
     << "=======================================================\n";

  Table sources{{"source", "kind", "offered", "included", "committed",
                 "incl p50", "incl p90"}};
  for (const SourceDemand& row : result.per_source) {
    const bool any = row.inclusion_delay_s.count() > 0;
    sources.AddRow({row.name, row.kind, std::to_string(row.offered),
                    std::to_string(row.included), std::to_string(row.committed),
                    any ? Fmt(row.inclusion_delay_s.Quantile(0.50), 1) + " s"
                        : "-",
                    any ? Fmt(row.inclusion_delay_s.Quantile(0.90), 1) + " s"
                        : "-"});
  }
  sources.AddRow({"total", "", std::to_string(result.offered_total),
                  std::to_string(result.included_total),
                  std::to_string(result.committed_total), "", ""});
  os << sources.ToString() << '\n';

  Table regions{{"region", "offered", "included", "committed"}};
  for (std::size_t r = 0; r < net::kRegionCount; ++r) {
    const RegionDemand& row = result.per_region[r];
    if (row.offered == 0 && row.included == 0) continue;
    regions.AddRow({std::string(net::RegionShortName(
                        static_cast<net::Region>(r))),
                    std::to_string(row.offered), std::to_string(row.included),
                    std::to_string(row.committed)});
  }
  os << regions.ToString() << '\n';

  if (!result.price_deciles.empty()) {
    os << "Inclusion latency by gas-price decile:\n";
    Table deciles{{"decile", "gwei range", "n", "p50", "p90"}};
    for (std::size_t b = 0; b < result.price_deciles.size(); ++b) {
      const PriceDecileStat& stat = result.price_deciles[b];
      deciles.AddRow({std::to_string(b + 1),
                      std::to_string(stat.price_lo) + ".." +
                          std::to_string(stat.price_hi),
                      std::to_string(stat.inclusion_delay_s.count()),
                      Fmt(stat.inclusion_delay_s.Quantile(0.50), 1) + " s",
                      Fmt(stat.inclusion_delay_s.Quantile(0.90), 1) + " s"});
    }
    os << deciles.ToString() << '\n';
  }

  const ReplacementAccounting& rep = result.replacement;
  if (rep.groups_replaced > 0 || rep.replacements_issued > 0) {
    os << "Replace-by-fee outcomes: " << rep.groups_replaced
       << " txs escalated (" << rep.replacements_issued << " re-submissions); "
       << rep.included_replacement << " landed as the replacement, "
       << rep.included_original << " as the original, " << rep.unresolved
       << " unresolved at run end\n";
  }
  if (result.unattributed_committed > 0)
    os << "warning: " << result.unattributed_committed
       << " committed txs had no submission record\n";
  return os.str();
}

}  // namespace ethsim::analysis
