#include "analysis/inputs.hpp"

namespace ethsim::analysis {

std::unordered_map<Address, std::size_t> CoinbaseIndex(
    const std::vector<miner::PoolSpec>& pools) {
  std::unordered_map<Address, std::size_t> index;
  for (std::size_t i = 0; i < pools.size(); ++i)
    index.emplace(pools[i].coinbase, i);
  return index;
}

std::unordered_map<Hash32, const miner::MintRecord*> MintIndex(
    const std::vector<miner::MintRecord>& minted) {
  std::unordered_map<Hash32, const miner::MintRecord*> index;
  index.reserve(minted.size());
  for (const auto& record : minted) index.emplace(record.block->hash, &record);
  return index;
}

}  // namespace ethsim::analysis
