// §III-C1 support: inter-block time statistics. The paper ties commit-time
// improvements to the mean inter-block time falling from 14.3 s (2017) to
// 13.3 s (Constantinople, study window) and cites the difficulty bomb as the
// mechanism; this module measures the realized interval distribution and
// the difficulty trend over a run.
#pragma once

#include "analysis/inputs.hpp"
#include "common/stats.hpp"

namespace ethsim::analysis {

struct InterBlockResult {
  SampleSet intervals_s;     // timestamp deltas along the canonical chain
  double mean_s = 0;
  double median_s = 0;
  // Difficulty trend: mean difficulty over the first and last deciles of the
  // chain (rising => the bomb or hashrate pressure is biting).
  double difficulty_first_decile = 0;
  double difficulty_last_decile = 0;
  std::size_t blocks = 0;
};

// Measured over the canonical chain of `inputs.reference`. `skip` leading
// blocks are dropped (difficulty warm-up from the genesis seed).
InterBlockResult InterBlockTimes(const StudyInputs& inputs, std::size_t skip = 50);

// Expected number of blocks for a k-confirmation commit rule at the realized
// mean interval — the bridge from Fig 4's commit medians to §III-C1's claim.
double ExpectedCommitSeconds(const InterBlockResult& result,
                             std::uint64_t confirmations);

}  // namespace ethsim::analysis
