#include "analysis/ordering.hpp"

#include <algorithm>
#include <cassert>

#include "analysis/commit.hpp"

namespace ethsim::analysis {

OrderingResult TransactionOrdering(const StudyInputs& inputs,
                                   std::uint64_t confirmations) {
  assert(inputs.reference != nullptr);
  OrderingResult result;

  const auto block_seen = CanonicalBlockFirstSeen(inputs);

  // Committed txs with commit coverage: hash -> (sender, nonce, commit time).
  struct Committed {
    Address sender;
    std::uint64_t nonce;
    TimePoint committed_at;
  };
  std::unordered_map<Hash32, Committed> committed;
  for (const auto& block : inputs.reference->CanonicalChain()) {
    const auto it = block_seen.find(block->header.number + confirmations);
    if (it == block_seen.end()) continue;  // ran past the end of the study
    for (const auto& tx : block->transactions)
      committed.emplace(tx.hash, Committed{tx.sender, tx.nonce, it->second});
  }

  // Classification happens independently at each vantage, exactly as each
  // measurement node's log would be processed; samples aggregate across
  // vantages.
  for (const auto* obs : inputs.observers) {
    // sender -> [(nonce, arrival, commit time)]
    struct Seen {
      std::uint64_t nonce;
      TimePoint arrival;
      TimePoint committed_at;
    };
    std::unordered_map<Address, std::vector<Seen>> by_sender;
    for (const auto& [hash, arrival] : obs->first_tx_arrival()) {
      const auto it = committed.find(hash);
      if (it == committed.end()) continue;
      by_sender[it->second.sender].push_back(
          Seen{it->second.nonce, arrival, it->second.committed_at});
    }

    for (auto& [sender, txs] : by_sender) {
      std::sort(txs.begin(), txs.end(),
                [](const Seen& a, const Seen& b) { return a.nonce < b.nonce; });
      // tx is out-of-order iff some lower nonce arrived after it.
      TimePoint running_max_arrival;
      bool have_prev = false;
      for (const auto& tx : txs) {
        const bool ooo = have_prev && running_max_arrival > tx.arrival;
        ++result.committed_txs;
        const double delay_s =
            std::max(0.0, (tx.committed_at - tx.arrival).seconds());
        if (ooo) {
          ++result.out_of_order;
          result.out_of_order_delay_s.Add(delay_s);
        } else {
          result.in_order_delay_s.Add(delay_s);
        }
        if (!have_prev || tx.arrival > running_max_arrival)
          running_max_arrival = tx.arrival;
        have_prev = true;
      }
    }
  }

  if (result.committed_txs > 0)
    result.out_of_order_share = static_cast<double>(result.out_of_order) /
                                static_cast<double>(result.committed_txs);
  return result;
}

}  // namespace ethsim::analysis
