#include "analysis/sequences.hpp"

#include <cassert>
#include <cmath>

namespace ethsim::analysis {

double PoolSequences::CdfAt(std::size_t k) const {
  std::size_t total = 0, at_most = 0;
  for (const auto& [length, count] : runs) {
    total += count;
    if (length <= k) at_most += count;
  }
  return total == 0 ? 1.0
                    : static_cast<double>(at_most) / static_cast<double>(total);
}

std::size_t PoolSequences::RunsAtLeast(std::size_t k) const {
  std::size_t n = 0;
  for (const auto& [length, count] : runs)
    if (length >= k) n += count;
  return n;
}

SequenceResult SequencesFromWinners(const std::vector<std::size_t>& winners,
                                    const std::vector<miner::PoolSpec>& pools) {
  SequenceResult result;
  result.total_main_blocks = winners.size();
  result.pools.resize(pools.size());
  for (std::size_t p = 0; p < pools.size(); ++p) {
    result.pools[p].pool = pools[p].name;
    result.pools[p].hashrate_share = pools[p].hashrate_share;
  }

  std::size_t i = 0;
  while (i < winners.size()) {
    const std::size_t pool = winners[i];
    std::size_t j = i;
    while (j < winners.size() && winners[j] == pool) ++j;
    const std::size_t run = j - i;
    if (pool < result.pools.size()) {
      PoolSequences& ps = result.pools[pool];
      ++ps.runs[run];
      ps.blocks += run;
      ps.max_run = std::max(ps.max_run, run);
    }
    i = j;
  }
  return result;
}

SequenceResult ConsecutiveMinerSequences(const StudyInputs& inputs) {
  assert(inputs.reference != nullptr && inputs.pools != nullptr);
  const auto coinbase_index = CoinbaseIndex(*inputs.pools);

  std::vector<std::size_t> winners;
  for (const auto& block : inputs.reference->CanonicalChain()) {
    if (block->hash == inputs.reference->genesis_hash()) continue;
    const auto it = coinbase_index.find(block->header.miner);
    // Unknown coinbases (shouldn't happen) break runs via a sentinel index.
    winners.push_back(it == coinbase_index.end() ? inputs.pools->size()
                                                 : it->second);
  }
  return SequencesFromWinners(winners, *inputs.pools);
}

double ExpectedRuns(double share, std::size_t k, std::size_t blocks) {
  return std::pow(share, static_cast<double>(k)) *
         static_cast<double>(blocks);
}

std::vector<std::size_t> SampleWinners(const std::vector<miner::PoolSpec>& pools,
                                       std::size_t blocks, Rng rng) {
  std::vector<double> shares;
  shares.reserve(pools.size());
  for (const auto& p : pools) shares.push_back(p.hashrate_share);
  AliasSampler sampler{shares};

  std::vector<std::size_t> winners;
  winners.reserve(blocks);
  for (std::size_t i = 0; i < blocks; ++i) winners.push_back(sampler.Sample(rng));
  return winners;
}

}  // namespace ethsim::analysis
