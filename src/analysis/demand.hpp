// Demand-side analysis: offered vs included vs committed load per traffic
// source and per submission region, inclusion latency sliced by gas-price
// decile, and replace-by-fee outcome accounting. The "committed" column uses
// the exact eligibility rule of analysis/commit (observation coverage at
// every confirmation height, tx seen by a vantage), so the per-source totals
// reconcile with TransactionCommitTimes().committed_txs.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/inputs.hpp"
#include "common/stats.hpp"
#include "net/geo.hpp"
#include "workload/generator.hpp"
#include "workload/plan.hpp"

namespace ethsim::analysis {

struct SourceDemand {
  std::string name;
  std::string kind;
  std::uint64_t offered = 0;       // submissions, replacements included
  std::uint64_t replacements = 0;  // escalated re-submissions
  std::uint64_t included = 0;      // landed on the reference canonical chain
  std::uint64_t committed = 0;     // commit-eligible (analysis/commit rule)
  SampleSet inclusion_delay_s;     // first block observation - submission
};

struct RegionDemand {
  std::uint64_t offered = 0;
  std::uint64_t included = 0;
  std::uint64_t committed = 0;
};

struct PriceDecileStat {
  std::uint64_t price_lo = 0;  // gwei bounds of this decile (inclusive)
  std::uint64_t price_hi = 0;
  SampleSet inclusion_delay_s;
};

struct ReplacementAccounting {
  std::uint64_t groups_replaced = 0;       // (sender, nonce) with >=1 escalation
  std::uint64_t replacements_issued = 0;   // escalated submissions
  std::uint64_t included_original = 0;     // group landed as the first tx
  std::uint64_t included_replacement = 0;  // group landed as an escalation
  std::uint64_t unresolved = 0;            // never included within the run
};

struct DemandResult {
  std::vector<SourceDemand> per_source;  // plan order; one "legacy" row when
                                         // the run used the default workload
  std::array<RegionDemand, net::kRegionCount> per_region{};
  std::uint64_t offered_total = 0;
  std::uint64_t included_total = 0;
  std::uint64_t committed_total = 0;  // == TransactionCommitTimes committed_txs
  // Commit-eligible canonical txs with no submission record (0 by
  // construction when `submitted` covers the whole run).
  std::uint64_t unattributed_committed = 0;
  std::vector<PriceDecileStat> price_deciles;  // up to 10, by gas price
  ReplacementAccounting replacement;
};

// `confirmation_depths` must match the TransactionCommitTimes call the result
// is reconciled against.
DemandResult AnalyzeDemand(
    const StudyInputs& inputs,
    const std::vector<workload::SubmittedTx>& submitted,
    const workload::WorkloadPlan& plan,
    std::vector<std::uint64_t> confirmation_depths = {0, 3, 12, 15, 36});

std::string RenderDemand(const DemandResult& result);

}  // namespace ethsim::analysis
