// Deterministic cross-seed aggregation. A SeedSweepRunner hands back one
// finished Experiment per seed; these helpers fold the per-seed analysis
// results into a single census/figure exactly as if the paper had observed N
// independent months. All merges are pure functions of the inputs *in input
// order*, so a parallel sweep merged in seed order is reproducible regardless
// of thread count or scheduling.
#pragma once

#include <vector>

#include "analysis/forks.hpp"
#include "analysis/geo.hpp"
#include "analysis/propagation.hpp"

namespace ethsim::analysis {

// Sums all counters and recomputes shares over the pooled population.
ForkCensus MergeForkCensus(const std::vector<ForkCensus>& parts);

// Sums tuple counts and recomputes the recognized/same-txset/fork shares
// from the pooled numerators. `merged_census` must be the MergeForkCensus of
// the same runs (for the share-of-all-forks denominator).
OneMinerForkCensus MergeOneMinerForks(
    const std::vector<OneMinerForkCensus>& parts,
    const ForkCensus& merged_census);

// Pools first-observation wins across runs. All parts must come from
// identically configured vantage sets (same order, same names).
GeoResult MergeGeoResults(const std::vector<GeoResult>& parts);

// Pools the delay samples and recomputes the summary quantiles.
PropagationResult MergePropagation(const std::vector<PropagationResult>& parts);

}  // namespace ethsim::analysis
