// Fig 2: which vantage sees new blocks first, and Fig 3: the same split
// conditioned on the origin mining pool. Error bars follow §II — a win is
// "uncertain" when the runner-up vantage is within the NTP error envelope.
#pragma once

#include <string>
#include <vector>

#include "analysis/inputs.hpp"

namespace ethsim::analysis {

struct FirstObservationShare {
  std::string vantage;
  std::size_t wins = 0;
  double share = 0;            // wins / total
  double uncertain_share = 0;  // wins where 2nd place was within NTP error
};

struct GeoResult {
  std::vector<FirstObservationShare> shares;  // one per observer
  std::size_t total_blocks = 0;
};

// Fig 2. `ntp_error` is the tie window for the error bars (paper: 10 ms in
// 90% of cases; a win decided by less than 2x that is flagged uncertain).
GeoResult FirstObservationShares(const ObserverSet& observers,
                                 Duration ntp_error = Duration::Millis(10));

struct PoolGeoRow {
  std::string pool;
  double hashrate_share = 0;
  std::size_t blocks = 0;                  // blocks from this pool seen >= 1 vantage
  std::vector<double> vantage_shares;      // same order as observers
};

struct PoolGeoResult {
  std::vector<std::string> vantages;
  std::vector<PoolGeoRow> rows;  // pool roster order (share-descending)
};

// Fig 3: first-observation split per origin pool.
PoolGeoResult PoolFirstObservation(const StudyInputs& inputs);

}  // namespace ethsim::analysis
