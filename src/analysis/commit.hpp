// Fig 4: transaction inclusion and commit times. For a committed transaction
// the inclusion delay is (first network observation of the including block)
// minus (first network observation of the transaction); the k-confirmation
// delay additionally waits for the canonical block at height h+k. All times
// are vantage-local observations, as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/inputs.hpp"
#include "common/stats.hpp"

namespace ethsim::analysis {

struct CommitTimeResult {
  // Delays in seconds for each depth: inclusion (0) and each requested
  // confirmation depth, in the order passed to the function.
  std::vector<SampleSet> delays_s;
  std::vector<std::uint64_t> depths;  // {0, 3, 12, 15, 36} by default
  std::size_t committed_txs = 0;      // txs with full confirmation coverage
};

// Computes inclusion/commit curves over the canonical chain of
// `inputs.reference`. Transactions too close to the end of the run (their
// h+max_depth block doesn't exist) are excluded, as are never-committed txs.
CommitTimeResult TransactionCommitTimes(
    const StudyInputs& inputs,
    std::vector<std::uint64_t> confirmation_depths = {0, 3, 12, 15, 36});

// First network-wide observation time of the canonical block at each height
// (minimum across vantages). Exposed for reuse by the ordering analysis.
std::unordered_map<std::uint64_t, TimePoint> CanonicalBlockFirstSeen(
    const StudyInputs& inputs);

// First network-wide observation per transaction hash.
std::unordered_map<Hash32, TimePoint> TxFirstSeen(const ObserverSet& observers);

}  // namespace ethsim::analysis
