#include "analysis/rewards.hpp"

#include <cassert>

namespace ethsim::analysis {

RevenueResult ComputeRevenue(const StudyInputs& inputs,
                             double block_reward_eth) {
  assert(inputs.reference != nullptr && inputs.pools != nullptr);
  const chain::BlockTree& tree = *inputs.reference;
  const auto coinbase_index = CoinbaseIndex(*inputs.pools);

  RevenueResult result;
  result.rows.resize(inputs.pools->size());
  for (std::size_t p = 0; p < inputs.pools->size(); ++p) {
    result.rows[p].pool = (*inputs.pools)[p].name;
    result.rows[p].hashrate_share = (*inputs.pools)[p].hashrate_share;
  }

  auto pool_of = [&](const Address& coinbase) -> PoolRevenue* {
    const auto it = coinbase_index.find(coinbase);
    return it == coinbase_index.end() ? nullptr : &result.rows[it->second];
  };

  double total_fees = 0;
  for (const auto& block : tree.CanonicalChain()) {
    if (block->hash == tree.genesis_hash()) continue;
    PoolRevenue* miner = pool_of(block->header.miner);
    if (miner != nullptr) {
      ++miner->main_blocks;
      miner->block_rewards_eth += block_reward_eth;
      double fees = 0;
      for (const auto& tx : block->transactions)
        fees += static_cast<double>(tx.gas_limit) *
                static_cast<double>(tx.gas_price) * 1e-9;
      miner->fee_rewards_eth += fees;
      total_fees += fees;
      miner->nephew_rewards_eth +=
          block_reward_eth / 32.0 * static_cast<double>(block->uncles.size());
    }

    for (const auto& uncle : block->uncles) {
      PoolRevenue* uncle_miner = pool_of(uncle.miner);
      if (uncle_miner == nullptr) continue;
      ++uncle_miner->uncles_rewarded;
      const std::uint64_t distance = block->header.number - uncle.number;
      const double reward =
          block_reward_eth *
          static_cast<double>(8 - std::min<std::uint64_t>(distance, 7)) / 8.0;
      uncle_miner->uncle_rewards_eth += reward;

      // §V's unethical case: the uncle's miner also holds the canonical
      // slot at the uncle's own height.
      const Hash32 canonical_at = tree.CanonicalAt(uncle.number);
      const chain::BlockPtr canonical = tree.Get(canonical_at);
      if (canonical && canonical->header.miner == uncle.miner) {
        uncle_miner->one_miner_uncle_eth += reward;
        result.one_miner_uncle_eth += reward;
      }
    }
  }

  for (auto& row : result.rows) {
    row.total_eth = row.block_rewards_eth + row.fee_rewards_eth +
                    row.uncle_rewards_eth + row.nephew_rewards_eth;
    result.total_eth += row.total_eth;
  }
  for (auto& row : result.rows)
    row.revenue_share =
        result.total_eth > 0 ? row.total_eth / result.total_eth : 0.0;
  result.fees_share_of_total =
      result.total_eth > 0 ? total_fees / result.total_eth : 0.0;
  return result;
}

}  // namespace ethsim::analysis
