#include "analysis/latency_stages.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>

#include "analysis/commit.hpp"
#include "common/render.hpp"

namespace ethsim::analysis {

namespace {

using render::Fmt;
using render::Table;

constexpr std::int64_t kUnset = INT64_MIN;
constexpr std::uint16_t kNoPool = 0xffff;

// Per-transaction stage times distilled from one pass over the log.
struct TxTimeline {
  std::int64_t submitted_us = kUnset;
  std::int64_t first_admit_us = kUnset;
  std::int64_t include_us = kUnset;  // latest (live) anchor inclusion
  std::int64_t commit_us = kUnset;   // commit at the max swept depth
  std::uint64_t include_block = 0;
  std::uint8_t submit_region = 0xff;
  std::uint16_t include_pool = kNoPool;
  // Block-prefix -> pool of the kSelected record, so a reorg that lands the
  // tx via a different block still attributes the right pool.
  std::unordered_map<std::uint64_t, std::uint16_t> selected_pool;
};

std::unordered_map<std::uint64_t, TxTimeline> BuildTimelines(
    const obs::TxProvLog& log, std::uint64_t max_depth) {
  std::unordered_map<std::uint64_t, TxTimeline> timelines;
  for (std::size_t i = 0; i < log.size(); ++i) {
    TxTimeline& tl = timelines[log.tx[i]];
    switch (static_cast<obs::TxStage>(log.stage[i])) {
      case obs::TxStage::kSubmitted:
        if (tl.submitted_us == kUnset) {
          tl.submitted_us = log.t_us[i];
          const std::uint32_t host = log.host[i];
          if (host < log.host_region.size())
            tl.submit_region = log.host_region[host];
        }
        break;
      case obs::TxStage::kPoolAdmitted:
      case obs::TxStage::kPoolReplaced:
        if (tl.first_admit_us == kUnset) tl.first_admit_us = log.t_us[i];
        break;
      case obs::TxStage::kSelected:
        tl.selected_pool[log.aux[i]] = log.info[i];
        break;
      case obs::TxStage::kIncluded: {
        tl.include_us = log.t_us[i];
        tl.include_block = log.aux[i];
        const auto sel = tl.selected_pool.find(log.aux[i]);
        tl.include_pool =
            sel == tl.selected_pool.end() ? kNoPool : sel->second;
        break;
      }
      case obs::TxStage::kCommitted:
        if (log.info[i] == max_depth) tl.commit_us = log.t_us[i];
        break;
      default:
        break;  // kFirstSeen / rejection outcomes don't enter the split
    }
  }
  return timelines;
}

// Folds one committed transaction's timeline into a bucket. Returns false
// when a stage needed for the three-way split is missing.
bool AddToBucket(StageLatency& bucket, const TxTimeline& tl) {
  ++bucket.committed;
  if (tl.submitted_us == kUnset || tl.first_admit_us == kUnset ||
      tl.include_us == kUnset || tl.commit_us == kUnset)
    return false;
  bucket.submit_to_admit_s.Add(
      static_cast<double>(tl.first_admit_us - tl.submitted_us) / 1e6);
  bucket.admit_to_include_s.Add(
      static_cast<double>(tl.include_us - tl.first_admit_us) / 1e6);
  bucket.include_to_commit_s.Add(
      static_cast<double>(tl.commit_us - tl.include_us) / 1e6);
  return true;
}

// Attributes one committed tx to overall + region + pool. A bucket index of
// kNoPool / region >= kRegionCount only skips that breakdown.
void Attribute(LatencyStageResult& result, const TxTimeline& tl,
               std::uint8_t region, std::uint16_t pool) {
  ++result.committed_total;
  const bool complete = AddToBucket(result.overall, tl);
  if (!complete) ++result.missing_stage_records;
  if (region < net::kRegionCount) AddToBucket(result.per_region[region], tl);
  if (pool != kNoPool && pool < result.per_pool.size())
    AddToBucket(result.per_pool[pool], tl);
}

void RenderBucketRow(Table& table, const std::string& name,
                     const StageLatency& bucket) {
  const auto cell = [](const SampleSet& s, double q) {
    return s.empty() ? std::string("-") : Fmt(s.Quantile(q), 2) + " s";
  };
  table.AddRow({name, std::to_string(bucket.committed),
                std::to_string(bucket.submit_to_admit_s.count()),
                cell(bucket.submit_to_admit_s, 0.50),
                cell(bucket.submit_to_admit_s, 0.90),
                cell(bucket.admit_to_include_s, 0.50),
                cell(bucket.admit_to_include_s, 0.90),
                cell(bucket.include_to_commit_s, 0.50),
                cell(bucket.include_to_commit_s, 0.90)});
}

void RenderCsvRow(std::ostream& os, std::string_view kind,
                  std::string_view name, const StageLatency& bucket) {
  const auto cell = [](const SampleSet& s, double q) {
    return s.empty() ? std::string("") : Fmt(s.Quantile(q), 6);
  };
  os << kind << ',' << name << ',' << bucket.committed << ','
     << bucket.submit_to_admit_s.count() << ','
     << cell(bucket.submit_to_admit_s, 0.50) << ','
     << cell(bucket.submit_to_admit_s, 0.90) << ','
     << cell(bucket.admit_to_include_s, 0.50) << ','
     << cell(bucket.admit_to_include_s, 0.90) << ','
     << cell(bucket.include_to_commit_s, 0.50) << ','
     << cell(bucket.include_to_commit_s, 0.90) << '\n';
}

}  // namespace

LatencyStageResult DecomposeLatencyStages(
    const StudyInputs& inputs,
    const std::vector<workload::SubmittedTx>& submitted,
    const obs::TxProvLog& log,
    std::vector<std::uint64_t> confirmation_depths) {
  assert(inputs.reference != nullptr);
  LatencyStageResult result;
  result.depths = confirmation_depths;
  if (inputs.pools != nullptr) {
    result.per_pool.resize(inputs.pools->size());
    for (const auto& pool : *inputs.pools)
      result.pool_names.push_back(pool.name);
  }

  const std::uint64_t max_depth =
      confirmation_depths.empty()
          ? 0
          : *std::max_element(confirmation_depths.begin(),
                              confirmation_depths.end());
  const auto timelines = BuildTimelines(log, max_depth);

  std::unordered_map<Hash32, const workload::SubmittedTx*> by_hash;
  by_hash.reserve(submitted.size());
  for (const workload::SubmittedTx& rec : submitted)
    by_hash.emplace(rec.hash, &rec);
  const auto coinbase =
      inputs.pools != nullptr
          ? CoinbaseIndex(*inputs.pools)
          : std::unordered_map<Address, std::size_t>{};

  // Committed set: the exact TransactionCommitTimes / AnalyzeDemand rule —
  // canonical transaction whose including height has vantage-observed
  // canonical blocks at every swept depth.
  const auto block_seen = CanonicalBlockFirstSeen(inputs);
  const auto tx_seen = TxFirstSeen(inputs.observers);
  static const TxTimeline kEmptyTimeline;
  for (const auto& block : inputs.reference->CanonicalChain()) {
    const std::uint64_t height = block->header.number;
    bool covered = block_seen.contains(height + max_depth);
    for (const std::uint64_t depth : confirmation_depths)
      if (!block_seen.contains(height + depth)) covered = false;
    if (!covered) continue;

    std::uint16_t pool = kNoPool;
    if (const auto pool_it = coinbase.find(block->header.miner);
        pool_it != coinbase.end())
      pool = static_cast<std::uint16_t>(pool_it->second);

    for (const auto& tx : block->transactions) {
      if (!tx_seen.contains(tx.hash)) continue;
      const auto tl_it = timelines.find(tx.hash.prefix_u64());
      const TxTimeline& tl =
          tl_it == timelines.end() ? kEmptyTimeline : tl_it->second;
      // Region of the submitting frontend, straight off the submission
      // record (same attribution as AnalyzeDemand's per-region table).
      std::uint8_t region = 0xff;
      if (const auto rec_it = by_hash.find(tx.hash); rec_it != by_hash.end())
        region = rec_it->second->region;
      Attribute(result, tl, region, pool);
    }
  }
  return result;
}

LatencyStageResult DecomposeLatencyStages(const obs::TxProvLog& log) {
  LatencyStageResult result;
  result.depths = log.depths;
  const std::uint64_t max_depth =
      log.depths.empty()
          ? 0
          : *std::max_element(log.depths.begin(), log.depths.end());
  const auto timelines = BuildTimelines(log, max_depth);

  std::uint16_t max_pool = 0;
  bool any_pool = false;
  for (const auto& [tx, tl] : timelines) {
    (void)tx;
    for (const auto& [block, pool] : tl.selected_pool) {
      (void)block;
      if (pool != kNoPool) {
        max_pool = std::max(max_pool, pool);
        any_pool = true;
      }
    }
  }
  if (any_pool) {
    result.per_pool.resize(static_cast<std::size_t>(max_pool) + 1);
    for (std::size_t p = 0; p < result.per_pool.size(); ++p)
      result.pool_names.push_back("pool" + std::to_string(p));
  }

  // Deterministic order: sort committed txs by (commit time, hash prefix)
  // so repeated invocations over the same artifact render identical output.
  std::vector<std::pair<std::int64_t, std::uint64_t>> committed;
  for (const auto& [tx, tl] : timelines)
    if (tl.commit_us != kUnset) committed.emplace_back(tl.commit_us, tx);
  std::sort(committed.begin(), committed.end());
  for (const auto& [commit_us, tx] : committed) {
    (void)commit_us;
    const TxTimeline& tl = timelines.at(tx);
    Attribute(result, tl, tl.submit_region, tl.include_pool);
  }
  return result;
}

std::string RenderLatencyStages(const LatencyStageResult& result,
                                bool by_region, bool by_pool) {
  std::ostringstream os;
  os << "Commit-latency decomposition (submit->admit | admit->include | "
        "include->commit)\n";
  os << "depths:";
  for (const std::uint64_t depth : result.depths) os << ' ' << depth;
  os << "  committed: " << result.committed_total;
  if (result.missing_stage_records > 0)
    os << "  (missing stage records: " << result.missing_stage_records << ")";
  os << '\n';

  Table table{{"bucket", "committed", "n", "s->a p50", "s->a p90",
               "a->i p50", "a->i p90", "i->c p50", "i->c p90"}};
  RenderBucketRow(table, "overall", result.overall);
  if (by_region) {
    for (std::size_t r = 0; r < net::kRegionCount; ++r) {
      if (result.per_region[r].committed == 0) continue;
      RenderBucketRow(
          table,
          std::string(net::RegionShortName(static_cast<net::Region>(r))),
          result.per_region[r]);
    }
  }
  if (by_pool) {
    for (std::size_t p = 0; p < result.per_pool.size(); ++p) {
      if (result.per_pool[p].committed == 0) continue;
      RenderBucketRow(table, result.pool_names[p], result.per_pool[p]);
    }
  }
  os << table.ToString();
  return os.str();
}

std::string RenderLatencyStagesCsv(const LatencyStageResult& result) {
  std::ostringstream os;
  os << "kind,bucket,committed,n,submit_admit_p50_s,submit_admit_p90_s,"
        "admit_include_p50_s,admit_include_p90_s,include_commit_p50_s,"
        "include_commit_p90_s\n";
  RenderCsvRow(os, "overall", "overall", result.overall);
  for (std::size_t r = 0; r < net::kRegionCount; ++r) {
    if (result.per_region[r].committed == 0) continue;
    RenderCsvRow(os, "region",
                 net::RegionShortName(static_cast<net::Region>(r)),
                 result.per_region[r]);
  }
  for (std::size_t p = 0; p < result.per_pool.size(); ++p) {
    if (result.per_pool[p].committed == 0) continue;
    RenderCsvRow(os, "pool", result.pool_names[p], result.per_pool[p]);
  }
  return os.str();
}

}  // namespace ethsim::analysis
