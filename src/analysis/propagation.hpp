// Fig 1 + §III-A1: block and transaction propagation delays measured exactly
// as Decker & Wattenhofer adapted by the paper — the delay of a block at a
// vantage is its arrival time there minus the *earliest* arrival at any
// vantage. Only vantage timestamps are used (never simulator truth), so NTP
// skew contaminates the samples just as it did in the real study.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/inputs.hpp"
#include "common/stats.hpp"

namespace ethsim::analysis {

struct PropagationResult {
  SampleSet delays_ms;       // all non-first-vantage deltas, in milliseconds
  std::size_t items = 0;     // blocks (or txs) observed by >= 2 vantages
  double median_ms = 0;
  double mean_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

// Block propagation delays across the vantage set (Fig 1).
PropagationResult BlockPropagationDelays(const ObserverSet& observers);

// Transaction propagation delays, computed identically (§III-A1 reports
// these are not geographically distinguishable).
PropagationResult TxPropagationDelays(const ObserverSet& observers);

// Per-vantage median delta, used to argue the geographic (in)difference:
// one entry per observer, NaN-free (observers with no samples report 0).
struct VantageDelay {
  std::string name;
  double median_ms = 0;
  std::size_t samples = 0;
};
std::vector<VantageDelay> PerVantageBlockDelay(const ObserverSet& observers);
std::vector<VantageDelay> PerVantageTxDelay(const ObserverSet& observers);

}  // namespace ethsim::analysis
