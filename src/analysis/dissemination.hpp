// Dissemination analysis over the provenance edge log (obs/provenance_dag):
// reconstructs per-block dissemination trees (Fig. 1's propagation waves as
// actual trees), hop-depth CDFs, push-vs-announce first-delivery shares, and
// byte-exact redundancy / wasted-bandwidth attribution.
//
// This is the Ethna/DEthna analysis layer: from per-message relay traces we
// derive how the gossip mechanism actually moved each block through the
// geo-distributed overlay — which path reached the APAC observer, how many
// redundant copies burned bandwidth, and (à la Ethna §IV) each node's
// effective degree from its reception counts.
//
// Reconciliation contract: RedundancyFromProvenance over the observer's host
// equals analysis/redundancy's BlockReceptionRedundancy (Table 2) *bitwise*
// on the same run. Both count the same delivered messages with the same
// settle-window exclusion; the observer's clock offset shifts first/last
// arrival equally, so the exclusion predicate and every count agree exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/redundancy.hpp"
#include "common/time.hpp"
#include "obs/provenance_dag.hpp"

namespace ethsim::analysis {

// One host's entry in a reconstructed dissemination tree: how (and from
// whom) the host first learned of the block.
struct TreeNode {
  std::uint32_t host = 0;
  std::uint32_t parent_host = 0;  // sender of the first-delivery edge
  std::int64_t first_arrival_us = 0;
  std::uint16_t hop = 0;
  obs::EdgeKind via = obs::EdgeKind::kOrigin;  // first-delivery message kind
};

// The complete dissemination record of one block.
struct DisseminationTree {
  std::uint64_t object = 0;  // hash prefix (prefix_u64)
  std::uint64_t number = 0;  // block number (0 when unknown)
  // Reached hosts ordered by (first_arrival_us, host). nodes[0] is the
  // origin when the log contains the mint record.
  std::vector<TreeNode> nodes;
  // Delivered block-message edges beyond each host's first (the copies
  // gossip redundancy paid for), and their wire bytes.
  std::uint64_t redundant_edges = 0;
  std::uint64_t wasted_bytes = 0;
  // All delivered block-message bytes for this object (origin excluded).
  std::uint64_t total_bytes = 0;
  // Edges for this object that the network censored (drop != kNone).
  std::uint64_t dropped_edges = 0;
};

// Block objects (hash prefixes) present in the log, ordered by first
// appearance. Tx-batch edges (object == 0) are excluded.
std::vector<std::uint64_t> BlockObjects(const obs::ProvenanceLog& log);

// Reconstructs the dissemination tree of one block.
DisseminationTree BuildDisseminationTree(const obs::ProvenanceLog& log,
                                         std::uint64_t object);

// First-delivery hop depths over every (block, host) pair — the CDF behind
// "how deep does the gossip tree go before everyone has the block?".
struct HopDepthDistribution {
  std::vector<std::uint16_t> depths;  // sorted ascending
  double mean = 0;
  std::uint16_t max = 0;

  // Exact empirical quantile (nearest-rank on the sorted sample).
  std::uint16_t Quantile(double q) const;
};
HopDepthDistribution HopDepths(const obs::ProvenanceLog& log);

// Of all (block, host) first deliveries: how many arrived as an unsolicited
// full-block push, as a hash announcement, or as a fetched body that beat
// both. The paper's push-vs-announce mechanism split.
struct FirstDeliveryShares {
  std::uint64_t push = 0;      // kNewBlock first
  std::uint64_t announce = 0;  // kAnnouncement first
  std::uint64_t fetched = 0;   // kBlockResponse first
  std::uint64_t total() const { return push + announce + fetched; }
};
FirstDeliveryShares FirstDeliveryBreakdown(const obs::ProvenanceLog& log);

// Table 2 reconciliation: per-host announcement / whole-block reception
// redundancy with the same settle-window exclusion as
// BlockReceptionRedundancy. Bitwise-equal to the observer-log computation
// for the observer's host.
RedundancyResult RedundancyFromProvenance(const obs::ProvenanceLog& log,
                                          std::uint32_t host,
                                          Duration settle = Duration::Seconds(60));

// Redundancy attribution per host, sorted by wasted bytes descending — the
// `ethsim_inspect --redundancy --top N` table.
struct HostWaste {
  std::uint32_t host = 0;
  std::uint64_t receptions = 0;        // delivered block-message edges
  std::uint64_t redundant_receptions = 0;  // beyond first per block
  std::uint64_t wasted_bytes = 0;      // bytes of the redundant edges
};
std::vector<HostWaste> WasteByHost(const obs::ProvenanceLog& log);

// Ethna-style degree inference: in push+announce gossip every neighbor sends
// exactly one block message per (settled) block, so a node's receptions per
// block estimate its degree. Blocks first seen within `settle` of the log
// cutoff are excluded (copies still in flight would bias the estimate low).
struct DegreeEstimate {
  std::uint32_t host = 0;
  double estimated_degree = 0;  // mean receptions per settled block
  std::uint64_t blocks = 0;     // settled blocks the host participated in
};
std::vector<DegreeEstimate> InferDegrees(
    const obs::ProvenanceLog& log, Duration settle = Duration::Seconds(60));

// Machine-readable renderings of the --redundancy and --hops reports, shared
// by `ethsim_inspect --json` and its unit tests. One JSON object, newline
// terminated; `top` bounds the per_host rows while the totals always cover
// every host.
std::string RenderRedundancyJson(const obs::ProvenanceLog& log,
                                 std::size_t top);
std::string RenderHopsJson(const obs::ProvenanceLog& log);

}  // namespace ethsim::analysis
