#include "analysis/geo.hpp"

#include <algorithm>
#include <cassert>

namespace ethsim::analysis {

namespace {

// For one block hash: (winner index, margin to runner-up). Returns false if
// fewer than one observer saw it.
bool WinnerFor(const ObserverSet& observers, const Hash32& hash,
               std::size_t& winner, Duration& margin) {
  bool any = false;
  TimePoint best, second;
  for (std::size_t i = 0; i < observers.size(); ++i) {
    const auto& arrivals = observers[i]->first_block_arrival();
    const auto it = arrivals.find(hash);
    if (it == arrivals.end()) continue;
    if (!any || it->second < best) {
      if (any) second = best;
      best = it->second;
      winner = i;
      if (!any) second = TimePoint::FromMicros(INT64_MAX);
      any = true;
    } else if (it->second < second) {
      second = it->second;
    }
  }
  if (!any) return false;
  margin = second == TimePoint::FromMicros(INT64_MAX)
               ? Duration::Hours(999)  // only one vantage saw it
               : second - best;
  return true;
}

}  // namespace

GeoResult FirstObservationShares(const ObserverSet& observers,
                                 Duration ntp_error) {
  GeoResult result;
  result.shares.resize(observers.size());
  for (std::size_t i = 0; i < observers.size(); ++i)
    result.shares[i].vantage = observers[i]->name();

  // Union of all observed block hashes.
  std::unordered_map<Hash32, char> seen;
  for (const auto* obs : observers)
    for (const auto& [hash, when] : obs->first_block_arrival())
      seen.emplace(hash, 0);

  std::vector<std::size_t> uncertain(observers.size(), 0);
  for (const auto& [hash, unused] : seen) {
    std::size_t winner = 0;
    Duration margin;
    if (!WinnerFor(observers, hash, winner, margin)) continue;
    ++result.total_blocks;
    ++result.shares[winner].wins;
    // Two skewed clocks can each be off by up to the NTP envelope.
    if (margin < ntp_error * 2.0) ++uncertain[winner];
  }

  for (std::size_t i = 0; i < observers.size(); ++i) {
    if (result.total_blocks == 0) break;
    result.shares[i].share = static_cast<double>(result.shares[i].wins) /
                             static_cast<double>(result.total_blocks);
    result.shares[i].uncertain_share =
        static_cast<double>(uncertain[i]) /
        static_cast<double>(result.total_blocks);
  }
  return result;
}

PoolGeoResult PoolFirstObservation(const StudyInputs& inputs) {
  assert(inputs.minted != nullptr && inputs.pools != nullptr);
  PoolGeoResult result;
  for (const auto* obs : inputs.observers)
    result.vantages.push_back(obs->name());

  const std::size_t pool_count = inputs.pools->size();
  std::vector<std::vector<std::size_t>> wins(
      pool_count, std::vector<std::size_t>(inputs.observers.size(), 0));
  std::vector<std::size_t> totals(pool_count, 0);

  for (const auto& record : *inputs.minted) {
    std::size_t winner = 0;
    Duration margin;
    if (!WinnerFor(inputs.observers, record.block->hash, winner, margin))
      continue;
    ++totals[record.pool_index];
    ++wins[record.pool_index][winner];
  }

  for (std::size_t p = 0; p < pool_count; ++p) {
    PoolGeoRow row;
    row.pool = (*inputs.pools)[p].name;
    row.hashrate_share = (*inputs.pools)[p].hashrate_share;
    row.blocks = totals[p];
    row.vantage_shares.resize(inputs.observers.size(), 0.0);
    if (totals[p] > 0)
      for (std::size_t v = 0; v < inputs.observers.size(); ++v)
        row.vantage_shares[v] = static_cast<double>(wins[p][v]) /
                                static_cast<double>(totals[p]);
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace ethsim::analysis
