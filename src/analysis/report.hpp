// Paper-style rendering of every analysis result: each Render* function
// prints the measured numbers next to the values the paper reports, plus an
// ASCII rendition of the figure itself. Shared by the bench binaries and the
// examples.
#pragma once

#include <string>

#include "analysis/commit.hpp"
#include "analysis/empty_blocks.hpp"
#include "analysis/forks.hpp"
#include "analysis/geo.hpp"
#include "analysis/ordering.hpp"
#include "analysis/propagation.hpp"
#include "analysis/redundancy.hpp"
#include "analysis/security.hpp"
#include "analysis/sequences.hpp"

namespace ethsim::analysis {

// Fig 1 + the §III-A1 transaction claim.
std::string RenderFig1(const PropagationResult& blocks,
                       const PropagationResult& txs,
                       const std::vector<VantageDelay>& tx_per_vantage);

// Fig 2.
std::string RenderFig2(const GeoResult& geo);

// Fig 3.
std::string RenderFig3(const PoolGeoResult& result);

// Fig 4 (inclusion + 3/12/15/36 confirmations).
std::string RenderFig4(const CommitTimeResult& result);

// Fig 5 (in-order vs out-of-order commit delay).
std::string RenderFig5(const OrderingResult& result);

// Fig 6 (empty blocks per pool).
std::string RenderFig6(const EmptyBlockResult& result);

// Fig 7 (consecutive main blocks per pool) + the §III-D rarity analysis.
std::string RenderFig7(const SequenceResult& sequences);

// Table I (the vantage infrastructure; static).
std::string RenderTable1();

// Table II (redundant block receptions).
std::string RenderTable2(const RedundancyResult& result, std::size_t network_size);

// Table III (+ the one-miner-fork census of §III-C5).
std::string RenderTable3(const ForkCensus& census, const OneMinerForkCensus& omf,
                         std::size_t paper_scale_blocks = 216'671);

// §III-D security findings over an observed + sampled-history pair.
std::string RenderSecurity(const SequenceResult& observed,
                           const SequenceResult& history,
                           double inter_block_seconds);

}  // namespace ethsim::analysis
