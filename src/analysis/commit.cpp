#include "analysis/commit.hpp"

#include <algorithm>
#include <cassert>

namespace ethsim::analysis {

std::unordered_map<std::uint64_t, TimePoint> CanonicalBlockFirstSeen(
    const StudyInputs& inputs) {
  assert(inputs.reference != nullptr);
  std::unordered_map<std::uint64_t, TimePoint> first_seen;
  const auto chain_blocks = inputs.reference->CanonicalChain();
  for (const auto& block : chain_blocks) {
    TimePoint best;
    bool any = false;
    for (const auto* obs : inputs.observers) {
      const auto it = obs->first_block_arrival().find(block->hash);
      if (it == obs->first_block_arrival().end()) continue;
      if (!any || it->second < best) best = it->second;
      any = true;
    }
    if (any) first_seen.emplace(block->header.number, best);
  }
  return first_seen;
}

std::unordered_map<Hash32, TimePoint> TxFirstSeen(const ObserverSet& observers) {
  std::unordered_map<Hash32, TimePoint> first;
  for (const auto* obs : observers) {
    for (const auto& [hash, when] : obs->first_tx_arrival()) {
      auto [it, inserted] = first.try_emplace(hash, when);
      if (!inserted && when < it->second) it->second = when;
    }
  }
  return first;
}

CommitTimeResult TransactionCommitTimes(
    const StudyInputs& inputs, std::vector<std::uint64_t> confirmation_depths) {
  assert(inputs.reference != nullptr);
  CommitTimeResult result;
  result.depths = confirmation_depths;
  result.delays_s.resize(confirmation_depths.size());

  const auto block_seen = CanonicalBlockFirstSeen(inputs);
  const auto tx_seen = TxFirstSeen(inputs.observers);

  const std::uint64_t max_depth =
      confirmation_depths.empty()
          ? 0
          : *std::max_element(confirmation_depths.begin(),
                              confirmation_depths.end());

  for (const auto& block : inputs.reference->CanonicalChain()) {
    const std::uint64_t height = block->header.number;
    // Require observation coverage for every needed height.
    bool covered = true;
    for (const std::uint64_t depth : confirmation_depths)
      if (!block_seen.contains(height + depth)) covered = false;
    if (!covered || !block_seen.contains(height + max_depth)) continue;

    for (const auto& tx : block->transactions) {
      const auto seen_it = tx_seen.find(tx.hash);
      if (seen_it == tx_seen.end()) continue;  // vantages never saw it
      const TimePoint t0 = seen_it->second;
      ++result.committed_txs;
      for (std::size_t d = 0; d < confirmation_depths.size(); ++d) {
        const TimePoint done = block_seen.at(height + confirmation_depths[d]);
        const double delay_s = (done - t0).seconds();
        // Clock skew can produce tiny negatives for inclusion in the same
        // instant; clamp at zero like the paper's pipeline.
        result.delays_s[d].Add(std::max(0.0, delay_s));
      }
    }
  }
  return result;
}

}  // namespace ethsim::analysis
