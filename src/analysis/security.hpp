// §III-D: block-finality security math. Converts consecutive-run
// observations into the paper's claims — expected occurrences per month,
// once-in-N-years rarity, censorship windows, and the adequacy of the
// 12-block confirmation rule against pool-level adversaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/sequences.hpp"

namespace ethsim::analysis {

struct RunRarity {
  std::string pool;
  double share = 0;
  std::size_t run_length = 0;
  std::size_t observed = 0;      // runs of at least this length
  double expected = 0;           // p^k * N (the paper's model)
  double months_per_event = 0;   // 1/expected in month-sized windows
};

// Compares observed >=k runs against the p^k model for each pool, in a
// window of `blocks_per_month` main blocks (the paper's month = 201,086).
std::vector<RunRarity> RunRarityTable(const SequenceResult& sequences,
                                      std::size_t k,
                                      std::size_t blocks_per_month = 201'086);

// "Once in N years" for a run of length k at hashrate `share` (Ethermine's
// 14-run: ~1,000 years).
double YearsPerOccurrence(double share, std::size_t k,
                          double blocks_per_year = 201'086.0 * 12);

// Temporary-censorship windows: the longest observed run per pool converted
// to wall-clock seconds at the given inter-block time (paper: pools can
// censor for >2 minutes regularly, 3 minutes historically).
struct CensorshipWindow {
  std::string pool;
  std::size_t longest_run = 0;
  double seconds = 0;
};
std::vector<CensorshipWindow> CensorshipWindows(
    const SequenceResult& sequences, double inter_block_seconds = 13.3);

// Probability that a pool with `share` of hashrate produces k consecutive
// blocks starting at a given block (the naive finality-break model).
double RunProbability(double share, std::size_t k);

// Smallest confirmation depth k such that the strongest pool's p^k stays
// below `target_probability` over a month of blocks — i.e. what the
// 12-block rule *should* be, given pool concentration.
std::size_t RequiredConfirmations(double strongest_share,
                                  double target_probability,
                                  std::size_t blocks_per_month = 201'086);

}  // namespace ethsim::analysis
