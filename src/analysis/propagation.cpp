#include "analysis/propagation.hpp"

#include <algorithm>

namespace ethsim::analysis {

namespace {

// Collects, for every item hash, the first-arrival time at each observer.
// `arrivals(obs)` must return the observer's hash -> first-arrival map.
template <typename ArrivalsFn>
PropagationResult ComputeDelays(const ObserverSet& observers,
                                ArrivalsFn arrivals) {
  PropagationResult result;
  if (observers.empty()) return result;

  // Iterate hashes of the first observer's log joined against the others;
  // then also consider items the first observer missed by unioning all keys.
  std::unordered_map<Hash32, std::vector<TimePoint>> by_hash;
  for (const auto* obs : observers)
    for (const auto& [hash, when] : arrivals(*obs)) by_hash[hash].push_back(when);

  for (auto& [hash, times] : by_hash) {
    if (times.size() < 2) continue;
    ++result.items;
    const TimePoint first = *std::min_element(times.begin(), times.end());
    for (const TimePoint t : times) {
      if (t == first) continue;
      result.delays_ms.Add((t - first).millis());
    }
    // When several vantages tie for first only the remaining ones
    // contribute, matching the paper's definition.
  }

  if (!result.delays_ms.empty()) {
    result.median_ms = result.delays_ms.Median();
    result.mean_ms = result.delays_ms.mean();
    result.p95_ms = result.delays_ms.Quantile(0.95);
    result.p99_ms = result.delays_ms.Quantile(0.99);
  }
  return result;
}

template <typename ArrivalsFn>
std::vector<VantageDelay> ComputePerVantage(const ObserverSet& observers,
                                            ArrivalsFn arrivals) {
  // First-arrival per hash across all observers.
  std::unordered_map<Hash32, TimePoint> global_first;
  for (const auto* obs : observers) {
    for (const auto& [hash, when] : arrivals(*obs)) {
      auto [it, inserted] = global_first.try_emplace(hash, when);
      if (!inserted && when < it->second) it->second = when;
    }
  }

  std::vector<VantageDelay> out;
  for (const auto* obs : observers) {
    SampleSet deltas;
    for (const auto& [hash, when] : arrivals(*obs)) {
      const TimePoint first = global_first.at(hash);
      if (when > first) deltas.Add((when - first).millis());
    }
    out.push_back(VantageDelay{obs->name(),
                               deltas.empty() ? 0.0 : deltas.Median(),
                               deltas.count()});
  }
  return out;
}

const std::unordered_map<Hash32, TimePoint>& BlockArrivals(
    const measure::Observer& obs) {
  return obs.first_block_arrival();
}
const std::unordered_map<Hash32, TimePoint>& TxArrivals(
    const measure::Observer& obs) {
  return obs.first_tx_arrival();
}

}  // namespace

PropagationResult BlockPropagationDelays(const ObserverSet& observers) {
  return ComputeDelays(observers, BlockArrivals);
}

PropagationResult TxPropagationDelays(const ObserverSet& observers) {
  return ComputeDelays(observers, TxArrivals);
}

std::vector<VantageDelay> PerVantageBlockDelay(const ObserverSet& observers) {
  return ComputePerVantage(observers, BlockArrivals);
}

std::vector<VantageDelay> PerVantageTxDelay(const ObserverSet& observers) {
  return ComputePerVantage(observers, TxArrivals);
}

}  // namespace ethsim::analysis
