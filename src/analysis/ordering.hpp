// Fig 5 + §III-C2: out-of-order transaction receptions. A committed
// transaction is out-of-order at a vantage when some lower-nonce transaction
// from the same sender (that also committed) was first observed *later* than
// it — i.e. the higher nonce arrived first. The paper reports the OoO share
// of committed transactions (11.54% in 2019, up from 6.18% in 2017) and the
// commit-delay CDFs split by ordering class.
#pragma once

#include <cstdint>

#include "analysis/inputs.hpp"
#include "common/stats.hpp"

namespace ethsim::analysis {

struct OrderingResult {
  std::size_t committed_txs = 0;       // classified committed transactions
  std::size_t out_of_order = 0;        // OoO among them
  double out_of_order_share = 0;
  // 12-confirmation commit delay (seconds) split by class.
  SampleSet in_order_delay_s;
  SampleSet out_of_order_delay_s;
};

// `confirmations` is the commit rule applied to both classes (12 default).
OrderingResult TransactionOrdering(const StudyInputs& inputs,
                                   std::uint64_t confirmations = 12);

}  // namespace ethsim::analysis
