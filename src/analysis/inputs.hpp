// Shared input bundle for the analysis pipeline: the multi-vantage observer
// logs, the mint catalog (ground truth, standing in for Etherscan), the pool
// roster, and a converged node's final block tree. Every figure/table module
// consumes a subset of this.
#pragma once

#include <unordered_map>
#include <vector>

#include "chain/blocktree.hpp"
#include "measure/observer.hpp"
#include "miner/mining.hpp"
#include "miner/pool.hpp"

namespace ethsim::analysis {

using ObserverSet = std::vector<const measure::Observer*>;

struct StudyInputs {
  ObserverSet observers;
  const std::vector<miner::MintRecord>* minted = nullptr;
  const std::vector<miner::PoolSpec>* pools = nullptr;
  const chain::BlockTree* reference = nullptr;
};

// Convenience: pool lookup by coinbase address.
std::unordered_map<Address, std::size_t> CoinbaseIndex(
    const std::vector<miner::PoolSpec>& pools);

// Blocks per hash from the mint catalog.
std::unordered_map<Hash32, const miner::MintRecord*> MintIndex(
    const std::vector<miner::MintRecord>& minted);

}  // namespace ethsim::analysis
