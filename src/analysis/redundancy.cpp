#include "analysis/redundancy.hpp"

#include <cmath>

namespace ethsim::analysis {

namespace {

RedundancyStats StatsFrom(SampleSet& samples) {
  RedundancyStats stats;
  if (samples.empty()) return stats;
  stats.mean = samples.mean();
  stats.median = samples.Median();
  stats.top10 = samples.Quantile(0.90);
  stats.top1 = samples.Quantile(0.99);
  return stats;
}

}  // namespace

RedundancyResult BlockReceptionRedundancy(const measure::Observer& observer,
                                          Duration settle) {
  RedundancyResult result;

  struct Counts {
    std::uint32_t announcements = 0;
    std::uint32_t whole = 0;
    TimePoint first;
  };
  std::unordered_map<Hash32, Counts> per_block;
  TimePoint last;
  for (const auto& arrival : observer.block_arrivals()) {
    auto [it, inserted] = per_block.try_emplace(arrival.hash);
    if (inserted) it->second.first = arrival.local_time;
    if (arrival.kind == eth::MessageSink::BlockMsgKind::kAnnouncement) {
      ++it->second.announcements;
    } else {
      ++it->second.whole;
    }
    if (arrival.local_time > last) last = arrival.local_time;
  }

  SampleSet ann, whole, both;
  for (const auto& [hash, counts] : per_block) {
    if (counts.first + settle > last) continue;  // still settling at cutoff
    ++result.blocks;
    ann.Add(counts.announcements);
    whole.Add(counts.whole);
    both.Add(counts.announcements + counts.whole);
  }
  result.announcements = StatsFrom(ann);
  result.whole_blocks = StatsFrom(whole);
  result.combined = StatsFrom(both);
  return result;
}

double OptimalGossipReceptions(std::size_t network_size) {
  return std::log(static_cast<double>(network_size));
}

}  // namespace ethsim::analysis
