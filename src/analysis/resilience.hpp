// Resilience analysis: quantifies what an injected fault window (src/fault)
// did to the chain. A WindowSlice restricts the standard measurements — fork
// rate from the mint catalog, cross-vantage propagation delay from the
// observer logs — to blocks minted inside a time window; CompareResilience
// sets a faulted run's slice against the same window of a fault-free control
// run with the same seed, yielding the inflation factors the partition bench
// reports (fork-rate x, propagation-p95 x).
#pragma once

#include <string>

#include "analysis/inputs.hpp"
#include "common/time.hpp"

namespace ethsim::analysis {

// Measurements over blocks minted in [start, end).
struct WindowSlice {
  TimePoint start;
  TimePoint end;
  std::size_t blocks_minted = 0;    // mint-catalog entries in the window
  std::size_t canonical_blocks = 0; // of those, canonical at end of run
  std::size_t fork_blocks = 0;      // minted - canonical (lost to forks)
  double fork_rate = 0;             // fork_blocks / blocks_minted
  // Cross-vantage propagation delay of in-window blocks (same definition as
  // BlockPropagationDelays: arrival minus earliest vantage arrival).
  std::size_t delay_samples = 0;
  double delay_median_ms = 0;
  double delay_p95_ms = 0;
};

// Slices the study against one window. `inputs.minted` and
// `inputs.reference` must be set; observers may be empty (delay fields then
// stay zero).
WindowSlice SliceWindow(const StudyInputs& inputs, TimePoint start,
                        TimePoint end);

// A faulted run vs its fault-free control over the same window (same seed,
// same config apart from the fault plan).
struct ResilienceReport {
  WindowSlice faulted;
  WindowSlice control;
  // faulted / control ratios; 0 when the control denominator is zero.
  double fork_rate_inflation = 0;
  double delay_p95_inflation = 0;
};

ResilienceReport CompareResilience(const StudyInputs& faulted,
                                   const StudyInputs& control, TimePoint start,
                                   TimePoint end);

// Human-readable report block for bench output.
std::string RenderResilience(const ResilienceReport& report);

}  // namespace ethsim::analysis
