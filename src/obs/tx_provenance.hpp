// Transaction lifecycle provenance: a deterministic, env-gated
// (ETHSIM_TXPROV) flight recorder that captures every stage transition of a
// transaction's journey — submitted at a frontend (source, region, fee),
// first seen by a vantage node, pool admit/reject/replace-by-fee outcome at
// each host, selected into a block by a mining pool, included on the commit
// anchor's canonical chain, returned to the pool when a reorg orphans its
// block, and committed at each configured confirmation depth — as
// sim-timestamped stage records spilled into a columnar artifact
// (txprov.bin, magic "ETHTX1", mirroring ETHPROV1/ETHTS1).
//
// Where obs/provenance_dag answers "how did this BLOCK spread?", this
// recorder answers "where did this TRANSACTION's commit latency come from?"
// — the per-tx primitive behind the paper's Fig 4 end-to-end commit story
// and the DEthna-style marked-transaction tracing. analysis/latency_stages
// decomposes the record stream into submit→admit / admit→include /
// include→commit latencies per region and per pool; tools/ethsim_inspect
// answers ad-hoc --tx / --stages queries against the written artifact.
//
// Contract (same as the rest of src/obs): record-only. The recorder never
// draws from any Rng and never schedules events, so enabling it cannot
// change a run's results; with it disabled every hook costs one predicted
// branch on a null pointer.
//
// Roles. Stage records are scoped to keep the stream small and unambiguous:
//   * kSubmitted fires once per submission at the frontend the workload
//     generator picked (host = the frontend's host id).
//   * kFirstSeen fires only at *vantage* hosts (the measurement observers) —
//     MarkVantage selects them; other hosts' receptions are already covered
//     by the dissemination provenance.
//   * Pool outcomes fire at every host whose TxPool processed the tx (the
//     frontend admit is the earliest and anchors the queueing decomposition).
//   * kIncluded / kOrphanReturned / kCommitted fire only at the *anchor*
//     host (MarkAnchor; core::Experiment uses pool 0's primary gateway,
//     which is nodes_[0]) so the canonical-chain story is a single
//     consistent timeline rather than N racing ones.
//
// A runtime TxInvariantChecker rides the stream and verifies stage
// monotonicity (per-tx record times never go backwards), no inclusion of a
// never-admitted tx, no orphan-return without a live inclusion, and no
// commit before inclusion. Each violation increments a
// `txprov.violation{check=...}` counter and warns — or aborts when
// ETHSIM_TXPROV=strict.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace ethsim::obs {

class MetricsRegistry;
class Counter;

// Lifecycle stages. The `info`/`aux`/`number` columns are stage-specific;
// see each enumerator.
enum class TxStage : std::uint8_t {
  kSubmitted = 0,   // info=source index, aux=gas price, number=replacement k
  kFirstSeen,       // vantage host first reception
  kPoolAdmitted,    // info=TxPoolOutcome (pending/queued), aux=gas price
  kPoolRejected,    // info=TxPoolOutcome (known/stale/rejected), aux=gas price
  kPoolReplaced,    // info=TxPoolOutcome (replaced: this tx evicted a cheaper
                    // same-nonce predecessor), aux=gas price
  kSelected,        // info=pool index, aux=block hash prefix, number=height
  kIncluded,        // anchor canonical adoption; aux=block, number=height
  kOrphanReturned,  // anchor reorg retired the block; aux=block, number=height
  kCommitted,       // info=confirmation depth, aux=block, number=include height
};
inline constexpr std::size_t kTxStageCount = 9;
std::string_view TxStageName(TxStage stage);

// Mirrors chain::TxPool::AddOutcome value-for-value (static_assert at the
// hook site); kept separate so obs stays free of chain includes.
enum class TxPoolOutcome : std::uint8_t {
  kPending = 0,  // admitted to the executable set
  kQueued,       // admitted to the future-nonce queue
  kKnown,        // duplicate, dropped
  kStale,        // nonce already used on-chain, dropped
  kReplaced,     // admitted by evicting a cheaper same-(sender,nonce) tx
  kRejected,     // underpriced replacement / pool policy, dropped
};
inline constexpr std::size_t kTxPoolOutcomeCount = 6;
std::string_view TxPoolOutcomeName(TxPoolOutcome outcome);

// One stage record, AoS form. The log stores the same fields as columns.
struct TxStageRecord {
  std::int64_t t_us = 0;
  std::uint64_t tx = 0;    // hash prefix (prefix_u64)
  std::uint32_t host = 0;  // acting host id
  TxStage stage = TxStage::kSubmitted;
  std::uint16_t info = 0;
  std::uint64_t aux = 0;
  std::uint64_t number = 0;
};

// The complete stage log of one run in columnar (struct-of-arrays) form, in
// recording order (the deterministic event order of the run; per-tx times
// are monotone, the global time column is not — legacy burst submissions are
// recorded at scheduling time with their future submit timestamp). This is
// both the in-memory store of the recorder and the deserialized form of the
// txprov.bin artifact.
struct TxProvLog {
  std::vector<std::int64_t> t_us;
  std::vector<std::uint64_t> tx;
  std::vector<std::uint32_t> host;
  std::vector<std::uint8_t> stage;
  std::vector<std::uint16_t> info;
  std::vector<std::uint64_t> aux;
  std::vector<std::uint64_t> number;

  // Host id -> region index (net::Region); 0xff = unknown.
  std::vector<std::uint8_t> host_region;
  // Confirmation depths the recorder swept (kCommitted's info domain).
  std::vector<std::uint64_t> depths;

  std::int64_t end_us = INT64_MAX;

  std::size_t size() const { return t_us.size(); }
  bool empty() const { return t_us.empty(); }
  void Append(const TxStageRecord& record);

  // Compact columnar artifact IO (txprov.bin, magic "ETHTX1", little-endian
  // fixed-width columns; see WriteBinary for the layout). Both return false
  // and fill `error` (when non-null) on failure.
  bool WriteBinary(const std::string& path, std::string* error = nullptr) const;
  static bool ReadBinary(const std::string& path, TxProvLog* out,
                         std::string* error = nullptr);
};

// The invariants checked at runtime on the stage stream.
enum class TxInvariant : std::uint8_t {
  kNonMonotoneStage = 0,        // record earlier than a prior record (per tx)
  kIncludeWithoutAdmit,         // canonical inclusion of a never-admitted tx
  kOrphanReturnWithoutInclude,  // orphan-return with no live inclusion
  kCommitBeforeInclude,         // depth commit while not included
};
inline constexpr std::size_t kTxInvariantCount = 4;
std::string_view TxInvariantName(TxInvariant check);

// Policy + counters for the stream invariants. The recorder feeds it
// pre-digested facts (is this record's time monotone? was the tx ever
// admitted?), so the checker holds no per-tx state of its own and can be
// unit-tested by direct calls. `fatal` escalates every violation to abort
// (ETHSIM_TXPROV=strict).
class TxInvariantChecker {
 public:
  explicit TxInvariantChecker(bool fatal);

  // Wires txprov.violation{check=...} counters (eagerly, one per check, so
  // the metrics stream shape is a function of config alone).
  void AttachMetrics(MetricsRegistry* metrics);

  // Fact hooks (called by the recorder).
  void OnStage(TxStage stage, std::uint64_t tx, std::int64_t t_us,
               std::int64_t last_t_us);
  void OnInclude(std::uint64_t tx, bool ever_admitted);
  void OnOrphanReturn(std::uint64_t tx, bool currently_included);
  void OnCommit(std::uint64_t tx, bool currently_included);

  std::uint64_t total() const { return total_; }
  const std::array<std::uint64_t, kTxInvariantCount>& by_check() const {
    return by_check_;
  }

  // Test hook: replaces the default handler (LogWarn, abort when fatal).
  using Handler = std::function<void(TxInvariant, const std::string&)>;
  void set_handler(Handler handler) { handler_ = std::move(handler); }

 private:
  void Violate(TxInvariant check, std::string detail);

  bool fatal_;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kTxInvariantCount> by_check_{};
  std::array<Counter*, kTxInvariantCount> counters_{};
  Handler handler_;
};

struct TxProvConfig {
  // Abort (after logging) on the first invariant violation.
  bool fatal_invariants = false;
  // Confirmation depths swept by the anchor commit pass. Must match the
  // TransactionCommitTimes / AnalyzeDemand depths the analysis reconciles
  // against.
  std::vector<std::uint64_t> confirmation_depths = {0, 3, 12, 15, 36};
};

class TxProvRecorder {
 public:
  explicit TxProvRecorder(TxProvConfig config);
  TxProvRecorder(const TxProvRecorder&) = delete;
  TxProvRecorder& operator=(const TxProvRecorder&) = delete;

  // Wires txprov.record{stage=...} + violation counters. Optional.
  void AttachMetrics(MetricsRegistry* metrics);

  // Declares a host and its region (net::Region index). Called from
  // EthNode::AttachTelemetry; hosts appearing in records without
  // registration get region 0xff in the artifact host table.
  void RegisterHost(std::uint32_t host, std::uint8_t region);
  // Role scoping (see file comment). core::Experiment marks the measurement
  // vantages and the commit anchor after building the overlay.
  void MarkVantage(std::uint32_t host);
  void MarkAnchor(std::uint32_t host);
  bool IsAnchor(std::uint32_t host) const {
    return has_anchor_ && host == anchor_host_;
  }

  // --- producer hooks (record-only; see header comment for scoping) -------
  void RecordSubmitted(const Hash32& hash, std::int64_t t_us,
                       std::uint32_t frontend_host, std::uint16_t source,
                       std::uint64_t gas_price, std::uint16_t replacement);
  // No-op unless `host` is a marked vantage (node-level dedupe makes this
  // the host's first reception).
  void RecordFirstSeen(std::uint32_t host, const Hash32& hash,
                       std::int64_t t_us);
  void RecordPoolOutcome(std::uint32_t host, const Hash32& hash,
                         std::int64_t t_us, TxPoolOutcome outcome,
                         std::uint64_t gas_price);
  void RecordSelected(std::uint32_t host, const Hash32& hash,
                      std::int64_t t_us, std::uint16_t pool,
                      const Hash32& block, std::uint64_t height);
  // No-ops unless `host` is the marked anchor.
  void RecordIncluded(std::uint32_t host, const Hash32& hash,
                      std::int64_t t_us, const Hash32& block,
                      std::uint64_t height);
  void RecordOrphanReturned(std::uint32_t host, const Hash32& hash,
                            std::int64_t t_us, const Hash32& block,
                            std::uint64_t height);
  // Sweeps the pending-commit buckets up to the anchor's new head height,
  // emitting kCommitted once per (tx, depth) — sticky across reorgs, so a
  // re-included tx never double-commits a depth.
  void AdvanceHead(std::uint32_t host, std::uint64_t head_number,
                   std::int64_t t_us);

  // Run cutoff for the artifact.
  void SetEndTime(std::int64_t end_us) { end_us_ = end_us; }

  // Stamps the cutoff and returns the finished log. Records are already in
  // deterministic event order (single append stream — no staging rings, no
  // sort). Idempotent; recording after Finish is a programming error.
  const TxProvLog& Finish();

  // Finish() + WriteBinary(dir + "/txprov.bin").
  bool WriteArtifact(const std::string& dir, std::string* error = nullptr);

  std::uint64_t records_recorded() const { return log_.size(); }
  std::uint64_t violations() const { return checker_.total(); }
  TxInvariantChecker& checker() { return checker_; }
  const TxInvariantChecker& checker() const { return checker_; }
  const std::vector<std::uint64_t>& confirmation_depths() const {
    return config_.confirmation_depths;
  }

 private:
  struct TxState {
    std::int64_t last_t_us = INT64_MIN;  // monotonicity watermark
    // Latest canonical inclusion; the depth sweep anchors to it. The sim can
    // include one tx in several canonical blocks (independent pools select
    // it around a partition heal), so liveness is a count: each inclusion
    // increments, each orphan-return decrements, and the tx is live while
    // the count is positive.
    std::uint64_t include_height = 0;
    std::uint64_t include_block = 0;   // block hash prefix
    std::uint32_t include_count = 0;   // live canonical inclusions
    std::uint32_t committed_mask = 0;  // bit i: depth[i] already committed
    bool admitted = false;             // ever pool-admitted at any host
  };
  struct PendingCommit {
    std::uint64_t tx = 0;
    std::uint64_t include_height = 0;  // stale when it no longer matches
    std::uint32_t depth_index = 0;
  };

  TxState& State(std::uint64_t tx) { return txs_[tx]; }
  void Append(TxStage stage, std::uint64_t tx, std::int64_t t_us,
              std::uint32_t host, std::uint16_t info, std::uint64_t aux,
              std::uint64_t number);

  TxProvConfig config_;
  TxInvariantChecker checker_;

  TxProvLog log_;
  std::unordered_map<std::uint64_t, TxState> txs_;
  // Commit height -> entries waiting for the anchor head to reach it.
  // Ordered so AdvanceHead pops buckets in deterministic height order.
  std::map<std::uint64_t, std::vector<PendingCommit>> commit_queue_;

  std::vector<bool> vantage_;
  std::uint32_t anchor_host_ = 0;
  bool has_anchor_ = false;
  bool finished_ = false;
  std::int64_t end_us_ = INT64_MAX;

  std::array<Counter*, kTxStageCount> stage_count_{};
};

}  // namespace ethsim::obs
