// Implementation of the dissemination-provenance recorder. See the header
// for the recording protocol; the notes here cover the two subtle pieces:
//
// First-seen determinism. A receiver's first-seen record is updated at
// *schedule* time (FinalizeScheduled) with min-arrival-wins semantics, not at
// ingress. That is safe to read at relay time because the Network FIFO-clamps
// each (from,to) pair and a node only relays an object after its own copy
// arrived: any edge staged by the node at sim-time T has T >= its first-seen
// arrival, and no later schedule can lower a minimum that already admitted an
// arrival <= T. So hop depths are a pure function of the event stream.
//
// Late drop attribution. Network::Send finalizes an edge as scheduled before
// anyone can know the receiver will be crashed at arrival time. The receiving
// node's ingress hook (ResolveDelivery) pops the per-pair FIFO and, when the
// node is offline, re-attributes that seq as an `offline` drop; Finish()
// patches the column after restoring global order. Edges still pending at
// Finish were in flight at cutoff and stay kNone with arrival > end_us.
#include "obs/provenance_dag.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <utility>

#include "obs/diag.hpp"
#include "obs/metrics.hpp"

namespace ethsim::obs {

namespace {

constexpr char kMagic[8] = {'E', 'T', 'H', 'P', 'R', 'O', 'V', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint8_t kUnknownRegion = 0xff;

// How many individual violations get a log line before we go quiet (the
// counters keep the full tally either way).
constexpr std::uint64_t kMaxLoggedViolations = 16;

std::uint64_t PairKey(std::uint32_t from, std::uint32_t to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

template <typename T>
void WriteColumn(std::ofstream& out, const std::vector<T>& column) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(column.data()),
            static_cast<std::streamsize>(column.size() * sizeof(T)));
}

template <typename T>
bool ReadColumn(std::ifstream& in, std::vector<T>& column, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  column.resize(count);
  in.read(reinterpret_cast<char*>(column.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return in.good() || (count == 0 && !in.bad());
}

template <typename T>
void WriteScalar(std::ofstream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadScalar(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

std::string_view EdgeKindName(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kOrigin:
      return "origin";
    case EdgeKind::kNewBlock:
      return "new_block";
    case EdgeKind::kAnnouncement:
      return "announcement";
    case EdgeKind::kGetBlock:
      return "get_block";
    case EdgeKind::kBlockResponse:
      return "block_response";
    case EdgeKind::kTransactions:
      return "transactions";
  }
  return "unknown";
}

std::string_view EdgeDropName(EdgeDrop drop) {
  switch (drop) {
    case EdgeDrop::kNone:
      return "none";
    case EdgeDrop::kRandomLoss:
      return "random_loss";
    case EdgeDrop::kPartitioned:
      return "partitioned";
    case EdgeDrop::kDegraded:
      return "degraded";
    case EdgeDrop::kOffline:
      return "offline";
  }
  return "unknown";
}

std::string_view InvariantCheckName(InvariantCheck check) {
  switch (check) {
    case InvariantCheck::kDuplicateFirstSeen:
      return "duplicate_first_seen";
    case InvariantCheck::kRelayWithoutReceive:
      return "relay_without_receive";
    case InvariantCheck::kFetchWithoutAnnounce:
      return "fetch_without_announce";
    case InvariantCheck::kDeliveryWhileOffline:
      return "delivery_while_offline";
    case InvariantCheck::kNonMonotoneHop:
      return "non_monotone_hop";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ProvenanceLog

void ProvenanceLog::Append(const EdgeRecord& record) {
  send_us.push_back(record.send_us);
  arrival_us.push_back(record.arrival_us);
  from.push_back(record.from);
  to.push_back(record.to);
  object.push_back(record.object);
  parent.push_back(record.parent);
  number.push_back(record.number);
  bytes.push_back(record.bytes);
  hop.push_back(record.hop);
  kind.push_back(static_cast<std::uint8_t>(record.kind));
  drop.push_back(static_cast<std::uint8_t>(record.drop));
}

// Layout (all little-endian, no padding):
//   char     magic[8]        "ETHPROV1"
//   u32      version         1
//   u32      host_count
//   u64      edge_count
//   i64      end_us
//   u8       host_region[host_count]
//   i64      send_us[edge_count]
//   i64      arrival_us[edge_count]
//   u32      from[edge_count]
//   u32      to[edge_count]
//   u64      object[edge_count]
//   u64      parent[edge_count]
//   u64      number[edge_count]
//   u32      bytes[edge_count]
//   u16      hop[edge_count]
//   u8       kind[edge_count]
//   u8       drop[edge_count]
bool ProvenanceLog::WriteBinary(const std::string& path,
                                std::string* error) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  WriteScalar(out, kFormatVersion);
  WriteScalar(out, static_cast<std::uint32_t>(host_region.size()));
  WriteScalar(out, static_cast<std::uint64_t>(size()));
  WriteScalar(out, end_us);
  WriteColumn(out, host_region);
  WriteColumn(out, send_us);
  WriteColumn(out, arrival_us);
  WriteColumn(out, from);
  WriteColumn(out, to);
  WriteColumn(out, object);
  WriteColumn(out, parent);
  WriteColumn(out, number);
  WriteColumn(out, bytes);
  WriteColumn(out, hop);
  WriteColumn(out, kind);
  WriteColumn(out, drop);
  out.flush();
  if (!out.good()) return Fail(error, "short write to " + path);
  return true;
}

bool ProvenanceLog::ReadBinary(const std::string& path, ProvenanceLog* out,
                               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, path + ": bad magic (not a provenance.bin artifact)");
  }
  std::uint32_t version = 0;
  std::uint32_t host_count = 0;
  std::uint64_t edge_count = 0;
  if (!ReadScalar(in, &version)) return Fail(error, path + ": truncated header");
  if (version != kFormatVersion) {
    return Fail(error, path + ": unsupported format version " +
                           std::to_string(version));
  }
  if (!ReadScalar(in, &host_count) || !ReadScalar(in, &edge_count) ||
      !ReadScalar(in, &out->end_us)) {
    return Fail(error, path + ": truncated header");
  }
  const auto count = static_cast<std::size_t>(edge_count);
  if (!ReadColumn(in, out->host_region, host_count) ||
      !ReadColumn(in, out->send_us, count) ||
      !ReadColumn(in, out->arrival_us, count) ||
      !ReadColumn(in, out->from, count) || !ReadColumn(in, out->to, count) ||
      !ReadColumn(in, out->object, count) ||
      !ReadColumn(in, out->parent, count) ||
      !ReadColumn(in, out->number, count) ||
      !ReadColumn(in, out->bytes, count) || !ReadColumn(in, out->hop, count) ||
      !ReadColumn(in, out->kind, count) || !ReadColumn(in, out->drop, count)) {
    return Fail(error, path + ": truncated column data");
  }
  return true;
}

// ---------------------------------------------------------------------------
// InvariantChecker

InvariantChecker::InvariantChecker(bool fatal) : fatal_(fatal) {}

void InvariantChecker::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  for (std::size_t i = 0; i < kInvariantCheckCount; ++i) {
    const auto check = static_cast<InvariantCheck>(i);
    counters_[i] = metrics->GetCounter(LabeledName(
        "provenance.violation", {{"check", InvariantCheckName(check)}}));
  }
}

void InvariantChecker::Violate(InvariantCheck check, std::string detail) {
  ++total_;
  ++by_check_[static_cast<std::size_t>(check)];
  if (Counter* c = counters_[static_cast<std::size_t>(check)]) c->Add();
  if (handler_) {
    handler_(check, detail);
    return;
  }
  if (total_ <= kMaxLoggedViolations) {
    LogWarn("provenance", "invariant %s violated: %s",
            std::string(InvariantCheckName(check)).c_str(), detail.c_str());
    if (total_ == kMaxLoggedViolations) {
      LogWarn("provenance",
              "further invariant violations will be counted but not logged");
    }
  }
  if (fatal_) {
    LogError("provenance", "aborting on invariant violation (%s): %s",
             std::string(InvariantCheckName(check)).c_str(), detail.c_str());
    std::abort();
  }
}

void InvariantChecker::OnOrigin(std::uint32_t host, std::uint64_t object,
                                bool already_seen) {
  if (already_seen) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "host %u re-originated object %016" PRIx64, host, object);
    Violate(InvariantCheck::kDuplicateFirstSeen, buf);
  }
}

void InvariantChecker::OnBlockRelayStage(
    EdgeKind kind, std::uint32_t from, std::uint64_t object,
    bool sender_has_first_seen, std::int64_t send_us,
    std::int64_t sender_first_seen_arrival_us) {
  if (!sender_has_first_seen) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "host %u relayed (%s) object %016" PRIx64
                  " it never received",
                  from, std::string(EdgeKindName(kind)).c_str(), object);
    Violate(InvariantCheck::kRelayWithoutReceive, buf);
    return;
  }
  if (send_us < sender_first_seen_arrival_us) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "host %u relayed object %016" PRIx64 " at t=%" PRId64
                  "us before its own copy arrived (t=%" PRId64 "us)",
                  from, object, send_us, sender_first_seen_arrival_us);
    Violate(InvariantCheck::kNonMonotoneHop, buf);
  }
}

void InvariantChecker::OnFetchStage(std::uint32_t from, std::uint64_t object,
                                    bool heard, bool parent_known) {
  if (!heard && !parent_known) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "host %u fetched object %016" PRIx64
                  " without a prior announce or orphan-parent knowledge",
                  from, object);
    Violate(InvariantCheck::kFetchWithoutAnnounce, buf);
  }
}

void InvariantChecker::OnDelivery(std::uint32_t to, bool node_online,
                                  bool host_marked_down) {
  if (node_online && host_marked_down) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "delivery processed at host %u while the fault layer "
                  "has it marked down",
                  to);
    Violate(InvariantCheck::kDeliveryWhileOffline, buf);
  }
}

// ---------------------------------------------------------------------------
// ProvenanceRecorder

ProvenanceRecorder::ProvenanceRecorder(ProvenanceConfig config)
    : config_(config), checker_impl_(config.fatal_invariants) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
  checker_.checker = &checker_impl_;
}

void ProvenanceRecorder::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  for (std::size_t i = 0; i < kEdgeKindCount; ++i) {
    const auto kind = static_cast<EdgeKind>(i);
    edge_count_[i] = metrics->GetCounter(
        LabeledName("provenance.edge", {{"kind", EdgeKindName(kind)}}));
  }
  checker_impl_.AttachMetrics(metrics);
}

void ProvenanceRecorder::RegisterHost(std::uint32_t host, std::uint8_t region) {
  if (host >= log_.host_region.size()) {
    log_.host_region.resize(host + 1, kUnknownRegion);
  }
  log_.host_region[host] = region;
  if (host >= rings_.size()) rings_.resize(host + 1);
  if (host >= hosts_.size()) hosts_.resize(host + 1);
}

ProvenanceRecorder::HostState& ProvenanceRecorder::Host(std::uint32_t host) {
  if (host >= hosts_.size()) hosts_.resize(host + 1);
  return hosts_[host];
}

void ProvenanceRecorder::NoteFirstSeen(std::uint32_t host,
                                       std::uint64_t object,
                                       std::int64_t arrival_us,
                                       std::uint16_t depth) {
  auto& first = objects_[object].first_seen;
  auto [it, inserted] = first.try_emplace(host, FirstSeen{arrival_us, depth});
  if (!inserted && arrival_us < it->second.arrival_us) {
    it->second.arrival_us = arrival_us;
    it->second.depth = depth;
  }
}

bool ProvenanceRecorder::FirstSeenDepth(std::uint32_t host,
                                        std::uint64_t object,
                                        std::uint16_t* depth_out) const {
  auto obj = objects_.find(object);
  if (obj == objects_.end()) return false;
  auto it = obj->second.first_seen.find(host);
  if (it == obj->second.first_seen.end()) return false;
  if (depth_out != nullptr) *depth_out = it->second.depth;
  return true;
}

void ProvenanceRecorder::RecordOrigin(std::uint32_t host, const Hash32& hash,
                                      const Hash32& parent,
                                      std::uint64_t number,
                                      std::int64_t now_us) {
  const std::uint64_t object = hash.prefix_u64();
  auto& first = objects_[object].first_seen;
  const bool already_seen = first.count(host) != 0;
  checker_impl_.OnOrigin(host, object, already_seen);
  if (!already_seen) first.emplace(host, FirstSeen{now_us, 0});
  Host(host).known_parents.insert(parent.prefix_u64());

  EdgeRecord record;
  record.seq = next_seq_++;
  record.send_us = now_us;
  record.arrival_us = now_us;
  record.from = host;
  record.to = host;
  record.object = object;
  record.parent = parent.prefix_u64();
  record.number = number;
  record.bytes = 0;
  record.hop = 0;
  record.kind = EdgeKind::kOrigin;
  record.drop = EdgeDrop::kNone;
  AppendRecord(record);
  if (Counter* c = edge_count_[static_cast<std::size_t>(EdgeKind::kOrigin)]) {
    c->Add();
  }
}

void ProvenanceRecorder::StageBlockEdge(std::uint32_t from, std::uint32_t to,
                                        EdgeKind kind, const Hash32& hash,
                                        std::uint64_t number,
                                        const Hash32* parent,
                                        std::size_t bytes,
                                        std::int64_t now_us) {
  if (staged_active_) {
    // A previous stage was never finalized — the Network call it bracketed
    // did not happen (should not occur; keep counting so tests can assert).
    ++resync_warnings_;
    staged_active_ = false;
  }
  const std::uint64_t object = hash.prefix_u64();

  staged_ = EdgeRecord{};
  staged_.seq = next_seq_++;
  staged_.send_us = now_us;
  staged_.from = from;
  staged_.to = to;
  staged_.object = object;
  staged_.parent = parent != nullptr ? parent->prefix_u64() : 0;
  staged_.number = number;
  staged_.bytes = static_cast<std::uint32_t>(bytes);
  staged_.kind = kind;
  staged_.drop = EdgeDrop::kNone;

  // Hop depth: sender's first-seen depth + 1. Fetches ask for an object the
  // sender does *not* have yet — their hop is the depth the request leaves
  // from, not a relay depth, so they also use sender-depth + 1 relative to
  // the announce that triggered them (the sender's first-seen record for the
  // announced hash, when present).
  auto obj = objects_.find(object);
  const bool sender_seen =
      obj != objects_.end() && obj->second.first_seen.count(from) != 0;
  std::int64_t seen_arrival = 0;
  std::uint16_t seen_depth = 0;
  if (sender_seen) {
    const FirstSeen& fs = obj->second.first_seen.at(from);
    seen_arrival = fs.arrival_us;
    seen_depth = fs.depth;
  }
  staged_.hop = sender_seen ? static_cast<std::uint16_t>(seen_depth + 1) : 1;

  if (kind == EdgeKind::kGetBlock) {
    const bool parent_known =
        Host(from).known_parents.count(object) != 0;
    checker_impl_.OnFetchStage(from, object, sender_seen, parent_known);
  } else {
    checker_impl_.OnBlockRelayStage(kind, from, object, sender_seen, now_us,
                                    seen_arrival);
  }
  staged_active_ = true;
}

void ProvenanceRecorder::StageTxEdge(std::uint32_t from, std::uint32_t to,
                                     std::size_t tx_count, std::size_t bytes,
                                     std::int64_t now_us) {
  if (staged_active_) {
    ++resync_warnings_;
    staged_active_ = false;
  }
  staged_ = EdgeRecord{};
  staged_.seq = next_seq_++;
  staged_.send_us = now_us;
  staged_.from = from;
  staged_.to = to;
  staged_.object = 0;
  staged_.parent = 0;
  staged_.number = tx_count;
  staged_.bytes = static_cast<std::uint32_t>(bytes);
  staged_.hop = 0;
  staged_.kind = EdgeKind::kTransactions;
  staged_.drop = EdgeDrop::kNone;
  staged_active_ = true;
}

void ProvenanceRecorder::CommitStaged(std::int64_t arrival_us, EdgeDrop drop) {
  staged_.arrival_us = arrival_us;
  staged_.drop = drop;
  staged_active_ = false;
  if (Counter* c = edge_count_[static_cast<std::size_t>(staged_.kind)]) {
    c->Add();
  }
  AppendRecord(staged_);
}

void ProvenanceRecorder::FinalizeScheduled(std::uint32_t from,
                                           std::uint32_t to,
                                           std::int64_t arrival_us) {
  if (!staged_active_ || staged_.from != from || staged_.to != to) {
    // Send without a stage: a message the eth layer does not instrument.
    ++resync_warnings_;
    staged_active_ = false;
    return;
  }
  // Receiver learns the object at (predicted) arrival — min-arrival wins.
  if (staged_.kind == EdgeKind::kNewBlock ||
      staged_.kind == EdgeKind::kAnnouncement ||
      staged_.kind == EdgeKind::kBlockResponse) {
    NoteFirstSeen(to, staged_.object, arrival_us, staged_.hop);
    if (staged_.kind != EdgeKind::kAnnouncement && staged_.parent != 0) {
      // Full block bodies teach the receiver the parent hash (orphan fetch
      // justification); announces carry only the hash itself.
      Host(to).known_parents.insert(staged_.parent);
    }
  }
  pending_[PairKey(from, to)].push_back(
      PendingDelivery{staged_.seq, staged_.kind});
  CommitStaged(arrival_us, EdgeDrop::kNone);
}

void ProvenanceRecorder::FinalizeDropped(std::uint32_t from, std::uint32_t to,
                                         EdgeDrop reason) {
  if (!staged_active_ || staged_.from != from || staged_.to != to) {
    ++resync_warnings_;
    staged_active_ = false;
    return;
  }
  CommitStaged(-1, reason);
}

void ProvenanceRecorder::ResolveDelivery(std::uint32_t from, std::uint32_t to,
                                         bool online, std::int64_t now_us) {
  auto it = pending_.find(PairKey(from, to));
  if (it == pending_.end() || it->second.empty()) {
    ++resync_warnings_;
    return;
  }
  const PendingDelivery delivery = it->second.front();
  it->second.pop_front();
  if (!online) {
    // The message reached a crashed node: re-attribute as an offline drop.
    late_drops_.emplace_back(delivery.seq, EdgeDrop::kOffline);
    return;
  }
  checker_impl_.OnDelivery(to, online, Host(to).marked_down);
  (void)now_us;
}

void ProvenanceRecorder::NoteHostOnline(std::uint32_t host, bool online) {
  Host(host).marked_down = !online;
}

void ProvenanceRecorder::AppendRecord(const EdgeRecord& record) {
  if (record.from >= rings_.size()) rings_.resize(record.from + 1);
  auto& ring = rings_[record.from];
  ring.push_back(record);
  if (ring.size() >= config_.ring_capacity) SpillRing(record.from);
}

void ProvenanceRecorder::SpillRing(std::uint32_t host) {
  auto& ring = rings_[host];
  for (const EdgeRecord& record : ring) {
    seqs_.push_back(record.seq);
    log_.Append(record);
  }
  ring.clear();
}

const ProvenanceLog& ProvenanceRecorder::Finish() {
  if (finished_) return log_;
  finished_ = true;
  for (std::uint32_t host = 0; host < rings_.size(); ++host) {
    if (!rings_[host].empty()) SpillRing(host);
  }
  // Restore global send order (seq is the Stage/RecordOrigin order, which is
  // the deterministic event order of the run).
  const std::size_t n = log_.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return seqs_[a] < seqs_[b];
  });

  // seq -> final row index for late-drop patching.
  std::unordered_map<std::uint64_t, std::size_t> row_of_seq;
  row_of_seq.reserve(n);

  ProvenanceLog sorted;
  sorted.host_region = std::move(log_.host_region);
  sorted.end_us = end_us_;
  sorted.send_us.reserve(n);
  sorted.arrival_us.reserve(n);
  sorted.from.reserve(n);
  sorted.to.reserve(n);
  sorted.object.reserve(n);
  sorted.parent.reserve(n);
  sorted.number.reserve(n);
  sorted.bytes.reserve(n);
  sorted.hop.reserve(n);
  sorted.kind.reserve(n);
  sorted.drop.reserve(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    const std::size_t i = order[rank];
    row_of_seq.emplace(seqs_[i], rank);
    sorted.send_us.push_back(log_.send_us[i]);
    sorted.arrival_us.push_back(log_.arrival_us[i]);
    sorted.from.push_back(log_.from[i]);
    sorted.to.push_back(log_.to[i]);
    sorted.object.push_back(log_.object[i]);
    sorted.parent.push_back(log_.parent[i]);
    sorted.number.push_back(log_.number[i]);
    sorted.bytes.push_back(log_.bytes[i]);
    sorted.hop.push_back(log_.hop[i]);
    sorted.kind.push_back(log_.kind[i]);
    sorted.drop.push_back(log_.drop[i]);
  }
  log_ = std::move(sorted);
  seqs_.clear();
  seqs_.shrink_to_fit();

  for (const auto& [seq, reason] : late_drops_) {
    auto it = row_of_seq.find(seq);
    if (it != row_of_seq.end()) {
      log_.drop[it->second] = static_cast<std::uint8_t>(reason);
      log_.arrival_us[it->second] = -1;
    }
  }
  late_drops_.clear();

  if (resync_warnings_ > 0) {
    LogWarn("provenance",
            "%" PRIu64 " stage/finalize/resolve resyncs during recording "
            "(uninstrumented sends?)",
            resync_warnings_);
  }
  return log_;
}

bool ProvenanceRecorder::WriteArtifact(const std::string& dir,
                                       std::string* error) {
  const ProvenanceLog& log = Finish();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = dir + ": " + ec.message();
    return false;
  }
  return log.WriteBinary(dir + "/provenance.bin", error);
}

}  // namespace ethsim::obs
