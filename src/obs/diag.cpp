#include "obs/diag.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ethsim::obs {

namespace {

LogLevel ParseLevel() {
  const char* env = std::getenv("ETHSIM_LOG");
  if (env == nullptr || env[0] == '\0') return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0 || std::strcmp(env, "0") == 0)
    return LogLevel::kError;
  if (std::strcmp(env, "info") == 0 || std::strcmp(env, "2") == 0)
    return LogLevel::kInfo;
  return LogLevel::kWarn;
}

void LogV(LogLevel level, const char* tag, const char* component,
          const char* fmt, std::va_list args) {
  if (static_cast<int>(level) > static_cast<int>(DiagLevel())) return;
  std::fprintf(stderr, "[ethsim:%s] %s: ", component, tag);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

LogLevel DiagLevel() {
  static const LogLevel level = ParseLevel();
  return level;
}

void LogError(const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  LogV(LogLevel::kError, "error", component, fmt, args);
  va_end(args);
}

void LogWarn(const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  LogV(LogLevel::kWarn, "warn", component, fmt, args);
  va_end(args);
}

void LogInfo(const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  LogV(LogLevel::kInfo, "info", component, fmt, args);
  va_end(args);
}

}  // namespace ethsim::obs
