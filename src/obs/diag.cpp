#include "obs/diag.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace ethsim::obs {

namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
  }
  return "?";
}

void LogV(LogLevel level, const char* component, const char* fmt,
          std::va_list args) {
  if (static_cast<int>(level) > static_cast<int>(DiagLevel())) return;
  std::fprintf(stderr, "[ethsim:%s] %s: ", component, LevelTag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

LogLevel ParseLogLevel(const char* value) {
  if (value == nullptr || value[0] == '\0') return LogLevel::kWarn;
  if (std::strcmp(value, "error") == 0 || std::strcmp(value, "0") == 0)
    return LogLevel::kError;
  if (std::strcmp(value, "info") == 0 || std::strcmp(value, "2") == 0)
    return LogLevel::kInfo;
  return LogLevel::kWarn;
}

LogLevel DiagLevel() {
  static const LogLevel level = ParseLogLevel(std::getenv("ETHSIM_LOG"));
  return level;
}

namespace {

void AppendFormattedV(std::string& line, const char* fmt, std::va_list args) {
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed > 0) {
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    line.append(buf.data(), static_cast<std::size_t>(needed));
  }
}

}  // namespace

std::string FormatDiagMessageV(LogLevel level, const char* component,
                               const char* fmt, std::va_list args) {
  std::string line = "[ethsim:";
  line += component;
  line += "] ";
  line += LevelTag(level);
  line += ": ";
  AppendFormattedV(line, fmt, args);
  return line;
}

std::string FormatDiagMessage(LogLevel level, const char* component,
                              const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::string line = FormatDiagMessageV(level, component, fmt, args);
  va_end(args);
  return line;
}

void LogError(const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  LogV(LogLevel::kError, component, fmt, args);
  va_end(args);
}

void LogWarn(const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  LogV(LogLevel::kWarn, component, fmt, args);
  va_end(args);
}

void LogInfo(const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  LogV(LogLevel::kInfo, component, fmt, args);
  va_end(args);
}

bool ProgressEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("ETHSIM_PROGRESS");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

void LogProgress(const char* component, const char* fmt, ...) {
  if (!ProgressEnabled()) return;
  // One line, one write: parallel sweep workers report through here, and a
  // single fwrite keeps their lines from interleaving mid-record.
  std::string line = "[ethsim:";
  line += component;
  line += "] progress: ";
  std::va_list args;
  va_start(args, fmt);
  AppendFormattedV(line, fmt, args);
  va_end(args);
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace ethsim::obs
