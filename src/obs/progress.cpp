#include "obs/progress.hpp"

#include <cstdlib>

#include "obs/diag.hpp"

namespace ethsim::obs {

ProgressConfig ProgressConfig::FromEnv() {
  ProgressConfig cfg;
  const char* env = std::getenv("ETHSIM_PROGRESS");
  if (env == nullptr || env[0] == '\0' || (env[0] == '0' && env[1] == '\0'))
    return cfg;
  cfg.enabled = true;
  char* end = nullptr;
  const double seconds = std::strtod(env, &end);
  if (end != env && *end == '\0' && seconds > 0) cfg.min_wall_interval_s = seconds;
  return cfg;
}

ProgressReporter::ProgressReporter(ProgressConfig config, std::string label,
                                   std::int64_t total_sim_us)
    : config_(config),
      label_(std::move(label)),
      total_sim_us_(total_sim_us),
      start_(std::chrono::steady_clock::now()),
      last_report_(start_) {}

void ProgressReporter::Report(std::int64_t sim_us, std::uint64_t events) {
  if (!config_.enabled) return;
  const auto now = std::chrono::steady_clock::now();
  const double since_last =
      std::chrono::duration<double>(now - last_report_).count();
  if (since_last < config_.min_wall_interval_s) return;
  last_report_ = now;
  Emit(sim_us, events, false);
}

void ProgressReporter::Finish(std::int64_t sim_us, std::uint64_t events) {
  if (!config_.enabled) return;
  Emit(sim_us, events, true);
}

void ProgressReporter::Emit(std::int64_t sim_us, std::uint64_t events,
                            bool final_line) {
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
  const double sim_s = static_cast<double>(sim_us) / 1e6;
  const double events_per_s =
      wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  const double sim_per_wall = wall_s > 0 ? sim_s / wall_s : 0.0;
  if (final_line) {
    LogProgress("run", "%s done: %.0f sim-s in %.1f wall-s (%.2g events/s, "
                "%.1fx real time)",
                label_.c_str(), sim_s, wall_s, events_per_s, sim_per_wall);
    return;
  }
  double pct = 0.0;
  double eta_s = 0.0;
  if (total_sim_us_ > 0 && sim_us > 0) {
    pct = 100.0 * static_cast<double>(sim_us) /
          static_cast<double>(total_sim_us_);
    const double remaining_sim_s =
        static_cast<double>(total_sim_us_ - sim_us) / 1e6;
    if (sim_per_wall > 0) eta_s = remaining_sim_s / sim_per_wall;
  }
  LogProgress("run", "%s %5.1f%%: sim-t %.0f s, %llu events (%.2g events/s, "
              "%.1fx real time), eta %.0f s",
              label_.c_str(), pct, sim_s,
              static_cast<unsigned long long>(events), events_per_s,
              sim_per_wall, eta_s);
}

}  // namespace ethsim::obs
