// Sim-clock-domain tracing: a fixed-capacity ring buffer of compact trace
// events serialized as Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing). Timestamps are *simulation* microseconds, so a trace is
// bit-for-bit reproducible for a given (config, seed); wall-clock data lives
// in the separate EngineProfiler stream and never mixes into a trace.
//
// Design constraints (see DESIGN.md "Telemetry"):
//   - Event names and kind strings are static `const char*` literals: no
//     allocation per emitted event, 64-byte POD records only.
//   - Ring storage overwrites the oldest events, so month-scale runs keep
//     the *tail* of the story bounded in memory; `dropped()` reports how many
//     events scrolled off.
//   - Category bitmask filtering so a capture can follow (say) only block
//     lifecycle events through a billion-event run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ethsim::obs {

// Trace categories double as bit positions in the tracer's category mask.
enum class TraceCategory : std::uint8_t {
  kBlock = 0,  // block lifecycle: heard / validate / import / head
  kTx,         // transaction relay
  kNet,        // message transit (Network::Send)
  kMine,       // PoW race: mint / release
  kSim,        // engine/experiment phases
  kFault,      // injected faults: crash/churn/partition/degradation windows
};
inline constexpr std::size_t kTraceCategoryCount = 6;
inline constexpr std::uint32_t kAllTraceCategories =
    (1u << kTraceCategoryCount) - 1;

std::string_view TraceCategoryName(TraceCategory cat);

// Parses a comma-separated category list ("block,net"); empty or "all"
// yields every category. Unknown names are ignored.
std::uint32_t ParseTraceCategories(std::string_view csv);

// One Chrome trace event. phase 'X' = complete (uses dur_us), 'i' = instant.
// pid/tid map to Perfetto's process/thread lanes: we use pid for the entity
// (node index, pool index, or source host) and tid for a sub-lane.
struct TraceEvent {
  const char* name = "";        // static string literal
  const char* arg_kind = nullptr;  // optional static string arg ("announcement")
  std::int64_t ts_us = 0;       // sim-clock timestamp
  std::int64_t dur_us = 0;      // span length for phase 'X'
  std::uint64_t arg_hash = 0;   // short block/tx identity (prefix_u64); 0=none
  std::uint64_t arg_num = 0;    // block number or scalar payload
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  TraceCategory cat = TraceCategory::kSim;
  char phase = 'i';
};

class Tracer {
 public:
  // `capacity` is clamped to at least 1.
  Tracer(std::uint32_t category_mask, std::size_t capacity);

  // Hot-path gate: callers check this before building a TraceEvent.
  bool enabled(TraceCategory cat) const {
    return (mask_ >> static_cast<unsigned>(cat)) & 1u;
  }
  std::uint32_t category_mask() const { return mask_; }

  // Records the event if its category is enabled (overwriting the oldest
  // record once the ring is full).
  void Emit(const TraceEvent& event);

  std::uint64_t emitted() const { return emitted_; }
  // Events that scrolled off the ring (emitted - retained).
  std::uint64_t dropped() const {
    return emitted_ - static_cast<std::uint64_t>(size());
  }
  std::size_t size() const { return full_ ? cap_ : head_; }
  std::size_t capacity() const { return cap_; }

  // Retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  // Chrome trace-event JSON object: {"traceEvents":[...], ...}. Perfetto and
  // chrome://tracing load this directly.
  void WriteChromeTrace(std::ostream& out) const;
  std::string ToChromeTraceJson() const;

 private:
  std::uint32_t mask_;
  std::size_t cap_;               // ring capacity (fixed at construction)
  std::vector<TraceEvent> ring_;  // reserved to cap_ up front
  std::size_t head_ = 0;          // next write position
  bool full_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace ethsim::obs
