// Live run-health reporting (ETHSIM_PROGRESS): periodic stderr lines with
// percent complete, events/sec, sim-time per wall-second and an ETA, so a
// month-scale run on a loaded box is observable without attaching a
// debugger. Strictly operator-facing and wall-clock paced: the reporter
// never touches simulation state, RNG streams, or the artifact set, so a
// progress-enabled run prints byte-identical *stdout* (and identical
// digests) to a silent one — only stderr gains lines.
//
//   ETHSIM_PROGRESS=1        report every ~2 wall-seconds (default cadence)
//   ETHSIM_PROGRESS=10       report every ~10 wall-seconds
//
// The driving loop lives in core::Experiment::Run (it chunks RunUntil only
// when reporting is on) and core::SeedSweepRunner (per-seed completion).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ethsim::obs {

struct ProgressConfig {
  bool enabled = false;
  double min_wall_interval_s = 2.0;

  // ETHSIM_PROGRESS unset/empty/"0" -> disabled; a positive number -> that
  // cadence in wall-seconds; any other truthy value -> default cadence.
  static ProgressConfig FromEnv();
};

class ProgressReporter {
 public:
  // `label` tags the lines ("run", "sweep seed 3", ...); `total_sim_us` is
  // the run's horizon for percent/ETA (0 disables both).
  ProgressReporter(ProgressConfig config, std::string label,
                   std::int64_t total_sim_us);

  // Called from the driving loop at sim-chunk boundaries. Prints at most
  // once per configured wall interval; cheap no-op otherwise.
  void Report(std::int64_t sim_us, std::uint64_t events);

  // Final summary line (always printed when enabled).
  void Finish(std::int64_t sim_us, std::uint64_t events);

 private:
  void Emit(std::int64_t sim_us, std::uint64_t events, bool final_line);

  ProgressConfig config_;
  std::string label_;
  std::int64_t total_sim_us_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_report_;
};

}  // namespace ethsim::obs
