// Deterministic state-sampling flight recorder (ETHSIM_SAMPLE). Where the
// metrics registry answers "how much happened over the whole run" and the
// provenance DAG answers "what happened to one message", the sampler answers
// "what did the engine look like at minute 37": event-queue depth, txpool
// backlog, orphan-buffer growth, in-flight traffic — each as a function of
// *sim time*, written to a columnar `timeseries.bin` (format ETHTS1).
//
// Split of responsibilities (dependency layering: obs never includes sim):
//   * StateSampler (here) owns the registered probes and the recorded
//     columns. It has no notion of scheduling.
//   * core::Experiment registers the probes and drives SampleNow() from a
//     self-rescheduling sim-clock event, so the cadence is part of the
//     deterministic event order of a sampled run.
//
// Contract, identical to the fault/provenance subsystems: with the gate off
// nothing is constructed and nothing is scheduled — goldens are
// byte-identical and zero extra RNG draws happen. With the gate on, probes
// READ state and never mutate it: head hash, head number and the determinism
// digest are unchanged (only events_executed grows, by the sampler's own
// ticks — the digest deliberately excludes it).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ethsim::obs {

// Columnar time-series artifact (format ETHTS1, mirrors ETHPROV1):
//   magic "ETHTS1\0\0" | u32 version | u32 series_count | u64 sample_count
//   | i64 interval_us
//   then per series: u32 name length + name bytes (no terminator)
//   then the shared time column: i64 t_us[sample_count]
//   then per series, in name-table order: i64 value[sample_count]
// Everything little-endian, fixed-width. All series share the one time
// column (samples are taken synchronously), which is what makes window
// slicing and cross-series alignment trivial downstream.
struct TimeSeriesLog {
  std::int64_t interval_us = 0;
  std::vector<std::string> names;
  std::vector<std::int64_t> t_us;
  // values[series][sample]; every inner vector has t_us.size() entries.
  std::vector<std::vector<std::int64_t>> values;

  std::size_t series_count() const { return names.size(); }
  std::size_t sample_count() const { return t_us.size(); }

  // Index of a named series, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t Find(std::string_view name) const;

  // Element-wise accumulation for cross-seed merging: requires an identical
  // series table and interval, and time columns where the shorter is a
  // prefix of the longer (ragged lengths pool over the shared prefix and
  // keep the longer tail). Returns false (untouched) on a shape mismatch.
  bool Accumulate(const TimeSeriesLog& other);

  bool WriteBinary(const std::string& path, std::string* error = nullptr) const;
  static bool ReadBinary(const std::string& path, TimeSeriesLog* out,
                         std::string* error = nullptr);
};

// Per-series peak + the sim time it was first reached; folded into the run
// manifest so saturation shows up without opening the binary artifact.
struct SeriesWatermark {
  std::string series;
  std::int64_t peak = 0;
  std::int64_t at_us = 0;
};

// Peak + first-peak time per series, in series order. Pure function of the
// columns, so ethsim_inspect recomputes the same values from timeseries.bin
// that the producing run folded into its manifest.
std::vector<SeriesWatermark> ComputeWatermarks(const TimeSeriesLog& log);

class StateSampler {
 public:
  // A probe reads one engine quantity; it must not mutate anything, draw
  // randomness, or schedule events. Mutable lambda *capture* state is fine
  // (delta probes keep their previous reading there).
  using Probe = std::function<std::int64_t()>;

  explicit StateSampler(std::int64_t interval_us);

  std::int64_t interval_us() const { return interval_us_; }

  // Registration happens once, before the first SampleNow, so the series
  // table (and therefore the artifact shape) is a function of config alone.
  void AddProbe(std::string name, Probe probe);

  // Runs every probe and appends one row at `now_us`. Called by the
  // experiment's sampling event (and once at t=0 for the baseline row).
  void SampleNow(std::int64_t now_us);

  std::size_t series_count() const { return log_.series_count(); }
  std::size_t sample_count() const { return log_.sample_count(); }
  const TimeSeriesLog& log() const { return log_; }

  // Peak + first-peak time per series, in series order. Deterministic:
  // derived purely from the recorded columns.
  std::vector<SeriesWatermark> Watermarks() const;

  // log().WriteBinary(dir + "/timeseries.bin").
  bool WriteArtifact(const std::string& dir, std::string* error = nullptr) const;

 private:
  std::int64_t interval_us_;
  std::vector<Probe> probes_;
  TimeSeriesLog log_;
};

}  // namespace ethsim::obs
