// Implementation of the transaction-lifecycle flight recorder. See the
// header for role scoping; the notes here cover the commit sweep:
//
// Commit scheduling. When the anchor adopts a block at height h containing a
// tx, the recorder buckets one PendingCommit per configured depth d at key
// h + d. AdvanceHead pops every bucket at or below the new head height and
// emits kCommitted for entries that are still *valid*: the tx is still
// included, at the same height the entry was scheduled for (a reorg in
// between invalidates the entry — the re-adoption schedules fresh ones), and
// that depth has not already been committed (the per-tx committed mask is
// sticky across reorgs, so "committed at depth d" is emitted at most once
// per tx, matching the first-time-d-deep semantics of analysis/commit).
#include "obs/tx_provenance.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/diag.hpp"
#include "obs/metrics.hpp"

namespace ethsim::obs {

namespace {

constexpr char kMagic[8] = {'E', 'T', 'H', 'T', 'X', '1', '\0', '\0'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint8_t kUnknownRegion = 0xff;

// How many individual violations get a log line before we go quiet (the
// counters keep the full tally either way).
constexpr std::uint64_t kMaxLoggedViolations = 16;

template <typename T>
void WriteColumn(std::ofstream& out, const std::vector<T>& column) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(column.data()),
            static_cast<std::streamsize>(column.size() * sizeof(T)));
}

template <typename T>
bool ReadColumn(std::ifstream& in, std::vector<T>& column, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  column.resize(count);
  in.read(reinterpret_cast<char*>(column.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return in.good() || (count == 0 && !in.bad());
}

template <typename T>
void WriteScalar(std::ofstream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadScalar(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

std::string_view TxStageName(TxStage stage) {
  switch (stage) {
    case TxStage::kSubmitted:
      return "submitted";
    case TxStage::kFirstSeen:
      return "first_seen";
    case TxStage::kPoolAdmitted:
      return "pool_admitted";
    case TxStage::kPoolRejected:
      return "pool_rejected";
    case TxStage::kPoolReplaced:
      return "pool_replaced";
    case TxStage::kSelected:
      return "selected";
    case TxStage::kIncluded:
      return "included";
    case TxStage::kOrphanReturned:
      return "orphan_returned";
    case TxStage::kCommitted:
      return "committed";
  }
  return "unknown";
}

std::string_view TxPoolOutcomeName(TxPoolOutcome outcome) {
  switch (outcome) {
    case TxPoolOutcome::kPending:
      return "pending";
    case TxPoolOutcome::kQueued:
      return "queued";
    case TxPoolOutcome::kKnown:
      return "known";
    case TxPoolOutcome::kStale:
      return "stale";
    case TxPoolOutcome::kReplaced:
      return "replaced";
    case TxPoolOutcome::kRejected:
      return "rejected";
  }
  return "unknown";
}

std::string_view TxInvariantName(TxInvariant check) {
  switch (check) {
    case TxInvariant::kNonMonotoneStage:
      return "monotonic_stage";
    case TxInvariant::kIncludeWithoutAdmit:
      return "include_without_admit";
    case TxInvariant::kOrphanReturnWithoutInclude:
      return "orphan_return_without_include";
    case TxInvariant::kCommitBeforeInclude:
      return "commit_before_include";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// TxProvLog

void TxProvLog::Append(const TxStageRecord& record) {
  t_us.push_back(record.t_us);
  tx.push_back(record.tx);
  host.push_back(record.host);
  stage.push_back(static_cast<std::uint8_t>(record.stage));
  info.push_back(record.info);
  aux.push_back(record.aux);
  number.push_back(record.number);
}

// Layout (all little-endian, no padding):
//   char     magic[8]        "ETHTX1\0\0"
//   u32      version         1
//   u32      host_count
//   u32      depth_count
//   u64      record_count
//   i64      end_us
//   u8       host_region[host_count]
//   u64      depths[depth_count]
//   i64      t_us[record_count]
//   u64      tx[record_count]
//   u32      host[record_count]
//   u8       stage[record_count]
//   u16      info[record_count]
//   u64      aux[record_count]
//   u64      number[record_count]
bool TxProvLog::WriteBinary(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  WriteScalar(out, kFormatVersion);
  WriteScalar(out, static_cast<std::uint32_t>(host_region.size()));
  WriteScalar(out, static_cast<std::uint32_t>(depths.size()));
  WriteScalar(out, static_cast<std::uint64_t>(size()));
  WriteScalar(out, end_us);
  WriteColumn(out, host_region);
  WriteColumn(out, depths);
  WriteColumn(out, t_us);
  WriteColumn(out, tx);
  WriteColumn(out, host);
  WriteColumn(out, stage);
  WriteColumn(out, info);
  WriteColumn(out, aux);
  WriteColumn(out, number);
  out.flush();
  if (!out.good()) return Fail(error, "short write to " + path);
  return true;
}

bool TxProvLog::ReadBinary(const std::string& path, TxProvLog* out,
                           std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, path + ": bad magic (not a txprov.bin artifact)");
  }
  std::uint32_t version = 0;
  std::uint32_t host_count = 0;
  std::uint32_t depth_count = 0;
  std::uint64_t record_count = 0;
  if (!ReadScalar(in, &version)) return Fail(error, path + ": truncated header");
  if (version != kFormatVersion) {
    return Fail(error, path + ": unsupported format version " +
                           std::to_string(version));
  }
  if (!ReadScalar(in, &host_count) || !ReadScalar(in, &depth_count) ||
      !ReadScalar(in, &record_count) || !ReadScalar(in, &out->end_us)) {
    return Fail(error, path + ": truncated header");
  }
  const auto count = static_cast<std::size_t>(record_count);
  if (!ReadColumn(in, out->host_region, host_count) ||
      !ReadColumn(in, out->depths, depth_count) ||
      !ReadColumn(in, out->t_us, count) || !ReadColumn(in, out->tx, count) ||
      !ReadColumn(in, out->host, count) ||
      !ReadColumn(in, out->stage, count) ||
      !ReadColumn(in, out->info, count) || !ReadColumn(in, out->aux, count) ||
      !ReadColumn(in, out->number, count)) {
    return Fail(error, path + ": truncated column data");
  }
  // Exact-size check: nothing may trail the last column.
  in.peek();
  if (!in.eof()) return Fail(error, path + ": trailing bytes after columns");
  return true;
}

// ---------------------------------------------------------------------------
// TxInvariantChecker

TxInvariantChecker::TxInvariantChecker(bool fatal) : fatal_(fatal) {}

void TxInvariantChecker::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  for (std::size_t i = 0; i < kTxInvariantCount; ++i) {
    const auto check = static_cast<TxInvariant>(i);
    counters_[i] = metrics->GetCounter(
        LabeledName("txprov.violation", {{"check", TxInvariantName(check)}}));
  }
}

void TxInvariantChecker::Violate(TxInvariant check, std::string detail) {
  ++total_;
  ++by_check_[static_cast<std::size_t>(check)];
  if (Counter* c = counters_[static_cast<std::size_t>(check)]) c->Add();
  if (handler_) {
    handler_(check, detail);
    return;
  }
  if (total_ <= kMaxLoggedViolations) {
    LogWarn("txprov", "invariant %s violated: %s",
            std::string(TxInvariantName(check)).c_str(), detail.c_str());
    if (total_ == kMaxLoggedViolations) {
      LogWarn("txprov",
              "further invariant violations will be counted but not logged");
    }
  }
  if (fatal_) {
    LogError("txprov", "aborting on invariant violation (%s): %s",
             std::string(TxInvariantName(check)).c_str(), detail.c_str());
    std::abort();
  }
}

void TxInvariantChecker::OnStage(TxStage stage, std::uint64_t tx,
                                 std::int64_t t_us, std::int64_t last_t_us) {
  if (t_us < last_t_us) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "tx %016" PRIx64 " stage %s at t=%" PRId64
                  "us is earlier than its prior record (t=%" PRId64 "us)",
                  tx, std::string(TxStageName(stage)).c_str(), t_us,
                  last_t_us);
    Violate(TxInvariant::kNonMonotoneStage, buf);
  }
}

void TxInvariantChecker::OnInclude(std::uint64_t tx, bool ever_admitted) {
  if (!ever_admitted) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "tx %016" PRIx64 " included without any pool admission", tx);
    Violate(TxInvariant::kIncludeWithoutAdmit, buf);
  }
}

void TxInvariantChecker::OnOrphanReturn(std::uint64_t tx,
                                        bool currently_included) {
  if (!currently_included) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "tx %016" PRIx64 " orphan-returned without a live inclusion",
                  tx);
    Violate(TxInvariant::kOrphanReturnWithoutInclude, buf);
  }
}

void TxInvariantChecker::OnCommit(std::uint64_t tx, bool currently_included) {
  if (!currently_included) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "tx %016" PRIx64 " committed while not included", tx);
    Violate(TxInvariant::kCommitBeforeInclude, buf);
  }
}

// ---------------------------------------------------------------------------
// TxProvRecorder

TxProvRecorder::TxProvRecorder(TxProvConfig config)
    : config_(std::move(config)), checker_(config_.fatal_invariants) {
  if (config_.confirmation_depths.empty())
    config_.confirmation_depths = {0};
  // The per-tx committed mask is a u32 bitfield, one bit per depth.
  if (config_.confirmation_depths.size() > 32)
    config_.confirmation_depths.resize(32);
  log_.depths = config_.confirmation_depths;
}

void TxProvRecorder::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  for (std::size_t i = 0; i < kTxStageCount; ++i) {
    const auto stage = static_cast<TxStage>(i);
    stage_count_[i] = metrics->GetCounter(
        LabeledName("txprov.record", {{"stage", TxStageName(stage)}}));
  }
  checker_.AttachMetrics(metrics);
}

void TxProvRecorder::RegisterHost(std::uint32_t host, std::uint8_t region) {
  if (host >= log_.host_region.size()) {
    log_.host_region.resize(host + 1, kUnknownRegion);
  }
  log_.host_region[host] = region;
}

void TxProvRecorder::MarkVantage(std::uint32_t host) {
  if (host >= vantage_.size()) vantage_.resize(host + 1, false);
  vantage_[host] = true;
}

void TxProvRecorder::MarkAnchor(std::uint32_t host) {
  anchor_host_ = host;
  has_anchor_ = true;
}

void TxProvRecorder::Append(TxStage stage, std::uint64_t tx, std::int64_t t_us,
                            std::uint32_t host, std::uint16_t info,
                            std::uint64_t aux, std::uint64_t number) {
  TxState& state = State(tx);
  checker_.OnStage(stage, tx, t_us, state.last_t_us);
  if (t_us > state.last_t_us) state.last_t_us = t_us;
  TxStageRecord record;
  record.t_us = t_us;
  record.tx = tx;
  record.host = host;
  record.stage = stage;
  record.info = info;
  record.aux = aux;
  record.number = number;
  log_.Append(record);
  if (Counter* c = stage_count_[static_cast<std::size_t>(stage)]) c->Add();
}

void TxProvRecorder::RecordSubmitted(const Hash32& hash, std::int64_t t_us,
                                     std::uint32_t frontend_host,
                                     std::uint16_t source,
                                     std::uint64_t gas_price,
                                     std::uint16_t replacement) {
  Append(TxStage::kSubmitted, hash.prefix_u64(), t_us, frontend_host, source,
         gas_price, replacement);
}

void TxProvRecorder::RecordFirstSeen(std::uint32_t host, const Hash32& hash,
                                     std::int64_t t_us) {
  if (host >= vantage_.size() || !vantage_[host]) return;
  Append(TxStage::kFirstSeen, hash.prefix_u64(), t_us, host, 0, 0, 0);
}

void TxProvRecorder::RecordPoolOutcome(std::uint32_t host, const Hash32& hash,
                                       std::int64_t t_us,
                                       TxPoolOutcome outcome,
                                       std::uint64_t gas_price) {
  TxStage stage;
  switch (outcome) {
    case TxPoolOutcome::kPending:
    case TxPoolOutcome::kQueued:
      stage = TxStage::kPoolAdmitted;
      break;
    case TxPoolOutcome::kReplaced:
      stage = TxStage::kPoolReplaced;
      break;
    default:
      stage = TxStage::kPoolRejected;
      break;
  }
  const std::uint64_t tx = hash.prefix_u64();
  if (stage != TxStage::kPoolRejected) State(tx).admitted = true;
  Append(stage, tx, t_us, host, static_cast<std::uint16_t>(outcome),
         gas_price, 0);
}

void TxProvRecorder::RecordSelected(std::uint32_t host, const Hash32& hash,
                                    std::int64_t t_us, std::uint16_t pool,
                                    const Hash32& block,
                                    std::uint64_t height) {
  Append(TxStage::kSelected, hash.prefix_u64(), t_us, host, pool,
         block.prefix_u64(), height);
}

void TxProvRecorder::RecordIncluded(std::uint32_t host, const Hash32& hash,
                                    std::int64_t t_us, const Hash32& block,
                                    std::uint64_t height) {
  if (!IsAnchor(host)) return;
  const std::uint64_t tx = hash.prefix_u64();
  TxState& state = State(tx);
  checker_.OnInclude(tx, state.admitted);
  ++state.include_count;
  state.include_height = height;
  state.include_block = block.prefix_u64();
  Append(TxStage::kIncluded, tx, t_us, host, 0, state.include_block, height);
  for (std::uint32_t d = 0; d < config_.confirmation_depths.size(); ++d) {
    if ((state.committed_mask & (1u << d)) != 0) continue;
    commit_queue_[height + config_.confirmation_depths[d]].push_back(
        PendingCommit{tx, height, d});
  }
}

void TxProvRecorder::RecordOrphanReturned(std::uint32_t host,
                                          const Hash32& hash,
                                          std::int64_t t_us,
                                          const Hash32& block,
                                          std::uint64_t height) {
  if (!IsAnchor(host)) return;
  const std::uint64_t tx = hash.prefix_u64();
  TxState& state = State(tx);
  checker_.OnOrphanReturn(tx, state.include_count > 0);
  if (state.include_count > 0) --state.include_count;
  Append(TxStage::kOrphanReturned, tx, t_us, host, 0, block.prefix_u64(),
         height);
}

void TxProvRecorder::AdvanceHead(std::uint32_t host, std::uint64_t head_number,
                                 std::int64_t t_us) {
  if (!IsAnchor(host)) return;
  while (!commit_queue_.empty() &&
         commit_queue_.begin()->first <= head_number) {
    // The bucket must leave the queue before records are emitted: a strict
    // checker handler could re-enter in tests.
    std::vector<PendingCommit> bucket =
        std::move(commit_queue_.begin()->second);
    commit_queue_.erase(commit_queue_.begin());
    for (const PendingCommit& pending : bucket) {
      TxState& state = State(pending.tx);
      // Stale entry: the tx was reorged away (and possibly re-included at a
      // different height, which scheduled fresh entries).
      if (state.include_count == 0 ||
          state.include_height != pending.include_height)
        continue;
      const std::uint32_t bit = 1u << pending.depth_index;
      if ((state.committed_mask & bit) != 0) continue;
      checker_.OnCommit(pending.tx, state.include_count > 0);
      state.committed_mask |= bit;
      Append(TxStage::kCommitted, pending.tx, t_us, host,
             static_cast<std::uint16_t>(
                 config_.confirmation_depths[pending.depth_index]),
             state.include_block, state.include_height);
    }
  }
}

const TxProvLog& TxProvRecorder::Finish() {
  if (finished_) return log_;
  finished_ = true;
  log_.end_us = end_us_;
  return log_;
}

bool TxProvRecorder::WriteArtifact(const std::string& dir,
                                   std::string* error) {
  const TxProvLog& log = Finish();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = dir + ": " + ec.message();
    return false;
  }
  return log.WriteBinary(dir + "/txprov.bin", error);
}

}  // namespace ethsim::obs
