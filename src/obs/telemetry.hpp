// Telemetry facade: one object bundling the six instruments —
//   * MetricsRegistry     (sim-clock, deterministic)      -> metrics.jsonl
//   * Tracer              (sim-clock, deterministic)      -> trace.json
//   * EngineProfiler      (wall-clock, nondeterministic)  -> profile.jsonl
//   * ProvenanceRecorder  (sim-clock, deterministic)      -> provenance.bin
//   * StateSampler        (sim-clock, deterministic)      -> timeseries.bin
//   * TxProvRecorder      (sim-clock, deterministic)      -> txprov.bin
// plus the config that gates them. Components accept a `Telemetry*`; a null
// pointer (or a facade with everything disabled) costs exactly one predicted
// branch on hot paths. Telemetry never draws from any Rng and never schedules
// events, so enabling it cannot perturb a run's event order or results.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/provenance_dag.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/tx_provenance.hpp"

namespace ethsim::obs {

struct TelemetryConfig {
  bool metrics = false;
  bool trace = false;
  bool profile = false;
  std::uint32_t trace_categories = kAllTraceCategories;
  // Ring capacity in events (64 bytes each): 1M events ≈ 64 MB, enough for
  // the tail of a month-scale run without OOM.
  std::size_t trace_capacity = 1u << 20;
  std::uint64_t profile_sample_every = 1u << 16;
  // Dissemination-provenance recorder (obs/provenance_dag): every gossip
  // edge into provenance.bin, with the runtime invariant checker riding the
  // stream. `provenance_strict` escalates invariant violations to abort.
  bool provenance = false;
  bool provenance_strict = false;
  std::size_t provenance_ring = 4096;
  // State-sampling flight recorder (obs/sampler): engine/backlog probes
  // sampled on a sim-clock cadence into timeseries.bin, watermarks folded
  // into the manifest. The cadence default (250 ms sim) gives ~5k rows per
  // simulated 20-minute smoke — fine-grained enough to see a partition
  // window, small enough to never dominate the artifact set.
  bool sample = false;
  std::int64_t sample_interval_us = 250'000;
  // Transaction-lifecycle flight recorder (obs/tx_provenance): every stage
  // transition of every transaction into txprov.bin, with the runtime
  // invariant checker riding the stream. `txprov_strict` escalates invariant
  // violations to abort.
  bool txprov = false;
  bool txprov_strict = false;
  // Artifact directory for WriteArtifacts-style helpers; empty = caller's
  // choice (entry points default next to their other outputs).
  std::string output_dir;

  bool any() const {
    return metrics || trace || profile || provenance || sample || txprov;
  }

  // Environment gates:
  //   ETHSIM_METRICS=1            enable the metrics registry
  //   ETHSIM_TRACE=1|block,net    enable tracing (value = category filter)
  //   ETHSIM_PROFILE=1            enable the wall-clock engine profiler
  //   ETHSIM_PROVENANCE=1|strict  record gossip provenance (strict: abort on
  //                               invariant violations)
  //   ETHSIM_PROVENANCE_RING=N    per-sender staging-ring capacity
  //   ETHSIM_TRACE_CAPACITY=N     ring capacity in events
  //   ETHSIM_SAMPLE=1|interval_ms state-sampling flight recorder (a numeric
  //                               value overrides the 250 ms cadence)
  //   ETHSIM_TXPROV=1|strict      record per-transaction lifecycle stages
  //                               (strict: abort on invariant violations)
  //   ETHSIM_TELEMETRY_DIR=path   artifact directory
  static TelemetryConfig FromEnv();
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config);
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const TelemetryConfig& config() const { return config_; }

  // Null when the corresponding stream is disabled — hot paths branch on
  // these pointers exactly once.
  MetricsRegistry* metrics() { return metrics_.get(); }
  const MetricsRegistry* metrics() const { return metrics_.get(); }
  Tracer* tracer() { return tracer_.get(); }
  const Tracer* tracer() const { return tracer_.get(); }
  EngineProfiler* profiler() { return profiler_.get(); }
  const EngineProfiler* profiler() const { return profiler_.get(); }
  ProvenanceRecorder* provenance() { return provenance_.get(); }
  const ProvenanceRecorder* provenance() const { return provenance_.get(); }
  StateSampler* sampler() { return sampler_.get(); }
  const StateSampler* sampler() const { return sampler_.get(); }
  TxProvRecorder* txprov() { return txprov_.get(); }
  const TxProvRecorder* txprov() const { return txprov_.get(); }

  // Writes the enabled streams into `dir` (created if missing) as
  // metrics.jsonl / trace.json / profile.jsonl / provenance.bin /
  // timeseries.bin / txprov.bin. Returns
  // false and fills `error` (when non-null) with the failing path on I/O
  // errors. Writing provenance finishes the recorder (drains staging rings);
  // further recording afterwards is a programming error.
  bool WriteArtifacts(const std::string& dir,
                      std::string* error = nullptr) const;

 private:
  TelemetryConfig config_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<EngineProfiler> profiler_;
  std::unique_ptr<ProvenanceRecorder> provenance_;
  std::unique_ptr<StateSampler> sampler_;
  std::unique_ptr<TxProvRecorder> txprov_;
};

}  // namespace ethsim::obs
