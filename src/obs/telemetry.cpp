#include "obs/telemetry.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/diag.hpp"

namespace ethsim::obs {

namespace {

bool EnvTruthy(const char* value) {
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

}  // namespace

TelemetryConfig TelemetryConfig::FromEnv() {
  TelemetryConfig cfg;
  const char* metrics = std::getenv("ETHSIM_METRICS");
  cfg.metrics = EnvTruthy(metrics);
  const char* trace = std::getenv("ETHSIM_TRACE");
  if (EnvTruthy(trace)) {
    cfg.trace = true;
    cfg.trace_categories = ParseTraceCategories(trace);
  }
  cfg.profile = EnvTruthy(std::getenv("ETHSIM_PROFILE"));
  if (const char* prov = std::getenv("ETHSIM_PROVENANCE"); EnvTruthy(prov)) {
    cfg.provenance = true;
    cfg.provenance_strict = std::string_view(prov) == "strict";
  }
  if (const char* sample = std::getenv("ETHSIM_SAMPLE"); EnvTruthy(sample)) {
    cfg.sample = true;
    // "1" means "on, default cadence"; any other positive number is an
    // interval override in sim-milliseconds.
    char* end = nullptr;
    const long long parsed_ms = std::strtoll(sample, &end, 10);
    if (end != sample && *end == '\0' && parsed_ms > 1)
      cfg.sample_interval_us = parsed_ms * 1000;
  }
  if (const char* txprov = std::getenv("ETHSIM_TXPROV"); EnvTruthy(txprov)) {
    cfg.txprov = true;
    cfg.txprov_strict = std::string_view(txprov) == "strict";
  }
  if (const char* ring = std::getenv("ETHSIM_PROVENANCE_RING");
      ring != nullptr && ring[0] != '\0') {
    const long long parsed = std::atoll(ring);
    if (parsed > 0) cfg.provenance_ring = static_cast<std::size_t>(parsed);
  }
  if (const char* cap = std::getenv("ETHSIM_TRACE_CAPACITY");
      cap != nullptr && cap[0] != '\0') {
    const long long parsed = std::atoll(cap);
    if (parsed > 0) cfg.trace_capacity = static_cast<std::size_t>(parsed);
  }
  if (const char* dir = std::getenv("ETHSIM_TELEMETRY_DIR");
      dir != nullptr && dir[0] != '\0') {
    cfg.output_dir = dir;
  }
  return cfg;
}

Telemetry::Telemetry(TelemetryConfig config) : config_(std::move(config)) {
  if (config_.metrics) metrics_ = std::make_unique<MetricsRegistry>();
  if (config_.trace)
    tracer_ = std::make_unique<Tracer>(config_.trace_categories,
                                       config_.trace_capacity);
  if (config_.profile)
    profiler_ = std::make_unique<EngineProfiler>(config_.profile_sample_every);
  if (config_.provenance) {
    ProvenanceConfig prov;
    prov.ring_capacity = config_.provenance_ring;
    prov.fatal_invariants = config_.provenance_strict;
    provenance_ = std::make_unique<ProvenanceRecorder>(prov);
    provenance_->AttachMetrics(metrics_.get());
  }
  if (config_.sample)
    sampler_ = std::make_unique<StateSampler>(config_.sample_interval_us);
  if (config_.txprov) {
    TxProvConfig tx;
    tx.fatal_invariants = config_.txprov_strict;
    txprov_ = std::make_unique<TxProvRecorder>(tx);
    txprov_->AttachMetrics(metrics_.get());
  }
}

bool Telemetry::WriteArtifacts(const std::string& dir,
                               std::string* error) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = dir + ": " + ec.message();
    LogError("telemetry", "cannot create %s: %s", dir.c_str(),
             ec.message().c_str());
    return false;
  }
  const auto write = [&](const char* file, const auto& writer) {
    const std::string path = (fs::path(dir) / file).string();
    std::ofstream out(path);
    if (out) writer(out);
    if (!out.good()) {
      if (error != nullptr) *error = path;
      LogError("telemetry", "failed writing %s", path.c_str());
      return false;
    }
    return true;
  };
  if (metrics_ &&
      !write("metrics.jsonl",
             [&](std::ostream& out) { metrics_->WriteJsonl(out); }))
    return false;
  if (tracer_ && !write("trace.json", [&](std::ostream& out) {
        tracer_->WriteChromeTrace(out);
      }))
    return false;
  if (profiler_ && !write("profile.jsonl", [&](std::ostream& out) {
        profiler_->WriteJsonl(out);
      }))
    return false;
  if (provenance_) {
    // unique_ptr does not propagate const: finishing the recorder (a drain,
    // not a mutation of results) is fine from this const facade.
    std::string prov_error;
    if (!provenance_->WriteArtifact(dir, &prov_error)) {
      if (error != nullptr) *error = prov_error;
      LogError("telemetry", "failed writing %s", prov_error.c_str());
      return false;
    }
  }
  if (sampler_) {
    std::string sample_error;
    if (!sampler_->WriteArtifact(dir, &sample_error)) {
      if (error != nullptr) *error = sample_error;
      LogError("telemetry", "failed writing %s", sample_error.c_str());
      return false;
    }
  }
  if (txprov_) {
    std::string tx_error;
    if (!txprov_->WriteArtifact(dir, &tx_error)) {
      if (error != nullptr) *error = tx_error;
      LogError("telemetry", "failed writing %s", tx_error.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace ethsim::obs
