#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <ostream>
#include <sstream>

namespace ethsim::obs {

std::string_view MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kNewBlock: return "new_block";
    case MsgKind::kAnnouncement: return "announcement";
    case MsgKind::kGetBlock: return "get_block";
    case MsgKind::kBlockResponse: return "block_response";
    case MsgKind::kTransactions: return "transactions";
    case MsgKind::kOther: return "other";
  }
  return "?";
}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(std::int64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

std::int64_t Histogram::bound(std::size_t i) const {
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<std::int64_t>::max();
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Linear interpolation inside the bucket [lower, upper].
    const double lower =
        i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
    const double upper = i < bounds_.size()
                             ? static_cast<double>(bounds_[i])
                             : lower * 2.0 + 1.0;  // open overflow bucket
    const double in_bucket = static_cast<double>(counts_[i]);
    if (in_bucket <= 0.0) return upper;
    const double frac =
        (target - static_cast<double>(cumulative - counts_[i])) / in_bucket;
    return lower + (upper - lower) * frac;
  }
  return static_cast<double>(bounds_.empty() ? 0 : bounds_.back());
}

std::vector<std::int64_t> LatencyBucketsUs() {
  // 100us * (2^k): 100us, 200us, ... ~105s — 21 buckets spanning every
  // simulated delay (per-message overhead to cross-continent tail).
  std::vector<std::int64_t> bounds;
  for (std::int64_t b = 100; b <= 100LL << 20; b <<= 1) bounds.push_back(b);
  return bounds;
}

std::vector<std::int64_t> SizeBucketsBytes() {
  std::vector<std::int64_t> bounds;
  for (std::int64_t b = 16; b <= 16LL << 20; b <<= 2) bounds.push_back(b);
  return bounds;
}

std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out{base};
  if (labels.size() == 0) return out;
  out.push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.append(key);
    out.push_back('=');
    out.append(value);
  }
  out.push_back('}');
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return &counters_[name];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return &gauges_[name];
}

Histogram* MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<std::int64_t>& bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    assert(it->second.bounds_ == bounds && "histogram re-registered with "
                                           "different bounds");
    return &it->second;
  }
  return &histograms_.emplace(name, Histogram{bounds}).first->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_)
    counters_[name].value_ += counter.value_;
  for (const auto& [name, gauge] : other.gauges_) {
    Gauge& mine = gauges_[name];
    mine.value_ = std::max(mine.value_, gauge.value_);
    mine.high_water_ = std::max(mine.high_water_, gauge.high_water_);
  }
  for (const auto& [name, histogram] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, histogram);
      continue;
    }
    Histogram& mine = it->second;
    assert(mine.bounds_ == histogram.bounds_ &&
           "merging histograms with mismatched buckets");
    for (std::size_t i = 0; i < mine.counts_.size(); ++i)
      mine.counts_[i] += histogram.counts_[i];
    mine.count_ += histogram.count_;
    mine.sum_ += histogram.sum_;
  }
}

namespace {

// Metric names contain only [A-Za-z0-9._{}=,-]; escape defensively anyway.
void WriteJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void MetricsRegistry::WriteJsonl(std::ostream& out) const {
  for (const auto& [name, counter] : counters_) {
    out << "{\"type\":\"counter\",\"name\":";
    WriteJsonString(out, name);
    out << ",\"value\":" << counter.value() << "}\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "{\"type\":\"gauge\",\"name\":";
    WriteJsonString(out, name);
    out << ",\"value\":" << gauge.value()
        << ",\"high_water\":" << gauge.high_water() << "}\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << "{\"type\":\"histogram\",\"name\":";
    WriteJsonString(out, name);
    out << ",\"count\":" << histogram.count() << ",\"sum\":" << histogram.sum()
        << ",\"buckets\":[";
    for (std::size_t i = 0; i < histogram.bucket_count(); ++i) {
      if (i != 0) out << ',';
      out << '[';
      if (i + 1 == histogram.bucket_count()) {
        out << "null";  // +inf overflow bucket
      } else {
        out << histogram.bound(i);
      }
      out << ',' << histogram.bucket(i) << ']';
    }
    out << "]}\n";
  }
}

std::string MetricsRegistry::ToJsonl() const {
  std::ostringstream out;
  WriteJsonl(out);
  return out.str();
}

}  // namespace ethsim::obs
