#include "obs/profiler.hpp"

#include <bit>
#include <ostream>
#include <sstream>

namespace ethsim::obs {

namespace {

// Round up to a power of two (minimum 1).
std::uint64_t NextPow2(std::uint64_t v) {
  if (v <= 1) return 1;
  return std::bit_ceil(v);
}

}  // namespace

EngineProfiler::EngineProfiler(std::uint64_t sample_every_events)
    : sample_mask_(NextPow2(sample_every_events) - 1),
      start_(std::chrono::steady_clock::now()) {}

EngineProfiler::ScopedPhase::~ScopedPhase() {
  if (profiler_ == nullptr) return;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  profiler_->RecordPhaseNs(name_, static_cast<std::uint64_t>(ns));
}

void EngineProfiler::ObserveCallbackNs(std::uint64_t ns) {
  const unsigned bucket = ns == 0 ? 0u : 63u - static_cast<unsigned>(
                                             std::countl_zero(ns));
  ++callback_buckets_[bucket < kLog2Buckets ? bucket : kLog2Buckets - 1];
  ++callback_count_;
  callback_total_ns_ += ns;
}

void EngineProfiler::RecordSample(const EngineSnapshot& snapshot) {
  SampleRecord record;
  record.engine = snapshot;
  record.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  const double window_s = record.wall_s - last_sample_wall_s_;
  const std::uint64_t window_events =
      snapshot.events_executed - last_sample_events_;
  record.events_per_wall_s =
      window_s > 0 ? static_cast<double>(window_events) / window_s : 0.0;
  last_sample_wall_s_ = record.wall_s;
  last_sample_events_ = snapshot.events_executed;
  samples_.push_back(record);
}

void EngineProfiler::RecordPhaseNs(const char* name, std::uint64_t ns) {
  phases_.push_back(PhaseRecord{name, ns});
}

void EngineProfiler::WriteJsonl(std::ostream& out) const {
  for (const SampleRecord& s : samples_) {
    out << "{\"type\":\"sample\",\"wall_s\":" << s.wall_s
        << ",\"sim_us\":" << s.engine.sim_now_us
        << ",\"events\":" << s.engine.events_executed
        << ",\"events_per_wall_s\":" << s.events_per_wall_s
        << ",\"heap_size\":" << s.engine.heap_size
        << ",\"heap_high_water\":" << s.engine.heap_high_water
        << ",\"slots_allocated\":" << s.engine.slots_allocated
        << ",\"free_slots\":" << s.engine.free_slots
        << ",\"live_events\":" << s.engine.live_events << "}\n";
  }
  out << "{\"type\":\"callback_histogram\",\"unit\":\"log2_ns\",\"count\":"
      << callback_count_ << ",\"total_ns\":" << callback_total_ns_
      << ",\"buckets\":[";
  // Trim trailing empty buckets for readability.
  std::size_t last = 0;
  for (std::size_t i = 0; i < kLog2Buckets; ++i)
    if (callback_buckets_[i] != 0) last = i + 1;
  for (std::size_t i = 0; i < last; ++i) {
    if (i != 0) out << ',';
    out << callback_buckets_[i];
  }
  out << "]}\n";
  for (const PhaseRecord& p : phases_) {
    out << "{\"type\":\"phase\",\"name\":\"" << p.name
        << "\",\"wall_ns\":" << p.wall_ns << "}\n";
  }
}

std::string EngineProfiler::ToJsonl() const {
  std::ostringstream out;
  WriteJsonl(out);
  return out.str();
}

}  // namespace ethsim::obs
