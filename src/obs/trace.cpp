#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ethsim::obs {

std::string_view TraceCategoryName(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kBlock: return "block";
    case TraceCategory::kTx: return "tx";
    case TraceCategory::kNet: return "net";
    case TraceCategory::kMine: return "mine";
    case TraceCategory::kSim: return "sim";
    case TraceCategory::kFault: return "fault";
  }
  return "?";
}

std::uint32_t ParseTraceCategories(std::string_view csv) {
  if (csv.empty() || csv == "all" || csv == "1") return kAllTraceCategories;
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string_view::npos) end = csv.size();
    const std::string_view token = csv.substr(start, end - start);
    for (std::size_t c = 0; c < kTraceCategoryCount; ++c)
      if (token == TraceCategoryName(static_cast<TraceCategory>(c)))
        mask |= 1u << c;
    if (end == csv.size()) break;
    start = end + 1;
  }
  return mask == 0 ? kAllTraceCategories : mask;
}

Tracer::Tracer(std::uint32_t category_mask, std::size_t capacity)
    : mask_(category_mask & kAllTraceCategories),
      cap_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(cap_);
}

void Tracer::Emit(const TraceEvent& event) {
  if (!enabled(event.cat)) return;
  ++emitted_;
  if (!full_) {
    ring_.push_back(event);
    if (ring_.size() == cap_) {
      full_ = true;
      head_ = 0;
    } else {
      head_ = ring_.size();
    }
    return;
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % cap_;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  if (full_) {
    for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
    for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  } else {
    out.assign(ring_.begin(), ring_.end());
  }
  return out;
}

namespace {

void WriteJsonString(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

void WriteEvent(std::ostream& out, const TraceEvent& e) {
  out << "{\"name\":";
  WriteJsonString(out, e.name);
  out << ",\"cat\":";
  WriteJsonString(out, TraceCategoryName(e.cat));
  out << ",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts_us;
  if (e.phase == 'X') out << ",\"dur\":" << e.dur_us;
  if (e.phase == 'i') out << ",\"s\":\"t\"";  // thread-scoped instant
  out << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
  const bool has_args =
      e.arg_hash != 0 || e.arg_num != 0 || e.arg_kind != nullptr;
  if (has_args) {
    out << ",\"args\":{";
    bool first = true;
    if (e.arg_hash != 0) {
      out << "\"hash\":\"";
      // Render the 8-byte prefix as fixed-width hex, like ShortHex output.
      const char* digits = "0123456789abcdef";
      for (int shift = 60; shift >= 0; shift -= 4)
        out << digits[(e.arg_hash >> shift) & 0xF];
      out << '"';
      first = false;
    }
    if (e.arg_num != 0 || e.arg_hash != 0) {
      if (!first) out << ',';
      out << "\"number\":" << e.arg_num;
      first = false;
    }
    if (e.arg_kind != nullptr) {
      if (!first) out << ',';
      out << "\"kind\":";
      WriteJsonString(out, e.arg_kind);
    }
    out << '}';
  }
  out << '}';
}

}  // namespace

void Tracer::WriteChromeTrace(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto write = [&](const TraceEvent& e) {
    if (!first) out << ",";
    out << "\n";
    first = false;
    WriteEvent(out, e);
  };
  if (full_) {
    for (std::size_t i = head_; i < ring_.size(); ++i) write(ring_[i]);
    for (std::size_t i = 0; i < head_; ++i) write(ring_[i]);
  } else {
    for (const TraceEvent& e : ring_) write(e);
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"clock_domain\":\"simulation\",\"emitted\":" << emitted_
      << ",\"dropped\":" << dropped() << "}}\n";
}

std::string Tracer::ToChromeTraceJson() const {
  std::ostringstream out;
  WriteChromeTrace(out);
  return out.str();
}

}  // namespace ethsim::obs
