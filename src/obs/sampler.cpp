#include "obs/sampler.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace ethsim::obs {

namespace {

constexpr char kMagic[8] = {'E', 'T', 'H', 'T', 'S', '1', '\0', '\0'};
constexpr std::uint32_t kFormatVersion = 1;

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

template <typename T>
void WriteScalar(std::ostream& out, T value) {
  // Little-endian, byte by byte: the artifact layout is independent of host
  // endianness (same idiom as provenance_dag).
  unsigned char buf[sizeof(T)];
  auto bits = static_cast<std::uint64_t>(value);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(bits & 0xff);
    bits >>= 8;
  }
  out.write(reinterpret_cast<const char*>(buf), sizeof(T));
}

template <typename T>
bool ReadScalar(std::istream& in, T* value) {
  unsigned char buf[sizeof(T)];
  in.read(reinterpret_cast<char*>(buf), sizeof(T));
  if (!in.good()) return false;
  std::uint64_t bits = 0;
  for (std::size_t i = sizeof(T); i-- > 0;) bits = (bits << 8) | buf[i];
  *value = static_cast<T>(bits);
  return true;
}

void WriteColumn(std::ostream& out, const std::vector<std::int64_t>& column) {
  for (const std::int64_t value : column) WriteScalar(out, value);
}

bool ReadColumn(std::istream& in, std::vector<std::int64_t>& column,
                std::size_t count) {
  column.resize(count);
  for (std::size_t i = 0; i < count; ++i)
    if (!ReadScalar(in, &column[i])) return false;
  return true;
}

}  // namespace

std::size_t TimeSeriesLog::Find(std::string_view name) const {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  return npos;
}

bool TimeSeriesLog::Accumulate(const TimeSeriesLog& other) {
  if (interval_us != other.interval_us || names != other.names) return false;
  // Ragged lengths (members that sampled for different spans) are legal as
  // long as the shorter time column is a prefix of the longer; anything else
  // is a genuine shape mismatch and leaves the target untouched.
  const std::size_t common = std::min(t_us.size(), other.t_us.size());
  for (std::size_t i = 0; i < common; ++i)
    if (t_us[i] != other.t_us[i]) return false;
  for (std::size_t s = 0; s < values.size(); ++s) {
    for (std::size_t i = 0; i < common; ++i)
      values[s][i] += other.values[s][i];
    // The longer member's tail carries over verbatim: past the shorter run's
    // end the pool is just the surviving members' sum.
    values[s].insert(values[s].end(), other.values[s].begin() + common,
                     other.values[s].end());
  }
  t_us.insert(t_us.end(), other.t_us.begin() + common, other.t_us.end());
  return true;
}

bool TimeSeriesLog::WriteBinary(const std::string& path,
                                std::string* error) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(error, "cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  WriteScalar(out, kFormatVersion);
  WriteScalar(out, static_cast<std::uint32_t>(names.size()));
  WriteScalar(out, static_cast<std::uint64_t>(t_us.size()));
  WriteScalar(out, interval_us);
  for (const std::string& name : names) {
    WriteScalar(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  WriteColumn(out, t_us);
  for (const auto& column : values) WriteColumn(out, column);
  out.flush();
  if (!out.good()) return Fail(error, "short write to " + path);
  return true;
}

bool TimeSeriesLog::ReadBinary(const std::string& path, TimeSeriesLog* out,
                               std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Fail(error, "cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return Fail(error, path + ": bad magic (not a timeseries.bin artifact)");
  std::uint32_t version = 0;
  std::uint32_t series_count = 0;
  std::uint64_t sample_count = 0;
  if (!ReadScalar(in, &version)) return Fail(error, path + ": truncated header");
  if (version != kFormatVersion)
    return Fail(error, path + ": unsupported format version " +
                           std::to_string(version));
  if (!ReadScalar(in, &series_count) || !ReadScalar(in, &sample_count) ||
      !ReadScalar(in, &out->interval_us))
    return Fail(error, path + ": truncated header");
  out->names.clear();
  out->names.reserve(series_count);
  for (std::uint32_t s = 0; s < series_count; ++s) {
    std::uint32_t length = 0;
    if (!ReadScalar(in, &length) || length > 4096)
      return Fail(error, path + ": truncated series name table");
    std::string name(length, '\0');
    in.read(name.data(), length);
    if (!in.good()) return Fail(error, path + ": truncated series name table");
    out->names.push_back(std::move(name));
  }
  const auto count = static_cast<std::size_t>(sample_count);
  if (!ReadColumn(in, out->t_us, count))
    return Fail(error, path + ": truncated time column");
  out->values.assign(series_count, {});
  for (auto& column : out->values)
    if (!ReadColumn(in, column, count))
      return Fail(error, path + ": truncated value columns");
  return true;
}

StateSampler::StateSampler(std::int64_t interval_us)
    : interval_us_(interval_us) {
  log_.interval_us = interval_us;
}

void StateSampler::AddProbe(std::string name, Probe probe) {
  assert(log_.sample_count() == 0 &&
         "probe registration must precede the first sample");
  log_.names.push_back(std::move(name));
  log_.values.emplace_back();
  probes_.push_back(std::move(probe));
}

void StateSampler::SampleNow(std::int64_t now_us) {
  log_.t_us.push_back(now_us);
  for (std::size_t s = 0; s < probes_.size(); ++s)
    log_.values[s].push_back(probes_[s]());
}

std::vector<SeriesWatermark> ComputeWatermarks(const TimeSeriesLog& log) {
  std::vector<SeriesWatermark> marks;
  marks.reserve(log.series_count());
  for (std::size_t s = 0; s < log.series_count(); ++s) {
    SeriesWatermark mark;
    mark.series = log.names[s];
    for (std::size_t i = 0; i < log.sample_count(); ++i) {
      if (i == 0 || log.values[s][i] > mark.peak) {
        mark.peak = log.values[s][i];
        mark.at_us = log.t_us[i];
      }
    }
    marks.push_back(std::move(mark));
  }
  return marks;
}

std::vector<SeriesWatermark> StateSampler::Watermarks() const {
  return ComputeWatermarks(log_);
}

bool StateSampler::WriteArtifact(const std::string& dir,
                                 std::string* error) const {
  namespace fs = std::filesystem;
  return log_.WriteBinary((fs::path(dir) / "timeseries.bin").string(), error);
}

}  // namespace ethsim::obs
