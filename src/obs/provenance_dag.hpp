// Dissemination provenance: a deterministic, env-gated (ETHSIM_PROVENANCE)
// recorder that captures every gossip edge of a run — (sender, receiver,
// object, message kind, hop depth inherited from the sender's first-seen
// record, send/arrival sim-times, wire bytes, drop reason if the message was
// censored by loss/partition/outage) — into per-sender ring buffers that
// spill into an in-memory columnar store and finally into a compact columnar
// artifact (provenance.bin) alongside manifest.json.
//
// This is the primitive Ethna/DEthna derive their propagation-mechanism and
// topology-inference analyses from: with it, every simulation run doubles as
// a queryable measurement dataset. The analysis layer
// (analysis/dissemination) reconstructs per-block dissemination trees,
// hop-depth CDFs, push-vs-announce first-delivery shares and byte-exact
// redundancy attribution from the log; tools/ethsim_inspect answers ad-hoc
// queries against the written artifact.
//
// Contract (same as the rest of src/obs): record-only. The recorder never
// draws from any Rng and never schedules events, so enabling it cannot
// change a run's results; with it disabled every hook costs one predicted
// branch on a null pointer.
//
// Recording protocol (single-threaded inside one simulation world):
//   1. The sending EthNode *stages* an edge immediately before calling
//      Network::Send (StageBlockEdge / StageTxEdge).
//   2. Network::Send *finalizes* the staged edge exactly once: either
//      FinalizeDropped(reason) on a censored message or
//      FinalizeScheduled(arrival) once the delivery is on the event queue.
//   3. The receiving EthNode *resolves* the delivery at ingress
//      (ResolveDelivery). Per-(from,to) FIFO delivery (a Network invariant)
//      makes the resolution a queue pop — no per-message lookup. A delivery
//      that finds the receiver crashed is re-attributed as an `offline` drop.
// Origins (a pool gateway injecting a freshly mined block) are recorded as
// self-edges with hop depth 0; every relayed copy inherits depth
// sender-first-seen + 1.
//
// A runtime InvariantChecker rides the same stream and verifies, per event:
// no duplicate first-seen, no relay of a never-received block, no fetch
// without a prior announce (or orphan-parent knowledge), no delivery to a
// node the fault layer took down, and monotone (causal) hop depths. Each
// violation increments a `provenance.violation{check=...}` counter in the
// metrics registry and warns — or aborts when ETHSIM_PROVENANCE=strict.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace ethsim::obs {

class MetricsRegistry;
class Counter;

// Edge kinds. kOrigin is the mint/injection pseudo-edge (from == to); the
// rest mirror the wire messages of the simplified eth/63 protocol.
enum class EdgeKind : std::uint8_t {
  kOrigin = 0,     // block injected by its miner at this host
  kNewBlock,       // unsolicited full-block push
  kAnnouncement,   // NewBlockHashes entry
  kGetBlock,       // block body fetch request (announce- or orphan-triggered)
  kBlockResponse,  // block body served in response to a GetBlock
  kTransactions,   // batched tx relay (object = 0, number = batch tx count)
};
inline constexpr std::size_t kEdgeKindCount = 6;
std::string_view EdgeKindName(EdgeKind kind);

// Why an edge never delivered. Mirrors net::DropReason (shifted by one so 0
// can mean "delivered"); kept separate so obs stays free of net includes.
enum class EdgeDrop : std::uint8_t {
  kNone = 0,     // delivered (or still in flight at cutoff; see end_us)
  kRandomLoss,   // baseline stochastic loss
  kPartitioned,  // cross-side send during an active regional partition
  kDegraded,     // extra loss inside a link-degradation window
  kOffline,      // delivery reached a crashed/churned-out node
};
inline constexpr std::size_t kEdgeDropCount = 5;
std::string_view EdgeDropName(EdgeDrop drop);

// One gossip edge, AoS form — the staging-ring record. The log stores the
// same fields as columns; `seq` is the global send-order position and is
// implicit (row index) in the written artifact.
struct EdgeRecord {
  std::uint64_t seq = 0;
  std::int64_t send_us = 0;
  std::int64_t arrival_us = -1;  // -1: censored inside the network
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint64_t object = 0;  // hash prefix (prefix_u64); 0 for tx batches
  std::uint64_t parent = 0;  // parent-hash prefix for block bodies, else 0
  std::uint64_t number = 0;  // block number, or tx count for kTransactions
  std::uint32_t bytes = 0;   // wire size
  std::uint16_t hop = 0;     // sender first-seen depth + 1 (origin: 0)
  EdgeKind kind = EdgeKind::kOrigin;
  EdgeDrop drop = EdgeDrop::kNone;
};

// The complete edge log of one run in columnar (struct-of-arrays) form,
// ordered by send time (ties by send order). This is both the in-memory
// spill target of the recorder and the deserialized form of the
// provenance.bin artifact.
struct ProvenanceLog {
  std::vector<std::int64_t> send_us;
  std::vector<std::int64_t> arrival_us;
  std::vector<std::uint32_t> from;
  std::vector<std::uint32_t> to;
  std::vector<std::uint64_t> object;
  std::vector<std::uint64_t> parent;
  std::vector<std::uint64_t> number;
  std::vector<std::uint32_t> bytes;
  std::vector<std::uint16_t> hop;
  std::vector<std::uint8_t> kind;
  std::vector<std::uint8_t> drop;

  // Host id -> region index (net::Region). Hosts register at attach time, so
  // the table covers every host that *could* appear in an edge.
  std::vector<std::uint8_t> host_region;

  // Run cutoff: an edge with arrival_us > end_us was still in flight when
  // the simulation stopped and must not count as delivered.
  std::int64_t end_us = INT64_MAX;

  std::size_t size() const { return send_us.size(); }
  bool empty() const { return send_us.empty(); }
  void Append(const EdgeRecord& record);

  bool delivered(std::size_t i) const {
    return drop[i] == 0 && arrival_us[i] >= 0 && arrival_us[i] <= end_us;
  }
  bool block_payload(std::size_t i) const {  // carries the full block body
    const auto k = static_cast<EdgeKind>(kind[i]);
    return k == EdgeKind::kNewBlock || k == EdgeKind::kBlockResponse ||
           k == EdgeKind::kOrigin;
  }

  // Compact columnar artifact IO (provenance.bin, magic "ETHPROV1",
  // little-endian fixed-width columns; see WriteBinary for the layout).
  // Both return false and fill `error` (when non-null) on failure.
  bool WriteBinary(const std::string& path, std::string* error = nullptr) const;
  static bool ReadBinary(const std::string& path, ProvenanceLog* out,
                         std::string* error = nullptr);
};

// The invariants checked at runtime on the edge stream.
enum class InvariantCheck : std::uint8_t {
  kDuplicateFirstSeen = 0,  // second origin record for the same (host, block)
  kRelayWithoutReceive,     // push/announce/serve of a never-seen block
  kFetchWithoutAnnounce,    // GetBlock with no prior announce or orphan parent
  kDeliveryWhileOffline,    // delivered edge at a host the fault layer downed
  kNonMonotoneHop,          // relay staged before the sender's copy arrived
};
inline constexpr std::size_t kInvariantCheckCount = 5;
std::string_view InvariantCheckName(InvariantCheck check);

// Policy + counters for stream invariants. The recorder feeds it pre-digested
// facts (does the sender have a first-seen record? when did it arrive?), so
// the checker holds no per-object state of its own and can be unit-tested by
// direct calls. `fatal` escalates every violation to the handler's abort
// path (ETHSIM_PROVENANCE=strict).
class InvariantChecker {
 public:
  explicit InvariantChecker(bool fatal);

  // Wires provenance.violation{check=...} counters (eagerly, one per check,
  // so the metrics stream shape is a function of config alone).
  void AttachMetrics(MetricsRegistry* metrics);

  // Fact hooks (called by the recorder).
  void OnOrigin(std::uint32_t host, std::uint64_t object, bool already_seen);
  void OnBlockRelayStage(EdgeKind kind, std::uint32_t from,
                         std::uint64_t object, bool sender_has_first_seen,
                         std::int64_t send_us,
                         std::int64_t sender_first_seen_arrival_us);
  void OnFetchStage(std::uint32_t from, std::uint64_t object, bool heard,
                    bool parent_known);
  void OnDelivery(std::uint32_t to, bool node_online, bool host_marked_down);

  std::uint64_t total() const { return total_; }
  const std::array<std::uint64_t, kInvariantCheckCount>& by_check() const {
    return by_check_;
  }

  // Test hook: replaces the default handler (LogWarn, abort when fatal).
  using Handler = std::function<void(InvariantCheck, const std::string&)>;
  void set_handler(Handler handler) { handler_ = std::move(handler); }

 private:
  void Violate(InvariantCheck check, std::string detail);

  bool fatal_;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kInvariantCheckCount> by_check_{};
  std::array<Counter*, kInvariantCheckCount> counters_{};
  Handler handler_;
};

struct ProvenanceConfig {
  // Per-sender staging-ring capacity in records; a full ring spills into the
  // columnar store. Small rings bound the AoS staging footprint; the columnar
  // store grows with the run (it *is* the dataset).
  std::size_t ring_capacity = 4096;
  // Abort (after logging) on the first invariant violation.
  bool fatal_invariants = false;
};

class ProvenanceRecorder {
 public:
  explicit ProvenanceRecorder(ProvenanceConfig config);
  ProvenanceRecorder(const ProvenanceRecorder&) = delete;
  ProvenanceRecorder& operator=(const ProvenanceRecorder&) = delete;

  // Wires provenance.edge{kind=...} + violation counters. Optional.
  void AttachMetrics(MetricsRegistry* metrics);

  // Declares a host and its region (net::Region index). Called from
  // EthNode::AttachTelemetry; hosts appearing in edges without registration
  // get region 0xff in the artifact host table.
  void RegisterHost(std::uint32_t host, std::uint8_t region);

  // --- producer hooks (see file comment for the 3-step protocol) ----------
  void RecordOrigin(std::uint32_t host, const Hash32& hash,
                    const Hash32& parent, std::uint64_t number,
                    std::int64_t now_us);
  void StageBlockEdge(std::uint32_t from, std::uint32_t to, EdgeKind kind,
                      const Hash32& hash, std::uint64_t number,
                      const Hash32* parent, std::size_t bytes,
                      std::int64_t now_us);
  void StageTxEdge(std::uint32_t from, std::uint32_t to, std::size_t tx_count,
                   std::size_t bytes, std::int64_t now_us);
  void FinalizeScheduled(std::uint32_t from, std::uint32_t to,
                         std::int64_t arrival_us);
  void FinalizeDropped(std::uint32_t from, std::uint32_t to, EdgeDrop reason);
  void ResolveDelivery(std::uint32_t from, std::uint32_t to, bool online,
                       std::int64_t now_us);

  // Fault-layer attribution: FaultController marks hosts it took down so
  // the offline invariant can distinguish "correctly dropped at a crashed
  // node" from "delivered to a node everyone thinks is down".
  void NoteHostOnline(std::uint32_t host, bool online);

  // Run cutoff for the artifact (edges scheduled past it were in flight).
  void SetEndTime(std::int64_t end_us) { end_us_ = end_us; }

  // Drains every staging ring, restores global send order, applies late
  // (ingress-time) drop attributions, and returns the finished log.
  // Idempotent; recording after Finish is a programming error.
  const ProvenanceLog& Finish();

  // Finish() + WriteBinary(dir + "/provenance.bin").
  bool WriteArtifact(const std::string& dir, std::string* error = nullptr);

  std::uint64_t edges_recorded() const { return next_seq_; }
  std::uint64_t violations() const { return checker_.violations_total(); }
  InvariantChecker& checker() { return checker_impl_; }
  const InvariantChecker& checker() const { return checker_impl_; }

  // The depth at which `host` first saw `object` (its first-seen record);
  // false when the host never heard of it. Exposed for tests.
  bool FirstSeenDepth(std::uint32_t host, std::uint64_t object,
                      std::uint16_t* depth_out) const;

 private:
  struct FirstSeen {
    std::int64_t arrival_us = 0;
    std::uint16_t depth = 0;
  };
  struct ObjectState {
    // Per-host first-seen record: earliest (predicted) arrival of any
    // block-message edge for this object, and the hop depth it carried.
    std::unordered_map<std::uint32_t, FirstSeen> first_seen;
  };
  struct HostState {
    // Parent prefixes of block bodies this host received — the orphan
    // parent-fetch justification set.
    std::unordered_set<std::uint64_t> known_parents;
    bool marked_down = false;  // fault-layer view (NoteHostOnline)
  };
  struct PendingDelivery {
    std::uint64_t seq;
    EdgeKind kind;
  };

  // Small shim so the public violations() accessor reads naturally.
  struct CheckerHandle {
    const InvariantChecker* checker = nullptr;
    std::uint64_t violations_total() const { return checker->total(); }
  };

  HostState& Host(std::uint32_t host);
  void CommitStaged(std::int64_t arrival_us, EdgeDrop drop);
  void AppendRecord(const EdgeRecord& record);
  void SpillRing(std::uint32_t host);
  // Updates the receiver's first-seen record from a scheduled block-message
  // edge (min-arrival wins; deterministic, see .cpp).
  void NoteFirstSeen(std::uint32_t host, std::uint64_t object,
                     std::int64_t arrival_us, std::uint16_t depth);

  ProvenanceConfig config_;
  InvariantChecker checker_impl_;
  CheckerHandle checker_;

  // Staged-but-unfinalized edge (at most one; stage and finalize bracket a
  // single Network::Send call).
  EdgeRecord staged_;
  bool staged_active_ = false;

  std::uint64_t next_seq_ = 0;
  bool finished_ = false;

  // Per-sender staging rings (AoS), spilled into `log_` when full.
  std::vector<std::vector<EdgeRecord>> rings_;
  ProvenanceLog log_;                // columnar store (spill target)
  std::vector<std::uint64_t> seqs_;  // per-row seq, parallel to log_ columns
  std::int64_t end_us_ = INT64_MAX;

  // In-flight deliveries per directed (from,to) pair, popped FIFO at ingress.
  std::unordered_map<std::uint64_t, std::deque<PendingDelivery>> pending_;
  // Ingress-time re-attributions (seq -> drop), applied at Finish.
  std::vector<std::pair<std::uint64_t, EdgeDrop>> late_drops_;

  std::unordered_map<std::uint64_t, ObjectState> objects_;
  std::vector<HostState> hosts_;

  std::array<Counter*, kEdgeKindCount> edge_count_{};
  std::uint64_t resync_warnings_ = 0;
};

}  // namespace ethsim::obs
