#include "obs/run_manifest.hpp"

#include <fstream>
#include <sstream>

#include "obs/diag.hpp"

#ifndef ETHSIM_GIT_SHA
#define ETHSIM_GIT_SHA "unknown"
#endif
#ifndef ETHSIM_BUILD_TYPE
#define ETHSIM_BUILD_TYPE "unknown"
#endif

namespace ethsim::obs {

namespace {

std::string CompilerId() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

BuildInfo CurrentBuild() {
  BuildInfo info;
  info.git_sha = ETHSIM_GIT_SHA;
  info.build_type = ETHSIM_BUILD_TYPE;
  info.compiler = CompilerId();
  return info;
}

std::string ManifestToJson(const RunManifest& m) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": ";
  WriteJsonString(out, m.schema);
  out << ",\n  \"tool\": ";
  WriteJsonString(out, m.tool);
  out << ",\n  \"seed\": " << m.seed;
  out << ",\n  \"config_digest\": ";
  WriteJsonString(out, m.config_digest);
  out << ",\n  \"determinism_digest\": ";
  WriteJsonString(out, m.determinism_digest);
  out << ",\n  \"events_executed\": " << m.events_executed;
  out << ",\n  \"head_number\": " << m.head_number;
  out << ",\n  \"head_hash\": ";
  WriteJsonString(out, m.head_hash);
  out << ",\n  \"sim_duration_s\": " << m.sim_duration_s;
  out << ",\n  \"telemetry\": {\"metrics\": " << (m.metrics_enabled ? "true" : "false")
      << ", \"trace\": " << (m.trace_enabled ? "true" : "false")
      << ", \"profile\": " << (m.profile_enabled ? "true" : "false")
      << ", \"provenance\": " << (m.provenance_enabled ? "true" : "false");
  if (m.sample_enabled) out << ", \"sample\": true";
  if (m.txprov_enabled) out << ", \"txprov\": true";
  out << "}";
  if (!m.watermarks.empty()) {
    out << ",\n  \"watermarks\": {";
    bool first = true;
    for (const SeriesWatermark& mark : m.watermarks) {
      if (!first) out << ", ";
      first = false;
      WriteJsonString(out, mark.series);
      out << ": {\"peak\": " << mark.peak << ", \"at_us\": " << mark.at_us
          << "}";
    }
    out << "}";
  }
  out << ",\n  \"build\": {\"git_sha\": ";
  WriteJsonString(out, m.build.git_sha);
  out << ", \"build_type\": ";
  WriteJsonString(out, m.build.build_type);
  out << ", \"compiler\": ";
  WriteJsonString(out, m.build.compiler);
  out << "}";
  if (!m.extra.empty()) {
    out << ",\n  \"extra\": {";
    bool first = true;
    for (const auto& [key, value] : m.extra) {
      if (!first) out << ", ";
      first = false;
      WriteJsonString(out, key);
      out << ": ";
      WriteJsonString(out, value);
    }
    out << "}";
  }
  out << "\n}\n";
  return out.str();
}

bool WriteManifest(const std::string& path, const RunManifest& manifest,
                   std::string* error) {
  std::ofstream out(path);
  if (out) out << ManifestToJson(manifest);
  if (!out.good()) {
    if (error != nullptr) *error = path;
    LogError("provenance", "failed writing manifest %s", path.c_str());
    return false;
  }
  return true;
}

}  // namespace ethsim::obs
