// Engine profiler — the *wall-clock* half of the telemetry subsystem. This
// data answers "where does the real time go?" (events per wall-second, heap
// and slot-arena occupancy, callback wall-time distribution, named phase
// timings) and is inherently machine-dependent and nondeterministic: it is
// written to its own profile.jsonl stream and never merged with the
// deterministic sim-clock metrics or trace.
//
// Integration: Simulator::set_profiler() attaches it; the engine then times
// every callback and pushes an EngineSnapshot every `sample_every_events`
// events. Higher layers mark coarse phases (build/topology/run) through
// ScopedPhase. When no profiler is attached the engine hot loop pays one
// predicted branch.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ethsim::obs {

// Point-in-time engine state, filled by the Simulator at sample time.
struct EngineSnapshot {
  std::int64_t sim_now_us = 0;
  std::uint64_t events_executed = 0;
  std::size_t heap_size = 0;        // pending heap entries (incl. dead)
  std::size_t heap_high_water = 0;  // max heap size observed this run
  std::size_t slots_allocated = 0;  // slot arena size (chunks * chunk size used)
  std::size_t free_slots = 0;       // recycled slots awaiting reuse
  std::size_t live_events = 0;      // scheduled, not fired, not cancelled
};

class EngineProfiler {
 public:
  explicit EngineProfiler(std::uint64_t sample_every_events = 1ull << 16);

  // Events between periodic snapshots; always a power of two so the engine
  // can mask instead of divide.
  std::uint64_t sample_mask() const { return sample_mask_; }

  // --- engine-facing hooks -------------------------------------------------
  void ObserveCallbackNs(std::uint64_t ns);
  void RecordSample(const EngineSnapshot& snapshot);

  // --- named wall-time phases ---------------------------------------------
  class ScopedPhase {
   public:
    ScopedPhase(EngineProfiler* profiler, const char* name)
        : profiler_(profiler), name_(name),
          start_(std::chrono::steady_clock::now()) {}
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;
    ~ScopedPhase();

   private:
    EngineProfiler* profiler_;  // null = disabled, destructor is a no-op
    const char* name_;
    std::chrono::steady_clock::time_point start_;
  };
  void RecordPhaseNs(const char* name, std::uint64_t ns);

  // --- results -------------------------------------------------------------
  struct PhaseRecord {
    const char* name;
    std::uint64_t wall_ns;
  };
  struct SampleRecord {
    double wall_s = 0;            // seconds since profiler construction
    double events_per_wall_s = 0; // rate over the last sampling window
    EngineSnapshot engine;
  };

  std::uint64_t callbacks_timed() const { return callback_count_; }
  std::uint64_t callback_total_ns() const { return callback_total_ns_; }
  const std::vector<SampleRecord>& samples() const { return samples_; }
  const std::vector<PhaseRecord>& phases() const { return phases_; }

  // JSONL: one "sample" line per snapshot, then one "callback_histogram"
  // line (log2-ns buckets) and one "phase" line per recorded phase.
  void WriteJsonl(std::ostream& out) const;
  std::string ToJsonl() const;

 private:
  std::uint64_t sample_mask_;
  std::chrono::steady_clock::time_point start_;

  // log2(ns) buckets: [1ns, 2ns) ... [2^47ns, ...): 48 fixed buckets.
  static constexpr std::size_t kLog2Buckets = 48;
  std::uint64_t callback_buckets_[kLog2Buckets] = {};
  std::uint64_t callback_count_ = 0;
  std::uint64_t callback_total_ns_ = 0;

  std::vector<SampleRecord> samples_;
  std::uint64_t last_sample_events_ = 0;
  double last_sample_wall_s_ = 0;

  std::vector<PhaseRecord> phases_;
};

}  // namespace ethsim::obs
