// Deterministic metrics registry — the sim-clock half of the telemetry
// subsystem (see DESIGN.md "Telemetry"). Counters, gauges and fixed-bucket
// histograms are registered by name (labels rendered into the name with a
// fixed key order, e.g. "net.msg.sent{kind=new_block}") and updated only from
// simulation events, so for a given (config, seed) the registry contents are
// bit-for-bit reproducible — unlike the wall-clock EngineProfiler, which is
// explicitly nondeterministic and lives in a separate output stream.
//
// Hot-path contract: instruments are resolved to stable pointers once at
// attach time (std::map nodes never move); the per-event cost is a pointer
// null check plus an add. Components that hold a Telemetry* pay exactly one
// predicted branch when telemetry is disabled.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ethsim::obs {

// Wire-message kinds — the static label dimension shared by net/eth
// instrumentation and by the Network drop accounting.
enum class MsgKind : std::uint8_t {
  kNewBlock = 0,   // unsolicited full-block push
  kAnnouncement,   // NewBlockHashes entry
  kGetBlock,       // block body request
  kBlockResponse,  // block body response
  kTransactions,   // batched tx relay
  kOther,          // untagged traffic (legacy Send overload)
};
inline constexpr std::size_t kMsgKindCount = 6;
std::string_view MsgKindName(MsgKind kind);

// Monotonic event counter.
class Counter {
 public:
  void Add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t value_ = 0;
};

// Point-in-time level with a high-water mark (e.g. queue occupancy).
class Gauge {
 public:
  void Set(std::int64_t v) {
    value_ = v;
    if (v > high_water_) high_water_ = v;
  }
  void Add(std::int64_t delta) { Set(value_ + delta); }
  std::int64_t value() const { return value_; }
  std::int64_t high_water() const { return high_water_; }

 private:
  friend class MetricsRegistry;
  std::int64_t value_ = 0;
  std::int64_t high_water_ = 0;
};

// Fixed-bucket histogram: `bounds` are inclusive upper bounds per bucket plus
// an implicit +inf overflow bucket. Bounds are fixed at registration so two
// registries created from the same config always merge bucket-by-bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void Observe(std::int64_t value);

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  // Upper bound of bucket i; the last bucket reports INT64_MAX.
  std::int64_t bound(std::size_t i) const;
  // Bucket-interpolated quantile estimate in [0,1]; 0 when empty.
  double Quantile(double q) const;

 private:
  friend class MetricsRegistry;
  std::vector<std::int64_t> bounds_;  // sorted, strictly increasing
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
};

// Canonical bucket sets (microsecond domain) so histograms registered by
// different components/seeds always line up for merging.
std::vector<std::int64_t> LatencyBucketsUs();    // 100us .. ~100s, log-spaced
std::vector<std::int64_t> SizeBucketsBytes();    // 16B .. 16MB, power-of-4

// Renders a metric name with labels in the caller-supplied order:
// LabeledName("net.msg.sent", {{"kind", "new_block"}, {"region", "WE"}})
//   -> "net.msg.sent{kind=new_block,region=WE}"
std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>> labels);

// Owns all instruments of one simulation world. Registration (map insert) is
// expected at attach/setup time; hot paths use the returned stable pointers.
// Never shared across threads: each sweep member owns its registry and the
// sweep merges them afterwards in seed order.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  // Idempotent: the same name always returns the same instrument.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `bounds` must match any previous registration of `name`.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<std::int64_t>& bounds);

  // Lookup without creating; null when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Element-wise accumulate: counters/histograms add, gauges keep the max of
  // value and high-water (cross-seed merge semantics). Instruments missing
  // locally are created. Callers merge in seed order so the result is
  // invariant under sweep thread count.
  void MergeFrom(const MetricsRegistry& other);

  // One JSON object per line, sorted by metric name — a deterministic stream
  // for a deterministic registry.
  void WriteJsonl(std::ostream& out) const;
  std::string ToJsonl() const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // std::map: sorted deterministic iteration + stable node addresses, so the
  // pointers handed to hot paths survive later registrations.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ethsim::obs
