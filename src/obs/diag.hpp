// Leveled diagnostics logging for error paths and operational reporting.
// Tools/benches route failure messages (e.g. which dataset file failed to
// open, and why) through here so every binary reports problems the same way:
//
//   obs::LogError("dataset", "cannot open %s: %s", path, reason);
//     -> "[ethsim:dataset] error: cannot open ...": stderr
//
// Verbosity is gated by ETHSIM_LOG (error < warn < info; default warn).
// This is operator-facing plumbing, not part of the deterministic telemetry
// streams: never log from simulation hot paths.
#pragma once

#include <cstdarg>

namespace ethsim::obs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2 };

// Current threshold (parsed once from ETHSIM_LOG).
LogLevel DiagLevel();

// printf-style; `component` is a short subsystem tag ("dataset", "telemetry").
#if defined(__GNUC__)
#define ETHSIM_PRINTF_ATTR __attribute__((format(printf, 2, 3)))
#else
#define ETHSIM_PRINTF_ATTR
#endif
void LogError(const char* component, const char* fmt, ...) ETHSIM_PRINTF_ATTR;
void LogWarn(const char* component, const char* fmt, ...) ETHSIM_PRINTF_ATTR;
void LogInfo(const char* component, const char* fmt, ...) ETHSIM_PRINTF_ATTR;
#undef ETHSIM_PRINTF_ATTR

}  // namespace ethsim::obs
