// Leveled diagnostics logging for error paths and operational reporting.
// Tools/benches route failure messages (e.g. which dataset file failed to
// open, and why) through here so every binary reports problems the same way:
//
//   obs::LogError("dataset", "cannot open %s: %s", path, reason);
//     -> "[ethsim:dataset] error: cannot open ...": stderr
//
// Verbosity is gated by ETHSIM_LOG (error < warn < info; default warn).
// This is operator-facing plumbing, not part of the deterministic telemetry
// streams: never log from simulation hot paths.
#pragma once

#include <cstdarg>
#include <string>

namespace ethsim::obs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2 };

// Maps an ETHSIM_LOG value to a threshold: "error"/"0" -> kError,
// "info"/"2" -> kInfo, anything else (including unset/empty/malformed)
// -> kWarn. Pure — unit-testable without touching the environment.
LogLevel ParseLogLevel(const char* value);

// Current threshold (ParseLogLevel of ETHSIM_LOG, cached on first use).
LogLevel DiagLevel();

// The exact line LogError/LogWarn/LogInfo print (sans trailing newline):
// "[ethsim:<component>] <tag>: <formatted message>". Exposed for tests.
std::string FormatDiagMessage(LogLevel level, const char* component,
                              const char* fmt, ...);
std::string FormatDiagMessageV(LogLevel level, const char* component,
                               const char* fmt, std::va_list args);

// printf-style; `component` is a short subsystem tag ("dataset", "telemetry").
#if defined(__GNUC__)
#define ETHSIM_PRINTF_ATTR __attribute__((format(printf, 2, 3)))
#else
#define ETHSIM_PRINTF_ATTR
#endif
void LogError(const char* component, const char* fmt, ...) ETHSIM_PRINTF_ATTR;
void LogWarn(const char* component, const char* fmt, ...) ETHSIM_PRINTF_ATTR;
void LogInfo(const char* component, const char* fmt, ...) ETHSIM_PRINTF_ATTR;

// Operator-facing run-health reporting, gated by ETHSIM_PROGRESS instead of
// the diagnostics threshold (progress is opt-in status output, not a
// warning). Same stderr "[ethsim:<component>] progress: ..." shape so every
// binary reports health uniformly; wall-clock pacing lives in
// obs::ProgressReporter, never in simulation state.
bool ProgressEnabled();
void LogProgress(const char* component, const char* fmt, ...) ETHSIM_PRINTF_ATTR;
#undef ETHSIM_PRINTF_ATTR

}  // namespace ethsim::obs
