// Run manifest: a JSON document written next to every dataset/bench/telemetry
// output that pins down *exactly* which run produced it — config digest,
// seed, build identity, and a determinism digest (head hash + observer log
// digests + event count). Two manifests with equal config/determinism
// digests describe bit-for-bit identical runs; a determinism mismatch at
// equal config digests is a reproducibility bug.
//
// Naming note ("provenance" is used twice in this repo, deliberately split):
//   * obs/run_manifest  (this file)  — WHICH run produced an artifact set:
//     the manifest schema + build identity. Digest *computation* lives in
//     core/provenance (it needs the full ExperimentConfig).
//   * obs/provenance_dag             — WHAT happened inside a run: the
//     per-message relay/dissemination recorder behind ETHSIM_PROVENANCE.
//
// The manifest content is deterministic for a given (config, seed, build);
// wall-clock cost lives in the profiler stream, never here.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/sampler.hpp"

namespace ethsim::obs {

struct BuildInfo {
  std::string git_sha;     // short sha at configure time ("unknown" outside git)
  std::string build_type;  // CMAKE_BUILD_TYPE
  std::string compiler;    // compiler id + version
};

// Build identity baked in at compile time (see src/obs/CMakeLists.txt).
BuildInfo CurrentBuild();

struct RunManifest {
  std::string tool;               // producing binary ("quickstart", ...)
  std::string schema = "ethsim-run-manifest-v1";
  std::uint64_t seed = 0;
  std::string config_digest;      // hex keccak of the canonical config dump
  std::string determinism_digest; // hex keccak over run outputs (see core)
  std::uint64_t events_executed = 0;
  std::uint64_t head_number = 0;
  std::string head_hash;          // full hex
  double sim_duration_s = 0.0;
  bool metrics_enabled = false;
  bool trace_enabled = false;
  bool profile_enabled = false;
  bool provenance_enabled = false;
  // Rendered as telemetry.sample only when true, and the watermarks object
  // only when non-empty, so sampler-off manifests stay byte-identical to
  // pre-sampler output (same rule as the provenance/fault extras).
  bool sample_enabled = false;
  // Rendered as telemetry.txprov only when true (same byte-identity rule).
  bool txprov_enabled = false;
  std::vector<SeriesWatermark> watermarks;
  BuildInfo build = CurrentBuild();
  // Tool-specific annotations (seed lists, node counts, dataset paths...).
  std::vector<std::pair<std::string, std::string>> extra;
};

std::string ManifestToJson(const RunManifest& manifest);

// Writes `path` atomically enough for our purposes (single fstream); returns
// false and fills `error` (when non-null) with the failing path on error.
bool WriteManifest(const std::string& path, const RunManifest& manifest,
                   std::string* error = nullptr);

}  // namespace ethsim::obs
