// Geography model: world regions and a baseline inter-region one-way latency
// matrix (typical Internet-backbone figures). The paper's four vantage
// regions (NA, EA, WE, CE) are a subset; network nodes may live anywhere.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/time.hpp"

namespace ethsim::net {

enum class Region : std::uint8_t {
  NorthAmerica = 0,
  SouthAmerica,
  WesternEurope,
  CentralEurope,
  EasternEurope,
  EasternAsia,
  SoutheastAsia,
  Oceania,
};
inline constexpr std::size_t kRegionCount = 8;

std::string_view RegionName(Region r);       // "North America"
std::string_view RegionShortName(Region r);  // "NA"

// Baseline one-way propagation latency between region backbones. Actual link
// delay adds per-pair jitter and size/bandwidth cost (see LatencyModel).
Duration BaseOneWayLatency(Region from, Region to);

// All regions, for iteration.
std::array<Region, kRegionCount> AllRegions();

}  // namespace ethsim::net
