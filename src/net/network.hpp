// Point-to-point message delivery over the geographic substrate. The Network
// owns per-host locations/bandwidths and computes stochastic one-way delays:
//   delay = base(from,to) * jitter + size / min(bw_up, bw_down) + overhead
// Delivery preserves FIFO order per (from,to) pair, matching a TCP stream
// (devp2p runs over TCP; reordering on one connection is impossible).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "common/time.hpp"
#include "net/geo.hpp"
#include "sim/simulator.hpp"

namespace ethsim::net {

using HostId = std::uint32_t;

struct HostSpec {
  Region region = Region::WesternEurope;
  // Access link bandwidth in bits/second (paper's vantages: 8-10 Gbps;
  // typical peers far less).
  double bandwidth_bps = 100e6;
};

struct NetworkParams {
  // Multiplier on the baseline latency matrix. Calibrated so the four-vantage
  // block propagation delay distribution matches the paper's Fig 1
  // (median 74 ms): real overlay paths are last-mile + peering hops, not
  // backbone-optimal.
  double latency_scale = 1.7;
  // Lognormal jitter sigma applied multiplicatively to the base latency.
  // 0.8 reproduces the paper's heavy tail (p99/median ≈ 4x).
  double jitter_sigma = 0.8;
  // Fixed per-message processing overhead at the receiver.
  Duration per_message_overhead = Duration::Micros(300);
  // Rare slow-path events (TCP retransmission, bufferbloat, GC pause at the
  // peer): with this probability the sampled delay is stretched by a factor
  // uniform in [2, slow_path_factor_max]. Produces the heavy p99 tail of the
  // paper's Fig 1 (p99/median ≈ 4x).
  double slow_path_prob = 0.04;
  double slow_path_factor_max = 6.0;
  // Failure injection: probability that a message is silently lost (peer
  // disconnect mid-transfer, queue overflow). The gossip redundancy Table II
  // quantifies is exactly what tolerates this (Eugster et al., §III-A2).
  double drop_prob = 0.0;
};

class Network {
 public:
  Network(sim::Simulator& simulator, Rng rng, NetworkParams params);

  HostId AddHost(HostSpec spec);
  const HostSpec& host(HostId id) const { return hosts_[id]; }
  std::size_t host_count() const { return hosts_.size(); }

  // Samples the one-way delay for `bytes` from -> to (without queueing).
  Duration SampleDelay(HostId from, HostId to, std::size_t bytes);

  // Schedules `deliver` to run at the receiver after the sampled delay,
  // enforcing per-(from,to) FIFO ordering.
  void Send(HostId from, HostId to, std::size_t bytes, sim::EventFn deliver);

  sim::Simulator& simulator() { return sim_; }
  std::uint64_t messages_dropped() const { return dropped_; }

 private:
  std::uint64_t dropped_ = 0;
  sim::Simulator& sim_;
  Rng rng_;
  NetworkParams params_;
  std::vector<HostSpec> hosts_;
  // Last scheduled delivery time per directed pair, for FIFO clamping.
  // One dense row per source host, indexed by destination and grown lazily on
  // first send — a single array load on the hot path instead of a hash-map
  // probe per message. kNeverSent marks pairs with no traffic yet.
  static constexpr std::int64_t kNeverSent = INT64_MIN;
  std::vector<std::vector<std::int64_t>> fifo_last_us_;
};

// NTP-like clock error. Each host gets a fixed offset sampled from the
// envelope the paper cites (§II): |offset| < 10 ms in 90% of cases and
// < 100 ms in 99% of cases.
class ClockModel {
 public:
  explicit ClockModel(Rng rng) : rng_(rng) {}

  // Samples a host's clock offset (signed).
  Duration SampleOffset();

  // The error-bar half-width the paper uses when reporting (10 ms).
  static Duration TypicalError() { return Duration::Millis(10); }

 private:
  Rng rng_;
};

}  // namespace ethsim::net
