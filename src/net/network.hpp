// Point-to-point message delivery over the geographic substrate. The Network
// owns per-host locations/bandwidths and computes stochastic one-way delays:
//   delay = base(from,to) * jitter + size / min(bw_up, bw_down) + overhead
// Delivery preserves FIFO order per (from,to) pair, matching a TCP stream
// (devp2p runs over TCP; reordering on one connection is impossible).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.hpp"
#include "common/time.hpp"
#include "net/geo.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"

namespace ethsim::net {

using HostId = std::uint32_t;

struct HostSpec {
  Region region = Region::WesternEurope;
  // Access link bandwidth in bits/second (paper's vantages: 8-10 Gbps;
  // typical peers far less).
  double bandwidth_bps = 100e6;
};

struct NetworkParams {
  // Multiplier on the baseline latency matrix. Calibrated so the four-vantage
  // block propagation delay distribution matches the paper's Fig 1
  // (median 74 ms): real overlay paths are last-mile + peering hops, not
  // backbone-optimal.
  double latency_scale = 1.7;
  // Lognormal jitter sigma applied multiplicatively to the base latency.
  // 0.8 reproduces the paper's heavy tail (p99/median ≈ 4x).
  double jitter_sigma = 0.8;
  // Fixed per-message processing overhead at the receiver.
  Duration per_message_overhead = Duration::Micros(300);
  // Rare slow-path events (TCP retransmission, bufferbloat, GC pause at the
  // peer): with this probability the sampled delay is stretched by a factor
  // uniform in [2, slow_path_factor_max]. Produces the heavy p99 tail of the
  // paper's Fig 1 (p99/median ≈ 4x).
  double slow_path_prob = 0.04;
  double slow_path_factor_max = 6.0;
  // Failure injection: probability that a message is silently lost (peer
  // disconnect mid-transfer, queue overflow). The gossip redundancy Table II
  // quantifies is exactly what tolerates this (Eugster et al., §III-A2).
  double drop_prob = 0.0;
};

// Why a message was lost. kRandomLoss is the baseline `drop_prob` model;
// the other reasons are produced by the fault layer (src/fault) and make the
// census answer "was this loss background noise or an injected fault?".
enum class DropReason : std::uint8_t {
  kRandomLoss = 0,  // baseline stochastic loss (drop_prob)
  kPartitioned,     // cross-side send during an active regional partition
  kDegraded,        // extra loss inside a link-degradation window
  kOffline,         // delivery attempted at a crashed/churned-out node
};
inline constexpr std::size_t kDropReasonCount = 4;
std::string_view DropReasonName(DropReason reason);

// One row of the drop census: who lost how many messages of which kind, and
// why (the `faulted` dimension of the always-on census).
struct DropRecord {
  obs::MsgKind kind = obs::MsgKind::kOther;
  Region source_region = Region::WesternEurope;
  DropReason reason = DropReason::kRandomLoss;
  std::uint64_t count = 0;
};

// A latency/bandwidth degradation window applied by the fault layer to every
// link touching the scoped regions. Factors >= 1 stretch latency / shrink
// bandwidth; extra_drop_prob adds loss on top of the baseline drop_prob.
struct LinkDegradation {
  std::uint32_t region_mask = 0;  // bit i = Region(i) is affected
  double latency_factor = 1.0;
  double bandwidth_factor = 1.0;
  double extra_drop_prob = 0.0;
};

class Network {
 public:
  Network(sim::Simulator& simulator, Rng rng, NetworkParams params);

  HostId AddHost(HostSpec spec);
  const HostSpec& host(HostId id) const { return hosts_[id]; }
  std::size_t host_count() const { return hosts_.size(); }

  // Samples the one-way delay for `bytes` from -> to (without queueing).
  Duration SampleDelay(HostId from, HostId to, std::size_t bytes);

  // Schedules `deliver` to run at the receiver after the sampled delay,
  // enforcing per-(from,to) FIFO ordering. `kind` labels the message for the
  // telemetry/drop census; the kind-less overload tags kOther.
  void Send(HostId from, HostId to, std::size_t bytes, obs::MsgKind kind,
            sim::EventFn deliver);
  void Send(HostId from, HostId to, std::size_t bytes, sim::EventFn deliver) {
    Send(from, to, bytes, obs::MsgKind::kOther, std::move(deliver));
  }

  // Wires metrics counters and the in-flight tracer. Must be called before
  // traffic flows (counter registration touches the registry). Telemetry
  // records only — it never samples the RNG or schedules events, so an
  // attached run is bit-for-bit identical to a detached one.
  void AttachTelemetry(obs::Telemetry* telemetry);

  sim::Simulator& simulator() { return sim_; }

  // --- fault substrate (driven by fault::FaultController) ---------------
  // Regional partition: hosts whose region bit is set in `side_a_mask` form
  // one side; while active, cross-side sends are dropped deterministically
  // (reason kPartitioned) without consuming a single RNG draw, so arming a
  // partition cannot shift any other random stream. Intra-side traffic is
  // untouched.
  void SetPartition(std::uint32_t side_a_region_mask);
  void ClearPartition();
  bool partition_active() const { return partition_active_; }

  // Link degradation window (one active at a time; the fault layer validates
  // non-overlap). Latency/bandwidth factors apply inside SampleDelay; the
  // extra drop draw happens only while a window is active, so an inactive
  // window is bit-for-bit free.
  void SetDegradation(const LinkDegradation& degradation);
  void ClearDegradation();
  bool degradation_active() const { return degradation_active_; }

  // Attributes a delivery that found its target offline (crashed / churned
  // out). Called by EthNode ingress guards; kept here so the census stays the
  // single source of truth for every lost message.
  void NoteOfflineDrop(obs::MsgKind kind, Region target_region);

  Region region_of(HostId id) const { return hosts_[id].region; }

  // --- drop visibility -------------------------------------------------
  // The aggregate plus a per-(kind, source-region, reason) census. The
  // census is always on: drops are rare (off the hot path), and the paper's
  // whole redundancy argument (Table II) is about who can afford to lose
  // what.
  std::uint64_t messages_dropped() const { return dropped_; }
  std::uint64_t dropped_by(obs::MsgKind kind, Region region) const {
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < kDropReasonCount; ++r)
      total += drop_census_[r][static_cast<std::size_t>(kind)]
                           [static_cast<std::size_t>(region)];
    return total;
  }
  std::uint64_t dropped_by(DropReason reason) const {
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < obs::kMsgKindCount; ++k)
      for (std::size_t g = 0; g < kRegionCount; ++g)
        total += drop_census_[static_cast<std::size_t>(reason)][k][g];
    return total;
  }
  // Non-zero census rows, ordered by (reason, kind, region) — for
  // end-of-run reports.
  std::vector<DropRecord> DropReport() const;
  // Human-readable census ("announcement/WE [partitioned]: 12, ..."), empty
  // when no drops.
  std::string RenderDropReport() const;

  // --- in-flight accounting (state-sampler probes) ----------------------
  // Messages scheduled but not yet delivered, and their wire bytes. Tracked
  // only while a sampler is attached: Send wraps the deliver callback with
  // the decrement. Detached runs schedule the callback unwrapped — zero
  // overhead and an unchanged event graph, so the probe's existence cannot
  // perturb an unsampled run.
  std::uint64_t inflight_messages() const { return inflight_msgs_; }
  std::uint64_t inflight_bytes() const { return inflight_bytes_; }

 private:
  // Shared cold-path accounting for every dropped message.
  void CountDrop(obs::MsgKind kind, Region region, DropReason reason);

  std::uint64_t dropped_ = 0;
  sim::Simulator& sim_;
  Rng rng_;
  NetworkParams params_;
  std::vector<HostSpec> hosts_;
  // Last scheduled delivery time per directed pair, for FIFO clamping.
  // One dense row per source host, indexed by destination and grown lazily on
  // first send — a single array load on the hot path instead of a hash-map
  // probe per message. kNeverSent marks pairs with no traffic yet.
  static constexpr std::int64_t kNeverSent = INT64_MIN;
  std::vector<std::vector<std::int64_t>> fifo_last_us_;

  // Always-on drop census (cold path: only touched when a message drops),
  // indexed [reason][kind][source region].
  std::array<std::array<std::array<std::uint64_t, kRegionCount>,
                        obs::kMsgKindCount>,
             kDropReasonCount>
      drop_census_{};

  // In-flight accounting, live only while a sampler is attached (see
  // inflight_messages()).
  bool track_inflight_ = false;
  std::uint64_t inflight_msgs_ = 0;
  std::uint64_t inflight_bytes_ = 0;

  // Fault substrate state (inactive by default: the Send hot path pays one
  // predicted branch per gate).
  bool partition_active_ = false;
  std::uint32_t partition_mask_ = 0;
  bool degradation_active_ = false;
  LinkDegradation degradation_;

  // Telemetry (null = disabled; the Send hot path pays one predicted
  // branch). Instrument pointers are resolved once in AttachTelemetry.
  obs::Telemetry* telemetry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  // Dissemination-provenance recorder (null = disabled). The eth layer
  // stages an edge immediately before each Send; the network finalizes it
  // here — dropped with the mapped reason, or scheduled with the
  // FIFO-clamped arrival time.
  obs::ProvenanceRecorder* provenance_ = nullptr;
  std::array<obs::Counter*, obs::kMsgKindCount> sent_count_{};
  std::array<obs::Counter*, obs::kMsgKindCount> sent_bytes_{};
  std::array<std::array<obs::Counter*, kRegionCount>, obs::kMsgKindCount>
      drop_count_{};
  std::array<obs::Counter*, kDropReasonCount> drop_reason_count_{};
  obs::Histogram* delay_hist_ = nullptr;
};

// NTP-like clock error. Each host gets a fixed offset sampled from the
// envelope the paper cites (§II): |offset| < 10 ms in 90% of cases and
// < 100 ms in 99% of cases.
class ClockModel {
 public:
  explicit ClockModel(Rng rng) : rng_(rng) {}

  // Samples a host's clock offset (signed).
  Duration SampleOffset();

  // The error-bar half-width the paper uses when reporting (10 ms).
  static Duration TypicalError() { return Duration::Millis(10); }

 private:
  Rng rng_;
};

}  // namespace ethsim::net
