#include "net/geo.hpp"

namespace ethsim::net {

namespace {

// One-way latency in milliseconds, symmetric. Diagonal = intra-region.
// Figures approximate public backbone RTT/2 measurements (e.g. WonderNetwork,
// AWS inter-region) circa 2019.
constexpr double kLatencyMs[kRegionCount][kRegionCount] = {
    //      NA     SA     WE     CE     EE     EA    SEA     OC
    /*NA*/ {18.0, 75.0, 45.0, 55.0, 65.0, 85.0, 100.0, 80.0},
    /*SA*/ {75.0, 20.0, 95.0, 105.0, 115.0, 150.0, 160.0, 160.0},
    /*WE*/ {45.0, 95.0, 8.0, 10.0, 20.0, 110.0, 90.0, 140.0},
    /*CE*/ {55.0, 105.0, 10.0, 7.0, 12.0, 100.0, 85.0, 140.0},
    /*EE*/ {65.0, 115.0, 20.0, 12.0, 10.0, 80.0, 85.0, 150.0},
    /*EA*/ {85.0, 150.0, 110.0, 100.0, 80.0, 15.0, 35.0, 65.0},
    /*SEA*/ {100.0, 160.0, 90.0, 85.0, 85.0, 35.0, 18.0, 55.0},
    /*OC*/ {80.0, 160.0, 140.0, 140.0, 150.0, 65.0, 55.0, 12.0},
};

constexpr std::string_view kNames[kRegionCount] = {
    "North America", "South America", "Western Europe", "Central Europe",
    "Eastern Europe", "Eastern Asia",  "Southeast Asia", "Oceania",
};

constexpr std::string_view kShortNames[kRegionCount] = {"NA", "SA", "WE", "CE",
                                                        "EE", "EA", "SEA", "OC"};

}  // namespace

std::string_view RegionName(Region r) {
  return kNames[static_cast<std::size_t>(r)];
}

std::string_view RegionShortName(Region r) {
  return kShortNames[static_cast<std::size_t>(r)];
}

Duration BaseOneWayLatency(Region from, Region to) {
  const double ms =
      kLatencyMs[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  return Duration::Micros(static_cast<std::int64_t>(ms * 1000.0));
}

std::array<Region, kRegionCount> AllRegions() {
  return {Region::NorthAmerica, Region::SouthAmerica, Region::WesternEurope,
          Region::CentralEurope, Region::EasternEurope, Region::EasternAsia,
          Region::SoutheastAsia, Region::Oceania};
}

}  // namespace ethsim::net
