#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ethsim::net {

Network::Network(sim::Simulator& simulator, Rng rng, NetworkParams params)
    : sim_(simulator), rng_(rng), params_(params) {}

HostId Network::AddHost(HostSpec spec) {
  hosts_.push_back(spec);
  fifo_last_us_.emplace_back();  // per-destination row, grown on first send
  return static_cast<HostId>(hosts_.size() - 1);
}

Duration Network::SampleDelay(HostId from, HostId to, std::size_t bytes) {
  assert(from < hosts_.size() && to < hosts_.size());
  const HostSpec& src = hosts_[from];
  const HostSpec& dst = hosts_[to];

  const Duration base = BaseOneWayLatency(src.region, dst.region);
  // Lognormal with median 1.0: multiplicative jitter never goes negative and
  // has the heavy right tail real paths show.
  double jitter = rng_.NextLogNormal(0.0, params_.jitter_sigma);
  if (params_.slow_path_prob > 0 && rng_.NextBool(params_.slow_path_prob))
    jitter *= rng_.NextRange(2.0, params_.slow_path_factor_max);
  const double latency_us = static_cast<double>(base.micros()) *
                            params_.latency_scale * jitter;

  const double bw = std::min(src.bandwidth_bps, dst.bandwidth_bps);
  const double transfer_us = static_cast<double>(bytes) * 8.0 / bw * 1e6;

  return Duration::Micros(static_cast<std::int64_t>(latency_us + transfer_us)) +
         params_.per_message_overhead;
}

void Network::Send(HostId from, HostId to, std::size_t bytes, sim::EventFn deliver) {
  if (params_.drop_prob > 0 && rng_.NextBool(params_.drop_prob)) {
    ++dropped_;
    return;
  }
  const Duration delay = SampleDelay(from, to, bytes);
  TimePoint arrival = sim_.Now() + delay;

  std::vector<std::int64_t>& row = fifo_last_us_[from];
  if (row.size() <= to) row.resize(hosts_.size(), kNeverSent);
  std::int64_t& last_us = row[to];
  // TCP stream semantics: a later send on the same connection can never
  // arrive before an earlier one.
  if (last_us != kNeverSent && arrival.micros() < last_us)
    arrival = TimePoint::FromMicros(last_us);
  last_us = arrival.micros();
  sim_.ScheduleAt(arrival, std::move(deliver));
}

Duration ClockModel::SampleOffset() {
  // Mixture fitted to the paper's NTP envelope: 90% under 10 ms, 99% under
  // 100 ms, worst cases bounded by 250 ms.
  const double u = rng_.NextDouble();
  double magnitude_ms;
  if (u < 0.90) {
    magnitude_ms = rng_.NextRange(0.0, 10.0);
  } else if (u < 0.99) {
    magnitude_ms = rng_.NextRange(10.0, 100.0);
  } else {
    magnitude_ms = rng_.NextRange(100.0, 250.0);
  }
  const double sign = rng_.NextBool(0.5) ? 1.0 : -1.0;
  return Duration::Micros(static_cast<std::int64_t>(sign * magnitude_ms * 1000.0));
}

}  // namespace ethsim::net
