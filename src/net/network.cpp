#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace ethsim::net {

std::string_view DropReasonName(DropReason reason) {
  switch (reason) {
    case DropReason::kRandomLoss: return "random_loss";
    case DropReason::kPartitioned: return "partitioned";
    case DropReason::kDegraded: return "degraded";
    case DropReason::kOffline: return "offline";
  }
  return "?";
}

namespace {

// DropReason -> EdgeDrop (shifted by one: EdgeDrop reserves 0 for
// "delivered"). Kept as an explicit map so the obs layer stays free of net
// includes and a reorder in either enum turns into a compile break here.
obs::EdgeDrop ToEdgeDrop(DropReason reason) {
  switch (reason) {
    case DropReason::kRandomLoss: return obs::EdgeDrop::kRandomLoss;
    case DropReason::kPartitioned: return obs::EdgeDrop::kPartitioned;
    case DropReason::kDegraded: return obs::EdgeDrop::kDegraded;
    case DropReason::kOffline: return obs::EdgeDrop::kOffline;
  }
  return obs::EdgeDrop::kNone;
}

}  // namespace

Network::Network(sim::Simulator& simulator, Rng rng, NetworkParams params)
    : sim_(simulator), rng_(rng), params_(params) {}

HostId Network::AddHost(HostSpec spec) {
  hosts_.push_back(spec);
  fifo_last_us_.emplace_back();  // per-destination row, grown on first send
  return static_cast<HostId>(hosts_.size() - 1);
}

Duration Network::SampleDelay(HostId from, HostId to, std::size_t bytes) {
  assert(from < hosts_.size() && to < hosts_.size());
  const HostSpec& src = hosts_[from];
  const HostSpec& dst = hosts_[to];

  const Duration base = BaseOneWayLatency(src.region, dst.region);
  // Lognormal with median 1.0: multiplicative jitter never goes negative and
  // has the heavy right tail real paths show.
  double jitter = rng_.NextLogNormal(0.0, params_.jitter_sigma);
  if (params_.slow_path_prob > 0 && rng_.NextBool(params_.slow_path_prob))
    jitter *= rng_.NextRange(2.0, params_.slow_path_factor_max);
  double latency_us = static_cast<double>(base.micros()) *
                      params_.latency_scale * jitter;

  double bw = std::min(src.bandwidth_bps, dst.bandwidth_bps);
  // Degradation window (fault layer): stretch latency / shrink bandwidth on
  // links touching the scoped regions. Applied after every RNG draw above,
  // so activating a window never shifts the jitter stream itself.
  if (degradation_active_) [[unlikely]] {
    const std::uint32_t touched =
        (1u << static_cast<unsigned>(src.region)) |
        (1u << static_cast<unsigned>(dst.region));
    if ((touched & degradation_.region_mask) != 0) {
      latency_us *= degradation_.latency_factor;
      bw /= degradation_.bandwidth_factor;
    }
  }
  const double transfer_us = static_cast<double>(bytes) * 8.0 / bw * 1e6;

  return Duration::Micros(static_cast<std::int64_t>(latency_us + transfer_us)) +
         params_.per_message_overhead;
}

void Network::AttachTelemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  tracer_ = nullptr;
  // In-flight accounting exists for the sampler's probes alone; without one
  // Send schedules the raw callback and the counters stay untouched.
  track_inflight_ = telemetry != nullptr && telemetry->sampler() != nullptr;
  provenance_ = telemetry != nullptr ? telemetry->provenance() : nullptr;
  sent_count_.fill(nullptr);
  sent_bytes_.fill(nullptr);
  for (auto& row : drop_count_) row.fill(nullptr);
  delay_hist_ = nullptr;
  if (telemetry_ == nullptr) return;

  if (obs::Tracer* tracer = telemetry_->tracer();
      tracer != nullptr && tracer->enabled(obs::TraceCategory::kNet)) {
    tracer_ = tracer;
  }

  obs::MetricsRegistry* metrics = telemetry_->metrics();
  if (metrics == nullptr) {
    // No registry: keep only the tracer (if any). The always-on census still
    // records drops.
    if (tracer_ == nullptr) telemetry_ = nullptr;
    return;
  }

  // Register every (kind) and (kind, region) combination up front so the
  // registry contents — and therefore the metrics.jsonl stream — are a fixed
  // function of the config, not of which messages happened to flow.
  for (std::size_t k = 0; k < obs::kMsgKindCount; ++k) {
    const auto kind = static_cast<obs::MsgKind>(k);
    const std::string_view kind_name = obs::MsgKindName(kind);
    sent_count_[k] = metrics->GetCounter(
        obs::LabeledName("net.msg.sent", {{"kind", kind_name}}));
    sent_bytes_[k] = metrics->GetCounter(
        obs::LabeledName("net.msg.sent_bytes", {{"kind", kind_name}}));
    for (Region region : AllRegions()) {
      drop_count_[k][static_cast<std::size_t>(region)] = metrics->GetCounter(
          obs::LabeledName("net.msg.dropped",
                           {{"kind", kind_name},
                            {"region", RegionShortName(region)}}));
    }
  }
  for (std::size_t r = 0; r < kDropReasonCount; ++r)
    drop_reason_count_[r] = metrics->GetCounter(obs::LabeledName(
        "net.msg.dropped_reason",
        {{"reason", DropReasonName(static_cast<DropReason>(r))}}));
  delay_hist_ =
      metrics->GetHistogram("net.delay_us", obs::LatencyBucketsUs());
}

void Network::SetPartition(std::uint32_t side_a_region_mask) {
  partition_active_ = true;
  partition_mask_ = side_a_region_mask;
}

void Network::ClearPartition() {
  partition_active_ = false;
  partition_mask_ = 0;
}

void Network::SetDegradation(const LinkDegradation& degradation) {
  degradation_active_ = true;
  degradation_ = degradation;
}

void Network::ClearDegradation() {
  degradation_active_ = false;
  degradation_ = LinkDegradation{};
}

void Network::CountDrop(obs::MsgKind kind, Region region, DropReason reason) {
  // Cold path: drops are rare by construction, so the census (and the
  // optional registry counters) cost nothing on the common path.
  ++dropped_;
  ++drop_census_[static_cast<std::size_t>(reason)]
                [static_cast<std::size_t>(kind)]
                [static_cast<std::size_t>(region)];
  if (telemetry_ != nullptr) [[unlikely]] {
    if (obs::Counter* c = drop_count_[static_cast<std::size_t>(kind)]
                                     [static_cast<std::size_t>(region)])
      c->Add();
    if (obs::Counter* c = drop_reason_count_[static_cast<std::size_t>(reason)])
      c->Add();
  }
}

void Network::NoteOfflineDrop(obs::MsgKind kind, Region target_region) {
  CountDrop(kind, target_region, DropReason::kOffline);
}

void Network::Send(HostId from, HostId to, std::size_t bytes,
                   obs::MsgKind kind, sim::EventFn deliver) {
  // Partition gate first: deterministic (no RNG), so an armed partition
  // cannot perturb the jitter/drop streams of surviving intra-side traffic.
  if (partition_active_) [[unlikely]] {
    const std::uint32_t side_from =
        (partition_mask_ >> static_cast<unsigned>(hosts_[from].region)) & 1u;
    const std::uint32_t side_to =
        (partition_mask_ >> static_cast<unsigned>(hosts_[to].region)) & 1u;
    if (side_from != side_to) {
      CountDrop(kind, hosts_[from].region, DropReason::kPartitioned);
      if (provenance_ != nullptr) [[unlikely]]
        provenance_->FinalizeDropped(from, to,
                                     ToEdgeDrop(DropReason::kPartitioned));
      return;
    }
  }
  if (params_.drop_prob > 0 && rng_.NextBool(params_.drop_prob)) {
    CountDrop(kind, hosts_[from].region, DropReason::kRandomLoss);
    if (provenance_ != nullptr) [[unlikely]]
      provenance_->FinalizeDropped(from, to,
                                   ToEdgeDrop(DropReason::kRandomLoss));
    return;
  }
  // Degradation loss draws RNG only while a window is active; outside a
  // window this branch is bit-for-bit free.
  if (degradation_active_ && degradation_.extra_drop_prob > 0) [[unlikely]] {
    const std::uint32_t touched =
        (1u << static_cast<unsigned>(hosts_[from].region)) |
        (1u << static_cast<unsigned>(hosts_[to].region));
    if ((touched & degradation_.region_mask) != 0 &&
        rng_.NextBool(degradation_.extra_drop_prob)) {
      CountDrop(kind, hosts_[from].region, DropReason::kDegraded);
      if (provenance_ != nullptr) [[unlikely]]
        provenance_->FinalizeDropped(from, to,
                                     ToEdgeDrop(DropReason::kDegraded));
      return;
    }
  }
  const Duration delay = SampleDelay(from, to, bytes);
  TimePoint arrival = sim_.Now() + delay;

  std::vector<std::int64_t>& row = fifo_last_us_[from];
  if (row.size() <= to) row.resize(hosts_.size(), kNeverSent);
  std::int64_t& last_us = row[to];
  // TCP stream semantics: a later send on the same connection can never
  // arrive before an earlier one.
  if (last_us != kNeverSent && arrival.micros() < last_us)
    arrival = TimePoint::FromMicros(last_us);
  last_us = arrival.micros();

  // Record-only instrumentation: nothing below samples rng_ or schedules
  // events, so an attached run replays the detached run exactly.
  if (provenance_ != nullptr) [[unlikely]]
    provenance_->FinalizeScheduled(from, to, arrival.micros());
  if (telemetry_ != nullptr) [[unlikely]] {
    const auto k = static_cast<std::size_t>(kind);
    if (sent_count_[k] != nullptr) {
      sent_count_[k]->Add();
      sent_bytes_[k]->Add(bytes);
      delay_hist_->Observe(arrival.micros() - sim_.Now().micros());
    }
    if (tracer_ != nullptr) {
      obs::TraceEvent event;
      event.name = "net.send";
      event.arg_kind = obs::MsgKindName(kind).data();
      event.ts_us = sim_.Now().micros();
      event.dur_us = arrival.micros() - sim_.Now().micros();
      event.arg_num = bytes;
      event.pid = from;
      event.tid = to;
      event.cat = obs::TraceCategory::kNet;
      event.phase = 'X';
      tracer_->Emit(event);
    }
  }

  if (track_inflight_) [[unlikely]] {
    ++inflight_msgs_;
    inflight_bytes_ += bytes;
    // The wrapper exceeds the Callback SBO and heap-allocates — acceptable
    // on the sampled path, never taken on the default one. Decrement happens
    // before the payload runs so a probe firing at the same instant sees the
    // message as delivered, matching the engine's (time, seq) order.
    sim_.ScheduleAt(arrival, sim::EventFn(
        [this, bytes, fn = std::move(deliver)]() mutable {
          --inflight_msgs_;
          inflight_bytes_ -= bytes;
          fn();
        }));
    return;
  }
  sim_.ScheduleAt(arrival, std::move(deliver));
}

std::vector<DropRecord> Network::DropReport() const {
  std::vector<DropRecord> report;
  for (std::size_t reason = 0; reason < kDropReasonCount; ++reason) {
    for (std::size_t k = 0; k < obs::kMsgKindCount; ++k) {
      for (std::size_t r = 0; r < kRegionCount; ++r) {
        const std::uint64_t count = drop_census_[reason][k][r];
        if (count == 0) continue;
        report.push_back(DropRecord{static_cast<obs::MsgKind>(k),
                                    static_cast<Region>(r),
                                    static_cast<DropReason>(reason), count});
      }
    }
  }
  return report;
}

std::string Network::RenderDropReport() const {
  const std::vector<DropRecord> report = DropReport();
  if (report.empty()) return {};
  std::ostringstream out;
  out << "dropped " << dropped_ << " message(s): ";
  bool first = true;
  for (const DropRecord& record : report) {
    if (!first) out << ", ";
    first = false;
    out << obs::MsgKindName(record.kind) << '/'
        << RegionShortName(record.source_region) << " ["
        << DropReasonName(record.reason) << "]: " << record.count;
  }
  return out.str();
}

Duration ClockModel::SampleOffset() {
  // Mixture fitted to the paper's NTP envelope: 90% under 10 ms, 99% under
  // 100 ms, worst cases bounded by 250 ms.
  const double u = rng_.NextDouble();
  double magnitude_ms;
  if (u < 0.90) {
    magnitude_ms = rng_.NextRange(0.0, 10.0);
  } else if (u < 0.99) {
    magnitude_ms = rng_.NextRange(10.0, 100.0);
  } else {
    magnitude_ms = rng_.NextRange(100.0, 250.0);
  }
  const double sign = rng_.NextBool(0.5) ? 1.0 : -1.0;
  return Duration::Micros(static_cast<std::int64_t>(sign * magnitude_ms * 1000.0));
}

}  // namespace ethsim::net
