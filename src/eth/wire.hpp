// eth/63 wire formats. Messages exchanged by EthNode are modeled as C++
// objects for speed, but their on-the-wire size — which drives the bandwidth
// model — comes from the real RLP encoding implemented here. The codecs
// round-trip, so the simulator could exchange actual bytes; see wire tests.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/block.hpp"
#include "chain/transaction.hpp"
#include "common/rlp.hpp"

namespace ethsim::eth::wire {

// devp2p message ids for the eth/63 capability (subset used here).
enum class MsgId : std::uint8_t {
  kStatus = 0x00,
  kNewBlockHashes = 0x01,
  kTransactions = 0x02,
  kGetBlockHeaders = 0x03,  // stands in for our GetBlock fetch
  kNewBlock = 0x07,
};

// STATUS: protocolVersion, networkId, totalDifficulty, head, genesis.
struct Status {
  std::uint32_t protocol_version = 63;
  std::uint64_t network_id = 1;
  std::uint64_t total_difficulty = 0;
  Hash32 head;
  Hash32 genesis;
};
rlp::Bytes EncodeStatus(const Status& status);
bool DecodeStatus(const rlp::Bytes& data, Status& out);

// NEW_BLOCK_HASHES: [[hash, number], ...].
struct Announcement {
  Hash32 hash;
  std::uint64_t number = 0;
};
rlp::Bytes EncodeAnnouncements(const std::vector<Announcement>& anns);
bool DecodeAnnouncements(const rlp::Bytes& data, std::vector<Announcement>& out);

// TRANSACTIONS: [tx, ...].
rlp::Bytes EncodeTransactions(const std::vector<chain::Transaction>& txs);
bool DecodeTransactions(const rlp::Bytes& data,
                        std::vector<chain::Transaction>& out);

// GET_BLOCK (simplified GetBlockHeaders by hash).
rlp::Bytes EncodeGetBlock(const Hash32& hash);
bool DecodeGetBlock(const rlp::Bytes& data, Hash32& out);

// NEW_BLOCK: [block(header, txs, uncles), totalDifficulty].
rlp::Bytes EncodeNewBlock(const chain::Block& block,
                          std::uint64_t total_difficulty);
bool DecodeNewBlock(const rlp::Bytes& data, chain::Block& out,
                    std::uint64_t& total_difficulty);

// Exact wire sizes (encoding length + 1-byte msg id), used by the bandwidth
// model. These agree with the Encode* results by construction (tested).
std::size_t NewBlockWireSize(const chain::Block& block);
std::size_t AnnouncementsWireSize(std::size_t count);
std::size_t TransactionsWireSize(const std::vector<chain::Transaction>& txs);
std::size_t GetBlockWireSize();

}  // namespace ethsim::eth::wire
