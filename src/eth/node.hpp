// The full-node model: a Geth-1.8-like client speaking a simplified eth/63.
//   - NewBlock      — unsolicited full-block push to ~sqrt(peers)
//   - NewBlockHashes— hash announcement to the remaining peers after import
//   - GetBlock      — fetch of an announced-but-unknown block
//   - Transactions  — batched transaction relay to all peers not known to
//                     have a transaction
// Each node owns its private view of the chain (BlockTree) and a TxPool, and
// tracks per-peer known-block/known-tx caches exactly like Geth's
// peer.knownBlocks/knownTxs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "chain/blocktree.hpp"
#include "chain/txpool.hpp"
#include "common/bounded_set.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "eth/sink.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "p2p/node_id.hpp"
#include "sim/simulator.hpp"

namespace ethsim::eth {

// A Transactions wire message: one flush-wide immutable batch shared by every
// receiving peer, plus an optional per-peer index filter. The common case —
// a peer that needs the whole batch — carries just two shared_ptr copies
// instead of duplicating every Transaction per peer.
struct TxBatchView {
  std::shared_ptr<const std::vector<chain::Transaction>> txs;
  // Indices into *txs this peer should receive; null means the whole batch.
  std::shared_ptr<const std::vector<std::uint32_t>> subset;

  std::size_t count() const { return subset ? subset->size() : txs->size(); }
};

// Block relay strategy — Geth's sqrt-push is the default; the alternatives
// exist for the ablation benches (bandwidth/latency/redundancy tradeoff).
enum class RelayMode {
  kSqrtPush,     // full block to ~sqrt(peers), hash announce to the rest
  kPushAll,      // full block to every unaware peer (max speed, max waste)
  kAnnounceOnly, // hash announcements only; everyone fetches (min waste)
};

struct NodeConfig {
  // Geth's default maxpeers is 25; the paper's vantage nodes ran unlimited.
  std::size_t max_peers = 25;
  RelayMode relay_mode = RelayMode::kSqrtPush;
  // Tx broadcast batching window (Geth flushes its per-peer queues promptly;
  // a small window models the syscall/scheduler granularity).
  Duration tx_flush_interval = Duration::Millis(100);
  // PoW/header sanity check before eager push relay.
  Duration header_check_delay = Duration::Millis(3);
  // Full validation before import: base + per-transaction execution
  // (state-root computation dominated real Geth 1.8 imports: ~100-500 ms).
  // This is what stretches the propagation wave far beyond a single link
  // latency — and why announcements rarely flow backwards (Table II) — and
  // the asymmetry that gives empty blocks a relay head start (§III-C3).
  Duration base_validation = Duration::Millis(150);
  Duration per_tx_validation = Duration::Micros(250);
  // Host-speed multiplier on validation (1.0 = provisioned hardware).
  // Commodity peers run slow disks/CPUs and import in seconds; this
  // heterogeneity stretches the propagation wave relative to link latency,
  // which is what keeps redundant back-announcements low (Table II).
  double validation_speed_factor = 1.0;
  // Per-peer known caches only need to span the propagation window (relay
  // dedupe happens within seconds); small caps keep memory flat on
  // day-scale simulations with thousands of peer links.
  std::size_t known_txs_cap = 1024;
  std::size_t known_blocks_cap = 256;
  // Node-level seen-tx horizon (admission dedupe) can be longer.
  std::size_t seen_txs_cap = 16384;
  // A GetBlock fetch that produced no response within this window is
  // forgotten, so a later announcement can re-trigger it (Geth's fetcher
  // timeout). Without this, one lost fetch poisons the hash forever.
  Duration fetch_retry_timeout = Duration::Seconds(5);
};

class EthNode {
 public:
  EthNode(sim::Simulator& simulator, net::Network& network, net::HostId host,
          p2p::NodeId id, chain::BlockPtr genesis, NodeConfig config, Rng rng);

  EthNode(const EthNode&) = delete;
  EthNode& operator=(const EthNode&) = delete;

  // --- identity / wiring -------------------------------------------------
  net::HostId host() const { return host_; }
  const p2p::NodeId& id() const { return id_; }
  net::Region region() const;

  // Establishes a mutual connection. Returns false if either side is full
  // or offline, they are already connected, or it is a self-dial.
  static bool Connect(EthNode& a, EthNode& b);
  // Tears down a mutual connection; both peer vectors stay consistent (the
  // churn primitive). Returns false when the two were not connected.
  static bool Disconnect(EthNode& a, EthNode& b);
  // Drops every peer link (both sides); returns how many were severed.
  std::size_t DisconnectAll();
  std::size_t peer_count() const { return peers_.size(); }
  bool ConnectedTo(const EthNode& other) const;
  std::size_t max_peers() const { return config_.max_peers; }

  // --- fault hooks (driven by fault::FaultController) ---------------------
  // A crashed/churned-out node: all peer links are severed, in-flight relay
  // state (importing/requested sets, tx broadcast queue) is lost, and the
  // session epoch advances so callbacks scheduled before the crash become
  // no-ops. The chain tree and txpool survive — they model disk state — so a
  // restart resumes from the pre-crash head and back-fills missed blocks via
  // the orphan parent-fetch path when the next block arrives.
  bool online() const { return online_; }
  void GoOffline();
  void GoOnline();
  // Messages that reached this node while it was offline (also attributed in
  // the Network drop census under reason `offline`).
  std::uint64_t offline_drops() const { return offline_drops_; }

  void set_sink(MessageSink* sink) { sink_ = sink; }
  // Wires block-lifecycle tracing and per-region import/head counters.
  // `trace_lane` becomes the Perfetto pid for this node's events (the
  // experiment uses the node's build index). Telemetry records only: it never
  // samples rng_ or schedules events, so attaching it cannot change a run.
  void AttachTelemetry(obs::Telemetry* telemetry, std::uint32_t trace_lane);
  // Invoked whenever the canonical head changes (miners re-target here).
  void set_head_callback(std::function<void(chain::BlockPtr)> cb) {
    on_new_head_ = std::move(cb);
  }

  // --- local actions ------------------------------------------------------
  // A user submits a transaction at this node (enters pool + gossip).
  void SubmitTransaction(const chain::Transaction& tx);
  // A mining pool releases a freshly mined block through this gateway node.
  void InjectMinedBlock(chain::BlockPtr block);

  // --- chain state --------------------------------------------------------
  const chain::BlockTree& tree() const { return tree_; }
  const chain::TxPool& pool() const { return pool_; }
  chain::TxPool& mutable_pool() { return pool_; }
  // Total entries across the dedup caches (seen_txs_ plus every peer's
  // known_blocks/known_txs) — the node's gossip working-set size, recorded
  // by the state sampler. Bounded by config caps; a plateau at the cap is
  // the expected steady state.
  std::size_t known_cache_entries() const {
    std::size_t total = seen_txs_.size();
    for (const Peer& peer : peers_)
      total += peer.known_blocks.size() + peer.known_txs.size();
    return total;
  }
  // Blocks rejected by consensus validation at import.
  std::uint64_t invalid_blocks() const { return invalid_blocks_; }

  // --- wire ingress (invoked by peers through the Network) ----------------
  void DeliverNewBlock(EthNode* from, chain::BlockPtr block);
  void DeliverAnnouncement(EthNode* from, const Hash32& hash,
                           std::uint64_t number);
  void DeliverGetBlock(EthNode* from, const Hash32& hash);
  void DeliverBlockResponse(EthNode* from, chain::BlockPtr block);
  void DeliverTransactions(EthNode* from, const TxBatchView& batch);

 private:
  struct Peer {
    EthNode* node = nullptr;
    BoundedSet<Hash32> known_blocks;
    BoundedSet<Hash32> known_txs;
  };

  Peer* FindPeer(const EthNode* node);
  void MarkKnowsBlock(EthNode* from, const Hash32& hash);

  // Single-sided peer-vector maintenance. AddPeer enforces capacity and
  // duplicate checks; RemovePeer erases in place preserving order, so the
  // relay shuffle and announcement iteration stay consistent with the
  // surviving peer set. Both are private: external callers go through
  // Connect/Disconnect, which keep the two sides symmetric.
  bool AddPeer(EthNode* node);
  bool RemovePeer(const EthNode* node);
  // True when a message arriving now must be discarded (node offline); also
  // attributes the loss in the Network drop census.
  bool DropIngress(obs::MsgKind kind);

  // Relay pipeline.
  void HandleIncomingBlock(EthNode* from, chain::BlockPtr block);
  void PushToSqrtPeers(const chain::BlockPtr& block);
  void AnnounceToOtherPeers(const chain::BlockPtr& block);
  void ImportBlock(chain::BlockPtr block, EthNode* origin);
  Duration ValidationDelay(const chain::Block& block) const;

  // Feeds a BlockTree edit (retired blocks' orphan-returned txs, adopted
  // blocks' included txs, head advance) to the tx-lifecycle recorder.
  // Callers check txprov_ != nullptr first (hot-path single-branch contract).
  void RecordChainEdit(const chain::BlockTree::AddResult& result,
                       bool new_head);

  void QueueTxForBroadcast(const chain::Transaction& tx);
  void FlushTxBroadcast();

  void SendNewBlock(Peer& peer, const chain::BlockPtr& block);
  void SendAnnouncement(Peer& peer, const chain::BlockPtr& block);

  // Emits a block-lifecycle instant on this node's trace lane. Callers check
  // block_tracer_ != nullptr first (hot-path single-branch contract).
  void TraceBlockInstant(const char* name, const char* arg_kind,
                         const Hash32& hash, std::uint64_t number);

  sim::Simulator& sim_;
  net::Network& net_;
  net::HostId host_;
  p2p::NodeId id_;
  NodeConfig config_;
  Rng rng_;

  chain::BlockTree tree_;
  chain::TxPool pool_;
  std::vector<Peer> peers_;

  BoundedSet<Hash32> seen_txs_;
  std::unordered_set<Hash32> importing_;  // full block received, pre-import
  std::unordered_set<Hash32> requested_;  // GetBlock in flight

  std::vector<chain::Transaction> tx_broadcast_queue_;
  bool flush_scheduled_ = false;
  std::uint64_t invalid_blocks_ = 0;

  // Fault state. The epoch advances on every crash; internal scheduled
  // callbacks capture it and fire only when it still matches, so pre-crash
  // validation/import/flush timers cannot leak into a restarted session.
  bool online_ = true;
  std::uint32_t epoch_ = 0;
  std::uint64_t offline_drops_ = 0;

  // Scratch buffers reused across relay rounds (no per-call allocations).
  std::vector<std::uint32_t> relay_order_;   // PushToSqrtPeers shuffle
  std::vector<std::uint32_t> flush_subset_;  // FlushTxBroadcast per-peer filter

  MessageSink* sink_ = nullptr;
  std::function<void(chain::BlockPtr)> on_new_head_;

  // Telemetry (null = disabled; one predicted branch per hook). Instrument
  // pointers are resolved once in AttachTelemetry for this node's region.
  // prov_ is the dissemination-provenance recorder: every outbound message
  // stages an edge immediately before net_.Send (the Network finalizes it)
  // and every ingress resolves its delivery — see obs/provenance_dag.hpp.
  obs::ProvenanceRecorder* prov_ = nullptr;
  // txprov_ is the transaction-lifecycle recorder: pool outcomes at every
  // host, vantage first-seens, and the anchor's include/orphan/commit
  // timeline — see obs/tx_provenance.hpp.
  obs::TxProvRecorder* txprov_ = nullptr;
  obs::Tracer* block_tracer_ = nullptr;  // kBlock category pre-checked
  obs::Tracer* tx_tracer_ = nullptr;     // kTx category pre-checked
  obs::Counter* imported_count_ = nullptr;
  obs::Counter* head_count_ = nullptr;
  obs::Counter* invalid_count_ = nullptr;
  obs::Counter* tx_received_count_ = nullptr;
  obs::Histogram* validate_hist_ = nullptr;
  std::uint32_t trace_lane_ = 0;
};

// Wire-size constants (approximate devp2p framing).
inline constexpr std::size_t kAnnouncementWireSize = 44;
inline constexpr std::size_t kGetBlockWireSize = 40;
inline constexpr std::size_t kTxBatchOverhead = 16;

}  // namespace ethsim::eth
