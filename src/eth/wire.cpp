#include "eth/wire.hpp"

namespace ethsim::eth::wire {

namespace {

// Encoders for the nested pieces.

// Real mainnet headers additionally carry stateRoot, receiptsRoot and the
// 256-byte logs bloom; the simulator's chain state doesn't produce them, but
// the wire format includes placeholder fields so encoded sizes match what a
// Geth 1.8 peer would actually transfer (~500 B/header).
void WriteHeader(rlp::Encoder& e, const chain::BlockHeader& h) {
  static const std::vector<std::uint8_t> kBloomPlaceholder(256, 0);
  e.BeginList();
  e.WriteFixed(h.parent_hash);
  e.WriteFixed(h.uncle_root);   // ommersHash slot
  e.WriteFixed(h.miner);
  e.WriteFixed(Hash32{});       // stateRoot placeholder
  e.WriteFixed(h.tx_root);
  e.WriteFixed(Hash32{});       // receiptsRoot placeholder
  e.WriteBytes(kBloomPlaceholder);
  e.WriteUint(h.difficulty);
  e.WriteUint(h.number);
  e.WriteUint(h.gas_limit);
  e.WriteUint(h.gas_used);
  e.WriteUint(h.timestamp);
  e.WriteUint(h.mix_seed);
  e.EndList();
}

bool ReadHeader(const rlp::Item& item, chain::BlockHeader& h) {
  if (!item.is_list || item.items.size() != 13) return false;
  h.parent_hash = item.items[0].AsFixed<32>();
  h.uncle_root = item.items[1].AsFixed<32>();
  h.miner = item.items[2].AsFixed<20>();
  h.tx_root = item.items[4].AsFixed<32>();
  h.difficulty = item.items[7].AsUint();
  h.number = item.items[8].AsUint();
  h.gas_limit = item.items[9].AsUint();
  h.gas_used = item.items[10].AsUint();
  h.timestamp = item.items[11].AsUint();
  h.mix_seed = item.items[12].AsUint();
  return true;
}

// Real transactions carry a 65-byte secp256k1 signature (v,r,s) instead of
// an explicit sender; the simulator identifies senders directly but the wire
// format ships a signature placeholder so sizes match mainnet (~110 B for a
// plain transfer) plus the declared calldata bytes.
void WriteTx(rlp::Encoder& e, const chain::Transaction& tx) {
  static const std::vector<std::uint8_t> kSigPlaceholder(65, 0);
  e.BeginList();
  e.WriteFixed(tx.sender);
  e.WriteUint(tx.nonce);
  e.WriteFixed(tx.to);
  e.WriteUint(tx.value);
  e.WriteUint(tx.gas_limit);
  e.WriteUint(tx.gas_price);
  // Calldata rides as an opaque blob of the declared length.
  e.WriteBytes(std::vector<std::uint8_t>(tx.payload_bytes, 0));
  e.WriteBytes(kSigPlaceholder);
  e.EndList();
}

bool ReadTx(const rlp::Item& item, chain::Transaction& tx) {
  if (!item.is_list || item.items.size() != 8) return false;
  tx.sender = item.items[0].AsFixed<20>();
  tx.nonce = item.items[1].AsUint();
  tx.to = item.items[2].AsFixed<20>();
  tx.value = item.items[3].AsUint();
  tx.gas_limit = item.items[4].AsUint();
  tx.gas_price = item.items[5].AsUint();
  tx.payload_bytes = static_cast<std::uint32_t>(item.items[6].data.size());
  if (item.items[7].data.size() != 65) return false;
  tx.Seal();
  return true;
}

}  // namespace

rlp::Bytes EncodeStatus(const Status& status) {
  rlp::Encoder e;
  e.BeginList();
  e.WriteUint(status.protocol_version);
  e.WriteUint(status.network_id);
  e.WriteUint(status.total_difficulty);
  e.WriteFixed(status.head);
  e.WriteFixed(status.genesis);
  e.EndList();
  return e.Take();
}

bool DecodeStatus(const rlp::Bytes& data, Status& out) {
  rlp::Item item;
  if (!rlp::Decode(data, item) || !item.is_list || item.items.size() != 5)
    return false;
  out.protocol_version = static_cast<std::uint32_t>(item.items[0].AsUint());
  out.network_id = item.items[1].AsUint();
  out.total_difficulty = item.items[2].AsUint();
  out.head = item.items[3].AsFixed<32>();
  out.genesis = item.items[4].AsFixed<32>();
  return true;
}

rlp::Bytes EncodeAnnouncements(const std::vector<Announcement>& anns) {
  rlp::Encoder e;
  e.BeginList();
  for (const auto& ann : anns) {
    e.BeginList();
    e.WriteFixed(ann.hash);
    e.WriteUint(ann.number);
    e.EndList();
  }
  e.EndList();
  return e.Take();
}

bool DecodeAnnouncements(const rlp::Bytes& data, std::vector<Announcement>& out) {
  rlp::Item item;
  if (!rlp::Decode(data, item) || !item.is_list) return false;
  out.clear();
  for (const auto& entry : item.items) {
    if (!entry.is_list || entry.items.size() != 2) return false;
    out.push_back({entry.items[0].AsFixed<32>(), entry.items[1].AsUint()});
  }
  return true;
}

rlp::Bytes EncodeTransactions(const std::vector<chain::Transaction>& txs) {
  rlp::Encoder e;
  e.BeginList();
  for (const auto& tx : txs) WriteTx(e, tx);
  e.EndList();
  return e.Take();
}

bool DecodeTransactions(const rlp::Bytes& data,
                        std::vector<chain::Transaction>& out) {
  rlp::Item item;
  if (!rlp::Decode(data, item) || !item.is_list) return false;
  out.clear();
  for (const auto& entry : item.items) {
    chain::Transaction tx;
    if (!ReadTx(entry, tx)) return false;
    out.push_back(tx);
  }
  return true;
}

rlp::Bytes EncodeGetBlock(const Hash32& hash) {
  rlp::Encoder e;
  e.BeginList();
  e.WriteFixed(hash);
  e.EndList();
  return e.Take();
}

bool DecodeGetBlock(const rlp::Bytes& data, Hash32& out) {
  rlp::Item item;
  if (!rlp::Decode(data, item) || !item.is_list || item.items.size() != 1)
    return false;
  out = item.items[0].AsFixed<32>();
  return true;
}

rlp::Bytes EncodeNewBlock(const chain::Block& block,
                          std::uint64_t total_difficulty) {
  rlp::Encoder e;
  e.BeginList();
  e.BeginList();  // block
  WriteHeader(e, block.header);
  e.BeginList();
  for (const auto& tx : block.transactions) WriteTx(e, tx);
  e.EndList();
  e.BeginList();
  for (const auto& uncle : block.uncles) WriteHeader(e, uncle);
  e.EndList();
  e.EndList();
  e.WriteUint(total_difficulty);
  e.EndList();
  return e.Take();
}

bool DecodeNewBlock(const rlp::Bytes& data, chain::Block& out,
                    std::uint64_t& total_difficulty) {
  rlp::Item item;
  if (!rlp::Decode(data, item) || !item.is_list || item.items.size() != 2)
    return false;
  const rlp::Item& block_item = item.items[0];
  if (!block_item.is_list || block_item.items.size() != 3) return false;
  if (!ReadHeader(block_item.items[0], out.header)) return false;
  out.transactions.clear();
  if (!block_item.items[1].is_list) return false;
  for (const auto& entry : block_item.items[1].items) {
    chain::Transaction tx;
    if (!ReadTx(entry, tx)) return false;
    out.transactions.push_back(tx);
  }
  out.uncles.clear();
  if (!block_item.items[2].is_list) return false;
  for (const auto& entry : block_item.items[2].items) {
    chain::BlockHeader uncle;
    if (!ReadHeader(entry, uncle)) return false;
    out.uncles.push_back(uncle);
  }
  out.hash = out.header.Hash();
  total_difficulty = item.items[1].AsUint();
  return true;
}

std::size_t NewBlockWireSize(const chain::Block& block) {
  return EncodeNewBlock(block, 1).size() + 1;
}

std::size_t AnnouncementsWireSize(std::size_t count) {
  // 36-byte payload per entry + list headers; exact via encode of a dummy.
  std::vector<Announcement> anns(count);
  return EncodeAnnouncements(anns).size() + 1;
}

std::size_t TransactionsWireSize(const std::vector<chain::Transaction>& txs) {
  return EncodeTransactions(txs).size() + 1;
}

std::size_t GetBlockWireSize() { return EncodeGetBlock(Hash32{}).size() + 1; }

}  // namespace ethsim::eth::wire
