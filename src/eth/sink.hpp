// Instrumentation hook. The paper modified Geth to "capture and log all
// incoming network messages" (§II); MessageSink is that patch point. A plain
// node runs with a null sink; measurement nodes install a recorder
// (measure::Observer) that timestamps every callback with its own skewed
// clock.
#pragma once

#include <cstdint>

#include "chain/block.hpp"
#include "chain/blocktree.hpp"
#include "chain/transaction.hpp"
#include "common/types.hpp"

namespace ethsim::eth {

class MessageSink {
 public:
  virtual ~MessageSink() = default;

  enum class BlockMsgKind {
    kFullBlock,     // unsolicited NewBlock push
    kAnnouncement,  // NewBlockHashes entry
    kFetched,       // block body received in response to our GetBlock
  };

  // A block-related message arrived from a peer. `full` is null for
  // announcements.
  virtual void OnBlockMessage(BlockMsgKind kind, const Hash32& hash,
                              std::uint64_t number,
                              const chain::Block* full) = 0;

  // A transaction arrived from a peer (inside a Transactions batch).
  virtual void OnTransactionMessage(const chain::Transaction& tx) = 0;

  // The local node finished validating and inserted the block.
  virtual void OnBlockImported(const chain::BlockPtr& block, bool new_head) = 0;
};

}  // namespace ethsim::eth
