#include "eth/node.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "chain/validation.hpp"

namespace ethsim::eth {

// obs::TxPoolOutcome mirrors chain::TxPool::AddOutcome value-for-value so the
// pool hook can static_cast between them.
static_assert(
    static_cast<int>(obs::TxPoolOutcome::kPending) ==
        static_cast<int>(chain::TxPool::AddOutcome::kPending) &&
    static_cast<int>(obs::TxPoolOutcome::kQueued) ==
        static_cast<int>(chain::TxPool::AddOutcome::kQueued) &&
    static_cast<int>(obs::TxPoolOutcome::kKnown) ==
        static_cast<int>(chain::TxPool::AddOutcome::kKnown) &&
    static_cast<int>(obs::TxPoolOutcome::kStale) ==
        static_cast<int>(chain::TxPool::AddOutcome::kStale) &&
    static_cast<int>(obs::TxPoolOutcome::kReplaced) ==
        static_cast<int>(chain::TxPool::AddOutcome::kReplaced) &&
    static_cast<int>(obs::TxPoolOutcome::kRejected) ==
        static_cast<int>(chain::TxPool::AddOutcome::kRejected));

EthNode::EthNode(sim::Simulator& simulator, net::Network& network,
                 net::HostId host, p2p::NodeId id, chain::BlockPtr genesis,
                 NodeConfig config, Rng rng)
    : sim_(simulator),
      net_(network),
      host_(host),
      id_(id),
      config_(config),
      rng_(rng),
      tree_(std::move(genesis)),
      seen_txs_(config.seen_txs_cap) {
  // Peer slots are bounded by max_peers; reserving up front keeps Connect from
  // reallocating the vector. That matters more than it looks: BoundedSet holds
  // a deque, whose libstdc++ move constructor is not noexcept, so vector
  // growth copies every existing peer's known-block/known-tx sets instead of
  // moving them.
  peers_.reserve(config_.max_peers);
}

net::Region EthNode::region() const { return net_.host(host_).region; }

void EthNode::AttachTelemetry(obs::Telemetry* telemetry,
                              std::uint32_t trace_lane) {
  prov_ = nullptr;
  txprov_ = nullptr;
  tree_.set_record_reorg_steps(false);
  block_tracer_ = nullptr;
  tx_tracer_ = nullptr;
  imported_count_ = nullptr;
  head_count_ = nullptr;
  invalid_count_ = nullptr;
  tx_received_count_ = nullptr;
  validate_hist_ = nullptr;
  trace_lane_ = trace_lane;
  if (telemetry == nullptr) return;

  if ((prov_ = telemetry->provenance()) != nullptr)
    prov_->RegisterHost(host_, static_cast<std::uint8_t>(region()));

  if ((txprov_ = telemetry->txprov()) != nullptr) {
    txprov_->RegisterHost(host_, static_cast<std::uint8_t>(region()));
    // RecordChainEdit replays the per-switch reorg slices; only recorder-on
    // trees pay for collecting them.
    tree_.set_record_reorg_steps(true);
  }

  if (obs::Tracer* tracer = telemetry->tracer()) {
    if (tracer->enabled(obs::TraceCategory::kBlock)) block_tracer_ = tracer;
    if (tracer->enabled(obs::TraceCategory::kTx)) tx_tracer_ = tracer;
  }
  if (obs::MetricsRegistry* metrics = telemetry->metrics()) {
    // Counters are shared per region (stable map nodes), so every node in WE
    // bumps the same "eth.block.imported{region=WE}" cell.
    const std::string_view region_name = net::RegionShortName(region());
    imported_count_ = metrics->GetCounter(
        obs::LabeledName("eth.block.imported", {{"region", region_name}}));
    head_count_ = metrics->GetCounter(
        obs::LabeledName("eth.block.head_updates", {{"region", region_name}}));
    invalid_count_ = metrics->GetCounter(
        obs::LabeledName("eth.block.invalid", {{"region", region_name}}));
    tx_received_count_ = metrics->GetCounter(
        obs::LabeledName("eth.tx.received", {{"region", region_name}}));
    validate_hist_ =
        metrics->GetHistogram("eth.block.validate_us", obs::LatencyBucketsUs());
  }
}

void EthNode::TraceBlockInstant(const char* name, const char* arg_kind,
                                const Hash32& hash, std::uint64_t number) {
  obs::TraceEvent event;
  event.name = name;
  event.arg_kind = arg_kind;
  event.ts_us = sim_.Now().micros();
  event.arg_hash = hash.prefix_u64();
  event.arg_num = number;
  event.pid = trace_lane_;
  event.cat = obs::TraceCategory::kBlock;
  event.phase = 'i';
  block_tracer_->Emit(event);
}

bool EthNode::AddPeer(EthNode* node) {
  if (node == nullptr || node == this) return false;
  if (peers_.size() >= config_.max_peers) return false;
  if (FindPeer(node) != nullptr) return false;
  peers_.push_back(Peer{node, BoundedSet<Hash32>(config_.known_blocks_cap),
                        BoundedSet<Hash32>(config_.known_txs_cap)});
  return true;
}

bool EthNode::RemovePeer(const EthNode* node) {
  for (auto it = peers_.begin(); it != peers_.end(); ++it) {
    if (it->node != node) continue;
    // Erase in place (not swap-pop): the surviving peers keep their relative
    // order, so announcement iteration and the relay shuffle index the same
    // peer set a fresh call would see.
    peers_.erase(it);
    return true;
  }
  return false;
}

bool EthNode::Connect(EthNode& a, EthNode& b) {
  if (&a == &b) return false;
  if (!a.online_ || !b.online_) return false;
  if (a.peers_.size() >= a.config_.max_peers) return false;
  if (b.peers_.size() >= b.config_.max_peers) return false;
  if (a.ConnectedTo(b)) return false;
  const bool added_a = a.AddPeer(&b);
  const bool added_b = b.AddPeer(&a);
  assert(added_a && added_b);
  (void)added_a;
  (void)added_b;
  return true;
}

bool EthNode::Disconnect(EthNode& a, EthNode& b) {
  const bool removed_a = a.RemovePeer(&b);
  const bool removed_b = b.RemovePeer(&a);
  assert(removed_a == removed_b && "peer vectors out of sync");
  return removed_a && removed_b;
}

std::size_t EthNode::DisconnectAll() {
  std::size_t severed = 0;
  while (!peers_.empty()) {
    EthNode* peer = peers_.back().node;
    peers_.pop_back();
    const bool removed = peer->RemovePeer(this);
    assert(removed && "peer vectors out of sync");
    (void)removed;
    ++severed;
  }
  return severed;
}

void EthNode::GoOffline() {
  if (!online_) return;
  DisconnectAll();
  // In-flight relay state is RAM: lost with the process. Chain + pool model
  // disk state and survive for the restart.
  importing_.clear();
  requested_.clear();
  tx_broadcast_queue_.clear();
  flush_scheduled_ = false;
  ++epoch_;  // invalidate every callback scheduled before the crash
  online_ = false;
}

void EthNode::GoOnline() {
  if (online_) return;
  online_ = true;
}

bool EthNode::DropIngress(obs::MsgKind kind) {
  if (online_) [[likely]] return false;
  ++offline_drops_;
  net_.NoteOfflineDrop(kind, region());
  return true;
}

bool EthNode::ConnectedTo(const EthNode& other) const {
  return std::any_of(peers_.begin(), peers_.end(),
                     [&](const Peer& p) { return p.node == &other; });
}

EthNode::Peer* EthNode::FindPeer(const EthNode* node) {
  for (auto& p : peers_)
    if (p.node == node) return &p;
  return nullptr;
}

void EthNode::MarkKnowsBlock(EthNode* from, const Hash32& hash) {
  if (Peer* p = FindPeer(from)) p->known_blocks.Insert(hash);
}

void EthNode::RecordChainEdit(const chain::BlockTree::AddResult& result,
                              bool new_head) {
  // Replay each head switch in order, retirements before adoptions within a
  // switch: one Add can cascade through several reorgs (orphan attach), and
  // a block adopted by one switch may be retired by the next — processing
  // the flat lists wholesale would record that block's orphan-return before
  // its inclusion and leave the recorder's live-inclusion state wrong.
  const std::int64_t now_us = sim_.Now().micros();
  std::size_t r = 0;
  std::size_t a = 0;
  for (const auto& step : result.steps) {
    for (; r < step.retired_end; ++r)
      for (const auto& tx : result.retired[r]->transactions)
        txprov_->RecordOrphanReturned(host_, tx.hash, now_us,
                                      result.retired[r]->hash,
                                      result.retired[r]->header.number);
    for (; a < step.adopted_end; ++a)
      for (const auto& tx : result.adopted[a]->transactions)
        txprov_->RecordIncluded(host_, tx.hash, now_us,
                                result.adopted[a]->hash,
                                result.adopted[a]->header.number);
  }
  if (new_head) txprov_->AdvanceHead(host_, tree_.head_number(), now_us);
}

// --- local actions ---------------------------------------------------------

void EthNode::SubmitTransaction(const chain::Transaction& tx) {
  if (!online_) return;  // a crashed node accepts no local submissions
  if (!seen_txs_.Insert(tx.hash)) return;
  const auto outcome = pool_.Add(tx);
  if (txprov_ != nullptr) [[unlikely]]
    txprov_->RecordPoolOutcome(host_, tx.hash, sim_.Now().micros(),
                               static_cast<obs::TxPoolOutcome>(outcome),
                               tx.gas_price);
  QueueTxForBroadcast(tx);
}

void EthNode::InjectMinedBlock(chain::BlockPtr block) {
  // Gateway outage: the pool's release policy (miner layer) decides whether
  // to fall back to another gateway or stall; a direct call on a crashed
  // node is simply swallowed here.
  if (!online_) return;
  // The miner built this block itself: no validation needed. Geth's
  // minedBroadcastLoop pushes the full block to sqrt(peers) and announces
  // the hash to everyone else.
  const auto result = tree_.Add(block, sim_.Now());
  if (result.outcome == chain::BlockTree::AddOutcome::kDuplicate) return;
  if (prov_ != nullptr) [[unlikely]]
    prov_->RecordOrigin(host_, block->hash, block->header.parent_hash,
                        block->header.number, sim_.Now().micros());
  for (const auto& retired : result.retired)
    for (const auto& tx : retired->transactions) {
      pool_.RollbackAccountNonce(tx.sender, tx.nonce);
      pool_.Add(tx);
    }
  for (const auto& adopted : result.adopted)
    pool_.RemoveIncluded(adopted->transactions);

  const bool new_head =
      result.outcome == chain::BlockTree::AddOutcome::kAddedNewHead;
  if (txprov_ != nullptr) [[unlikely]]
    RecordChainEdit(result, new_head);
  if (sink_ != nullptr) sink_->OnBlockImported(block, new_head);
  if (imported_count_ != nullptr) [[unlikely]] {
    imported_count_->Add();
    if (new_head) head_count_->Add();
  }
  if (block_tracer_ != nullptr) [[unlikely]]
    TraceBlockInstant("block.import", "mined", block->hash,
                      block->header.number);

  PushToSqrtPeers(block);
  AnnounceToOtherPeers(block);

  if (new_head && on_new_head_) on_new_head_(tree_.head());
}

// --- wire ingress ------------------------------------------------------------

void EthNode::DeliverNewBlock(EthNode* from, chain::BlockPtr block) {
  if (prov_ != nullptr) [[unlikely]]
    prov_->ResolveDelivery(from->host(), host_, online_, sim_.Now().micros());
  if (DropIngress(obs::MsgKind::kNewBlock)) [[unlikely]] return;
  if (sink_ != nullptr)
    sink_->OnBlockMessage(MessageSink::BlockMsgKind::kFullBlock, block->hash,
                          block->header.number, block);
  if (block_tracer_ != nullptr) [[unlikely]]
    TraceBlockInstant("block.heard", "new_block", block->hash,
                      block->header.number);
  MarkKnowsBlock(from, block->hash);
  HandleIncomingBlock(from, std::move(block));
}

void EthNode::DeliverBlockResponse(EthNode* from, chain::BlockPtr block) {
  if (prov_ != nullptr) [[unlikely]]
    prov_->ResolveDelivery(from->host(), host_, online_, sim_.Now().micros());
  if (DropIngress(obs::MsgKind::kBlockResponse)) [[unlikely]] return;
  if (sink_ != nullptr)
    sink_->OnBlockMessage(MessageSink::BlockMsgKind::kFetched, block->hash,
                          block->header.number, block);
  if (block_tracer_ != nullptr) [[unlikely]]
    TraceBlockInstant("block.heard", "fetched", block->hash,
                      block->header.number);
  requested_.erase(block->hash);
  MarkKnowsBlock(from, block->hash);
  HandleIncomingBlock(from, std::move(block));
}

void EthNode::DeliverAnnouncement(EthNode* from, const Hash32& hash,
                                  std::uint64_t number) {
  if (prov_ != nullptr) [[unlikely]]
    prov_->ResolveDelivery(from->host(), host_, online_, sim_.Now().micros());
  if (DropIngress(obs::MsgKind::kAnnouncement)) [[unlikely]] return;
  if (sink_ != nullptr)
    sink_->OnBlockMessage(MessageSink::BlockMsgKind::kAnnouncement, hash, number,
                          nullptr);
  if (block_tracer_ != nullptr) [[unlikely]]
    TraceBlockInstant("block.heard", "announcement", hash, number);
  MarkKnowsBlock(from, hash);
  if (tree_.Contains(hash) || importing_.contains(hash) ||
      requested_.contains(hash))
    return;
  requested_.insert(hash);
  if (prov_ != nullptr) [[unlikely]]
    prov_->StageBlockEdge(host_, from->host(), obs::EdgeKind::kGetBlock, hash,
                          number, nullptr, kGetBlockWireSize,
                          sim_.Now().micros());
  net_.Send(host_, from->host(), kGetBlockWireSize, obs::MsgKind::kGetBlock,
            [from, self = this, hash] { from->DeliverGetBlock(self, hash); });
  // Retry guard: if the fetch (or its response) is lost, forget it so the
  // next announcement re-triggers the request. Epoch-guarded: after a crash
  // the restarted session starts with a fresh `requested_` set and a stale
  // timer must not touch it.
  sim_.Schedule(config_.fetch_retry_timeout, [this, hash, epoch = epoch_] {
    if (epoch == epoch_) requested_.erase(hash);
  });
}

void EthNode::DeliverGetBlock(EthNode* from, const Hash32& hash) {
  if (prov_ != nullptr) [[unlikely]]
    prov_->ResolveDelivery(from->host(), host_, online_, sim_.Now().micros());
  if (DropIngress(obs::MsgKind::kGetBlock)) [[unlikely]] return;
  const chain::BlockPtr block = tree_.Get(hash);
  if (!block) return;  // pruned/unknown; requester will hear it elsewhere
  if (Peer* p = FindPeer(from)) p->known_blocks.Insert(hash);
  if (prov_ != nullptr) [[unlikely]]
    prov_->StageBlockEdge(host_, from->host(), obs::EdgeKind::kBlockResponse,
                          block->hash, block->header.number,
                          &block->header.parent_hash, block->EncodedSize(),
                          sim_.Now().micros());
  net_.Send(host_, from->host(), block->EncodedSize(),
            obs::MsgKind::kBlockResponse,
            [from, self = this, block] { from->DeliverBlockResponse(self, block); });
}

void EthNode::DeliverTransactions(EthNode* from, const TxBatchView& batch) {
  if (prov_ != nullptr) [[unlikely]]
    prov_->ResolveDelivery(from->host(), host_, online_, sim_.Now().micros());
  if (DropIngress(obs::MsgKind::kTransactions)) [[unlikely]] return;
  Peer* peer = FindPeer(from);
  if (tx_received_count_ != nullptr) [[unlikely]]
    tx_received_count_->Add(batch.count());
  const auto process = [&](const chain::Transaction& tx) {
    if (sink_ != nullptr) sink_->OnTransactionMessage(tx);
    if (peer != nullptr) peer->known_txs.Insert(tx.hash);
    if (!seen_txs_.Insert(tx.hash)) return;
    // Post-dedupe = this node's first reception of the transaction. The
    // recorder filters to vantage hosts itself.
    if (txprov_ != nullptr) [[unlikely]]
      txprov_->RecordFirstSeen(host_, tx.hash, sim_.Now().micros());
    const auto outcome = pool_.Add(tx);
    if (txprov_ != nullptr) [[unlikely]]
      txprov_->RecordPoolOutcome(host_, tx.hash, sim_.Now().micros(),
                                 static_cast<obs::TxPoolOutcome>(outcome),
                                 tx.gas_price);
    QueueTxForBroadcast(tx);
  };
  const auto& txs = *batch.txs;
  if (batch.subset) {
    for (const std::uint32_t i : *batch.subset) process(txs[i]);
  } else {
    for (const auto& tx : txs) process(tx);
  }
}

// --- relay pipeline ----------------------------------------------------------

void EthNode::HandleIncomingBlock(EthNode* from, chain::BlockPtr block) {
  const Hash32 hash = block->hash;
  if (tree_.Contains(hash) || importing_.contains(hash)) return;
  importing_.insert(hash);

  // Geth relays eagerly after the cheap PoW/header check, then spends the
  // full validation time before import. Both delays are sim-clock values
  // known here, so the validate span can be traced up front as one complete
  // ('X') event — no extra bookkeeping at fire time.
  if (block_tracer_ != nullptr || validate_hist_ != nullptr) [[unlikely]] {
    const Duration validation = ValidationDelay(*block);
    if (validate_hist_ != nullptr) validate_hist_->Observe(validation.micros());
    if (block_tracer_ != nullptr) {
      obs::TraceEvent event;
      event.name = "block.validate";
      event.ts_us = (sim_.Now() + config_.header_check_delay).micros();
      event.dur_us = validation.micros();
      event.arg_hash = hash.prefix_u64();
      event.arg_num = block->header.number;
      event.pid = trace_lane_;
      event.cat = obs::TraceCategory::kBlock;
      event.phase = 'X';
      block_tracer_->Emit(event);
    }
  }
  // Both stages capture the session epoch: a crash between header check and
  // import must abandon the pipeline (the block was only in RAM), and the
  // restarted session must not see a ghost import fire.
  sim_.Schedule(config_.header_check_delay, [this, block, epoch = epoch_] {
    if (epoch != epoch_) return;
    PushToSqrtPeers(block);
    sim_.Schedule(ValidationDelay(*block), [this, block, epoch] {
      if (epoch != epoch_) return;
      ImportBlock(block, nullptr);
    });
  });
  (void)from;
}

Duration EthNode::ValidationDelay(const chain::Block& block) const {
  const Duration work =
      config_.base_validation +
      config_.per_tx_validation * static_cast<double>(block.transactions.size());
  return work * config_.validation_speed_factor;
}

void EthNode::ImportBlock(chain::BlockPtr block, EthNode* origin) {
  (void)origin;
  const Hash32 hash = block->hash;
  importing_.erase(hash);

  // Consensus checks against the parent (when known). A byzantine or corrupt
  // block is dropped and never relayed further. (Blocks that arrive as
  // orphans attach inside the tree when their parent shows up and skip this
  // check — acceptable here because the fetch path re-delivers through this
  // function; a hardened client would validate at attach time.)
  if (const chain::BlockPtr parent = tree_.Get(block->header.parent_hash)) {
    if (chain::ValidateBlock(*block, parent->header) !=
        chain::ValidationError::kNone) {
      ++invalid_blocks_;
      if (invalid_count_ != nullptr) [[unlikely]] invalid_count_->Add();
      return;
    }
  }

  const auto result = tree_.Add(block, sim_.Now());
  switch (result.outcome) {
    case chain::BlockTree::AddOutcome::kDuplicate:
      return;
    case chain::BlockTree::AddOutcome::kOrphaned: {
      // Fetch the missing parent from a random peer claiming block knowledge
      // (any peer, in our loss-free overlay).
      if (!peers_.empty() && !requested_.contains(block->header.parent_hash)) {
        const Hash32 parent = block->header.parent_hash;
        requested_.insert(parent);
        Peer& peer = peers_[rng_.NextBounded(peers_.size())];
        if (prov_ != nullptr) [[unlikely]]
          prov_->StageBlockEdge(host_, peer.node->host(),
                                obs::EdgeKind::kGetBlock, parent,
                                block->header.number - 1, nullptr,
                                kGetBlockWireSize, sim_.Now().micros());
        net_.Send(host_, peer.node->host(), kGetBlockWireSize,
                  obs::MsgKind::kGetBlock,
                  [target = peer.node, self = this, parent] {
                    target->DeliverGetBlock(self, parent);
                  });
        sim_.Schedule(config_.fetch_retry_timeout,
                      [this, parent, epoch = epoch_] {
                        if (epoch == epoch_) requested_.erase(parent);
                      });
      }
      return;
    }
    case chain::BlockTree::AddOutcome::kAdded:
    case chain::BlockTree::AddOutcome::kAddedNewHead:
      break;
  }

  // Reorg bookkeeping mirrors Geth: retired transactions return to the pool,
  // adopted ones leave it.
  for (const auto& retired : result.retired)
    for (const auto& tx : retired->transactions) {
      pool_.RollbackAccountNonce(tx.sender, tx.nonce);
      pool_.Add(tx);
    }
  for (const auto& adopted : result.adopted)
    pool_.RemoveIncluded(adopted->transactions);

  const bool new_head =
      result.outcome == chain::BlockTree::AddOutcome::kAddedNewHead;
  if (txprov_ != nullptr) [[unlikely]]
    RecordChainEdit(result, new_head);
  if (sink_ != nullptr) sink_->OnBlockImported(block, new_head);
  if (imported_count_ != nullptr) [[unlikely]] {
    imported_count_->Add();
    if (new_head) head_count_->Add();
  }
  if (block_tracer_ != nullptr) [[unlikely]]
    TraceBlockInstant("block.import", new_head ? "new_head" : "side",
                      block->hash, block->header.number);

  AnnounceToOtherPeers(block);

  if (new_head && on_new_head_) on_new_head_(tree_.head());
}

void EthNode::PushToSqrtPeers(const chain::BlockPtr& block) {
  if (peers_.empty()) return;
  if (config_.relay_mode == RelayMode::kAnnounceOnly) return;
  const auto want =
      config_.relay_mode == RelayMode::kPushAll
          ? peers_.size()
          : static_cast<std::size_t>(
                std::ceil(std::sqrt(static_cast<double>(peers_.size()))));

  // Sample peers without replacement until `want` unaware peers were pushed.
  // The shuffle reuses a member scratch buffer (zero allocations per relay)
  // and keeps the seed engine's exact Fisher-Yates draw sequence: a partial
  // shuffle would consume fewer RNG draws and silently change every
  // downstream random stream, breaking bit-for-bit replay compatibility with
  // recorded (config, seed) runs. With peers <= max_peers the O(peers) swap
  // loop is trivial next to the eliminated heap allocation.
  relay_order_.resize(peers_.size());
  for (std::uint32_t i = 0; i < relay_order_.size(); ++i) relay_order_[i] = i;
  for (std::size_t i = relay_order_.size(); i > 1; --i)
    std::swap(relay_order_[i - 1], relay_order_[rng_.NextBounded(i)]);

  std::size_t pushed = 0;
  for (const std::uint32_t idx : relay_order_) {
    if (pushed == want) break;
    Peer& peer = peers_[idx];
    if (peer.known_blocks.Contains(block->hash)) continue;
    SendNewBlock(peer, block);
    ++pushed;
  }
}

void EthNode::AnnounceToOtherPeers(const chain::BlockPtr& block) {
  for (Peer& peer : peers_) {
    if (peer.known_blocks.Contains(block->hash)) continue;
    SendAnnouncement(peer, block);
  }
}

void EthNode::SendNewBlock(Peer& peer, const chain::BlockPtr& block) {
  peer.known_blocks.Insert(block->hash);
  EthNode* target = peer.node;
  if (prov_ != nullptr) [[unlikely]]
    prov_->StageBlockEdge(host_, target->host(), obs::EdgeKind::kNewBlock,
                          block->hash, block->header.number,
                          &block->header.parent_hash, block->EncodedSize(),
                          sim_.Now().micros());
  net_.Send(host_, target->host(), block->EncodedSize(),
            obs::MsgKind::kNewBlock,
            [target, self = this, block] { target->DeliverNewBlock(self, block); });
}

void EthNode::SendAnnouncement(Peer& peer, const chain::BlockPtr& block) {
  peer.known_blocks.Insert(block->hash);
  EthNode* target = peer.node;
  if (prov_ != nullptr) [[unlikely]]
    prov_->StageBlockEdge(host_, target->host(), obs::EdgeKind::kAnnouncement,
                          block->hash, block->header.number, nullptr,
                          kAnnouncementWireSize, sim_.Now().micros());
  net_.Send(host_, target->host(), kAnnouncementWireSize,
            obs::MsgKind::kAnnouncement,
            [target, self = this, hash = block->hash,
             number = block->header.number] {
              target->DeliverAnnouncement(self, hash, number);
            });
}

// --- transaction gossip ------------------------------------------------------

void EthNode::QueueTxForBroadcast(const chain::Transaction& tx) {
  tx_broadcast_queue_.push_back(tx);
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    sim_.Schedule(config_.tx_flush_interval, [this, epoch = epoch_] {
      if (epoch == epoch_) FlushTxBroadcast();
    });
  }
}

void EthNode::FlushTxBroadcast() {
  flush_scheduled_ = false;
  if (tx_broadcast_queue_.empty()) return;
  // One immutable batch per flush, shared by every peer; per-peer filtering
  // is an index list (4 bytes/entry) instead of a Transaction copy
  // (~120 bytes/entry), and the common all-known-to-none case ships with no
  // per-peer allocation at all.
  const auto batch = std::make_shared<const std::vector<chain::Transaction>>(
      std::move(tx_broadcast_queue_));
  tx_broadcast_queue_.clear();
  const std::vector<chain::Transaction>& queue = *batch;

  if (tx_tracer_ != nullptr) [[unlikely]] {
    obs::TraceEvent event;
    event.name = "tx.flush";
    event.ts_us = sim_.Now().micros();
    event.arg_num = queue.size();
    event.pid = trace_lane_;
    event.cat = obs::TraceCategory::kTx;
    event.phase = 'i';
    tx_tracer_->Emit(event);
  }

  for (Peer& peer : peers_) {
    flush_subset_.clear();
    std::size_t bytes = kTxBatchOverhead;
    for (std::uint32_t i = 0; i < queue.size(); ++i) {
      const auto& tx = queue[i];
      if (peer.known_txs.Contains(tx.hash)) continue;
      peer.known_txs.Insert(tx.hash);
      flush_subset_.push_back(i);
      bytes += tx.EncodedSize();
    }
    if (flush_subset_.empty()) continue;
    TxBatchView view;
    view.txs = batch;
    if (flush_subset_.size() != queue.size())
      view.subset = std::make_shared<const std::vector<std::uint32_t>>(
          flush_subset_);
    EthNode* target = peer.node;
    if (prov_ != nullptr) [[unlikely]]
      prov_->StageTxEdge(host_, target->host(), flush_subset_.size(), bytes,
                         sim_.Now().micros());
    net_.Send(host_, target->host(), bytes, obs::MsgKind::kTransactions,
              [target, self = this, view = std::move(view)] {
                target->DeliverTransactions(self, view);
              });
  }
}

}  // namespace ethsim::eth
