// Cross-module invariant oracles run against a finished experiment. Each
// oracle reconciles two independent implementations of the same truth —
// workload counters vs analysis/demand, observer logs vs the provenance edge
// log, the block tree's structural audit vs its public accessors — so a
// disagreement localizes a bug to one side without a golden file.
#pragma once

#include <string>
#include <vector>

#include "analysis/inputs.hpp"
#include "core/experiment.hpp"

namespace ethsim::check {

struct OracleFailure {
  std::string oracle;  // stable name, e.g. "tx-conservation"
  std::string detail;  // the violated equation with both sides
};

struct OracleOptions {
  // Test-only hook: the named oracle reports a deliberate failure regardless
  // of the run. Lets the shrinker and the CI pipeline prove, end to end,
  // that a failing oracle is caught, reported and minimized — without
  // planting a real bug.
  std::string inject_failure;
};

// Stable names of every oracle, in evaluation order.
std::vector<std::string> OracleNames();

// Runs every oracle; returns all failures (empty = the run is clean).
// Non-const because reading the provenance stream finishes its recorder.
std::vector<OracleFailure> RunOracles(core::Experiment& experiment,
                                      const OracleOptions& options = {});

// The analysis-input bundle of a finished experiment (shared by the oracles,
// the metamorphic relations and tests).
analysis::StudyInputs MakeStudyInputs(const core::Experiment& experiment);

}  // namespace ethsim::check
