#include "check/metamorphic.hpp"

#include <cstdio>
#include <utility>

#include "analysis/demand.hpp"
#include "analysis/propagation.hpp"
#include "check/oracles.hpp"
#include "common/types.hpp"
#include "core/experiment.hpp"
#include "core/provenance.hpp"
#include "workload/generator.hpp"

namespace ethsim::check {

namespace {

Hash32 RunDigest(core::ExperimentConfig cfg) {
  core::Experiment exp{std::move(cfg)};
  exp.Run();
  return core::DeterminismDigest(exp);
}

RelationResult Pass(const char* relation, std::string detail = {}) {
  return {relation, true, std::move(detail)};
}

RelationResult FailDigests(const char* relation, const Hash32& a,
                           const Hash32& b) {
  return {relation, false, ToHex(a) + " vs " + ToHex(b)};
}

// Two runs of the same (config, seed) must be bit-identical — the
// determinism contract every other relation builds on.
RelationResult ReplayDeterminism(const core::ExperimentConfig& base) {
  const Hash32 first = RunDigest(base);
  const Hash32 second = RunDigest(base);
  if (!(first == second))
    return FailDigests("replay-determinism", first, second);
  return Pass("replay-determinism");
}

// Telemetry records; it never steers. Flipping every stream gate must leave
// the determinism digest untouched (the generalized form of the golden
// "recording does not perturb the run" tests).
RelationResult TelemetryParity(const core::ExperimentConfig& base) {
  core::ExperimentConfig on = base;
  on.telemetry.metrics = true;
  on.telemetry.provenance = true;
  on.telemetry.txprov = true;
  core::ExperimentConfig off = base;
  off.telemetry = obs::TelemetryConfig{};
  const Hash32 digest_on = RunDigest(std::move(on));
  const Hash32 digest_off = RunDigest(std::move(off));
  if (!(digest_on == digest_off))
    return FailDigests("telemetry-parity", digest_on, digest_off);
  return Pass("telemetry-parity");
}

// An armed fault plan whose events all fire after the horizon must be
// bit-identical to an empty plan: the controller is constructed, its RNG
// stream forked and its events scheduled, yet nothing executed may differ —
// the generalized form of the "empty plan is bit-inert" golden.
RelationResult EmptyFaultPlanInertness(const core::ExperimentConfig& base) {
  core::ExperimentConfig empty = base;
  empty.fault_plan.events.clear();
  core::ExperimentConfig post_horizon = empty;
  const auto after_end =
      TimePoint::FromMicros(base.duration.micros() + Duration::Minutes(1).micros());
  post_horizon.fault_plan.NodeCrash(after_end, Duration::Seconds(30), 2)
      .RegionalPartition(after_end + Duration::Minutes(2), Duration::Minutes(1),
                         1u << 0)
      .DegradeLinks(after_end + Duration::Minutes(4), Duration::Minutes(1),
                    1u << 1, 2.0, 1.5);
  const Hash32 digest_empty = RunDigest(std::move(empty));
  const Hash32 digest_post = RunDigest(std::move(post_horizon));
  if (!(digest_empty == digest_post))
    return FailDigests("empty-fault-plan-inertness", digest_empty, digest_post);
  return Pass("empty-fault-plan-inertness");
}

// Stretching every link uniformly can only slow the propagation wave: the
// cross-vantage p50 under latency_scale x4 must not undercut the base run's.
// Mining and gossip re-randomize under the changed event order, so the
// relation is only sharp with a large factor; runs with too few samples on
// either side pass vacuously.
RelationResult LatencyScaleMonotone(const core::ExperimentConfig& base) {
  constexpr double kFactor = 4.0;
  constexpr std::size_t kMinSamples = 8;
  core::ExperimentConfig scaled = base;
  scaled.net_params.latency_scale *= kFactor;

  core::Experiment base_exp{base};
  base_exp.Run();
  core::Experiment scaled_exp{std::move(scaled)};
  scaled_exp.Run();
  const analysis::PropagationResult base_prop =
      analysis::BlockPropagationDelays(MakeStudyInputs(base_exp).observers);
  const analysis::PropagationResult scaled_prop =
      analysis::BlockPropagationDelays(MakeStudyInputs(scaled_exp).observers);
  if (base_prop.items < kMinSamples || scaled_prop.items < kMinSamples)
    return Pass("latency-scale-monotone", "too few samples; vacuous");
  if (scaled_prop.median_ms < base_prop.median_ms) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "p50 %.3f ms at x%.1f latency < p50 %.3f ms at x1",
                  scaled_prop.median_ms, kFactor, base_prop.median_ms);
    return {"latency-scale-monotone", false, buf};
  }
  return Pass("latency-scale-monotone");
}

// Region labels are bucketing keys, not behavior: permuting the submission
// tags (a pure relabeling of the demand input) must permute the per-region
// table the same way and leave every total untouched.
RelationResult RegionPermutationEquivariance(const core::ExperimentConfig& base) {
  core::Experiment exp{base};
  exp.Run();
  const analysis::StudyInputs inputs = MakeStudyInputs(exp);
  const std::vector<workload::SubmittedTx>& submitted =
      exp.workload().submitted();
  std::vector<workload::SubmittedTx> rotated = submitted;
  for (workload::SubmittedTx& tx : rotated)
    if (tx.region != workload::kNoRegion)
      tx.region = static_cast<std::uint8_t>((tx.region + 1) % net::kRegionCount);

  const analysis::DemandResult original =
      analysis::AnalyzeDemand(inputs, submitted, exp.workload().plan());
  const analysis::DemandResult permuted =
      analysis::AnalyzeDemand(inputs, rotated, exp.workload().plan());

  if (permuted.offered_total != original.offered_total ||
      permuted.included_total != original.included_total ||
      permuted.committed_total != original.committed_total)
    return {"region-permutation-equivariance", false,
            "totals changed under a pure region relabeling"};
  for (std::size_t r = 0; r < net::kRegionCount; ++r) {
    const std::size_t target = (r + 1) % net::kRegionCount;
    const analysis::RegionDemand& before = original.per_region[r];
    const analysis::RegionDemand& after = permuted.per_region[target];
    if (before.offered != after.offered ||
        before.included != after.included ||
        before.committed != after.committed) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "region %zu row did not move to region %zu intact", r,
                    target);
      return {"region-permutation-equivariance", false, buf};
    }
  }
  return Pass("region-permutation-equivariance");
}

}  // namespace

std::vector<std::string> RelationNames() {
  return {"replay-determinism", "telemetry-parity",
          "empty-fault-plan-inertness", "latency-scale-monotone",
          "region-permutation-equivariance"};
}

RelationResult RunRelation(const core::ExperimentConfig& base,
                           const std::string& relation) {
  if (relation == "replay-determinism") return ReplayDeterminism(base);
  if (relation == "telemetry-parity") return TelemetryParity(base);
  if (relation == "empty-fault-plan-inertness")
    return EmptyFaultPlanInertness(base);
  if (relation == "latency-scale-monotone") return LatencyScaleMonotone(base);
  if (relation == "region-permutation-equivariance")
    return RegionPermutationEquivariance(base);
  return {relation, false, "unknown relation"};
}

std::vector<RelationResult> RunMetamorphic(const core::ExperimentConfig& base) {
  std::vector<RelationResult> results;
  for (const std::string& name : RelationNames())
    results.push_back(RunRelation(base, name));
  return results;
}

}  // namespace ethsim::check
