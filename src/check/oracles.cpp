#include "check/oracles.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "analysis/commit.hpp"
#include "analysis/demand.hpp"
#include "analysis/dissemination.hpp"
#include "analysis/redundancy.hpp"
#include "net/network.hpp"
#include "obs/provenance_dag.hpp"
#include "obs/tx_provenance.hpp"

namespace ethsim::check {

namespace {

using Failures = std::vector<OracleFailure>;

void Fail(Failures& failures, const char* oracle, std::string detail) {
  failures.push_back({oracle, std::move(detail)});
}

std::string Eq(const char* what, std::uint64_t lhs, std::uint64_t rhs) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s: %" PRIu64 " vs %" PRIu64, what, lhs,
                rhs);
  return buf;
}

// The reference tree's structural audit plus the fork-choice postcondition
// the audit cannot see from inside: total difficulty strictly increases
// along the canonical chain (heaviest-chain fork choice would be meaningless
// otherwise).
void ChainOracle(const core::Experiment& exp, Failures& failures) {
  const chain::BlockTree& tree = exp.reference_tree();
  if (!tree.CheckInvariants())
    Fail(failures, "chain-invariants",
         "reference tree CheckInvariants() failed (see stderr)");
  const auto canonical = tree.CanonicalChain();
  for (std::size_t i = 1; i < canonical.size(); ++i) {
    const std::uint64_t parent_td =
        tree.TotalDifficulty(canonical[i - 1]->hash);
    const std::uint64_t child_td = tree.TotalDifficulty(canonical[i]->hash);
    if (child_td <= parent_td) {
      Fail(failures, "chain-invariants",
           Eq("canonical total difficulty must be strictly increasing",
              child_td, parent_td));
      break;
    }
  }
  for (const auto& node : exp.nodes()) {
    if (!node->tree().CheckInvariants()) {
      Fail(failures, "chain-invariants",
           "a node tree failed CheckInvariants() (see stderr)");
      break;
    }
  }
}

// submitted ⊇ admitted ⊇ included ⊇ committed, reconciled across three
// independent implementations: the workload generator's own counters, the
// demand analysis, and the commit-time analysis.
void TxConservationOracle(const core::Experiment& exp, Failures& failures) {
  const analysis::StudyInputs inputs = MakeStudyInputs(exp);
  const analysis::CommitTimeResult commit =
      analysis::TransactionCommitTimes(inputs);
  const analysis::DemandResult demand = analysis::AnalyzeDemand(
      inputs, exp.workload().submitted(), exp.workload().plan());

  const std::uint64_t submitted = exp.workload().total_submitted();
  if (demand.offered_total != submitted)
    Fail(failures, "tx-conservation",
         Eq("demand offered_total vs workload total_submitted",
            demand.offered_total, submitted));
  if (demand.included_total > demand.offered_total)
    Fail(failures, "tx-conservation",
         Eq("included_total exceeds offered_total", demand.included_total,
            demand.offered_total));
  if (demand.committed_total > demand.included_total)
    Fail(failures, "tx-conservation",
         Eq("committed_total exceeds included_total", demand.committed_total,
            demand.included_total));
  if (demand.committed_total != commit.committed_txs)
    Fail(failures, "tx-conservation",
         Eq("demand committed_total vs commit-time committed_txs",
            demand.committed_total, commit.committed_txs));
  if (demand.unattributed_committed != 0)
    Fail(failures, "tx-conservation",
         Eq("committed txs with no submission record",
            demand.unattributed_committed, 0));

  std::uint64_t src_offered = 0, src_included = 0, src_committed = 0;
  for (const analysis::SourceDemand& src : demand.per_source) {
    src_offered += src.offered;
    src_included += src.included;
    src_committed += src.committed;
    if (src.included > src.offered)
      Fail(failures, "tx-conservation",
           Eq(("source '" + src.name + "' included exceeds offered").c_str(),
              src.included, src.offered));
  }
  if (src_offered != demand.offered_total)
    Fail(failures, "tx-conservation",
         Eq("per-source offered does not sum to offered_total", src_offered,
            demand.offered_total));
  if (src_included != demand.included_total)
    Fail(failures, "tx-conservation",
         Eq("per-source included does not sum to included_total", src_included,
            demand.included_total));
  if (src_committed != demand.committed_total)
    Fail(failures, "tx-conservation",
         Eq("per-source committed does not sum to committed_total",
            src_committed, demand.committed_total));

  // Region attribution never invents traffic. Legacy-mode submissions carry
  // no region tag, so the regional sum may undershoot but must never exceed.
  std::uint64_t region_offered = 0;
  for (const analysis::RegionDemand& region : demand.per_region)
    region_offered += region.offered;
  if (region_offered > demand.offered_total)
    Fail(failures, "tx-conservation",
         Eq("per-region offered exceeds offered_total", region_offered,
            demand.offered_total));
}

bool StatsEqual(const analysis::RedundancyStats& a,
                const analysis::RedundancyStats& b) {
  return std::memcmp(&a.mean, &b.mean, sizeof(double)) == 0 &&
         std::memcmp(&a.median, &b.median, sizeof(double)) == 0 &&
         std::memcmp(&a.top10, &b.top10, sizeof(double)) == 0 &&
         std::memcmp(&a.top1, &b.top1, sizeof(double)) == 0;
}

// The Table II reconciliation contract at every vantage: the redundancy
// computed from the provenance edge log must equal the observer-log
// computation bitwise.
void RedundancyOracle(core::Experiment& exp, Failures& failures) {
  if (exp.telemetry() == nullptr || exp.telemetry()->provenance() == nullptr)
    return;
  const obs::ProvenanceLog& log = exp.telemetry()->provenance()->Finish();
  for (const auto& observer : exp.observers()) {
    const analysis::RedundancyResult from_log =
        analysis::BlockReceptionRedundancy(*observer);
    const analysis::RedundancyResult from_prov =
        analysis::RedundancyFromProvenance(log, observer->node()->host());
    if (from_log.blocks != from_prov.blocks) {
      Fail(failures, "redundancy-reconciliation",
           Eq(("vantage " + observer->name() + " settled blocks").c_str(),
              from_log.blocks, from_prov.blocks));
      continue;
    }
    if (!StatsEqual(from_log.announcements, from_prov.announcements) ||
        !StatsEqual(from_log.whole_blocks, from_prov.whole_blocks) ||
        !StatsEqual(from_log.combined, from_prov.combined))
      Fail(failures, "redundancy-reconciliation",
           "vantage " + observer->name() +
               ": observer-log and provenance-log statistics differ");
  }
}

// Every censored message is attributed exactly once, in both census tables
// (by reason, and by kind x region); with provenance on, the edge log's
// per-reason drop counts match the network's.
void DropCensusOracle(core::Experiment& exp, Failures& failures) {
  const net::Network& network = exp.network();
  const std::uint64_t total = network.messages_dropped();
  std::uint64_t by_reason = 0;
  for (std::size_t r = 0; r < net::kDropReasonCount; ++r)
    by_reason += network.dropped_by(static_cast<net::DropReason>(r));
  if (by_reason != total)
    Fail(failures, "drop-census",
         Eq("per-reason drop counts vs messages_dropped", by_reason, total));
  std::uint64_t by_cell = 0;
  for (std::size_t k = 0; k < obs::kMsgKindCount; ++k)
    for (std::size_t r = 0; r < net::kRegionCount; ++r)
      by_cell += network.dropped_by(static_cast<obs::MsgKind>(k),
                                    static_cast<net::Region>(r));
  if (by_cell != total)
    Fail(failures, "drop-census",
         Eq("kind x region drop counts vs messages_dropped", by_cell, total));

  if (exp.telemetry() != nullptr && exp.telemetry()->provenance() != nullptr) {
    const obs::ProvenanceLog& log = exp.telemetry()->provenance()->Finish();
    std::uint64_t edge_drops[obs::kEdgeDropCount] = {};
    for (std::size_t i = 0; i < log.size(); ++i) ++edge_drops[log.drop[i]];
    const struct {
      obs::EdgeDrop edge;
      net::DropReason reason;
    } pairs[] = {
        {obs::EdgeDrop::kRandomLoss, net::DropReason::kRandomLoss},
        {obs::EdgeDrop::kPartitioned, net::DropReason::kPartitioned},
        {obs::EdgeDrop::kDegraded, net::DropReason::kDegraded},
        {obs::EdgeDrop::kOffline, net::DropReason::kOffline},
    };
    for (const auto& pair : pairs) {
      const std::uint64_t from_log =
          edge_drops[static_cast<std::size_t>(pair.edge)];
      const std::uint64_t from_census = network.dropped_by(pair.reason);
      if (from_log != from_census)
        Fail(failures, "drop-census",
             Eq((std::string("provenance vs census drops, reason ") +
                 std::string(obs::EdgeDropName(pair.edge)))
                    .c_str(),
                from_log, from_census));
    }
  }
}

// The streaming invariant checkers that rode the run must have stayed
// silent, and the lifecycle log must open with exactly one kSubmitted record
// per workload submission (stage conservation at the source).
void TelemetryCleanOracle(core::Experiment& exp, Failures& failures) {
  if (exp.telemetry() == nullptr) return;
  if (const obs::ProvenanceRecorder* prov = exp.telemetry()->provenance())
    if (prov->violations() != 0)
      Fail(failures, "provenance-clean",
           Eq("gossip-provenance invariant violations", prov->violations(), 0));
  if (obs::TxProvRecorder* txprov = exp.telemetry()->txprov()) {
    if (txprov->violations() != 0)
      Fail(failures, "txprov-clean",
           Eq("tx-lifecycle invariant violations", txprov->violations(), 0));
    const obs::TxProvLog& log = txprov->Finish();
    std::uint64_t submitted_records = 0;
    for (std::size_t i = 0; i < log.size(); ++i)
      if (static_cast<obs::TxStage>(log.stage[i]) == obs::TxStage::kSubmitted)
        ++submitted_records;
    if (submitted_records != exp.workload().total_submitted())
      Fail(failures, "txprov-clean",
           Eq("kSubmitted records vs workload total_submitted",
              submitted_records, exp.workload().total_submitted()));
  }
}

}  // namespace

analysis::StudyInputs MakeStudyInputs(const core::Experiment& experiment) {
  analysis::StudyInputs inputs;
  for (const auto& observer : experiment.observers())
    inputs.observers.push_back(observer.get());
  inputs.minted = &experiment.minted();
  inputs.pools = &experiment.config().pools;
  inputs.reference = &experiment.reference_tree();
  return inputs;
}

std::vector<std::string> OracleNames() {
  return {"chain-invariants",          "tx-conservation", "redundancy-reconciliation",
          "drop-census",               "provenance-clean", "txprov-clean"};
}

std::vector<OracleFailure> RunOracles(core::Experiment& experiment,
                                      const OracleOptions& options) {
  Failures failures;
  ChainOracle(experiment, failures);
  TxConservationOracle(experiment, failures);
  RedundancyOracle(experiment, failures);
  DropCensusOracle(experiment, failures);
  TelemetryCleanOracle(experiment, failures);
  if (!options.inject_failure.empty())
    Fail(failures, options.inject_failure.c_str(),
         "injected failure (test-only hook)");
  return failures;
}

}  // namespace ethsim::check
