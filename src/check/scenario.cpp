#include "check/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/random.hpp"
#include "net/geo.hpp"

namespace ethsim::check {

namespace {

// Draws an inclusive integer range. `lo <= hi` is the caller's contract.
std::uint64_t DrawRange(Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  return lo + rng.NextBounded(hi - lo + 1);
}

net::Region DrawRegion(Rng& rng) {
  return static_cast<net::Region>(rng.NextBounded(net::kRegionCount));
}

// Appends 1..3 traffic sources. Account ranges deliberately overlap with
// positive probability — contended nonce streams are the adversarial case
// the tx-conservation oracles must survive.
void DrawWorkloadPlan(Rng rng, core::ExperimentConfig& cfg) {
  const std::size_t sources = 1 + rng.NextBounded(3);
  for (std::size_t s = 0; s < sources; ++s) {
    const std::string name = "src" + std::to_string(s);
    const std::size_t accounts = DrawRange(rng, 20, 80);
    const std::uint64_t offset = rng.NextBounded(40);
    switch (rng.NextBounded(4)) {
      case 0:
        cfg.workload_plan.Poisson(name, rng.NextRange(0.1, 0.8), accounts);
        break;
      case 1:
        cfg.workload_plan.Diurnal(name, rng.NextRange(0.1, 0.6), accounts,
                                  DrawRegion(rng), rng.NextRange(0.2, 0.9),
                                  rng.NextRange(0.0, 24.0));
        break;
      case 2: {
        const std::int64_t run_us = cfg.duration.micros();
        const auto at = TimePoint::FromMicros(
            static_cast<std::int64_t>(rng.NextRange(0.2, 0.5) *
                                      static_cast<double>(run_us)));
        const auto window = Duration::Micros(static_cast<std::int64_t>(
            rng.NextRange(0.1, 0.3) * static_cast<double>(run_us)));
        cfg.workload_plan.FlashCrowd(name, rng.NextRange(0.1, 0.5), accounts,
                                     at, window, rng.NextRange(2.0, 8.0));
        break;
      }
      default: {
        const std::uint64_t depth = rng.NextBounded(3) == 0 ? 3 : 0;
        cfg.workload_plan.ClosedLoop(
            name, DrawRange(rng, 4, 16),
            Duration::Seconds(static_cast<std::int64_t>(DrawRange(rng, 5, 30))),
            depth);
        break;
      }
    }
    workload::TrafficSource& src = cfg.workload_plan.last();
    src.account_offset = offset;
    if (src.kind != workload::SourceKind::kClosedLoop) src.accounts = accounts;
    if (rng.NextBool(0.4)) src.zipf_exponent = rng.NextRange(0.5, 1.5);
    if (rng.NextBool(0.3)) {
      src.fee.replacement_deadline =
          Duration::Seconds(static_cast<std::int64_t>(DrawRange(rng, 30, 90)));
      src.fee.max_replacements = static_cast<std::uint32_t>(DrawRange(rng, 1, 3));
    }
    src.fee.gas_price_mu = rng.NextRange(2.5, 4.0);
    src.fee.gas_price_sigma = rng.NextRange(0.5, 1.2);
  }
}

// Appends 1..3 fault events in disjoint, strictly in-run windows. The net
// substrate allows only one active partition (and one degradation) at a
// time, so windows are laid out sequentially behind a moving cursor — the
// generator never has to reject a draw.
void DrawFaultPlan(Rng rng, core::ExperimentConfig& cfg) {
  const std::int64_t run_us = cfg.duration.micros();
  const std::size_t events = 1 + rng.NextBounded(3);
  // Cursor starts 20% in (past warm-up) and each window is bounded so that
  // even three maximal draws heal before the run ends.
  std::int64_t cursor_us = run_us / 5;
  for (std::size_t e = 0; e < events; ++e) {
    const std::int64_t window_us = static_cast<std::int64_t>(
        rng.NextRange(0.05, 0.15) * static_cast<double>(run_us));
    const auto at = TimePoint::FromMicros(cursor_us);
    const auto window = Duration::Micros(window_us);
    switch (rng.NextBounded(5)) {
      case 0:
        cfg.fault_plan.NodeCrash(at, window,
                                 static_cast<std::uint32_t>(DrawRange(rng, 1, 3)));
        break;
      case 1:
        cfg.fault_plan.PoissonChurn(
            at, window, rng.NextRange(1.0, 4.0),
            Duration::Seconds(static_cast<std::int64_t>(DrawRange(rng, 10, 45))));
        break;
      case 2:
        cfg.fault_plan.RegionalPartition(
            at, window, 1u << static_cast<unsigned>(DrawRegion(rng)));
        break;
      case 3:
        cfg.fault_plan.DegradeLinks(
            at, window, 1u << static_cast<unsigned>(DrawRegion(rng)),
            rng.NextRange(1.5, 3.0), rng.NextRange(1.0, 2.0),
            rng.NextRange(0.0, 0.05));
        break;
      default:
        cfg.fault_plan.GatewayOutage(
            at, window,
            static_cast<std::uint32_t>(rng.NextBounded(cfg.pools.size())));
        break;
    }
    // Leave a gap so heal events never collide with the next injection.
    cursor_us += window_us + run_us / 20;
  }
}

}  // namespace

Scenario GenerateScenario(std::uint64_t fuzz_seed, std::uint64_t index,
                          const ScenarioOptions& options) {
  // One independent stream per scenario, then one per aspect: adding a new
  // aspect later cannot shift the draws of existing ones.
  const Rng stream = Rng(fuzz_seed).Fork("fuzz-scenario").Fork(index);

  Rng shape = stream.Fork("shape");
  const std::size_t nodes = static_cast<std::size_t>(
      DrawRange(shape, options.min_nodes, options.max_nodes));
  core::ExperimentConfig cfg = core::presets::SmallStudy(nodes);
  cfg.seed = stream.Fork("seed").Next();
  cfg.duration = Duration::Minutes(static_cast<std::int64_t>(DrawRange(
      shape, static_cast<std::uint64_t>(options.min_minutes),
      static_cast<std::uint64_t>(options.max_minutes))));
  cfg.dials_per_node = static_cast<std::size_t>(DrawRange(shape, 4, 10));

  Rng net = stream.Fork("net");
  cfg.net_params.latency_scale = net.NextRange(1.0, 2.6);
  cfg.net_params.jitter_sigma = net.NextRange(0.4, 1.0);
  if (net.NextBool(0.5)) cfg.net_params.drop_prob = net.NextRange(0.0, 0.02);
  cfg.net_params.slow_path_prob = net.NextRange(0.01, 0.08);

  // Pool roster: keep the paper's gateway geography but perturb the hashrate
  // race and block-building policy.
  Rng pools = stream.Fork("pools");
  for (miner::PoolSpec& pool : cfg.pools) {
    pool.hashrate_share *= pools.NextRange(0.5, 1.5);
    pool.policy.empty_block_rate =
        std::clamp(pool.policy.empty_block_rate * pools.NextRange(0.0, 2.0),
                   0.0, 0.2);
  }

  Rng workload = stream.Fork("workload");
  if (workload.NextBool(0.6)) {
    DrawWorkloadPlan(workload.Fork("plan"), cfg);
  } else {
    cfg.workload.rate_per_sec = workload.NextRange(0.2, 1.2);
    cfg.workload.burst_prob = workload.NextRange(0.0, 0.5);
    cfg.workload.inversion_prob = workload.NextRange(0.0, 0.4);
  }

  Rng fault = stream.Fork("fault");
  if (fault.NextBool(0.6)) DrawFaultPlan(fault.Fork("plan"), cfg);

  // Record everything the oracles reconcile against. Telemetry is guaranteed
  // record-only, so this cannot mask (or cause) a failure; strict modes stay
  // off because the oracles want to *count* violations, not abort on them.
  cfg.telemetry.metrics = true;
  cfg.telemetry.provenance = true;
  cfg.telemetry.txprov = true;

  if (std::string problem = cfg.Validate(); !problem.empty())
    throw std::logic_error("GenerateScenario drew an invalid config: " +
                           problem);
  return Scenario{std::move(cfg), fuzz_seed, index};
}

namespace {

// Mutation predicates and actions, shared by ApplicableMutations and
// ApplyMutation so the two can never disagree.
struct Mutation {
  const char* name;
  bool (*applies)(const core::ExperimentConfig&);
  void (*apply)(core::ExperimentConfig&);
};

const Mutation kMutations[] = {
    {"halve-nodes",
     [](const core::ExperimentConfig& c) { return c.peer_nodes > 4; },
     [](core::ExperimentConfig& c) {
       c.peer_nodes = std::max<std::size_t>(4, c.peer_nodes / 2);
     }},
    {"halve-duration",
     [](const core::ExperimentConfig& c) {
       return c.duration.micros() > Duration::Minutes(2).micros();
     },
     [](core::ExperimentConfig& c) {
       c.duration = Duration::Micros(
           std::max(Duration::Minutes(2).micros(), c.duration.micros() / 2));
     }},
    {"drop-fault-event",
     [](const core::ExperimentConfig& c) { return !c.fault_plan.empty(); },
     [](core::ExperimentConfig& c) { c.fault_plan.events.pop_back(); }},
    {"drop-workload-source",
     [](const core::ExperimentConfig& c) { return !c.workload_plan.empty(); },
     [](core::ExperimentConfig& c) { c.workload_plan.sources.pop_back(); }},
    {"drop-vantage",
     [](const core::ExperimentConfig& c) { return c.vantages.size() > 1; },
     [](core::ExperimentConfig& c) { c.vantages.pop_back(); }},
    {"drop-pool",
     [](const core::ExperimentConfig& c) { return c.pools.size() > 1; },
     [](core::ExperimentConfig& c) {
       c.pools.pop_back();
       // Gateway-outage events referencing the dropped pool would index out
       // of the roster; they shrink away with it.
       const auto limit = static_cast<std::uint32_t>(c.pools.size());
       auto& events = c.fault_plan.events;
       events.erase(std::remove_if(events.begin(), events.end(),
                                   [limit](const fault::FaultEvent& e) {
                                     return e.kind ==
                                                fault::FaultKind::kGatewayOutage &&
                                            e.pool_index >= limit;
                                   }),
                    events.end());
     }},
    {"halve-dials",
     [](const core::ExperimentConfig& c) { return c.dials_per_node > 2; },
     [](core::ExperimentConfig& c) {
       c.dials_per_node = std::max<std::size_t>(2, c.dials_per_node / 2);
     }},
};

}  // namespace

std::vector<std::string> ApplicableMutations(
    const core::ExperimentConfig& cfg) {
  std::vector<std::string> names;
  for (const Mutation& m : kMutations)
    if (m.applies(cfg)) names.emplace_back(m.name);
  return names;
}

bool ApplyMutation(core::ExperimentConfig& cfg, const std::string& mutation) {
  for (const Mutation& m : kMutations) {
    if (mutation != m.name) continue;
    if (!m.applies(cfg)) return false;
    m.apply(cfg);
    return true;
  }
  return false;
}

}  // namespace ethsim::check
