// Deterministic scenario generation for the fuzzer (tools/ethsim_fuzz).
// A Scenario is a valid-but-adversarial ExperimentConfig drawn from a forked
// RNG stream keyed by (fuzz_seed, index): node counts, geo latency scaling,
// pool rosters, fault timelines and workload plans all vary, but the draw is
// a pure function of the key — the same (fuzz_seed, index) always yields the
// same config, which is what makes a one-line repro possible.
//
// The generator only ever emits configs that pass ExperimentConfig::Validate()
// (it reuses each subsystem's Validate() as its own acceptance test), so an
// oracle failure downstream is always a simulator bug, never a config bug.
//
// Shrinking speaks the same language: a shrunk repro is (fuzz_seed, index)
// plus an ordered list of named mutations, replayed by ApplyMutation — no
// config serialization format to version.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace ethsim::check {

struct ScenarioOptions {
  // Plain-node population bounds (inclusive). Small worlds keep a fuzz run
  // in CI-smoke territory; the generator covers the range uniformly.
  std::size_t min_nodes = 8;
  std::size_t max_nodes = 24;
  // Simulated duration bounds in minutes (inclusive).
  std::int64_t min_minutes = 4;
  std::int64_t max_minutes = 10;
};

struct Scenario {
  core::ExperimentConfig config;
  std::uint64_t fuzz_seed = 0;
  std::uint64_t index = 0;
};

// Draws scenario `index` of the stream keyed by `fuzz_seed`. Throws
// std::logic_error if the drawn config fails Validate() — that is a
// generator bug, not a caller error.
Scenario GenerateScenario(std::uint64_t fuzz_seed, std::uint64_t index,
                          const ScenarioOptions& options = {});

// Named config reductions the shrinker searches over, most-reductive first.
// Only mutations that currently apply (e.g. "drop-fault-event" needs a
// non-empty fault plan) are listed.
std::vector<std::string> ApplicableMutations(const core::ExperimentConfig& cfg);

// Applies one named mutation in place. Returns false when the mutation does
// not apply to this config (callers treat that as "skip", not an error).
// Every successful application keeps Validate() passing.
bool ApplyMutation(core::ExperimentConfig& cfg, const std::string& mutation);

}  // namespace ethsim::check
