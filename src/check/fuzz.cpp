#include "check/fuzz.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "check/metamorphic.hpp"
#include "check/shrink.hpp"
#include "common/types.hpp"
#include "core/experiment.hpp"
#include "core/provenance.hpp"

namespace ethsim::check {

namespace {

// Same minimal escaping as the manifest writer (quotes and backslashes; the
// strings we emit are oracle names and equation dumps, never control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

struct ScenarioFate {
  bool failed = false;
  std::string kind;    // "oracle" | "relation"
  std::string name;    // which one
  std::string detail;  // first failure's description
};

// One JSONL line per scenario verdict (and a second per shrink result).
void ReportLine(std::ofstream& report, const Scenario& scenario,
                const core::ExperimentConfig& cfg, const ScenarioFate& fate) {
  report << "{\"scenario\": " << scenario.index
         << ", \"fuzz_seed\": " << scenario.fuzz_seed
         << ", \"config_seed\": " << cfg.seed << ", \"config_digest\": \""
         << ToHex(core::ConfigDigest(cfg)) << "\", \"nodes\": "
         << cfg.peer_nodes << ", \"duration_s\": "
         << cfg.duration.micros() / 1'000'000;
  if (!fate.failed) {
    report << ", \"status\": \"pass\"}\n";
    return;
  }
  report << ", \"status\": \"fail\", \"kind\": \"" << JsonEscape(fate.kind)
         << "\", \"name\": \"" << JsonEscape(fate.name) << "\", \"detail\": \""
         << JsonEscape(fate.detail) << "\"}\n";
}

std::string FirstOracleFailure(core::Experiment& exp,
                               const OracleOptions& options,
                               const std::string& oracle) {
  for (const OracleFailure& failure : RunOracles(exp, options))
    if (failure.oracle == oracle) return failure.detail;
  return {};
}

// Shrink probes: a candidate config "still fails" only when the *same*
// oracle (or relation) fires again — chasing a different failure would
// minimize toward a different bug.
FailureProbe OracleProbe(const OracleOptions& options,
                         const std::string& oracle) {
  return [options, oracle](const core::ExperimentConfig& cfg) -> std::string {
    core::Experiment exp{cfg};
    exp.Run();
    return FirstOracleFailure(exp, options, oracle);
  };
}

FailureProbe RelationProbe(const std::string& relation) {
  return [relation](const core::ExperimentConfig& cfg) -> std::string {
    const RelationResult result = RunRelation(cfg, relation);
    return result.passed ? std::string{} : result.detail;
  };
}

}  // namespace

FuzzOutcome RunFuzz(const FuzzOptions& options) {
  std::filesystem::create_directories(options.out_dir);
  FuzzOutcome outcome;
  outcome.report_path = options.out_dir + "/fuzz_report.jsonl";
  std::ofstream report(outcome.report_path, std::ios::trunc);

  for (std::size_t i = 0; i < options.runs; ++i) {
    const Scenario scenario =
        GenerateScenario(options.seed, i, options.scenario);
    std::fprintf(stderr,
                 "[fuzz] scenario %zu/%zu: %zu nodes, %" PRId64
                 " s, %zu fault events, %zu sources\n",
                 i + 1, options.runs, scenario.config.peer_nodes,
                 scenario.config.duration.micros() / 1'000'000,
                 scenario.config.fault_plan.events.size(),
                 scenario.config.workload_plan.sources.size());

    ScenarioFate fate;
    {
      core::Experiment exp{scenario.config};
      exp.Run();
      const std::vector<OracleFailure> failures =
          RunOracles(exp, options.oracles);
      if (!failures.empty()) {
        fate = {true, "oracle", failures.front().oracle,
                failures.front().detail};
      }
    }
    if (!fate.failed && options.metamorphic) {
      for (const RelationResult& result : RunMetamorphic(scenario.config)) {
        if (result.passed) continue;
        fate = {true, "relation", result.relation, result.detail};
        break;
      }
    }
    ++outcome.scenarios;
    ReportLine(report, scenario, scenario.config, fate);
    if (!fate.failed) continue;

    ++outcome.failures;
    std::fprintf(stderr, "[fuzz] FAIL scenario %zu: %s '%s' (%s)\n", i,
                 fate.kind.c_str(), fate.name.c_str(), fate.detail.c_str());

    const bool is_oracle = fate.kind == "oracle";
    const ShrinkResult shrunk =
        Shrink(scenario.config,
               is_oracle ? OracleProbe(options.oracles, fate.name)
                         : RelationProbe(fate.name),
               is_oracle ? options.shrink_evaluations
                         : options.shrink_evaluations / 2);

    ReproSpec spec;
    spec.fuzz_seed = scenario.fuzz_seed;
    spec.index = scenario.index;
    spec.kind = fate.kind;
    spec.name = fate.name;
    spec.config_digest = ToHex(core::ConfigDigest(shrunk.config));
    spec.scenario = options.scenario;
    spec.mutations = shrunk.mutations;
    const std::string repro_path =
        options.out_dir + "/repro-" + std::to_string(i) + ".json";
    std::string error;
    if (!WriteRepro(repro_path, spec, &error)) {
      std::fprintf(stderr, "[fuzz] cannot write repro: %s\n", error.c_str());
    } else {
      outcome.repro_paths.push_back(repro_path);
      report << "{\"scenario\": " << i << ", \"status\": \"shrunk\", "
             << "\"repro\": \"" << JsonEscape(repro_path) << "\", "
             << "\"shrunk_nodes\": " << shrunk.config.peer_nodes << ", "
             << "\"shrunk_duration_s\": "
             << shrunk.config.duration.micros() / 1'000'000 << ", "
             << "\"mutations\": " << shrunk.mutations.size() << ", "
             << "\"evaluations\": " << shrunk.evaluations << "}\n";
      std::fprintf(stderr,
                   "[fuzz] shrunk to %zu nodes / %" PRId64
                   " s in %zu evaluations\n"
                   "[fuzz] reproduce with: ethsim_fuzz --repro %s\n",
                   shrunk.config.peer_nodes,
                   shrunk.config.duration.micros() / 1'000'000,
                   shrunk.evaluations, repro_path.c_str());
    }
  }
  return outcome;
}

core::ExperimentConfig ReproConfig(const ReproSpec& spec) {
  Scenario scenario =
      GenerateScenario(spec.fuzz_seed, spec.index, spec.scenario);
  for (const std::string& mutation : spec.mutations)
    ApplyMutation(scenario.config, mutation);
  return std::move(scenario.config);
}

bool WriteRepro(const std::string& path, const ReproSpec& spec,
                std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << "{\n"
      << "  \"fuzz_seed\": " << spec.fuzz_seed << ",\n"
      << "  \"index\": " << spec.index << ",\n"
      << "  \"kind\": \"" << JsonEscape(spec.kind) << "\",\n"
      << "  \"name\": \"" << JsonEscape(spec.name) << "\",\n"
      << "  \"config_digest\": \"" << JsonEscape(spec.config_digest) << "\",\n"
      << "  \"min_nodes\": " << spec.scenario.min_nodes << ",\n"
      << "  \"max_nodes\": " << spec.scenario.max_nodes << ",\n"
      << "  \"min_minutes\": " << spec.scenario.min_minutes << ",\n"
      << "  \"max_minutes\": " << spec.scenario.max_minutes << ",\n"
      << "  \"mutations\": [";
  for (std::size_t i = 0; i < spec.mutations.size(); ++i)
    out << (i == 0 ? "" : ", ") << "\"" << JsonEscape(spec.mutations[i])
        << "\"";
  out << "]\n}\n";
  out.flush();
  if (!out.good()) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

namespace {

// Line-scraping JSON readers, the manifest-reader idiom: the writer above
// owns the exact shape, so a full JSON parser buys nothing.
bool ScrapeU64(const std::string& text, const std::string& key,
               std::uint64_t* value) {
  const auto pos = text.find("\"" + key + "\":");
  if (pos == std::string::npos) return false;
  const char* cursor = text.c_str() + pos + key.size() + 3;
  char* end = nullptr;
  *value = std::strtoull(cursor, &end, 10);
  return end != cursor;
}

bool ScrapeString(const std::string& text, const std::string& key,
                  std::string* value) {
  const auto pos = text.find("\"" + key + "\":");
  if (pos == std::string::npos) return false;
  const auto open = text.find('"', pos + key.size() + 3);
  if (open == std::string::npos) return false;
  const auto close = text.find('"', open + 1);
  if (close == std::string::npos) return false;
  *value = text.substr(open + 1, close - open - 1);
  return true;
}

}  // namespace

bool ReadRepro(const std::string& path, ReproSpec* spec, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::uint64_t u = 0;
  if (!ScrapeU64(text, "fuzz_seed", &spec->fuzz_seed) ||
      !ScrapeU64(text, "index", &spec->index) ||
      !ScrapeString(text, "kind", &spec->kind) ||
      !ScrapeString(text, "name", &spec->name)) {
    if (error != nullptr) *error = path + " is not a repro file";
    return false;
  }
  ScrapeString(text, "config_digest", &spec->config_digest);
  if (ScrapeU64(text, "min_nodes", &u)) spec->scenario.min_nodes = u;
  if (ScrapeU64(text, "max_nodes", &u)) spec->scenario.max_nodes = u;
  if (ScrapeU64(text, "min_minutes", &u))
    spec->scenario.min_minutes = static_cast<std::int64_t>(u);
  if (ScrapeU64(text, "max_minutes", &u))
    spec->scenario.max_minutes = static_cast<std::int64_t>(u);

  spec->mutations.clear();
  const auto list_pos = text.find("\"mutations\":");
  if (list_pos != std::string::npos) {
    const auto open = text.find('[', list_pos);
    const auto close = text.find(']', list_pos);
    if (open != std::string::npos && close != std::string::npos) {
      std::size_t cursor = open;
      while (true) {
        const auto quote = text.find('"', cursor + 1);
        if (quote == std::string::npos || quote > close) break;
        const auto end_quote = text.find('"', quote + 1);
        if (end_quote == std::string::npos || end_quote > close) break;
        spec->mutations.push_back(text.substr(quote + 1, end_quote - quote - 1));
        cursor = end_quote;
      }
    }
  }
  return true;
}

int RunRepro(const ReproSpec& spec, const OracleOptions& oracles) {
  const core::ExperimentConfig cfg = ReproConfig(spec);
  std::fprintf(stderr,
               "[repro] scenario %" PRIu64 " of seed %" PRIu64
               ", %zu mutations -> %zu nodes, %" PRId64 " s; checking %s '%s'\n",
               spec.index, spec.fuzz_seed, spec.mutations.size(),
               cfg.peer_nodes, cfg.duration.micros() / 1'000'000,
               spec.kind.c_str(), spec.name.c_str());
  std::string detail;
  if (spec.kind == "relation") {
    const RelationResult result = RunRelation(cfg, spec.name);
    if (!result.passed) detail = result.detail;
  } else {
    core::Experiment exp{cfg};
    exp.Run();
    detail = FirstOracleFailure(exp, oracles, spec.name);
  }
  if (detail.empty()) {
    std::fprintf(stderr, "[repro] %s '%s' passes now\n", spec.kind.c_str(),
                 spec.name.c_str());
    return 0;
  }
  std::fprintf(stderr, "[repro] still failing: %s\n", detail.c_str());
  return 1;
}

}  // namespace ethsim::check
