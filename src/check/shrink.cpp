#include "check/shrink.hpp"

#include <utility>

#include "check/scenario.hpp"

namespace ethsim::check {

ShrinkResult Shrink(const core::ExperimentConfig& start,
                    const FailureProbe& probe, std::size_t max_evaluations) {
  ShrinkResult result;
  result.config = start;
  result.failure = probe(result.config);
  ++result.evaluations;
  if (result.failure.empty()) return result;  // nothing to shrink

  // Greedy descent to a fixpoint: after every accepted mutation, restart
  // from the most-reductive applicable one (halving nodes again beats
  // trimming a vantage). Terminates because every mutation strictly shrinks
  // some bounded dimension.
  bool progressed = true;
  while (progressed && result.evaluations < max_evaluations) {
    progressed = false;
    for (const std::string& mutation : ApplicableMutations(result.config)) {
      if (result.evaluations >= max_evaluations) break;
      core::ExperimentConfig candidate = result.config;
      if (!ApplyMutation(candidate, mutation)) continue;
      if (!candidate.Validate().empty()) continue;
      const std::string failure = probe(candidate);
      ++result.evaluations;
      if (failure.empty()) continue;  // candidate passes; keep looking
      result.config = std::move(candidate);
      result.failure = failure;
      result.mutations.push_back(mutation);
      progressed = true;
      break;
    }
  }
  return result;
}

}  // namespace ethsim::check
