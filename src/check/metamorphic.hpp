// Metamorphic relation checks: properties of the form "transform the config
// this way, and the run outcome must respond that way", checked across
// paired runs of generated scenarios. These generalize the repo's one-off
// golden tests (empty-plan bit-inertness, telemetry-off parity) into
// relations that hold for *every* valid config, so new scenarios exercise
// them for free.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"

namespace ethsim::check {

struct RelationResult {
  std::string relation;  // stable name, e.g. "telemetry-parity"
  bool passed = false;
  std::string detail;  // both sides of the violated relation, or a note
};

// Stable names of every relation, in evaluation order.
std::vector<std::string> RelationNames();

// Runs every relation against `base`. The base run is executed once and
// shared; each relation adds at most two more runs of the same small config.
std::vector<RelationResult> RunMetamorphic(const core::ExperimentConfig& base);

// Runs a single named relation (the shrinker's probe re-checks just the one
// that failed). Unknown names return a failed result saying so.
RelationResult RunRelation(const core::ExperimentConfig& base,
                           const std::string& relation);

}  // namespace ethsim::check
