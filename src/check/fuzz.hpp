// The fuzz driver behind tools/ethsim_fuzz: generate scenario -> run ->
// oracles -> metamorphic relations -> (on failure) shrink -> repro.json.
// Every failure lands as one JSONL line in the fuzz report with the config
// digest, the seed and the failed oracle's name; the repro file records
// (fuzz_seed, index, scenario bounds, mutation trace) — enough to rebuild
// the exact shrunk config without serializing it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "check/scenario.hpp"

namespace ethsim::check {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t runs = 8;
  std::string out_dir = "fuzz-out";  // report + repro files land here
  ScenarioOptions scenario;
  bool metamorphic = true;  // run the relation suite on clean scenarios
  // Probe-call budget per shrink. Oracle probes cost one run each;
  // metamorphic probes re-run one relation (up to two runs), so they get
  // half this budget.
  std::size_t shrink_evaluations = 32;
  OracleOptions oracles;  // carries the test-only failure injection
};

struct FuzzOutcome {
  std::size_t scenarios = 0;
  std::size_t failures = 0;  // scenarios with >= 1 oracle/relation failure
  std::string report_path;
  std::vector<std::string> repro_paths;  // one per failing scenario
};

// Runs the whole pipeline; progress goes to stderr, results to the report.
// Returns the outcome; callers decide the exit code (failures != 0).
FuzzOutcome RunFuzz(const FuzzOptions& options);

// A replayable failure: regenerate scenario `index` from `fuzz_seed` under
// the recorded bounds, re-apply the mutation trace, re-check `name`.
struct ReproSpec {
  std::uint64_t fuzz_seed = 0;
  std::uint64_t index = 0;
  std::string kind = "oracle";  // "oracle" | "relation"
  std::string name;             // failed oracle or relation
  std::string config_digest;    // hex digest of the shrunk config
  ScenarioOptions scenario;
  std::vector<std::string> mutations;
};

// Rebuilds the (possibly shrunk) config the spec describes.
core::ExperimentConfig ReproConfig(const ReproSpec& spec);

bool WriteRepro(const std::string& path, const ReproSpec& spec,
                std::string* error = nullptr);
bool ReadRepro(const std::string& path, ReproSpec* spec,
               std::string* error = nullptr);

// Re-runs the spec's check. Returns 1 while the failure still reproduces
// (the bug is alive), 0 once it passes. `oracles` carries the injection
// hook through for repro files produced under --inject-failure.
int RunRepro(const ReproSpec& spec, const OracleOptions& oracles = {});

}  // namespace ethsim::check
