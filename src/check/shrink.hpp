// Delta-debugging shrinker: given a config that makes some predicate fail,
// greedily applies the named mutations of check/scenario (halve the node
// count, drop plan entries, shorten the run, ...) while the predicate keeps
// failing, and returns the minimal config it reached plus the mutation trace
// that got there. The trace IS the repro format: replaying the same
// mutations on the same generated scenario reconstructs the shrunk config
// exactly, so repro.json never has to serialize an ExperimentConfig.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace ethsim::check {

// Evaluates a config and returns a description of the failure, or an empty
// string when the config passes. Typically: run the experiment, run the
// oracles, report the first failure.
using FailureProbe = std::function<std::string(const core::ExperimentConfig&)>;

struct ShrinkResult {
  core::ExperimentConfig config;       // the minimal failing config reached
  std::vector<std::string> mutations;  // applied trace, in order
  std::string failure;                 // probe output on that config
  std::size_t evaluations = 0;         // probe calls spent
};

// Minimizes `start` under `probe`. The probe is called once up front; if the
// start config does not fail, the result is returned unshrunk with an empty
// failure string. Mutations that make the config invalid or make the probe
// pass are discarded. Deterministic: same start + same probe behavior =>
// same trace.
ShrinkResult Shrink(const core::ExperimentConfig& start,
                    const FailureProbe& probe,
                    std::size_t max_evaluations = 48);

}  // namespace ethsim::check
