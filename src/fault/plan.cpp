#include "fault/plan.hpp"

#include <algorithm>
#include <sstream>

namespace ethsim::fault {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kPeerChurn: return "peer_churn";
    case FaultKind::kRegionalPartition: return "regional_partition";
    case FaultKind::kLinkDegradation: return "link_degradation";
    case FaultKind::kGatewayOutage: return "gateway_outage";
    case FaultKind::kClockJump: return "clock_jump";
  }
  return "?";
}

FaultPlan& FaultPlan::NodeCrash(TimePoint at, Duration downtime,
                                std::uint32_t count) {
  FaultEvent event;
  event.kind = FaultKind::kNodeCrash;
  event.at = at;
  event.duration = downtime;
  event.count = count;
  events.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::PoissonChurn(TimePoint at, Duration window,
                                   double leaves_per_min,
                                   Duration downtime_mean) {
  FaultEvent event;
  event.kind = FaultKind::kPeerChurn;
  event.at = at;
  event.duration = window;
  event.churn_rate_per_min = leaves_per_min;
  event.churn_downtime_mean = downtime_mean;
  events.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::RegionalPartition(TimePoint at, Duration window,
                                        std::uint32_t side_a_region_mask) {
  FaultEvent event;
  event.kind = FaultKind::kRegionalPartition;
  event.at = at;
  event.duration = window;
  event.region_mask = side_a_region_mask;
  events.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::DegradeLinks(TimePoint at, Duration window,
                                   std::uint32_t region_mask,
                                   double latency_factor,
                                   double bandwidth_factor,
                                   double extra_drop_prob) {
  FaultEvent event;
  event.kind = FaultKind::kLinkDegradation;
  event.at = at;
  event.duration = window;
  event.region_mask = region_mask;
  event.latency_factor = latency_factor;
  event.bandwidth_factor = bandwidth_factor;
  event.extra_drop_prob = extra_drop_prob;
  events.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::GatewayOutage(TimePoint at, Duration downtime,
                                    std::uint32_t pool_index) {
  FaultEvent event;
  event.kind = FaultKind::kGatewayOutage;
  event.at = at;
  event.duration = downtime;
  event.pool_index = pool_index;
  events.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::ClockJump(TimePoint at, std::uint32_t observer_index,
                                Duration delta) {
  FaultEvent event;
  event.kind = FaultKind::kClockJump;
  event.at = at;
  event.clock_delta = delta;
  event.observer_index = observer_index;
  events.push_back(event);
  return *this;
}

namespace {

std::string Err(std::size_t index, const FaultEvent& event,
                std::string_view what) {
  std::ostringstream out;
  out << "fault plan event #" << index << " (" << FaultKindName(event.kind)
      << "): " << what;
  return out.str();
}

// Do two half-open windows [a, a+da) and [b, b+db) intersect? A zero
// duration (never-healing, only legal for crash/outage kinds) extends to
// infinity.
bool WindowsOverlap(const FaultEvent& a, const FaultEvent& b) {
  const std::int64_t a0 = a.at.micros();
  const std::int64_t b0 = b.at.micros();
  const std::int64_t a1 =
      a.duration.micros() == 0 ? INT64_MAX : a0 + a.duration.micros();
  const std::int64_t b1 =
      b.duration.micros() == 0 ? INT64_MAX : b0 + b.duration.micros();
  return a0 < b1 && b0 < a1;
}

}  // namespace

std::string FaultPlan::Validate() const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.at.micros() < 0) return Err(i, event, "negative injection time");
    if (event.duration.micros() < 0) return Err(i, event, "negative duration");
    switch (event.kind) {
      case FaultKind::kNodeCrash:
        if (event.count == 0) return Err(i, event, "count must be >= 1");
        break;
      case FaultKind::kPeerChurn:
        if (event.churn_rate_per_min <= 0.0)
          return Err(i, event, "churn rate must be positive");
        if (event.duration.micros() == 0)
          return Err(i, event, "churn window must have a finite duration");
        if (event.churn_downtime_mean.micros() <= 0)
          return Err(i, event, "churn downtime mean must be positive");
        break;
      case FaultKind::kRegionalPartition:
        if (event.region_mask == 0)
          return Err(i, event, "partition needs a non-empty region mask");
        if (event.duration.micros() == 0)
          return Err(i, event, "partition window must have a positive duration");
        break;
      case FaultKind::kLinkDegradation:
        if (event.region_mask == 0)
          return Err(i, event, "degradation needs a non-empty region mask");
        if (event.duration.micros() == 0)
          return Err(i, event,
                     "degradation window must have a positive duration");
        if (event.latency_factor < 1.0 || event.bandwidth_factor < 1.0)
          return Err(i, event, "degradation factors must be >= 1");
        if (event.extra_drop_prob < 0.0 || event.extra_drop_prob >= 1.0)
          return Err(i, event, "extra_drop_prob must be in [0, 1)");
        break;
      case FaultKind::kGatewayOutage:
        break;
      case FaultKind::kClockJump:
        if (event.clock_delta.micros() == 0)
          return Err(i, event, "clock jump of zero is a no-op");
        break;
    }
    // The net substrate supports one active partition and one active
    // degradation window at a time.
    for (std::size_t j = 0; j < i; ++j) {
      const FaultEvent& prior = events[j];
      if (prior.kind != event.kind) continue;
      if (event.kind != FaultKind::kRegionalPartition &&
          event.kind != FaultKind::kLinkDegradation)
        continue;
      if (WindowsOverlap(prior, event))
        return Err(i, event, "window overlaps an earlier window of same kind");
    }
  }
  return {};
}

}  // namespace ethsim::fault
