// Declarative fault timeline. A FaultPlan is part of the experiment config:
// a list of timestamped FaultEvents — node crashes, Poisson churn windows,
// regional partitions, link-degradation windows, pool-gateway outages, clock
// jumps — executed by the FaultController against a fixed fork of the master
// seed. A run is a pure function of (config, plan, seed); an *empty* plan is
// guaranteed bit-for-bit inert (no RNG fork consumed against the master is a
// non-goal — Rng::Fork is pure — but no event is scheduled and no hot-path
// behavior changes).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace ethsim::fault {

enum class FaultKind : std::uint8_t {
  kNodeCrash = 0,     // `count` plain nodes go down at `at`, restart at end
  kPeerChurn,         // Poisson leave/rejoin process over the window
  kRegionalPartition, // regions in `region_mask` split from the rest
  kLinkDegradation,   // latency/bandwidth multipliers + extra loss in scope
  kGatewayOutage,     // every gateway of `pool_index` crashes for the window
  kClockJump,         // vantage `observer_index`'s wall clock steps by delta
};
inline constexpr std::size_t kFaultKindCount = 6;
std::string_view FaultKindName(FaultKind kind);

// One timeline entry. Flat (no variant) so the provenance dump, the builder
// helpers, and the controller all speak the same trivially-serializable
// struct; fields irrelevant to a kind keep their inert defaults and are
// ignored.
struct FaultEvent {
  FaultKind kind = FaultKind::kNodeCrash;
  TimePoint at;       // injection instant (simulation clock)
  Duration duration;  // window length; heal/restart fires at `at + duration`.
                      // Zero means "never heals within the run" for crashes
                      // and gateway outages; churn, partition, and
                      // degradation windows must be positive (Validate
                      // rejects zero-length windows for those kinds).

  // kNodeCrash: how many plain nodes crash (sampled from the fault stream).
  std::uint32_t count = 1;

  // kPeerChurn: expected leave events per minute across the window, and the
  // mean of the exponential per-node downtime before it rejoins.
  double churn_rate_per_min = 0.0;
  Duration churn_downtime_mean = Duration::Seconds(30);

  // kRegionalPartition / kLinkDegradation scope: bit i = net::Region(i).
  std::uint32_t region_mask = 0;

  // kLinkDegradation knobs (>= 1 stretches latency / shrinks bandwidth).
  double latency_factor = 1.0;
  double bandwidth_factor = 1.0;
  double extra_drop_prob = 0.0;

  // kGatewayOutage: which pool loses its gateways.
  std::uint32_t pool_index = 0;

  // kClockJump: which vantage, and the signed step applied to its offset.
  std::uint32_t observer_index = 0;
  Duration clock_delta;
};

// The plan: an ordered set of events plus the rejoin policy shared by every
// restart path (crash restore, churn rejoin, gateway restoration).
struct FaultPlan {
  std::vector<FaultEvent> events;
  // Out-dials a restarted node performs during re-discovery (Kademlia-style
  // lookups against the surviving overlay, random-dial fallback).
  std::size_t rejoin_dials = 8;

  bool empty() const { return events.empty(); }

  // Builder helpers (chainable). Times are injection instants on the
  // simulation clock; windows heal at `at + window`.
  FaultPlan& NodeCrash(TimePoint at, Duration downtime, std::uint32_t count = 1);
  FaultPlan& PoissonChurn(TimePoint at, Duration window, double leaves_per_min,
                          Duration downtime_mean = Duration::Seconds(30));
  FaultPlan& RegionalPartition(TimePoint at, Duration window,
                               std::uint32_t side_a_region_mask);
  FaultPlan& DegradeLinks(TimePoint at, Duration window,
                          std::uint32_t region_mask, double latency_factor,
                          double bandwidth_factor, double extra_drop_prob = 0.0);
  FaultPlan& GatewayOutage(TimePoint at, Duration downtime,
                           std::uint32_t pool_index);
  FaultPlan& ClockJump(TimePoint at, std::uint32_t observer_index,
                       Duration delta);

  // Structural validation: non-negative times/durations/rates, non-empty
  // masks where required, and the single-active-window constraints the net
  // substrate imposes (partitions must not overlap each other; degradation
  // windows must not overlap each other). Returns an empty string when the
  // plan is well-formed, else a description of the first violation.
  std::string Validate() const;
};

}  // namespace ethsim::fault
