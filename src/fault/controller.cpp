#include "fault/controller.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "p2p/kademlia.hpp"

namespace ethsim::fault {

FaultController::FaultController(sim::Simulator& simulator, Rng rng,
                                 FaultPlan plan)
    : sim_(simulator), rng_(rng), plan_(std::move(plan)) {
  downed_by_event_.resize(plan_.events.size());
}

void FaultController::Bind(Bindings bindings) {
  b_ = std::move(bindings);
  assert(b_.network != nullptr);
  assert(b_.observer_start <= b_.nodes.size());
  assert(b_.gateway_count <= b_.observer_start);
  assert(b_.gateway_pool.size() == b_.gateway_count);
  bound_ = true;
}

void FaultController::AttachTelemetry(obs::Telemetry* telemetry) {
  tracer_ = nullptr;
  prov_ = nullptr;
  injected_count_.fill(nullptr);
  if (telemetry == nullptr) return;
  prov_ = telemetry->provenance();

  if (obs::Tracer* tracer = telemetry->tracer();
      tracer != nullptr && tracer->enabled(obs::TraceCategory::kFault)) {
    tracer_ = tracer;
  }
  if (obs::MetricsRegistry* metrics = telemetry->metrics()) {
    // Eager registration for every kind: the registry contents are a fixed
    // function of the config, not of which faults happened to fire.
    for (std::size_t k = 0; k < kFaultKindCount; ++k)
      injected_count_[k] = metrics->GetCounter(obs::LabeledName(
          "fault.injected", {{"kind", FaultKindName(static_cast<FaultKind>(k))}}));
  }
}

void FaultController::CountInjected(FaultKind kind) {
  ++stats_.injected[static_cast<std::size_t>(kind)];
  if (obs::Counter* c = injected_count_[static_cast<std::size_t>(kind)])
    c->Add();
}

void FaultController::TraceInstant(const char* name, FaultKind kind,
                                   std::uint64_t arg_num) {
  if (tracer_ == nullptr) return;
  obs::TraceEvent event;
  event.name = name;
  event.arg_kind = FaultKindName(kind).data();
  event.ts_us = sim_.Now().micros();
  event.arg_num = arg_num;
  event.cat = obs::TraceCategory::kFault;
  event.phase = 'i';
  tracer_->Emit(event);
}

void FaultController::TraceWindow(const char* name, FaultKind kind,
                                  TimePoint start) {
  if (tracer_ == nullptr) return;
  obs::TraceEvent event;
  event.name = name;
  event.arg_kind = FaultKindName(kind).data();
  event.ts_us = start.micros();
  event.dur_us = sim_.Now().micros() - start.micros();
  event.cat = obs::TraceCategory::kFault;
  event.phase = 'X';
  tracer_->Emit(event);
}

void FaultController::Arm() {
  assert(bound_ && "Bind() before Arm()");
  assert(!armed_ && "Arm() is one-shot");
  armed_ = true;
  if (plan_.empty()) return;  // bit-for-bit inert: nothing scheduled

  const std::string error = plan_.Validate();
  assert(error.empty() && "invalid fault plan");
  (void)error;

  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& event = plan_.events[i];
    sim_.ScheduleAt(event.at, [this, i] { Inject(i); });
    // Heals are scheduled up front (deterministic sequence numbers, fixed at
    // arm time). Injection state they need (which nodes went down) is filled
    // in by Inject before they fire. Churn windows self-terminate; clock
    // jumps and zero-duration faults never heal.
    const bool heals = event.duration.micros() > 0 &&
                       (event.kind == FaultKind::kNodeCrash ||
                        event.kind == FaultKind::kRegionalPartition ||
                        event.kind == FaultKind::kLinkDegradation ||
                        event.kind == FaultKind::kGatewayOutage);
    if (heals)
      sim_.ScheduleAt(event.at + event.duration, [this, i] { Heal(i); });
  }
}

std::vector<std::size_t> FaultController::OnlinePlainNodes() const {
  std::vector<std::size_t> online;
  for (std::size_t i = b_.gateway_count; i < b_.observer_start; ++i)
    if (b_.nodes[i]->online()) online.push_back(i);
  return online;
}

void FaultController::CrashNode(std::size_t node_index) {
  eth::EthNode* node = b_.nodes[node_index];
  if (!node->online()) return;
  node->GoOffline();
  if (prov_ != nullptr) prov_->NoteHostOnline(node->host(), false);
  ++stats_.crashes;
  TraceInstant("fault.node_down", FaultKind::kNodeCrash, node_index);
}

void FaultController::RejoinNode(std::size_t node_index) {
  eth::EthNode* node = b_.nodes[node_index];
  if (node->online()) return;
  node->GoOnline();
  if (prov_ != nullptr) prov_->NoteHostOnline(node->host(), true);
  ++stats_.restarts;

  // Re-discovery against the surviving overlay: a registry table over every
  // online id stands in for the discovery daemon's steady-state view, and
  // Closest() lookups on random targets reproduce the geography-blind,
  // close-to-random neighbor selection of BuildTopology.
  p2p::RoutingTable registry{node->id()};
  std::vector<eth::EthNode*> online;
  std::unordered_map<Hash32, eth::EthNode*> by_id;
  for (eth::EthNode* other : b_.nodes) {
    if (other == node || !other->online()) continue;
    online.push_back(other);
    by_id.emplace(other->id(), other);
    registry.Add(other->id());
  }
  if (online.empty()) {
    TraceInstant("fault.node_up", FaultKind::kNodeCrash, node_index);
    return;
  }

  std::size_t dialed = 0;
  const std::size_t want = plan_.rejoin_dials;
  int lookups = 0;
  const int max_lookups = static_cast<int>(want) + 8;
  while (dialed < want && lookups < max_lookups) {
    ++lookups;
    const p2p::NodeId target = p2p::RandomNodeId(rng_);
    for (const p2p::NodeId& candidate :
         registry.Closest(target, p2p::kBucketSize)) {
      if (dialed >= want) break;
      const auto it = by_id.find(candidate);
      if (it == by_id.end()) continue;
      if (eth::EthNode::Connect(*node, *it->second)) ++dialed;
    }
  }
  // Fallback for saturated neighborhoods: random dials, bounded attempts.
  int attempts = 0;
  const int cap = 10 * static_cast<int>(online.size()) + 10;
  while (dialed < want && attempts < cap) {
    ++attempts;
    eth::EthNode* other = online[rng_.NextBounded(online.size())];
    if (eth::EthNode::Connect(*node, *other)) ++dialed;
  }
  stats_.rejoin_links += dialed;
  TraceInstant("fault.node_up", FaultKind::kNodeCrash, node_index);
  // No explicit chain sync: the node resumes from its on-disk head and
  // back-fills whatever it missed through the orphan parent-fetch path when
  // the next block reaches it.
}

void FaultController::ChurnLeave(std::size_t event_index,
                                 TimePoint window_end) {
  const FaultEvent& event = plan_.events[event_index];
  if (sim_.Now() >= window_end) return;  // window closed: process ends

  // One leave now...
  const std::vector<std::size_t> candidates = OnlinePlainNodes();
  if (!candidates.empty()) {
    const std::size_t victim =
        candidates[rng_.NextBounded(candidates.size())];
    CrashNode(victim);
    ++stats_.churn_leaves;
    TraceInstant("fault.churn_leave", FaultKind::kPeerChurn, victim);
    const Duration downtime = Duration::Seconds(
        rng_.NextExponential(event.churn_downtime_mean.seconds()));
    sim_.Schedule(downtime, [this, victim] { RejoinNode(victim); });
  }
  // ...and the next one after an exponential gap.
  const double mean_gap_s = 60.0 / event.churn_rate_per_min;
  const Duration gap = Duration::Seconds(rng_.NextExponential(mean_gap_s));
  sim_.Schedule(gap, [this, event_index, window_end] {
    ChurnLeave(event_index, window_end);
  });
}

void FaultController::Inject(std::size_t event_index) {
  const FaultEvent& event = plan_.events[event_index];
  CountInjected(event.kind);

  switch (event.kind) {
    case FaultKind::kNodeCrash: {
      // Sample `count` victims without replacement from the online plain
      // population; remember them for the paired Heal.
      std::vector<std::size_t> candidates = OnlinePlainNodes();
      const std::size_t want =
          std::min<std::size_t>(event.count, candidates.size());
      for (std::size_t picked = 0; picked < want; ++picked) {
        const std::size_t j =
            picked + rng_.NextBounded(candidates.size() - picked);
        std::swap(candidates[picked], candidates[j]);
        CrashNode(candidates[picked]);
        downed_by_event_[event_index].push_back(candidates[picked]);
      }
      break;
    }
    case FaultKind::kPeerChurn: {
      const TimePoint window_end = event.at + event.duration;
      const double mean_gap_s = 60.0 / event.churn_rate_per_min;
      const Duration gap = Duration::Seconds(rng_.NextExponential(mean_gap_s));
      sim_.Schedule(gap, [this, event_index, window_end] {
        ChurnLeave(event_index, window_end);
      });
      break;
    }
    case FaultKind::kRegionalPartition: {
      b_.network->SetPartition(event.region_mask);
      partition_windows_.push_back(
          PartitionWindow{event.at, event.at, event.region_mask});
      TraceInstant("fault.partition_start", event.kind, event.region_mask);
      break;
    }
    case FaultKind::kLinkDegradation: {
      net::LinkDegradation degradation;
      degradation.region_mask = event.region_mask;
      degradation.latency_factor = event.latency_factor;
      degradation.bandwidth_factor = event.bandwidth_factor;
      degradation.extra_drop_prob = event.extra_drop_prob;
      b_.network->SetDegradation(degradation);
      TraceInstant("fault.degradation_start", event.kind, event.region_mask);
      break;
    }
    case FaultKind::kGatewayOutage: {
      for (std::size_t g = 0; g < b_.gateway_count; ++g) {
        if (b_.gateway_pool[g] != event.pool_index) continue;
        if (!b_.nodes[g]->online()) continue;
        CrashNode(g);
        downed_by_event_[event_index].push_back(g);
      }
      TraceInstant("fault.gateway_outage", event.kind, event.pool_index);
      break;
    }
    case FaultKind::kClockJump: {
      if (event.observer_index < b_.observers.size()) {
        b_.observers[event.observer_index]->AdjustClockOffset(
            event.clock_delta);
        ++stats_.clock_jumps;
      }
      TraceInstant("fault.clock_jump", event.kind, event.observer_index);
      break;
    }
  }
}

void FaultController::Heal(std::size_t event_index) {
  const FaultEvent& event = plan_.events[event_index];
  switch (event.kind) {
    case FaultKind::kNodeCrash: {
      for (const std::size_t index : downed_by_event_[event_index])
        RejoinNode(index);
      downed_by_event_[event_index].clear();
      break;
    }
    case FaultKind::kRegionalPartition: {
      b_.network->ClearPartition();
      if (!partition_windows_.empty())
        partition_windows_.back().end = sim_.Now();
      ++stats_.partitions_healed;
      TraceWindow("fault.partition", event.kind, event.at);
      break;
    }
    case FaultKind::kLinkDegradation: {
      b_.network->ClearDegradation();
      ++stats_.degradations_cleared;
      TraceWindow("fault.degradation", event.kind, event.at);
      break;
    }
    case FaultKind::kGatewayOutage: {
      for (const std::size_t index : downed_by_event_[event_index])
        RejoinNode(index);
      downed_by_event_[event_index].clear();
      // A kStall pool parked its releases; push them out now.
      if (b_.coordinator != nullptr)
        b_.coordinator->NotifyGatewayRestored(event.pool_index);
      break;
    }
    case FaultKind::kPeerChurn:
    case FaultKind::kClockJump:
      break;  // self-terminating / nothing to heal
  }
}

}  // namespace ethsim::fault
