// Executes a FaultPlan against a built experiment. The controller owns a
// dedicated fork of the master seed ("fault"), so two runs with the same
// (config, plan, seed) inject byte-identical fault schedules, and a run with
// an EMPTY plan schedules nothing at all — Arm() returns before touching the
// simulator, keeping empty-plan runs bit-for-bit identical to a build without
// the controller.
//
// Fault processes:
//   * node crash/restart  — GoOffline severs links and wipes RAM state; the
//     restart re-discovers peers Kademlia-style against the survivors and
//     back-fills missed blocks through the orphan parent-fetch path.
//   * Poisson peer churn  — leave events at a fixed rate over a window, each
//     followed by an exponential downtime and a rejoin.
//   * regional partition  — Network::SetPartition for the window (cross-side
//     sends dropped deterministically, no RNG perturbation), healed at end.
//   * link degradation    — latency/bandwidth multipliers + extra loss on
//     links touching the scoped regions.
//   * pool-gateway outage — every gateway of one pool crashes; on restore the
//     MiningCoordinator re-releases any blocks a kStall pool parked.
//   * clock jump          — a vantage observer's NTP offset steps by a delta.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "common/time.hpp"
#include "eth/node.hpp"
#include "fault/plan.hpp"
#include "measure/observer.hpp"
#include "miner/mining.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"

namespace ethsim::fault {

// What the controller did, for end-of-run reports and assertions.
struct FaultStats {
  // Timeline events fired, by kind (a churn window counts once).
  std::array<std::uint64_t, kFaultKindCount> injected{};
  std::uint64_t crashes = 0;        // node-down transitions (all causes)
  std::uint64_t restarts = 0;       // node-up transitions (all causes)
  std::uint64_t churn_leaves = 0;   // down transitions from churn processes
  std::uint64_t rejoin_links = 0;   // peer links re-established by rejoins
  std::uint64_t partitions_healed = 0;
  std::uint64_t degradations_cleared = 0;
  std::uint64_t clock_jumps = 0;

  std::uint64_t total_injected() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t n : injected) sum += n;
    return sum;
  }
};

// A partition window as actually executed — the resilience analysis slices
// observer logs against these.
struct PartitionWindow {
  TimePoint start;
  TimePoint end;  // == start when the partition never healed in-run
  std::uint32_t side_a_mask = 0;
};

class FaultController {
 public:
  // Everything the controller acts on, resolved once after the experiment is
  // built. `nodes` is the build-order vector [gateways..., plain...,
  // observers...]; `gateway_pool[i]` is the owning pool of gateway node i.
  struct Bindings {
    net::Network* network = nullptr;
    std::vector<eth::EthNode*> nodes;
    std::size_t gateway_count = 0;
    std::size_t observer_start = 0;  // first observer-node index
    miner::MiningCoordinator* coordinator = nullptr;  // null: no mining wired
    std::vector<measure::Observer*> observers;
    std::vector<std::size_t> gateway_pool;
  };

  FaultController(sim::Simulator& simulator, Rng rng, FaultPlan plan);
  FaultController(const FaultController&) = delete;
  FaultController& operator=(const FaultController&) = delete;

  void Bind(Bindings bindings);

  // Wires fault.injected{kind=...} counters and kFault trace events.
  // Record-only: never samples rng_ and never schedules events.
  void AttachTelemetry(obs::Telemetry* telemetry);

  // Schedules every timeline event. Must be called after Bind and before the
  // simulator runs past the earliest event. An empty plan schedules nothing.
  // The plan must Validate() cleanly (checked, fatal in debug builds).
  void Arm();

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }
  const std::vector<PartitionWindow>& partition_windows() const {
    return partition_windows_;
  }

 private:
  void Inject(std::size_t event_index);
  void Heal(std::size_t event_index);

  void CrashNode(std::size_t node_index);
  // Brings a node back and re-discovers peers against the online overlay.
  void RejoinNode(std::size_t node_index);
  // Online plain-node indices (the churn/crash candidate pool: gateways and
  // observers are only taken down by explicit gateway-outage events).
  std::vector<std::size_t> OnlinePlainNodes() const;

  void ChurnLeave(std::size_t event_index, TimePoint window_end);

  void CountInjected(FaultKind kind);
  void TraceInstant(const char* name, FaultKind kind, std::uint64_t arg_num);
  void TraceWindow(const char* name, FaultKind kind, TimePoint start);

  sim::Simulator& sim_;
  Rng rng_;
  FaultPlan plan_;
  Bindings b_;
  bool bound_ = false;
  bool armed_ = false;

  FaultStats stats_;
  std::vector<PartitionWindow> partition_windows_;
  // Nodes taken down by event i, restored by its heal (crash/outage kinds).
  std::vector<std::vector<std::size_t>> downed_by_event_;

  // Telemetry (null = disabled; record-only).
  obs::Tracer* tracer_ = nullptr;  // kFault category pre-checked
  std::array<obs::Counter*, kFaultKindCount> injected_count_{};
  // Provenance recorder: crash/restart marks feed the offline-delivery
  // invariant (obs/provenance_dag).
  obs::ProvenanceRecorder* prov_ = nullptr;
};

}  // namespace ethsim::fault
