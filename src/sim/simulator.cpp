#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

namespace ethsim::sim {

EventHandle Simulator::Schedule(Duration delay, EventFn fn) {
  assert(delay.micros() >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(TimePoint when, EventFn fn) {
  assert(when >= now_);
  const std::uint64_t id = next_id_++;
  heap_.push_back(Entry{when, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle{id};
}

void Simulator::Cancel(EventHandle handle) {
  if (handle.valid()) cancelled_.insert(handle.id_);
}

std::uint64_t Simulator::Run(TimePoint until, bool bounded) {
  std::uint64_t ran = 0;
  while (!heap_.empty()) {
    if (bounded && heap_.front().when > until) break;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(e.when >= now_);
    now_ = e.when;
    ++executed_;
    ++ran;
    e.fn();
  }
  if (bounded && now_ < until) now_ = until;
  return ran;
}

std::uint64_t Simulator::RunUntil(TimePoint until) { return Run(until, true); }

std::uint64_t Simulator::RunAll() { return Run(TimePoint{}, false); }

}  // namespace ethsim::sim
