#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace ethsim::sim {

namespace {

[[noreturn]] void DieOnExhaustedCapacity(const char* what) {
  std::fprintf(stderr, "sim::Simulator: %s exhausted\n", what);
  std::abort();
}

}  // namespace

EventHandle Simulator::Schedule(Duration delay, EventFn fn) {
  assert(delay.micros() >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventHandle Simulator::ScheduleAt(TimePoint when, EventFn fn) {
  assert(when >= now_);

  const std::uint64_t seq = next_seq_++;
  if (seq > kMaxSeq) DieOnExhaustedCapacity("event sequence space");

  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slot_count_ == (chunks_.size() << kChunkShift)) {
      if (slot_count_ > kLowMask) DieOnExhaustedCapacity("slot index space");
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    index = static_cast<std::uint32_t>(slot_count_++);
  }
  Slot& slot = SlotAt(index);
  slot.fn = std::move(fn);
  const std::uint64_t gen = slot.tag & kLowMask;
  slot.tag = (seq << kLowBits) | gen;

  heap_.push_back(HeapEntry{when.micros(), (seq << kLowBits) | index});
  SiftUp(heap_.size() - 1);
  ++live_;
  // Queue-pressure high-water is profiler-gated so the disabled Schedule
  // path costs exactly this one predicted branch.
  if (profiler_ != nullptr && heap_.size() > heap_high_water_) [[unlikely]]
    heap_high_water_ = heap_.size();
  return EventHandle{index, static_cast<std::uint32_t>(gen)};
}

void Simulator::Cancel(EventHandle handle) {
  if (!handle.valid()) return;
  if (handle.slot_ >= slot_count_) return;
  Slot& slot = SlotAt(handle.slot_);
  if (SeqOf(slot.tag) == 0) return;                   // slot is free: stale
  if ((slot.tag & kLowMask) != handle.gen_) return;   // fired or cancelled
  RetireSlot(handle.slot_);
  --live_;
  // The matching heap entry stays behind as a dead record; Run() drops it
  // when it surfaces. Dead entries are bounded by the number of Cancel calls
  // on live events, and each is reclaimed in O(log n) on pop — there is no
  // unbounded tombstone set.
}

void Simulator::MarkRetired(Slot& slot) {
  std::uint64_t gen = ((slot.tag & kLowMask) + 1) & kLowMask;
  if (gen == 0) gen = 1;  // 0 is the invalid-handle sentinel
  slot.tag = gen;         // seq part zero: free/stale
}

void Simulator::RetireSlot(std::uint32_t index) {
  Slot& slot = SlotAt(index);
  MarkRetired(slot);
  slot.fn.reset();
  free_slots_.push_back(index);
}

void Simulator::SiftUp(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!Before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::SiftDown(std::size_t i) {
  const HeapEntry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c)
      if (Before(heap_[c], heap_[best])) best = c;
    if (!Before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::PopTop() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

std::uint64_t Simulator::Run(TimePoint until, bool bounded) {
  std::uint64_t ran = 0;
  const std::int64_t limit = until.micros();
  while (!heap_.empty()) {
    const HeapEntry top = heap_[0];
    const auto index = static_cast<std::uint32_t>(top.key & kLowMask);
    Slot& slot = SlotAt(index);
    if (SeqOf(slot.tag) != SeqOf(top.key)) {
      // Cancelled: reclaim the dead entry regardless of its timestamp.
      PopTop();
      continue;
    }
    if (bounded && top.when_us > limit) break;

    // Advance the slot's generation *before* invoking so a handle to this
    // event goes stale immediately, but run the callback in place — chunk
    // addresses are stable, so nested Schedule calls cannot move it. The
    // slot only joins the free list afterwards, so nothing reuses it while
    // it runs.
    MarkRetired(slot);
    PopTop();
    // The next event's slot is a random index into the arena; start pulling
    // its line in while we do bookkeeping and run the current callback.
    if (!heap_.empty())
      __builtin_prefetch(&SlotAt(static_cast<std::uint32_t>(heap_[0].key & kLowMask)));

    assert(top.when_us >= now_.micros());
    now_ = TimePoint::FromMicros(top.when_us);
    ++executed_;
    ++ran;
    --live_;
    if (profiler_ == nullptr) [[likely]] {
      slot.fn();
    } else {
      InvokeProfiled(slot);
    }
    slot.fn.reset();
    free_slots_.push_back(index);
  }
  if (bounded && now_ < until) now_ = until;
  return ran;
}

void Simulator::InvokeProfiled(Slot& slot) {
  const auto t0 = std::chrono::steady_clock::now();
  slot.fn();
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  profiler_->ObserveCallbackNs(static_cast<std::uint64_t>(elapsed));
  if ((executed_ & profiler_->sample_mask()) == 0)
    profiler_->RecordSample(Snapshot());
}

obs::EngineSnapshot Simulator::Snapshot() const {
  obs::EngineSnapshot snapshot;
  snapshot.sim_now_us = now_.micros();
  snapshot.events_executed = executed_;
  snapshot.heap_size = heap_.size();
  snapshot.heap_high_water = heap_high_water_;
  snapshot.slots_allocated = slot_count_;
  snapshot.free_slots = free_slots_.size();
  snapshot.live_events = live_;
  return snapshot;
}

std::uint64_t Simulator::RunUntil(TimePoint until) { return Run(until, true); }

std::uint64_t Simulator::RunAll() { return Run(TimePoint{}, false); }

}  // namespace ethsim::sim
