// Deterministic discrete-event simulation engine. Events fire in
// (time, insertion-sequence) order, so two events scheduled for the same
// instant run in the order they were scheduled — runs are reproducible
// bit-for-bit for a given (config, seed).
//
// Engine layout (see DESIGN.md "Event engine"):
//   - The priority queue is an implicit 4-ary min-heap of 16-byte
//     {when_us, seq40|slot24} records. Callbacks never move through the
//     heap; sifting touches only small POD entries — the four children of a
//     node share one cache line — which is what makes the queue
//     allocation-free and cache-friendly at millions of events/second.
//   - Callbacks live in a chunked slot arena recycled through a free list.
//     Chunks never move, so a callback can be invoked in place (no per-event
//     move) even when handlers schedule new events mid-run. Each slot
//     carries a generation counter; an EventHandle is {slot, gen}. Cancel is
//     O(1): bump the generation and drop the callback. The heap entry stays
//     behind and is skipped when popped (its sequence no longer matches the
//     slot's) — no tombstone set, no growth, and cancelling an
//     already-fired or already-cancelled handle is a true no-op.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "obs/profiler.hpp"
#include "sim/callback.hpp"

namespace ethsim::sim {

using EventFn = Callback;

// Handle for cancelling a scheduled event: the slot index plus the slot's
// generation at scheduling time. Stale handles (event fired or already
// cancelled) simply fail the generation check.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return gen_ != 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint32_t slot, std::uint32_t gen) : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint Now() const { return now_; }

  // Schedules fn to run `delay` from now. Delay must be non-negative.
  EventHandle Schedule(Duration delay, EventFn fn);
  EventHandle ScheduleAt(TimePoint when, EventFn fn);

  // Cancels a pending event in O(1); no-op if it already ran or was cancelled.
  void Cancel(EventHandle handle);

  // Runs events with timestamp <= until (advancing the clock), then sets the
  // clock to `until`. Returns the number of events executed.
  std::uint64_t RunUntil(TimePoint until);

  // Runs until the queue is completely empty.
  std::uint64_t RunAll();

  std::uint64_t events_executed() const { return executed_; }
  // Number of scheduled, not-yet-fired, not-cancelled events.
  std::size_t pending() const { return live_; }

  // Attaches the wall-clock engine profiler (null detaches). While attached,
  // the run loop times every callback and emits a periodic EngineSnapshot;
  // detached, the hot loop pays a single predicted branch. Profiling reads
  // engine state only — it cannot change event order or results.
  void set_profiler(obs::EngineProfiler* profiler) { profiler_ = profiler; }
  obs::EngineProfiler* profiler() const { return profiler_; }

  // Current engine occupancy, for profiler samples and diagnostics.
  obs::EngineSnapshot Snapshot() const;

 private:
  // 4-ary beats binary here: shallower sift paths, and with 16-byte entries
  // the four children of a node fit in a single cache line.
  static constexpr std::size_t kArity = 4;

  // Heap entries and slot tags pack two fields into one 64-bit word, shifted
  // by kLowBits:
  //   heap key : seq(40 bits) << 24 | slot index(24 bits)
  //   slot tag : seq(40 bits) << 24 | generation(24 bits); seq==0 means free
  // 2^40 sequence numbers bound a simulator instance to ~1.1e12 events and
  // 2^24 slots bound it to ~16.7M concurrently pending events; both are
  // checked and far beyond any study in this repo. The 24-bit generation
  // makes a stale-handle false match require 16.7M retire cycles of one slot
  // while the handle is held — cancel sites hold handles for one block
  // interval, so the wrap is unreachable in practice.
  static constexpr unsigned kLowBits = 24;
  static constexpr std::uint64_t kLowMask = (1ULL << kLowBits) - 1;
  static constexpr std::uint64_t kMaxSeq = (1ULL << 40) - 1;

  // Slot chunks are fixed-size so slot addresses are stable across growth:
  // no per-element relocation when the arena expands, and callbacks can be
  // invoked in place.
  static constexpr unsigned kChunkShift = 10;
  static constexpr std::size_t kChunkSize = 1ULL << kChunkShift;

  struct HeapEntry {
    std::int64_t when_us = 0;
    std::uint64_t key = 0;  // seq << kLowBits | slot
  };

  struct Slot {
    EventFn fn;
    std::uint64_t tag = 1;  // seq << kLowBits | gen; gen 0 is reserved
  };

  static std::uint64_t SeqOf(std::uint64_t packed) { return packed >> kLowBits; }

  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    // seq is unique and occupies the high bits of `key`, so comparing the
    // packed word breaks time ties by insertion order.
    if (a.when_us != b.when_us) return a.when_us < b.when_us;
    return a.key < b.key;
  }

  Slot& SlotAt(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & kLowChunkMask()];
  }
  static constexpr std::uint32_t kLowChunkMask() {
    return static_cast<std::uint32_t>(kChunkSize - 1);
  }

  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);
  void PopTop();
  // Marks an occupied slot free/stale (advances the generation, skipping the
  // reserved value 0). The callback and free-list handoff are managed by the
  // caller so the run loop can invoke in place before releasing the slot.
  static void MarkRetired(Slot& slot);
  // Full retirement for Cancel: mark, destroy the callback, recycle.
  void RetireSlot(std::uint32_t index);

  std::uint64_t Run(TimePoint until, bool bounded);
  // Cold path: invoke one callback under the wall-clock profiler.
  void InvokeProfiled(Slot& slot);

  TimePoint now_;
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  // Wall-clock observability (null = off; high-water only tracked while a
  // profiler is attached so the disabled Schedule path stays one branch).
  obs::EngineProfiler* profiler_ = nullptr;
  std::size_t heap_high_water_ = 0;
};

}  // namespace ethsim::sim
