// Deterministic discrete-event simulation engine. Events fire in
// (time, insertion-sequence) order, so two events scheduled for the same
// instant run in the order they were scheduled — runs are reproducible
// bit-for-bit for a given (config, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace ethsim::sim {

using EventFn = std::function<void()>;

// Handle for cancelling a scheduled event. Cancellation is lazy: the id is
// remembered and the event skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint Now() const { return now_; }

  // Schedules fn to run `delay` from now. Delay must be non-negative.
  EventHandle Schedule(Duration delay, EventFn fn);
  EventHandle ScheduleAt(TimePoint when, EventFn fn);

  // Cancels a pending event; no-op if it already ran or was cancelled.
  void Cancel(EventHandle handle);

  // Runs events with timestamp <= until (advancing the clock), then sets the
  // clock to `until`. Returns the number of events executed.
  std::uint64_t RunUntil(TimePoint until);

  // Runs until the queue is completely empty.
  std::uint64_t RunAll();

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    EventFn fn;
  };
  struct Later {
    // Min-heap: std::push_heap keeps the *largest* on top, so invert.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::uint64_t Run(TimePoint until, bool bounded);

  TimePoint now_;
  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace ethsim::sim
