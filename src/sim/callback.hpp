// Small-buffer-optimized, move-only callback. The simulator schedules tens of
// millions of events per run and nearly every one of them captures a couple of
// pointers plus at most a Hash32 — `std::function` heap-allocates for anything
// beyond ~16 bytes, which made the allocator the hottest symbol in the gossip
// profile. `Callback` stores any nothrow-move-constructible callable of up to
// kInlineSize bytes inline (64 bytes covers every capture in the relay
// pipeline: NewBlock [2 ptr + shared_ptr], announcements [2 ptr + Hash32 +
// u64], tx batches [2 ptr + 2 shared_ptr]) and only falls back to the heap for
// oversized or throwing-move captures.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ethsim::sim {

class Callback {
 public:
  // Inline storage: large enough for every hot-path capture (see header
  // comment). Raising this trades Callback footprint in the slot arena for
  // fewer heap fallbacks; 64 puts sizeof(Callback) at 72.
  static constexpr std::size_t kInlineSize = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  Callback() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    Emplace<D>(std::forward<F>(f));
  }

  Callback(Callback&& other) noexcept { MoveFrom(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  // True when the held callable lives in the inline buffer (exposed for the
  // unit tests that pin the SBO contract).
  bool stored_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_stored;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Moves the callable from src storage into dst storage and ends src's
    // lifetime. Callers clear src's ops_ afterwards, so destroy never runs on
    // a moved-from payload.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_stored;
  };

  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  struct InlineOps {
    static F* Get(void* p) noexcept { return std::launder(reinterpret_cast<F*>(p)); }
    static void Invoke(void* p) { (*Get(p))(); }
    static void Relocate(void* dst, void* src) noexcept {
      F* from = Get(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void Destroy(void* p) noexcept { Get(p)->~F(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, true};
  };

  template <typename F>
  struct HeapOps {
    static F* Get(void* p) noexcept {
      return *std::launder(reinterpret_cast<F**>(p));
    }
    static void Invoke(void* p) { (*Get(p))(); }
    static void Relocate(void* dst, void* src) noexcept {
      ::new (dst) F*(Get(src));  // steal the pointer
    }
    static void Destroy(void* p) noexcept { delete Get(p); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy, false};
  };

  template <typename D, typename Arg>
  void Emplace(Arg&& arg) {
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<Arg>(arg));
      ops_ = &InlineOps<D>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<Arg>(arg)));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  void MoveFrom(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace ethsim::sim
